// Benchmark harness: one bench per table and figure of the paper's
// evaluation (see EXPERIMENTS.md for the recorded outputs). Benches print
// their artifact once, then measure the regeneration cost.
package gauntlet_test

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"gauntlet/internal/bugs"
	"gauntlet/internal/compiler"
	"gauntlet/internal/core"
	"gauntlet/internal/fleet"
	"gauntlet/internal/generator"
	"gauntlet/internal/obs"
	"gauntlet/internal/p4/ast"
	"gauntlet/internal/p4/eval"
	"gauntlet/internal/p4/parser"
	"gauntlet/internal/p4/printer"
	"gauntlet/internal/p4/types"
	"gauntlet/internal/persist"
	"gauntlet/internal/reduce"
	"gauntlet/internal/smt"
	"gauntlet/internal/smt/solver"
	"gauntlet/internal/sym"
	"gauntlet/internal/target/device"
	"gauntlet/internal/target/tofino"
	"gauntlet/internal/testgen"
	"gauntlet/internal/validate"
)

var printOnce sync.Map

func printArtifact(b *testing.B, key, text string) {
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		b.Logf("\n%s", text)
	}
}

// BenchmarkTable1_McKeemanLevels regenerates the Table 1 study: how deep
// each input class penetrates the compiler.
func BenchmarkTable1_McKeemanLevels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := core.RunLevelStudy(10)
		printArtifact(b, "table1", s.Render())
	}
}

// campaignReport runs the full campaign once (shared by the Table 2/3 and
// deep-dive benches).
var campaignOnce sync.Once
var campaignReport *core.Report

func runCampaign(b *testing.B) *core.Report {
	campaignOnce.Do(func() {
		c := core.NewCampaign()
		dets, err := c.RunAll()
		if err != nil {
			b.Fatalf("campaign: %v", err)
		}
		campaignReport = core.NewReport(c.Registry, dets)
	})
	return campaignReport
}

// BenchmarkTable2_BugSummary regenerates Table 2: the campaign over all
// 91 filed / 78 confirmed seeded bugs, split by platform, kind and
// lifecycle status.
func BenchmarkTable2_BugSummary(b *testing.B) {
	rep := runCampaign(b)
	printArtifact(b, "table2", rep.Table2())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := core.NewCampaign()
		dets, err := c.RunAll()
		if err != nil {
			b.Fatal(err)
		}
		_ = core.NewReport(c.Registry, dets).Table2()
	}
}

// BenchmarkTable3_BugLocations regenerates Table 3: front 33 / mid 13 /
// back 32.
func BenchmarkTable3_BugLocations(b *testing.B) {
	rep := runCampaign(b)
	printArtifact(b, "table3", rep.Table3())
	for i := 0; i < b.N; i++ {
		_ = rep.Table3()
	}
}

// BenchmarkSec71_RecentMerges regenerates the §7.1 regression series (16
// of 46 P4C bugs from weekly master merges).
func BenchmarkSec71_RecentMerges(b *testing.B) {
	rep := runCampaign(b)
	printArtifact(b, "sec71", rep.MergeWeekSeries())
	for i := 0; i < b.N; i++ {
		_ = rep.MergeWeekSeries()
	}
}

// BenchmarkSec72_RootCauses regenerates the §7.2 deep dive (18/25 type
// checker crashes, ≥8/21 copy-in/copy-out semantic bugs, 6 spec changes,
// 5 derivative reports, technique attribution).
func BenchmarkSec72_RootCauses(b *testing.B) {
	rep := runCampaign(b)
	printArtifact(b, "sec72", rep.DeepDive())
	for i := 0; i < b.N; i++ {
		_ = rep.DeepDive()
	}
}

const fig3Src = `
header Hdr_t { bit<8> a; bit<8> b; }
struct Hdr { Hdr_t h; }
control ingress(inout Hdr hdr) {
    action assign() { hdr.h.a = 8w1; }
    table t {
        key = { hdr.h.a : exact; }
        actions = { assign; NoAction; }
        default_action = NoAction();
    }
    apply { t.apply(); }
}
`

// BenchmarkFigure3_TableToFormula measures converting the Figure 3
// program into its symbolic functional form.
func BenchmarkFigure3_TableToFormula(b *testing.B) {
	prog, err := parser.Parse(fig3Src)
	if err != nil {
		b.Fatal(err)
	}
	if err := types.Check(prog); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		blk, err := sym.ExecControl(prog, prog.Control("ingress"))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var flat []sym.NamedTerm
			sym.Flatten("hdr", blk.Out[0].Val, &flat)
			printArtifact(b, "fig3", fmt.Sprintf("Figure 3 functional form:\n  %s = %s",
				flat[1].Name, flat[1].Term))
		}
	}
}

// BenchmarkFigure5_Detection hunts the six Figure 5 bug reproductions
// (5a–5f) end to end.
func BenchmarkFigure5_Detection(b *testing.B) {
	reg := bugs.Load()
	fig5 := map[string]string{
		"5a": "P4C-S-09", // SimplifyDefUse removes caller-scope variables
		"5b": "P4C-C-01", // type checker crash on unknown-width shift
		"5c": "P4C-S-15", // strength reduction slice bug
		"5d": "P4C-S-07", // disjoint slice assignment deleted
		"5e": "P4C-S-21", // validity update removed
		"5f": "P4C-S-06", // statement moved after exit
	}
	c := core.NewCampaign()
	for i := 0; i < b.N; i++ {
		var lines []byte
		for fig, id := range fig5 {
			bug := reg.ByID(id)
			if bug == nil {
				b.Fatalf("no bug %s", id)
			}
			det, err := c.Hunt(bug)
			if err != nil {
				b.Fatal(err)
			}
			if !det.Detected {
				b.Fatalf("Figure %s bug %s not detected", fig, id)
			}
			lines = append(lines, fmt.Sprintf("  Fig %s → %s via %s (%s)\n", fig, id, det.Technique, det.Via)...)
		}
		printArtifact(b, "fig5", "Figure 5 bug detections:\n"+string(lines))
	}
}

// BenchmarkSec8_SimulationRelations regenerates the §8 observation: how
// many validated pass transitions needed no simulation relation. With the
// per-width havoc semantics this reproduction uses, none do (the paper
// needed relations for 4 of 57).
func BenchmarkSec8_SimulationRelations(b *testing.B) {
	comp := compiler.New(compiler.DefaultPasses()...)
	for i := 0; i < b.N; i++ {
		transitions, unknown := 0, 0
		passes := map[string]bool{}
		for seed := int64(0); seed < 3; seed++ {
			prog := generator.Generate(generator.DefaultConfig(seed))
			res, err := comp.Compile(prog)
			if err != nil {
				b.Fatal(err)
			}
			verdicts, err := validate.Snapshots(res, validate.Options{MaxConflicts: 20000})
			if err != nil {
				b.Fatal(err)
			}
			for _, v := range verdicts {
				transitions++
				passes[v.PassB] = true
				if v.Status == solver.Unknown {
					unknown++
				}
				if !v.Equivalent && v.Status == solver.Sat {
					b.Fatalf("reference pipeline miscompiled: %s", v)
				}
			}
		}
		printArtifact(b, "sec8", fmt.Sprintf(
			"§8 analogue: %d pass transitions over %d distinct passes validated;\n"+
				"%d needed simulation relations (havoc semantics); %d hit the conflict budget",
			transitions, len(passes), 0, unknown))
	}
}

// BenchmarkValidateIncremental measures the validation hot path with the
// shared formula/verdict cache warm: the steady-state cost of
// re-validating a compilation whose blocks are unchanged — what a
// campaign pays for every program after the first that exercises the same
// pass behaviours. Compare against BenchmarkSec52_PipelineThroughput
// (cold, private caches) for the incremental speedup.
func BenchmarkValidateIncremental(b *testing.B) {
	comp := compiler.New(compiler.DefaultPasses()...)
	prog := generator.Generate(generator.DefaultConfig(11))
	res, err := comp.Compile(prog)
	if err != nil {
		b.Fatal(err)
	}
	cache := validate.NewCache()
	opts := validate.Options{MaxConflicts: 20000, Cache: cache}
	if _, err := validate.Snapshots(res, opts); err != nil {
		b.Fatal(err) // warm the cache
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		verdicts, err := validate.Snapshots(res, opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(validate.Failures(verdicts)) != 0 {
			b.Fatal("reference pipeline flagged")
		}
	}
	if bh, bm, vh, vm := cache.Stats(); bh+bm > 0 {
		b.ReportMetric(float64(bh)/float64(bh+bm)*100, "block-hit-%")
		if vh+vm > 0 {
			b.ReportMetric(float64(vh)/float64(vh+vm)*100, "verdict-hit-%")
		}
	}
}

// BenchmarkSec52_PipelineThroughput measures the generate → compile →
// validate pipeline rate (the paper sustained ~10000 programs/week).
func BenchmarkSec52_PipelineThroughput(b *testing.B) {
	comp := compiler.New(compiler.DefaultPasses()...)
	for i := 0; i < b.N; i++ {
		prog := generator.Generate(generator.DefaultConfig(int64(i % 100)))
		res, err := comp.Compile(prog)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := validate.Snapshots(res, validate.Options{MaxConflicts: 20000}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds()*3600*24*7, "programs/week")
}

// BenchmarkGeneration measures raw random program generation (§4).
func BenchmarkGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		prog := generator.Generate(generator.DefaultConfig(int64(i)))
		_ = printer.Print(prog)
	}
}

// BenchmarkCompile measures the reference pass pipeline alone.
func BenchmarkCompile(b *testing.B) {
	prog := generator.Generate(generator.DefaultConfig(7))
	comp := compiler.New(compiler.DefaultPasses()...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := comp.Compile(prog); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEquivalenceQuery measures one solver equivalence check of the
// Figure 3 block against itself.
func BenchmarkEquivalenceQuery(b *testing.B) {
	prog, err := parser.Parse(fig3Src)
	if err != nil {
		b.Fatal(err)
	}
	if err := types.Check(prog); err != nil {
		b.Fatal(err)
	}
	blkA, _ := sym.ExecControl(prog, prog.Control("ingress"))
	blkB, _ := sym.ExecControl(prog, prog.Control("ingress"))
	eq := sym.Equivalent(blkA, blkB)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := solver.Solve(0, smt.Not(eq))
		if res.Status != solver.Unsat {
			b.Fatal("self-equivalence must be unsat")
		}
	}
}

// BenchmarkConcolicFalsify measures the bit-parallel concrete fast path
// in the regime it exists for — equivalence queries with a real
// counterexample, the mismatch-verdict and reduction-candidate hot path.
// The harvest phase compiles fixed-seed programs through a pass pipeline
// instrumented with two miscompiling mutations and keeps the
// (input, final) pairs the defects made inequivalent; the timed runs
// re-validate those pairs through fresh caches with the tape stage off
// (every verdict goes to the solver) and on. Both report
// ns/equivalence-query; on also reports tape throughput (packets/sec)
// and the fraction of fresh verdicts a concrete counterexample settled
// before any solver call. The trajectory gate (cmd/benchjson) fails CI
// when that fraction is zero or when the fast path costs more than 5%
// over solver-only.
func BenchmarkConcolicFalsify(b *testing.B) {
	reg := bugs.Load()
	var active []*bugs.Bug
	for _, id := range []string{"P4C-S-02", "P4C-S-06"} {
		bug := reg.ByID(id)
		if bug == nil {
			b.Fatalf("registry has no bug %s", id)
		}
		active = append(active, bug)
	}
	comp := compiler.New(bugs.Instrument(compiler.DefaultPasses(), active)...)
	type progPair struct{ in, out *ast.Program }
	var pairs []progPair
	harvest := validate.NewCache()
	for seed := int64(0); len(pairs) < 8 && seed < 64; seed++ {
		res, err := comp.Compile(generator.Generate(generator.DefaultConfig(seed)))
		if err != nil {
			b.Fatal(err)
		}
		in, out := res.Snapshots[0].Prog, res.Final
		verdicts, err := validate.Pair(in, out, validate.Options{
			MaxConflicts: 20000, Cache: harvest})
		if err != nil {
			b.Fatal(err)
		}
		if len(validate.Failures(verdicts)) > 0 {
			pairs = append(pairs, progPair{in, out})
		}
	}
	if len(pairs) < 4 {
		b.Fatalf("only %d inequivalent pairs harvested; the seeded defects should fire more often", len(pairs))
	}
	run := func(b *testing.B, con validate.Concolic) float64 {
		var queries, misses, falsified, packets, fails uint64
		for i := 0; i < b.N; i++ {
			cache := validate.NewCache()
			for _, p := range pairs {
				verdicts, err := validate.Pair(p.in, p.out, validate.Options{
					MaxConflicts: 20000, Cache: cache, Concolic: con})
				if err != nil {
					b.Fatal(err)
				}
				fails += uint64(len(validate.Failures(verdicts)))
			}
			s := cache.Snapshot()
			queries += s.VerdictHits + s.VerdictMisses
			misses += s.VerdictMisses
			falsified += s.ConcolicFalsified
			packets += s.ConcolicPackets
		}
		if fails == 0 {
			b.Fatal("harvested inequivalent pairs produced no inequivalence verdicts")
		}
		nsPerQuery := float64(b.Elapsed().Nanoseconds()) / float64(queries)
		b.ReportMetric(nsPerQuery, "ns/equivalence-query")
		if !con.Disable {
			b.ReportMetric(float64(packets)/b.Elapsed().Seconds(), "packets/sec")
			b.ReportMetric(float64(falsified)/float64(misses)*100, "falsified-%")
		}
		return nsPerQuery
	}
	b.Run("off", func(b *testing.B) {
		concolicOffNs = run(b, validate.Concolic{Disable: true})
	})
	b.Run("on", func(b *testing.B) {
		ns := run(b, validate.Concolic{})
		if concolicOffNs > 0 {
			b.ReportMetric(ns/concolicOffNs, "x-vs-off")
		}
	})
}

var concolicOffNs float64

// BenchmarkGateReuse measures structural gate-cache reuse while blasting
// a near-identical miter — the reduction-candidate regime, where the two
// sides differ in one buried leaf. The reuse rate must be nonzero (the CI
// bench smoke asserts it): if the structural-hash path stops collapsing
// repeated structure, this fails rather than silently regressing.
func BenchmarkGateReuse(b *testing.B) {
	x := smt.Var("gx", 8)
	y := smt.Var("gy", 8)
	z := smt.Var("gz", 8)
	side := func(leaf uint64) *smt.Term {
		t := smt.Mul(smt.Add(x, y), z)
		u := smt.BVAnd(t, smt.BVXor(x, smt.Const(leaf, 8)))
		return smt.Sub(smt.BVOr(u, t), smt.Add(y, smt.BVXor(z, x)))
	}
	// Two sides sharing everything except one xor constant, plus a
	// commuted duplicate of the whole A side (pure gate-level overlap).
	miter := smt.Or(
		smt.Ne(side(0x10), side(0x20)),
		smt.Ne(smt.Add(x, y), smt.Add(y, x)))
	var pct float64
	for i := 0; i < b.N; i++ {
		bl := solver.NewBlaster()
		bl.Assert(miter)
		built, reused := bl.GateStats()
		if built+reused == 0 {
			b.Fatal("miter blasted no gates")
		}
		pct = float64(reused) / float64(built+reused) * 100
		if pct == 0 {
			b.Fatal("structural gate cache reported zero reuse on a near-identical miter")
		}
	}
	b.ReportMetric(pct, "gates-reused-%")
}

// BenchmarkCorpusFuzz measures the coverage-guided corpus engine against
// pure grammar generation on the same fixed budget: programs/sec (the
// mutation path adds a type-check gate and the admission round barrier —
// the CI gate in cmd/benchjson fails if that costs more than half the
// generation-mode throughput) and behavioural diversity (distinct
// coverage fingerprints reached, admission rate). SyncInterval is set
// below the batch size so mutation actually engages within the budget.
func BenchmarkCorpusFuzz(b *testing.B) {
	run := func(b *testing.B, ratio float64) {
		var admitted, rejected, fps, mutated uint64
		for i := 0; i < b.N; i++ {
			cfg := core.DefaultEngineConfig()
			cfg.StartSeed = int64(i) * fuzzBatch
			cfg.Seeds = fuzzBatch
			cfg.Seed = 42 + int64(i)
			cfg.Workers = 8
			cfg.MutateRatio = ratio
			cfg.SyncInterval = 8
			cfg.MaxMutations = 6
			cfg.Passes = compiler.DefaultPasses()
			engine := core.NewEngine(cfg)
			if findings := engine.Run(context.Background()); len(findings) > 0 {
				b.Fatalf("reference pipeline produced findings: %+v", findings[0])
			}
			s := engine.Stats()
			admitted += s.Corpus.Admitted
			rejected += s.Corpus.Rejected
			fps += uint64(s.Corpus.Fingerprints)
			mutated += s.Mutated
		}
		b.ReportMetric(float64(b.N*fuzzBatch)/b.Elapsed().Seconds(), "programs/sec")
		if admitted+rejected > 0 {
			b.ReportMetric(float64(admitted)/float64(admitted+rejected)*100, "admission-%")
		}
		b.ReportMetric(float64(fps)/float64(b.N), "coverage-fingerprints/run")
		b.ReportMetric(float64(mutated)/float64(b.N), "mutated/run")
		if ratio > 0 && mutated == 0 {
			b.Fatal("mutation mode never mutated: the corpus feedback loop is dead")
		}
	}
	b.Run("generation", func(b *testing.B) { run(b, 0) })
	b.Run("mutation", func(b *testing.B) { run(b, 0.6) })
}

// BenchmarkServeEpochs measures the serve-mode memory contract at the
// layer it is enforced: three context epochs, each running the identical
// compile+validate workload (64 fixed-seed programs) in a fresh
// smt.Context + validate.Cache pair — exactly what core.Engine's
// rotation installs — and reporting every epoch's interner bytes. With
// an identical workload, any epoch-over-epoch growth is state leaking
// across rotations, so the trajectory gate (cmd/benchjson) fails CI when
// an epoch exceeds its predecessor by more than 15%.
//
// The epochs are driven serially rather than through the streaming
// engine on purpose: the pipeline runs ahead of the fold boundary, so
// engine-side epoch attribution smears tens of percent of one epoch's
// terms into its neighbours depending on scheduling — workload noise
// that would swamp a 15% gate. (Engine-level rotation correctness —
// determinism, drain, bounded live interner — is covered by the
// race-enabled core tests.)
func BenchmarkServeEpochs(b *testing.B) {
	const perEpoch = 64
	progs := make([]*ast.Program, perEpoch)
	for i := range progs {
		progs[i] = generator.Generate(generator.DefaultConfig(int64(i)))
	}
	comp := compiler.New(compiler.DefaultPasses()...)
	var epochBytes [3]float64
	var epochCount int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for epoch := 0; epoch < 3; epoch++ {
			cache := validate.NewCacheIn(smt.NewContext())
			opts := validate.Options{MaxConflicts: 20000, Cache: cache}
			for _, prog := range progs {
				res, err := comp.Compile(ast.CloneProgram(prog))
				if err != nil {
					b.Fatal(err)
				}
				verdicts, err := validate.Snapshots(res, opts)
				if err != nil {
					b.Fatal(err)
				}
				if len(validate.Failures(verdicts)) != 0 {
					b.Fatal("reference pipeline flagged")
				}
			}
			epochBytes[epoch] += float64(cache.Context().InternerStats().BytesEstimate)
		}
		epochCount++
	}
	b.ReportMetric(float64(3*perEpoch*epochCount)/b.Elapsed().Seconds(), "programs/sec")
	for j := 0; j < 3; j++ {
		b.ReportMetric(epochBytes[j]/float64(epochCount), fmt.Sprintf("epoch%d-ctx-bytes", j+1))
	}
}

// BenchmarkSymbolicExecutionTests measures Figure 4's test generation +
// device execution for a two-header program.
func BenchmarkSymbolicExecutionTests(b *testing.B) {
	prog := generator.Generate(generator.DefaultConfig(3))
	if err := types.Check(prog); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		cases, err := testgen.Generate(prog, testgen.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printArtifact(b, "fig4", fmt.Sprintf("Figure 4 harness: %d test cases generated for seed-3 program", len(cases)))
		}
	}
}

// BenchmarkAblation_ModelPreferences quantifies the §6.2 design choice:
// with model preferences disabled (plain solver defaults), the seeded
// saturating-arithmetic back-end defect escapes its witness's packet
// tests; with preferences on, it is caught. The bench reports the number
// of mismatching cases in each mode.
func BenchmarkAblation_ModelPreferences(b *testing.B) {
	reg := bugs.Load()
	bug := reg.ByID("TOF-S-03")
	prog, err := parser.Parse(bug.Witness)
	if err != nil {
		b.Fatal(err)
	}
	if err := types.Check(prog); err != nil {
		b.Fatal(err)
	}
	pl := bugs.Instrument(append(compiler.DefaultPasses(), tofino.BackendPasses()...), []*bugs.Bug{bug})
	res, err := compiler.New(pl...).Compile(prog)
	if err != nil {
		b.Fatal(err)
	}
	dev := device.New(res.Final, eval.ZeroUndef)

	run := func(disable bool) int {
		opts := testgen.DefaultOptions()
		opts.DisablePreferences = disable
		cases, err := testgen.Generate(prog, opts)
		if err != nil {
			b.Fatal(err)
		}
		mismatches := 0
		for _, c := range cases {
			obs, err := dev.Inject(c.Config, c.Packet)
			if err != nil {
				b.Fatal(err)
			}
			want := device.Result{Drop: c.ExpectDrop, Packet: c.ExpectPacket}
			if !device.Equal(want, obs) {
				mismatches++
			}
		}
		return mismatches
	}
	for i := 0; i < b.N; i++ {
		with := run(false)
		without := run(true)
		if i == 0 {
			printArtifact(b, "ablation-prefs", fmt.Sprintf(
				"§6.2 ablation (TOF-S-03 witness): mismatches with preferences = %d, without = %d",
				with, without))
			if with == 0 {
				b.Fatal("preferences enabled must catch the defect")
			}
		}
	}
}

// fuzzBatch is the per-iteration program count for the fuzz-throughput
// benchmarks: large enough to amortize pipeline spin-up, small enough for
// -benchtime=1x CI smoke runs.
const fuzzBatch = 64

// seqFuzzRate remembers the sequential baseline's programs/sec so the
// engine sub-benchmarks can report their speedup over it in the same run.
var seqFuzzRate float64

// BenchmarkEngineFuzz measures the streaming fuzzing engine (generate →
// compile → oracle → dedup → reduce over bounded channels and per-stage
// worker pools) against the sequential seed loop it replaced. The
// "sequential-baseline" case is the old `p4gauntlet -mode fuzz` body:
// one goroutine, a fresh private validation cache per program. The engine
// cases share one validation cache and the process-wide interner across
// workers while isolating everything mutable per program, so the oracle
// work spreads across cores: the x-vs-sequential metric tracks GOMAXPROCS
// (≈8× at 8 workers on ≥8 cores; on a single-core runner it can only show
// the pipeline's bounded overhead).
func BenchmarkEngineFuzz(b *testing.B) {
	b.Run("sequential-baseline", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			comp := compiler.New(compiler.DefaultPasses()...)
			for seed := int64(0); seed < fuzzBatch; seed++ {
				prog := generator.Generate(generator.DefaultConfig(int64(i)*fuzzBatch + seed))
				res, err := comp.Compile(prog)
				if err != nil {
					b.Fatal(err)
				}
				verdicts, err := validate.Snapshots(res, validate.Options{MaxConflicts: 20000})
				if err != nil {
					b.Fatal(err)
				}
				if fails := validate.Failures(verdicts); len(fails) > 0 {
					b.Fatalf("reference pipeline miscompiled seed %d: %s", seed, fails[0])
				}
			}
		}
		seqFuzzRate = float64(b.N*fuzzBatch) / b.Elapsed().Seconds()
		b.ReportMetric(seqFuzzRate, "programs/sec")
	})
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			gb0, gr0 := solver.GateStats()
			var simpResolved uint64
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultEngineConfig()
				cfg.StartSeed = int64(i) * fuzzBatch
				cfg.Seeds = fuzzBatch
				cfg.Workers = workers
				cfg.Passes = compiler.DefaultPasses()
				engine := core.NewEngine(cfg)
				if findings := engine.Run(context.Background()); len(findings) > 0 {
					b.Fatalf("reference pipeline produced findings: %+v", findings[0])
				}
				simpResolved += engine.Stats().SimpResolved
			}
			rate := float64(b.N*fuzzBatch) / b.Elapsed().Seconds()
			b.ReportMetric(rate, "programs/sec")
			if seqFuzzRate > 0 {
				b.ReportMetric(rate/seqFuzzRate, "x-vs-sequential")
			}
			// Structural sharing effectiveness over the run: gate-cache
			// reuse in the blaster, and equivalence queries the word-level
			// simplifier answered without any solver call.
			gb1, gr1 := solver.GateStats()
			if total := (gb1 - gb0) + (gr1 - gr0); total > 0 {
				b.ReportMetric(float64(gr1-gr0)/float64(total)*100, "gates-reused-%")
			}
			b.ReportMetric(float64(simpResolved)/float64(b.N), "simp-resolved/run")
		})
	}
}

// BenchmarkResilientFuzz measures what the robustness layer costs on the
// fuzz hot path: the same fixed-seed engine workload run plain (the
// BenchmarkEngineFuzz configuration) and armed — stage watchdogs
// (supervised goroutine per stage call), the oracle deadline ladder, and
// durable state (fsynced findings journal plus periodic atomic corpus
// checkpoints). The trajectory gate in cmd/benchjson fails CI when the
// armed run gives up more than 5% of plain programs/sec.
func BenchmarkResilientFuzz(b *testing.B) {
	run := func(b *testing.B, arm func(b *testing.B, cfg *core.EngineConfig, engine **core.Engine)) float64 {
		var engine *core.Engine
		for i := 0; i < b.N; i++ {
			cfg := core.DefaultEngineConfig()
			cfg.StartSeed = int64(i) * fuzzBatch
			cfg.Seeds = fuzzBatch
			cfg.Workers = 8
			cfg.Passes = compiler.DefaultPasses()
			if arm != nil {
				arm(b, &cfg, &engine)
			}
			engine = core.NewEngine(cfg)
			if findings := engine.Run(context.Background()); len(findings) > 0 {
				b.Fatalf("reference pipeline produced findings: %+v", findings[0])
			}
			if s := engine.Stats(); s.Quarantined != 0 {
				b.Fatalf("clean workload quarantined %d programs", s.Quarantined)
			}
		}
		rate := float64(b.N*fuzzBatch) / b.Elapsed().Seconds()
		b.ReportMetric(rate, "programs/sec")
		return rate
	}
	b.Run("plain", func(b *testing.B) {
		resilientPlainRate = run(b, nil)
	})
	b.Run("armed", func(b *testing.B) {
		st, err := persist.Open(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		defer st.Close()
		rate := run(b, func(b *testing.B, cfg *core.EngineConfig, engine **core.Engine) {
			cfg.StageTimeout = 30 * time.Second
			cfg.OracleTimeout = 10 * time.Second
			cfg.CheckpointPrograms = 32
			cfg.OnFinding = func(f core.Finding) {
				if err := st.AppendFinding(f); err != nil {
					b.Error(err)
				}
			}
			seedVal := cfg.Seed
			cfg.OnCheckpoint = func(next int64) {
				err := st.SaveCheckpoint(&persist.Checkpoint{
					NextSlot: next, Seed: seedVal, Corpus: (*engine).Corpus().Snapshot(),
				})
				if err != nil {
					b.Error(err)
				}
			}
		})
		if resilientPlainRate > 0 {
			b.ReportMetric((1-rate/resilientPlainRate)*100, "overhead-%")
		}
	})
}

var resilientPlainRate float64

// BenchmarkObsOverhead measures what the introspection plane costs on
// the fuzz hot path: the same fixed-seed engine workload run plain and
// with a metrics registry installed (per-stage latency histograms,
// per-tier equivalence-query histograms, the stats collector).
// Provenance traces are assembled in both arms — they are always on —
// so the delta isolates the instrument writes. The trajectory gate in
// cmd/benchjson fails CI when the instrumented run gives up more than
// 5% of plain programs/sec.
func BenchmarkObsOverhead(b *testing.B) {
	run := func(b *testing.B, instrument bool) float64 {
		for i := 0; i < b.N; i++ {
			cfg := core.DefaultEngineConfig()
			cfg.StartSeed = int64(i) * fuzzBatch
			cfg.Seeds = fuzzBatch
			cfg.Workers = 8
			cfg.Passes = compiler.DefaultPasses()
			if instrument {
				cfg.Obs = obs.NewRegistry()
			}
			engine := core.NewEngine(cfg)
			if findings := engine.Run(context.Background()); len(findings) > 0 {
				b.Fatalf("reference pipeline produced findings: %+v", findings[0])
			}
		}
		rate := float64(b.N*fuzzBatch) / b.Elapsed().Seconds()
		b.ReportMetric(rate, "programs/sec")
		return rate
	}
	b.Run("plain", func(b *testing.B) {
		obsPlainRate = run(b, false)
	})
	b.Run("instrumented", func(b *testing.B) {
		rate := run(b, true)
		if obsPlainRate > 0 {
			b.ReportMetric((1-rate/obsPlainRate)*100, "overhead-%")
		}
	})
}

var obsPlainRate float64

// BenchmarkParallelReduce measures speculative reduction on harvested
// compile-crash witnesses: a window of 1 (exact serial ddmin) against a
// window of 8 over the same findings, one finding at a time, so
// within-finding speculation is the only parallelism in play. The
// benchjson CI gate requires witness-diff == 0 at any core count — the
// reduced programs must be byte-identical, speculation may only buy or
// cost time — and scales its speedup floor with GOMAXPROCS: ≈linear on
// ≥8 cores, while on a single-core runner speculation cannot pay and the
// gate only bounds the waste overhead (see the procs metric).
func BenchmarkParallelReduce(b *testing.B) {
	reg := bugs.Load()
	var active []*bugs.Bug
	for _, id := range []string{"P4C-C-04", "P4C-C-13"} {
		bug := reg.ByID(id)
		if bug == nil {
			b.Fatalf("registry has no bug %s", id)
		}
		active = append(active, bug)
	}
	comp := compiler.New(bugs.Instrument(compiler.DefaultPasses(), active)...)
	type witness struct {
		prog *ast.Program
		pass string
	}
	var wits []witness
	for seed := int64(0); len(wits) < 6 && seed < 96; seed++ {
		prog := generator.Generate(generator.DefaultConfig(seed))
		if _, err := comp.Compile(prog); err != nil {
			var ce *compiler.CrashError
			if errors.As(err, &ce) {
				wits = append(wits, witness{prog, ce.Pass})
			}
		}
	}
	if len(wits) < 4 {
		b.Fatalf("only %d crash witnesses harvested; the seeded defects should fire more often", len(wits))
	}
	keepFor := func(w witness) reduce.PredicateCtx {
		return func(_ context.Context, cand *ast.Program) bool {
			_, err := comp.Compile(cand)
			var ce *compiler.CrashError
			return errors.As(err, &ce) && ce.Pass == w.pass
		}
	}
	run := func(b *testing.B, par int) (float64, []string) {
		var outs []string
		var agg reduce.Stats
		for i := 0; i < b.N; i++ {
			outs = outs[:0]
			for _, w := range wits {
				red, st := reduce.ReduceStats(context.Background(), w.prog, keepFor(w),
					reduce.Options{MaxRounds: 3, MaxPredicateCalls: 400, Parallelism: par})
				outs = append(outs, printer.Print(red))
				agg.SerialCalls += st.SerialCalls
				agg.Launched += st.Launched
				agg.Wasted += st.Wasted
			}
		}
		perWitness := float64(b.N * len(wits))
		ns := float64(b.Elapsed().Nanoseconds()) / perWitness
		b.ReportMetric(ns, "ns/witness")
		b.ReportMetric(float64(agg.SerialCalls)/perWitness, "serial-calls/witness")
		if agg.Launched > 0 {
			b.ReportMetric(float64(agg.Wasted)/float64(agg.Launched)*100, "wasted-%")
		}
		return ns, append([]string(nil), outs...)
	}
	b.Run("serial", func(b *testing.B) {
		parReduceSerialNs, parReduceSerialOut = run(b, 1)
	})
	b.Run("spec8", func(b *testing.B) {
		ns, outs := run(b, 8)
		diff := 0
		switch {
		case len(parReduceSerialOut) != len(outs):
			diff = len(outs)
		default:
			for i := range outs {
				if outs[i] != parReduceSerialOut[i] {
					diff++
				}
			}
		}
		b.ReportMetric(float64(diff), "witness-diff")
		if parReduceSerialNs > 0 {
			b.ReportMetric(parReduceSerialNs/ns, "x-vs-serial")
		}
		b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "procs")
	})
}

var parReduceSerialNs float64
var parReduceSerialOut []string

// BenchmarkFleetFuzz measures what fleet sharding buys and costs: the
// same fixed-seed, pure-generation workload run directly on one engine,
// through a coordinator with one in-process worker (the protocol,
// lease-merge and dedup machinery with zero parallelism to hide it —
// pure overhead), and with two workers (each engine capped at 2 stage
// workers, so the second worker adds real cores). The benchjson CI gate
// scales with the runner: 2 workers must beat 1 by ≥1.6x on 4+ procs and
// ≥1.1x on 2, while on a single core only the coordinator-overhead bound
// (fleet-1 within 10% of direct) applies.
func BenchmarkFleetFuzz(b *testing.B) {
	const syncInterval, leaseSlots, engineWorkers = 8, 8, 2
	runCfg := func() fleet.RunConfig {
		return fleet.RunConfig{
			Seed:          11,
			SyncInterval:  syncInterval,
			EngineWorkers: engineWorkers,
			Reduce:        false,
		}
	}
	fleetRun := func(b *testing.B, workers int) float64 {
		for i := 0; i < b.N; i++ {
			coord, err := fleet.NewCoordinator(fleet.CoordinatorConfig{
				Run:        runCfg(),
				StartSeed:  int64(i) * fuzzBatch,
				Seeds:      fuzzBatch,
				LeaseSlots: leaseSlots,
			})
			if err != nil {
				b.Fatal(err)
			}
			ws := make([]fleet.WorkerConfig, workers)
			for j := range ws {
				ws[j] = fleet.WorkerConfig{Name: fmt.Sprintf("w%d", j)}
			}
			if err := fleet.RunLocal(context.Background(), coord, ws); err != nil {
				b.Fatal(err)
			}
			if fs := coord.Findings(); len(fs) > 0 {
				b.Fatalf("reference pipeline produced findings: %+v", fs[0])
			}
		}
		rate := float64(b.N*fuzzBatch) / b.Elapsed().Seconds()
		b.ReportMetric(rate, "programs/sec")
		return rate
	}
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cfg := core.DefaultEngineConfig()
			cfg.StartSeed = int64(i) * fuzzBatch
			cfg.Seeds = fuzzBatch
			cfg.Seed = 11
			cfg.MutateRatio = 0
			cfg.SyncInterval = syncInterval
			cfg.Workers = engineWorkers
			cfg.Reduce = false
			cfg.Passes = compiler.DefaultPasses()
			engine := core.NewEngine(cfg)
			if findings := engine.Run(context.Background()); len(findings) > 0 {
				b.Fatalf("reference pipeline produced findings: %+v", findings[0])
			}
		}
		fleetDirectRate = float64(b.N*fuzzBatch) / b.Elapsed().Seconds()
		b.ReportMetric(fleetDirectRate, "programs/sec")
	})
	b.Run("workers-1", func(b *testing.B) {
		fleet1Rate = fleetRun(b, 1)
		if fleetDirectRate > 0 {
			b.ReportMetric((1-fleet1Rate/fleetDirectRate)*100, "overhead-%")
		}
	})
	b.Run("workers-2", func(b *testing.B) {
		rate := fleetRun(b, 2)
		if fleet1Rate > 0 {
			b.ReportMetric(rate/fleet1Rate, "x-vs-1worker")
		}
		b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "procs")
	})
}

var fleetDirectRate, fleet1Rate float64
