// Quickstart: convert the paper's Figure 3 program into its symbolic
// functional form, inspect the formula, and ask the solver for a concrete
// table configuration + packet that reaches the `assign` action.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"gauntlet/internal/p4/parser"
	"gauntlet/internal/p4/types"
	"gauntlet/internal/smt"
	"gauntlet/internal/smt/solver"
	"gauntlet/internal/sym"
)

// The program of Figure 3a: a control applying one table.
const fig3 = `
header Hdr_t { bit<8> a; bit<8> b; }
struct Hdr { Hdr_t h; }
control ingress(inout Hdr hdr) {
    action assign() { hdr.h.a = 8w1; }
    table t {
        key = { hdr.h.a : exact; }
        actions = { assign; NoAction; }
        default_action = NoAction();
    }
    apply { t.apply(); }
}
`

func main() {
	prog, err := parser.Parse(fig3)
	if err != nil {
		log.Fatal(err)
	}
	if err := types.Check(prog); err != nil {
		log.Fatal(err)
	}

	// Symbolic interpretation: one formula per programmable block (§5.2).
	block, err := sym.ExecControl(prog, prog.Control("ingress"))
	if err != nil {
		log.Fatal(err)
	}

	// The functional form of Figure 3b: each output field is a nested
	// if-then-else over the inputs and the symbolic table state.
	var flat []sym.NamedTerm
	sym.Flatten("hdr", block.Out[0].Val, &flat)
	fmt.Println("functional form (one term per output leaf):")
	for _, nt := range flat {
		fmt.Printf("  %-14s = %s\n", nt.Name, nt.Term)
	}
	fmt.Println("\nsymbolic table variables:", block.TableVars)

	// Ask the solver: which input and table state make the output a = 1
	// while the input a was not 1? That requires hitting `assign`.
	aOut := flat[1].Term // hdr.h.a
	aIn := smt.Var("hdr.h.a", 8)
	res := solver.Solve(0,
		smt.Eq(aOut, smt.Const(1, 8)),
		smt.Ne(aIn, smt.Const(1, 8)),
	)
	fmt.Println("\nsolver verdict:", res.Status)
	fmt.Println("model:")
	fmt.Printf("  input hdr.h.a     = %d\n", res.Model["hdr.h.a"])
	fmt.Printf("  table key         = %d (must equal the input for a hit)\n", res.Model["ingress.t.key_0"])
	fmt.Printf("  action selector   = %d (1 selects `assign`)\n", res.Model["ingress.t.action"])
}
