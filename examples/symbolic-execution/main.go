// Symbolic execution against a black-box back end (Figure 4): generate
// input/output packet tests from the program's formula, run them through
// the proprietary Tofino stand-in whose back end carries a seeded defect,
// and observe the packet mismatch — without ever seeing the compiler's
// intermediate representation.
//
// Run with: go run ./examples/symbolic-execution
package main

import (
	"fmt"
	"log"

	"gauntlet/internal/bugs"
	"gauntlet/internal/compiler"
	"gauntlet/internal/p4/eval"
	"gauntlet/internal/p4/parser"
	"gauntlet/internal/p4/types"
	"gauntlet/internal/target/device"
	"gauntlet/internal/target/tofino"
	"gauntlet/internal/testgen"
)

const program = `
header Eth { bit<8> kind; bit<8> val; }
struct Headers { Eth eth; }
struct standard_metadata_t { bit<9> ingress_port; bit<9> egress_spec; }
parser p(packet pkt, out Headers hdr, inout standard_metadata_t sm) {
    state start {
        pkt.extract(hdr.eth);
        transition accept;
    }
}
control ingress(inout Headers hdr, inout standard_metadata_t sm) {
    apply {
        if (hdr.eth.kind == 8w1) {
            hdr.eth.val = hdr.eth.val |+| 8w200;
        }
    }
}
control egress(inout Headers hdr, inout standard_metadata_t sm) {
    apply { }
}
control dep(packet pkt, in Headers hdr) {
    apply { pkt.emit(hdr.eth); }
}
V1Switch(p, ingress, egress, dep) main;
`

func main() {
	prog, err := parser.Parse(program)
	if err != nil {
		log.Fatal(err)
	}
	if err := types.Check(prog); err != nil {
		log.Fatal(err)
	}

	// Test generation works on the *input* program: its symbolic pipeline
	// predicts the output packet for each path (§6.2).
	cases, err := testgen.Generate(prog, testgen.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d path-covering test cases:\n", len(cases))
	for _, c := range cases {
		fmt.Println(" ", c.Summary())
	}

	// Compile for the black-box target with a seeded back-end defect:
	// saturating adds lowered as wrapping adds.
	bug := bugs.Load().ByID("TOF-S-03")
	fmt.Printf("\nseeded back-end defect: %s — %s\n", bug.ID, bug.Description)
	pipeline := bugs.Instrument(
		append(compiler.DefaultPasses(), tofino.BackendPasses()...),
		[]*bugs.Bug{bug})
	res, err := compiler.New(pipeline...).Compile(prog)
	if err != nil {
		log.Fatal(err)
	}
	dev := device.New(res.Final, eval.ZeroUndef)

	// PTF-style run: inject, compare against the symbolic expectation.
	found := 0
	for _, c := range cases {
		obs, err := dev.Inject(c.Config, c.Packet)
		if err != nil {
			log.Fatal(err)
		}
		want := device.Result{Drop: c.ExpectDrop, Packet: c.ExpectPacket}
		if !device.Equal(want, obs) {
			found++
			fmt.Printf("\nMISMATCH on %s\n  expected %x\n  observed %x\n",
				c.Summary(), c.ExpectPacket, obs.Packet)
		}
	}
	if found == 0 {
		log.Fatal("expected the defect to surface as a packet mismatch")
	}
	fmt.Printf("\nsemantic bug detected through packets alone (%d mismatching cases)\n", found)
}
