// Continuous-integration fuzzing (§7.1): generate a stream of random
// programs, push each through the reference pipeline, and translation-
// validate every pass — the workflow the paper ran weekly over ~10000
// programs and proposes as a CI gate for P4C.
//
// Run with: go run ./examples/fuzz-campaign [-n 25]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"gauntlet/internal/compiler"
	"gauntlet/internal/generator"
	"gauntlet/internal/p4/ast"
	"gauntlet/internal/validate"
)

func main() {
	n := flag.Int("n", 25, "number of random programs")
	flag.Parse()

	comp := compiler.New(compiler.DefaultPasses()...)
	start := time.Now()
	clean, transitions := 0, 0
	for seed := int64(0); seed < int64(*n); seed++ {
		prog := generator.Generate(generator.DefaultConfig(seed))
		res, err := comp.Compile(prog)
		if err != nil {
			log.Fatalf("seed %d: compiler bug: %v", seed, err)
		}
		verdicts, err := validate.Snapshots(res, validate.Options{MaxConflicts: 20000})
		if err != nil {
			log.Fatalf("seed %d: interpreter limitation: %v", seed, err)
		}
		if fails := validate.Failures(verdicts); len(fails) > 0 {
			log.Fatalf("seed %d: MISCOMPILATION: %s", seed, fails[0])
		}
		clean++
		transitions += len(verdicts)
		if seed%10 == 9 {
			fmt.Printf("  %d programs validated...\n", seed+1)
		}
	}
	elapsed := time.Since(start)
	fmt.Printf("\n%d programs, %d pass transitions validated in %v (%.1f programs/sec)\n",
		clean, transitions, elapsed.Round(time.Millisecond),
		float64(clean)/elapsed.Seconds())
	perWeek := float64(clean) / elapsed.Seconds() * 3600 * 24 * 7
	fmt.Printf("extrapolated throughput: %.0f programs/week (the paper ran ~10000/week)\n", perWeek)
	_ = ast.Program{}
}
