// Continuous-integration fuzzing (§7.1): stream random programs through
// the stage-parallel engine — generate → compile → oracle (translation
// validation) → dedup → reduce — the workflow the paper ran weekly over
// ~10000 programs and proposes as a CI gate for P4C. Workers share only
// the hash-consed term interner and the validation cache; everything else
// (compilers, solver sessions) is per-program, which is why throughput
// scales with cores.
//
// Run with: go run ./examples/fuzz-campaign [-n 25] [-workers N]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"gauntlet/internal/core"
)

func main() {
	n := flag.Int64("n", 25, "number of random programs")
	workers := flag.Int("workers", 0, "per-stage worker pool size (0 = GOMAXPROCS)")
	flag.Parse()

	cfg := core.DefaultEngineConfig()
	cfg.Seeds = *n
	cfg.Workers = *workers
	cfg.OnFinding = func(f core.Finding) {
		fmt.Printf("seed %d: %s: %s\n", f.Seed, f.Kind, f.Detail)
	}
	engine := core.NewEngine(cfg)

	// The engine's Stats snapshot is lock-cheap: poll it for live
	// progress while the pipeline runs.
	done := make(chan struct{})
	go func() {
		tick := time.NewTicker(time.Second)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				s := engine.Stats()
				fmt.Printf("  %d programs validated (%.1f/sec)...\n", s.Clean, s.ProgramsPerSec)
			}
		}
	}()
	findings := engine.Run(context.Background())
	close(done)

	s := engine.Stats()
	fmt.Printf("\n%s\n", s.Summary())
	perWeek := s.ProgramsPerSec * 3600 * 24 * 7
	fmt.Printf("extrapolated throughput: %.0f programs/week (the paper ran ~10000/week)\n", perWeek)
	if len(findings) > 0 {
		fmt.Printf("%d unique findings — the reference pipeline should be defect-free\n", len(findings))
		os.Exit(1)
	}
}
