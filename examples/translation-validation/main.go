// Translation validation (Figure 2): compile a program whose pipeline
// contains a seeded Predication defect, emit the program after every
// pass, and let the equivalence checker pinpoint the erroneous pass and
// produce the counterexample packet/table state.
//
// Run with: go run ./examples/translation-validation
package main

import (
	"fmt"
	"log"

	"gauntlet/internal/bugs"
	"gauntlet/internal/compiler"
	"gauntlet/internal/p4/parser"
	"gauntlet/internal/p4/types"
	"gauntlet/internal/validate"
)

const program = `
header Hdr_t { bit<8> a; bit<8> b; }
struct Hdr { Hdr_t h; }
control ingress(inout Hdr hdr) {
    action flip() {
        if (hdr.h.a == 8w1) {
            hdr.h.a = 8w2;
        } else {
            hdr.h.b = 8w3;
        }
    }
    table t {
        key = { hdr.h.a : exact; }
        actions = { flip; NoAction; }
        default_action = flip();
    }
    apply { t.apply(); }
}
`

func main() {
	prog, err := parser.Parse(program)
	if err != nil {
		log.Fatal(err)
	}
	if err := types.Check(prog); err != nil {
		log.Fatal(err)
	}

	// Activate one of the paper-shaped Predication regressions (§7.2).
	reg := bugs.Load()
	bug := reg.ByID("P4C-S-16")
	fmt.Printf("seeded defect: %s — %s\n\n", bug.ID, bug.Description)
	passes := bugs.Instrument(compiler.DefaultPasses(), []*bugs.Bug{bug})

	res, err := compiler.New(passes...).Compile(prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled through %d changed snapshots; validating each transition...\n\n",
		len(res.Snapshots)-1)

	verdicts, err := validate.Snapshots(res, validate.Options{MaxConflicts: 200000})
	if err != nil {
		log.Fatal(err)
	}
	for _, v := range verdicts {
		fmt.Println(" ", v)
	}
	fails := validate.Failures(verdicts)
	if len(fails) == 0 {
		log.Fatal("expected the seeded defect to be caught")
	}
	f := fails[0]
	fmt.Printf("\nMISCOMPILATION pinpointed in pass %q (block %s)\n", f.PassB, f.Block)
	fmt.Println("counterexample assignment (input header, table key, action id):")
	for k, v := range f.Counterexample {
		fmt.Printf("  %-20s = %d\n", k, v)
	}
	fmt.Println("\nemitted program after the faulty pass:")
	for _, s := range res.Snapshots {
		if s.Pass == f.PassB {
			fmt.Println(s.Text)
		}
	}
}
