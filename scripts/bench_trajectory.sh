#!/usr/bin/env bash
# bench_trajectory.sh — run the validation-hot-path benchmark suite and
# emit BENCH_3.json (programs/sec, ns/equivalence-query, gate-reuse %).
#
# The JSON conversion doubles as a smoke gate: it exits nonzero when a
# headline benchmark is missing or the structural-hash path reports a
# zero gate-reuse rate.
#
#   BENCHTIME=5x scripts/bench_trajectory.sh      # more iterations
#   scripts/bench_trajectory.sh                   # default 2x
set -euo pipefail
cd "$(dirname "$0")/.."

benchtime="${BENCHTIME:-2x}"
pattern='EquivalenceQuery|Sec52_PipelineThroughput|Table2_BugSummary|EngineFuzz|GateReuse'
out="$(mktemp)"
trap 'rm -f "$out"' EXIT

go test -run=NONE -bench="$pattern" -benchtime="$benchtime" . | tee "$out"
go run ./cmd/benchjson < "$out" > BENCH_3.json
echo "wrote BENCH_3.json:"
cat BENCH_3.json
