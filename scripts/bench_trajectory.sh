#!/usr/bin/env bash
# bench_trajectory.sh — run the validation-hot-path, corpus-engine,
# serve-mode, resilience, concolic, speculative-reduction, fleet and
# introspection benchmark suite and emit BENCH_10.json (programs/sec,
# ns/equivalence-query, gate-reuse %, corpus admission rate and
# coverage-fingerprint counts for generation vs mutation mode, per-epoch
# context bytes for the rotating engine, the robustness layer's
# throughput overhead, the concolic fast path's falsification rate,
# packets/sec and on-vs-off per-query cost, the speculative reducer's
# speedup and wasted-probe ratio over exact serial ddmin, the
# metrics registry's throughput overhead, and the fleet coordinator's
# overhead and 2-vs-1-worker scaling).
#
# The JSON conversion doubles as a smoke gate: it exits nonzero when a
# headline benchmark is missing, the structural-hash path reports a zero
# gate-reuse rate, mutation-mode throughput drops below half of
# generation-mode, per-epoch context memory grows more than 15%
# epoch-over-epoch (the serve-mode plateau gate), arming the robustness
# layer (watchdogs + journal/checkpointing) costs more than 5% of plain
# fuzz throughput, the concolic tape falsifies nothing on the
# defect-seeded workload, the fast path costs more than 5% over
# solver-only ns/equivalence-query, a speculatively reduced witness
# differs from the serial reduction by even one byte, speculative
# reduction misses its core-count-scaled speedup floor (≥2x on 8+
# procs; overhead-only bounds on fewer), installing the metrics
# registry costs more than 5% of uninstrumented fuzz throughput, the
# fleet coordinator taxes a one-worker campaign more than 10% over the
# direct engine, or a two-worker fleet misses its core-count-scaled
# speedup floor over one worker (≥1.6x on 4+ procs, ≥1.1x on 2).
#
#   BENCHTIME=5x scripts/bench_trajectory.sh      # more iterations
#   scripts/bench_trajectory.sh                   # default 2x
set -euo pipefail
cd "$(dirname "$0")/.."

benchtime="${BENCHTIME:-2x}"
pattern='EquivalenceQuery|Sec52_PipelineThroughput|Table2_BugSummary|EngineFuzz|GateReuse|CorpusFuzz|ServeEpochs|ResilientFuzz|ConcolicFalsify|ParallelReduce|ObsOverhead|FleetFuzz'
artifact="BENCH_10.json"
out="$(mktemp)"
# On any failure, remove the scratch file AND any partially-written
# artifact: a truncated BENCH_*.json must never survive to be read as a
# real trajectory point.
trap 'status=$?; rm -f "$out"; if [ "$status" -ne 0 ]; then rm -f "$artifact"; fi' EXIT

go test -run=NONE -bench="$pattern" -benchtime="$benchtime" . | tee "$out"
go run ./cmd/benchjson < "$out" > "$artifact"
echo "wrote $artifact:"
cat "$artifact"
