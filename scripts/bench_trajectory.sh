#!/usr/bin/env bash
# bench_trajectory.sh — run the validation-hot-path and corpus-engine
# benchmark suite and emit BENCH_4.json (programs/sec, ns/equivalence-
# query, gate-reuse %, corpus admission rate and coverage-fingerprint
# counts for generation vs mutation mode).
#
# The JSON conversion doubles as a smoke gate: it exits nonzero when a
# headline benchmark is missing, the structural-hash path reports a zero
# gate-reuse rate, or mutation-mode throughput drops below half of
# generation-mode.
#
#   BENCHTIME=5x scripts/bench_trajectory.sh      # more iterations
#   scripts/bench_trajectory.sh                   # default 2x
set -euo pipefail
cd "$(dirname "$0")/.."

benchtime="${BENCHTIME:-2x}"
pattern='EquivalenceQuery|Sec52_PipelineThroughput|Table2_BugSummary|EngineFuzz|GateReuse|CorpusFuzz'
out="$(mktemp)"
trap 'rm -f "$out"' EXIT

go test -run=NONE -bench="$pattern" -benchtime="$benchtime" . | tee "$out"
go run ./cmd/benchjson < "$out" > BENCH_4.json
echo "wrote BENCH_4.json:"
cat BENCH_4.json
