#!/usr/bin/env bash
# bench_trajectory.sh — run the validation-hot-path, corpus-engine and
# serve-mode benchmark suite and emit BENCH_5.json (programs/sec,
# ns/equivalence-query, gate-reuse %, corpus admission rate and
# coverage-fingerprint counts for generation vs mutation mode, and
# per-epoch context bytes for the rotating engine).
#
# The JSON conversion doubles as a smoke gate: it exits nonzero when a
# headline benchmark is missing, the structural-hash path reports a zero
# gate-reuse rate, mutation-mode throughput drops below half of
# generation-mode, or per-epoch context memory grows more than 15%
# epoch-over-epoch (the serve-mode plateau gate).
#
#   BENCHTIME=5x scripts/bench_trajectory.sh      # more iterations
#   scripts/bench_trajectory.sh                   # default 2x
set -euo pipefail
cd "$(dirname "$0")/.."

benchtime="${BENCHTIME:-2x}"
pattern='EquivalenceQuery|Sec52_PipelineThroughput|Table2_BugSummary|EngineFuzz|GateReuse|CorpusFuzz|ServeEpochs'
out="$(mktemp)"
trap 'rm -f "$out"' EXIT

go test -run=NONE -bench="$pattern" -benchtime="$benchtime" . | tee "$out"
go run ./cmd/benchjson < "$out" > BENCH_5.json
echo "wrote BENCH_5.json:"
cat BENCH_5.json
