#!/usr/bin/env bash
# fleet_smoke.sh — end-to-end smoke for the fleet-scale sharded fuzzing
# path, the CI job behind the "worker count is unobservable" claim:
#
#   1. Single-process baseline: a bounded, defect-seeded, pure-generation
#      fuzz run. Its finding stream is the reference the fleet must
#      reproduce byte-for-byte.
#   2. Fleet campaign over a unix socket: coordinator with durable state
#      plus two external worker processes. SIGKILL one worker mid-lease —
#      the coordinator must notice the loss, return its leases to pending
#      and re-issue them to the survivor. Probe the admin plane
#      (/healthz, /statusz with the fleet section) while it runs, then
#      SIGKILL the coordinator itself mid-campaign: no shutdown path
#      runs, the journal and checkpoint are all that survive.
#   3. Resume: a fresh coordinator (-resume, -fleet 2) restores the
#      watermark, corpus and journal-seeded dedup and finishes the
#      budget.
#   4. The combined journal's finding sequence must be identical to the
#      single-process baseline's — same fingerprints, same canonical
#      order, despite the sharding, the worker kill, the lease re-issue
#      and the coordinator crash. (Fingerprints of reduced findings hash
#      the alpha-renamed witness, so sequence identity implies witness
#      byte identity; the in-process race-enabled tests in internal/fleet
#      assert the full finding structs field by field.)
set -euo pipefail
cd "$(dirname "$0")/.."

dir="$(mktemp -d)"
cleanup() {
  local pids
  pids=$(jobs -p) || true
  [ -n "$pids" ] && kill $pids 2>/dev/null || true
  rm -rf "$dir"
}
trap cleanup EXIT
bin="$dir/p4gauntlet"
go build -o "$bin" ./cmd/p4gauntlet

# fetch URL: curl when available, wget fallback (CI images vary).
fetch() {
  if command -v curl >/dev/null 2>&1; then curl -sf "$1"; else wget -qO- "$1"; fi
}

SEEDS=2048
SLOTS=64
SEED=11
DEFECTS="P4C-C-04,P4C-C-13,P4C-S-02"

echo "--- phase 1: single-process baseline ($SEEDS seeds, defect-seeded)"
"$bin" -mode fuzz -seeds "$SEEDS" -seed "$SEED" -mutate-ratio 0 \
  -defects "$DEFECTS" -jsonl "$dir/base.jsonl" >/dev/null 2>"$dir/base.err" || true
base_count=$(grep -c '"kind"' "$dir/base.jsonl" || true)
if [ "${base_count:-0}" -eq 0 ]; then
  echo "FAIL: baseline run produced no findings (the seeded defects must fire)"
  cat "$dir/base.err"
  exit 1
fi
echo "phase 1 ok: $base_count baseline findings"

echo "--- phase 2: fleet over a unix socket, SIGKILL a worker, then the coordinator"
sock="$dir/fleet.sock"
port=$((20000 + RANDOM % 20000))
"$bin" -mode coordinator -listen "$sock" -seeds "$SEEDS" -seed "$SEED" \
  -lease-slots "$SLOTS" -workers 2 -defects "$DEFECTS" -state "$dir/state" \
  -http "127.0.0.1:$port" -jsonl "$dir/fleet1.jsonl" 2>"$dir/coord1.err" &
coord=$!
"$bin" -mode worker -connect "$sock" -worker-name wA 2>"$dir/wA.err" &
wa=$!
"$bin" -mode worker -connect "$sock" -worker-name wB 2>"$dir/wB.err" &
wb=$!

# Kill wA once it is provably mid-lease (it logged the lease start, and
# leases are long enough that it is still running it).
for _ in $(seq 1 150); do
  grep -q "running lease" "$dir/wA.err" 2>/dev/null && break
  sleep 0.1
done
grep -q "running lease" "$dir/wA.err" \
  || { echo "FAIL: worker wA never started a lease"; cat "$dir/coord1.err" "$dir/wA.err"; exit 1; }

health=$(fetch "http://127.0.0.1:$port/healthz" || true)
if [ "$health" != "ok" ]; then
  echo "FAIL: /healthz answered '${health:-nothing}', want 'ok'"
  cat "$dir/coord1.err"
  exit 1
fi
fetch "http://127.0.0.1:$port/statusz" > "$dir/statusz.json" \
  || { echo "FAIL: /statusz unreachable"; exit 1; }
grep -q '"mode": "coordinator"' "$dir/statusz.json" \
  || { echo "FAIL: /statusz is missing the fleet section"; head "$dir/statusz.json"; exit 1; }
grep -q '"leases_total"' "$dir/statusz.json" \
  || { echo "FAIL: /statusz fleet section malformed"; head "$dir/statusz.json"; exit 1; }

kill -9 "$wa"
wait "$wa" 2>/dev/null || true

# Connection loss must beat the lease-timeout clock: the dead worker's
# leases return to pending immediately.
for _ in $(seq 1 50); do
  grep -q "back to pending" "$dir/coord1.err" 2>/dev/null && break
  sleep 0.1
done
grep -q "back to pending" "$dir/coord1.err" \
  || { echo "FAIL: coordinator never re-issued the killed worker's lease"; cat "$dir/coord1.err"; exit 1; }
echo "phase 2 ok: worker killed mid-lease, lease back to pending"

# Let the surviving worker make progress, then crash the coordinator.
for _ in $(seq 1 200); do
  kill -0 "$coord" 2>/dev/null || break
  n=$(sed -n 's/.*watermark lease \([0-9]*\)\/.*/\1/p' "$dir/coord1.err" | tail -1)
  [ -n "${n:-}" ] && [ "$n" -ge 4 ] && break
  sleep 0.1
done
if kill -0 "$coord" 2>/dev/null; then
  kill -9 "$coord" 2>/dev/null || true
  echo "coordinator killed mid-campaign"
else
  echo "note: campaign finished before the coordinator kill; resume leg degenerates to a no-op resume"
fi
wait "$coord" 2>/dev/null || true
wait "$wb" 2>/dev/null || true

echo "--- phase 3: resume with a fresh coordinator and a forked fleet"
"$bin" -mode coordinator -listen "$sock" -resume "$dir/state" -fleet 2 \
  -seeds "$SEEDS" -seed "$SEED" -lease-slots "$SLOTS" -workers 2 \
  -defects "$DEFECTS" -jsonl "$dir/fleet2.jsonl" 2>"$dir/coord2.err" || true
grep -q "campaign complete" "$dir/coord2.err" \
  || { echo "FAIL: resumed campaign did not complete"; cat "$dir/coord2.err"; exit 1; }
grep -q "^resume: watermark slot" "$dir/coord2.err" \
  || { echo "FAIL: resume did not restore from the state directory"; cat "$dir/coord2.err"; exit 1; }
echo "phase 3 ok: $(grep '^resume: watermark slot' "$dir/coord2.err")"

echo "--- phase 4: journal sequence vs baseline finding stream"
# Ordered fingerprint sequences (not sorted sets): canonical report order
# is part of the contract.
fpseq() { grep -o '"fingerprint":[0-9]*' "$1" || true; }
if ! diff <(fpseq "$dir/base.jsonl") <(fpseq "$dir/state/journal.jsonl") > "$dir/fp.diff"; then
  echo "FAIL: fleet journal diverges from the single-process baseline:"
  cat "$dir/fp.diff"
  exit 1
fi
# And the two coordinator incarnations' streams must partition the
# baseline: no fingerprint reported by both.
dups=$(comm -12 <(fpseq "$dir/fleet1.jsonl" | sort -u) <(fpseq "$dir/fleet2.jsonl" | sort -u) | wc -l)
if [ "$dups" -ne 0 ]; then
  echo "FAIL: $dups finding fingerprint(s) re-reported after the coordinator crash"
  exit 1
fi
echo "phase 4 ok: $base_count findings, identical sequence, no re-reports across the crash"
echo "fleet smoke: PASS"
