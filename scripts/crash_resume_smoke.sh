#!/usr/bin/env bash
# crash_resume_smoke.sh — end-to-end chaos soak for the crash-resilient
# serve path, the CI job behind the "kill -9 survives" claim:
#
#   1. Start `p4gauntlet -mode serve` with durable state and deterministic
#      fault injection (panics, stalls, errors at every stage). The
#      process must absorb every fault as a quarantine record or tool
#      error — zero deaths.
#   2. SIGHUP it mid-campaign (forced checkpoint + stats flush, no drain),
#      then SIGKILL it. No shutdown path runs: whatever the journal and
#      the last checkpoint hold is all that survives, exactly like a
#      crash.
#   2a. While the daemon lives, probe its admin plane: /healthz must
#      answer 200 "ok" and /metrics must serve Prometheus text — the
#      introspection endpoints have to be reachable on a real socket,
#      under real fault injection, not just in httptest.
#   3. Resume from the state directory with a bounded budget. The resumed
#      run must pick up past the checkpoint watermark and report no
#      finding fingerprint the first incarnation already journaled —
#      including a legacy pre-provenance journal record spliced in
#      between the incarnations, which must parse and dedup like any
#      other (the provenance field is additive, old journals replay
#      unchanged).
#
# (In-process goroutine-leak and finding-set-invariance checks live in
# the race-enabled chaos tests in internal/core; this script covers the
# process-boundary half: real signals, real fsync, real re-exec.)
set -euo pipefail
cd "$(dirname "$0")/.."

dir="$(mktemp -d)"
trap 'rm -rf "$dir"' EXIT
bin="$dir/p4gauntlet"
go build -o "$bin" ./cmd/p4gauntlet

# fetch URL: curl when available, wget fallback (CI images vary).
fetch() {
  if command -v curl >/dev/null 2>&1; then curl -sf "$1"; else wget -qO- "$1"; fi
}

port=$((20000 + RANDOM % 20000))
echo "--- phase 1: serve under injected faults, then SIGHUP + SIGKILL"
"$bin" -mode serve -seed 7 -reduce=false -state "$dir/state" \
  -epoch-programs 48 -checkpoint-programs 16 -stats-interval 2s \
  -stage-timeout 2s -inject-every 7 -inject-seed 3 -inject-stall 5s \
  -http "127.0.0.1:$port" \
  -jsonl "$dir/run1.jsonl" 2>"$dir/run1.err" &
pid=$!
sleep 25
if ! kill -0 "$pid" 2>/dev/null; then
  echo "FAIL: serve died under fault injection"
  cat "$dir/run1.err"
  exit 1
fi

echo "--- phase 2a: probe the admin plane on the live daemon"
health=$(fetch "http://127.0.0.1:$port/healthz" || true)
if [ "$health" != "ok" ]; then
  echo "FAIL: /healthz answered '${health:-nothing}', want 'ok'"
  cat "$dir/run1.err"
  exit 1
fi
fetch "http://127.0.0.1:$port/metrics" > "$dir/metrics.txt" \
  || { echo "FAIL: /metrics unreachable"; cat "$dir/run1.err"; exit 1; }
grep -q '^gauntlet_programs_generated_total ' "$dir/metrics.txt" \
  || { echo "FAIL: /metrics is missing gauntlet_programs_generated_total"; head "$dir/metrics.txt"; exit 1; }
grep -q '^# TYPE gauntlet_stage_duration_seconds histogram' "$dir/metrics.txt" \
  || { echo "FAIL: /metrics is missing the stage-latency histogram"; head "$dir/metrics.txt"; exit 1; }
fetch "http://127.0.0.1:$port/statusz" > "$dir/statusz.json" \
  || { echo "FAIL: /statusz unreachable"; exit 1; }
grep -q '"mode": "serve"' "$dir/statusz.json" \
  || { echo "FAIL: /statusz payload malformed"; head "$dir/statusz.json"; exit 1; }
echo "phase 2a ok: /healthz, /metrics and /statusz live"

kill -HUP "$pid"
sleep 5
kill -9 "$pid"
wait "$pid" 2>/dev/null || true

grep -q "SIGHUP: checkpoint requested" "$dir/run1.err" \
  || { echo "FAIL: SIGHUP was not handled"; cat "$dir/run1.err"; exit 1; }
test -f "$dir/state/checkpoint.json" \
  || { echo "FAIL: no checkpoint written"; exit 1; }
quar=$(ls "$dir/state/quarantine"/*.json 2>/dev/null | wc -l)
if [ "$quar" -eq 0 ]; then
  echo "FAIL: injected panics/stalls produced no quarantine records"
  cat "$dir/run1.err"
  exit 1
fi
echo "phase 1 ok: $quar quarantine records, checkpoint present"

echo "--- phase 3: resume from the killed daemon's state"
# Splice a legacy pre-provenance finding record (no "provenance" key)
# into the journal: resume must re-read it without error and treat its
# fingerprint as already reported.
legacy_fp=424242424242
echo "{\"kind\":\"crash\",\"seed\":999999,\"backend\":\"v1model\",\"pass\":\"LegacyPass\",\"detail\":\"legacy record\",\"fingerprint\":$legacy_fp}" \
  >> "$dir/state/journal.jsonl"
"$bin" -mode fuzz -seeds 64 -reduce=false -resume "$dir/state" \
  -jsonl "$dir/run2.jsonl" 2>"$dir/run2.err" \
  || { echo "FAIL: resume run failed"; cat "$dir/run2.err"; exit 1; }
watermark=$(sed -n 's/^resume: watermark slot \([0-9]*\).*/\1/p' "$dir/run2.err")
if [ -z "$watermark" ] || [ "$watermark" -le 0 ]; then
  echo "FAIL: resume did not restore a positive watermark (got '${watermark:-none}')"
  cat "$dir/run2.err"
  exit 1
fi

# Dedup across the kill: no finding fingerprint may appear in both
# incarnations' streams.
fp() { grep -o '"fingerprint":[0-9]*' "$1" 2>/dev/null | sort -u || true; }
dups=$(comm -12 <(fp "$dir/run1.jsonl") <(fp "$dir/run2.jsonl") | wc -l)
if [ "$dups" -ne 0 ]; then
  echo "FAIL: $dups finding fingerprint(s) re-reported after resume"
  comm -12 <(fp "$dir/run1.jsonl") <(fp "$dir/run2.jsonl")
  exit 1
fi
if grep -q "\"fingerprint\":$legacy_fp" "$dir/run2.jsonl" 2>/dev/null; then
  echo "FAIL: resume re-reported the spliced legacy fingerprint"
  exit 1
fi
echo "phase 3 ok: resumed at slot $watermark, no re-reported findings (legacy record included)"
echo "crash-resume smoke: PASS"
