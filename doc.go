// Package gauntlet reproduces "Gauntlet: Finding Bugs in Compilers for
// Programmable Packet Processing" (Ruffy, Wang, Sivaraman — OSDI 2020) as
// a self-contained Go library: a P4₁₆-subset toolchain (parser, type
// checker, nanopass compiler, interpreter), a QF_BV SMT solver, the
// paper's three bug-finding techniques (random program generation,
// translation validation, symbolic-execution test generation), two target
// simulators (BMv2 and a black-box Tofino stand-in), a seeded-defect
// registry reproducing the paper's 78-bug evaluation, an automatic
// test-case reducer, and a streaming fuzzing engine that runs all of it
// as the continuous-integration service the paper proposes (§7.1).
//
// See README.md for the architecture overview, DESIGN.md for the system
// inventory and substitutions, and EXPERIMENTS.md for paper-vs-measured
// results. The benchmark harness in bench_test.go regenerates every table
// and figure:
//
//	go test -bench=. -benchmem .
//
// # Engine architecture
//
// internal/core hosts the bug-finding orchestration in three layers:
//
//   - core.Oracle is the single detection stage: compile a program
//     through a pass pipeline, then interrogate the result with
//     translation validation (§5) and symbolic-execution packet tests
//     (§6). Campaign.Hunt (the Table 2 evaluation), Campaign.HuntClean
//     (the no-false-alarm baseline) and the engine all call this one
//     implementation — there is no second copy of the
//     compile/validate/testgen logic.
//   - core.Engine is the streaming, stage-parallel fuzz pipeline:
//     generate → compile → oracle → fingerprint/dedup → auto-reduce →
//     report, connected by bounded channels with a worker pool per heavy
//     stage. context.Context cancellation is plumbed through every stage
//     and into validate, testgen and reduce; Engine.Stats() is a
//     lock-cheap atomic snapshot (throughput, per-stage counters, cache
//     hit rates, interner growth) safe to poll while the engine runs.
//   - Findings are deduplicated by stable fingerprint — crash and
//     invalid-transform findings hash (pass, message); miscompilations
//     and packet mismatches hash (failing pass, alpha-renamed reduced
//     witness) — and every unique finding is shrunk by internal/reduce
//     with a predicate that re-runs the oracle, automating the manual
//     reduction §8 calls a limitation. Reduction is speculative and
//     parallel (reduce.Options.Parallelism, p4gauntlet -reduce-workers):
//     a window of delta-debugging candidates is probed concurrently but
//     results are consumed strictly in enumeration order and the first
//     success commits, so the reduced witness is byte-identical to
//     serial ddmin at any window width — speculation buys wall-clock,
//     never a different answer. Candidate findings themselves are
//     released to dedup in canonical (round, slot) order at the
//     collector's fold boundaries, so which concrete program represents
//     a fingerprint — and hence the witness bytes — is independent of
//     worker interleaving too.
//
// The concurrency discipline is "isolate first, then share": each worker
// owns its compiler instance and solver sessions outright, and the only
// cross-worker state is immutable or append-only — the hash-consed term
// interner and the validation cache. That is what makes the unique-finding
// set independent of the worker count (engine determinism is tested) and
// lets throughput scale with cores.
//
// To add a new oracle check, extend core.Oracle.Inspect (and Outcome with
// a new finding family); every consumer — campaign, engine, reducer
// predicates — picks it up at once. To fuzz a new backend, give the
// generator a skeleton (generator.Backend) and map it to a reference pass
// pipeline in core.NewEngine; the engine's -backend flag in cmd/p4gauntlet
// selects between them.
//
// # Corpus architecture
//
// Blind grammar fuzzing draws every program fresh; nothing learned from
// one program informs the next, so a long campaign keeps re-exploring the
// same shallow pass behaviours. Three packages close that loop with
// coverage feedback:
//
//   - internal/coverage computes a cheap, deterministic coverage signal
//     per program: an AST feature profile (node/operator/width usage,
//     declaration and table/parser shapes, expression-depth buckets, all
//     counts log-bucketed) plus the compiler's pass trace
//     (compiler.Result.Trace — which passes rewrote the program and by
//     how much, with crash/invalid edges for abnormal terminations),
//     folded into a set of uint64 edges with a stable Fingerprint.
//   - internal/corpus is the concurrency-safe seed pool: a program is
//     admitted only if its profile contributes an unseen edge; admitted
//     seeds carry an energy (new edges over sqrt(size)) that biases
//     selection toward small, coverage-rich programs; eviction is
//     size-biased and never re-opens claimed coverage. Seeds save/load
//     as printed P4 (-corpus DIR), so a campaign's corpus persists.
//   - internal/mutate perturbs input programs — the dual of
//     bugs.Mutators, which corrupts pass output: statement
//     duplicate/swap/splice within declaration-free segments, closed-
//     expression grafting between seeds, constant and width tweaks,
//     if→switch rewrites, table-action insertion, parser-state insertion.
//     Every mutator is deterministic under a supplied rand stream and
//     validity-preserving by construction where the site permits; the
//     rest are rejected by the type checker before reaching the oracle.
//
// core.Engine's generate stage is a scheduler over these: each slot
// either generates fresh (from the slot seed) or mutates corpus seeds
// (under the master EngineConfig.Seed stream), at EngineConfig
// .MutateRatio. Mutants additionally pass a novelty pre-filter — a
// mutant whose AST profile has already been observed is discarded rather
// than spending an oracle slot re-proving a known verdict; exhausted
// slots fall back to fresh generation.
//
// Determinism survives the feedback loop by construction: coverage
// results fold into the corpus in canonical slot order at fixed round
// boundaries (EngineConfig.SyncInterval), and a round's mutation
// decisions draw only on the corpus as of the previous fold. The
// schedule is therefore a pure function of the configuration — the
// unique-finding set and the final corpus coverage-fingerprint set are
// identical for any worker count, and a fixed -seed replays an entire
// p4gauntlet fuzz run, mutation schedule included (both tested, race-
// enabled).
//
// # Performance architecture
//
// A bug-hunting campaign is thousands of solver queries over
// near-identical circuits, so the solver stack is built around making
// most queries never reach CDCL search at all — and making the rest
// cheap:
//
//   - Hash-consing. Every smt.Term is interned by its smart constructor
//     (internal/smt/intern.go): structurally equal terms are
//     pointer-equal within their smt.Context, carry process-unique IDs,
//     and hash in O(1). The constructor folds that rely on pointer
//     equality (Eq(x,x) → true, Ite collapse) therefore fire across
//     independently built formulas — re-symbolizing an unchanged block
//     yields the identical term objects, and a no-op pass transition's
//     equivalence check folds away at construction. smt.InternerStats()
//     reports entries, a bytes estimate and shard occupancy; the engine
//     surfaces the current epoch's snapshot so interner growth is
//     observable in long-running service mode.
//   - Word-level simplification. smt.Simplify (internal/smt/simplify.go)
//     canonicalizes terms through a memoized bottom-up rewriter (sharded
//     cache keyed by interned ID): commutative operands sort by a
//     run-stable structural rank, And/Or flatten and detect complements,
//     Not pushes to the leaves, equalities decompose through concat/zext
//     and cancel shared operands, extracts fuse through
//     concat/zext/bitwise plumbing, and constant shifts become wiring.
//     Every rule is model-preserving (differentially fuzzed against
//     smt.Eval and the raw blaster). sym.Equivalent returns the
//     simplified miter, so translation validation's near-identical
//     comparisons usually collapse to a constant before any solver
//     exists, and validate.Cache keys verdicts on the canonical
//     (simplified) term ID so syntactic variants share one verdict.
//     solver.Session simplifies at its Assert/Lit/BVLits boundary, so
//     test generation and every Solve caller inherit the layer.
//   - Structurally-hashed bit-blasting. Below the term level,
//     solver.Blaster builds negation-normalized two-input AND/XOR/MUX
//     gates through a structural cache: commuted inputs, flipped
//     polarities and De Morgan duals of an existing gate return its
//     literal instead of fresh variables and clauses, so structure
//     repeated across a miter's two sides collapses inside the CNF too.
//     The barrel shifter folds all "distance ≥ width" stages into one
//     amount-overflow OR plus a single AND mask per bit.
//     solver.GateStats() reports built/reused counters, surfaced with the
//     simplification stats in engine Stats() and the p4gauntlet -jsonl
//     run record.
//   - Concolic falsification. Before any solver runs on a fresh
//     equivalence query, the simplified miter is compiled once into a
//     flat topo-ordered instruction tape (smt.CompileTape) and executed
//     bit-parallel — 64 deterministic pseudo-random packets per machine
//     word, inputs derived purely from (seed, miter structure) — so an
//     inequivalent miter usually refutes itself concretely
//     (smt.Tape.Falsify) and the Sat verdict plus witness costs zero
//     solver work; only unfalsified queries fall through to CDCL
//     (solver.EquivalentConcolic). The same tape replays a remembered
//     counterexample in one packet: reduction predicates thread the
//     original finding's witness through validate.Concolic.Hints
//     (miscompilations) or re-inject the cached mismatch case
//     (core.Oracle.ReplayMismatch), so most reduction candidates are
//     decided for the price of a compile. Concrete root traces also
//     steer testgen's path enumeration toward the rarer branch polarity
//     (minority-first) instead of enumerating blindly. The whole layer
//     is an optimization, never a verdict change: findings are
//     byte-identical with it on or off (EngineConfig.ConcolicOff,
//     tested), hint-derived verdicts are never cached (which hint a
//     caller holds is history, not miter structure), and cached
//     witnesses are pure functions of (seed, structure, rounds).
//   - Incremental solving. The SAT core supports solve-under-assumptions
//     (solver.Session): a formula is bit-blasted once and each branch
//     polarity or soft model preference is decided as an assumption on
//     the same instance, with learnt clauses, activities and phases
//     carried across queries. Path enumeration and the §6.2 preference
//     steering cost one incremental query per decision instead of a full
//     re-blast. (Equivalence queries deliberately stay one-shot: their
//     circuits overlap too little for session reuse to pay.)
//   - Validation caching. validate.Cache memoizes block formulas (keyed
//     by printed source) and equivalence verdicts (keyed by simplified
//     term ID); core.Campaign and core.Engine share one cache across all
//     hunts, workers and reduction predicates — reduction candidates are
//     near-copies of their original, so the reducer runs mostly on
//     simplification collapses and cache hits. Cache.Snapshot() counts
//     the queries resolved with no solver call (SimpResolved).
//
// # Memory lifecycle
//
// Everything the solver stack accumulates while building and rewriting
// terms — the hash-consing interner, the simplification/canonical-rank
// memo, the validation block-formula and verdict caches — belongs to
// exactly one scope: an smt.Context and the validate.Cache bound to it.
// Construction is context-routed from the leaves up (leaf constructors
// are Context methods; composite constructors infer the context from
// their arguments; foreign constant/variable leaves are adopted, foreign
// composites panic), so a formula built from context-owned leaves lives
// entirely in that context without threading a handle through every call
// site. The package-level constructors and smt.True/False remain as the
// process-default context for tests, examples and campaign-scale runs.
//
// Long-running deployments bound memory by epoch-based reclamation:
// core.Engine (EpochPrograms > 0, the p4gauntlet serve mode) owns one
// context per epoch and rotates it at a SyncInterval-aligned round
// boundary — the same deterministic fold point the corpus admissions use
// — installing a fresh smt.Context + validate.Cache pair. In-flight
// oracle calls finish on the pair they captured (Oracle.CacheFn resolves
// it once per call), and the retired generation — terms, simplify memo,
// verdicts, block formulas — becomes garbage when the last of them
// drains. Nothing is evicted term-by-term and nothing is shared across
// epochs except the corpus (plain ASTs: its live seed programs re-intern
// their block formulas lazily on first touch in the new context) and the
// process-global SAT gate counters (reported as per-epoch deltas).
// Because caches only ever change cost, never verdicts, the finding set
// for a fixed seed budget is identical across worker counts and epoch
// sizes (tested, race-enabled); per-epoch context bytes plateau instead
// of growing for the process lifetime (gated in CI).
//
// # Robustness
//
// The serve deployment treats a fuzzing campaign as state that must
// survive its own process. Three layers:
//
// Watchdogs and graceful degradation. MaxConflicts bounds solver
// conflicts, not wall-clock — one pathological miter can wedge a worker
// inside a single budget — so Oracle.Timeout threads a deadline down
// into the SAT inner loop (solver.SAT.Stop, polled beside the conflict
// budget), where expiry degrades the running query to Unknown. The
// oracle applies an escalation ladder per program: full-budget attempt →
// one retry at doubled wall-clock and conflict budgets → an explicit
// TimedOut outcome (Outcome.TimedOut, Stats.Timeouts), never a silent
// miss and never a stuck worker. Budget-starved Unknown verdicts are
// never cached: a later, larger-budget query on the same miter must
// reach the solver. Cancellation returns partial results everywhere —
// validate.SnapshotsContext and testgen.GenerateContext hand back
// verdicts/cases gathered so far along with ctx.Err().
//
// Panic isolation and quarantine. Every engine stage body runs under a
// supervisor (internal/core): a panic is recovered, a body exceeding
// EngineConfig.StageTimeout is abandoned (the goroutine unwinds on
// context at drain), and either way the program — not the process — is
// quarantined: a QuarantineRecord (stage, seed, kind, symptom, witness
// source) flows to OnQuarantine and, under serve, to DIR/quarantine/ on
// disk. Quarantined slots still count toward the round-fold barrier, so
// corpus admission order and scheduling replay stay deterministic. The
// proof harness is internal/faultinject: a pure (seed, stage, slot) →
// fault decision that injects panics, stalls and errors determinstically,
// with race-enabled chaos tests asserting zero deaths, exact quarantine
// accounting, and that the finding set over non-faulted programs is
// unchanged by injection.
//
// Durable state (internal/persist). The journal (DIR/journal.jsonl) is
// append-only JSONL, one fsync per finding, written before the finding
// is streamed anywhere — replay tolerates a torn final line (crash
// signature) but fails on interior corruption. Checkpoints
// (DIR/checkpoint.json) are written atomically (temp file, fsync,
// rename, fsync dir) from the collector at fold boundaries: a consistent
// (corpus snapshot, NextSlot watermark, cumulative totals) triple, where
// corpus.Snapshot preserves the exact feedback state (global edge set,
// energies, fingerprints, counters). `p4gauntlet -mode serve -resume
// DIR` restores the corpus and watermark, pre-seeds deduplication from
// the journal's fingerprints, and reprocesses the slots between the
// watermark and the death — at-least-once, with zero re-reported
// findings. SIGHUP forces a checkpoint + stats flush without draining
// (and logs a one-line human summary to stderr);
// scripts/crash_resume_smoke.sh drives the whole loop (inject, SIGKILL,
// resume) in CI.
//
// # Fleet scale
//
// internal/fleet shards one campaign across processes — one box or many
// — without changing what it computes. A coordinator slices the master
// seed stream into leases aligned to the engine's SyncInterval; workers
// (p4gauntlet -mode worker -connect ADDR) run one bounded core.Engine
// per lease with MutateRatio 0, so every lease is a pure function of
// its seeds; and the coordinator (p4gauntlet -mode coordinator -listen
// ADDR, -fleet N to fork a local fleet) completes leases
// first-result-wins but releases them only behind a contiguous-prefix
// watermark, re-deduplicating findings by their stable fingerprints and
// refolding each lease's corpus delta (corpus.DeltaSet) in canonical
// order. The consequence, race-tested and smoke-tested at the real
// process boundary: finding set, witness bytes, report order and merged
// corpus are byte-identical to a single process at any worker count.
// The protocol is a minimal length-prefixed JSON stream (stdlib only);
// workers receive all campaign configuration over the wire. Worker loss
// — connection drop, hang past the lease timeout, kill -9 — returns the
// lease to pending for re-issue; the coordinator owns the single
// persist journal/checkpoint, and -resume restores watermark, corpus
// and journal-seeded dedup so even a coordinator kill -9 re-reports
// nothing. faultinject.LinkPlan extends deterministic fault injection
// to the fleet link (pure (seed, lease) → drop/delay/sever), driving
// the chaos tests and the fleet_smoke.sh CI job.
//
// # Observability
//
// The introspection plane (internal/obs) makes a live daemon — or a
// finished finding — explain itself without perturbing it. Three pieces:
//
// Metrics. A dependency-free registry of counters, gauges and
// log2-bucketed latency histograms, all named gauntlet_* (counters end
// in _total; histograms are _seconds with cumulative le buckets).
// Hot-path instruments are sharded per worker and merged only on
// scrape; because a histogram's bucket is a pure function of the
// observed duration and shard merging is element-wise addition
// (associative and commutative), the merged view of a given event
// stream is identical at any worker count. The engine times every heavy
// stage (gauntlet_stage_duration_seconds{stage=generate|compile|oracle|
// dedup|reduce}) and every equivalence query by the solver-stack tier
// that resolved it (gauntlet_equivalence_query_duration_seconds{tier=
// simplified|cache-hit|hint-replay|concolic-falsified|cdcl}); a
// collector renders the cumulative core.Stats counters on each scrape.
//
// Provenance. Every reported finding carries a lineage trace
// (core.Provenance, serialized as the additive "provenance" JSON field
// in JSONL reports and the durable journal — old journals replay
// unchanged with a nil trace): schedule slot and round, origin
// (generate vs mutate) with the applied mutation stack, per-stage
// wall-clock (generate/compile/oracle/reduce ns), reduction effort
// (serial-equivalent calls, probes launched and wasted) and per-tier
// equivalence-query counts. Schedule fields are pure functions of the
// run configuration; wall-clock fields are observation-only.
//
// Admin endpoint. `p4gauntlet -http ADDR` (fuzz and serve) serves
// /metrics (Prometheus text exposition 0.0.4, deterministic ordering),
// /statusz (one JSON document: stats with corpus summary, health,
// recent epoch retirements and quarantines), /healthz (200 "ok" while
// round folds progress, 503 with the stall age once progress stops) and
// /debug/pprof/* on a private mux. The listener binds eagerly (bad
// address fails at startup) and drains gracefully after the final
// stats record. JSONL records that fail to serialize or write are
// counted (Stats.RecordsDropped, gauntlet_records_dropped_total,
// /statusz) as well as logged.
//
// The invariance contract, race-tested in internal/core: installing the
// registry changes cost only — finding set, witness bytes, report order
// and corpus are byte-identical with obs on and off at any worker
// count. Measured cost on the BenchmarkObsOverhead workload is noise
// (≤~3%, gated at 5% in BENCH_9.json). Negative: nothing in obs makes
// scheduling decisions — health is keyed off fold progress but only
// reports it, and provenance timings never feed back into the engine.
//
// # Benchmarks
//
// BenchmarkValidateIncremental measures the warm steady state;
// BenchmarkSec52_PipelineThroughput the cold end-to-end rate;
// BenchmarkGateReuse the structural gate cache on a near-identical miter;
// BenchmarkEngineFuzz the streaming engine against the sequential fuzz
// loop it replaced; BenchmarkCorpusFuzz the coverage-guided corpus
// mode against pure generation on the same budget (throughput, admission
// rate, distinct coverage fingerprints); BenchmarkServeEpochs the
// per-epoch context bytes of the rotating serve shape; and
// BenchmarkResilientFuzz the robustness layer's overhead (plain vs
// watchdogs + journal/checkpoints armed); BenchmarkConcolicFalsify
// the bit-parallel tape against solver-only verdicts on defect-seeded
// inequivalent pairs (ns/equivalence-query on vs off, packets/sec,
// fraction falsified concretely); and BenchmarkParallelReduce the
// speculative reducer against exact serial ddmin on harvested crash
// witnesses (speedup, wasted-probe ratio, and a witness-diff count that
// must be zero); BenchmarkObsOverhead the introspection plane's
// cost (plain vs metrics-registry-instrumented on the same workload);
// and BenchmarkFleetFuzz the fleet coordinator's overhead and scaling
// (direct engine vs one-worker fleet vs two-worker fleet on the same
// campaign). scripts/bench_trajectory.sh runs the headline set and
// writes BENCH_10.json; its benchjson gate fails CI on a
// zero gate-reuse rate, mutation-mode throughput below half of
// generation-mode, per-epoch context bytes growing more than 15%
// epoch-over-epoch, a resilience overhead above 5%, a zero concrete
// falsification rate, the concolic stage costing more than 5% over
// solver-only per equivalence query, any speculative-reduction witness
// diff, speculative reduction below its core-count-scaled speedup
// floor, an introspection overhead above 5%, a fleet coordinator
// overhead above 10% at one worker, or a two-worker fleet below its
// core-count-scaled speedup floor over one worker:
//
//	go test -bench='ValidateIncremental|Sec52|EngineFuzz|GateReuse|CorpusFuzz|ServeEpochs|ResilientFuzz|ConcolicFalsify|ParallelReduce|ObsOverhead|FleetFuzz' .
package gauntlet
