// Package gauntlet reproduces "Gauntlet: Finding Bugs in Compilers for
// Programmable Packet Processing" (Ruffy, Wang, Sivaraman — OSDI 2020) as
// a self-contained Go library: a P4₁₆-subset toolchain (parser, type
// checker, nanopass compiler, interpreter), a QF_BV SMT solver, the
// paper's three bug-finding techniques (random program generation,
// translation validation, symbolic-execution test generation), two target
// simulators (BMv2 and a black-box Tofino stand-in), and a seeded-defect
// registry reproducing the paper's 78-bug evaluation.
//
// See README.md for the architecture overview, DESIGN.md for the system
// inventory and substitutions, and EXPERIMENTS.md for paper-vs-measured
// results. The benchmark harness in bench_test.go regenerates every table
// and figure:
//
//	go test -bench=. -benchmem .
//
// # Performance architecture
//
// A bug-hunting campaign is thousands of solver queries, so the solver
// stack is built around structural sharing and incrementality:
//
//   - Hash-consing. Every smt.Term is interned by its smart constructor
//     (internal/smt/intern.go): structurally equal terms are
//     pointer-equal, carry stable IDs, and hash in O(1). The constructor
//     folds that rely on pointer equality (Eq(x,x) → true, Ite collapse)
//     therefore fire across independently built formulas — re-symbolizing
//     an unchanged block yields the identical term objects, and a no-op
//     pass transition's equivalence check folds away at construction.
//   - Incremental solving. The SAT core supports solve-under-assumptions
//     (solver.Session): a formula is bit-blasted once and each branch
//     polarity or soft model preference is decided as an assumption on
//     the same instance, with learnt clauses, activities and phases
//     carried across queries. Path enumeration and the §6.2 preference
//     steering cost one incremental query per decision instead of a full
//     re-blast.
//   - Validation caching. validate.Cache memoizes block formulas (keyed
//     by printed source) and equivalence verdicts (keyed by interned term
//     ID); core.Campaign shares one cache across all hunts and worker
//     goroutines.
//
// BenchmarkValidateIncremental measures the warm steady state;
// BenchmarkSec52_PipelineThroughput the cold end-to-end rate:
//
//	go test -bench='ValidateIncremental|Sec52' .
package gauntlet
