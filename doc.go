// Package gauntlet reproduces "Gauntlet: Finding Bugs in Compilers for
// Programmable Packet Processing" (Ruffy, Wang, Sivaraman — OSDI 2020) as
// a self-contained Go library: a P4₁₆-subset toolchain (parser, type
// checker, nanopass compiler, interpreter), a QF_BV SMT solver, the
// paper's three bug-finding techniques (random program generation,
// translation validation, symbolic-execution test generation), two target
// simulators (BMv2 and a black-box Tofino stand-in), and a seeded-defect
// registry reproducing the paper's 78-bug evaluation.
//
// See README.md for the architecture overview, DESIGN.md for the system
// inventory and substitutions, and EXPERIMENTS.md for paper-vs-measured
// results. The benchmark harness in bench_test.go regenerates every table
// and figure:
//
//	go test -bench=. -benchmem .
package gauntlet
