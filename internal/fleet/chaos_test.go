package fleet

import (
	"context"
	"testing"
	"time"

	"gauntlet/internal/core"
	"gauntlet/internal/faultinject"
)

// TestFleetChaos: injected link faults — sever, drop+sever, delay past
// the lease timeout — must be fully absorbed by lease re-issue: the
// campaign completes, the finding stream is byte-identical to the clean
// single-process baseline, and no finding is ever emitted twice.
func TestFleetChaos(t *testing.T) {
	run := testRun()
	run.Reduce = false
	const seeds, leaseSlots = 32, 8
	want, _ := directRun(t, run, seeds)
	if len(want) == 0 {
		t.Fatal("no findings: the seeded defects should fire within 32 seeds")
	}

	cases := []struct {
		name string
		plan *faultinject.LinkPlan
		// leaseTimeout, when set, is short enough for the injected delay
		// to force expiry (the duplicate-result path).
		leaseTimeout time.Duration
	}{
		// Worker w0 severs its link after every lease it completes, so its
		// results never arrive and its held leases re-issue to w1.
		{name: "sever", plan: &faultinject.LinkPlan{Seed: 7, SeverEvery: 1}},
		// w0 swallows the result frame, then severs — the kill -9 shape:
		// work done, nothing shipped, connection gone.
		{name: "drop-sever", plan: &faultinject.LinkPlan{Seed: 7, DropEvery: 1, SeverEvery: 1}},
		// w0 stalls every result past the lease timeout: the lease expires
		// and re-issues while the stale result is still in flight, so the
		// coordinator must drop the loser of the race.
		{name: "delay", plan: &faultinject.LinkPlan{Seed: 7, DelayEvery: 1, DelayFor: 2500 * time.Millisecond}, leaseTimeout: time.Second},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var emitted []core.Finding // appended under the coordinator's release lock
			coord, err := NewCoordinator(CoordinatorConfig{
				Run: run, Seeds: seeds, LeaseSlots: leaseSlots,
				LeaseTimeout: tc.leaseTimeout,
				OnFinding:    func(f core.Finding) { emitted = append(emitted, f) },
			})
			if err != nil {
				t.Fatal(err)
			}
			workers := []WorkerConfig{
				{Name: "w0", LinkFault: tc.plan.Hook()},
				{Name: "w1"},
			}
			if err := RunLocal(context.Background(), coord, workers); err != nil {
				t.Fatal(err)
			}
			diffFindings(t, tc.name, want, coord.Findings())
			if len(emitted) != len(want) {
				t.Errorf("emitted %d findings, want %d", len(emitted), len(want))
			}
			seen := make(map[uint64]bool, len(emitted))
			for _, f := range emitted {
				if seen[f.Fingerprint] {
					t.Errorf("fingerprint %016x emitted twice", f.Fingerprint)
				}
				seen[f.Fingerprint] = true
			}
			if st := coord.Status(); st.LeasesReissued == 0 {
				t.Error("no lease was re-issued despite injected faults")
			}
			drops, severs, delays := tc.plan.FiredLink()
			if drops+severs+delays == 0 {
				t.Error("no planned link fault fired")
			}
		})
	}
}
