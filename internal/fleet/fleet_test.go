package fleet

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"gauntlet/internal/core"
	"gauntlet/internal/corpus"
	"gauntlet/internal/obs"
	"gauntlet/internal/validate"
)

// testRun is the defect-seeded fleet campaign configuration the tests
// share: three registry bugs instrumented into the pipeline so findings
// fire within a few seeds (the same trio the engine's own determinism
// test uses).
func testRun() RunConfig {
	return RunConfig{
		Seed:                    11,
		Backend:                 "v1model",
		SyncInterval:            8,
		MaxCorpus:               64,
		EngineWorkers:           2,
		Reduce:                  true,
		ReduceMaxRounds:         3,
		ReduceMaxPredicateCalls: 300,
		Defects:                 []string{"P4C-C-04", "P4C-C-13", "P4C-S-02"},
	}
}

// directRun is the single-process baseline: the same engine parameters
// as one lease spanning the whole budget.
func directRun(t *testing.T, run RunConfig, seeds int64) ([]core.Finding, *corpus.Corpus) {
	t.Helper()
	cfg, crp, err := engineConfigForLease(&run, Lease{ID: 0, Start: 0, Count: seeds}, validate.NewCache())
	if err != nil {
		t.Fatal(err)
	}
	e := core.NewEngine(cfg)
	fs := e.Run(context.Background())
	return fs, crp
}

// findingKey renders every determinism-bearing field of a finding —
// witness bytes included — so slices compare order-sensitively.
func findingKey(f core.Finding) string {
	prov := ""
	if f.Provenance != nil {
		// Schedule fields only: wall-clock provenance varies run to run by
		// contract.
		prov = fmt.Sprintf("slot=%d round=%d origin=%s", f.Provenance.Slot, f.Provenance.Round, f.Provenance.Origin)
	}
	return fmt.Sprintf("%s|%d|%s|%s|%s|%016x|%s|%d|%d|%s|%s",
		f.Kind, f.Seed, f.Backend, f.Pass, f.Detail, f.Fingerprint, f.Origin,
		f.SizeBefore, f.SizeAfter, f.Source, prov)
}

func findingKeys(fs []core.Finding) []string {
	out := make([]string, len(fs))
	for i, f := range fs {
		out[i] = findingKey(f)
	}
	return out
}

func diffFindings(t *testing.T, label string, want, got []core.Finding) {
	t.Helper()
	w, g := findingKeys(want), findingKeys(got)
	if strings.Join(w, "\n") != strings.Join(g, "\n") {
		t.Errorf("%s: findings diverge\nwant (%d):\n  %s\ngot (%d):\n  %s",
			label, len(w), strings.Join(w, "\n  "), len(g), strings.Join(g, "\n  "))
	}
}

func localWorkers(n int) []WorkerConfig {
	ws := make([]WorkerConfig, n)
	for i := range ws {
		ws[i] = WorkerConfig{Name: fmt.Sprintf("w%d", i)}
	}
	return ws
}

// TestFleetInvariance: for a fixed seed budget, the coordinator+N-worker
// finding set, witness bytes, report order and merged corpus must be
// identical to the single-process engine run, for N ∈ {1, 2, 4} — the
// engine's worker-count invariance contract lifted across process
// boundaries (run under -race in CI).
func TestFleetInvariance(t *testing.T) {
	run := testRun()
	const seeds, leaseSlots = 48, 16
	want, wantCorpus := directRun(t, run, seeds)
	if len(want) == 0 {
		t.Fatal("no findings: the seeded defects should fire within 48 seeds")
	}
	wantFPs := wantCorpus.Fingerprints()
	wantStats := wantCorpus.Stats()
	for _, n := range []int{1, 2, 4} {
		coord, err := NewCoordinator(CoordinatorConfig{
			Run: run, Seeds: seeds, LeaseSlots: leaseSlots,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := RunLocal(context.Background(), coord, localWorkers(n)); err != nil {
			t.Fatalf("workers=%d: %v", n, err)
		}
		diffFindings(t, fmt.Sprintf("workers=%d", n), want, coord.Findings())
		gotFPs := coord.Corpus().Fingerprints()
		if fmt.Sprint(wantFPs) != fmt.Sprint(gotFPs) {
			t.Errorf("workers=%d: corpus seed fingerprints diverge:\nwant %v\ngot  %v", n, wantFPs, gotFPs)
		}
		gotStats := coord.Corpus().Stats()
		if wantStats.Seeds != gotStats.Seeds || wantStats.Admitted != gotStats.Admitted ||
			wantStats.Rejected != gotStats.Rejected || wantStats.Evicted != gotStats.Evicted ||
			wantStats.Edges != gotStats.Edges || wantStats.Fingerprints != gotStats.Fingerprints {
			t.Errorf("workers=%d: corpus stats diverge:\nwant %+v\ngot  %+v", n, wantStats, gotStats)
		}
	}
}

// TestFleetLeaseAlignment: a lease length that does not divide into
// whole admission rounds would break the canonical release order, so the
// coordinator must refuse it outright.
func TestFleetLeaseAlignment(t *testing.T) {
	run := testRun() // SyncInterval 8
	if _, err := NewCoordinator(CoordinatorConfig{Run: run, Seeds: 32, LeaseSlots: 12}); err == nil {
		t.Fatal("coordinator accepted lease slots 12 with sync interval 8")
	}
	if _, err := NewCoordinator(CoordinatorConfig{Run: run}); err == nil {
		t.Fatal("coordinator accepted an unbounded seed budget")
	}
}

// TestFleetObs: the fleet metrics and admin hooks must surface — workers
// gauge, lease gauges, per-worker lease-latency histogram, a /statusz
// section with the released-lease counts, and a healthy Health() after
// completion.
func TestFleetObs(t *testing.T) {
	run := testRun()
	run.Reduce = false
	reg := obs.NewRegistry()
	coord, err := NewCoordinator(CoordinatorConfig{
		Run: run, Seeds: 32, LeaseSlots: 16, Obs: reg, StallWindow: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := RunLocal(context.Background(), coord, localWorkers(2)); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		"gauntlet_fleet_workers",
		"gauntlet_fleet_leases_inflight",
		"gauntlet_fleet_leases_released_total 2",
		"# TYPE gauntlet_fleet_lease_latency_seconds histogram",
		`gauntlet_fleet_lease_latency_seconds_count{worker="w`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics is missing %q:\n%s", want, text)
		}
	}
	st := coord.Status()
	if st.LeasesTotal != 2 || st.LeasesReleased != 2 || st.WatermarkSlot != 32 {
		t.Errorf("status = %+v, want 2/2 leases released, watermark 32", st)
	}
	if st.Totals.Generated == 0 {
		t.Error("status totals report zero generated programs")
	}
	if err := coord.Health(); err != nil {
		t.Errorf("completed coordinator reports unhealthy: %v", err)
	}
}

// TestFleetStallHealth: a coordinator with outstanding leases and no
// releases inside the stall window must report unhealthy (the /healthz
// 503 contract).
func TestFleetStallHealth(t *testing.T) {
	coord, err := NewCoordinator(CoordinatorConfig{
		Run: testRun(), Seeds: 32, LeaseSlots: 16, StallWindow: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	if err := coord.Health(); err == nil {
		t.Fatal("stalled coordinator reports healthy")
	}
}
