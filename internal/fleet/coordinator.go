package fleet

import (
	"context"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"gauntlet/internal/core"
	"gauntlet/internal/corpus"
	"gauntlet/internal/obs"
	"gauntlet/internal/persist"
)

// CoordinatorConfig parameterizes one fleet campaign.
type CoordinatorConfig struct {
	// Run is pushed verbatim to every worker.
	Run RunConfig
	// StartSeed/Seeds bound the campaign's slot range. Seeds must be > 0:
	// an unbounded fleet campaign has no final lease and therefore no
	// completion point (run successive bounded campaigns instead).
	StartSeed int64
	Seeds     int64
	// LeaseSlots is the lease length — it must be a multiple of the
	// engine's SyncInterval so lease-local round boundaries coincide with
	// global ones (0 = 4 × SyncInterval).
	LeaseSlots int64
	// LeaseTimeout expires an issued lease for re-issue (0 = 2 minutes).
	// Set it above a lease's worst-case wall clock: expiry is never wrong
	// (first result wins, results are deterministic), only wasteful.
	LeaseTimeout time.Duration
	// OnFinding streams each fleet-unique finding in canonical order
	// (after the journal write when State is set).
	OnFinding func(core.Finding)
	// State, when set, makes the coordinator the campaign's single
	// persistence owner: findings journal write-ahead, atomic corpus +
	// watermark checkpoints at lease-release boundaries.
	State *persist.State
	// KnownFindings pre-seeds fleet-wide dedup (the resume path).
	KnownFindings []uint64
	// ResumeWatermark skips leases wholly below this slot (the resumed
	// checkpoint's NextSlot).
	ResumeWatermark int64
	// Corpus is the master corpus deltas fold into (nil = fresh, sized
	// Run.MaxCorpus).
	Corpus *corpus.Corpus
	// Obs, when set, receives the fleet gauges and per-worker lease
	// latency histograms.
	Obs *obs.Registry
	// StallWindow is the /healthz liveness bound: with leases outstanding
	// and no lease released for this long, Health reports an error
	// (0 = 5 minutes).
	StallWindow time.Duration
	// Logf, when set, receives coordinator progress lines.
	Logf func(format string, args ...any)
}

// FleetStatus is the /statusz fleet section.
type FleetStatus struct {
	Workers        int64       `json:"workers"`
	LeasesTotal    int64       `json:"leases_total"`
	LeasesReleased int64       `json:"leases_released"`
	LeasesInflight int64       `json:"leases_inflight"`
	LeasesReissued uint64      `json:"leases_reissued"`
	WatermarkSlot  int64       `json:"watermark_slot"`
	Findings       uint64      `json:"findings"`
	Duplicates     uint64      `json:"duplicates"`
	LastRelease    time.Time   `json:"last_release"`
	Totals         ResultStats `json:"totals"`
}

// Coordinator shards one bounded campaign into leases, merges results in
// canonical lease order behind the completed-prefix watermark, and owns
// fleet-wide dedup and persistence. Safe for any number of concurrent
// connection handlers.
type Coordinator struct {
	cfg    CoordinatorConfig
	table  *leaseTable
	corpus *corpus.Corpus
	deltas *corpus.DeltaSet

	// releaseMu serializes the pop-and-process of releasable results so
	// lease k's findings are always emitted before lease k+1's.
	releaseMu  sync.Mutex
	dedup      map[uint64]struct{}
	findings   []core.Finding
	duplicates uint64
	totals     ResultStats
	relErr     error

	workers     atomic.Int64
	connSeq     atomic.Int64
	lastRelease atomic.Int64 // unix nanos of the last lease release (or start)
	done        chan struct{}
	doneOnce    sync.Once

	leaseLatency func(worker string, d time.Duration)
}

// NewCoordinator validates the configuration and builds the lease table.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if cfg.Seeds <= 0 {
		return nil, fmt.Errorf("fleet: coordinator requires a bounded seed budget (Seeds > 0)")
	}
	sync := cfg.Run.SyncInterval
	if sync <= 0 {
		sync = core.DefaultSyncInterval
		cfg.Run.SyncInterval = sync
	}
	if cfg.LeaseSlots <= 0 {
		cfg.LeaseSlots = int64(4 * sync)
	}
	if cfg.LeaseSlots%int64(sync) != 0 {
		return nil, fmt.Errorf("fleet: lease slots %d must be a multiple of the sync interval %d (lease round boundaries must coincide with global ones)", cfg.LeaseSlots, sync)
	}
	if cfg.LeaseTimeout <= 0 {
		cfg.LeaseTimeout = 2 * time.Minute
	}
	if cfg.StallWindow <= 0 {
		cfg.StallWindow = 5 * time.Minute
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	c := &Coordinator{
		cfg:    cfg,
		table:  newLeaseTable(cfg.StartSeed, cfg.Seeds, cfg.LeaseSlots, cfg.ResumeWatermark),
		corpus: cfg.Corpus,
		dedup:  make(map[uint64]struct{}, len(cfg.KnownFindings)),
		done:   make(chan struct{}),
	}
	if c.corpus == nil {
		c.corpus = corpus.New(cfg.Run.MaxCorpus)
	}
	c.deltas = corpus.NewDeltaSet(c.corpus, c.table.watermark())
	for _, fp := range cfg.KnownFindings {
		c.dedup[fp] = struct{}{}
	}
	c.lastRelease.Store(time.Now().UnixNano())
	c.installMetrics()
	if c.table.watermark() >= c.table.total() {
		c.doneOnce.Do(func() { close(c.done) }) // resumed past the end
	}
	return c, nil
}

// installMetrics registers the fleet observability series (satellite of
// the introspection plane): instantaneous gauges via a collector, and an
// eager per-worker lease-latency histogram family.
func (c *Coordinator) installMetrics() {
	reg := c.cfg.Obs
	if reg == nil {
		c.leaseLatency = func(string, time.Duration) {}
		return
	}
	reg.Collect(func(em *obs.Emit) {
		total, released, inflight, reissued := c.table.snapshot()
		em.Gauge("gauntlet_fleet_workers", "Connected fleet workers.", nil, float64(c.workers.Load()))
		em.Gauge("gauntlet_fleet_leases_inflight", "Leases issued and not yet completed.", nil, float64(inflight))
		em.Gauge("gauntlet_fleet_leases_total", "Leases in the campaign partition.", nil, float64(total))
		em.Counter("gauntlet_fleet_leases_released_total", "Leases released past the watermark.", nil, float64(released))
		em.Counter("gauntlet_fleet_leases_reissued_total", "Leases returned to pending by expiry or worker loss.", nil, float64(reissued))
		c.releaseMu.Lock()
		findings, dups := uint64(len(c.findings)), c.duplicates
		c.releaseMu.Unlock()
		em.Counter("gauntlet_fleet_findings_total", "Fleet-unique findings released.", nil, float64(findings))
		em.Counter("gauntlet_fleet_duplicates_total", "Cross-lease duplicate findings suppressed.", nil, float64(dups))
	})
	c.leaseLatency = func(worker string, d time.Duration) {
		reg.Histogram("gauntlet_fleet_lease_latency_seconds",
			"Issue-to-result latency per completed lease.",
			obs.Labels{"worker": worker}).Observe(d)
	}
}

// Done is closed when every lease has been released (campaign complete).
func (c *Coordinator) Done() <-chan struct{} { return c.done }

// Findings returns the released fleet-unique findings in canonical order.
func (c *Coordinator) Findings() []core.Finding {
	c.releaseMu.Lock()
	defer c.releaseMu.Unlock()
	return append([]core.Finding(nil), c.findings...)
}

// Corpus returns the master corpus (complete once Done is closed).
func (c *Coordinator) Corpus() *corpus.Corpus { return c.corpus }

// Err returns the first release-path error (journal, checkpoint or delta
// fold failure), if any.
func (c *Coordinator) Err() error {
	c.releaseMu.Lock()
	defer c.releaseMu.Unlock()
	return c.relErr
}

// Status snapshots the /statusz fleet section.
func (c *Coordinator) Status() FleetStatus {
	total, released, inflight, reissued := c.table.snapshot()
	c.releaseMu.Lock()
	findings, dups, totals := uint64(len(c.findings)), c.duplicates, c.totals
	c.releaseMu.Unlock()
	return FleetStatus{
		Workers:        c.workers.Load(),
		LeasesTotal:    total,
		LeasesReleased: released,
		LeasesInflight: inflight,
		LeasesReissued: reissued,
		WatermarkSlot:  c.watermarkSlot(),
		Findings:       findings,
		Duplicates:     dups,
		LastRelease:    time.Unix(0, c.lastRelease.Load()),
		Totals:         totals,
	}
}

// Health is the coordinator liveness probe: an error — /healthz 503 —
// when leases are outstanding and none has released within StallWindow.
func (c *Coordinator) Health() error {
	select {
	case <-c.done:
		return nil
	default:
	}
	if since := time.Since(time.Unix(0, c.lastRelease.Load())); since > c.cfg.StallWindow {
		return fmt.Errorf("no lease released for %s (watermark lease %d of %d)",
			since.Round(time.Second), c.table.watermark(), c.table.total())
	}
	return nil
}

// watermarkSlot converts the lease watermark to a slot watermark: every
// slot below it is released (folded, journaled), none above it is.
func (c *Coordinator) watermarkSlot() int64 {
	wm := c.table.watermark()
	if wm >= c.table.total() {
		return c.cfg.StartSeed + c.cfg.Seeds
	}
	return c.cfg.StartSeed + wm*c.cfg.LeaseSlots
}

// background starts the expiry janitor and the context watcher; the
// returned stop function tears both down. Serve and the in-process
// harness both run it.
func (c *Coordinator) background(ctx context.Context) func() {
	jctx, cancel := context.WithCancel(ctx)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		<-jctx.Done()
		c.table.close()
	}()
	go func() {
		defer wg.Done()
		period := c.cfg.LeaseTimeout / 4
		if period < 10*time.Millisecond {
			period = 10 * time.Millisecond
		}
		tick := time.NewTicker(period)
		defer tick.Stop()
		for {
			select {
			case <-jctx.Done():
				return
			case now := <-tick.C:
				if n := c.table.expire(now.Add(-c.cfg.LeaseTimeout)); n > 0 {
					c.cfg.Logf("fleet: re-issued %d expired lease(s)", n)
				}
			}
		}
	}()
	return func() { cancel(); wg.Wait() }
}

// HandleConn speaks the protocol with one worker connection: hello →
// config, then leases and results until drain or connection loss. Any
// lease the connection holds when it dies returns to pending.
func (c *Coordinator) HandleConn(ctx context.Context, conn io.ReadWriteCloser) error {
	defer conn.Close()
	env, err := readMsg(conn)
	if err != nil {
		return fmt.Errorf("fleet: hello: %w", err)
	}
	if env.Type != MsgHello || env.Hello == nil {
		return fmt.Errorf("fleet: expected hello, got %q", env.Type)
	}
	if env.Hello.Proto != ProtoVersion {
		return fmt.Errorf("fleet: worker %q speaks protocol %d, want %d",
			env.Hello.Worker, env.Hello.Proto, ProtoVersion)
	}
	// The holder key is per-connection, not per-name: two workers with
	// the same name must not release each other's leases.
	holder := fmt.Sprintf("%s#%d", env.Hello.Worker, c.connSeq.Add(1))
	c.workers.Add(1)
	defer c.workers.Add(-1)
	defer func() {
		if n := c.table.fail(holder); n > 0 {
			c.cfg.Logf("fleet: worker %s lost, %d lease(s) back to pending", holder, n)
		}
	}()
	if err := writeMsg(conn, &Envelope{Type: MsgConfig, Config: &c.cfg.Run}); err != nil {
		return err
	}
	c.cfg.Logf("fleet: worker %s connected", holder)
	for {
		env, err := readMsg(conn)
		if err != nil {
			select {
			case <-c.done:
				return nil // campaign complete; the teardown races are benign
			default:
			}
			return err
		}
		switch env.Type {
		case MsgNeed:
			lease, ok := c.table.acquire(holder)
			if !ok {
				return writeMsg(conn, &Envelope{Type: MsgDrain})
			}
			if err := writeMsg(conn, &Envelope{Type: MsgLease, Lease: &lease}); err != nil {
				return err
			}
		case MsgResult:
			if env.Result == nil {
				return fmt.Errorf("fleet: result frame without payload")
			}
			accepted, latency := c.completeLease(env.Result)
			if accepted {
				c.leaseLatency(env.Result.Worker, latency)
			}
			c.release()
		default:
			return fmt.Errorf("fleet: unexpected %q from worker", env.Type)
		}
	}
}

// completeLease records a result and measures its issue-to-result
// latency. Duplicates (an expired lease finishing twice) are dropped —
// results are deterministic, so both copies are identical.
func (c *Coordinator) completeLease(res *Result) (bool, time.Duration) {
	c.table.mu.Lock()
	var issuedAt time.Time
	if id := res.LeaseID; id >= 0 && id < c.table.total() {
		issuedAt = c.table.issued[id]
	}
	c.table.mu.Unlock()
	if !c.table.complete(res) {
		return false, 0
	}
	latency := time.Duration(0)
	if !issuedAt.IsZero() {
		latency = time.Since(issuedAt)
	}
	return true, latency
}

// release processes the contiguous run of completed leases at the
// watermark, in lease order: fleet-wide dedup by fingerprint (journal
// write-ahead when persistence is on), finding emission, corpus delta
// fold, and a checkpoint whose NextSlot is the new slot watermark. The
// pop and the processing happen under one mutex so concurrent connection
// handlers cannot reorder lease k+1's findings before lease k's.
func (c *Coordinator) release() {
	c.releaseMu.Lock()
	defer c.releaseMu.Unlock()
	batch := c.table.releasable()
	if len(batch) == 0 {
		return
	}
	for _, res := range batch {
		for _, f := range res.Findings {
			if _, seen := c.dedup[f.Fingerprint]; seen {
				c.duplicates++
				continue
			}
			if c.cfg.State != nil {
				if err := c.cfg.State.AppendFinding(f); err != nil && c.relErr == nil {
					c.relErr = fmt.Errorf("fleet: journal: %w", err)
				}
			}
			c.dedup[f.Fingerprint] = struct{}{}
			c.findings = append(c.findings, f)
			if c.cfg.OnFinding != nil {
				c.cfg.OnFinding(f)
			}
		}
		if res.Delta != nil {
			if err := c.deltas.Offer(res.LeaseID, res.Delta); err != nil && c.relErr == nil {
				c.relErr = fmt.Errorf("fleet: corpus delta: %w", err)
			}
		}
		c.totals.Generated += res.Stats.Generated
		c.totals.Crashes += res.Stats.Crashes
		c.totals.Miscompilations += res.Stats.Miscompilations
		c.totals.Mismatches += res.Stats.Mismatches
		c.totals.Duplicates += res.Stats.Duplicates
		c.totals.ToolErrors += res.Stats.ToolErrors
		c.totals.Quarantined += res.Stats.Quarantined
		c.totals.ElapsedNs += res.Stats.ElapsedNs
	}
	c.lastRelease.Store(time.Now().UnixNano())
	if c.cfg.State != nil {
		cp := &persist.Checkpoint{
			NextSlot: c.watermarkSlot(),
			Seed:     c.cfg.Run.Seed,
			Corpus:   c.corpus.Snapshot(),
			Totals: persist.Totals{
				Programs:    c.totals.Generated,
				Findings:    uint64(len(c.findings)),
				Duplicates:  c.totals.Duplicates + c.duplicates,
				ToolErrors:  c.totals.ToolErrors,
				Quarantined: c.totals.Quarantined,
			},
		}
		if err := c.cfg.State.SaveCheckpoint(cp); err != nil && c.relErr == nil {
			c.relErr = fmt.Errorf("fleet: checkpoint: %w", err)
		}
	}
	c.cfg.Logf("fleet: watermark lease %d/%d (slot %d), %d findings",
		c.table.watermark(), c.table.total(), c.watermarkSlot(), len(c.findings))
	if c.table.watermark() >= c.table.total() {
		c.doneOnce.Do(func() { close(c.done) })
	}
}

// Serve accepts worker connections on ln until the campaign completes or
// ctx is cancelled, then closes the listener. It returns nil on
// completion (release-path errors surface via Err) and the context error
// on cancellation.
func (c *Coordinator) Serve(ctx context.Context, ln net.Listener) error {
	stop := c.background(ctx)
	defer stop()
	acceptDone := make(chan struct{})
	go func() {
		defer close(acceptDone)
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed below
			}
			go func() {
				if err := c.HandleConn(ctx, conn); err != nil {
					c.cfg.Logf("fleet: connection: %v", err)
				}
			}()
		}
	}()
	var err error
	select {
	case <-c.done:
	case <-ctx.Done():
		err = ctx.Err()
	}
	ln.Close()
	<-acceptDone
	return err
}
