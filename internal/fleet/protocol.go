// Package fleet scales the single-process fuzzing engine across process
// boundaries without giving up its determinism contract: a coordinator
// shards the master seed stream into bounded, watermarked work leases and
// N workers each run an unmodified core.Engine over their lease, speaking
// a minimal length-prefixed JSON protocol over TCP or unix sockets
// (stdlib only).
//
// The design is the engine's own discipline — isolate first, then share —
// lifted one level: workers share nothing while a lease runs, and every
// cross-process merge happens at one deterministic point, in one
// canonical order. Three facts make the fleet finding set, witness bytes
// and report order identical to the single-process run for a fixed seed
// budget, at any worker count:
//
//  1. Fleet runs are pure-generation (MutateRatio = 0 — the coordinator
//     refuses otherwise), so every slot's program is a pure function of
//     its seed and a lease needs no cross-lease corpus state to replay
//     its slots exactly as the single process would.
//  2. A lease is a contiguous slot range whose length is a multiple of
//     the engine's SyncInterval, so lease-local round boundaries coincide
//     with global ones, and the engine's canonical release order — round
//     r's oracle findings before round r+1's crash findings — makes the
//     concatenation of per-lease report streams, in lease order, equal to
//     the global release sequence.
//  3. The coordinator releases lease results strictly behind the
//     completed-prefix watermark, re-deduplicating by the stable finding
//     fingerprints, so the surviving representative of every fingerprint
//     is the global first occurrence — the same program, and therefore
//     the same reduced witness bytes, the single process keeps. (As in
//     the single process, this holds in the under-MaxReducePerPass-cap
//     regime; the cap is per-engine, so a fleet run reduces candidates a
//     capped single process would have dropped.)
//
// Worker loss, hang or kill -9 is handled by lease expiry and re-issue:
// results are deterministic, so a lease completed twice yields identical
// bytes and first-wins is safe, and the coordinator's write-ahead journal
// (persist.State) absorbs at-least-once replay across coordinator
// restarts the same way single-process resume does.
package fleet

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"gauntlet/internal/core"
	"gauntlet/internal/corpus"
)

// ProtoVersion is bumped on any wire-incompatible change; the coordinator
// refuses a worker whose hello disagrees.
const ProtoVersion = 1

// maxMsgBytes bounds one framed message (a result carries printed
// witnesses and a corpus delta; 256 MiB is far above any real lease).
const maxMsgBytes = 256 << 20

// MsgType tags an Envelope.
type MsgType string

// Protocol messages. The conversation is strictly request-response from
// the worker's side: hello → config, then (need → lease | drain)*, with
// one result sent before the next need.
const (
	// MsgHello is the worker's opening message.
	MsgHello MsgType = "hello"
	// MsgConfig is the coordinator's reply: the campaign parameters every
	// worker must run under.
	MsgConfig MsgType = "config"
	// MsgNeed asks for work.
	MsgNeed MsgType = "need"
	// MsgLease grants a slot range.
	MsgLease MsgType = "lease"
	// MsgResult returns a completed lease's findings, corpus delta and
	// stats.
	MsgResult MsgType = "result"
	// MsgDrain tells the worker no further leases will be granted.
	MsgDrain MsgType = "drain"
)

// Envelope is the single wire frame: a type tag plus the one payload the
// type calls for.
type Envelope struct {
	Type   MsgType    `json:"type"`
	Hello  *Hello     `json:"hello,omitempty"`
	Config *RunConfig `json:"config,omitempty"`
	Lease  *Lease     `json:"lease,omitempty"`
	Result *Result    `json:"result,omitempty"`
}

// Hello identifies a connecting worker.
type Hello struct {
	Worker string `json:"worker"`
	Proto  int    `json:"proto"`
}

// RunConfig is the campaign configuration the coordinator pushes to every
// worker: everything a lease-ranged core.EngineConfig needs beyond the
// lease bounds themselves. Mutation is deliberately absent — fleet runs
// are pure-generation (see the package comment).
type RunConfig struct {
	// Seed is the master schedule seed (per-slot generator seeds derive
	// from it exactly as in the single process).
	Seed int64 `json:"seed"`
	// Backend is the generator/pipeline backend name ("v1model" | "tna").
	Backend string `json:"backend"`
	// SyncInterval is the engine's corpus admission round size; lease
	// lengths are multiples of it (0 = engine default).
	SyncInterval int `json:"sync_interval,omitempty"`
	// MaxCorpus caps each per-lease corpus and the master corpus.
	MaxCorpus int `json:"max_corpus,omitempty"`
	// EngineWorkers sizes each worker engine's per-stage pools
	// (0 = GOMAXPROCS).
	EngineWorkers int `json:"engine_workers,omitempty"`
	// PacketTests / BlackBox / ConcolicOff / MaxConflicts mirror the
	// EngineConfig fields of the same names.
	PacketTests  bool `json:"packet_tests,omitempty"`
	BlackBox     bool `json:"black_box,omitempty"`
	ConcolicOff  bool `json:"concolic_off,omitempty"`
	MaxConflicts int  `json:"max_conflicts,omitempty"`
	// Reduce enables witness reduction; ReduceMaxRounds /
	// ReduceMaxPredicateCalls bound it (0 = engine defaults);
	// MaxReducePerPass caps semantic candidates per (kind, pass).
	Reduce                  bool `json:"reduce"`
	ReduceMaxRounds         int  `json:"reduce_max_rounds,omitempty"`
	ReduceMaxPredicateCalls int  `json:"reduce_max_predicate_calls,omitempty"`
	MaxReducePerPass        int  `json:"max_reduce_per_pass,omitempty"`
	// StageTimeoutMs / OracleTimeoutMs are the watchdog budgets in
	// milliseconds (0 = off).
	StageTimeoutMs  int64 `json:"stage_timeout_ms,omitempty"`
	OracleTimeoutMs int64 `json:"oracle_timeout_ms,omitempty"`
	// Defects names seeded registry bugs to instrument into the pass
	// pipeline (test and smoke harnesses; empty = reference pipeline).
	Defects []string `json:"defects,omitempty"`
}

// Lease is one contiguous slot range: the unit of work, re-issue and
// corpus merge. ID is the lease's canonical index (Start == campaign
// start + ID × lease length for every lease but possibly the last).
type Lease struct {
	ID    int64 `json:"id"`
	Start int64 `json:"start"`
	Count int64 `json:"count"`
}

// ResultStats is the per-lease engine stats digest the coordinator
// aggregates for /statusz (observation only — no determinism contract).
type ResultStats struct {
	Generated       uint64 `json:"generated"`
	Crashes         uint64 `json:"crashes"`
	Miscompilations uint64 `json:"miscompilations"`
	Mismatches      uint64 `json:"mismatches"`
	Duplicates      uint64 `json:"duplicates"`
	ToolErrors      uint64 `json:"tool_errors"`
	Quarantined     uint64 `json:"quarantined"`
	ElapsedNs       int64  `json:"elapsed_ns"`
}

// Result carries one completed lease back: the lease engine's report
// stream in its canonical order, the corpus delta, and the stats digest.
type Result struct {
	LeaseID  int64          `json:"lease_id"`
	Worker   string         `json:"worker"`
	Findings []core.Finding `json:"findings"`
	Delta    *corpus.Delta  `json:"delta"`
	Stats    ResultStats    `json:"stats"`
}

// writeMsg frames env as a 4-byte big-endian length plus JSON. A single
// Write call per frame keeps frames atomic under concurrent writers
// (the worker writes from one goroutine anyway; the coordinator writes
// per-connection from that connection's handler).
func writeMsg(w io.Writer, env *Envelope) error {
	body, err := json.Marshal(env)
	if err != nil {
		return err
	}
	frame := make([]byte, 4+len(body))
	binary.BigEndian.PutUint32(frame, uint32(len(body)))
	copy(frame[4:], body)
	_, err = w.Write(frame)
	return err
}

// readMsg reads one length-prefixed frame and decodes it.
func readMsg(r io.Reader) (*Envelope, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > maxMsgBytes {
		return nil, fmt.Errorf("fleet: frame length %d out of range", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	var env Envelope
	if err := json.Unmarshal(body, &env); err != nil {
		return nil, fmt.Errorf("fleet: decode frame: %w", err)
	}
	return &env, nil
}
