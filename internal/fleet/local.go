package fleet

import (
	"context"
	"net"
	"sync"
)

// RunLocal runs the coordinator with len(workers) in-process workers over
// net.Pipe connections — the one-command scale-out path for tests and
// benchmarks (the CLI's -fleet mode forks real worker processes over a
// unix socket instead; the protocol and merge machinery are identical).
// It returns when the campaign completes, a worker that was not severed
// by fault injection fails, or ctx is cancelled. Severed workers simply
// leave the fleet; their leases re-issue to the survivors.
func RunLocal(ctx context.Context, c *Coordinator, workers []WorkerConfig) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	stop := c.background(ctx)
	defer stop()

	var wg sync.WaitGroup
	errCh := make(chan error, len(workers))
	for _, w := range workers {
		coordEnd, workerEnd := net.Pipe()
		wg.Add(2)
		go func() {
			defer wg.Done()
			if err := c.HandleConn(ctx, coordEnd); err != nil {
				c.cfg.Logf("fleet: local connection: %v", err)
			}
		}()
		go func(w WorkerConfig) {
			defer wg.Done()
			if err := RunWorker(ctx, workerEnd, w); err != nil && err != ErrSevered && ctx.Err() == nil {
				select {
				case errCh <- err:
				default:
				}
			}
		}(w)
	}

	var err error
	select {
	case <-c.Done():
	case err = <-errCh:
		// A worker error that races campaign completion (its pipe closed
		// during teardown) is not a failure.
		select {
		case <-c.Done():
			err = nil
		default:
		}
	case <-ctx.Done():
		err = ctx.Err()
	}
	// Tear the pipes down and wait for every goroutine: cancel closes the
	// table (unblocking acquirers) and the workers' AfterFunc closes their
	// pipe ends (unblocking reads).
	cancel()
	wg.Wait()
	if err == nil {
		err = c.Err()
	}
	return err
}
