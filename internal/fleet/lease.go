package fleet

import (
	"sync"
	"time"
)

// leaseStatus is one lease's lifecycle position.
type leaseStatus int

const (
	leasePending  leaseStatus = iota // waiting to be issued (or re-issued)
	leaseIssued                      // held by a worker, expiry clock running
	leaseDone                        // a result arrived (first one wins)
	leaseReleased                    // result released past the watermark
)

// leaseTable owns the campaign's slot partition: every lease's bounds,
// status and issue time, plus the completed-prefix watermark. It is the
// single synchronization point between connection handlers (acquire /
// complete / fail), the expiry janitor and the release path; the
// determinism argument needs exactly one property from it — results
// release strictly in lease-ID order — which releasable() enforces by
// construction.
type leaseTable struct {
	mu   sync.Mutex
	cond *sync.Cond

	leases  []Lease
	status  []leaseStatus
	issued  []time.Time // issue timestamp, per lease (valid when leaseIssued)
	holder  []string    // issuing worker name (observability only)
	results []*Result   // first result, per lease (valid from leaseDone on)

	released int64 // first lease ID not yet released (== the watermark lease)
	reissued uint64
	closed   bool
}

// newLeaseTable partitions [start, start+seeds) into leases of leaseSlots
// (the final lease takes the remainder) and marks every lease wholly
// below resumeWatermark as already released — those slots were folded and
// journaled by a previous coordinator incarnation. A watermark inside a
// lease rounds down: the partial lease re-runs whole (at-least-once), and
// the journal-seeded dedup absorbs the replay.
func newLeaseTable(start, seeds, leaseSlots, resumeWatermark int64) *leaseTable {
	t := &leaseTable{}
	t.cond = sync.NewCond(&t.mu)
	for id, slot := int64(0), start; slot < start+seeds; id, slot = id+1, slot+leaseSlots {
		count := leaseSlots
		if rem := start + seeds - slot; rem < count {
			count = rem
		}
		t.leases = append(t.leases, Lease{ID: id, Start: slot, Count: count})
		t.status = append(t.status, leasePending)
		t.issued = append(t.issued, time.Time{})
		t.holder = append(t.holder, "")
		t.results = append(t.results, nil)
	}
	for t.released < int64(len(t.leases)) &&
		t.leases[t.released].Start+t.leases[t.released].Count <= resumeWatermark {
		t.status[t.released] = leaseReleased
		t.released++
	}
	return t
}

// total returns the lease count.
func (t *leaseTable) total() int64 { return int64(len(t.leases)) }

// acquire blocks until a pending lease is available (returning the
// lowest-ID one, so re-issues and watermark progress come first) or the
// campaign is finished or closed (ok = false). worker is recorded for
// observability.
func (t *leaseTable) acquire(worker string) (Lease, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for {
		if t.closed || t.released >= t.total() {
			return Lease{}, false
		}
		for id := t.released; id < t.total(); id++ {
			if t.status[id] == leasePending {
				t.status[id] = leaseIssued
				t.issued[id] = time.Now()
				t.holder[id] = worker
				return t.leases[id], true
			}
		}
		t.cond.Wait()
	}
}

// complete records a lease result. The first result wins; a duplicate —
// an expired-and-re-issued lease finishing twice — is dropped, which is
// safe because lease results are deterministic: both copies carry
// identical bytes. Returns whether the result was accepted.
func (t *leaseTable) complete(res *Result) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	id := res.LeaseID
	if id < 0 || id >= t.total() || t.status[id] == leaseDone || t.status[id] == leaseReleased {
		return false
	}
	t.status[id] = leaseDone
	t.results[id] = res
	t.cond.Broadcast()
	return true
}

// releasable pops the contiguous run of completed leases at the
// watermark, advancing it. The caller (the coordinator's release path)
// processes them in the returned order — lease-ID order — which is the
// whole determinism contract.
func (t *leaseTable) releasable() []*Result {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []*Result
	for t.released < t.total() && t.status[t.released] == leaseDone {
		out = append(out, t.results[t.released])
		t.status[t.released] = leaseReleased
		t.results[t.released] = nil // release the findings' memory
		t.released++
	}
	if t.released >= t.total() {
		t.cond.Broadcast() // wake acquirers so they see the drain
	}
	return out
}

// watermark returns the first unreleased lease ID.
func (t *leaseTable) watermark() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.released
}

// expire returns every issued lease older than deadline to the pending
// state (a dead, hung or killed worker's lease re-issues to the next
// acquirer) and reports how many moved.
func (t *leaseTable) expire(deadline time.Time) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for id := t.released; id < t.total(); id++ {
		if t.status[id] == leaseIssued && t.issued[id].Before(deadline) {
			t.status[id] = leasePending
			t.holder[id] = ""
			t.reissued++
			n++
		}
	}
	if n > 0 {
		t.cond.Broadcast()
	}
	return n
}

// fail returns every lease issued to worker to the pending state — the
// connection-loss path, which beats the expiry clock when the TCP layer
// notices first.
func (t *leaseTable) fail(worker string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for id := t.released; id < t.total(); id++ {
		if t.status[id] == leaseIssued && t.holder[id] == worker {
			t.status[id] = leasePending
			t.holder[id] = ""
			t.reissued++
			n++
		}
	}
	if n > 0 {
		t.cond.Broadcast()
	}
	return n
}

// close wakes every blocked acquirer with ok = false (coordinator
// shutdown / context cancellation).
func (t *leaseTable) close() {
	t.mu.Lock()
	t.closed = true
	t.cond.Broadcast()
	t.mu.Unlock()
}

// snapshot reports the counts /statusz shows.
func (t *leaseTable) snapshot() (total, released, inflight int64, reissued uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for id := t.released; id < t.total(); id++ {
		if t.status[id] == leaseIssued {
			inflight++
		}
	}
	return t.total(), t.released, inflight, t.reissued
}
