package fleet

import (
	"context"
	"testing"

	"gauntlet/internal/core"
	"gauntlet/internal/corpus"
	"gauntlet/internal/persist"
)

func fingerprints(fs []core.Finding) []uint64 {
	out := make([]uint64, len(fs))
	for i, f := range fs {
		out[i] = f.Fingerprint
	}
	return out
}

// TestFleetResume: the coordinator owns the campaign's single journal and
// checkpoint, and a restarted coordinator — journal-seeded dedup plus the
// checkpoint watermark and corpus — must continue a partial campaign so
// the combined journal is byte-for-byte the single uninterrupted run, and
// at-least-once lease replay never re-reports a journaled fingerprint.
func TestFleetResume(t *testing.T) {
	run := testRun()
	run.Reduce = false
	const seeds, leaseSlots = 32, 8
	want, wantCorpus := directRun(t, run, seeds)
	if len(want) == 0 {
		t.Fatal("no findings: the seeded defects should fire within 32 seeds")
	}
	dir := t.TempDir()

	// Phase 1: a campaign over the first half of the budget, then a
	// simulated coordinator death (the process just stops).
	st1, err := persist.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	coord1, err := NewCoordinator(CoordinatorConfig{
		Run: run, Seeds: 16, LeaseSlots: leaseSlots, State: st1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := RunLocal(context.Background(), coord1, localWorkers(2)); err != nil {
		t.Fatal(err)
	}
	st1.Close()

	// Phase 2: reopen the directory, resume to the full budget. Only
	// findings absent from the journal may be emitted.
	st2, err := persist.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	known, nrec, err := st2.KnownFindings()
	if err != nil {
		t.Fatal(err)
	}
	if nrec == 0 || nrec != len(coord1.Findings()) {
		t.Fatalf("journal has %d records, phase 1 released %d findings", nrec, len(coord1.Findings()))
	}
	cp, err := st2.LoadCheckpoint()
	if err != nil || cp == nil {
		t.Fatalf("checkpoint: %v (cp=%v)", err, cp)
	}
	if cp.NextSlot != 16 {
		t.Fatalf("checkpoint NextSlot = %d, want 16", cp.NextSlot)
	}
	crp, err := corpus.FromSnapshot(cp.Corpus)
	if err != nil {
		t.Fatal(err)
	}
	var emitted []core.Finding
	coord2, err := NewCoordinator(CoordinatorConfig{
		Run: run, Seeds: seeds, LeaseSlots: leaseSlots, State: st2,
		KnownFindings: known, ResumeWatermark: cp.NextSlot, Corpus: crp,
		OnFinding: func(f core.Finding) { emitted = append(emitted, f) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := RunLocal(context.Background(), coord2, localWorkers(2)); err != nil {
		t.Fatal(err)
	}
	st2.Close()
	knownSet := make(map[uint64]bool, len(known))
	for _, fp := range known {
		knownSet[fp] = true
	}
	for _, f := range emitted {
		if knownSet[f.Fingerprint] {
			t.Errorf("resume re-reported journaled fingerprint %016x", f.Fingerprint)
		}
	}

	// The combined journal must be the uninterrupted run's finding
	// sequence, and the resumed master corpus the uninterrupted corpus.
	st3, err := persist.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	all, _, err := st3.KnownFindings()
	st3.Close()
	if err != nil {
		t.Fatal(err)
	}
	wantFPs := fingerprints(want)
	if len(all) != len(wantFPs) {
		t.Fatalf("journal has %d findings, uninterrupted run has %d:\njournal %x\nwant    %x", len(all), len(wantFPs), all, wantFPs)
	}
	for i := range all {
		if all[i] != wantFPs[i] {
			t.Fatalf("journal[%d] = %016x, uninterrupted run has %016x", i, all[i], wantFPs[i])
		}
	}
	wantCorpusFPs := wantCorpus.Fingerprints()
	gotCorpusFPs := coord2.Corpus().Fingerprints()
	if len(wantCorpusFPs) != len(gotCorpusFPs) {
		t.Fatalf("resumed corpus has %d seeds, uninterrupted run has %d", len(gotCorpusFPs), len(wantCorpusFPs))
	}
	for i := range wantCorpusFPs {
		if wantCorpusFPs[i] != gotCorpusFPs[i] {
			t.Fatalf("resumed corpus seed %d fingerprint diverges", i)
		}
	}

	// Phase 3: replay absorption. Resume again from the phase-1 watermark
	// with the now-complete journal — leases 2 and 3 re-run whole
	// (at-least-once), and every finding they produce is already
	// journaled, so nothing may be emitted or appended.
	st4, err := persist.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	crp2, err := corpus.FromSnapshot(cp.Corpus)
	if err != nil {
		t.Fatal(err)
	}
	coord3, err := NewCoordinator(CoordinatorConfig{
		Run: run, Seeds: seeds, LeaseSlots: leaseSlots, State: st4,
		KnownFindings: all, ResumeWatermark: 16, Corpus: crp2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := RunLocal(context.Background(), coord3, localWorkers(2)); err != nil {
		t.Fatal(err)
	}
	if got := coord3.Findings(); len(got) != 0 {
		t.Errorf("replayed leases re-reported %d journaled findings", len(got))
	}
	_, n4, err := st4.KnownFindings()
	st4.Close()
	if err != nil {
		t.Fatal(err)
	}
	if n4 != len(all) {
		t.Errorf("replay grew the journal from %d to %d records", len(all), n4)
	}

	// Phase 4: a watermark at the end of the budget means nothing to do —
	// the coordinator is born complete.
	coord4, err := NewCoordinator(CoordinatorConfig{
		Run: run, Seeds: seeds, LeaseSlots: leaseSlots,
		KnownFindings: all, ResumeWatermark: seeds,
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-coord4.Done():
	default:
		t.Error("coordinator resumed past the end is not Done")
	}
}
