package fleet

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"gauntlet/internal/bugs"
	"gauntlet/internal/compiler"
	"gauntlet/internal/core"
	"gauntlet/internal/corpus"
	"gauntlet/internal/faultinject"
	"gauntlet/internal/generator"
	"gauntlet/internal/validate"
)

// ErrSevered is returned by RunWorker when an injected link fault closed
// the connection (the chaos harness's expected outcome, not a bug).
var ErrSevered = errors.New("fleet: link severed by fault injection")

// WorkerConfig parameterizes one worker process (or goroutine).
type WorkerConfig struct {
	// Name identifies the worker in logs and the per-worker lease-latency
	// series ("" = "worker").
	Name string
	// LinkFault, when set, is consulted after each lease completes and
	// before its result is sent — the deterministic fleet-link
	// fault-injection point (faultinject.LinkPlan.Hook). Delay sleeps,
	// Drop swallows the result, Sever closes the connection.
	LinkFault func(lease int64) faultinject.LinkFault
	// Logf, when set, receives worker progress lines.
	Logf func(format string, args ...any)
}

// engineConfigForLease builds the lease-ranged engine configuration: the
// existing engine, unchanged, over [lease.Start, lease.Start+lease.Count)
// with a fresh delta-logging corpus and the worker-lifetime validation
// cache. MutateRatio stays zero — fleet runs are pure-generation, which
// is what makes a lease replayable without cross-lease corpus state.
func engineConfigForLease(run *RunConfig, lease Lease, cache *validate.Cache) (core.EngineConfig, *corpus.Corpus, error) {
	cfg := core.DefaultEngineConfig()
	cfg.StartSeed = lease.Start
	cfg.Seeds = lease.Count
	cfg.Seed = run.Seed
	cfg.MutateRatio = 0
	cfg.SyncInterval = run.SyncInterval
	cfg.Workers = run.EngineWorkers
	cfg.PacketTests = run.PacketTests
	cfg.BlackBox = run.BlackBox
	cfg.ConcolicOff = run.ConcolicOff
	if run.MaxConflicts > 0 {
		cfg.MaxConflicts = run.MaxConflicts
	}
	cfg.Reduce = run.Reduce
	if run.ReduceMaxRounds > 0 {
		cfg.ReduceOpts.MaxRounds = run.ReduceMaxRounds
	}
	if run.ReduceMaxPredicateCalls > 0 {
		cfg.ReduceOpts.MaxPredicateCalls = run.ReduceMaxPredicateCalls
	}
	cfg.MaxReducePerPass = run.MaxReducePerPass
	cfg.Cache = cache
	cfg.StageTimeout = time.Duration(run.StageTimeoutMs) * time.Millisecond
	cfg.OracleTimeout = time.Duration(run.OracleTimeoutMs) * time.Millisecond
	switch run.Backend {
	case "", "v1model":
		cfg.Backend = generator.V1Model
	case "tna":
		cfg.Backend = generator.TNA
	default:
		return cfg, nil, fmt.Errorf("fleet: unknown backend %q", run.Backend)
	}
	if len(run.Defects) > 0 {
		reg := bugs.Load()
		var active []*bugs.Bug
		for _, id := range run.Defects {
			b := reg.ByID(id)
			if b == nil {
				return cfg, nil, fmt.Errorf("fleet: defect registry has no bug %q", id)
			}
			active = append(active, b)
		}
		cfg.Passes = bugs.Instrument(compiler.DefaultPasses(), active)
	}
	c := corpus.New(run.MaxCorpus)
	c.EnableDeltaLog()
	cfg.Corpus = c
	return cfg, c, nil
}

// runLease executes one lease with a fresh engine and packages the
// result: the engine's report stream in its canonical order, the corpus
// delta, and a stats digest.
func runLease(ctx context.Context, run *RunConfig, lease Lease, cache *validate.Cache, name string) (*Result, error) {
	cfg, crp, err := engineConfigForLease(run, lease, cache)
	if err != nil {
		return nil, err
	}
	e := core.NewEngine(cfg)
	findings := e.Run(ctx)
	if err := ctx.Err(); err != nil {
		return nil, err // cancelled mid-lease: never ship a partial result
	}
	s := e.Stats()
	return &Result{
		LeaseID:  lease.ID,
		Worker:   name,
		Findings: findings,
		Delta:    crp.ExportDelta(),
		Stats: ResultStats{
			Generated:       s.Generated,
			Crashes:         s.Crashes,
			Miscompilations: s.Miscompilations,
			Mismatches:      s.Mismatches,
			Duplicates:      s.Duplicates,
			ToolErrors:      s.CompileErrors + s.OracleErrors,
			Quarantined:     s.Quarantined,
			ElapsedNs:       s.Elapsed.Nanoseconds(),
		},
	}, nil
}

// RunWorker speaks the worker side of the protocol over conn: hello,
// config, then lease-run-result until the coordinator drains. The
// validation cache is worker-lifetime and shared across leases —
// verdicts are recomputed, never changed, by a cold cache, so sharing
// affects cost only. Returns nil on a clean drain.
func RunWorker(ctx context.Context, conn io.ReadWriteCloser, wcfg WorkerConfig) error {
	defer conn.Close()
	if wcfg.Name == "" {
		wcfg.Name = "worker"
	}
	logf := wcfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	// Unblock the protocol reads when ctx dies: the engine run is
	// ctx-aware, but readMsg is not.
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()
	if err := writeMsg(conn, &Envelope{Type: MsgHello, Hello: &Hello{Worker: wcfg.Name, Proto: ProtoVersion}}); err != nil {
		return err
	}
	env, err := readMsg(conn)
	if err != nil {
		return fmt.Errorf("fleet: config: %w", err)
	}
	if env.Type != MsgConfig || env.Config == nil {
		return fmt.Errorf("fleet: expected config, got %q", env.Type)
	}
	run := env.Config
	cache := validate.NewCache()
	for {
		if err := writeMsg(conn, &Envelope{Type: MsgNeed}); err != nil {
			return err
		}
		env, err := readMsg(conn)
		if err != nil {
			return err
		}
		switch env.Type {
		case MsgDrain:
			logf("fleet: %s drained", wcfg.Name)
			return nil
		case MsgLease:
			if env.Lease == nil {
				return fmt.Errorf("fleet: lease frame without payload")
			}
			lease := *env.Lease
			logf("fleet: %s running lease %d [%d, %d)", wcfg.Name, lease.ID, lease.Start, lease.Start+lease.Count)
			res, err := runLease(ctx, run, lease, cache, wcfg.Name)
			if err != nil {
				return err
			}
			if wcfg.LinkFault != nil {
				f := wcfg.LinkFault(lease.ID)
				if f.Delay > 0 {
					t := time.NewTimer(f.Delay)
					select {
					case <-t.C:
					case <-ctx.Done():
						t.Stop()
						return ctx.Err()
					}
					t.Stop()
				}
				if f.Drop {
					logf("fleet: %s dropping result for lease %d (injected)", wcfg.Name, lease.ID)
					if f.Sever {
						return ErrSevered
					}
					continue
				}
				if f.Sever {
					logf("fleet: %s severing link after lease %d (injected)", wcfg.Name, lease.ID)
					return ErrSevered
				}
			}
			if err := writeMsg(conn, &Envelope{Type: MsgResult, Result: res}); err != nil {
				return err
			}
		default:
			return fmt.Errorf("fleet: unexpected %q from coordinator", env.Type)
		}
	}
}
