package smt

import (
	"sort"
	"sync"
)

// Simplify rewrites a term into a canonical, typically smaller form with
// identical semantics: Eval(Simplify(t), a) == Eval(t, a) for every
// assignment a (no fresh variables are introduced and none are given new
// meaning, so models transfer in both directions).
//
// It is the word-level layer beneath the bit-blaster: translation
// validation's miters compare two near-identical circuits, and most of
// their disagreement is syntactic noise — argument order, nested
// conjunctions, extract-of-concat plumbing — that the solver would
// otherwise rediscover clause by clause. Simplify normalizes that noise
// away: commutative operands are sorted by a run-stable structural rank,
// And/Or are flattened/deduplicated with complement detection, Not is
// pushed to the leaves, Ite chains collapse, equalities decompose through
// concat/zext, and constant shifts become wiring (concat with zeros). Two
// raw miters that differ only syntactically normalize to one canonical
// term, so the validator's verdict cache can key on the simplified ID —
// and a miter that normalizes to a constant never reaches CDCL search.
//
// Results are memoized in a sharded cache keyed by the interned term ID
// (the same discipline as the interner itself), owned by the term's
// Context — so the cost of a simplification is paid once per distinct
// subterm per context, and rotating contexts reclaims the memo together
// with the terms it indexes. Safe for concurrent use; the function is
// deterministic within a process, so racing goroutines store the same
// (pointer-identical) result.
func Simplify(t *Term) *Term {
	s := &t.ctx.simp[t.id%simpShards]
	s.mu.Lock()
	if r, ok := s.simplified[t.id]; ok {
		s.hits++
		s.mu.Unlock()
		return r
	}
	s.mu.Unlock()

	r := simplifyNode(t)

	s.mu.Lock()
	if s.simplified == nil {
		s.simplified = map[uint64]*Term{}
	}
	s.misses++
	s.simplified[t.id] = r
	s.mu.Unlock()
	if r != t {
		// A simplified term is its own fixpoint: record it so callers that
		// re-simplify results (validate does, after sym.Equivalent) get a
		// cache hit instead of a re-walk.
		rs := &r.ctx.simp[r.id%simpShards]
		rs.mu.Lock()
		if rs.simplified == nil {
			rs.simplified = map[uint64]*Term{}
		}
		if _, ok := rs.simplified[r.id]; !ok {
			rs.simplified[r.id] = r
		}
		rs.mu.Unlock()
	}
	return r
}

const simpShards = 64

// simpShard holds one shard of a context's simplification memo and of
// its canonical-rank memo. Two maps, one lock: both are keyed by term ID
// and touched on the same paths.
type simpShard struct {
	mu         sync.Mutex
	simplified map[uint64]*Term
	canon      map[uint64]uint64
	hits       uint64
	misses     uint64
}

// SimplifyInfo is a point-in-time snapshot of the simplification cache.
type SimplifyInfo struct {
	// Entries is the number of memoized (term → simplified term) pairs.
	Entries uint64
	// Hits and Misses count cache lookups; the hit rate is the fraction of
	// subterm simplifications answered without any rewriting work.
	Hits, Misses uint64
}

// SimplifyStats snapshots the default context's simplification cache.
func SimplifyStats() SimplifyInfo { return defaultCtx.SimplifyStats() }

// canonRank returns a run-stable structural hash of the term: unlike
// Term.Hash (which mixes interner IDs, assigned in construction order and
// therefore scheduling-dependent), canonRank depends only on structure.
// It orders commutative operands, so the canonical form of a formula is
// identical across runs and worker counts. Memoized per term ID in the
// owning context.
func canonRank(t *Term) uint64 {
	s := &t.ctx.simp[t.id%simpShards]
	s.mu.Lock()
	if r, ok := s.canon[t.id]; ok {
		s.mu.Unlock()
		return r
	}
	s.mu.Unlock()

	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
		h ^= h >> 29
	}
	mix(uint64(t.Op))
	mix(uint64(t.W))
	mix(t.Val)
	mix(uint64(t.Hi)<<32 | uint64(uint32(t.Lo)))
	mix(uint64(len(t.Name)))
	for i := 0; i < len(t.Name); i++ {
		mix(uint64(t.Name[i]))
	}
	mix(uint64(len(t.Args)))
	for _, a := range t.Args {
		mix(canonRank(a))
	}

	s.mu.Lock()
	if s.canon == nil {
		s.canon = map[uint64]uint64{}
	}
	s.canon[t.id] = h
	s.mu.Unlock()
	return h
}

// rankLess orders terms by canonical rank with the interner ID as a
// collision tie-break (equal ranks for distinct terms are vanishingly
// rare; pointer-equal terms compare equal and are deduplicated anyway).
func rankLess(a, b *Term) bool {
	ra, rb := canonRank(a), canonRank(b)
	if ra != rb {
		return ra < rb
	}
	return a.id < b.id
}

// simplifyNode simplifies one node: children first (through the memoizing
// Simplify), then the node-local rewrite rules. All rules preserve
// semantics exactly — they are model-preserving, not merely
// equisatisfiable — which the differential fuzz tests check against Eval.
func simplifyNode(t *Term) *Term {
	switch t.Op {
	case OpVar, OpConst:
		return t
	}
	args := make([]*Term, len(t.Args))
	for i, a := range t.Args {
		args[i] = Simplify(a)
	}
	switch t.Op {
	case OpNot:
		return simpNot(args[0])
	case OpAnd:
		return simpNaryBool(OpAnd, args)
	case OpOr:
		return simpNaryBool(OpOr, args)
	case OpEq:
		return simpEq(args[0], args[1])
	case OpIte:
		return simpIte(args[0], args[1], args[2])
	case OpUlt:
		return simpUlt(args[0], args[1])
	case OpUle:
		return simpUle(args[0], args[1])
	case OpBVAdd:
		return simpAdd(args[0], args[1])
	case OpBVSub:
		return simpSub(args[0], args[1])
	case OpBVMul:
		return simpCommutative(OpBVMul, Mul, args[0], args[1])
	case OpBVAnd:
		return simpBVAnd(args[0], args[1])
	case OpBVOr:
		return simpBVOr(args[0], args[1])
	case OpBVXor:
		return simpBVXor(args[0], args[1])
	case OpBVNot:
		return simpBVNot(args[0])
	case OpBVNeg:
		return simpBVNeg(args[0])
	case OpBVShl:
		return simpShift(args[0], args[1], true)
	case OpBVLshr:
		return simpShift(args[0], args[1], false)
	case OpBVConcat:
		return simpConcat(args[0], args[1])
	case OpBVExtract:
		return simpExtract(args[0], t.Hi, t.Lo)
	case OpBVZext:
		return simpZExt(args[0], t.W)
	}
	return t
}

// neg returns the simplified negation of an already-simplified boolean.
func neg(x *Term) *Term { return Simplify(Not(x)) }

// simpNot pushes negation toward the leaves: De Morgan over And/Or,
// distribution over Ite, and comparison flipping (¬(a<b) ⇒ b≤a). The
// argument is already simplified.
func simpNot(x *Term) *Term {
	switch x.Op {
	case OpConst:
		return x.ctx.Bool(x.Val == 0)
	case OpNot:
		return x.Args[0]
	case OpAnd:
		ys := make([]*Term, len(x.Args))
		for i, a := range x.Args {
			ys[i] = neg(a)
		}
		return simpNaryBool(OpOr, ys)
	case OpOr:
		ys := make([]*Term, len(x.Args))
		for i, a := range x.Args {
			ys[i] = neg(a)
		}
		return simpNaryBool(OpAnd, ys)
	case OpIte:
		return simpIte(x.Args[0], neg(x.Args[1]), neg(x.Args[2]))
	case OpUlt:
		return simpUle(x.Args[1], x.Args[0])
	case OpUle:
		return simpUlt(x.Args[1], x.Args[0])
	}
	return Not(x)
}

// complementOf returns the syntactic complement of a simplified boolean
// term, for And/Or complement detection. Comparisons complement through
// their flipped dual (¬(a<b) = b≤a); everything else through an interned
// Not node (a cheap hash-cons probe).
func complementOf(x *Term) *Term {
	switch x.Op {
	case OpNot:
		return x.Args[0]
	case OpUlt:
		return Ule(x.Args[1], x.Args[0])
	case OpUle:
		return Ult(x.Args[1], x.Args[0])
	}
	return Not(x)
}

// simpNaryBool canonicalizes an And/Or argument list: flatten nested
// same-op nodes, drop neutral elements, short-circuit on the absorbing
// constant, deduplicate pointer-equal args, detect complement pairs
// (x ∧ ¬x ⇒ false, x ∨ ¬x ⇒ true), and sort by canonical rank. Args are
// already simplified.
func simpNaryBool(op Op, xs []*Term) *Term {
	c := ctxOf(xs...)
	absorbing, neutral := c.False(), c.True()
	if op == OpOr {
		absorbing, neutral = c.True(), c.False()
	}
	var flat []*Term
	var flatten func([]*Term) bool
	flatten = func(ys []*Term) bool {
		for _, y := range ys {
			// Structural constant checks, not pointer ones: an argument
			// list may still carry a constant adopted from another
			// context.
			if y.IsConst() {
				if y.Val == absorbing.Val {
					return false
				}
				continue
			}
			if y.Op == op {
				if !flatten(y.Args) {
					return false
				}
				continue
			}
			flat = append(flat, y)
		}
		return true
	}
	if !flatten(xs) {
		return absorbing
	}
	seen := make(map[*Term]bool, len(flat))
	uniq := flat[:0]
	for _, y := range flat {
		if seen[y] {
			continue
		}
		seen[y] = true
		uniq = append(uniq, y)
	}
	for _, y := range uniq {
		if seen[complementOf(y)] {
			return absorbing
		}
	}
	switch len(uniq) {
	case 0:
		return neutral
	case 1:
		return uniq[0]
	}
	sort.Slice(uniq, func(i, j int) bool { return rankLess(uniq[i], uniq[j]) })
	if op == OpAnd {
		return And(uniq...)
	}
	return Or(uniq...)
}

// simpCommutative orders the operands of a commutative operator by
// canonical rank and rebuilds through the folding constructor.
func simpCommutative(op Op, build func(a, b *Term) *Term, a, b *Term) *Term {
	if rankLess(b, a) {
		a, b = b, a
	}
	return build(a, b)
}

// simpEq canonicalizes an equality: operand ordering, word-level
// decomposition through concat/zext/not/neg, operand cancellation for
// operators injective in one argument, and ite-absorption.
func simpEq(a, b *Term) *Term {
	if a == b {
		return a.ctx.True()
	}
	if rankLess(b, a) {
		a, b = b, a
	}
	if a.IsConst() && b.IsConst() {
		return a.ctx.Bool(a.Val == b.Val)
	}
	if a.IsBool() {
		// Boolean identity/negation folds must go through the simplifier's
		// own negation (the raw Eq constructor would emit a bare Not node,
		// which is not canonical and would poison the fixpoint memo).
		switch {
		case a.IsTrue():
			return b
		case a.IsFalse():
			return simpNot(b)
		case b.IsTrue():
			return a
		case b.IsFalse():
			return simpNot(a)
		}
	}
	if !a.IsBool() {
		// Concat = Concat with the same split: compare the halves
		// independently (the halves are narrower, so this recurses toward
		// per-field equalities — exactly how miter outputs decompose).
		if a.Op == OpBVConcat && b.Op == OpBVConcat &&
			a.Args[0].W == b.Args[0].W {
			return simpNaryBool(OpAnd, []*Term{
				simpEq(a.Args[0], b.Args[0]),
				simpEq(a.Args[1], b.Args[1]),
			})
		}
		// Structured side = const: decompose against the constant. Which
		// side holds the constant depends on the rank order, so match both
		// orientations in place (re-calling with swapped arguments would
		// fight the canonical sort above and loop).
		if a.IsConst() || b.IsConst() {
			c, x := a, b
			if b.IsConst() {
				c, x = b, a
			}
			switch x.Op {
			case OpBVConcat:
				loW := x.Args[1].W
				return simpNaryBool(OpAnd, []*Term{
					simpEq(x.Args[0], x.ctx.Const(c.Val>>uint(loW), x.Args[0].W)),
					simpEq(x.Args[1], x.ctx.Const(c.Val, loW)),
				})
			case OpBVZext:
				base := x.Args[0]
				if base.W < 64 && c.Val>>uint(base.W) != 0 {
					return x.ctx.False()
				}
				return simpEq(base, x.ctx.Const(c.Val, base.W))
			case OpBVNot:
				return simpEq(x.Args[0], x.ctx.Const(^c.Val, x.W))
			}
		}
		// ZExt = ZExt over equal base widths.
		if a.Op == OpBVZext && b.Op == OpBVZext && a.Args[0].W == b.Args[0].W {
			return simpEq(a.Args[0], b.Args[0])
		}
		// Injective unary wrappers peel off both sides.
		if a.Op == OpBVNot && b.Op == OpBVNot {
			return simpEq(a.Args[0], b.Args[0])
		}
		if a.Op == OpBVNeg && b.Op == OpBVNeg {
			return simpEq(a.Args[0], b.Args[0])
		}
		// Shared-operand cancellation: + and ^ are injective in the other
		// argument; - in its first.
		if x, y, ok := cancelShared(a, b); ok {
			return simpEq(x, y)
		}
		// x = (c ? x : y) ⇔ c ∨ x=y (and the three symmetric variants).
		if b.Op == OpIte {
			if b.Args[1] == a {
				return simpNaryBool(OpOr, []*Term{b.Args[0], simpEq(a, b.Args[2])})
			}
			if b.Args[2] == a {
				return simpNaryBool(OpOr, []*Term{neg(b.Args[0]), simpEq(a, b.Args[1])})
			}
		}
		if a.Op == OpIte {
			if a.Args[1] == b {
				return simpNaryBool(OpOr, []*Term{a.Args[0], simpEq(b, a.Args[2])})
			}
			if a.Args[2] == b {
				return simpNaryBool(OpOr, []*Term{neg(a.Args[0]), simpEq(b, a.Args[1])})
			}
		}
	}
	return Eq(a, b)
}

// cancelShared strips a shared operand from both sides of an equality
// over the same operator when that operator is injective in the remaining
// argument: x+a = x+b ⇔ a=b (modular add), x^a = x^b ⇔ a=b, a-x = b-x
// and x-a = x-b ⇔ a=b.
func cancelShared(a, b *Term) (x, y *Term, ok bool) {
	if a.Op != b.Op {
		return nil, nil, false
	}
	switch a.Op {
	case OpBVAdd, OpBVXor:
		for _, i := range [2]int{0, 1} {
			for _, j := range [2]int{0, 1} {
				if a.Args[i] == b.Args[j] {
					return a.Args[1-i], b.Args[1-j], true
				}
			}
		}
	case OpBVSub:
		if a.Args[0] == b.Args[0] {
			return a.Args[1], b.Args[1], true
		}
		if a.Args[1] == b.Args[1] {
			return a.Args[0], b.Args[0], true
		}
	}
	return nil, nil, false
}

// simpIte canonicalizes an if-then-else: negated conditions flip the
// branches, boolean constant branches turn into connectives, and chains
// sharing a branch or condition collapse.
func simpIte(c, t, e *Term) *Term {
	for c.Op == OpNot {
		c, t, e = c.Args[0], e, t
	}
	if c.IsTrue() {
		return t
	}
	if c.IsFalse() {
		return e
	}
	if t == e {
		return t
	}
	if t.IsBool() {
		// Boolean branches: an Ite is a mux only until one branch is
		// constant, then it is a plain connective.
		switch {
		case t.IsTrue():
			return simpNaryBool(OpOr, []*Term{c, e})
		case t.IsFalse():
			return simpNaryBool(OpAnd, []*Term{neg(c), e})
		case e.IsTrue():
			return simpNaryBool(OpOr, []*Term{neg(c), t})
		case e.IsFalse():
			return simpNaryBool(OpAnd, []*Term{c, t})
		case t == neg(e):
			return simpEq(c, t)
		}
	}
	// Same condition nested: the outer selection already decided it.
	if t.Op == OpIte && t.Args[0] == c {
		t = t.Args[1]
	}
	if e.Op == OpIte && e.Args[0] == c {
		e = e.Args[2]
	}
	// Shared branch across a chain: (c ? x : (c2 ? x : y)) = (c∨c2 ? x : y)
	// and (c ? (c2 ? x : y) : y) = (c∧c2 ? x : y).
	if e.Op == OpIte && e.Args[1] == t {
		return simpIte(simpNaryBool(OpOr, []*Term{c, e.Args[0]}), t, e.Args[2])
	}
	if t.Op == OpIte && t.Args[2] == e {
		return simpIte(simpNaryBool(OpAnd, []*Term{c, t.Args[0]}), t.Args[1], e)
	}
	return Ite(c, t, e)
}

func maxOf(w int) uint64 { return mask(^uint64(0), w) }

// simpUlt applies the unsigned-less-than constant-range rules.
func simpUlt(a, b *Term) *Term {
	if a == b {
		return a.ctx.False()
	}
	if a.IsConst() && b.IsConst() {
		return a.ctx.Bool(a.Val < b.Val)
	}
	if b.IsConst() {
		switch b.Val {
		case 0:
			return ctxOf(a, b).False()
		case 1:
			return simpEq(a, ctxOf(a, b).Const(0, a.W))
		case maxOf(a.W):
			return neg(simpEq(a, ctxOf(a, b).Const(b.Val, a.W)))
		}
		// a is zero-extended and always below the bound.
		if a.Op == OpBVZext && a.Args[0].W < 64 && b.Val >= 1<<uint(a.Args[0].W) {
			return a.ctx.True()
		}
	}
	if a.IsConst() {
		switch a.Val {
		case maxOf(b.W):
			return ctxOf(a, b).False()
		case 0:
			return neg(simpEq(b, ctxOf(a, b).Const(0, b.W)))
		case maxOf(b.W) - 1:
			return simpEq(b, ctxOf(a, b).Const(maxOf(b.W), b.W))
		}
		if b.Op == OpBVZext && b.Args[0].W < 64 && a.Val >= (1<<uint(b.Args[0].W))-1 {
			return b.ctx.False()
		}
	}
	return Ult(a, b)
}

// simpUle applies the unsigned-less-or-equal constant-range rules.
func simpUle(a, b *Term) *Term {
	if a == b {
		return a.ctx.True()
	}
	if a.IsConst() && b.IsConst() {
		return a.ctx.Bool(a.Val <= b.Val)
	}
	if b.IsConst() {
		switch b.Val {
		case maxOf(a.W):
			return ctxOf(a, b).True()
		case 0:
			return simpEq(a, ctxOf(a, b).Const(0, a.W))
		}
		if a.Op == OpBVZext && a.Args[0].W < 64 && b.Val >= (1<<uint(a.Args[0].W))-1 {
			return a.ctx.True()
		}
	}
	if a.IsConst() {
		switch a.Val {
		case 0:
			return ctxOf(a, b).True()
		case maxOf(b.W):
			return simpEq(b, ctxOf(a, b).Const(a.Val, b.W))
		}
		if b.Op == OpBVZext && b.Args[0].W < 64 && a.Val >= 1<<uint(b.Args[0].W) {
			return b.ctx.False()
		}
	}
	return Ule(a, b)
}

// simpAdd canonicalizes addition: commutative ordering, sub-chain
// cancellation ((x-y)+y ⇒ x), neg-to-sub, and constant re-association.
func simpAdd(a, b *Term) *Term {
	if a.Op == OpBVSub && a.Args[1] == b {
		return a.Args[0]
	}
	if b.Op == OpBVSub && b.Args[1] == a {
		return b.Args[0]
	}
	if b.Op == OpBVNeg {
		return simpSub(a, b.Args[0])
	}
	if a.Op == OpBVNeg {
		return simpSub(b, a.Args[0])
	}
	// (x + c1) + c2 ⇒ x + (c1+c2): constants bubble together.
	if b.IsConst() && a.Op == OpBVAdd {
		if c1 := a.Args[1]; c1.IsConst() {
			return simpAdd(a.Args[0], a.ctx.Const(c1.Val+b.Val, a.W))
		}
		if c1 := a.Args[0]; c1.IsConst() {
			return simpAdd(a.Args[1], a.ctx.Const(c1.Val+b.Val, a.W))
		}
	}
	if a.IsConst() && b.Op == OpBVAdd {
		return simpAdd(b, a)
	}
	return simpCommutative(OpBVAdd, Add, a, b)
}

// simpSub canonicalizes subtraction: x-x ⇒ 0, add-chain cancellation,
// and subtract-by-constant rewritten as add-of-negated-constant so the
// Add rules see one canonical shape.
func simpSub(a, b *Term) *Term {
	if a == b {
		return a.ctx.Const(0, a.W)
	}
	if a.Op == OpBVAdd {
		if a.Args[0] == b {
			return a.Args[1]
		}
		if a.Args[1] == b {
			return a.Args[0]
		}
	}
	if b.Op == OpBVNeg {
		return simpAdd(a, b.Args[0])
	}
	if b.IsConst() && b.Val != 0 {
		return simpAdd(a, a.ctx.Const(^b.Val+1, a.W))
	}
	if a.IsConst() && a.Val == 0 {
		return simpBVNeg(b)
	}
	return Sub(a, b)
}

func simpBVAnd(a, b *Term) *Term {
	if a == b {
		return a
	}
	if (a.Op == OpBVNot && a.Args[0] == b) || (b.Op == OpBVNot && b.Args[0] == a) {
		return a.ctx.Const(0, a.W)
	}
	return simpCommutative(OpBVAnd, BVAnd, a, b)
}

func simpBVOr(a, b *Term) *Term {
	if a == b {
		return a
	}
	if (a.Op == OpBVNot && a.Args[0] == b) || (b.Op == OpBVNot && b.Args[0] == a) {
		return a.ctx.Const(maxOf(a.W), a.W)
	}
	return simpCommutative(OpBVOr, BVOr, a, b)
}

func simpBVXor(a, b *Term) *Term {
	if a == b {
		return a.ctx.Const(0, a.W)
	}
	if a.IsConst() && b.IsConst() {
		return a.ctx.Const(a.Val^b.Val, a.W)
	}
	if (a.Op == OpBVNot && a.Args[0] == b) || (b.Op == OpBVNot && b.Args[0] == a) {
		return a.ctx.Const(maxOf(a.W), a.W)
	}
	if a.Op == OpBVNot && b.Op == OpBVNot {
		return simpBVXor(a.Args[0], b.Args[0])
	}
	// x ^ ones ⇒ ~x; (x ^ c1) ^ c2 ⇒ x ^ (c1^c2).
	if b.IsConst() {
		if b.Val == maxOf(a.W) {
			return simpBVNot(a)
		}
		if a.Op == OpBVXor {
			if c1 := a.Args[1]; c1.IsConst() {
				return simpBVXor(a.Args[0], a.ctx.Const(c1.Val^b.Val, a.W))
			}
			if c1 := a.Args[0]; c1.IsConst() {
				return simpBVXor(a.Args[1], a.ctx.Const(c1.Val^b.Val, a.W))
			}
		}
	}
	if a.IsConst() && !b.IsConst() {
		return simpBVXor(b, a)
	}
	return simpCommutative(OpBVXor, BVXor, a, b)
}

func simpBVNot(a *Term) *Term {
	if a.Op == OpBVNot {
		return a.Args[0]
	}
	return BVNot(a)
}

func simpBVNeg(a *Term) *Term {
	if a.Op == OpBVNeg {
		return a.Args[0]
	}
	if a.Op == OpBVSub {
		return simpSub(a.Args[1], a.Args[0])
	}
	return BVNeg(a)
}

// simpShift turns shift-by-constant into pure wiring: a left shift is the
// kept low bits concatenated over zeros, a right shift is the kept high
// bits zero-extended. Variable shifts keep the barrel shifter.
func simpShift(x, amt *Term, left bool) *Term {
	if !amt.IsConst() {
		if left {
			return Shl(x, amt)
		}
		return Lshr(x, amt)
	}
	w := x.W
	c := amt.Val
	if c >= uint64(w) {
		return x.ctx.Const(0, w)
	}
	if c == 0 {
		return x
	}
	if left {
		return simpConcat(simpExtract(x, w-1-int(c), 0), x.ctx.Const(0, int(c)))
	}
	return simpZExt(simpExtract(x, w-1, int(c)), w)
}

// simpConcat fuses adjacent extracts of the same source back together and
// canonicalizes zero high bits to zero-extension.
func simpConcat(hi, lo *Term) *Term {
	if hi.Op == OpBVExtract && lo.Op == OpBVExtract &&
		hi.Args[0] == lo.Args[0] && hi.Lo == lo.Hi+1 {
		return simpExtract(hi.Args[0], hi.Hi, lo.Lo)
	}
	if hi.IsConst() && hi.Val == 0 {
		return simpZExt(lo, hi.W+lo.W)
	}
	return Concat(hi, lo)
}

// simpExtract fuses extraction through concat, zext, bitwise operators
// and ite. The extract-of-extract case lives in the constructor.
func simpExtract(x *Term, hi, lo int) *Term {
	if lo == 0 && hi == x.W-1 {
		return x
	}
	switch x.Op {
	case OpConst:
		return x.ctx.Const(x.Val>>uint(lo), hi-lo+1)
	case OpBVConcat:
		loPart := x.Args[1]
		switch {
		case hi < loPart.W:
			return simpExtract(loPart, hi, lo)
		case lo >= loPart.W:
			return simpExtract(x.Args[0], hi-loPart.W, lo-loPart.W)
		default:
			return simpConcat(
				simpExtract(x.Args[0], hi-loPart.W, 0),
				simpExtract(loPart, loPart.W-1, lo))
		}
	case OpBVZext:
		base := x.Args[0]
		switch {
		case hi < base.W:
			return simpExtract(base, hi, lo)
		case lo >= base.W:
			return x.ctx.Const(0, hi-lo+1)
		default:
			return simpZExt(simpExtract(base, base.W-1, lo), hi-lo+1)
		}
	case OpBVNot:
		return simpBVNot(simpExtract(x.Args[0], hi, lo))
	case OpBVAnd:
		return simpBVAnd(simpExtract(x.Args[0], hi, lo), simpExtract(x.Args[1], hi, lo))
	case OpBVOr:
		return simpBVOr(simpExtract(x.Args[0], hi, lo), simpExtract(x.Args[1], hi, lo))
	case OpBVXor:
		return simpBVXor(simpExtract(x.Args[0], hi, lo), simpExtract(x.Args[1], hi, lo))
	case OpIte:
		return simpIte(x.Args[0],
			simpExtract(x.Args[1], hi, lo), simpExtract(x.Args[2], hi, lo))
	}
	return Extract(x, hi, lo)
}

// simpZExt flattens nested zero-extensions.
func simpZExt(x *Term, w int) *Term {
	if x.Op == OpBVZext {
		return simpZExt(x.Args[0], w)
	}
	return ZExt(x, w)
}
