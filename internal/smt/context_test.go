package smt

import (
	"fmt"
	"sync"
	"testing"
)

// TestContextIsolation checks that two contexts hash-cons independently:
// structurally equal terms are pointer-equal within a context, distinct
// across contexts, and their IDs never collide (the global ID sequence).
func TestContextIsolation(t *testing.T) {
	c1, c2 := NewContext(), NewContext()
	build := func(c *Context) *Term {
		x := c.Var("x", 8)
		y := c.Var("y", 8)
		return Eq(Add(x, y), c.Const(7, 8))
	}
	a1, b1 := build(c1), build(c1)
	a2 := build(c2)
	if a1 != b1 {
		t.Fatalf("same-context construction not hash-consed")
	}
	if a1 == a2 {
		t.Fatalf("terms from different contexts are pointer-equal")
	}
	if a1.ID() == a2.ID() {
		t.Fatalf("term IDs collide across contexts: %d", a1.ID())
	}
	if a1.Context() != c1 || a2.Context() != c2 {
		t.Fatalf("terms report wrong owning context")
	}
	s1, s2 := c1.InternerStats(), c2.InternerStats()
	if s1.Entries == 0 || s1.Entries != s2.Entries {
		t.Fatalf("context interners should have identical entry counts, got %d vs %d", s1.Entries, s2.Entries)
	}
}

// TestContextConstAdoption checks that constants (and variable leaves)
// from another context are re-interned into the context of the composite
// term they join, so epoch-context formulas never alias default-context
// structure.
func TestContextConstAdoption(t *testing.T) {
	c := NewContext()
	x := c.Var("x", 8)
	// Package-level Const/True live in the default context.
	sum := Add(x, Const(3, 8))
	if sum.Context() != c {
		t.Fatalf("composite adopted into wrong context")
	}
	for _, a := range sum.Args {
		if a.Context() != c {
			t.Fatalf("argument %s not adopted into composite's context", a)
		}
	}
	// Boolean constants behave the same through the n-ary constructors.
	conj := And(True, Eq(x, c.Const(1, 8)), False)
	if !conj.IsFalse() || conj.Context() != c {
		t.Fatalf("And with foreign constants misfolded: %s (ctx ok=%v)", conj, conj.Context() == c)
	}
	// Foreign variable leaves adopt too.
	mixedVar := Add(x, Var("y", 8))
	for _, a := range mixedVar.Args {
		if a.Context() != c {
			t.Fatalf("foreign variable leaf not adopted")
		}
	}
}

// TestContextCompositeMixPanics checks the guard: composing composite
// terms from two contexts must panic rather than silently alias one
// epoch's structure from another.
func TestContextCompositeMixPanics(t *testing.T) {
	c1, c2 := NewContext(), NewContext()
	a := Add(c1.Var("x", 8), c1.Var("y", 8))
	b := Add(c2.Var("x", 8), c2.Var("y", 8))
	defer func() {
		if recover() == nil {
			t.Fatalf("cross-context composite composition did not panic")
		}
	}()
	_ = Eq(a, b)
}

// TestContextSimplifyDeterminism checks that simplification is
// context-local (memoized per context) and produces the same canonical
// structure in every context.
func TestContextSimplifyDeterminism(t *testing.T) {
	shape := func(c *Context) string {
		x := c.Var("x", 8)
		y := c.Var("y", 8)
		miter := And(
			Or(Eq(x, y), Not(Eq(x, y))),
			Eq(Sub(Add(x, y), y), x),
			Ule(c.Const(0, 8), x),
		)
		return Simplify(miter).String()
	}
	base := shape(DefaultContext())
	for i := 0; i < 3; i++ {
		c := NewContext()
		if got := shape(c); got != base {
			t.Fatalf("context %d canonical form differs:\n got %s\nwant %s", i, got, base)
		}
		if st := c.SimplifyStats(); st.Entries == 0 {
			t.Fatalf("context simplify memo unused")
		}
	}
}

// TestContextRotationReclaims checks the serve-mode memory story at the
// smt level: construction routed through a rotating context leaves the
// retired context's interner untouched and the fresh context bounded,
// with no growth of the default context.
func TestContextRotationReclaims(t *testing.T) {
	before := InternerStats().Entries
	var perEpoch []uint64
	for epoch := 0; epoch < 3; epoch++ {
		c := NewContext()
		for i := 0; i < 50; i++ {
			x := c.Var(fmt.Sprintf("x%d", i), 16)
			f := Eq(Add(x, c.Const(uint64(i), 16)), c.Const(3, 16))
			_ = Simplify(f)
		}
		perEpoch = append(perEpoch, c.InternerStats().Entries)
	}
	for i := 1; i < len(perEpoch); i++ {
		if perEpoch[i] != perEpoch[0] {
			t.Fatalf("epoch %d interner entries %d != epoch 0's %d (same workload must cost the same per epoch)",
				i, perEpoch[i], perEpoch[0])
		}
	}
	if after := InternerStats().Entries; after != before {
		t.Fatalf("context-routed construction leaked %d terms into the default interner", after-before)
	}
}

// TestContextConcurrent hammers one fresh context from many goroutines
// (run under -race): the interner and simplify memo must be safe and
// value-deterministic.
func TestContextConcurrent(t *testing.T) {
	c := NewContext()
	const workers = 8
	results := make([]*Term, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var f *Term
			for i := 0; i < 200; i++ {
				x := c.Var(fmt.Sprintf("v%d", i%16), 8)
				y := c.Var(fmt.Sprintf("v%d", (i+1)%16), 8)
				f = Simplify(Or(Ult(x, y), Eq(x, y), Ult(y, x)))
			}
			results[w] = f
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if results[w] != results[0] {
			t.Fatalf("concurrent construction diverged: %s vs %s", results[w], results[0])
		}
	}
}

// TestContextAdoptionOrderIndependent pins ctxOf's ownership rule:
// default-context leaves mixed into an epoch formula route the node into
// the epoch context regardless of argument order — a leading
// default-context variable must neither panic against an epoch composite
// nor drag an epoch leaf into the immortal default interner.
func TestContextAdoptionOrderIndependent(t *testing.T) {
	c := NewContext()
	comp := Add(c.Var("a", 8), c.Var("b", 8))

	// Composite second: the composite still pins ownership.
	if got := Eq(Var("x", 8), comp); got.Context() != c {
		t.Fatalf("Eq(defaultVar, epochComposite) landed in the wrong context")
	}
	if got := Eq(comp, Var("x", 8)); got.Context() != c {
		t.Fatalf("Eq(epochComposite, defaultVar) landed in the wrong context")
	}

	// All-leaf mix: the non-default context wins either way.
	before := InternerStats().Entries
	if got := Eq(Var("y", 8), c.Var("z", 8)); got.Context() != c {
		t.Fatalf("Eq(defaultVar, epochVar) landed in the default context")
	}
	if got := Eq(c.Var("z", 8), Var("y", 8)); got.Context() != c {
		t.Fatalf("Eq(epochVar, defaultVar) landed in the default context")
	}
	// Only the default-context leaves themselves may exist there; the
	// composite must not have been interned into the default table.
	if after := InternerStats().Entries; after > before+1 {
		t.Fatalf("leaf mix grew the default interner by %d entries (want at most the leaf itself)", after-before)
	}
}

// TestContextDefaultCompositeCannotCaptureEpochTerms pins the remaining
// ctxOf corner: a default-context composite combined with an
// epoch-owned term must panic (the composite cannot migrate), never
// silently intern the epoch term — and the node — into the immortal
// default context.
func TestContextDefaultCompositeCannotCaptureEpochTerms(t *testing.T) {
	c := NewContext()
	defComp := Add(Var("dc_a", 8), Var("dc_b", 8))
	before := InternerStats().Entries
	defer func() {
		if recover() == nil {
			t.Fatalf("Eq(defaultComposite, epochVar) did not panic")
		}
		if after := InternerStats().Entries; after != before {
			t.Fatalf("default interner grew by %d entries on the failed mix", after-before)
		}
	}()
	_ = Eq(defComp, c.Var("z", 8))
}
