package smt

// Subst replaces variables by terms throughout t, sharing structure via a
// memo table (terms are immutable, so shared subtrees rewrite once).
// Variables absent from the map are kept. Replacement terms must have the
// variable's sort.
func Subst(t *Term, repl map[string]*Term) *Term {
	if len(repl) == 0 {
		return t
	}
	memo := map[*Term]*Term{}
	return subst(t, repl, memo)
}

func subst(t *Term, repl map[string]*Term, memo map[*Term]*Term) *Term {
	if r, ok := memo[t]; ok {
		return r
	}
	var out *Term
	switch t.Op {
	case OpVar:
		if r, ok := repl[t.Name]; ok {
			if r.W != t.W {
				panic("smt.Subst: sort mismatch for " + t.Name)
			}
			out = r
		} else {
			out = t
		}
	case OpConst:
		out = t
	default:
		changed := false
		args := make([]*Term, len(t.Args))
		for i, a := range t.Args {
			args[i] = subst(a, repl, memo)
			if args[i] != a {
				changed = true
			}
		}
		if !changed {
			out = t
		} else {
			// Rebuild through the smart constructors to refold.
			out = rebuild(t, args)
		}
	}
	memo[t] = out
	return out
}

// rebuild reconstructs a node with new arguments through the folding
// constructors.
func rebuild(t *Term, args []*Term) *Term {
	switch t.Op {
	case OpNot:
		return Not(args[0])
	case OpAnd:
		return And(args...)
	case OpOr:
		return Or(args...)
	case OpEq:
		return Eq(args[0], args[1])
	case OpIte:
		return Ite(args[0], args[1], args[2])
	case OpUlt:
		return Ult(args[0], args[1])
	case OpUle:
		return Ule(args[0], args[1])
	case OpBVAdd:
		return Add(args[0], args[1])
	case OpBVSub:
		return Sub(args[0], args[1])
	case OpBVMul:
		return Mul(args[0], args[1])
	case OpBVAnd:
		return BVAnd(args[0], args[1])
	case OpBVOr:
		return BVOr(args[0], args[1])
	case OpBVXor:
		return BVXor(args[0], args[1])
	case OpBVNot:
		return BVNot(args[0])
	case OpBVNeg:
		return BVNeg(args[0])
	case OpBVShl:
		return Shl(args[0], args[1])
	case OpBVLshr:
		return Lshr(args[0], args[1])
	case OpBVConcat:
		return Concat(args[0], args[1])
	case OpBVExtract:
		return Extract(args[0], t.Hi, t.Lo)
	case OpBVZext:
		return ZExt(args[0], t.W)
	default:
		panic("smt.rebuild: unexpected op")
	}
}
