// Package smt implements the quantifier-free bitvector (QF_BV) term
// language Gauntlet's symbolic interpreter targets, replacing the paper's
// use of Z3. Terms are immutable trees built through smart constructors
// that perform constant folding and light algebraic simplification; the
// solver subpackage decides satisfiability by bit-blasting to CNF and
// running a CDCL SAT solver — the same decision procedure Z3 uses for
// QF_BV internally, so decidability and model availability are preserved.
//
// Sorts: boolean (Width 0) and bitvectors of width 1..64.
//
// All construction is routed through a Context — the scoped owner of the
// interner and simplification memo (see Context). Leaf constructors are
// Context methods; composite constructors infer the context from their
// arguments; the package-level constructors build in the process-default
// context.
package smt

import (
	"fmt"
	"strings"
)

// Op enumerates term operators.
type Op int

// Term operators.
const (
	OpVar   Op = iota // named input (Name, W)
	OpConst           // constant (Val, W; W==0 means bool with Val in {0,1})

	// Boolean connectives (W == 0).
	OpNot // 1 arg
	OpAnd // n args
	OpOr  // n args

	// Polymorphic.
	OpEq  // 2 args of equal sort → bool
	OpIte // cond (bool), then, else (equal sorts)

	// Bitvector comparisons → bool.
	OpUlt
	OpUle

	// Bitvector arithmetic/logic (result W = operand W).
	OpBVAdd
	OpBVSub
	OpBVMul
	OpBVAnd
	OpBVOr
	OpBVXor
	OpBVNot
	OpBVNeg
	OpBVShl  // shift amount is args[1], any width
	OpBVLshr // logical shift right

	// Structure.
	OpBVConcat  // args[0] high bits, args[1] low bits; W = sum
	OpBVExtract // bits Hi..Lo of args[0]; W = Hi-Lo+1
	OpBVZext    // zero-extend args[0] to W
)

var opNames = map[Op]string{
	OpVar: "var", OpConst: "const", OpNot: "not", OpAnd: "and", OpOr: "or",
	OpEq: "=", OpIte: "ite", OpUlt: "bvult", OpUle: "bvule",
	OpBVAdd: "bvadd", OpBVSub: "bvsub", OpBVMul: "bvmul",
	OpBVAnd: "bvand", OpBVOr: "bvor", OpBVXor: "bvxor",
	OpBVNot: "bvnot", OpBVNeg: "bvneg", OpBVShl: "bvshl", OpBVLshr: "bvlshr",
	OpBVConcat: "concat", OpBVExtract: "extract", OpBVZext: "zext",
}

// Term is an immutable SMT term. W is the bitvector width, or 0 for
// booleans. Never mutate a Term after construction.
//
// Terms are hash-consed per Context: the smart constructors intern every
// node, so structurally equal terms *of one context* are pointer-equal
// and carry a stable ID (unique process-wide, across contexts) and a
// precomputed structural hash. Build terms only through the
// constructors.
type Term struct {
	Op     Op
	W      int
	Val    uint64 // OpConst
	Name   string // OpVar
	Hi, Lo int    // OpBVExtract
	Args   []*Term

	id   uint64   // process-unique, stable for the process lifetime
	hash uint64   // structural hash (shallow fields + child IDs)
	ctx  *Context // owning context (set at intern time)
}

// ID returns the term's stable interning ID. Structurally equal terms of
// one context share an ID; IDs are small, never reused and unique across
// contexts, which makes them good cache keys for formula-level
// memoization even while contexts rotate.
func (t *Term) ID() uint64 { return t.id }

// Hash returns the term's structural hash (O(1): precomputed when the
// term was interned).
func (t *Term) Hash() uint64 { return t.hash }

// IsBool reports whether the term has boolean sort.
func (t *Term) IsBool() bool { return t.W == 0 }

// IsConst reports whether the term is a constant.
func (t *Term) IsConst() bool { return t.Op == OpConst }

// IsTrue reports whether the term is the boolean constant true.
func (t *Term) IsTrue() bool { return t.Op == OpConst && t.W == 0 && t.Val == 1 }

// IsFalse reports whether the term is the boolean constant false.
func (t *Term) IsFalse() bool { return t.Op == OpConst && t.W == 0 && t.Val == 0 }

func mask(v uint64, w int) uint64 {
	if w <= 0 || w >= 64 {
		return v
	}
	return v & ((1 << uint(w)) - 1)
}

// String renders the term in SMT-LIB-like prefix syntax.
func (t *Term) String() string {
	switch t.Op {
	case OpVar:
		return t.Name
	case OpConst:
		if t.W == 0 {
			if t.Val == 1 {
				return "true"
			}
			return "false"
		}
		return fmt.Sprintf("#b%d[%d]", t.Val, t.W)
	case OpBVExtract:
		return fmt.Sprintf("(extract %d %d %s)", t.Hi, t.Lo, t.Args[0])
	case OpBVZext:
		return fmt.Sprintf("(zext %d %s)", t.W, t.Args[0])
	default:
		var b strings.Builder
		b.WriteByte('(')
		b.WriteString(opNames[t.Op])
		for _, a := range t.Args {
			b.WriteByte(' ')
			b.WriteString(a.String())
		}
		b.WriteByte(')')
		return b.String()
	}
}

// Size returns the number of distinct nodes in the term DAG (shared
// subterms count once — terms built by branch merging share heavily, so a
// tree count would be exponential).
func (t *Term) Size() int {
	seen := map[*Term]bool{}
	var walk func(*Term)
	walk = func(x *Term) {
		if seen[x] {
			return
		}
		seen[x] = true
		for _, a := range x.Args {
			walk(a)
		}
	}
	walk(t)
	return len(seen)
}

// Vars collects the free variables of the term into out (name → width).
// Shared subterms are visited once.
func (t *Term) Vars(out map[string]int) {
	seen := map[*Term]bool{}
	var walk func(*Term)
	walk = func(x *Term) {
		if seen[x] {
			return
		}
		seen[x] = true
		if x.Op == OpVar {
			out[x.Name] = x.W
			return
		}
		for _, a := range x.Args {
			walk(a)
		}
	}
	walk(t)
}

// --- Constructors -----------------------------------------------------
//
// Leaf constructors (Var, Const, Bool) live on Context; the package
// functions below build in the default context. Composite constructors
// infer their context from the arguments via ctxOf, so a formula grown
// from context-owned leaves stays in that context end to end.

// Var creates a bitvector variable of the given width in the default
// context (or boolean when width is 0).
func Var(name string, width int) *Term { return defaultCtx.Var(name, width) }

// BoolVar creates a boolean variable in the default context.
func BoolVar(name string) *Term { return defaultCtx.Var(name, 0) }

// Const creates a bitvector constant in the default context, masked to
// width.
func Const(val uint64, width int) *Term { return defaultCtx.Const(val, width) }

// Bool creates a boolean constant in the default context.
func Bool(v bool) *Term { return defaultCtx.Bool(v) }

// True and False are the default context's boolean constants.
var (
	True  = defaultCtx.True()
	False = defaultCtx.False()
)

func assertBool(t *Term, who string) {
	if !t.IsBool() {
		panic(fmt.Sprintf("smt.%s: operand %s is not boolean", who, t))
	}
}

func assertBV(t *Term, who string) {
	if t.IsBool() {
		panic(fmt.Sprintf("smt.%s: operand %s is not a bitvector", who, t))
	}
}

func assertSameSort(a, b *Term, who string) {
	if a.W != b.W {
		panic(fmt.Sprintf("smt.%s: sort mismatch %d vs %d (%s vs %s)", who, a.W, b.W, a, b))
	}
}

// Not negates a boolean term.
func Not(x *Term) *Term {
	assertBool(x, "Not")
	if x.IsConst() {
		return x.ctx.Bool(x.Val == 0)
	}
	if x.Op == OpNot {
		return x.Args[0]
	}
	return x.ctx.intern(&Term{Op: OpNot, Args: []*Term{x}})
}

// And conjoins boolean terms, folding constants.
func And(xs ...*Term) *Term {
	c := ctxOf(xs...)
	var args []*Term
	for _, x := range xs {
		assertBool(x, "And")
		if x.IsFalse() {
			return c.False()
		}
		if x.IsTrue() {
			continue
		}
		if x.Op == OpAnd {
			args = append(args, x.Args...)
			continue
		}
		args = append(args, x)
	}
	switch len(args) {
	case 0:
		return c.True()
	case 1:
		return args[0]
	}
	return c.intern(&Term{Op: OpAnd, Args: args})
}

// Or disjoins boolean terms, folding constants.
func Or(xs ...*Term) *Term {
	c := ctxOf(xs...)
	var args []*Term
	for _, x := range xs {
		assertBool(x, "Or")
		if x.IsTrue() {
			return c.True()
		}
		if x.IsFalse() {
			continue
		}
		if x.Op == OpOr {
			args = append(args, x.Args...)
			continue
		}
		args = append(args, x)
	}
	switch len(args) {
	case 0:
		return c.False()
	case 1:
		return args[0]
	}
	return c.intern(&Term{Op: OpOr, Args: args})
}

// Implies builds (or (not a) b).
func Implies(a, b *Term) *Term { return Or(Not(a), b) }

// Eq builds equality between two terms of the same sort.
func Eq(a, b *Term) *Term {
	assertSameSort(a, b, "Eq")
	c := ctxOf(a, b)
	if a.IsConst() && b.IsConst() {
		return c.Bool(a.Val == b.Val)
	}
	if a == b {
		return c.True()
	}
	// Boolean equality with constant folds to identity/negation.
	if a.IsBool() {
		if a.IsTrue() {
			return b
		}
		if b.IsTrue() {
			return a
		}
		if a.IsFalse() {
			return Not(b)
		}
		if b.IsFalse() {
			return Not(a)
		}
	}
	return c.intern(&Term{Op: OpEq, Args: []*Term{a, b}})
}

// Ne builds disequality.
func Ne(a, b *Term) *Term { return Not(Eq(a, b)) }

// Ite builds if-then-else; cond must be boolean, branches of equal sort.
func Ite(cond, then, els *Term) *Term {
	assertBool(cond, "Ite")
	assertSameSort(then, els, "Ite")
	if cond.IsTrue() {
		return then
	}
	if cond.IsFalse() {
		return els
	}
	if then == els {
		return then
	}
	if then.IsConst() && els.IsConst() && then.Val == els.Val {
		return then
	}
	// Boolean ITE with constant branches is the condition itself (or its
	// negation).
	if then.IsBool() {
		if then.IsTrue() && els.IsFalse() {
			return cond
		}
		if then.IsFalse() && els.IsTrue() {
			return Not(cond)
		}
	}
	// Redundant nested guards (shared condition object): the inner branch
	// is already selected by the outer condition.
	if then.Op == OpIte && then.Args[0] == cond {
		then = then.Args[1]
	}
	if els.Op == OpIte && els.Args[0] == cond {
		els = els.Args[2]
	}
	if then == els {
		return then
	}
	return ctxOf(cond, then, els).intern(&Term{Op: OpIte, W: then.W, Args: []*Term{cond, then, els}})
}

// Ult builds unsigned less-than.
func Ult(a, b *Term) *Term {
	assertBV(a, "Ult")
	assertSameSort(a, b, "Ult")
	c := ctxOf(a, b)
	if a.IsConst() && b.IsConst() {
		return c.Bool(a.Val < b.Val)
	}
	return c.intern(&Term{Op: OpUlt, Args: []*Term{a, b}})
}

// Ule builds unsigned less-or-equal.
func Ule(a, b *Term) *Term {
	assertBV(a, "Ule")
	assertSameSort(a, b, "Ule")
	c := ctxOf(a, b)
	if a.IsConst() && b.IsConst() {
		return c.Bool(a.Val <= b.Val)
	}
	return c.intern(&Term{Op: OpUle, Args: []*Term{a, b}})
}

// Ugt and Uge are the flipped comparisons.
func Ugt(a, b *Term) *Term { return Ult(b, a) }

// Uge builds unsigned greater-or-equal.
func Uge(a, b *Term) *Term { return Ule(b, a) }

func bvBin(op Op, a, b *Term, fold func(x, y uint64) uint64) *Term {
	assertBV(a, opNames[op])
	assertSameSort(a, b, opNames[op])
	c := ctxOf(a, b)
	if a.IsConst() && b.IsConst() {
		return c.Const(fold(a.Val, b.Val), a.W)
	}
	return c.intern(&Term{Op: op, W: a.W, Args: []*Term{a, b}})
}

// Add builds bitvector addition (modular).
func Add(a, b *Term) *Term {
	if b.IsConst() && b.Val == 0 {
		return a
	}
	if a.IsConst() && a.Val == 0 {
		return b
	}
	return bvBin(OpBVAdd, a, b, func(x, y uint64) uint64 { return x + y })
}

// Sub builds bitvector subtraction (modular).
func Sub(a, b *Term) *Term {
	if b.IsConst() && b.Val == 0 {
		return a
	}
	return bvBin(OpBVSub, a, b, func(x, y uint64) uint64 { return x - y })
}

// Mul builds bitvector multiplication (modular).
func Mul(a, b *Term) *Term {
	if b.IsConst() && b.Val == 1 {
		return a
	}
	if a.IsConst() && a.Val == 1 {
		return b
	}
	if (a.IsConst() && a.Val == 0) || (b.IsConst() && b.Val == 0) {
		return ctxOf(a, b).Const(0, a.W)
	}
	return bvBin(OpBVMul, a, b, func(x, y uint64) uint64 { return x * y })
}

// BVAnd builds bitwise and.
func BVAnd(a, b *Term) *Term {
	if a.IsConst() && a.Val == 0 || b.IsConst() && b.Val == 0 {
		return ctxOf(a, b).Const(0, a.W)
	}
	if a.IsConst() && a.Val == mask(^uint64(0), a.W) {
		return b
	}
	if b.IsConst() && b.Val == mask(^uint64(0), b.W) {
		return a
	}
	return bvBin(OpBVAnd, a, b, func(x, y uint64) uint64 { return x & y })
}

// BVOr builds bitwise or.
func BVOr(a, b *Term) *Term {
	if a.IsConst() && a.Val == 0 {
		return b
	}
	if b.IsConst() && b.Val == 0 {
		return a
	}
	return bvBin(OpBVOr, a, b, func(x, y uint64) uint64 { return x | y })
}

// BVXor builds bitwise xor.
func BVXor(a, b *Term) *Term {
	if a.IsConst() && a.Val == 0 {
		return b
	}
	if b.IsConst() && b.Val == 0 {
		return a
	}
	if a == b {
		return a.ctx.Const(0, a.W)
	}
	return bvBin(OpBVXor, a, b, func(x, y uint64) uint64 { return x ^ y })
}

// BVNot builds bitwise complement.
func BVNot(a *Term) *Term {
	assertBV(a, "BVNot")
	if a.IsConst() {
		return a.ctx.Const(^a.Val, a.W)
	}
	if a.Op == OpBVNot {
		return a.Args[0]
	}
	return a.ctx.intern(&Term{Op: OpBVNot, W: a.W, Args: []*Term{a}})
}

// BVNeg builds two's-complement negation.
func BVNeg(a *Term) *Term {
	assertBV(a, "BVNeg")
	if a.IsConst() {
		return a.ctx.Const(^a.Val+1, a.W)
	}
	return a.ctx.intern(&Term{Op: OpBVNeg, W: a.W, Args: []*Term{a}})
}

// Shl builds a left shift. The shift amount b may have any width; amounts
// >= width yield zero (P4 semantics).
func Shl(a, b *Term) *Term {
	assertBV(a, "Shl")
	assertBV(b, "Shl")
	c := ctxOf(a, b)
	if b.IsConst() {
		if b.Val >= uint64(a.W) {
			return c.Const(0, a.W)
		}
		if b.Val == 0 {
			return a
		}
		if a.IsConst() {
			return c.Const(a.Val<<b.Val, a.W)
		}
	}
	return c.intern(&Term{Op: OpBVShl, W: a.W, Args: []*Term{a, b}})
}

// Lshr builds a logical right shift with the same amount semantics as Shl.
func Lshr(a, b *Term) *Term {
	assertBV(a, "Lshr")
	assertBV(b, "Lshr")
	c := ctxOf(a, b)
	if b.IsConst() {
		if b.Val >= uint64(a.W) {
			return c.Const(0, a.W)
		}
		if b.Val == 0 {
			return a
		}
		if a.IsConst() {
			return c.Const(mask(a.Val, a.W)>>b.Val, a.W)
		}
	}
	return c.intern(&Term{Op: OpBVLshr, W: a.W, Args: []*Term{a, b}})
}

// Concat joins hi and lo into a wider vector (hi in the high bits).
func Concat(hi, lo *Term) *Term {
	assertBV(hi, "Concat")
	assertBV(lo, "Concat")
	w := hi.W + lo.W
	if w > 64 {
		panic(fmt.Sprintf("smt.Concat: width %d exceeds 64", w))
	}
	c := ctxOf(hi, lo)
	if hi.IsConst() && lo.IsConst() {
		return c.Const(hi.Val<<uint(lo.W)|lo.Val, w)
	}
	return c.intern(&Term{Op: OpBVConcat, W: w, Args: []*Term{hi, lo}})
}

// Extract selects bits hi..lo (inclusive).
func Extract(x *Term, hi, lo int) *Term {
	assertBV(x, "Extract")
	if lo < 0 || hi < lo || hi >= x.W {
		panic(fmt.Sprintf("smt.Extract: bounds [%d:%d] invalid for width %d", hi, lo, x.W))
	}
	if lo == 0 && hi == x.W-1 {
		return x
	}
	w := hi - lo + 1
	if x.IsConst() {
		return x.ctx.Const(x.Val>>uint(lo), w)
	}
	if x.Op == OpBVExtract {
		return Extract(x.Args[0], x.Lo+hi, x.Lo+lo)
	}
	return x.ctx.intern(&Term{Op: OpBVExtract, W: w, Hi: hi, Lo: lo, Args: []*Term{x}})
}

// ZExt zero-extends x to the given width (identity when equal).
func ZExt(x *Term, width int) *Term {
	assertBV(x, "ZExt")
	if width < x.W || width > 64 {
		panic(fmt.Sprintf("smt.ZExt: cannot extend width %d to %d", x.W, width))
	}
	if width == x.W {
		return x
	}
	if x.IsConst() {
		return x.ctx.Const(x.Val, width)
	}
	return x.ctx.intern(&Term{Op: OpBVZext, W: width, Args: []*Term{x}})
}

// Trunc truncates x to the given width (identity when equal).
func Trunc(x *Term, width int) *Term {
	if width == x.W {
		return x
	}
	return Extract(x, width-1, 0)
}

// SatAdd builds saturating addition via compare-and-select.
func SatAdd(a, b *Term) *Term {
	sum := Add(a, b)
	overflow := Ult(sum, a) // wraparound detection for modular add
	return Ite(overflow, ctxOf(a, b).Const(^uint64(0), a.W), sum)
}

// SatSub builds saturating subtraction via compare-and-select.
func SatSub(a, b *Term) *Term {
	return Ite(Ult(a, b), ctxOf(a, b).Const(0, a.W), Sub(a, b))
}

// BoolToBV converts a boolean to a bitvector 0/1 of the given width.
func BoolToBV(b *Term, width int) *Term {
	return Ite(b, b.ctx.Const(1, width), b.ctx.Const(0, width))
}

// BVToBool converts a bit<1> vector to a boolean.
func BVToBool(x *Term) *Term { return Eq(x, x.ctx.Const(1, x.W)) }
