package smt_test

import (
	"math/rand"
	"sync"
	"testing"

	"gauntlet/internal/smt"
)

// structEq is a pointer-free structural equality oracle over exported
// fields, used to verify the interning invariant independently.
func structEq(a, b *smt.Term) bool {
	if a.Op != b.Op || a.W != b.W || a.Val != b.Val || a.Name != b.Name ||
		a.Hi != b.Hi || a.Lo != b.Lo || len(a.Args) != len(b.Args) {
		return false
	}
	for i := range a.Args {
		if !structEq(a.Args[i], b.Args[i]) {
			return false
		}
	}
	return true
}

// randBV builds a random 8-bit term over a small variable pool.
func randBV(r *rand.Rand, depth int) *smt.Term {
	if depth == 0 {
		switch r.Intn(4) {
		case 0:
			return smt.Var("a", 8)
		case 1:
			return smt.Var("b", 8)
		case 2:
			return smt.Var("c", 8)
		default:
			return smt.Const(r.Uint64()&0xFF, 8)
		}
	}
	x := randBV(r, depth-1)
	y := randBV(r, depth-1)
	switch r.Intn(8) {
	case 0:
		return smt.Add(x, y)
	case 1:
		return smt.Sub(x, y)
	case 2:
		return smt.BVAnd(x, y)
	case 3:
		return smt.BVOr(x, y)
	case 4:
		return smt.BVXor(x, y)
	case 5:
		return smt.BVNot(x)
	case 6:
		return smt.Ite(smt.Ult(x, y), x, y)
	default:
		return smt.Concat(smt.Extract(x, 3, 0), smt.Extract(y, 7, 4))
	}
}

// randBool builds a random boolean term.
func randBool(r *rand.Rand, depth int) *smt.Term {
	if depth == 0 || r.Intn(4) == 0 {
		switch r.Intn(3) {
		case 0:
			return smt.Eq(randBV(r, 1), randBV(r, 1))
		case 1:
			return smt.Ult(randBV(r, 1), randBV(r, 1))
		default:
			return smt.BoolVar("p")
		}
	}
	switch r.Intn(4) {
	case 0:
		return smt.And(randBool(r, depth-1), randBool(r, depth-1))
	case 1:
		return smt.Or(randBool(r, depth-1), randBool(r, depth-1))
	case 2:
		return smt.Not(randBool(r, depth-1))
	default:
		return smt.Ite(randBool(r, depth-1), randBool(r, depth-1), randBool(r, depth-1))
	}
}

// TestInternPointerEqualIffStructurallyEqual is the hash-consing
// invariant: two terms are the same object exactly when they are
// structurally equal.
func TestInternPointerEqualIffStructurallyEqual(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	var pool []*smt.Term
	for i := 0; i < 300; i++ {
		pool = append(pool, randBool(r, 3), randBV(r, 3))
	}
	for i := 0; i < len(pool); i++ {
		for j := i + 1; j < len(pool); j++ {
			ptrEq := pool[i] == pool[j]
			strEq := structEq(pool[i], pool[j])
			if ptrEq != strEq {
				t.Fatalf("interning invariant violated:\n  %s\n  %s\n  pointer-equal=%v structurally-equal=%v",
					pool[i], pool[j], ptrEq, strEq)
			}
			if idEq := pool[i].ID() == pool[j].ID(); idEq != ptrEq {
				t.Fatalf("ID equality (%v) disagrees with pointer equality (%v) for %s vs %s",
					idEq, ptrEq, pool[i], pool[j])
			}
			if strEq && pool[i].Hash() != pool[j].Hash() {
				t.Fatalf("equal terms with different hashes: %s", pool[i])
			}
		}
	}
}

// TestInternDeterministicRebuild replays the same construction sequence
// and requires identical term objects: re-symbolizing an unchanged block
// must produce pointer-equal formulas (the validator's fast path).
func TestInternDeterministicRebuild(t *testing.T) {
	build := func() []*smt.Term {
		r := rand.New(rand.NewSource(7))
		var out []*smt.Term
		for i := 0; i < 200; i++ {
			out = append(out, randBool(r, 4))
		}
		return out
	}
	first, second := build(), build()
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("replayed construction %d produced a distinct object for %s", i, first[i])
		}
	}
}

// TestInternConcurrent hammers the interner from many goroutines building
// the same term population; every goroutine must observe the same
// canonical objects. Run with -race in CI.
func TestInternConcurrent(t *testing.T) {
	const workers = 8
	results := make([][]*smt.Term, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(123))
			var out []*smt.Term
			for i := 0; i < 300; i++ {
				out = append(out, randBool(r, 3))
			}
			results[w] = out
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		for i := range results[0] {
			if results[0][i] != results[w][i] {
				t.Fatalf("worker %d term %d not canonical: %s", w, i, results[w][i])
			}
		}
	}
}

// TestInternFoldsStillApply spot-checks that interning composes with the
// constructor folds that rely on pointer equality.
func TestInternFoldsStillApply(t *testing.T) {
	x1 := smt.Add(smt.Var("x", 8), smt.Var("y", 8))
	x2 := smt.Add(smt.Var("x", 8), smt.Var("y", 8))
	if x1 != x2 {
		t.Fatal("identical adds not interned")
	}
	if got := smt.Eq(x1, x2); !got.IsTrue() {
		t.Fatalf("Eq of interned equals should fold to true, got %s", got)
	}
	if got := smt.BVXor(x1, x2); !got.IsConst() || got.Val != 0 {
		t.Fatalf("x^x should fold to 0, got %s", got)
	}
	if got := smt.Ite(smt.BoolVar("c"), x1, x2); got != x1 {
		t.Fatalf("ite with equal branches should collapse, got %s", got)
	}
}
