package smt_test

import (
	"fmt"
	"math/rand"
	"testing"

	"gauntlet/internal/smt"
)

// tapeEval runs one assignment through a compiled tape (lane 0) and
// returns root 0's value — the single-packet view of the bit-parallel
// executor, comparable 1:1 with smt.Eval.
func tapeEval(t *smt.Term, a smt.Assignment) uint64 {
	return smt.CompileTape(t).EvalOnce(a)
}

// randTapeTerm builds a random term over mixed widths, covering every
// operator the tape compiles, with boolean connectives on top. Width
// edges (1, 63, 64) are deliberately in the pool.
func randTapeTerm(r *rand.Rand, sctx *smt.Context, depth, width int) *smt.Term {
	if depth == 0 {
		switch r.Intn(4) {
		case 0:
			return sctx.Var(fmt.Sprintf("v%d_%d", width, r.Intn(3)), width)
		default:
			return sctx.Const(r.Uint64(), width)
		}
	}
	x := randTapeTerm(r, sctx, depth-1, width)
	y := randTapeTerm(r, sctx, depth-1, width)
	switch r.Intn(14) {
	case 0:
		return smt.Add(x, y)
	case 1:
		return smt.Sub(x, y)
	case 2:
		return smt.Mul(x, y)
	case 3:
		return smt.BVAnd(x, y)
	case 4:
		return smt.BVOr(x, y)
	case 5:
		return smt.BVXor(x, y)
	case 6:
		return smt.BVNot(x)
	case 7:
		return smt.BVNeg(x)
	case 8:
		return smt.Shl(x, y)
	case 9:
		return smt.Lshr(x, y)
	case 10:
		return smt.Ite(smt.Ult(x, y), x, y)
	case 11:
		if width > 1 {
			hi := r.Intn(width)
			lo := r.Intn(hi + 1)
			return smt.ZExt(smt.Extract(x, hi, lo), width)
		}
		return smt.BVNot(x)
	case 12:
		if 2*width <= 64 {
			return smt.Extract(smt.Concat(x, y), width-1, 0)
		}
		return smt.BVAnd(x, y)
	default:
		return smt.Ite(smt.Ule(x, y), y, x)
	}
}

// randBoolTerm wraps bitvector terms in boolean structure (the miter
// shape: conjunctions of equalities and comparisons).
func randBoolTerm(r *rand.Rand, sctx *smt.Context, width int) *smt.Term {
	atom := func() *smt.Term {
		x := randTapeTerm(r, sctx, 2, width)
		y := randTapeTerm(r, sctx, 2, width)
		switch r.Intn(3) {
		case 0:
			return smt.Eq(x, y)
		case 1:
			return smt.Ult(x, y)
		default:
			return smt.Ule(x, y)
		}
	}
	switch r.Intn(4) {
	case 0:
		return smt.And(atom(), atom())
	case 1:
		return smt.Or(atom(), smt.Not(atom()))
	case 2:
		return smt.Ite(atom(), atom(), atom())
	default:
		return smt.Not(atom())
	}
}

func randAssignment(r *rand.Rand, t *smt.Term) smt.Assignment {
	vars := map[string]int{}
	t.Vars(vars)
	a := smt.Assignment{}
	for name := range vars {
		a[name] = r.Uint64()
	}
	return a
}

// TestTapeDifferentialFuzz: for random terms (raw and simplified) and
// random assignments, the bit-parallel tape must agree with smt.Eval on
// every one of the 64 lanes.
func TestTapeDifferentialFuzz(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	widths := []int{1, 4, 8, 16, 33, 63, 64}
	for i := 0; i < 300; i++ {
		sctx := smt.DefaultContext()
		w := widths[r.Intn(len(widths))]
		var term *smt.Term
		if i%2 == 0 {
			term = randTapeTerm(r, sctx, 3, w)
		} else {
			term = randBoolTerm(r, sctx, w)
		}
		if i%3 == 0 {
			term = smt.Simplify(term)
		}
		if term.Op == smt.OpConst {
			continue
		}
		tp := smt.CompileTape(term)
		e := tp.Exec()
		assignments := make([]smt.Assignment, 64)
		for l := 0; l < 64; l++ {
			assignments[l] = randAssignment(r, term)
			e.SetLane(l, assignments[l])
		}
		e.Run()
		for l := 0; l < 64; l++ {
			want := smt.Eval(term, assignments[l])
			if got := e.RootLane(0, l); got != want {
				t.Fatalf("iter %d lane %d: tape=%d eval=%d for %s under %v",
					i, l, got, want, term, assignments[l])
			}
		}
		tp.Release(e)
	}
}

// TestWidthEdgeSemantics pins the shared width discipline of Eval and the
// tape at the edges (1, 63, 64 bits): masking at the word boundary,
// shift-amount overflow, arithmetic wraparound and boolean-variable
// normalization must agree bit-for-bit between the two evaluators and
// match the expected values.
func TestWidthEdgeSemantics(t *testing.T) {
	max63 := uint64(1)<<63 - 1
	max64 := ^uint64(0)
	cases := []struct {
		name string
		term *smt.Term
		a    smt.Assignment
		want uint64
	}{
		// 1-bit: wraparound and comparison at the smallest width.
		{"add_w1_wrap", smt.Add(smt.Var("x", 1), smt.Var("y", 1)), smt.Assignment{"x": 1, "y": 1}, 0},
		{"sub_w1_wrap", smt.Sub(smt.Var("x", 1), smt.Var("y", 1)), smt.Assignment{"x": 0, "y": 1}, 1},
		{"mul_w1", smt.Mul(smt.Var("x", 1), smt.Var("y", 1)), smt.Assignment{"x": 1, "y": 1}, 1},
		{"neg_w1", smt.BVNeg(smt.Var("x", 1)), smt.Assignment{"x": 1}, 1},
		{"ult_w1", smt.Ult(smt.Var("x", 1), smt.Var("y", 1)), smt.Assignment{"x": 0, "y": 1}, 1},
		{"shl_w1_by1", smt.Shl(smt.Var("x", 1), smt.Var("y", 1)), smt.Assignment{"x": 1, "y": 1}, 0},
		// 63-bit: the widest masked width (mask is a real AND).
		{"var_w63_masks", smt.Var("x", 63), smt.Assignment{"x": max64}, max63},
		{"add_w63_wrap", smt.Add(smt.Var("x", 63), smt.Var("y", 63)), smt.Assignment{"x": max63, "y": 1}, 0},
		{"mul_w63_wrap", smt.Mul(smt.Var("x", 63), smt.Var("y", 63)), smt.Assignment{"x": max63, "y": 2}, max63 - 1},
		{"neg_w63", smt.BVNeg(smt.Var("x", 63)), smt.Assignment{"x": 1}, max63},
		{"not_w63", smt.BVNot(smt.Var("x", 63)), smt.Assignment{"x": 1}, max63 - 1},
		{"shl_w63_am62", smt.Shl(smt.Var("x", 63), smt.Var("y", 63)), smt.Assignment{"x": 3, "y": 62}, uint64(1) << 62},
		{"shl_w63_am63_zero", smt.Shl(smt.Var("x", 63), smt.Var("y", 63)), smt.Assignment{"x": 1, "y": 63}, 0},
		{"lshr_w63_am62", smt.Lshr(smt.Var("x", 63), smt.Var("y", 63)), smt.Assignment{"x": max63, "y": 62}, 1},
		{"lshr_w63_am63_zero", smt.Lshr(smt.Var("x", 63), smt.Var("y", 63)), smt.Assignment{"x": max63, "y": 63}, 0},
		// 64-bit: mask(v, 64) is the identity; the machine word is the mask.
		{"add_w64_wrap", smt.Add(smt.Var("x", 64), smt.Var("y", 64)), smt.Assignment{"x": max64, "y": 1}, 0},
		{"sub_w64_wrap", smt.Sub(smt.Var("x", 64), smt.Var("y", 64)), smt.Assignment{"x": 0, "y": 1}, max64},
		{"mul_w64_wrap", smt.Mul(smt.Var("x", 64), smt.Var("y", 64)), smt.Assignment{"x": max64, "y": max64}, 1},
		{"neg_w64", smt.BVNeg(smt.Var("x", 64)), smt.Assignment{"x": 1}, max64},
		{"shl_w64_am63", smt.Shl(smt.Var("x", 64), smt.Var("y", 64)), smt.Assignment{"x": 3, "y": 63}, uint64(1) << 63},
		{"shl_w64_am64_zero", smt.Shl(smt.Var("x", 64), smt.Var("y", 64)), smt.Assignment{"x": 1, "y": 64}, 0},
		{"lshr_w64_am63", smt.Lshr(smt.Var("x", 64), smt.Var("y", 64)), smt.Assignment{"x": max64, "y": 63}, 1},
		{"lshr_w64_am64_zero", smt.Lshr(smt.Var("x", 64), smt.Var("y", 64)), smt.Assignment{"x": max64, "y": 64}, 0},
		{"ult_w64_msb", smt.Ult(smt.Var("x", 64), smt.Var("y", 64)), smt.Assignment{"x": max63, "y": uint64(1) << 63}, 1},
		// Concat/extract across the boundary.
		{"concat_1_63", smt.Concat(smt.Var("x", 1), smt.Var("y", 63)), smt.Assignment{"x": 1, "y": max63}, max64},
		{"extract_hi_w64", smt.Extract(smt.Var("x", 64), 63, 63), smt.Assignment{"x": uint64(1) << 63}, 1},
		{"zext_63_to_64", smt.ZExt(smt.Var("x", 63), 64), smt.Assignment{"x": max63}, max63},
		// Boolean operands: variables normalize to their low bit, so Not
		// can never underflow (the 1 - eval(...) bug-risk this pins down).
		{"boolvar_normalizes", smt.BoolVar("p"), smt.Assignment{"p": 5}, 1},
		{"not_nonbit_operand", smt.Not(smt.BoolVar("p")), smt.Assignment{"p": 5}, 0},
		{"not_even_nonbit", smt.Not(smt.BoolVar("p")), smt.Assignment{"p": 6}, 1},
		{"and_nonbit", smt.And(smt.BoolVar("p"), smt.BoolVar("q")), smt.Assignment{"p": 5, "q": 7}, 1},
		{"or_nonbit", smt.Or(smt.BoolVar("p"), smt.BoolVar("q")), smt.Assignment{"p": 4, "q": 2}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := smt.Eval(tc.term, tc.a); got != tc.want {
				t.Errorf("Eval(%s) = %d, want %d", tc.term, got, tc.want)
			}
			if got := tapeEval(tc.term, tc.a); got != tc.want {
				t.Errorf("tape(%s) = %d, want %d", tc.term, got, tc.want)
			}
			var ev smt.Evaluator
			if got := ev.Eval(tc.term, tc.a); got != tc.want {
				t.Errorf("Evaluator(%s) = %d, want %d", tc.term, got, tc.want)
			}
		})
	}
}

// TestEvaluatorMatchesEval: the reusable evaluator is Eval with a
// recycled memo — identical results across interleaved terms.
func TestEvaluatorMatchesEval(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	ev := smt.NewEvaluator()
	for i := 0; i < 200; i++ {
		term := randTapeTerm(r, smt.DefaultContext(), 3, []int{1, 8, 63, 64}[r.Intn(4)])
		a := randAssignment(r, term)
		if got, want := ev.Eval(term, a), smt.Eval(term, a); got != want {
			t.Fatalf("iter %d: Evaluator=%d Eval=%d for %s", i, got, want, term)
		}
	}
}

// TestTapeFalsifyDeterminism: the falsifying assignment must be a pure
// function of (seed, formula structure) — the same formula built in two
// fresh contexts (different interner IDs, different construction order)
// yields byte-identical witnesses, and repeated calls agree.
func TestTapeFalsifyDeterminism(t *testing.T) {
	mk := func(sctx *smt.Context, flip bool) *smt.Term {
		x := sctx.Var("x", 16)
		y := sctx.Var("y", 16)
		var a, b *smt.Term
		if flip {
			// Different construction order, same structure after interning.
			b = smt.Add(y, x)
			a = smt.Add(x, y)
			_ = b
		} else {
			a = smt.Add(x, y)
		}
		// "x + y == x | y" — false whenever the addition carries.
		return smt.Eq(a, smt.BVOr(x, y))
	}
	c1 := smt.NewContext()
	c2 := smt.NewContext()
	tp1 := smt.CompileTape(mk(c1, false))
	tp2 := smt.CompileTape(mk(c2, true))
	if tp1.Fingerprint() != tp2.Fingerprint() {
		t.Fatalf("fingerprints differ across contexts: %x vs %x", tp1.Fingerprint(), tp2.Fingerprint())
	}
	a1, n1, ok1 := tp1.Falsify(42, 4)
	a2, n2, ok2 := tp2.Falsify(42, 4)
	if !ok1 || !ok2 {
		t.Fatalf("falsification failed: ok1=%v ok2=%v", ok1, ok2)
	}
	if n1 != n2 {
		t.Errorf("packet counts differ: %d vs %d", n1, n2)
	}
	if fmt.Sprint(a1) != fmt.Sprint(a2) {
		t.Errorf("witnesses differ: %v vs %v", a1, a2)
	}
	// Repetition: same inputs, same witness.
	a3, _, _ := tp1.Falsify(42, 4)
	if fmt.Sprint(a1) != fmt.Sprint(a3) {
		t.Errorf("witness not reproducible: %v vs %v", a1, a3)
	}
	// The witness must actually falsify the formula under Eval.
	if smt.Eval(mk(c1, false), a1) != 0 {
		t.Errorf("witness %v does not falsify the formula", a1)
	}
}

// TestTapeFalsifyZeroLane: round 0 lane 0 is the all-zeros packet, so a
// formula falsified by zeros reports the zero witness with exactly one
// batch of work.
func TestTapeFalsifyZeroLane(t *testing.T) {
	x := smt.Var("zl_x", 8)
	tp := smt.CompileTape(smt.Ult(smt.Const(0, 8), x)) // false at x=0
	a, packets, ok := tp.Falsify(7, 4)
	if !ok || packets != 64 {
		t.Fatalf("expected first-batch falsification, got ok=%v packets=%d", ok, packets)
	}
	if a["zl_x"] != 0 {
		t.Errorf("expected the all-zeros lane as witness, got %v", a)
	}
}

// TestTapeUnfalsifiable: a tautology survives every round and reports the
// full packet budget.
func TestTapeUnfalsifiable(t *testing.T) {
	x := smt.Var("uf_x", 8)
	tp := smt.CompileTape(smt.Ule(smt.Const(0, 8), x)) // always true
	if _, packets, ok := tp.Falsify(7, 3); ok || packets != 3*64 {
		t.Fatalf("tautology falsified or wrong budget: ok=%v packets=%d", ok, packets)
	}
}

// TestTapeMultiRoot: several roots share subterms and read out
// independently (the testgen trace-steering shape).
func TestTapeMultiRoot(t *testing.T) {
	x := smt.Var("mr_x", 8)
	c1 := smt.Ult(x, smt.Const(16, 8))
	c2 := smt.Eq(smt.BVAnd(x, smt.Const(1, 8)), smt.Const(1, 8))
	tp := smt.CompileTape(c1, c2)
	e := tp.Exec()
	defer tp.Release(e)
	for l := 0; l < 64; l++ {
		e.SetLane(l, smt.Assignment{"mr_x": uint64(l * 4)})
	}
	e.Run()
	b1, b2 := e.RootBits(0), e.RootBits(1)
	for l := 0; l < 64; l++ {
		v := uint64(l * 4 % 256)
		want1 := uint64(0)
		if v < 16 {
			want1 = 1
		}
		if got := b1 >> uint(l) & 1; got != want1 {
			t.Fatalf("lane %d root 0: got %d want %d", l, got, want1)
		}
		if got := b2 >> uint(l) & 1; got != v&1 {
			t.Fatalf("lane %d root 1: got %d want %d", l, got, v&1)
		}
	}
}

// TestTapeConcurrentExec: executors from the pool race on the shared
// compiled tape (run under -race in CI).
func TestTapeConcurrentExec(t *testing.T) {
	x := smt.Var("cc_x", 32)
	y := smt.Var("cc_y", 32)
	term := smt.Eq(smt.Add(x, y), smt.Add(y, x))
	tp := smt.CompileTape(term)
	done := make(chan bool)
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- true }()
			for i := 0; i < 50; i++ {
				if _, _, ok := tp.Falsify(uint64(g*100+i), 1); ok {
					t.Errorf("commutativity falsified")
					return
				}
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}

func BenchmarkEvalFreshMemo(b *testing.B) {
	r := rand.New(rand.NewSource(5))
	term := randTapeTerm(r, smt.DefaultContext(), 6, 32)
	a := randAssignment(r, term)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		smt.Eval(term, a)
	}
}

func BenchmarkEvalReusedMemo(b *testing.B) {
	r := rand.New(rand.NewSource(5))
	term := randTapeTerm(r, smt.DefaultContext(), 6, 32)
	a := randAssignment(r, term)
	ev := smt.NewEvaluator()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.Eval(term, a)
	}
}

func BenchmarkTapeBatch(b *testing.B) {
	r := rand.New(rand.NewSource(5))
	term := randBoolTerm(r, smt.DefaultContext(), 32)
	tp := smt.CompileTape(term)
	e := tp.Exec()
	defer tp.Release(e)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.FillRound(uint64(i), 0)
		e.Run()
	}
	b.ReportMetric(float64(b.N*64)/b.Elapsed().Seconds(), "packets/sec")
}
