package smt

import (
	"fmt"
	"sync"
)

// Tape is one term DAG compiled into a flat, topologically ordered
// instruction list over bit-plane registers, executed bit-parallel: every
// register plane is one machine word holding one bit position of 64
// independent assignments ("packets"), so a single Run evaluates the
// whole DAG under 64 assignments at once. Bitwise operators cost one word
// op per plane, arithmetic ripples a carry across planes, and masking is
// free — a w-bit value simply has w planes.
//
// A Tape is immutable after compilation and safe to share; the mutable
// execution state lives in TapeExec, which each worker borrows from the
// tape's pool (isolate first, then share: the compiled program is the
// shared half, the plane arena the isolated one).
//
// The concolic fast path compiles each simplified miter once, then runs
// batches of deterministic pseudo-random packets through it: any lane
// where the miter evaluates to false is a concrete counterexample, and
// the equivalence query never reaches the solver. Semantics are pinned to
// smt.Eval exactly (differential-fuzzed, width-edge tested): booleans are
// one plane, boolean variables read their assignment's least-significant
// bit, and shifts with amount >= width yield zero.
type Tape struct {
	insns  []tapeInsn
	consts []tapeConst
	vars   []TapeVar
	roots  []tapeRef
	planes int
	fp     uint64

	pool sync.Pool // *TapeExec
}

// TapeVar describes one input variable of a compiled tape.
type TapeVar struct {
	// Name is the variable name (the Assignment key).
	Name string
	// W is the variable width in bits; 0 marks a boolean (one plane, the
	// assignment's least-significant bit).
	W int

	off int // first plane index
}

// tapeRef addresses one value in the plane arena: w consecutive planes
// starting at off (booleans have w == 1).
type tapeRef struct {
	off, w int32
}

// tapeConst is a constant initialization: planes that never change across
// runs, filled once per executor.
type tapeConst struct {
	off, w int32
	val    uint64
}

// tapeInsn is one flat instruction. a, b, c are operand plane bases
// (c is Ite's else branch), aw the operand width in planes where it can
// differ from the destination width (comparisons, shift amounts, zext and
// concat sources), and args the operand bases of n-ary And/Or.
type tapeInsn struct {
	op      Op
	dst, w  int32
	a, b, c int32
	aw      int32
	args    []int32
}

// CompileTape flattens one or more term DAGs (sharing subterms across
// roots) into a tape. Typical roots: a single boolean miter for
// falsification, or a branch-condition list for trace-steered path
// enumeration. Panics on an unknown operator, like Eval.
func CompileTape(roots ...*Term) *Tape {
	if len(roots) == 0 {
		panic("smt.CompileTape: no roots")
	}
	c := &tapeCompiler{tp: &Tape{}, memo: map[*Term]tapeRef{}}
	for _, r := range roots {
		c.tp.roots = append(c.tp.roots, c.compile(r))
	}
	// The fingerprint is run-stable: canonRank hashes structure only (no
	// interner IDs), so the same formula built in any context, in any
	// order, on any worker count derives the same concolic input stream.
	fp := uint64(0x9e3779b97f4a7c15)
	for _, r := range roots {
		fp ^= canonRank(r)
		fp *= 1099511628211
	}
	c.tp.fp = fp
	c.tp.planes = int(c.next)
	return c.tp
}

type tapeCompiler struct {
	tp   *Tape
	memo map[*Term]tapeRef
	next int32
}

// width returns a term's plane count: booleans occupy one plane.
func planeWidth(t *Term) int32 {
	if t.W == 0 {
		return 1
	}
	return int32(t.W)
}

func (c *tapeCompiler) alloc(w int32) int32 {
	off := c.next
	c.next += w
	return off
}

func (c *tapeCompiler) compile(t *Term) tapeRef {
	if r, ok := c.memo[t]; ok {
		return r
	}
	var r tapeRef
	switch t.Op {
	case OpVar:
		r = tapeRef{off: c.alloc(planeWidth(t)), w: planeWidth(t)}
		c.tp.vars = append(c.tp.vars, TapeVar{Name: t.Name, W: t.W, off: int(r.off)})
	case OpConst:
		r = tapeRef{off: c.alloc(planeWidth(t)), w: planeWidth(t)}
		c.tp.consts = append(c.tp.consts, tapeConst{off: r.off, w: r.w, val: t.Val})
	case OpBVExtract:
		// Extract is free: the argument's planes [Lo, Hi] already are the
		// result — pure register aliasing, no instruction.
		a := c.compile(t.Args[0])
		r = tapeRef{off: a.off + int32(t.Lo), w: int32(t.W)}
	case OpAnd, OpOr:
		args := make([]int32, len(t.Args))
		for i, x := range t.Args {
			args[i] = c.compile(x).off
		}
		r = tapeRef{off: c.alloc(1), w: 1}
		c.tp.insns = append(c.tp.insns, tapeInsn{op: t.Op, dst: r.off, w: 1, args: args})
	case OpNot:
		a := c.compile(t.Args[0])
		r = tapeRef{off: c.alloc(1), w: 1}
		c.tp.insns = append(c.tp.insns, tapeInsn{op: t.Op, dst: r.off, w: 1, a: a.off})
	case OpEq, OpUlt, OpUle:
		a := c.compile(t.Args[0])
		b := c.compile(t.Args[1])
		r = tapeRef{off: c.alloc(1), w: 1}
		c.tp.insns = append(c.tp.insns, tapeInsn{
			op: t.Op, dst: r.off, w: 1, a: a.off, b: b.off, aw: a.w,
		})
	case OpIte:
		cond := c.compile(t.Args[0])
		then := c.compile(t.Args[1])
		els := c.compile(t.Args[2])
		w := planeWidth(t)
		r = tapeRef{off: c.alloc(w), w: w}
		c.tp.insns = append(c.tp.insns, tapeInsn{
			op: t.Op, dst: r.off, w: w, a: cond.off, b: then.off, c: els.off,
		})
	case OpBVAdd, OpBVSub, OpBVMul, OpBVAnd, OpBVOr, OpBVXor:
		a := c.compile(t.Args[0])
		b := c.compile(t.Args[1])
		w := int32(t.W)
		r = tapeRef{off: c.alloc(w), w: w}
		c.tp.insns = append(c.tp.insns, tapeInsn{op: t.Op, dst: r.off, w: w, a: a.off, b: b.off})
	case OpBVNot, OpBVNeg:
		a := c.compile(t.Args[0])
		w := int32(t.W)
		r = tapeRef{off: c.alloc(w), w: w}
		c.tp.insns = append(c.tp.insns, tapeInsn{op: t.Op, dst: r.off, w: w, a: a.off})
	case OpBVShl, OpBVLshr:
		a := c.compile(t.Args[0])
		b := c.compile(t.Args[1])
		w := int32(t.W)
		r = tapeRef{off: c.alloc(w), w: w}
		c.tp.insns = append(c.tp.insns, tapeInsn{
			op: t.Op, dst: r.off, w: w, a: a.off, b: b.off, aw: b.w,
		})
	case OpBVConcat:
		hi := c.compile(t.Args[0])
		lo := c.compile(t.Args[1])
		w := int32(t.W)
		r = tapeRef{off: c.alloc(w), w: w}
		c.tp.insns = append(c.tp.insns, tapeInsn{
			op: t.Op, dst: r.off, w: w, a: hi.off, b: lo.off, aw: lo.w,
		})
	case OpBVZext:
		a := c.compile(t.Args[0])
		w := int32(t.W)
		r = tapeRef{off: c.alloc(w), w: w}
		c.tp.insns = append(c.tp.insns, tapeInsn{op: t.Op, dst: r.off, w: w, a: a.off, aw: a.w})
	default:
		panic(fmt.Sprintf("smt.CompileTape: unknown op %d", t.Op))
	}
	c.memo[t] = r
	return r
}

// Vars returns the tape's input variables in first-use order.
func (tp *Tape) Vars() []TapeVar { return tp.vars }

// Fingerprint is a run-stable structural hash of the compiled roots: it
// depends only on formula structure (never on interner IDs or scheduling),
// so concolic input streams keyed on it are identical across runs, worker
// counts and contexts.
func (tp *Tape) Fingerprint() uint64 { return tp.fp }

// NumInsns reports the flat instruction count (diagnostics/benchmarks).
func (tp *Tape) NumInsns() int { return len(tp.insns) }

// Exec borrows an executor from the tape's pool; return it with Release.
func (tp *Tape) Exec() *TapeExec {
	if e, ok := tp.pool.Get().(*TapeExec); ok {
		return e
	}
	e := &TapeExec{
		tp:     tp,
		planes: make([]uint64, tp.planes),
		lanes:  make([][64]uint64, len(tp.vars)),
	}
	for _, k := range tp.consts {
		for b := int32(0); b < k.w; b++ {
			if k.val>>uint(b)&1 == 1 {
				e.planes[k.off+b] = ^uint64(0)
			}
		}
	}
	return e
}

// Release returns an executor to the pool.
func (tp *Tape) Release(e *TapeExec) { tp.pool.Put(e) }

// TapeExec is the mutable execution state of one tape: the plane arena
// plus the raw per-lane input values (kept so a falsifying lane can be
// reified back into an Assignment). Not safe for concurrent use.
type TapeExec struct {
	tp     *Tape
	planes []uint64
	lanes  [][64]uint64
}

// SetLane installs one assignment into one lane (masked to each
// variable's width; booleans to their least-significant bit, matching
// Eval). Unassigned variables read as zero.
func (e *TapeExec) SetLane(lane int, a Assignment) {
	for vi := range e.tp.vars {
		v := &e.tp.vars[vi]
		val := a[v.Name]
		if v.W == 0 {
			val &= 1
		} else {
			val = mask(val, v.W)
		}
		e.lanes[vi][lane] = val
	}
}

// SetInput installs one raw value into one variable's lane, masked like
// SetLane. The fill order is the Vars() order.
func (e *TapeExec) SetInput(varIdx, lane int, val uint64) {
	v := &e.tp.vars[varIdx]
	if v.W == 0 {
		val &= 1
	} else {
		val = mask(val, v.W)
	}
	e.lanes[varIdx][lane] = val
}

// Input reads back the raw value installed for (varIdx, lane).
func (e *TapeExec) Input(varIdx, lane int) uint64 { return e.lanes[varIdx][lane] }

// LaneAssignment reifies one lane's inputs as an Assignment covering
// every tape variable (the witness-packet shape validate stores beside a
// falsified verdict).
func (e *TapeExec) LaneAssignment(lane int) Assignment {
	a := make(Assignment, len(e.tp.vars))
	for vi := range e.tp.vars {
		a[e.tp.vars[vi].Name] = e.lanes[vi][lane]
	}
	return a
}

// Run transposes the installed lane values into bit planes and executes
// the instruction tape over all 64 lanes at once.
func (e *TapeExec) Run() {
	p := e.planes
	// Transpose: plane b of variable v holds bit b of v's value in every
	// lane (lane l at bit position l of the word).
	for vi := range e.tp.vars {
		v := &e.tp.vars[vi]
		w := v.W
		if w == 0 {
			w = 1
		}
		lanes := &e.lanes[vi]
		for b := 0; b < w; b++ {
			var word uint64
			for l := 0; l < 64; l++ {
				word |= (lanes[l] >> uint(b) & 1) << uint(l)
			}
			p[v.off+b] = word
		}
	}
	for i := range e.tp.insns {
		in := &e.tp.insns[i]
		switch in.op {
		case OpNot:
			p[in.dst] = ^p[in.a]
		case OpAnd:
			acc := ^uint64(0)
			for _, a := range in.args {
				acc &= p[a]
			}
			p[in.dst] = acc
		case OpOr:
			var acc uint64
			for _, a := range in.args {
				acc |= p[a]
			}
			p[in.dst] = acc
		case OpEq:
			var diff uint64
			for i := int32(0); i < in.aw; i++ {
				diff |= p[in.a+i] ^ p[in.b+i]
			}
			p[in.dst] = ^diff
		case OpIte:
			c := p[in.a]
			for i := int32(0); i < in.w; i++ {
				p[in.dst+i] = (c & p[in.b+i]) | (^c & p[in.c+i])
			}
		case OpUlt, OpUle:
			// MSB-down comparison: lt latches at the first differing bit
			// where a has 0 and b has 1; eq tracks all-equal-so-far.
			var lt uint64
			eq := ^uint64(0)
			for i := in.aw - 1; i >= 0; i-- {
				av, bv := p[in.a+i], p[in.b+i]
				lt |= eq & ^av & bv
				eq &= ^(av ^ bv)
			}
			if in.op == OpUle {
				lt |= eq
			}
			p[in.dst] = lt
		case OpBVAdd:
			var c uint64
			for i := int32(0); i < in.w; i++ {
				av, bv := p[in.a+i], p[in.b+i]
				s := av ^ bv
				p[in.dst+i] = s ^ c
				c = (av & bv) | (c & s)
			}
		case OpBVSub:
			// a - b = a + ^b + 1: carry-in all-ones.
			c := ^uint64(0)
			for i := int32(0); i < in.w; i++ {
				av, nb := p[in.a+i], ^p[in.b+i]
				s := av ^ nb
				p[in.dst+i] = s ^ c
				c = (av & nb) | (c & s)
			}
		case OpBVMul:
			// Shift-add: for each set bit k of b, ripple-add a<<k into the
			// accumulator. O(w^2) word ops for all 64 lanes together.
			for i := int32(0); i < in.w; i++ {
				p[in.dst+i] = 0
			}
			for k := int32(0); k < in.w; k++ {
				bk := p[in.b+k]
				if bk == 0 {
					continue
				}
				var c uint64
				for i := k; i < in.w; i++ {
					x := p[in.dst+i]
					y := p[in.a+i-k] & bk
					s := x ^ y
					p[in.dst+i] = s ^ c
					c = (x & y) | (c & s)
				}
			}
		case OpBVAnd:
			for i := int32(0); i < in.w; i++ {
				p[in.dst+i] = p[in.a+i] & p[in.b+i]
			}
		case OpBVOr:
			for i := int32(0); i < in.w; i++ {
				p[in.dst+i] = p[in.a+i] | p[in.b+i]
			}
		case OpBVXor:
			for i := int32(0); i < in.w; i++ {
				p[in.dst+i] = p[in.a+i] ^ p[in.b+i]
			}
		case OpBVNot:
			for i := int32(0); i < in.w; i++ {
				p[in.dst+i] = ^p[in.a+i]
			}
		case OpBVNeg:
			// ^a + 1: carry-in all-ones against a zero addend.
			c := ^uint64(0)
			for i := int32(0); i < in.w; i++ {
				na := ^p[in.a+i]
				p[in.dst+i] = na ^ c
				c &= na
			}
		case OpBVShl:
			for i := int32(0); i < in.w; i++ {
				p[in.dst+i] = p[in.a+i]
			}
			for s := int32(0); s < in.aw; s++ {
				c := p[in.b+s]
				if c == 0 {
					continue
				}
				// Amount bits representing >= width force zero in the lanes
				// that set them (Eval: sh >= W yields 0); 1<<6 = 64 already
				// covers the widest value, so the guard also avoids shift
				// overflow.
				if s >= 6 || int32(1)<<uint(s) >= in.w {
					for i := int32(0); i < in.w; i++ {
						p[in.dst+i] &^= c
					}
					continue
				}
				sh := int32(1) << uint(s)
				for i := in.w - 1; i >= 0; i-- {
					var lo uint64
					if i >= sh {
						lo = p[in.dst+i-sh]
					}
					p[in.dst+i] = (c & lo) | (^c & p[in.dst+i])
				}
			}
		case OpBVLshr:
			for i := int32(0); i < in.w; i++ {
				p[in.dst+i] = p[in.a+i]
			}
			for s := int32(0); s < in.aw; s++ {
				c := p[in.b+s]
				if c == 0 {
					continue
				}
				if s >= 6 || int32(1)<<uint(s) >= in.w {
					for i := int32(0); i < in.w; i++ {
						p[in.dst+i] &^= c
					}
					continue
				}
				sh := int32(1) << uint(s)
				for i := int32(0); i < in.w; i++ {
					var hi uint64
					if i+sh < in.w {
						hi = p[in.dst+i+sh]
					}
					p[in.dst+i] = (c & hi) | (^c & p[in.dst+i])
				}
			}
		case OpBVConcat:
			// aw is the low part's plane count: result = lo planes then hi.
			for i := int32(0); i < in.aw; i++ {
				p[in.dst+i] = p[in.b+i]
			}
			for i := in.aw; i < in.w; i++ {
				p[in.dst+i] = p[in.a+i-in.aw]
			}
		case OpBVZext:
			for i := int32(0); i < in.aw; i++ {
				p[in.dst+i] = p[in.a+i]
			}
			for i := in.aw; i < in.w; i++ {
				p[in.dst+i] = 0
			}
		default:
			panic(fmt.Sprintf("smt.TapeExec: unknown op %d", in.op))
		}
	}
}

// RootBits returns root i's plane-0 word after Run. For a boolean root
// bit l is lane l's truth value, so a single word carries 64 verdicts.
func (e *TapeExec) RootBits(i int) uint64 { return e.planes[e.tp.roots[i].off] }

// RootLane un-transposes root i's value in one lane after Run.
func (e *TapeExec) RootLane(i, lane int) uint64 {
	r := e.tp.roots[i]
	var v uint64
	for b := int32(0); b < r.w; b++ {
		v |= (e.planes[r.off+b] >> uint(lane) & 1) << uint(b)
	}
	return v
}

// EvalOnce evaluates root 0 under a single assignment through the tape
// (lane 0 only; the counterexample-replay path in reduction). Equivalent
// to Eval(root, a) by the differential-fuzz contract.
func (tp *Tape) EvalOnce(a Assignment) uint64 {
	e := tp.Exec()
	defer tp.Release(e)
	// SetLane covers every variable, so lane 0 is fully determined by a;
	// stale values in lanes 1..63 are computed but never read.
	e.SetLane(0, a)
	e.Run()
	return e.RootLane(0, 0)
}

// Restrict projects an assignment onto the tape's variables, masked to
// their widths — the canonical witness shape for verdicts.
func (tp *Tape) Restrict(a Assignment) Assignment {
	out := make(Assignment, len(tp.vars))
	for _, v := range tp.vars {
		val := a[v.Name]
		if v.W == 0 {
			val &= 1
		} else {
			val = mask(val, v.W)
		}
		out[v.Name] = val
	}
	return out
}

// splitmix64 is the input-stream PRNG: one multiply-xorshift chain per
// derivation step. Deterministic and stateless — concolic batches are a
// pure function of (seed, fingerprint, variable, round, lane), never of
// wall clock or a shared generator.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// nameSeed hashes a variable name into the input-derivation chain.
func nameSeed(name string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}

// FillRound installs one deterministic pseudo-random batch of 64 lanes:
// inputs derive from (seed, tape fingerprint, variable name, round,
// lane). Round 0 reserves lane 0 for the all-zeros packet and lane 1 for
// all-ones — the two cheapest universal falsifiers — with the remaining
// lanes random.
func (e *TapeExec) FillRound(seed uint64, round int) {
	base := splitmix64(seed ^ e.tp.fp ^ uint64(round)*0xd1342543de82ef95)
	for vi := range e.tp.vars {
		v := &e.tp.vars[vi]
		stream := splitmix64(base ^ nameSeed(v.Name))
		for l := 0; l < 64; l++ {
			var val uint64
			switch {
			case round == 0 && l == 0:
				val = 0
			case round == 0 && l == 1:
				val = ^uint64(0)
			default:
				val = splitmix64(stream + uint64(l))
			}
			if v.W == 0 {
				val &= 1
			} else {
				val = mask(val, v.W)
			}
			e.lanes[vi][l] = val
		}
	}
}

// Falsify searches up to rounds batches of 64 deterministic pseudo-random
// packets for an assignment under which root 0 (which must be boolean)
// evaluates to false. It returns the counterexample from the first
// falsifying (round, lane) in order — so the witness is a pure function
// of (seed, formula structure, rounds), identical across runs and worker
// counts — together with the number of packets executed.
func (tp *Tape) Falsify(seed uint64, rounds int) (Assignment, uint64, bool) {
	if len(tp.roots) == 0 || tp.roots[0].w != 1 {
		panic("smt.Tape.Falsify: root 0 is not boolean")
	}
	e := tp.Exec()
	defer tp.Release(e)
	var packets uint64
	for round := 0; round < rounds; round++ {
		e.FillRound(seed, round)
		e.Run()
		packets += 64
		truth := e.RootBits(0)
		if truth == ^uint64(0) {
			continue
		}
		// Lowest false lane first: determinism of the reported witness.
		for l := 0; l < 64; l++ {
			if truth>>uint(l)&1 == 0 {
				return e.LaneAssignment(l), packets, true
			}
		}
	}
	return nil, packets, false
}
