package smt

import (
	"sync"
	"sync/atomic"
	"unsafe"
)

// Interner hash-conses terms: every smart constructor routes its result
// through an interning table, so structurally equal terms are represented
// by the same *Term. This gives the whole solver stack O(1) structural
// equality and hashing — the Blaster's pointer-keyed memo tables, the
// constructors' pointer-equality folds (Eq(x,x) → true, Ite collapse) and
// the validator's formula caches all become structural automatically.
//
// The interner is sharded and safe for concurrent use: parallel bug hunts
// build terms from many goroutines and share every common subterm (packet
// bit variables, standard-metadata leaves, architecture constraints).
//
// Every Context owns one interner; term IDs come from a single
// process-wide counter, so IDs are unique across contexts and ID-keyed
// caches can never confuse terms from different epochs.
type Interner struct {
	shards [internShards]internShard
}

// termIDSeq issues process-unique term IDs across all interners: a term
// ID identifies one term in one context for the process lifetime, which
// is what makes ID-keyed memo tables (simplify, verdict caches) safe
// even while contexts rotate.
var termIDSeq atomic.Uint64

const internShards = 64

type internShard struct {
	mu    sync.Mutex
	table map[uint64][]*Term
	hits  uint64
	// count and bytes track the shard's entries and estimated heap at
	// insertion time, so snapshots never walk the buckets: Info() runs
	// while solver workers construct terms, and an O(terms) walk under
	// the shard locks would stall the hot path.
	count uint64
	bytes uint64
}

// NewInterner creates an empty interning table. Most callers go through
// a Context (which owns one); free-standing interners exist only for
// measurement.
func NewInterner() *Interner {
	in := &Interner{}
	for i := range in.shards {
		in.shards[i].table = map[uint64][]*Term{}
	}
	return in
}

// Stats reports the default context's interner size (distinct live
// terms) and cumulative hit count (constructions answered by an existing
// term).
func Stats() (size, hits uint64) {
	return defaultCtx.in.Size(), defaultCtx.in.Hits()
}

// InternerInfo is a point-in-time snapshot of an interning table. Interner
// growth is unbounded for the process lifetime (terms are never evicted),
// so long-running services watch these numbers to know when eviction will
// be needed.
type InternerInfo struct {
	// Entries is the number of distinct interned terms.
	Entries uint64
	// Hits is the cumulative count of constructions answered by an
	// existing term.
	Hits uint64
	// BytesEstimate approximates the heap held by the table: term
	// structs, their name strings and child slices, plus bucket slots.
	BytesEstimate uint64
	// Shards is the fixed shard count; OccupiedShards of them hold at
	// least one term (a rough skew indicator together with
	// MaxShardEntries, the largest single shard).
	Shards          int
	OccupiedShards  int
	MaxShardEntries uint64
}

// InternerStats snapshots the default context's interner (the one behind
// the package-level constructors).
func InternerStats() InternerInfo { return defaultCtx.in.Info() }

// Info snapshots one interner in O(shards): the per-shard counters are
// maintained at intern time, so no bucket is ever walked. It takes each
// shard lock in turn — totals are per-shard consistent rather than a
// global atomic cut, which is fine for the monitoring it exists for.
func (in *Interner) Info() InternerInfo {
	info := InternerInfo{Shards: internShards}
	for i := range in.shards {
		s := &in.shards[i]
		s.mu.Lock()
		n, bytes, hits := s.count, s.bytes, s.hits
		s.mu.Unlock()
		info.Entries += n
		info.BytesEstimate += bytes
		info.Hits += hits
		if n > 0 {
			info.OccupiedShards++
		}
		if n > info.MaxShardEntries {
			info.MaxShardEntries = n
		}
	}
	return info
}

// termBytes estimates the heap one interned term holds: the struct, the
// out-of-line name bytes, the child pointer slice, and its bucket slot
// plus amortized map overhead.
func termBytes(t *Term) uint64 {
	const termSize = uint64(unsafe.Sizeof(Term{}))
	return termSize + uint64(len(t.Name)) + uint64(len(t.Args))*8 + 8 + 16
}

// Size returns the number of distinct interned terms.
func (in *Interner) Size() uint64 {
	var n uint64
	for i := range in.shards {
		s := &in.shards[i]
		s.mu.Lock()
		n += s.count
		s.mu.Unlock()
	}
	return n
}

// Hits returns the cumulative count of constructions that found an
// existing term.
func (in *Interner) Hits() uint64 {
	var n uint64
	for i := range in.shards {
		s := &in.shards[i]
		s.mu.Lock()
		n += s.hits
		s.mu.Unlock()
	}
	return n
}

// hashTerm computes the structural hash of a candidate term from its
// shallow fields and its (already interned) children's IDs.
func hashTerm(t *Term) uint64 {
	h := uint64(14695981039346656037) // FNV-64 offset basis
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211 // FNV-64 prime
		h ^= h >> 29
	}
	mix(uint64(t.Op))
	mix(uint64(t.W))
	mix(t.Val)
	mix(uint64(t.Hi)<<32 | uint64(uint32(t.Lo)))
	for i := 0; i < len(t.Name); i++ {
		mix(uint64(t.Name[i]))
	}
	mix(uint64(len(t.Name)))
	for _, a := range t.Args {
		mix(a.id)
	}
	mix(uint64(len(t.Args)))
	return h
}

// sameShape reports shallow structural equality assuming both terms'
// children are interned (pointer comparison suffices for Args).
func sameShape(a, b *Term) bool {
	if a.Op != b.Op || a.W != b.W || a.Val != b.Val ||
		a.Name != b.Name || a.Hi != b.Hi || a.Lo != b.Lo ||
		len(a.Args) != len(b.Args) {
		return false
	}
	for i := range a.Args {
		if a.Args[i] != b.Args[i] {
			return false
		}
	}
	return true
}

// Intern returns the canonical term for t, registering t if it is new.
// t's Args must already be interned; t must not be mutated afterwards.
func (in *Interner) Intern(t *Term) *Term {
	h := hashTerm(t)
	s := &in.shards[h%internShards]
	s.mu.Lock()
	for _, c := range s.table[h] {
		if sameShape(c, t) {
			s.hits++
			s.mu.Unlock()
			return c
		}
	}
	s.mu.Unlock()
	// Allocate the ID outside the shard lock, then re-check under it: a
	// racing goroutine may have interned the same shape meanwhile.
	t.id = termIDSeq.Add(1)
	t.hash = h
	s.mu.Lock()
	for _, c := range s.table[h] {
		if sameShape(c, t) {
			s.hits++
			s.mu.Unlock()
			return c
		}
	}
	s.table[h] = append(s.table[h], t)
	s.count++
	s.bytes += termBytes(t)
	s.mu.Unlock()
	return t
}
