package smt_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gauntlet/internal/smt"
)

func TestConstructorsFold(t *testing.T) {
	x := smt.Var("x", 8)
	cases := []struct {
		got  *smt.Term
		want string
	}{
		{smt.Add(smt.Const(3, 8), smt.Const(250, 8)), "#b253[8]"},
		{smt.Add(x, smt.Const(0, 8)), "x"},
		{smt.Mul(x, smt.Const(1, 8)), "x"},
		{smt.Mul(x, smt.Const(0, 8)), "#b0[8]"},
		{smt.BVAnd(x, smt.Const(0xFF, 8)), "x"},
		{smt.BVAnd(x, smt.Const(0, 8)), "#b0[8]"},
		{smt.BVXor(x, x), "#b0[8]"},
		{smt.BVNot(smt.BVNot(x)), "x"},
		{smt.Shl(x, smt.Const(0, 8)), "x"},
		{smt.Shl(x, smt.Const(9, 8)), "#b0[8]"},
		{smt.Extract(x, 7, 0), "x"},
		{smt.Extract(smt.Const(0xAB, 8), 7, 4), "#b10[4]"},
		{smt.Concat(smt.Const(0xA, 4), smt.Const(0xB, 4)), "#b171[8]"},
		{smt.Not(smt.Not(smt.BoolVar("p"))), "p"},
		{smt.And(smt.True, smt.BoolVar("p")), "p"},
		{smt.And(smt.False, smt.BoolVar("p")), "false"},
		{smt.Or(smt.True, smt.BoolVar("p")), "true"},
		{smt.Ite(smt.True, x, smt.Const(0, 8)), "x"},
		{smt.Eq(x, x), "true"},
		{smt.ZExt(smt.Const(5, 4), 8), "#b5[8]"},
	}
	for _, tc := range cases {
		if got := tc.got.String(); got != tc.want {
			t.Errorf("folded to %s, want %s", got, tc.want)
		}
	}
}

func TestNestedExtractFolds(t *testing.T) {
	x := smt.Var("x", 16)
	e := smt.Extract(smt.Extract(x, 11, 4), 5, 2) // bits 9..6 of x
	if e.Op != smt.OpBVExtract || e.Hi != 9 || e.Lo != 6 || e.Args[0] != x {
		t.Fatalf("nested extract did not fold: %s", e)
	}
}

func TestSubst(t *testing.T) {
	x := smt.Var("x", 8)
	y := smt.Var("y", 8)
	e := smt.Add(x, smt.Mul(y, smt.Const(2, 8)))
	s := smt.Subst(e, map[string]*smt.Term{"x": smt.Const(3, 8), "y": smt.Const(4, 8)})
	if !s.IsConst() || s.Val != 11 {
		t.Fatalf("subst+fold = %s, want #b11[8]", s)
	}
	// Partial substitution keeps the other variable.
	s2 := smt.Subst(e, map[string]*smt.Term{"y": smt.Const(0, 8)})
	if s2.String() != "x" {
		t.Fatalf("subst y=0 = %s, want x", s2)
	}
}

func TestSubstSortMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("sort-mismatched substitution did not panic")
		}
	}()
	smt.Subst(smt.Var("x", 8), map[string]*smt.Term{"x": smt.Const(1, 4)})
}

// TestSubstPreservesSemantics: substituting v := r and evaluating equals
// evaluating with the assignment extended by r's value.
func TestSubstPreservesSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	x := smt.Var("x", 8)
	y := smt.Var("y", 8)
	z := smt.Var("z", 8)
	e := smt.Ite(smt.Ult(x, y), smt.Add(x, z), smt.BVXor(y, z))
	f := func(xv, yv, zv uint64) bool {
		repl := map[string]*smt.Term{"x": smt.Add(y, z)} // x := y + z
		substituted := smt.Subst(e, repl)
		a := smt.Assignment{"y": yv & 0xFF, "z": zv & 0xFF}
		aWithX := smt.Assignment{"x": (yv + zv) & 0xFF, "y": yv & 0xFF, "z": zv & 0xFF}
		return smt.Eval(substituted, a) == smt.Eval(e, aWithX)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: r}); err != nil {
		t.Fatal(err)
	}
}

func TestVarsCollection(t *testing.T) {
	e := smt.And(
		smt.Eq(smt.Var("a", 8), smt.Var("b", 8)),
		smt.BoolVar("p"),
	)
	vars := map[string]int{}
	e.Vars(vars)
	if len(vars) != 3 || vars["a"] != 8 || vars["p"] != 0 {
		t.Fatalf("Vars = %v", vars)
	}
}

func TestSizeAndString(t *testing.T) {
	e := smt.Add(smt.Var("a", 8), smt.Const(1, 8))
	if e.Size() != 3 {
		t.Errorf("Size = %d, want 3", e.Size())
	}
	if e.String() != "(bvadd a #b1[8])" {
		t.Errorf("String = %q", e.String())
	}
}

func TestIteRedundantGuardFold(t *testing.T) {
	c := smt.Ult(smt.Var("a", 8), smt.Var("b", 8))
	x := smt.Var("x", 8)
	y := smt.Var("y", 8)
	inner := smt.Ite(c, x, y)
	outer := smt.Ite(c, inner, y)
	// Outer then-branch guarded by the same condition object collapses.
	if outer.String() != smt.Ite(c, x, y).String() {
		t.Fatalf("redundant guard not folded: %s", outer)
	}
}

func TestSatAddSemantics(t *testing.T) {
	f := func(a, b uint8) bool {
		x := smt.Const(uint64(a), 8)
		y := smt.Const(uint64(b), 8)
		got := smt.Eval(smt.SatAdd(x, y), nil)
		want := uint64(a) + uint64(b)
		if want > 255 {
			want = 255
		}
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestInternerStats: the observability snapshot must be consistent with
// the package-level counters and account for real memory.
func TestInternerStats(t *testing.T) {
	// Force some distinct terms into the default interner.
	x := smt.Var("stats_probe_x", 16)
	for i := uint64(0); i < 32; i++ {
		_ = smt.Add(x, smt.Const(i, 16))
	}
	info := smt.InternerStats()
	size, hits := smt.Stats()
	if info.Entries != size {
		t.Errorf("InternerStats entries %d != Stats size %d", info.Entries, size)
	}
	if info.Hits != hits {
		t.Errorf("InternerStats hits %d != Stats hits %d", info.Hits, hits)
	}
	if info.Entries < 32 {
		t.Errorf("expected at least the 32 probe terms, got %d", info.Entries)
	}
	// Every term costs at least its struct size.
	if info.BytesEstimate < info.Entries*32 {
		t.Errorf("bytes estimate %d implausibly small for %d entries", info.BytesEstimate, info.Entries)
	}
	if info.Shards <= 0 || info.OccupiedShards <= 0 || info.OccupiedShards > info.Shards {
		t.Errorf("shard accounting broken: %+v", info)
	}
	if info.MaxShardEntries == 0 || info.MaxShardEntries > info.Entries {
		t.Errorf("max shard entries broken: %+v", info)
	}
}
