package smt

import "fmt"

// Assignment maps variable names to concrete values (booleans as 0/1).
type Assignment map[string]uint64

// Eval evaluates a term under an assignment. Unassigned variables read as
// zero. Booleans evaluate to 0 or 1. Shared subterms (terms are DAGs
// after branch merging) are evaluated once via a memo table.
func Eval(t *Term, a Assignment) uint64 {
	memo := make(map[*Term]uint64)
	return eval(t, a, memo)
}

func eval(t *Term, a Assignment, memo map[*Term]uint64) uint64 {
	if v, ok := memo[t]; ok {
		return v
	}
	var out uint64
	switch t.Op {
	case OpVar:
		out = mask(a[t.Name], t.W)
	case OpConst:
		out = t.Val
	case OpNot:
		out = 1 - eval(t.Args[0], a, memo)
	case OpAnd:
		out = 1
		for _, x := range t.Args {
			if eval(x, a, memo) == 0 {
				out = 0
				break
			}
		}
	case OpOr:
		out = 0
		for _, x := range t.Args {
			if eval(x, a, memo) == 1 {
				out = 1
				break
			}
		}
	case OpEq:
		if eval(t.Args[0], a, memo) == eval(t.Args[1], a, memo) {
			out = 1
		}
	case OpIte:
		if eval(t.Args[0], a, memo) == 1 {
			out = eval(t.Args[1], a, memo)
		} else {
			out = eval(t.Args[2], a, memo)
		}
	case OpUlt:
		if eval(t.Args[0], a, memo) < eval(t.Args[1], a, memo) {
			out = 1
		}
	case OpUle:
		if eval(t.Args[0], a, memo) <= eval(t.Args[1], a, memo) {
			out = 1
		}
	case OpBVAdd:
		out = mask(eval(t.Args[0], a, memo)+eval(t.Args[1], a, memo), t.W)
	case OpBVSub:
		out = mask(eval(t.Args[0], a, memo)-eval(t.Args[1], a, memo), t.W)
	case OpBVMul:
		out = mask(eval(t.Args[0], a, memo)*eval(t.Args[1], a, memo), t.W)
	case OpBVAnd:
		out = eval(t.Args[0], a, memo) & eval(t.Args[1], a, memo)
	case OpBVOr:
		out = eval(t.Args[0], a, memo) | eval(t.Args[1], a, memo)
	case OpBVXor:
		out = eval(t.Args[0], a, memo) ^ eval(t.Args[1], a, memo)
	case OpBVNot:
		out = mask(^eval(t.Args[0], a, memo), t.W)
	case OpBVNeg:
		out = mask(^eval(t.Args[0], a, memo)+1, t.W)
	case OpBVShl:
		sh := eval(t.Args[1], a, memo)
		if sh < uint64(t.W) {
			out = mask(eval(t.Args[0], a, memo)<<sh, t.W)
		}
	case OpBVLshr:
		sh := eval(t.Args[1], a, memo)
		if sh < uint64(t.W) {
			out = eval(t.Args[0], a, memo) >> sh
		}
	case OpBVConcat:
		lo := t.Args[1]
		out = mask(eval(t.Args[0], a, memo)<<uint(lo.W)|eval(lo, a, memo), t.W)
	case OpBVExtract:
		out = mask(eval(t.Args[0], a, memo)>>uint(t.Lo), t.W)
	case OpBVZext:
		out = eval(t.Args[0], a, memo)
	default:
		panic(fmt.Sprintf("smt.Eval: unknown op %d", t.Op))
	}
	memo[t] = out
	return out
}
