package smt

import "fmt"

// Assignment maps variable names to concrete values (booleans as 0/1).
type Assignment map[string]uint64

// Eval evaluates a term under an assignment. Unassigned variables read as
// zero. Booleans evaluate to 0 or 1. Shared subterms (terms are DAGs
// after branch merging) are evaluated once via a memo table.
//
// Width discipline, pinned by TestWidthEdgeSemantics and shared with the
// compiled Tape: every intermediate value is masked to its term's width
// (for W == 64 the machine word is the mask), boolean variables read only
// the least-significant bit of their assigned value, and shifts whose
// amount is >= the operand width yield zero. Callers on a hot path should
// prefer an Evaluator (reusable memo) or a compiled Tape (64 assignments
// per run) — Eval allocates a fresh memo every call.
func Eval(t *Term, a Assignment) uint64 {
	memo := make(map[*Term]uint64)
	return eval(t, a, memo)
}

// Evaluator is a reusable Eval: it keeps one memo table across calls and
// clears it instead of reallocating, so steady-state evaluation does not
// allocate at all (the map's buckets persist). Not safe for concurrent
// use — workers own their evaluator, per the isolate-first-then-share
// discipline.
type Evaluator struct {
	memo map[*Term]uint64
}

// NewEvaluator returns an evaluator with a warm memo table.
func NewEvaluator() *Evaluator {
	return &Evaluator{memo: make(map[*Term]uint64, 256)}
}

// Eval is Eval with the evaluator's reusable memo.
func (ev *Evaluator) Eval(t *Term, a Assignment) uint64 {
	if ev.memo == nil {
		ev.memo = make(map[*Term]uint64, 256)
	}
	clear(ev.memo)
	return eval(t, a, ev.memo)
}

func eval(t *Term, a Assignment, memo map[*Term]uint64) uint64 {
	if v, ok := memo[t]; ok {
		return v
	}
	var out uint64
	switch t.Op {
	case OpVar:
		if t.W == 0 {
			// Boolean variables read the least-significant bit: mask(v, 0)
			// would pass the raw value through, and a non-0/1 boolean breaks
			// every downstream operator that assumes the 0/1 contract
			// (Not's complement, Or's ==1 test). Solver models always assign
			// 0/1; hand-built assignments get normalized here.
			out = a[t.Name] & 1
		} else {
			out = mask(a[t.Name], t.W)
		}
	case OpConst:
		out = t.Val
	case OpNot:
		// Operands are boolean by construction and evaluate to 0/1 (see
		// OpVar), so complement is a xor — unlike 1-x it cannot underflow
		// if that invariant is ever violated.
		out = eval(t.Args[0], a, memo) ^ 1
	case OpAnd:
		out = 1
		for _, x := range t.Args {
			if eval(x, a, memo) == 0 {
				out = 0
				break
			}
		}
	case OpOr:
		out = 0
		for _, x := range t.Args {
			if eval(x, a, memo) == 1 {
				out = 1
				break
			}
		}
	case OpEq:
		if eval(t.Args[0], a, memo) == eval(t.Args[1], a, memo) {
			out = 1
		}
	case OpIte:
		if eval(t.Args[0], a, memo) == 1 {
			out = eval(t.Args[1], a, memo)
		} else {
			out = eval(t.Args[2], a, memo)
		}
	case OpUlt:
		if eval(t.Args[0], a, memo) < eval(t.Args[1], a, memo) {
			out = 1
		}
	case OpUle:
		if eval(t.Args[0], a, memo) <= eval(t.Args[1], a, memo) {
			out = 1
		}
	case OpBVAdd:
		out = mask(eval(t.Args[0], a, memo)+eval(t.Args[1], a, memo), t.W)
	case OpBVSub:
		out = mask(eval(t.Args[0], a, memo)-eval(t.Args[1], a, memo), t.W)
	case OpBVMul:
		out = mask(eval(t.Args[0], a, memo)*eval(t.Args[1], a, memo), t.W)
	case OpBVAnd:
		out = eval(t.Args[0], a, memo) & eval(t.Args[1], a, memo)
	case OpBVOr:
		out = eval(t.Args[0], a, memo) | eval(t.Args[1], a, memo)
	case OpBVXor:
		out = eval(t.Args[0], a, memo) ^ eval(t.Args[1], a, memo)
	case OpBVNot:
		out = mask(^eval(t.Args[0], a, memo), t.W)
	case OpBVNeg:
		out = mask(^eval(t.Args[0], a, memo)+1, t.W)
	case OpBVShl:
		sh := eval(t.Args[1], a, memo)
		if sh < uint64(t.W) {
			out = mask(eval(t.Args[0], a, memo)<<sh, t.W)
		}
	case OpBVLshr:
		sh := eval(t.Args[1], a, memo)
		if sh < uint64(t.W) {
			out = eval(t.Args[0], a, memo) >> sh
		}
	case OpBVConcat:
		lo := t.Args[1]
		out = mask(eval(t.Args[0], a, memo)<<uint(lo.W)|eval(lo, a, memo), t.W)
	case OpBVExtract:
		out = mask(eval(t.Args[0], a, memo)>>uint(t.Lo), t.W)
	case OpBVZext:
		out = eval(t.Args[0], a, memo)
	default:
		panic(fmt.Sprintf("smt.Eval: unknown op %d", t.Op))
	}
	memo[t] = out
	return out
}
