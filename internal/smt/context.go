package smt

// Context is an explicit, scoped owner of the mutable state behind term
// construction: the hash-consing interner and the simplification /
// canonical-rank memo. Everything the solver stack accumulates while
// building and rewriting terms lives in exactly one Context, so a
// long-running service can bound its memory by *rotating* contexts —
// allocate a fresh one at an epoch boundary, route new construction
// through it, and let the retired context (terms, simplify memo and all)
// become garbage as soon as the last in-flight query drops its reference.
// That is the epoch-based reclamation ROADMAP's "interner growth is
// unbounded" item asks for: nothing is evicted term-by-term; whole
// generations retire at once, at deterministic boundaries.
//
// Construction is context-routed from the leaves up: the leaf
// constructors (Var, Const, Bool, True, False) are Context methods, and
// every composite constructor infers its context from its arguments, so
// a formula built from context-owned leaves lives entirely in that
// context without threading a handle through every call site. The
// package-level constructors and True/False remain as the *default
// context* — tests, examples and campaign-scale runs that never rotate
// keep working unchanged.
//
// Mixing rules: constant and variable leaves from another context are
// transparently re-interned ("adopted") into the target context when
// they appear as arguments — they are self-contained, so adoption is
// O(1) and keeps pointer-equality invariants intact. Composite terms
// must not cross contexts (that would alias structure across epochs and
// silently defeat reclamation); composing them panics.
//
// A Context is safe for concurrent use by any number of goroutines.
type Context struct {
	in   *Interner
	simp [simpShards]simpShard

	trueT, falseT *Term
}

// NewContext creates an empty context with its own interner and
// simplification memo.
func NewContext() *Context {
	c := &Context{in: NewInterner()}
	c.trueT = c.Bool(true)
	c.falseT = c.Bool(false)
	return c
}

// defaultCtx backs the package-level constructors and caches. It is
// initialized before True/False (Go resolves package var dependencies).
var defaultCtx = NewContext()

// DefaultContext returns the process-wide default context behind the
// package-level constructors. Long-lived services should build formulas
// in their own rotating contexts and treat the default as
// test/example-scale only: its interner is never reclaimed.
func DefaultContext() *Context { return defaultCtx }

// Context returns the context that owns the term.
func (t *Term) Context() *Context { return t.ctx }

// True returns the context's boolean constant true.
func (c *Context) True() *Term { return c.trueT }

// False returns the context's boolean constant false.
func (c *Context) False() *Term { return c.falseT }

// Var creates a bitvector variable of the given width in this context
// (boolean when width is 0).
func (c *Context) Var(name string, width int) *Term {
	return c.intern(&Term{Op: OpVar, W: width, Name: name})
}

// BoolVar creates a boolean variable in this context.
func (c *Context) BoolVar(name string) *Term { return c.Var(name, 0) }

// Const creates a bitvector constant in this context, masked to width.
func (c *Context) Const(val uint64, width int) *Term {
	return c.intern(&Term{Op: OpConst, W: width, Val: mask(val, width)})
}

// Bool creates a boolean constant in this context.
func (c *Context) Bool(v bool) *Term {
	val := uint64(0)
	if v {
		val = 1
	}
	return c.intern(&Term{Op: OpConst, W: 0, Val: val})
}

// adopt re-interns a leaf term from another context into c. Only leaves
// are self-contained enough to migrate; composite structure crossing
// contexts is a bug (it would alias one epoch's terms from another and
// defeat reclamation), so it panics.
func (c *Context) adopt(a *Term) *Term {
	switch a.Op {
	case OpConst:
		return c.Const(a.Val, a.W)
	case OpVar:
		return c.Var(a.Name, a.W)
	}
	panic("smt: composite term used across Contexts (build each formula in one context)")
}

// intern routes a freshly built node into the context's interner,
// adopting any foreign leaf arguments first (the hash mixes argument
// IDs, so adoption must precede hashing).
func (c *Context) intern(t *Term) *Term {
	for i, a := range t.Args {
		if a.ctx != c {
			t.Args[i] = c.adopt(a)
		}
	}
	t.ctx = c
	return c.in.Intern(t)
}

// ctxOf picks the owning context for a node built from args. The first
// composite argument pins ownership (composites cannot be adopted; a
// second composite from another context still panics at intern time) —
// unless that composite lives in the default context while another
// argument is epoch-owned: then the epoch context wins, so intern's
// composite guard panics loudly instead of the node silently capturing
// epoch terms into the immortal default interner. When every argument
// is an adoptable leaf (constant or variable), the first *non-default*
// leaf context wins — mixing default-context leaves into an epoch
// formula routes the node into the epoch context regardless of operand
// order, never the other way around. Empty n-ary constructors fall back
// to the default context.
func ctxOf(ts ...*Term) *Context {
	var pin, leaf, nonDefault *Context
	for _, t := range ts {
		if t.ctx != defaultCtx && nonDefault == nil {
			nonDefault = t.ctx
		}
		if t.Op != OpConst && t.Op != OpVar {
			if pin == nil {
				pin = t.ctx
			}
			continue
		}
		if leaf == nil || (leaf == defaultCtx && t.ctx != defaultCtx) {
			leaf = t.ctx
		}
	}
	switch {
	case pin != nil && pin == defaultCtx && nonDefault != nil:
		return nonDefault
	case pin != nil:
		return pin
	case leaf != nil:
		return leaf
	}
	return defaultCtx
}

// ContextStats is a point-in-time snapshot of one context's memory and
// cache counters — the per-epoch observables a rotating service watches.
type ContextStats struct {
	// Interner snapshots the context's term table (entries, estimated
	// bytes, shard occupancy).
	Interner InternerInfo
	// Simp snapshots the context's simplification memo.
	Simp SimplifyInfo
}

// InternerStats snapshots this context's interner.
func (c *Context) InternerStats() InternerInfo { return c.in.Info() }

// SimplifyStats snapshots this context's simplification memo.
func (c *Context) SimplifyStats() SimplifyInfo {
	var info SimplifyInfo
	for i := range c.simp {
		s := &c.simp[i]
		s.mu.Lock()
		info.Entries += uint64(len(s.simplified))
		info.Hits += s.hits
		info.Misses += s.misses
		s.mu.Unlock()
	}
	return info
}

// Stats snapshots the context's interner and simplification memo at
// once.
func (c *Context) Stats() ContextStats {
	return ContextStats{Interner: c.InternerStats(), Simp: c.SimplifyStats()}
}
