package smt_test

import (
	"math/rand"
	"sync"
	"testing"

	"gauntlet/internal/smt"
)

// simpRandBV builds a random 8-bit term exercising every operator the
// simplifier has rules for (wider than the interner test's pool: shifts,
// zext/concat/extract plumbing, ite chains).
func simpRandBV(r *rand.Rand, depth int) *smt.Term {
	if depth == 0 {
		switch r.Intn(5) {
		case 0:
			return smt.Var("a", 8)
		case 1:
			return smt.Var("b", 8)
		case 2:
			return smt.Var("c", 8)
		case 3:
			return smt.Const(r.Uint64()&0xFF, 8)
		default:
			return smt.ZExt(smt.Var("n", 4), 8)
		}
	}
	x := simpRandBV(r, depth-1)
	y := simpRandBV(r, depth-1)
	switch r.Intn(14) {
	case 0:
		return smt.Add(x, y)
	case 1:
		return smt.Sub(x, y)
	case 2:
		return smt.Mul(x, y)
	case 3:
		return smt.BVAnd(x, y)
	case 4:
		return smt.BVOr(x, y)
	case 5:
		return smt.BVXor(x, y)
	case 6:
		return smt.BVNot(x)
	case 7:
		return smt.BVNeg(x)
	case 8:
		return smt.Shl(x, y)
	case 9:
		return smt.Lshr(x, y)
	case 10:
		return smt.Shl(x, smt.Const(r.Uint64()%12, 8))
	case 11:
		return smt.Concat(smt.Extract(x, 5, 0), smt.Extract(y, 7, 6))
	case 12:
		return smt.Extract(smt.Concat(x, y), 11, 4)
	default:
		return smt.Ite(simpRandBool(r, 1), x, y)
	}
}

// simpRandBool builds a random boolean term.
func simpRandBool(r *rand.Rand, depth int) *smt.Term {
	if depth == 0 || r.Intn(4) == 0 {
		switch r.Intn(4) {
		case 0:
			return smt.Eq(simpRandBV(r, 1), simpRandBV(r, 1))
		case 1:
			return smt.Ult(simpRandBV(r, 1), simpRandBV(r, 1))
		case 2:
			return smt.Ule(simpRandBV(r, 1), simpRandBV(r, 1))
		default:
			return smt.BoolVar("p")
		}
	}
	switch r.Intn(5) {
	case 0:
		return smt.And(simpRandBool(r, depth-1), simpRandBool(r, depth-1))
	case 1:
		return smt.Or(simpRandBool(r, depth-1), simpRandBool(r, depth-1))
	case 2:
		return smt.Not(simpRandBool(r, depth-1))
	case 3:
		return smt.Ite(simpRandBool(r, depth-1), simpRandBool(r, depth-1), simpRandBool(r, depth-1))
	default:
		return smt.Eq(simpRandBool(r, depth-1), simpRandBool(r, depth-1))
	}
}

func simpRandAssignment(r *rand.Rand) smt.Assignment {
	return smt.Assignment{
		"a": r.Uint64() & 0xFF,
		"b": r.Uint64() & 0xFF,
		"c": r.Uint64() & 0xFF,
		"n": r.Uint64() & 0xF,
		"p": r.Uint64() & 1,
	}
}

// TestSimplifyDifferentialEval is the soundness fuzz: Simplify must be
// model-preserving, so the original and simplified term evaluate
// identically under every assignment (sampled randomly, plus the all-zero
// and all-ones corners).
func TestSimplifyDifferentialEval(t *testing.T) {
	r := rand.New(rand.NewSource(2026))
	corners := []smt.Assignment{
		{},
		{"a": 0xFF, "b": 0xFF, "c": 0xFF, "n": 0xF, "p": 1},
	}
	for i := 0; i < 500; i++ {
		var term *smt.Term
		if i%2 == 0 {
			term = simpRandBool(r, 4)
		} else {
			term = simpRandBV(r, 4)
		}
		s := smt.Simplify(term)
		if s.W != term.W {
			t.Fatalf("iteration %d: Simplify changed sort: %s (w=%d) → %s (w=%d)",
				i, term, term.W, s, s.W)
		}
		check := func(a smt.Assignment) {
			if got, want := smt.Eval(s, a), smt.Eval(term, a); got != want {
				t.Fatalf("iteration %d: Simplify changed semantics under %v:\n  raw  %s = %d\n  simp %s = %d",
					i, a, term, want, s, got)
			}
		}
		for _, a := range corners {
			check(a)
		}
		for j := 0; j < 32; j++ {
			check(simpRandAssignment(r))
		}
	}
}

// TestSimplifyIdempotent: a simplified term is a fixpoint — simplifying
// it again must return the identical object (the memo records results as
// their own fixpoints, so a violation would also poison the cache).
func TestSimplifyIdempotent(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 300; i++ {
		var term *smt.Term
		if i%2 == 0 {
			term = simpRandBool(r, 4)
		} else {
			term = simpRandBV(r, 4)
		}
		s := smt.Simplify(term)
		if again := smt.Simplify(s); again != s {
			t.Fatalf("iteration %d: simplification not idempotent:\n  raw   %s\n  once  %s\n  twice %s",
				i, term, s, again)
		}
	}
}

// TestSimplifyCanonicalizesCommuted: syntactic variants that differ only
// in operand order or nesting must normalize to the same (pointer-equal)
// canonical term — that is what lets the validator share verdicts across
// distinct raw miters.
func TestSimplifyCanonicalizesCommuted(t *testing.T) {
	x := smt.Var("x", 8)
	y := smt.Var("y", 8)
	p := smt.BoolVar("p")
	q := smt.BoolVar("q")
	pairs := [][2]*smt.Term{
		{smt.Add(x, y), smt.Add(y, x)},
		{smt.BVXor(x, y), smt.BVXor(y, x)},
		{smt.Eq(x, y), smt.Eq(y, x)},
		{smt.And(p, q), smt.And(q, p)},
		{smt.Or(p, smt.Or(q, p)), smt.Or(q, p)},
		{smt.And(p, smt.And(q, smt.And(p, q))), smt.And(q, p)},
	}
	for i, pair := range pairs {
		a, b := smt.Simplify(pair[0]), smt.Simplify(pair[1])
		if a != b {
			t.Errorf("pair %d: variants not canonicalized: %s vs %s → %s vs %s",
				i, pair[0], pair[1], a, b)
		}
	}
}

// TestSimplifyRules spot-checks the individual rewrite rules from the
// issue list.
func TestSimplifyRules(t *testing.T) {
	x := smt.Var("x", 8)
	y := smt.Var("y", 8)
	p := smt.BoolVar("p")
	q := smt.BoolVar("q")
	cases := []struct {
		name string
		in   *smt.Term
		want *smt.Term
	}{
		{"complement-and", smt.And(p, q, smt.Not(p)), smt.False},
		{"complement-or", smt.Or(q, p, smt.Not(q)), smt.True},
		{"comparison-complement", smt.And(smt.Ult(x, y), smt.Ule(y, x)), smt.False},
		{"demorgan-pushes-not", smt.Not(smt.And(p, q)), smt.Simplify(smt.Or(smt.Not(p), smt.Not(q)))},
		{"ite-shared-cond", smt.Ite(p, smt.Ite(p, x, y), y), smt.Simplify(smt.Ite(p, x, y))},
		{"ite-shared-branch", smt.Ite(p, x, smt.Ite(q, x, y)), smt.Simplify(smt.Ite(smt.Or(p, q), x, y))},
		{"xx-cancel", smt.Sub(x, x), smt.Const(0, 8)},
		{"addsub-cancel", smt.Sub(smt.Add(x, y), y), x},
		{"subadd-cancel", smt.Add(smt.Sub(x, y), y), x},
		{"and-idempotent", smt.BVAnd(x, x), x},
		{"and-complement", smt.BVAnd(x, smt.BVNot(x)), smt.Const(0, 8)},
		{"or-complement", smt.BVOr(x, smt.BVNot(x)), smt.Const(0xFF, 8)},
		{"shl-const-is-wiring", smt.Shl(x, smt.Const(3, 8)),
			smt.Concat(smt.Extract(x, 4, 0), smt.Const(0, 3))},
		{"lshr-const-is-wiring", smt.Lshr(x, smt.Const(3, 8)),
			smt.ZExt(smt.Extract(x, 7, 3), 8)},
		{"extract-of-concat", smt.Extract(smt.Concat(x, y), 7, 0), y},
		{"extract-of-zext-high", smt.Extract(smt.ZExt(x, 16), 15, 8), smt.Const(0, 8)},
		{"extract-of-zext-low", smt.Extract(smt.ZExt(x, 16), 7, 0), x},
		{"concat-refusion", smt.Concat(smt.Extract(x, 7, 4), smt.Extract(x, 3, 0)), x},
		{"eq-concat-decomposes", smt.Eq(smt.Concat(x, y), smt.Const(0, 16)),
			smt.Simplify(smt.And(smt.Eq(x, smt.Const(0, 8)), smt.Eq(y, smt.Const(0, 8))))},
		{"eq-add-cancel", smt.Eq(smt.Add(x, y), smt.Add(x, smt.Var("z", 8))),
			smt.Simplify(smt.Eq(y, smt.Var("z", 8)))},
		{"ult-zero", smt.Ult(x, smt.Const(0, 8)), smt.False},
		{"ult-one-is-eq-zero", smt.Ult(x, smt.Const(1, 8)), smt.Eq(x, smt.Const(0, 8))},
		{"ule-max", smt.Ule(x, smt.Const(0xFF, 8)), smt.True},
		{"ule-zero-is-eq-zero", smt.Ule(x, smt.Const(0, 8)), smt.Eq(x, smt.Const(0, 8))},
		{"ult-zext-range", smt.Ult(smt.ZExt(smt.Var("n", 4), 8), smt.Const(16, 8)), smt.True},
		{"eq-zext-out-of-range", smt.Eq(smt.ZExt(smt.Var("n", 4), 8), smt.Const(200, 8)), smt.False},
	}
	for _, c := range cases {
		got := smt.Simplify(c.in)
		want := smt.Simplify(c.want) // canonical object of the expectation
		if got != want {
			t.Errorf("%s: Simplify(%s) = %s, want %s", c.name, c.in, got, want)
		}
	}
}

// TestSimplifyBoolConstEqStaysCanonical is the memo-poisoning
// regression: Eq with one boolean side collapsing to a constant must
// negate through the simplifier, not the raw Not constructor — otherwise
// a non-canonical Not(...) gets registered as its own fixpoint and the
// canonical form of that negation becomes query-order dependent.
func TestSimplifyBoolConstEqStaysCanonical(t *testing.T) {
	x := smt.Var("cx", 8)
	y := smt.Var("cy", 8)
	p := smt.BoolVar("cp")
	falsey := smt.And(p, smt.Not(p)) // simplifies to false
	got := smt.Simplify(smt.Eq(falsey, smt.Ult(x, y)))
	want := smt.Simplify(smt.Not(smt.Ult(x, y)))
	if got != want {
		t.Fatalf("Eq(false, a<b) not canonical: got %s, want %s", got, want)
	}
	if canon := smt.Ule(y, x); got != canon {
		t.Fatalf("negated comparison should flip, got %s want %s", got, canon)
	}
	// And the memo must not have been poisoned for the direct query.
	if again := smt.Simplify(smt.Not(smt.Ult(x, y))); again != smt.Ule(y, x) {
		t.Fatalf("direct Not(a<b) no longer canonical after Eq query: %s", again)
	}
}

// TestSimplifyConcurrent hammers the sharded simplification cache from
// many goroutines simplifying the same term population; every goroutine
// must observe the same canonical results. Mirrors TestInternConcurrent;
// run with -race in CI.
func TestSimplifyConcurrent(t *testing.T) {
	const workers = 8
	results := make([][]*smt.Term, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(314))
			var out []*smt.Term
			for i := 0; i < 200; i++ {
				out = append(out, smt.Simplify(simpRandBool(r, 3)))
			}
			results[w] = out
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		for i := range results[0] {
			if results[0][i] != results[w][i] {
				t.Fatalf("worker %d result %d diverged: %s vs %s",
					w, i, results[w][i], results[0][i])
			}
		}
	}
}

// TestSimplifyStats: the cache snapshot must show activity after use.
func TestSimplifyStats(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 20; i++ {
		term := simpRandBool(r, 3)
		smt.Simplify(term)
		smt.Simplify(term) // guaranteed hit
	}
	info := smt.SimplifyStats()
	if info.Entries == 0 || info.Misses == 0 {
		t.Fatalf("cache shows no work: %+v", info)
	}
	if info.Hits == 0 {
		t.Fatalf("re-simplifying memoized terms produced no hits: %+v", info)
	}
}
