package solver

import "gauntlet/internal/smt"

// Result is the outcome of a Solve call.
type Result struct {
	Status Status
	// Model assigns every input variable when Status == Sat.
	Model smt.Assignment
	// Conflicts is the CDCL conflict count (statistics).
	Conflicts int
}

// Solve decides the conjunction of the assertions and returns a model when
// satisfiable. maxConflicts bounds the search (0 = unbounded).
func Solve(maxConflicts int, assertions ...*smt.Term) Result {
	b := NewBlaster()
	b.SAT().MaxConflicts = maxConflicts
	for _, a := range assertions {
		b.Assert(a)
	}
	st := b.SAT().Solve()
	res := Result{Status: st, Conflicts: b.SAT().Conflicts}
	if st == Sat {
		res.Model = b.Model()
	}
	return res
}

// SolvePreferNonZero solves the assertions, greedily preferring models in
// which the named variables are non-zero. The paper configures Z3 the same
// way (§6.2): zero-valued test packets can mask miscompilations on targets
// that zero-initialize undefined values.
//
// The preference is best-effort: variables that cannot be non-zero under
// the assertions are left unconstrained.
func SolvePreferNonZero(maxConflicts int, prefer []string, assertions ...*smt.Term) Result {
	base := Solve(maxConflicts, assertions...)
	if base.Status != Sat || len(prefer) == 0 {
		return base
	}
	// Collect widths of the preferred variables that actually occur.
	widths := map[string]int{}
	for _, a := range assertions {
		a.Vars(widths)
	}
	kept := assertions
	best := base
	for _, name := range prefer {
		w, ok := widths[name]
		if !ok {
			continue
		}
		var nz *smt.Term
		if w == 0 {
			nz = smt.Var(name, 0)
		} else {
			nz = smt.Ne(smt.Var(name, w), smt.Const(0, w))
		}
		trial := Solve(maxConflicts, append(append([]*smt.Term{}, kept...), nz)...)
		if trial.Status == Sat {
			kept = append(kept, nz)
			best = trial
		}
	}
	return best
}

// SolvePreferTermsNonZero is SolvePreferNonZero generalized to arbitrary
// bitvector terms: the solver greedily keeps "term != 0" side conditions
// that remain satisfiable. Test generation uses it to steer extracted
// header fields away from zero (§6.2).
func SolvePreferTermsNonZero(maxConflicts int, prefer []*smt.Term, assertions ...*smt.Term) Result {
	var prefs []*smt.Term
	for _, t := range prefer {
		if t.IsBool() || t.IsConst() {
			continue
		}
		prefs = append(prefs, smt.Ne(t, smt.Const(0, t.W)))
	}
	return SolveWithPreferences(maxConflicts, prefs, assertions...)
}

// SolveWithPreferences solves the assertions, greedily keeping each
// preference constraint that remains satisfiable (in order). Preferences
// are soft: an unsatisfiable one is silently dropped.
func SolveWithPreferences(maxConflicts int, prefs []*smt.Term, assertions ...*smt.Term) Result {
	base := Solve(maxConflicts, assertions...)
	if base.Status != Sat || len(prefs) == 0 {
		return base
	}
	kept := assertions
	best := base
	for _, p := range prefs {
		trial := Solve(maxConflicts, append(append([]*smt.Term{}, kept...), p)...)
		if trial.Status == Sat {
			kept = append(kept, p)
			best = trial
		}
	}
	return best
}

// Equivalent checks whether two terms of equal sort are semantically
// identical. When they differ it returns a distinguishing assignment —
// the counterexample translation validation reports (§5.2).
func Equivalent(maxConflicts int, a, b *smt.Term) (bool, smt.Assignment, Status) {
	res := Solve(maxConflicts, smt.Ne(a, b))
	switch res.Status {
	case Unsat:
		return true, nil, Unsat
	case Sat:
		return false, res.Model, Sat
	default:
		return false, nil, Unknown
	}
}
