package solver

import (
	"context"

	"gauntlet/internal/smt"
)

// Result is the outcome of a Solve call.
type Result struct {
	Status Status
	// Model assigns every input variable when Status == Sat.
	Model smt.Assignment
	// Conflicts is the CDCL conflict count (statistics).
	Conflicts int
}

// Solve decides the conjunction of the assertions and returns a model when
// satisfiable. maxConflicts bounds the search (0 = unbounded).
func Solve(maxConflicts int, assertions ...*smt.Term) Result {
	s := NewSession(maxConflicts)
	s.Assert(assertions...)
	return s.Solve()
}

// SolveContext is Solve under a wall-clock watchdog: the context's
// deadline/cancellation is polled inside the CDCL search (next to the
// conflict-budget check), and an expired context degrades the verdict to
// Unknown instead of hanging the query.
func SolveContext(ctx context.Context, maxConflicts int, assertions ...*smt.Term) Result {
	s := NewSessionContext(ctx, maxConflicts)
	s.Assert(assertions...)
	return s.Solve()
}

// stopFor derives the SAT watchdog poll from a context. Contexts that can
// never be cancelled (Background, TODO) yield nil so the search loop
// skips the poll entirely.
func stopFor(ctx context.Context) func() bool {
	if ctx == nil || ctx.Done() == nil {
		return nil
	}
	return func() bool { return ctx.Err() != nil }
}

// Session is an incremental solving session: one Blaster over one SAT
// instance, queried many times. The formula is bit-blasted exactly once —
// the blaster's memo tables are keyed by interned term, so every shared
// subterm encodes to the same circuit — and each query decides extra
// conditions under SAT assumptions instead of rebuilding the CNF. Learnt
// clauses, activities and phases persist across queries, which is what
// makes path enumeration and soft-preference search fast.
type Session struct {
	b *Blaster
}

// NewSession creates a session with the given per-query conflict budget
// (0 = unbounded).
func NewSession(maxConflicts int) *Session {
	s := &Session{b: NewBlaster()}
	s.b.SAT().MaxConflicts = maxConflicts
	return s
}

// NewSessionContext is NewSession with a wall-clock watchdog: every query
// on the session polls the context at each conflict and degrades to
// Unknown once it expires. A non-cancellable context adds no hook at all,
// so the plain and context paths share one solver loop.
func NewSessionContext(ctx context.Context, maxConflicts int) *Session {
	s := NewSession(maxConflicts)
	s.b.SAT().Stop = stopFor(ctx)
	return s
}

// Assert adds hard constraints. Terms are canonicalized through
// smt.Simplify before blasting — simplification is model-preserving, so
// the session decides the same formula over a smaller circuit, and
// syntactic variants of one constraint encode once.
func (s *Session) Assert(ts ...*smt.Term) {
	for _, t := range ts {
		s.b.Assert(smt.Simplify(t))
	}
}

// Lit encodes a boolean term without asserting it and returns its CNF
// literal, for use as a SolveAssuming assumption. The term is simplified
// first (a constant-collapsing condition becomes the true/false literal
// directly); repeated calls with the same (interned) term return the same
// literal.
func (s *Session) Lit(t *smt.Term) Lit { return s.b.BlastBool(smt.Simplify(t)) }

// Solve decides the asserted constraints.
func (s *Session) Solve() Result { return s.SolveAssuming() }

// SolveAssuming decides the asserted constraints with the given literals
// temporarily assumed true. Unsat means unsatisfiable under the
// assumptions only; the session remains usable.
func (s *Session) SolveAssuming(assumps ...Lit) Result {
	before := s.b.SAT().Conflicts
	st := s.b.SAT().SolveAssuming(assumps...)
	res := Result{Status: st, Conflicts: s.b.SAT().Conflicts - before}
	if st == Sat {
		res.Model = s.b.Model()
	}
	return res
}

// BVLits encodes a bitvector term and returns its bit literals (LSB
// first) without asserting anything. The literals can pin the term to a
// concrete value purely through assumptions — no new clauses per query.
// The term is simplified first so its circuit shares the gates of the
// (equally simplified) asserted constraints.
func (s *Session) BVLits(t *smt.Term) []Lit { return s.b.BlastBV(smt.Simplify(t)) }

// SolveAssumingSoft decides the fixed assumptions, then greedily keeps
// each soft assumption group that remains satisfiable, in order. A group
// is atomic: all of its literals are kept or none (one group typically
// encodes one preference constraint). This is the shared engine behind
// SolveWithPreferences and test generation's model steering.
func (s *Session) SolveAssumingSoft(fixed []Lit, soft [][]Lit) Result {
	res := s.SolveAssuming(fixed...)
	if res.Status != Sat || len(soft) == 0 {
		return res
	}
	kept := append([]Lit(nil), fixed...)
	for _, g := range soft {
		trial := s.SolveAssuming(append(kept, g...)...)
		res.Conflicts += trial.Conflicts
		if trial.Status == Sat {
			kept = append(kept, g...)
			res.Model = trial.Model
		}
	}
	return res
}

// SolvePreferNonZero solves the assertions, greedily preferring models in
// which the named variables are non-zero. The paper configures Z3 the same
// way (§6.2): zero-valued test packets can mask miscompilations on targets
// that zero-initialize undefined values.
//
// The preference is best-effort: variables that cannot be non-zero under
// the assertions are left unconstrained.
func SolvePreferNonZero(maxConflicts int, prefer []string, assertions ...*smt.Term) Result {
	var prefs []*smt.Term
	if len(prefer) > 0 {
		// Collect widths of the preferred variables that actually occur
		// (once, up front — not per trial). Preference terms are built in
		// the assertions' context so a rotating service never interns
		// per-query variables into the immortal default context.
		sctx := smt.DefaultContext()
		if len(assertions) > 0 {
			sctx = assertions[0].Context()
		}
		widths := map[string]int{}
		for _, a := range assertions {
			a.Vars(widths)
		}
		for _, name := range prefer {
			w, ok := widths[name]
			if !ok {
				continue
			}
			if w == 0 {
				prefs = append(prefs, sctx.Var(name, 0))
			} else {
				prefs = append(prefs, smt.Ne(sctx.Var(name, w), sctx.Const(0, w)))
			}
		}
	}
	return SolveWithPreferences(maxConflicts, prefs, assertions...)
}

// SolvePreferTermsNonZero is SolvePreferNonZero generalized to arbitrary
// bitvector terms: the solver greedily keeps "term != 0" side conditions
// that remain satisfiable. Test generation uses it to steer extracted
// header fields away from zero (§6.2).
func SolvePreferTermsNonZero(maxConflicts int, prefer []*smt.Term, assertions ...*smt.Term) Result {
	var prefs []*smt.Term
	for _, t := range prefer {
		if t.IsBool() || t.IsConst() {
			continue
		}
		prefs = append(prefs, smt.Ne(t, t.Context().Const(0, t.W)))
	}
	return SolveWithPreferences(maxConflicts, prefs, assertions...)
}

// SolveWithPreferences solves the assertions, greedily keeping each
// preference constraint that remains satisfiable (in order). Preferences
// are soft: an unsatisfiable one is silently dropped.
//
// The hard assertions are blasted once; every preference trial is a
// solve-under-assumptions on the same SAT instance, so trial k costs one
// incremental query instead of re-encoding k-1 kept preferences plus the
// whole base formula.
func SolveWithPreferences(maxConflicts int, prefs []*smt.Term, assertions ...*smt.Term) Result {
	s := NewSession(maxConflicts)
	s.Assert(assertions...)
	res := s.Solve()
	if res.Status != Sat || len(prefs) == 0 {
		return res
	}
	soft := make([][]Lit, len(prefs))
	for i, p := range prefs {
		soft[i] = []Lit{s.Lit(p)}
	}
	out := s.SolveAssumingSoft(nil, soft)
	out.Conflicts += res.Conflicts
	return out
}

// Equivalent checks whether two terms of equal sort are semantically
// identical. When they differ it returns a distinguishing assignment —
// the counterexample translation validation reports (§5.2).
func Equivalent(maxConflicts int, a, b *smt.Term) (bool, smt.Assignment, Status) {
	return EquivalentContext(context.Background(), maxConflicts, a, b)
}

// EquivalentContext is Equivalent under a wall-clock watchdog: an expired
// context aborts the search with Unknown — the same explicit degradation
// as conflict-budget exhaustion — instead of letting one pathological
// miter stall its caller indefinitely.
func EquivalentContext(ctx context.Context, maxConflicts int, a, b *smt.Term) (bool, smt.Assignment, Status) {
	res := SolveContext(ctx, maxConflicts, smt.Ne(a, b))
	switch res.Status {
	case Unsat:
		return true, nil, Unsat
	case Sat:
		return false, res.Model, Sat
	default:
		return false, nil, Unknown
	}
}
