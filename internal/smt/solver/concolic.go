package solver

import (
	"context"

	"gauntlet/internal/smt"
)

// ConcolicResult reports how one equivalence query moved through the
// concrete-first pipeline: whether the bit-parallel tape falsified it
// (zero solver work) and how many concrete packets were spent trying.
type ConcolicResult struct {
	// Falsified is true when the tape found a concrete counterexample;
	// the query never reached the SAT solver.
	Falsified bool
	// Packets is the number of concrete input assignments executed
	// (64 per tape batch).
	Packets uint64
}

// EquivalentConcolic decides a miter the concrete-first way: run the
// compiled bit-parallel tape over `rounds` batches of deterministic
// pseudo-random assignments (64 packets per batch, inputs derived from
// (seed, tape fingerprint) — never wall clock or a global RNG), and only
// fall back to the symbolic solver when no batch falsifies. This is the
// fallback boundary between the concolic fast path and the SAT stack:
// a concrete counterexample is a definitive Sat verdict — it is an
// assignment the caller can replay — while a survived tape proves
// nothing and hands the query to EquivalentContext unchanged.
//
// The witness is re-checked against smt.Eval before it is trusted, so a
// tape/Eval divergence degrades to the solver path instead of reporting
// a bogus counterexample.
func EquivalentConcolic(ctx context.Context, maxConflicts int, eq *smt.Term, tp *smt.Tape, seed uint64, rounds int) (bool, smt.Assignment, Status, ConcolicResult) {
	var cr ConcolicResult
	if tp != nil && rounds > 0 {
		cex, packets, ok := tp.Falsify(seed, rounds)
		cr.Packets = packets
		if ok {
			if smt.Eval(eq, cex) == 0 {
				cr.Falsified = true
				return false, cex, Sat, cr
			}
			// Divergence between tape and Eval: never report it as a
			// verdict — fall through to the solver. (Differential fuzz
			// keeps this branch dead; it exists as a safety net.)
		}
	}
	equal, model, st := EquivalentContext(ctx, maxConflicts, eq, smt.True)
	return equal, model, st, cr
}
