// Package solver decides satisfiability of smt terms. It contains a CDCL
// SAT solver (watched literals, 1-UIP clause learning, VSIDS-style
// activities, Luby restarts, phase saving) and a Tseitin bit-blaster that
// reduces QF_BV terms to CNF over it. Together they replace the Z3 calls
// of the paper's implementation.
package solver

import "fmt"

// Lit is a literal: positive v or negative -v for variable v >= 1.
type Lit int

// Neg returns the negation of the literal.
func (l Lit) Neg() Lit { return -l }

// Var returns the literal's variable.
func (l Lit) Var() int {
	if l < 0 {
		return int(-l)
	}
	return int(l)
}

// index maps a literal to a dense watch index: 2v for positive, 2v+1 for
// negative.
func (l Lit) index() int {
	if l > 0 {
		return 2 * int(l)
	}
	return 2*int(-l) + 1
}

// Status is a solver verdict.
type Status int

// Solver verdicts.
const (
	Unknown Status = iota
	Sat
	Unsat
)

// String renders the verdict.
func (s Status) String() string {
	switch s {
	case Sat:
		return "sat"
	case Unsat:
		return "unsat"
	default:
		return "unknown"
	}
}

const unassigned int8 = -1

// SAT is a CDCL SAT solver. The zero value is ready to use.
type SAT struct {
	nVars    int
	clauses  [][]Lit // problem and learnt clauses
	watches  [][]int // lit index → clause indices watching it
	assign   []int8  // var → 0 false, 1 true, -1 unassigned
	level    []int   // var → decision level
	reason   []int   // var → clause index or -1
	phase    []int8  // var → saved phase
	activity []float64
	varInc   float64
	trail    []Lit
	trailLim []int
	qhead    int
	unsat    bool // a top-level conflict was added

	// Conflicts counts total conflicts across all Solve calls
	// (statistics and restart policy).
	Conflicts int
	// MaxConflicts bounds each Solve call (the budget is per call, so an
	// incremental session does not starve later queries); 0 means
	// unbounded. Exceeding it yields Unknown.
	MaxConflicts int
	// Stop is the wall-clock watchdog hook: when set it is polled at
	// every conflict (next to the MaxConflicts check) and at every
	// restart, and a true return aborts the search with Unknown — the
	// same explicit degradation as conflict-budget exhaustion, so a
	// deadline can never hang a query, only weaken its verdict.
	// solver.Session wires a context.Context's Err() here; the check is
	// conflict-paced because conflict-free work between two conflicts is
	// polynomially bounded, so the poll adds no inner-loop cost.
	Stop func() bool

	// assumps holds the current solve-under-assumptions literals; they
	// are decided first (in order) and a falsified assumption makes the
	// query Unsat without touching the clause database.
	assumps []Lit

	seen []bool // scratch for analyze
}

// NewVar allocates a fresh variable and returns its (positive) index.
// Variables are 1-based; index 0 of the internal arrays is padding.
func (s *SAT) NewVar() int {
	if s.nVars == 0 && len(s.assign) == 0 {
		s.assign = append(s.assign, unassigned)
		s.level = append(s.level, 0)
		s.reason = append(s.reason, -1)
		s.phase = append(s.phase, 0)
		s.activity = append(s.activity, 0)
		s.seen = append(s.seen, false)
		s.watches = append(s.watches, nil, nil)
	}
	s.nVars++
	s.assign = append(s.assign, unassigned)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, -1)
	s.phase = append(s.phase, 0)
	s.activity = append(s.activity, 0)
	s.seen = append(s.seen, false)
	s.watches = append(s.watches, nil, nil)
	return s.nVars
}

func (s *SAT) value(l Lit) int8 {
	a := s.assign[l.Var()]
	if a == unassigned {
		return unassigned
	}
	if l < 0 {
		return 1 - a
	}
	return a
}

// AddClause adds a clause of literals. Empty clauses (or clauses that
// simplify to empty) make the instance trivially unsatisfiable. Adding
// clauses between Solve calls is allowed: the solver first retracts any
// in-flight decisions back to the root level.
func (s *SAT) AddClause(lits ...Lit) {
	if s.unsat {
		return
	}
	if s.decisionLevel() > 0 {
		s.backtrack(0)
	}
	// Simplify: drop duplicate/false literals, detect tautologies.
	var cl []Lit
	seen := map[Lit]bool{}
	for _, l := range lits {
		if l.Var() > s.nVars || l == 0 {
			panic(fmt.Sprintf("sat: bad literal %d", l))
		}
		if seen[l] {
			continue
		}
		if seen[l.Neg()] {
			return // tautology
		}
		// Top-level values.
		if s.level[l.Var()] == 0 {
			switch s.value(l) {
			case 1:
				return // already satisfied
			case 0:
				continue // already false at top level
			}
		}
		seen[l] = true
		cl = append(cl, l)
	}
	switch len(cl) {
	case 0:
		s.unsat = true
		return
	case 1:
		if !s.enqueue(cl[0], -1) {
			s.unsat = true
		}
		if s.propagate() >= 0 {
			s.unsat = true
		}
		return
	}
	s.attach(cl)
}

func (s *SAT) attach(cl []Lit) {
	idx := len(s.clauses)
	s.clauses = append(s.clauses, cl)
	s.watches[cl[0].index()] = append(s.watches[cl[0].index()], idx)
	s.watches[cl[1].index()] = append(s.watches[cl[1].index()], idx)
}

func (s *SAT) enqueue(l Lit, reason int) bool {
	switch s.value(l) {
	case 1:
		return true
	case 0:
		return false
	}
	v := l.Var()
	if l > 0 {
		s.assign[v] = 1
	} else {
		s.assign[v] = 0
	}
	s.level[v] = s.decisionLevel()
	s.reason[v] = reason
	s.trail = append(s.trail, l)
	return true
}

func (s *SAT) decisionLevel() int { return len(s.trailLim) }

// propagate performs unit propagation; returns the index of a conflicting
// clause or -1.
func (s *SAT) propagate() int {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		falseLit := p.Neg()
		ws := s.watches[falseLit.index()]
		var kept []int
		for wi := 0; wi < len(ws); wi++ {
			ci := ws[wi]
			cl := s.clauses[ci]
			// Ensure the false literal is at cl[1].
			if cl[0] == falseLit {
				cl[0], cl[1] = cl[1], cl[0]
			}
			// Satisfied by the other watch?
			if s.value(cl[0]) == 1 {
				kept = append(kept, ci)
				continue
			}
			// Find a new literal to watch.
			moved := false
			for k := 2; k < len(cl); k++ {
				if s.value(cl[k]) != 0 {
					cl[1], cl[k] = cl[k], cl[1]
					s.watches[cl[1].index()] = append(s.watches[cl[1].index()], ci)
					moved = true
					break
				}
			}
			if moved {
				continue
			}
			// Unit or conflict.
			kept = append(kept, ci)
			if !s.enqueue(cl[0], ci) {
				// Conflict: restore remaining watches and report.
				kept = append(kept, ws[wi+1:]...)
				s.watches[falseLit.index()] = kept
				return ci
			}
		}
		s.watches[falseLit.index()] = kept
	}
	return -1
}

func (s *SAT) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := 1; i <= s.nVars; i++ {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
}

// analyze derives a 1-UIP learnt clause from a conflict; returns the
// clause and the backtrack level.
func (s *SAT) analyze(conflict int) ([]Lit, int) {
	learnt := []Lit{0} // slot 0 reserved for the asserting literal
	counter := 0
	var p Lit
	idx := len(s.trail) - 1
	reason := conflict

	for {
		cl := s.clauses[reason]
		start := 0
		if p != 0 {
			start = 1 // skip the asserting literal slot of the reason
		}
		for _, q := range cl[start:] {
			if p != 0 && q == p {
				continue
			}
			v := q.Var()
			if s.seen[v] || s.level[v] == 0 {
				continue
			}
			s.seen[v] = true
			s.bumpVar(v)
			if s.level[v] == s.decisionLevel() {
				counter++
			} else {
				learnt = append(learnt, q)
			}
		}
		// Find the next literal on the trail to resolve on.
		for !s.seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		v := p.Var()
		s.seen[v] = false
		counter--
		if counter == 0 {
			learnt[0] = p.Neg()
			break
		}
		reason = s.reason[v]
		idx--
	}
	for _, l := range learnt[1:] {
		s.seen[l.Var()] = false
	}

	// Backtrack level: highest level among learnt[1:].
	blevel := 0
	swapIdx := -1
	for i, l := range learnt[1:] {
		if lv := s.level[l.Var()]; lv > blevel {
			blevel = lv
			swapIdx = i + 1
		}
	}
	if swapIdx > 0 {
		learnt[1], learnt[swapIdx] = learnt[swapIdx], learnt[1]
	}
	return learnt, blevel
}

func (s *SAT) backtrack(level int) {
	if s.decisionLevel() <= level {
		return
	}
	for i := len(s.trail) - 1; i >= s.trailLim[level]; i-- {
		v := s.trail[i].Var()
		s.phase[v] = s.assign[v]
		s.assign[v] = unassigned
		s.reason[v] = -1
	}
	s.trail = s.trail[:s.trailLim[level]]
	s.trailLim = s.trailLim[:level]
	s.qhead = len(s.trail)
}

// decide picks the unassigned variable with the highest activity.
func (s *SAT) decide() Lit {
	best, bestAct := 0, -1.0
	for v := 1; v <= s.nVars; v++ {
		if s.assign[v] == unassigned && s.activity[v] > bestAct {
			best, bestAct = v, s.activity[v]
		}
	}
	if best == 0 {
		return 0
	}
	if s.phase[best] == 1 {
		return Lit(best)
	}
	return Lit(-best)
}

// luby computes the Luby restart sequence value for index i (1-based).
func luby(i int) int {
	k := 1
	for (1<<uint(k))-1 < i {
		k++
	}
	for (1<<uint(k))-1 != i {
		i -= (1 << uint(k-1)) - 1
		k = 1
		for (1<<uint(k))-1 < i {
			k++
		}
	}
	return 1 << uint(k-1)
}

// Solve runs the CDCL search. The solver is incremental: Solve may be
// called repeatedly, with clauses added in between; learnt clauses,
// variable activities and saved phases carry over from call to call.
func (s *SAT) Solve() Status {
	return s.SolveAssuming()
}

// SolveAssuming runs the CDCL search with the given literals assumed true
// for the duration of this call only. Unsat means "unsatisfiable under
// the assumptions" — the clause database is untouched, so a later call
// with different assumptions can still be Sat. This is how soft
// preference constraints are decided without re-blasting the formula.
func (s *SAT) SolveAssuming(assumps ...Lit) Status {
	if s.unsat {
		return Unsat
	}
	s.backtrack(0) // retract the previous call's trail
	s.assumps = assumps
	defer func() { s.assumps = nil }()

	s.varInc = 1.0
	restart := 1
	budget := 100 * luby(restart)
	conflictsHere := 0
	startConflicts := s.Conflicts

	if s.propagate() >= 0 {
		s.unsat = true // conflict at the root level is global
		return Unsat
	}
	for {
		conflict := s.propagate()
		if conflict >= 0 {
			s.Conflicts++
			conflictsHere++
			if s.MaxConflicts > 0 && s.Conflicts-startConflicts > s.MaxConflicts {
				return Unknown
			}
			if s.Stop != nil && s.Stop() {
				return Unknown
			}
			if s.decisionLevel() == 0 {
				s.unsat = true
				return Unsat
			}
			learnt, blevel := s.analyze(conflict)
			s.backtrack(blevel)
			if len(learnt) == 1 {
				if !s.enqueue(learnt[0], -1) {
					s.unsat = true
					return Unsat
				}
			} else {
				s.attach(learnt)
				s.enqueue(learnt[0], len(s.clauses)-1)
			}
			s.varInc /= 0.95 // VSIDS decay
			continue
		}
		if conflictsHere >= budget {
			// Restart (assumptions are re-established by the decision
			// loop below).
			if s.Stop != nil && s.Stop() {
				return Unknown
			}
			conflictsHere = 0
			restart++
			budget = 100 * luby(restart)
			s.backtrack(0)
			continue
		}
		// Assumptions are decided first, in order, one per level.
		next := Lit(0)
		for next == 0 && s.decisionLevel() < len(s.assumps) {
			p := s.assumps[s.decisionLevel()]
			switch s.value(p) {
			case 1:
				// Already implied: open a dummy level to keep the
				// level ↔ assumption-index correspondence.
				s.trailLim = append(s.trailLim, len(s.trail))
			case 0:
				return Unsat // assumption falsified under the others
			default:
				next = p
			}
		}
		if next == 0 {
			next = s.decide()
			if next == 0 {
				return Sat // all variables assigned
			}
		}
		s.trailLim = append(s.trailLim, len(s.trail))
		s.enqueue(next, -1)
	}
}

// ValueOf returns the model value of a variable after Sat.
func (s *SAT) ValueOf(v int) bool { return s.assign[v] == 1 }

// NumVars returns the number of allocated variables.
func (s *SAT) NumVars() int { return s.nVars }

// NumClauses returns the number of clauses (problem + learnt).
func (s *SAT) NumClauses() int { return len(s.clauses) }
