package solver

import (
	"fmt"
	"sort"
	"sync/atomic"

	"gauntlet/internal/smt"
)

// gateOp tags the node kind in the structural gate cache.
type gateOp uint8

const (
	gAnd gateOp = iota
	gXor
	gMux
)

// gateKey identifies one gate structurally: operator plus normalized
// input literals (c is the select input for muxes, 0 otherwise).
type gateKey struct {
	op      gateOp
	a, b, c Lit
}

// gatesBuiltTotal and gatesReusedTotal are process-wide counters across
// every blaster (blasters are per-query and short-lived, so instance
// counters alone would vanish with them). The engine surfaces the reuse
// rate in Stats.
var gatesBuiltTotal, gatesReusedTotal atomic.Uint64

// GateStats reports the cumulative structural gate-cache counters across
// all blasters in the process: gates encoded fresh (new SAT variable plus
// clauses) and gate constructions answered by an existing literal.
func GateStats() (built, reused uint64) {
	return gatesBuiltTotal.Load(), gatesReusedTotal.Load()
}

// Blaster lowers smt terms to CNF over a SAT solver. Shared subterms
// (by pointer) are encoded once, and below the term level every gate is
// structurally hashed: two-input AND/XOR/MUX nodes are normalized
// (operand order, negation polarity) and cached, so structure repeated
// anywhere in the formula — the A-side and B-side of a near-identical
// miter, two adders over the same operands, symmetric comparisons —
// resolves to the same literal instead of fresh variables and clauses.
type Blaster struct {
	sat       *SAT
	cacheBV   map[*smt.Term][]Lit
	cacheB    map[*smt.Term]Lit
	vars      map[string][]Lit // input variable name → bit literals (LSB first)
	gates     map[gateKey]Lit
	lTrue     Lit
	gateBuilt uint64
	gateReuse uint64
}

// NewBlaster creates a blaster over a fresh SAT instance.
func NewBlaster() *Blaster {
	b := &Blaster{
		sat:     &SAT{},
		cacheBV: map[*smt.Term][]Lit{},
		cacheB:  map[*smt.Term]Lit{},
		vars:    map[string][]Lit{},
		gates:   map[gateKey]Lit{},
	}
	t := Lit(b.sat.NewVar())
	b.sat.AddClause(t)
	b.lTrue = t
	return b
}

// SAT exposes the underlying solver (for budgets and statistics).
func (b *Blaster) SAT() *SAT { return b.sat }

// GateStats reports this blaster's structural gate-cache counters.
func (b *Blaster) GateStats() (built, reused uint64) {
	return b.gateBuilt, b.gateReuse
}

func (b *Blaster) lFalse() Lit { return b.lTrue.Neg() }

func (b *Blaster) fresh() Lit { return Lit(b.sat.NewVar()) }

// constBit returns the literal for a constant bit.
func (b *Blaster) constBit(v bool) Lit {
	if v {
		return b.lTrue
	}
	return b.lFalse()
}

// gateLookup consults the structural gate cache; build runs on a miss and
// its output is recorded under the key.
func (b *Blaster) gateLookup(k gateKey, build func() Lit) Lit {
	if o, ok := b.gates[k]; ok {
		b.gateReuse++
		gatesReusedTotal.Add(1)
		return o
	}
	o := build()
	b.gates[k] = o
	b.gateBuilt++
	gatesBuiltTotal.Add(1)
	return o
}

// gateAnd returns o <-> x & y. The cache key is negation-normalized only
// by operand order: AND(x, ¬y) and AND(¬y, x) share a node, and OR shares
// through De Morgan (gateOr encodes ¬AND(¬x, ¬y)).
func (b *Blaster) gateAnd(x, y Lit) Lit {
	if x == b.lFalse() || y == b.lFalse() {
		return b.lFalse()
	}
	if x == b.lTrue {
		return y
	}
	if y == b.lTrue {
		return x
	}
	if x == y {
		return x
	}
	if x == y.Neg() {
		return b.lFalse()
	}
	if y < x {
		x, y = y, x
	}
	return b.gateLookup(gateKey{op: gAnd, a: x, b: y}, func() Lit {
		o := b.fresh()
		b.sat.AddClause(x.Neg(), y.Neg(), o)
		b.sat.AddClause(x, o.Neg())
		b.sat.AddClause(y, o.Neg())
		return o
	})
}

// gateOr returns o <-> x | y.
func (b *Blaster) gateOr(x, y Lit) Lit {
	return b.gateAnd(x.Neg(), y.Neg()).Neg()
}

// gateXor returns o <-> x ^ y. Negation normalization: input polarity
// commutes out of XOR (¬x ⊕ y = ¬(x ⊕ y)), so the cache key uses the
// positive literals and the output absorbs the parity — all four polarity
// variants of one XOR share a single node.
func (b *Blaster) gateXor(x, y Lit) Lit {
	if x == b.lFalse() {
		return y
	}
	if y == b.lFalse() {
		return x
	}
	if x == b.lTrue {
		return y.Neg()
	}
	if y == b.lTrue {
		return x.Neg()
	}
	if x == y {
		return b.lFalse()
	}
	if x == y.Neg() {
		return b.lTrue
	}
	flip := false
	if x < 0 {
		x, flip = x.Neg(), !flip
	}
	if y < 0 {
		y, flip = y.Neg(), !flip
	}
	if y < x {
		x, y = y, x
	}
	o := b.gateLookup(gateKey{op: gXor, a: x, b: y}, func() Lit {
		o := b.fresh()
		b.sat.AddClause(x.Neg(), y.Neg(), o.Neg())
		b.sat.AddClause(x, y, o.Neg())
		b.sat.AddClause(x.Neg(), y, o)
		b.sat.AddClause(x, y.Neg(), o)
		return o
	})
	if flip {
		return o.Neg()
	}
	return o
}

// gateMux returns o <-> (c ? t : e). Normalization: a negated select
// swaps the branches, opposite branches degrade to XOR, and jointly
// negated branches factor the negation out of the node (¬t/¬e mux =
// ¬(t/e mux)), so every polarity arrangement of one mux shares a node.
func (b *Blaster) gateMux(c, t, e Lit) Lit {
	if c == b.lTrue {
		return t
	}
	if c == b.lFalse() {
		return e
	}
	if t == e {
		return t
	}
	if c < 0 {
		c, t, e = c.Neg(), e, t
	}
	if t == e.Neg() {
		// (c ? t : ¬t) = ¬(c ⊕ t).
		return b.gateXor(c, t).Neg()
	}
	if t == b.lTrue {
		return b.gateOr(c, e)
	}
	if t == b.lFalse() {
		return b.gateAnd(c.Neg(), e)
	}
	if e == b.lTrue {
		return b.gateOr(c.Neg(), t)
	}
	if e == b.lFalse() {
		return b.gateAnd(c, t)
	}
	if t == c {
		// (c ? c : e) = c | e  — selecting the select itself.
		return b.gateOr(c, e)
	}
	if e == c {
		// (c ? t : c) = c & t.
		return b.gateAnd(c, t)
	}
	if t == c.Neg() {
		// (c ? ¬c : e) = ¬c & e.
		return b.gateAnd(c.Neg(), e)
	}
	if e == c.Neg() {
		// (c ? t : ¬c) = ¬c | t.
		return b.gateOr(c.Neg(), t)
	}
	flip := false
	if t < 0 && e < 0 {
		t, e, flip = t.Neg(), e.Neg(), true
	}
	o := b.gateLookup(gateKey{op: gMux, a: t, b: e, c: c}, func() Lit {
		o := b.fresh()
		b.sat.AddClause(c.Neg(), t.Neg(), o)
		b.sat.AddClause(c.Neg(), t, o.Neg())
		b.sat.AddClause(c, e.Neg(), o)
		b.sat.AddClause(c, e, o.Neg())
		return o
	})
	if flip {
		return o.Neg()
	}
	return o
}

// fullAdder returns (sum, carry) for x + y + cin.
func (b *Blaster) fullAdder(x, y, cin Lit) (Lit, Lit) {
	xy := b.gateXor(x, y)
	sum := b.gateXor(xy, cin)
	carry := b.gateOr(b.gateAnd(x, y), b.gateAnd(xy, cin))
	return sum, carry
}

// adder computes x + y + cin over equal-width vectors (LSB first).
func (b *Blaster) adder(x, y []Lit, cin Lit) []Lit {
	out := make([]Lit, len(x))
	c := cin
	for i := range x {
		out[i], c = b.fullAdder(x[i], y[i], c)
	}
	return out
}

func (b *Blaster) negVec(x []Lit) []Lit {
	inv := make([]Lit, len(x))
	for i, l := range x {
		inv[i] = l.Neg()
	}
	// two's complement: ~x + 1
	zero := make([]Lit, len(x))
	for i := range zero {
		zero[i] = b.lFalse()
	}
	return b.adder(inv, zero, b.lTrue)
}

// eqVec returns a literal true iff the vectors are equal.
func (b *Blaster) eqVec(x, y []Lit) Lit {
	acc := b.lTrue
	for i := range x {
		acc = b.gateAnd(acc, b.gateXor(x[i], y[i]).Neg())
	}
	return acc
}

// ultVec returns a literal true iff x < y (unsigned).
func (b *Blaster) ultVec(x, y []Lit) Lit {
	lt := b.lFalse()
	for i := 0; i < len(x); i++ { // LSB to MSB; MSB decided last
		bitLt := b.gateAnd(x[i].Neg(), y[i])
		bitEq := b.gateXor(x[i], y[i]).Neg()
		lt = b.gateOr(bitLt, b.gateAnd(bitEq, lt))
	}
	return lt
}

// BlastBool encodes a boolean term and returns its literal.
func (b *Blaster) BlastBool(t *smt.Term) Lit {
	if !t.IsBool() {
		panic(fmt.Sprintf("solver: BlastBool on bitvector term %s", t))
	}
	if l, ok := b.cacheB[t]; ok {
		return l
	}
	var out Lit
	switch t.Op {
	case smt.OpConst:
		out = b.constBit(t.Val == 1)
	case smt.OpVar:
		out = b.inputVar(t)[0]
	case smt.OpNot:
		out = b.BlastBool(t.Args[0]).Neg()
	case smt.OpAnd:
		out = b.lTrue
		for _, a := range t.Args {
			out = b.gateAnd(out, b.BlastBool(a))
		}
	case smt.OpOr:
		out = b.lFalse()
		for _, a := range t.Args {
			out = b.gateOr(out, b.BlastBool(a))
		}
	case smt.OpEq:
		if t.Args[0].IsBool() {
			out = b.gateXor(b.BlastBool(t.Args[0]), b.BlastBool(t.Args[1])).Neg()
		} else {
			out = b.eqVec(b.BlastBV(t.Args[0]), b.BlastBV(t.Args[1]))
		}
	case smt.OpIte:
		out = b.gateMux(b.BlastBool(t.Args[0]), b.BlastBool(t.Args[1]), b.BlastBool(t.Args[2]))
	case smt.OpUlt:
		out = b.ultVec(b.BlastBV(t.Args[0]), b.BlastBV(t.Args[1]))
	case smt.OpUle:
		out = b.ultVec(b.BlastBV(t.Args[1]), b.BlastBV(t.Args[0])).Neg()
	default:
		panic(fmt.Sprintf("solver: unexpected boolean op in %s", t))
	}
	b.cacheB[t] = out
	return out
}

// inputVar returns (allocating on first use) the bit literals of an input
// variable. Boolean variables get a single literal.
func (b *Blaster) inputVar(t *smt.Term) []Lit {
	if lits, ok := b.vars[t.Name]; ok {
		return lits
	}
	n := t.W
	if n == 0 {
		n = 1
	}
	lits := make([]Lit, n)
	for i := range lits {
		lits[i] = b.fresh()
	}
	b.vars[t.Name] = lits
	return lits
}

// BlastBV encodes a bitvector term and returns its bit literals, LSB
// first.
func (b *Blaster) BlastBV(t *smt.Term) []Lit {
	if t.IsBool() {
		panic(fmt.Sprintf("solver: BlastBV on boolean term %s", t))
	}
	if lits, ok := b.cacheBV[t]; ok {
		return lits
	}
	var out []Lit
	switch t.Op {
	case smt.OpConst:
		out = make([]Lit, t.W)
		for i := 0; i < t.W; i++ {
			out[i] = b.constBit(t.Val>>uint(i)&1 == 1)
		}
	case smt.OpVar:
		out = b.inputVar(t)
	case smt.OpIte:
		c := b.BlastBool(t.Args[0])
		x := b.BlastBV(t.Args[1])
		y := b.BlastBV(t.Args[2])
		out = make([]Lit, t.W)
		for i := range out {
			out[i] = b.gateMux(c, x[i], y[i])
		}
	case smt.OpBVAdd:
		out = b.adder(b.BlastBV(t.Args[0]), b.BlastBV(t.Args[1]), b.lFalse())
	case smt.OpBVSub:
		y := b.BlastBV(t.Args[1])
		inv := make([]Lit, len(y))
		for i, l := range y {
			inv[i] = l.Neg()
		}
		out = b.adder(b.BlastBV(t.Args[0]), inv, b.lTrue)
	case smt.OpBVNeg:
		out = b.negVec(b.BlastBV(t.Args[0]))
	case smt.OpBVMul:
		out = b.mul(b.BlastBV(t.Args[0]), b.BlastBV(t.Args[1]))
	case smt.OpBVAnd:
		x, y := b.BlastBV(t.Args[0]), b.BlastBV(t.Args[1])
		out = make([]Lit, t.W)
		for i := range out {
			out[i] = b.gateAnd(x[i], y[i])
		}
	case smt.OpBVOr:
		x, y := b.BlastBV(t.Args[0]), b.BlastBV(t.Args[1])
		out = make([]Lit, t.W)
		for i := range out {
			out[i] = b.gateOr(x[i], y[i])
		}
	case smt.OpBVXor:
		x, y := b.BlastBV(t.Args[0]), b.BlastBV(t.Args[1])
		out = make([]Lit, t.W)
		for i := range out {
			out[i] = b.gateXor(x[i], y[i])
		}
	case smt.OpBVNot:
		x := b.BlastBV(t.Args[0])
		out = make([]Lit, t.W)
		for i := range out {
			out[i] = x[i].Neg()
		}
	case smt.OpBVShl:
		out = b.shift(b.BlastBV(t.Args[0]), b.BlastBV(t.Args[1]), true)
	case smt.OpBVLshr:
		out = b.shift(b.BlastBV(t.Args[0]), b.BlastBV(t.Args[1]), false)
	case smt.OpBVConcat:
		hi := b.BlastBV(t.Args[0])
		lo := b.BlastBV(t.Args[1])
		out = make([]Lit, 0, len(hi)+len(lo))
		out = append(out, lo...)
		out = append(out, hi...)
	case smt.OpBVExtract:
		x := b.BlastBV(t.Args[0])
		out = append([]Lit(nil), x[t.Lo:t.Hi+1]...)
	case smt.OpBVZext:
		x := b.BlastBV(t.Args[0])
		out = make([]Lit, t.W)
		copy(out, x)
		for i := len(x); i < t.W; i++ {
			out[i] = b.lFalse()
		}
	default:
		panic(fmt.Sprintf("solver: unexpected bitvector op in %s", t))
	}
	if len(out) != t.W {
		panic(fmt.Sprintf("solver: blasted width %d != term width %d for %s", len(out), t.W, t))
	}
	b.cacheBV[t] = out
	return out
}

// shift builds a barrel shifter. left selects shl vs lshr. Amounts >= the
// vector width produce zero (P4 semantics, matching smt.Eval).
//
// Only the amount bits whose stage distance stays below the width need a
// mux ladder. Every higher bit can only zero the entire vector, so all of
// them collapse into one "amount ≥ width" indicator OR-ed together and a
// single AND mask per output bit — w+1 gates for the entire high range
// instead of w muxes per amount bit.
func (b *Blaster) shift(x, amt []Lit, left bool) []Lit {
	cur := append([]Lit(nil), x...)
	w := len(x)
	big := b.lFalse() // true iff some stage with distance >= w is active
	for k := 0; k < len(amt); k++ {
		dist := uint64(1) << uint(k)
		if k >= 63 || dist >= uint64(w) {
			big = b.gateOr(big, amt[k])
			continue
		}
		d := int(dist)
		shifted := make([]Lit, w)
		for i := 0; i < w; i++ {
			var src int
			if left {
				src = i - d
			} else {
				src = i + d
			}
			if src < 0 || src >= w {
				shifted[i] = b.lFalse()
			} else {
				shifted[i] = cur[src]
			}
		}
		next := make([]Lit, w)
		for i := 0; i < w; i++ {
			next[i] = b.gateMux(amt[k], shifted[i], cur[i])
		}
		cur = next
	}
	if big != b.lFalse() {
		keep := big.Neg()
		for i := range cur {
			cur[i] = b.gateAnd(cur[i], keep)
		}
	}
	return cur
}

// mul builds a shift-and-add multiplier.
func (b *Blaster) mul(x, y []Lit) []Lit {
	w := len(x)
	acc := make([]Lit, w)
	for i := range acc {
		acc[i] = b.lFalse()
	}
	for i := 0; i < w; i++ {
		// addend = (x << i) & replicate(y[i])
		addend := make([]Lit, w)
		for j := 0; j < w; j++ {
			if j < i {
				addend[j] = b.lFalse()
			} else {
				addend[j] = b.gateAnd(x[j-i], y[i])
			}
		}
		acc = b.adder(acc, addend, b.lFalse())
	}
	return acc
}

// Assert constrains a boolean term to be true.
func (b *Blaster) Assert(t *smt.Term) {
	b.sat.AddClause(b.BlastBool(t))
}

// Model extracts the assignment of all blasted input variables after Sat.
func (b *Blaster) Model() smt.Assignment {
	m := smt.Assignment{}
	names := make([]string, 0, len(b.vars))
	for n := range b.vars {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		lits := b.vars[n]
		var v uint64
		for i, l := range lits {
			bit := b.sat.ValueOf(l.Var())
			if l < 0 {
				bit = !bit
			}
			if bit {
				v |= 1 << uint(i)
			}
		}
		m[n] = v
	}
	return m
}
