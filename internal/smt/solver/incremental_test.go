package solver_test

import (
	"math/rand"
	"testing"

	"gauntlet/internal/smt"
	"gauntlet/internal/smt/solver"
)

// randCond builds a random boolean constraint over the a/b variable pool.
func randCond(r *rand.Rand, depth int) *smt.Term {
	switch r.Intn(6) {
	case 0:
		return smt.Eq(randTerm(r, depth), randTerm(r, depth))
	case 1:
		return smt.Ult(randTerm(r, depth), randTerm(r, depth))
	case 2:
		return smt.Ule(randTerm(r, depth), randTerm(r, depth))
	case 3:
		return smt.Not(smt.Eq(randTerm(r, depth), randTerm(r, depth)))
	case 4:
		return smt.Or(smt.Ult(randTerm(r, depth), randTerm(r, depth)),
			smt.Eq(randTerm(r, depth), randTerm(r, depth)))
	default:
		return smt.And(smt.Ule(randTerm(r, depth), randTerm(r, depth)),
			smt.Not(smt.Eq(randTerm(r, depth), smt.Const(0, 8))))
	}
}

// TestSolveAssumingMatchesFreshSolve is the incremental-solver soundness
// differential: deciding a condition under assumptions on a live session
// must agree (Sat/Unsat and model validity) with a fresh solver given the
// condition as a hard assertion.
func TestSolveAssumingMatchesFreshSolve(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for round := 0; round < 60; round++ {
		base := []*smt.Term{randCond(r, 2)}
		if r.Intn(2) == 0 {
			base = append(base, randCond(r, 1))
		}
		sess := solver.NewSession(0)
		sess.Assert(base...)

		// A burst of queries against the same session: each must match a
		// throwaway solver handed the same problem.
		for q := 0; q < 6; q++ {
			cond := randCond(r, 2)
			inc := sess.SolveAssuming(sess.Lit(cond))
			fresh := solver.Solve(0, append([]*smt.Term{cond}, base...)...)
			if inc.Status != fresh.Status {
				t.Fatalf("round %d query %d: incremental=%v fresh=%v\n  base=%v\n  cond=%s",
					round, q, inc.Status, fresh.Status, base, cond)
			}
			if inc.Status != solver.Sat {
				continue
			}
			for _, a := range append([]*smt.Term{cond}, base...) {
				if smt.Eval(a, inc.Model) != 1 {
					t.Fatalf("round %d query %d: incremental model %v violates %s",
						round, q, inc.Model, a)
				}
			}
		}
	}
}

// referencePreferences replays the pre-incremental algorithm: one fresh
// solver per trial, re-asserting the base and every kept preference. It
// returns the final result plus the kept set (which is semantically
// determined, so both implementations must converge on it).
func referencePreferences(prefs []*smt.Term, assertions ...*smt.Term) (solver.Result, []*smt.Term) {
	base := solver.Solve(0, assertions...)
	if base.Status != solver.Sat || len(prefs) == 0 {
		return base, nil
	}
	kept := assertions
	var keptPrefs []*smt.Term
	best := base
	for _, p := range prefs {
		trial := solver.Solve(0, append(append([]*smt.Term{}, kept...), p)...)
		if trial.Status == solver.Sat {
			kept = append(kept, p)
			keptPrefs = append(keptPrefs, p)
			best = trial
		}
	}
	return best, keptPrefs
}

// TestPreferencesMatchReference is the incremental-vs-fresh differential
// over randomized term sets: same satisfiability verdict, and the
// incremental model must satisfy the assertions plus exactly the
// preference set the reference implementation kept.
func TestPreferencesMatchReference(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for round := 0; round < 40; round++ {
		assertions := []*smt.Term{randCond(r, 2)}
		if r.Intn(2) == 0 {
			assertions = append(assertions, randCond(r, 1))
		}
		var prefs []*smt.Term
		for i := 0; i < 1+r.Intn(5); i++ {
			prefs = append(prefs, randCond(r, 1))
		}

		inc := solver.SolveWithPreferences(0, prefs, assertions...)
		ref, keptPrefs := referencePreferences(prefs, assertions...)

		if inc.Status != ref.Status {
			t.Fatalf("round %d: incremental=%v reference=%v", round, inc.Status, ref.Status)
		}
		if inc.Status != solver.Sat {
			continue
		}
		for _, a := range assertions {
			if smt.Eval(a, inc.Model) != 1 {
				t.Fatalf("round %d: model violates assertion %s", round, a)
			}
		}
		for _, p := range keptPrefs {
			if smt.Eval(p, inc.Model) != 1 {
				t.Fatalf("round %d: incremental model %v drops kept preference %s",
					round, inc.Model, p)
			}
		}
	}
}

// TestSessionSurvivesUnsatAssumptions checks that an assumption-level
// Unsat does not poison the session (the property path enumeration and
// soft preferences depend on).
func TestSessionSurvivesUnsatAssumptions(t *testing.T) {
	x := smt.Var("x", 8)
	sess := solver.NewSession(0)
	sess.Assert(smt.Ult(x, smt.Const(10, 8)))

	bad := sess.Lit(smt.Eq(x, smt.Const(99, 8)))
	if got := sess.SolveAssuming(bad); got.Status != solver.Unsat {
		t.Fatalf("contradictory assumption: got %v, want unsat", got.Status)
	}
	good := sess.Lit(smt.Eq(x, smt.Const(7, 8)))
	res := sess.SolveAssuming(good)
	if res.Status != solver.Sat || res.Model["x"] != 7 {
		t.Fatalf("session poisoned after unsat assumption: %v model=%v", res.Status, res.Model)
	}
	// Plain solve still works and ignores prior assumptions.
	if got := sess.Solve(); got.Status != solver.Sat {
		t.Fatalf("plain re-solve: got %v, want sat", got.Status)
	}
	// Hard contradiction now makes the session globally unsat.
	sess.Assert(smt.Eq(x, smt.Const(42, 8)))
	if got := sess.Solve(); got.Status != solver.Unsat {
		t.Fatalf("global contradiction: got %v, want unsat", got.Status)
	}
}

// TestAssumptionOrderIndependence: the decision order of assumptions must
// not affect the verdict.
func TestAssumptionOrderIndependence(t *testing.T) {
	x := smt.Var("x", 8)
	y := smt.Var("y", 8)
	sess := solver.NewSession(0)
	sess.Assert(smt.Ult(x, y))
	a := sess.Lit(smt.Eq(x, smt.Const(3, 8)))
	b := sess.Lit(smt.Eq(y, smt.Const(200, 8)))
	if got := sess.SolveAssuming(a, b); got.Status != solver.Sat {
		t.Fatalf("a,b: %v", got.Status)
	}
	if got := sess.SolveAssuming(b, a); got.Status != solver.Sat {
		t.Fatalf("b,a: %v", got.Status)
	}
	c := sess.Lit(smt.Eq(y, smt.Const(2, 8)))
	if got := sess.SolveAssuming(a, c); got.Status != solver.Unsat {
		t.Fatalf("x=3 ∧ y=2 ∧ x<y should be unsat, got %v", got.Status)
	}
	if got := sess.SolveAssuming(c, a); got.Status != solver.Unsat {
		t.Fatalf("order flipped: %v", got.Status)
	}
}

// TestIncrementalConflictBudgetPerQuery: MaxConflicts bounds each query,
// not the session lifetime — later queries still get a budget.
func TestIncrementalConflictBudgetPerQuery(t *testing.T) {
	sess := solver.NewSession(1) // one conflict per query
	x := smt.Var("x", 8)
	sess.Assert(smt.Ult(x, smt.Const(200, 8)))
	// Run several queries; with a per-session budget the later ones
	// would all be Unknown even when trivially decidable.
	for i := 0; i < 5; i++ {
		res := sess.SolveAssuming(sess.Lit(smt.Eq(x, smt.Const(uint64(i), 8))))
		if res.Status == solver.Unknown {
			// Budget exhaustion on such a tiny query means the budget
			// leaked across queries.
			t.Fatalf("query %d returned Unknown under a per-query budget", i)
		}
	}
}
