package solver_test

import (
	"math/rand"
	"testing"

	"gauntlet/internal/smt"
	"gauntlet/internal/smt/solver"
)

// TestSimplifyEquisatisfiable checks word-level simplification against
// the solver through the raw blaster path (Blaster.Assert does not
// simplify, so this is an independent oracle, not the simplifier checking
// itself): for random boolean terms t, t XOR Simplify(t) must be
// unsatisfiable — the two are equivalent as circuits.
func TestSimplifyEquisatisfiable(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	checked, unknown := 0, 0
	for i := 0; i < 150; i++ {
		term := randBoolTerm(r, 3)
		s := smt.Simplify(term)
		if s == term {
			continue
		}
		b := solver.NewBlaster()
		// A conflict budget keeps the occasional hard multiplier miter from
		// dominating the suite; Unknowns are tolerated but bounded below.
		b.SAT().MaxConflicts = 4000
		// Assert t != s without Session's simplification: inequivalence of
		// the raw and simplified circuit must have no model.
		b.Assert(smt.Not(smt.Eq(term, s)))
		switch st := b.SAT().Solve(); st {
		case solver.Unsat:
			checked++
		case solver.Sat:
			t.Fatalf("iteration %d: Simplify changed the function:\n  raw  %s\n  simp %s",
				i, term, s)
		default:
			unknown++
		}
	}
	if checked < 50 {
		t.Fatalf("only %d equivalences proved (%d budget-limited): fuzz lost its teeth", checked, unknown)
	}
}

// randBoolTerm builds a random boolean term over 8-bit vars a, b.
func randBoolTerm(r *rand.Rand, depth int) *smt.Term {
	if depth == 0 || r.Intn(3) == 0 {
		switch r.Intn(3) {
		case 0:
			return smt.Eq(randTerm(r, 2), randTerm(r, 2))
		case 1:
			return smt.Ult(randTerm(r, 2), randTerm(r, 2))
		default:
			return smt.Ule(randTerm(r, 2), randTerm(r, 2))
		}
	}
	switch r.Intn(4) {
	case 0:
		return smt.And(randBoolTerm(r, depth-1), randBoolTerm(r, depth-1))
	case 1:
		return smt.Or(randBoolTerm(r, depth-1), randBoolTerm(r, depth-1))
	case 2:
		return smt.Not(randBoolTerm(r, depth-1))
	default:
		return smt.Ite(randBoolTerm(r, depth-1), randBoolTerm(r, depth-1), randBoolTerm(r, depth-1))
	}
}

// TestGateReuseAcrossCommutedStructure: the structural gate cache must
// collapse repeated structure to the same literals. Commuted adds blast
// through normalized XOR/AND nodes, so the second add reuses the first's
// gates outright and the output vectors are identical literal for
// literal — the "near-identical miter" effect in miniature.
func TestGateReuseAcrossCommutedStructure(t *testing.T) {
	x := smt.Var("x", 8)
	y := smt.Var("y", 8)
	b := solver.NewBlaster()
	first := b.BlastBV(smt.Add(x, y))
	builtAfterFirst, _ := b.GateStats()
	second := b.BlastBV(smt.Add(y, x))
	builtAfterSecond, reused := b.GateStats()

	if builtAfterSecond != builtAfterFirst {
		t.Fatalf("commuted add built %d fresh gates; want full reuse",
			builtAfterSecond-builtAfterFirst)
	}
	if reused == 0 {
		t.Fatal("commuted add reported zero gate reuse")
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("bit %d: x+y and y+x blast to different literals (%d vs %d)",
				i, first[i], second[i])
		}
	}
}

// TestGateReuseNegationNormalized: polarity variants of one XOR must
// share a single gate node (¬x ⊕ y = ¬(x ⊕ y)), and OR must reuse AND
// structure through De Morgan.
func TestGateReuseNegationNormalized(t *testing.T) {
	x := smt.Var("x", 8)
	y := smt.Var("y", 8)
	b := solver.NewBlaster()
	v1 := b.BlastBV(smt.BVXor(x, y))
	built1, _ := b.GateStats()
	v2 := b.BlastBV(smt.BVXor(smt.BVNot(x), y))
	built2, _ := b.GateStats()
	if built2 != built1 {
		t.Fatalf("~x^y built %d fresh gates over x^y; polarity should normalize away",
			built2-built1)
	}
	for i := range v1 {
		if v1[i] != v2[i].Neg() {
			t.Fatalf("bit %d: ~x^y is not the negation of x^y (%d vs %d)", i, v1[i], v2[i])
		}
	}
}

// TestGateStatsProcessWide: the package-level counters must accumulate
// across blasters (the engine's Stats path reads these).
func TestGateStatsProcessWide(t *testing.T) {
	builtBefore, reusedBefore := solver.GateStats()
	x := smt.Var("x", 8)
	y := smt.Var("y", 8)
	b := solver.NewBlaster()
	b.BlastBV(smt.Add(x, y))
	b.BlastBV(smt.Add(y, x))
	builtAfter, reusedAfter := solver.GateStats()
	if builtAfter <= builtBefore {
		t.Fatal("process-wide gates-built counter did not advance")
	}
	if reusedAfter <= reusedBefore {
		t.Fatal("process-wide gates-reused counter did not advance")
	}
}

// TestShiftWideAmounts pins the collapsed high-stage shifter: for every
// shift amount — below, at and far above the width — the blasted shifter
// must agree with Eval's P4 semantics (amounts ≥ width yield zero).
func TestShiftWideAmounts(t *testing.T) {
	x := smt.Var("x", 8)
	sh := smt.Var("sh", 8)
	for _, left := range []bool{true, false} {
		var shifted *smt.Term
		if left {
			shifted = smt.Shl(x, sh)
		} else {
			shifted = smt.Lshr(x, sh)
		}
		for _, amount := range []uint64{0, 1, 3, 7, 8, 9, 16, 100, 255} {
			for _, xv := range []uint64{0x00, 0x01, 0x80, 0xA5, 0xFF} {
				want := uint64(0)
				if amount < 8 {
					if left {
						want = (xv << amount) & 0xFF
					} else {
						want = xv >> amount
					}
				}
				// Blast raw (no Session simplification): the barrel shifter
				// itself must implement the semantics.
				b := solver.NewBlaster()
				b.Assert(smt.Eq(x, smt.Const(xv, 8)))
				b.Assert(smt.Eq(sh, smt.Const(amount, 8)))
				b.Assert(smt.Eq(shifted, smt.Const(want, 8)))
				if st := b.SAT().Solve(); st != solver.Unsat && st != solver.Sat {
					t.Fatalf("left=%v x=%#x sh=%d: solver %v", left, xv, amount, st)
				} else if st != solver.Sat {
					t.Fatalf("left=%v x=%#x sh=%d: blasted shifter disagrees with Eval (want %#x)",
						left, xv, amount, want)
				}
			}
		}
	}
}

// TestShiftHighStageCNFShrinks: the "amount ≥ width" stages must not
// build a mux ladder each. An 8-bit shift by an 8-bit amount has five
// such stages (16, 32, 64, 128 plus the 8 stage); with the single-OR
// collapse the whole shifter stays well under the ladder encoding's gate
// count.
func TestShiftHighStageCNFShrinks(t *testing.T) {
	x := smt.Var("x", 8)
	sh := smt.Var("sh", 8)
	b := solver.NewBlaster()
	b.BlastBV(smt.Shl(x, sh))
	built, _ := b.GateStats()
	// Ladder encoding: 8 stages × 8 muxes ≈ 64 gate nodes plus adder
	// internals. Collapsed: 3 mux stages (dist 1, 2, 4) ≈ 24 muxes + 4 ORs
	// + 8 AND masks. Leave headroom but catch a ladder regression.
	const ladderFloor = 60
	if built >= ladderFloor {
		t.Fatalf("variable 8-bit shift built %d gates; high-stage collapse should stay under %d",
			built, ladderFloor)
	}
}
