package solver_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gauntlet/internal/smt"
	"gauntlet/internal/smt/solver"
)

func TestSATBasics(t *testing.T) {
	// (x | y) & (!x | y) & (x | !y) → x=1,y=1.
	s := &solver.SAT{}
	x := solver.Lit(s.NewVar())
	y := solver.Lit(s.NewVar())
	s.AddClause(x, y)
	s.AddClause(x.Neg(), y)
	s.AddClause(x, y.Neg())
	if got := s.Solve(); got != solver.Sat {
		t.Fatalf("Solve = %v, want sat", got)
	}
	if !s.ValueOf(x.Var()) || !s.ValueOf(y.Var()) {
		t.Fatalf("model x=%v y=%v, want true true", s.ValueOf(x.Var()), s.ValueOf(y.Var()))
	}
}

func TestSATUnsat(t *testing.T) {
	s := &solver.SAT{}
	x := solver.Lit(s.NewVar())
	y := solver.Lit(s.NewVar())
	s.AddClause(x, y)
	s.AddClause(x.Neg(), y)
	s.AddClause(x, y.Neg())
	s.AddClause(x.Neg(), y.Neg())
	if got := s.Solve(); got != solver.Unsat {
		t.Fatalf("Solve = %v, want unsat", got)
	}
}

func TestSATEmptyClause(t *testing.T) {
	s := &solver.SAT{}
	s.AddClause()
	if got := s.Solve(); got != solver.Unsat {
		t.Fatalf("Solve = %v, want unsat", got)
	}
}

// TestSATPigeonhole exercises clause learning on PHP(n+1, n), a classic
// hard unsatisfiable family.
func TestSATPigeonhole(t *testing.T) {
	const holes = 5
	const pigeons = holes + 1
	s := &solver.SAT{}
	v := make([][]solver.Lit, pigeons)
	for p := 0; p < pigeons; p++ {
		v[p] = make([]solver.Lit, holes)
		for h := 0; h < holes; h++ {
			v[p][h] = solver.Lit(s.NewVar())
		}
	}
	for p := 0; p < pigeons; p++ {
		s.AddClause(v[p]...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				s.AddClause(v[p1][h].Neg(), v[p2][h].Neg())
			}
		}
	}
	if got := s.Solve(); got != solver.Unsat {
		t.Fatalf("pigeonhole: Solve = %v, want unsat", got)
	}
}

func TestSolveSimpleBV(t *testing.T) {
	x := smt.Var("x", 8)
	// x + 1 == 0 → x = 255.
	res := solver.Solve(0, smt.Eq(smt.Add(x, smt.Const(1, 8)), smt.Const(0, 8)))
	if res.Status != solver.Sat {
		t.Fatalf("status %v, want sat", res.Status)
	}
	if res.Model["x"] != 255 {
		t.Fatalf("x = %d, want 255", res.Model["x"])
	}
}

func TestSolveUnsatBV(t *testing.T) {
	x := smt.Var("x", 8)
	res := solver.Solve(0, smt.Ne(smt.BVXor(x, x), smt.Const(0, 8)))
	if res.Status != solver.Unsat {
		t.Fatalf("status %v, want unsat (x^x is always 0)", res.Status)
	}
}

func TestSolveMul(t *testing.T) {
	x := smt.Var("x", 8)
	// x * 3 == 30 → x = 10 (among others: 8-bit modular; 10 is one root).
	res := solver.Solve(0, smt.Eq(smt.Mul(x, smt.Const(3, 8)), smt.Const(30, 8)))
	if res.Status != solver.Sat {
		t.Fatalf("status %v, want sat", res.Status)
	}
	if got := (res.Model["x"] * 3) & 0xFF; got != 30 {
		t.Fatalf("model x=%d does not satisfy x*3==30 (got %d)", res.Model["x"], got)
	}
}

func TestSolveShift(t *testing.T) {
	x := smt.Var("x", 8)
	sh := smt.Var("sh", 8)
	// (x << sh) == 0x80 with x odd → sh = 7, x&1==1.
	res := solver.Solve(0,
		smt.Eq(smt.Shl(x, sh), smt.Const(0x80, 8)),
		smt.Eq(smt.Extract(x, 0, 0), smt.Const(1, 1)))
	if res.Status != solver.Sat {
		t.Fatalf("status %v, want sat", res.Status)
	}
	m := res.Model
	shift := m["sh"]
	var got uint64
	if shift < 8 {
		got = (m["x"] << shift) & 0xFF
	}
	if got != 0x80 {
		t.Fatalf("model x=%d sh=%d does not satisfy constraint", m["x"], m["sh"])
	}
}

func TestEquivalentTerms(t *testing.T) {
	x := smt.Var("x", 8)
	// x*2 ≡ x<<1.
	eq, _, st := solver.Equivalent(0, smt.Mul(x, smt.Const(2, 8)), smt.Shl(x, smt.Const(1, 8)))
	if !eq || st != solver.Unsat {
		t.Fatal("x*2 and x<<1 should be equivalent")
	}
	// x*2 ≢ x<<2: counterexample required.
	eq, model, st := solver.Equivalent(0, smt.Mul(x, smt.Const(2, 8)), smt.Shl(x, smt.Const(2, 8)))
	if eq || st != solver.Sat {
		t.Fatal("x*2 and x<<2 should differ")
	}
	v := model["x"]
	if (v*2)&0xFF == (v<<2)&0xFF {
		t.Fatalf("counterexample x=%d does not distinguish the terms", v)
	}
}

func TestSolvePreferNonZero(t *testing.T) {
	x := smt.Var("x", 8)
	y := smt.Var("y", 8)
	res := solver.SolvePreferNonZero(0, []string{"x", "y"},
		smt.Eq(smt.Add(x, y), smt.Const(10, 8)))
	if res.Status != solver.Sat {
		t.Fatalf("status %v, want sat", res.Status)
	}
	if res.Model["x"] == 0 || res.Model["y"] == 0 {
		t.Fatalf("model x=%d y=%d: non-zero preference not honored", res.Model["x"], res.Model["y"])
	}
	if (res.Model["x"]+res.Model["y"])&0xFF != 10 {
		t.Fatalf("model does not satisfy x+y=10")
	}
	// When zero is forced, the preference must yield gracefully.
	res = solver.SolvePreferNonZero(0, []string{"x"},
		smt.Eq(x, smt.Const(0, 8)))
	if res.Status != solver.Sat || res.Model["x"] != 0 {
		t.Fatalf("forced-zero case: %v %v", res.Status, res.Model)
	}
}

// randTerm builds a random 8-bit term over variables a, b.
func randTerm(r *rand.Rand, depth int) *smt.Term {
	if depth == 0 {
		switch r.Intn(3) {
		case 0:
			return smt.Var("a", 8)
		case 1:
			return smt.Var("b", 8)
		default:
			return smt.Const(r.Uint64(), 8)
		}
	}
	x := randTerm(r, depth-1)
	y := randTerm(r, depth-1)
	switch r.Intn(10) {
	case 0:
		return smt.Add(x, y)
	case 1:
		return smt.Sub(x, y)
	case 2:
		return smt.Mul(x, y)
	case 3:
		return smt.BVAnd(x, y)
	case 4:
		return smt.BVOr(x, y)
	case 5:
		return smt.BVXor(x, y)
	case 6:
		return smt.BVNot(x)
	case 7:
		return smt.Shl(x, y)
	case 8:
		return smt.Lshr(x, y)
	default:
		return smt.Ite(smt.Ult(x, y), x, y)
	}
}

// TestBlastAgainstEval cross-checks the bit-blaster against the term
// evaluator: for random terms t and the assertion t == const(eval(t)),
// the solver must find a model, and every model must evaluate correctly.
func TestBlastAgainstEval(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 150; i++ {
		term := randTerm(r, 3)
		a := smt.Assignment{"a": r.Uint64() & 0xFF, "b": r.Uint64() & 0xFF}
		want := smt.Eval(term, a)
		// The assignment itself is a witness, so this must be Sat.
		res := solver.Solve(0,
			smt.Eq(term, smt.Const(want, 8)),
			smt.Eq(smt.Var("a", 8), smt.Const(a["a"], 8)),
			smt.Eq(smt.Var("b", 8), smt.Const(a["b"], 8)))
		if res.Status != solver.Sat {
			t.Fatalf("iteration %d: term %s with a=%d b=%d evaluates to %d but solver says %v",
				i, term, a["a"], a["b"], want, res.Status)
		}
		if got := smt.Eval(term, res.Model); got != want {
			t.Fatalf("iteration %d: model does not evaluate to %d (got %d)", i, want, got)
		}
	}
}

// TestEvalFoldingSound property-tests the smart constructors: folding must
// not change semantics.
func TestEvalFoldingSound(t *testing.T) {
	f := func(av, bv uint64, shift uint8) bool {
		a := smt.Assignment{"a": av & 0xFF, "b": bv & 0xFF}
		x := smt.Var("a", 8)
		y := smt.Var("b", 8)
		sh := smt.Const(uint64(shift%12), 8)
		pairs := []struct {
			t    *smt.Term
			want uint64
		}{
			{smt.Add(x, smt.Const(0, 8)), a["a"]},
			{smt.Mul(x, smt.Const(1, 8)), a["a"]},
			{smt.BVXor(x, x), 0},
			{smt.BVAnd(x, smt.Const(0xFF, 8)), a["a"]},
			{smt.Shl(x, sh), shlP4(a["a"], uint64(shift%12), 8)},
			{smt.SatAdd(x, y), satAdd(a["a"], a["b"], 8)},
			{smt.SatSub(x, y), satSub(a["a"], a["b"])},
			{smt.Concat(smt.Extract(x, 7, 4), smt.Extract(x, 3, 0)), a["a"]},
		}
		for _, p := range pairs {
			if smt.Eval(p.t, a) != p.want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func shlP4(x, sh uint64, w int) uint64 {
	if sh >= uint64(w) {
		return 0
	}
	return (x << sh) & ((1 << uint(w)) - 1)
}

func satAdd(x, y uint64, w int) uint64 {
	max := uint64(1<<uint(w)) - 1
	if x+y > max {
		return max
	}
	return x + y
}

func satSub(x, y uint64) uint64 {
	if x < y {
		return 0
	}
	return x - y
}

// TestSolverModelsSatisfy property-tests: whenever the solver reports Sat
// for a random equation, its model must satisfy the equation under Eval.
func TestSolverModelsSatisfy(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 100; i++ {
		lhs := randTerm(r, 2)
		rhs := randTerm(r, 2)
		goal := smt.Eq(lhs, rhs)
		res := solver.Solve(0, goal)
		switch res.Status {
		case solver.Sat:
			if smt.Eval(goal, res.Model) != 1 {
				t.Fatalf("iteration %d: model %v does not satisfy %s", i, res.Model, goal)
			}
		case solver.Unsat:
			// Spot-check with random assignments: none may satisfy.
			for j := 0; j < 64; j++ {
				a := smt.Assignment{"a": r.Uint64() & 0xFF, "b": r.Uint64() & 0xFF}
				if smt.Eval(goal, a) == 1 {
					t.Fatalf("iteration %d: solver said unsat but %v satisfies %s", i, a, goal)
				}
			}
		}
	}
}
