package bugs

import (
	"strings"

	"gauntlet/internal/p4/ast"
	"gauntlet/internal/p4/printer"
)

// Mutators corrupt a pass's output program in place. Each models a class
// of real P4C defects (§7.2): dropped assignments, statements moved across
// exits, unguarded predication, wrong folding, stale copy propagation.

// mutateFirstStmt finds the first statement satisfying pred in any
// executable body and applies f to the containing statement list,
// returning the replacement list.
func mutateFirstStmt(prog *ast.Program, pred func(ast.Stmt) bool,
	f func(stmts []ast.Stmt, i int) []ast.Stmt) bool {

	done := false
	var walkBlock func(b *ast.BlockStmt)
	var walkStmt func(s ast.Stmt)
	walkStmt = func(s ast.Stmt) {
		if done || s == nil {
			return
		}
		switch s := s.(type) {
		case *ast.IfStmt:
			walkBlock(s.Then)
			walkStmt(s.Else)
		case *ast.BlockStmt:
			walkBlock(s)
		case *ast.SwitchStmt:
			for i := range s.Cases {
				walkBlock(s.Cases[i].Body)
			}
		}
	}
	walkBlock = func(b *ast.BlockStmt) {
		if b == nil || done {
			return
		}
		for i, s := range b.Stmts {
			if pred(s) {
				b.Stmts = f(b.Stmts, i)
				done = true
				return
			}
		}
		for _, s := range b.Stmts {
			walkStmt(s)
			if done {
				return
			}
		}
	}
	for _, d := range prog.Decls {
		if done {
			break
		}
		switch d := d.(type) {
		case *ast.ControlDecl:
			// The apply block first: after inlining, action declarations
			// may be dead copies whose mutation would be unobservable.
			walkBlock(d.Apply)
			for _, l := range d.Locals {
				if done {
					break
				}
				switch l := l.(type) {
				case *ast.ActionDecl:
					walkBlock(l.Body)
				case *ast.FunctionDecl:
					walkBlock(l.Body)
				}
			}
		case *ast.FunctionDecl:
			walkBlock(d.Body)
		case *ast.ActionDecl:
			walkBlock(d.Body)
		}
	}
	return done
}

func removeAt(stmts []ast.Stmt, i int) []ast.Stmt {
	return append(stmts[:i:i], stmts[i+1:]...)
}

// mutDropSliceAssign deletes the first assignment whose target is a bit
// slice — the Fig. 5d defect ("the compiler assumed that the entire
// variable would be assigned and removed the assignment").
func mutDropSliceAssign(prog *ast.Program) {
	mutateFirstStmt(prog, func(s ast.Stmt) bool {
		a, ok := s.(*ast.AssignStmt)
		if !ok {
			return false
		}
		_, slice := a.LHS.(*ast.SliceExpr)
		return slice
	}, removeAt)
}

// mutDropCopyOut deletes the first copy-out-shaped assignment
// "lv = tmp_*" produced by the inliner.
func mutDropCopyOut(prog *ast.Program) {
	mutateFirstStmt(prog, func(s ast.Stmt) bool {
		a, ok := s.(*ast.AssignStmt)
		if !ok {
			return false
		}
		id, ok := a.RHS.(*ast.Ident)
		return ok && strings.HasPrefix(id.Name, "tmp_")
	}, removeAt)
}

// mutExitBeforeCopyOut hoists the re-raised exit check above the
// preceding copy-out assignments — the Fig. 5f defect (statements moved
// after exit "because the assumption was that exit ignores
// copy-in/copy-out").
func mutExitBeforeCopyOut(prog *ast.Program) {
	mutateFirstStmt(prog, func(s ast.Stmt) bool {
		iff, ok := s.(*ast.IfStmt)
		if !ok || len(iff.Then.Stmts) != 1 {
			return false
		}
		if _, isExit := iff.Then.Stmts[0].(*ast.ExitStmt); !isExit {
			return false
		}
		id, ok := iff.Cond.(*ast.Ident)
		return ok && strings.HasPrefix(id.Name, "tmp_exited")
	}, func(stmts []ast.Stmt, i int) []ast.Stmt {
		// Move the exit check before every preceding copy-out assignment.
		j := i
		for j > 0 {
			if a, ok := stmts[j-1].(*ast.AssignStmt); ok {
				if id, ok := a.RHS.(*ast.Ident); ok && strings.HasPrefix(id.Name, "tmp_") {
					j--
					continue
				}
			}
			break
		}
		if j == i {
			return stmts
		}
		moved := stmts[i]
		copy(stmts[j+1:i+1], stmts[j:i])
		stmts[j] = moved
		return stmts
	})
}

// mutUnguardPredicationNth rewrites the nth "x = pred ? e : x" into the
// unconditional "x = e" — the broken Predication improvement (§7.2).
// n = 1 unguards the then-branch assignment; n = 2 the else-branch one
// (the "else predicate after then writes" regression shape).
func mutUnguardPredicationNth(n int) func(*ast.Program) {
	return func(prog *ast.Program) {
		seen := 0
		mutateFirstStmt(prog, func(s ast.Stmt) bool {
			a, ok := s.(*ast.AssignStmt)
			if !ok {
				return false
			}
			m, ok := a.RHS.(*ast.MuxExpr)
			if !ok {
				return false
			}
			if printer.PrintExpr(m.Else) != printer.PrintExpr(a.LHS) {
				return false
			}
			seen++
			return seen == n
		}, func(stmts []ast.Stmt, i int) []ast.Stmt {
			a := stmts[i].(*ast.AssignStmt)
			a.RHS = a.RHS.(*ast.MuxExpr).Then
			return stmts
		})
	}
}

// mutUnguardPredication is the n=1 instance.
func mutUnguardPredication(prog *ast.Program) { mutUnguardPredicationNth(1)(prog) }

// mutNegateFirstIf negates the first if condition in an executable body.
func mutNegateFirstIf(prog *ast.Program) {
	mutateFirstStmt(prog, func(s ast.Stmt) bool {
		_, ok := s.(*ast.IfStmt)
		return ok
	}, func(stmts []ast.Stmt, i int) []ast.Stmt {
		iff := stmts[i].(*ast.IfStmt)
		iff.Cond = &ast.UnaryExpr{Op: ast.OpLNot, X: iff.Cond}
		return stmts
	})
}

// mutBinOp replaces the first occurrence of one binary operator with
// another (saturating-to-wrapping folds, shift-direction slips).
func mutBinOp(from, to ast.BinaryOp) func(*ast.Program) {
	return func(prog *ast.Program) {
		done := false
		rw := func(e ast.Expr) ast.Expr {
			if done {
				return e
			}
			if b, ok := e.(*ast.BinaryExpr); ok && b.Op == from {
				done = true
				b.Op = to
			}
			return e
		}
		for _, d := range prog.Decls {
			if done {
				return
			}
			switch d := d.(type) {
			case *ast.ControlDecl:
				ast.RewriteControl(d, nil, rw)
			case *ast.FunctionDecl:
				d.Body = ast.RewriteBlock(d.Body, nil, rw)
			case *ast.ActionDecl:
				d.Body = ast.RewriteBlock(d.Body, nil, rw)
			}
		}
	}
}

// mutLiteralOffByOne adds one to the first sized literal appearing on an
// assignment right-hand side.
func mutLiteralOffByOne(prog *ast.Program) {
	mutateFirstStmt(prog, func(s ast.Stmt) bool {
		a, ok := s.(*ast.AssignStmt)
		if !ok {
			return false
		}
		found := false
		ast.Inspect(a.RHS, func(e ast.Expr) bool {
			if l, ok := e.(*ast.IntLit); ok && l.Width > 0 {
				found = true
				return false
			}
			return true
		})
		return found
	}, func(stmts []ast.Stmt, i int) []ast.Stmt {
		a := stmts[i].(*ast.AssignStmt)
		done := false
		a.RHS = ast.RewriteExpr(a.RHS, func(e ast.Expr) ast.Expr {
			if done {
				return e
			}
			if l, ok := e.(*ast.IntLit); ok && l.Width > 0 {
				done = true
				return ast.Num(l.Width, l.Val+1)
			}
			return e
		})
		return stmts
	})
}

// mutDropValidityCall removes the first setValid/setInvalid call — the
// Fig. 5e family (validity state lost by an optimization).
func mutDropValidityCall(prog *ast.Program) {
	mutateFirstStmt(prog, func(s ast.Stmt) bool {
		c, ok := s.(*ast.CallStmt)
		if !ok {
			return false
		}
		m, ok := c.Call.Func.(*ast.MemberExpr)
		return ok && (m.Member == "setValid" || m.Member == "setInvalid")
	}, removeAt)
}

// mutDropFirstAssignTo removes the first whole-variable assignment whose
// target root matches the prefix (def-use over-cleaning, Fig. 5a family).
func mutDropFirstAssignTo(rootPrefix string) func(*ast.Program) {
	return func(prog *ast.Program) {
		mutateFirstStmt(prog, func(s ast.Stmt) bool {
			a, ok := s.(*ast.AssignStmt)
			if !ok {
				return false
			}
			root := ast.RootIdent(a.LHS)
			return root != nil && strings.HasPrefix(root.Name, rootPrefix)
		}, removeAt)
	}
}

// mutZeroSliceAssign replaces the RHS of the first slice assignment with
// zero (wrong strength reduction around slices, the Fig. 5c family).
func mutZeroSliceAssign(prog *ast.Program) {
	mutateFirstStmt(prog, func(s ast.Stmt) bool {
		a, ok := s.(*ast.AssignStmt)
		if !ok {
			return false
		}
		_, slice := a.LHS.(*ast.SliceExpr)
		return slice
	}, func(stmts []ast.Stmt, i int) []ast.Stmt {
		a := stmts[i].(*ast.AssignStmt)
		sl := a.LHS.(*ast.SliceExpr)
		a.RHS = ast.Num(sl.Hi-sl.Lo+1, 0)
		return stmts
	})
}

// mutRenameToKeyword renames the first block-local declaration to a
// reserved word: the printed program no longer parses — the "invalid
// transformation" symptom (§7.2: emitted intermediate P4 that fails to
// reparse).
func mutRenameToKeyword(keyword string) func(*ast.Program) {
	return func(prog *ast.Program) {
		mutateFirstStmt(prog, func(s ast.Stmt) bool {
			_, ok := s.(*ast.VarDeclStmt)
			return ok
		}, func(stmts []ast.Stmt, i int) []ast.Stmt {
			d := stmts[i].(*ast.VarDeclStmt)
			old := d.Name
			d.Name = keyword
			for _, rest := range stmts[i+1:] {
				ast.InspectStmt(rest, nil, func(e ast.Expr) bool {
					if id, ok := e.(*ast.Ident); ok && id.Name == old {
						id.Name = keyword
					}
					return true
				})
			}
			return stmts
		})
	}
}

// mutDropSemicolonStmt duplicates a declaration, producing a duplicate-name
// emit that fails re-checking (another invalid-transformation flavor).
func mutDuplicateDecl(prog *ast.Program) {
	mutateFirstStmt(prog, func(s ast.Stmt) bool {
		_, ok := s.(*ast.VarDeclStmt)
		return ok
	}, func(stmts []ast.Stmt, i int) []ast.Stmt {
		d := stmts[i].(*ast.VarDeclStmt)
		dup := &ast.VarDeclStmt{Name: d.Name, Type: ast.CloneType(d.Type), Init: ast.CloneExpr(d.Init)}
		out := append(stmts[:i+1:i+1], dup)
		return append(out, stmts[i+1:]...)
	})
}

// mutWidenLiteral re-sizes the first sized literal on an assignment RHS to
// a wider width: the emitted program fails re-type-checking.
func mutWidenLiteral(prog *ast.Program) {
	mutateFirstStmt(prog, func(s ast.Stmt) bool {
		a, ok := s.(*ast.AssignStmt)
		if !ok {
			return false
		}
		l, isLit := a.RHS.(*ast.IntLit)
		return isLit && l.Width > 0 && l.Width < 60
	}, func(stmts []ast.Stmt, i int) []ast.Stmt {
		a := stmts[i].(*ast.AssignStmt)
		l := a.RHS.(*ast.IntLit)
		a.RHS = &ast.IntLit{Width: l.Width + 4, Val: l.Val}
		return stmts
	})
}

// mutSwapAdjacentAssigns swaps the first pair of adjacent assignments
// sharing a root variable (side-effect-ordering defects).
func mutSwapAdjacentAssigns(prog *ast.Program) {
	swapped := false
	var walk func(b *ast.BlockStmt)
	walk = func(b *ast.BlockStmt) {
		if b == nil || swapped {
			return
		}
		for i := 0; i+1 < len(b.Stmts); i++ {
			a1, ok1 := b.Stmts[i].(*ast.AssignStmt)
			a2, ok2 := b.Stmts[i+1].(*ast.AssignStmt)
			if !ok1 || !ok2 {
				continue
			}
			// Only a genuine read-after-write (or write-after-write to
			// the same storage) makes the swap observable.
			lhs1 := printer.PrintExpr(a1.LHS)
			dependent := strings.Contains(printer.PrintExpr(a2.RHS), lhs1) ||
				printer.PrintExpr(a2.LHS) == lhs1
			if dependent {
				b.Stmts[i], b.Stmts[i+1] = b.Stmts[i+1], b.Stmts[i]
				swapped = true
				return
			}
		}
		for _, s := range b.Stmts {
			switch s := s.(type) {
			case *ast.IfStmt:
				walk(s.Then)
				if blk, ok := s.Else.(*ast.BlockStmt); ok {
					walk(blk)
				}
			case *ast.BlockStmt:
				walk(s)
			}
			if swapped {
				return
			}
		}
	}
	for _, c := range prog.Controls() {
		for _, a := range c.Actions() {
			walk(a.Body)
			if swapped {
				return
			}
		}
		walk(c.Apply)
		if swapped {
			return
		}
	}
}
