// Package bugs is the seeded-defect registry standing in for the 4 months
// of real compiler history the paper mined. It defines the 91 filed / 78
// confirmed / 44 fixed bugs of Table 2 — each as a concrete faulty
// behaviour (an assertion panic or a semantics-changing mutation) wired
// into a specific pass of a specific platform, with the paper's location
// (Table 3), root-cause (§7.2) and merge-history (§7.1) metadata.
//
// Activating a bug instruments the pass pipeline; Gauntlet then hunts it
// with the technique matching the platform: crash capture and translation
// validation for the open P4C/BMv2 side, symbolic-execution packet tests
// for the black-box Tofino side.
package bugs

import (
	"fmt"

	"gauntlet/internal/compiler"
	"gauntlet/internal/p4/ast"
)

// Kind classifies a bug as in the paper: crash (abnormal termination) or
// semantic (miscompilation).
type Kind int

// Bug kinds. InvalidXform marks defects whose symptom is an emitted
// program that no longer parses or type-checks — the paper tracked 4 such
// bugs but did not count them in the 78 (§7.2 "invalid transformations").
const (
	Crash Kind = iota
	Semantic
	InvalidXform
)

// String renders the kind.
func (k Kind) String() string {
	switch k {
	case Crash:
		return "crash"
	case Semantic:
		return "semantic"
	default:
		return "invalid-transform"
	}
}

// Platform is where the bug lives (Table 2's columns).
type Platform int

// Platforms.
const (
	P4C Platform = iota
	BMv2
	Tofino
)

// String renders the platform.
func (p Platform) String() string {
	switch p {
	case P4C:
		return "P4C"
	case BMv2:
		return "BMv2"
	default:
		return "Tofino"
	}
}

// Status is the bug's lifecycle state (Table 2's rows). Fixed implies
// Confirmed implies Filed.
type Status int

// Statuses.
const (
	Filed Status = iota
	Confirmed
	Fixed
)

// String renders the status.
func (s Status) String() string {
	switch s {
	case Filed:
		return "filed"
	case Confirmed:
		return "confirmed"
	default:
		return "fixed"
	}
}

// Bug is one seeded defect.
type Bug struct {
	// ID is the registry key, e.g. "P4C-C-03".
	ID       string
	Platform Platform
	Kind     Kind
	// Pass names the pass the defect patches (Tofino back-end passes
	// carry the "Tofino" prefix).
	Pass string
	// RootCause buckets the defect for the §7.2 analysis:
	// "type checker", "copy-in/copy-out", "predication", "visitor",
	// "folding", "def-use", "side-effect ordering", "backend".
	RootCause string
	Status    Status
	// MergeWeek is non-zero when the defect models a regression merged
	// during the campaign (§7.1: 16 of 46 P4C bugs).
	MergeWeek int
	// SpecChange marks bugs whose report led to a P4 specification
	// change (6 across the campaign).
	SpecChange bool
	// Derivative marks bugs found via handcrafted programs seeded by
	// earlier Gauntlet reports rather than directly by generation (§7.1).
	Derivative bool
	// DupOf points at the confirmed bug this filed-only report
	// duplicates ("" for original reports).
	DupOf       string
	Description string

	// Trigger reports whether a program tickles the defect.
	Trigger func(*ast.Program) bool
	// PanicMsg is the crash fingerprint (Crash bugs).
	PanicMsg string
	// Mutate corrupts the pass output (Semantic bugs); it runs only when
	// Trigger holds and must change observable semantics on the witness.
	Mutate func(*ast.Program)
	// Witness is a handwritten program guaranteed to trigger the defect.
	Witness string
}

// buggyPass wraps a reference pass with a seeded defect.
type buggyPass struct {
	inner compiler.Pass
	name  string
	bug   *Bug
}

// Name preserves the wrapped pass's name: the defect hides inside it.
func (p buggyPass) Name() string { return p.name }

// Run executes the reference pass, then the defect. Crash triggers fire
// on the pass *input* (real passes crash while consuming a construct,
// possibly transforming it away); semantic mutations pattern-match the
// pass *output*.
func (p buggyPass) Run(prog *ast.Program) (*ast.Program, error) {
	if p.bug.Kind == Crash && (p.bug.Trigger == nil || p.bug.Trigger(prog)) {
		panic(p.bug.PanicMsg)
	}
	out, err := p.inner.Run(prog)
	if err != nil {
		return out, err
	}
	if (p.bug.Kind == Semantic || p.bug.Kind == InvalidXform) &&
		(p.bug.Trigger == nil || p.bug.Trigger(out)) {
		p.bug.Mutate(out)
	}
	return out, nil
}

// Instrument wires active bugs into a pass pipeline by name. Bugs whose
// pass is absent are ignored (e.g. Tofino back-end bugs in a P4C-only
// pipeline).
func Instrument(passes []compiler.Pass, active []*Bug) []compiler.Pass {
	out := make([]compiler.Pass, len(passes))
	for i, p := range passes {
		out[i] = p
		for _, b := range active {
			if b.Pass == p.Name() {
				out[i] = buggyPass{inner: out[i], name: p.Name(), bug: b}
			}
		}
	}
	return out
}

// Registry is the full bug population.
type Registry struct {
	Bugs []*Bug
	byID map[string]*Bug
}

// ByID looks a bug up.
func (r *Registry) ByID(id string) *Bug { return r.byID[id] }

// Select filters bugs by predicate.
func (r *Registry) Select(f func(*Bug) bool) []*Bug {
	var out []*Bug
	for _, b := range r.Bugs {
		if f(b) {
			out = append(out, b)
		}
	}
	return out
}

// Confirmed returns the confirmed crash and semantic bugs: the paper's
// 78. Invalid-transformation bugs are tracked but not counted (§7.2).
func (r *Registry) Confirmed() []*Bug {
	return r.Select(func(b *Bug) bool {
		return b.Status >= Confirmed && b.Kind != InvalidXform
	})
}

// InvalidTransforms returns the tracked-but-uncounted emit bugs.
func (r *Registry) InvalidTransforms() []*Bug {
	return r.Select(func(b *Bug) bool { return b.Kind == InvalidXform })
}

// Load builds the registry. It panics on malformed definitions (checked
// by tests).
func Load() *Registry {
	r := &Registry{byID: map[string]*Bug{}}
	add := func(bs []*Bug) {
		for _, b := range bs {
			if _, dup := r.byID[b.ID]; dup {
				panic("bugs: duplicate ID " + b.ID)
			}
			r.byID[b.ID] = b
			r.Bugs = append(r.Bugs, b)
		}
	}
	add(p4cBugs())
	add(backendBugs())
	return r
}

// CountTable2 returns the Table 2 cells: filed/confirmed/fixed ×
// crash/semantic × platform.
func (r *Registry) CountTable2() map[string]int {
	c := map[string]int{}
	for _, b := range r.Bugs {
		if b.Kind == InvalidXform {
			continue
		}
		key := func(st string) string {
			return fmt.Sprintf("%s/%s/%s", b.Kind, st, b.Platform)
		}
		c[key("filed")]++
		if b.Status >= Confirmed {
			c[key("confirmed")]++
		}
		if b.Status >= Fixed {
			c[key("fixed")]++
		}
	}
	return c
}
