package bugs

import (
	"strings"

	"gauntlet/internal/p4/ast"
	"gauntlet/internal/p4/printer"
)

// scanExprs walks every expression in every executable body.
func scanExprs(prog *ast.Program, f func(ast.Expr) bool) bool {
	found := false
	visit := func(e ast.Expr) bool {
		if f(e) {
			found = true
			return false
		}
		return true
	}
	scanStmts(prog, func(s ast.Stmt) bool {
		ast.InspectStmt(s, nil, visit)
		return found
	})
	return found
}

// scanStmts walks every top-level statement of every body; stop when f
// returns true.
func scanStmts(prog *ast.Program, f func(ast.Stmt) bool) bool {
	done := false
	walk := func(b *ast.BlockStmt) {
		if b == nil || done {
			return
		}
		ast.InspectStmt(b, func(s ast.Stmt) bool {
			if f(s) {
				done = true
			}
			return !done
		}, nil)
	}
	for _, d := range prog.Decls {
		switch d := d.(type) {
		case *ast.ControlDecl:
			for _, l := range d.Locals {
				switch l := l.(type) {
				case *ast.ActionDecl:
					walk(l.Body)
				case *ast.FunctionDecl:
					walk(l.Body)
				}
			}
			walk(d.Apply)
		case *ast.FunctionDecl:
			walk(d.Body)
		case *ast.ActionDecl:
			walk(d.Body)
		case *ast.ParserDecl:
			for i := range d.States {
				walk(&ast.BlockStmt{Stmts: d.States[i].Stmts})
			}
		}
	}
	return done
}

// hasBinOp triggers on a binary operator anywhere in the program.
func hasBinOp(op ast.BinaryOp) func(*ast.Program) bool {
	return func(p *ast.Program) bool {
		return scanExprs(p, func(e ast.Expr) bool {
			b, ok := e.(*ast.BinaryExpr)
			return ok && b.Op == op
		})
	}
}

// hasNonConstShift triggers on a shift whose amount is not a literal —
// the Fig. 5b family (shifts of statically unknown shape).
func hasNonConstShift(p *ast.Program) bool {
	return scanExprs(p, func(e ast.Expr) bool {
		b, ok := e.(*ast.BinaryExpr)
		if !ok || (b.Op != ast.OpShl && b.Op != ast.OpShr) {
			return false
		}
		_, lit := b.Y.(*ast.IntLit)
		return !lit
	})
}

// hasMux triggers on a conditional expression.
func hasMux(p *ast.Program) bool {
	return scanExprs(p, func(e ast.Expr) bool {
		_, ok := e.(*ast.MuxExpr)
		return ok
	})
}

// hasSliceExpr triggers on a bit slice read.
func hasSliceExpr(p *ast.Program) bool {
	return scanExprs(p, func(e ast.Expr) bool {
		_, ok := e.(*ast.SliceExpr)
		return ok
	})
}

// hasSliceAssign triggers on a slice used as an assignment target — the
// Fig. 5d family.
func hasSliceAssign(p *ast.Program) bool {
	return scanStmts(p, func(s ast.Stmt) bool {
		a, ok := s.(*ast.AssignStmt)
		if !ok {
			return false
		}
		_, slice := a.LHS.(*ast.SliceExpr)
		return slice
	})
}

// hasCastBool triggers on bool↔bit casts.
func hasCastBool(p *ast.Program) bool {
	return scanExprs(p, func(e ast.Expr) bool {
		c, ok := e.(*ast.CastExpr)
		if !ok {
			return false
		}
		if _, toBool := c.To.(*ast.BoolType); toBool {
			return true
		}
		// bit cast of a boolean operand.
		switch c.X.(type) {
		case *ast.BoolLit:
			return true
		case *ast.BinaryExpr:
			b := c.X.(*ast.BinaryExpr)
			return b.Op.IsComparison() || b.Op.IsLogical()
		}
		return false
	})
}

// hasValidityCall triggers on the named header validity method.
func hasValidityCall(method string) func(*ast.Program) bool {
	return func(p *ast.Program) bool {
		return scanExprs(p, func(e ast.Expr) bool {
			c, ok := e.(*ast.CallExpr)
			if !ok {
				return false
			}
			m, ok := c.Func.(*ast.MemberExpr)
			return ok && m.Member == method
		})
	}
}

// hasExitInAction triggers on an exit statement inside an action body —
// the Fig. 5f family.
func hasExitInAction(p *ast.Program) bool {
	for _, c := range p.Controls() {
		for _, a := range c.Actions() {
			found := false
			ast.InspectStmt(a.Body, func(s ast.Stmt) bool {
				if _, ok := s.(*ast.ExitStmt); ok {
					found = true
				}
				return !found
			}, nil)
			if found {
				return true
			}
		}
	}
	return false
}

// hasSwitch triggers on a switch statement.
func hasSwitch(p *ast.Program) bool {
	return scanStmts(p, func(s ast.Stmt) bool {
		_, ok := s.(*ast.SwitchStmt)
		return ok
	})
}

// hasFunctionWithInOutReturn triggers on the Fig. 5a shape: a function
// with an inout parameter containing a return statement.
func hasFunctionWithInOutReturn(p *ast.Program) bool {
	check := func(f *ast.FunctionDecl) bool {
		hasInOut := false
		for _, prm := range f.Params {
			if prm.Dir == ast.DirInOut {
				hasInOut = true
			}
		}
		if !hasInOut {
			return false
		}
		found := false
		ast.InspectStmt(f.Body, func(s ast.Stmt) bool {
			if _, ok := s.(*ast.ReturnStmt); ok {
				found = true
			}
			return !found
		}, nil)
		return found
	}
	for _, d := range p.Decls {
		switch d := d.(type) {
		case *ast.FunctionDecl:
			if check(d) {
				return true
			}
		case *ast.ControlDecl:
			for _, l := range d.Locals {
				if f, ok := l.(*ast.FunctionDecl); ok && check(f) {
					return true
				}
			}
		}
	}
	return false
}

// hasActionWithDirParams triggers on direct-call actions with inout/out
// parameters.
func hasActionWithDirParams(p *ast.Program) bool {
	for _, c := range p.Controls() {
		for _, a := range c.Actions() {
			for _, prm := range a.Params {
				if prm.Dir == ast.DirInOut || prm.Dir == ast.DirOut {
					return true
				}
			}
		}
	}
	return false
}

// hasTableWithKeys triggers on a table with at least n keys.
func hasTableWithKeys(n int) func(*ast.Program) bool {
	return func(p *ast.Program) bool {
		for _, c := range p.Controls() {
			for _, t := range c.Tables() {
				if len(t.Keys) >= n {
					return true
				}
			}
		}
		return false
	}
}

// hasTableWithActions triggers on a table listing at least n actions.
func hasTableWithActions(n int) func(*ast.Program) bool {
	return func(p *ast.Program) bool {
		for _, c := range p.Controls() {
			for _, t := range c.Tables() {
				if len(t.Actions) >= n {
					return true
				}
			}
		}
		return false
	}
}

// hasWidthOver triggers on any bit type wider than w.
func hasWidthOver(w int) func(*ast.Program) bool {
	return func(p *ast.Program) bool {
		found := false
		var checkType func(t ast.Type)
		checkType = func(t ast.Type) {
			switch t := t.(type) {
			case *ast.BitType:
				if t.Width > w {
					found = true
				}
			case *ast.HeaderType:
				for _, f := range t.Fields {
					checkType(f.Type)
				}
			case *ast.StructType:
				for _, f := range t.Fields {
					checkType(f.Type)
				}
			}
		}
		for _, d := range p.Decls {
			if h, ok := d.(*ast.HeaderDecl); ok {
				for _, f := range h.Fields {
					checkType(f.Type)
				}
			}
		}
		return found
	}
}

// hasUninitLocal triggers on an uninitialized local declaration —
// undefined-value territory (Fig. 5e discussions).
func hasUninitLocal(p *ast.Program) bool {
	return scanStmts(p, func(s ast.Stmt) bool {
		d, ok := s.(*ast.VarDeclStmt)
		return ok && d.Init == nil
	})
}

// hasMultiStateParser triggers on parsers with select transitions.
func hasMultiStateParser(p *ast.Program) bool {
	for _, d := range p.Decls {
		if pd, ok := d.(*ast.ParserDecl); ok && len(pd.States) > 1 {
			return true
		}
	}
	return false
}

// hasUnaryOp triggers on the given unary operator.
func hasUnaryOp(op ast.UnaryOp) func(*ast.Program) bool {
	return func(p *ast.Program) bool {
		return scanExprs(p, func(e ast.Expr) bool {
			u, ok := e.(*ast.UnaryExpr)
			return ok && u.Op == op
		})
	}
}

// hasPredicatedAssign triggers on the predication output shape
// "x = pred ? e : x" (used by the predication defects).
func hasPredicatedAssign(p *ast.Program) bool {
	return scanStmts(p, func(s ast.Stmt) bool {
		a, ok := s.(*ast.AssignStmt)
		if !ok {
			return false
		}
		m, ok := a.RHS.(*ast.MuxExpr)
		if !ok {
			return false
		}
		return printer.PrintExpr(m.Else) == printer.PrintExpr(a.LHS)
	})
}

// hasCopyOutAssign triggers on inliner copy-out shape "lv = tmp_*".
func hasCopyOutAssign(p *ast.Program) bool {
	return scanStmts(p, func(s ast.Stmt) bool {
		a, ok := s.(*ast.AssignStmt)
		if !ok {
			return false
		}
		id, ok := a.RHS.(*ast.Ident)
		return ok && strings.HasPrefix(id.Name, "tmp_")
	})
}

// always triggers unconditionally.
func always(*ast.Program) bool { return true }

// hasUninitLocalOrAny is the invalid-transform trigger: any program with a
// block-local declaration (the mutators need one to corrupt).
func hasUninitLocalOrAny(p *ast.Program) bool {
	return scanStmts(p, func(s ast.Stmt) bool {
		_, ok := s.(*ast.VarDeclStmt)
		return ok
	})
}

// both combines triggers conjunctively.
func both(a, b func(*ast.Program) bool) func(*ast.Program) bool {
	return func(p *ast.Program) bool { return a(p) && b(p) }
}
