package bugs

import "fmt"

// witness wraps an ingress body (and optional extra control locals) in
// the standard 4-block v1model program shape all targets understand.
// Witness programs are the handcrafted reproducers attached to each bug
// (the paper attaches a reduced program to every report, §8).
func witness(locals, apply string) string {
	return fmt.Sprintf(`
header Hdr1 {
    bit<8> f1;
    bit<8> f2;
    bit<16> f3;
}
struct Headers {
    Hdr1 h1;
}
struct standard_metadata_t {
    bit<9> ingress_port;
    bit<9> egress_spec;
    bit<1> drop_flag;
    bit<16> user_meta;
}
parser p(packet pkt, out Headers hdr, inout standard_metadata_t sm) {
    state start {
        pkt.extract(hdr.h1);
        transition accept;
    }
}
control ingress(inout Headers hdr, inout standard_metadata_t sm) {
%s
    apply {
%s
    }
}
control egress(inout Headers hdr, inout standard_metadata_t sm) {
    apply {
    }
}
control dep(packet pkt, in Headers hdr) {
    apply {
        pkt.emit(hdr.h1);
    }
}
V1Switch(p, ingress, egress, dep) main;
`, locals, apply)
}

// Witness bodies per trigger family. Each is tiny and deterministic so a
// seeded bug's detection is reproducible.
var witnessPrograms = map[string]string{
	"shl-nonconst": witness("", `
        hdr.h1.f1 = hdr.h1.f1 << hdr.h1.f2;`),
	"shr-nonconst": witness("", `
        hdr.h1.f1 = hdr.h1.f1 >> hdr.h1.f2;`),
	"concat": witness("", `
        hdr.h1.f3 = hdr.h1.f1 ++ hdr.h1.f2;`),
	"mux": witness("", `
        hdr.h1.f1 = hdr.h1.f1 > 8w7 ? hdr.h1.f2 : hdr.h1.f1;`),
	"slice-read": witness("", `
        hdr.h1.f1 = (bit<8>) hdr.h1.f3[11:4];`),
	"slice-assign": witness("", `
        hdr.h1.f3[7:2] = hdr.h1.f1[5:0];`),
	"sat-add": witness("", `
        hdr.h1.f1 = hdr.h1.f1 |+| 8w255;`),
	"sat-sub": witness("", `
        hdr.h1.f1 = 8w0 |-| hdr.h1.f1;`),
	"cast-bool": witness("", `
        hdr.h1.f1 = (bit<8>) (hdr.h1.f1 == hdr.h1.f2);`),
	"is-valid": witness("", `
        if (hdr.h1.isValid()) {
            hdr.h1.f1 = 8w1;
        }`),
	"set-valid": witness("", `
        hdr.h1.setValid();
        hdr.h1.f1 = 8w5;`),
	"set-invalid": witness("", `
        hdr.h1.f1 = 8w5;
        hdr.h1.setInvalid();`),
	"switch": witness("", `
        switch (hdr.h1.f1) {
            8w1: { hdr.h1.f2 = 8w10; }
            8w2: { hdr.h1.f2 = 8w20; }
            default: { hdr.h1.f2 = 8w0; }
        }`),
	"exit-action": witness(`
    action a(inout bit<16> val) {
        val = 16w3;
        exit;
    }`, `
        a(hdr.h1.f3);
        hdr.h1.f3 = 16w99;`),
	"action-dir-params": witness(`
    action a(inout bit<7> val) {
        hdr.h1.f1[0:0] = 1w0;
        val = val + 7w1;
    }`, `
        a(hdr.h1.f1[7:1]);`),
	"func-inout-return": witness(`
    bit<8> test(inout bit<8> x) {
        x = x + 8w1;
        if (x > 8w128) {
            return 8w255;
        }
        return x;
    }`, `
        bit<8> r = test(hdr.h1.f1);
        hdr.h1.f2 = r + hdr.h1.f2;`),
	"table-multi-key": witness(`
    action setb() {
        hdr.h1.f2 = 8w42;
    }
    table t {
        key = {
            hdr.h1.f1 : exact;
            hdr.h1.f2 : exact;
        }
        actions = {
            setb;
            NoAction;
        }
        default_action = NoAction();
    }`, `
        t.apply();`),
	"table-multi-action": witness(`
    action a1() {
        hdr.h1.f1 = 8w1;
    }
    action a2(bit<8> v) {
        hdr.h1.f2 = v;
    }
    action a3() {
        hdr.h1.f1 = hdr.h1.f1 + 8w1;
    }
    table t {
        key = {
            hdr.h1.f1 : exact;
        }
        actions = {
            a1;
            a2;
            a3;
            NoAction;
        }
        default_action = a3();
    }`, `
        t.apply();`),
	"wide-arith": witness("", `
        hdr.h1.f3 = hdr.h1.f3 * 16w3 + (hdr.h1.f1 ++ hdr.h1.f2);`),
	"neg": witness("", `
        hdr.h1.f1 = -hdr.h1.f1;`),
	"bitnot": witness("", `
        hdr.h1.f1 = ~hdr.h1.f1;`),
	"uninit-local": witness("", `
        bit<8> u;
        hdr.h1.f1 = hdr.h1.f1 + u;`),
	"if-else": witness("", `
        if (hdr.h1.f1 < hdr.h1.f2) {
            hdr.h1.f1 = hdr.h1.f2 - hdr.h1.f1;
        } else {
            hdr.h1.f2 = 8w1;
        }`),
	"predication-shape": witness(`
    action a() {
        if (hdr.h1.f1 == 8w1) {
            hdr.h1.f1 = 8w2;
        } else {
            hdr.h1.f3 = 16w3;
        }
    }
    table t {
        key = {
            hdr.h1.f1 : exact;
        }
        actions = {
            a;
            NoAction;
        }
        default_action = a();
    }`, `
        t.apply();`),
	"copy-prop-chain": witness("", `
        bit<8> a1 = hdr.h1.f1;
        bit<8> b1 = a1;
        hdr.h1.f3[7:0] = b1;
        a1 = 8w9;
        hdr.h1.f1 = a1 + b1;
        hdr.h1.f2 = hdr.h1.f1;`),
	"dead-store-chain": witness("", `
        bit<8> t1 = 8w3;
        t1 = hdr.h1.f1;
        hdr.h1.f1 = t1 + 8w1;
        hdr.h1.f2 = hdr.h1.f1;
        hdr.h1.f3[7:0] = t1;`),
	"const-assign": witness("", `
        bit<8> cv = 8w2 + 8w3;
        hdr.h1.f1 = cv + 8w0;
        hdr.h1.f2 = 8w2 + 8w3;`),
	"fold-chain": witness("", `
        hdr.h1.f1 = (hdr.h1.f1 * 8w2 + 8w0) |+| 8w1;
        hdr.h1.f2 = hdr.h1.f2 << 8w1;`),
	"logical-ops": witness("", `
        if (hdr.h1.f1 == 8w1 && (hdr.h1.f2 != 8w0 || hdr.h1.f3 == 16w7)) {
            hdr.h1.f2 = 8w77;
        }`),
}

// witnessTwoHeaders is the conditionally-parsed-header shape: h2 is only
// extracted for one ethertype, so validity-manipulating defects have
// observable packet effects on the other paths.
const witnessTwoHeaders = `
header Hdr1 {
    bit<8> f1;
    bit<8> f2;
    bit<16> f3;
}
header Hdr2 {
    bit<8> g1;
}
struct Headers {
    Hdr1 h1;
    Hdr2 h2;
}
struct standard_metadata_t {
    bit<9> ingress_port;
    bit<9> egress_spec;
    bit<1> drop_flag;
    bit<16> user_meta;
}
parser p(packet pkt, out Headers hdr, inout standard_metadata_t sm) {
    state start {
        pkt.extract(hdr.h1);
        transition select(hdr.h1.f3) {
            16w0x800 : parse_h2;
            default : accept;
        }
    }
    state parse_h2 {
        pkt.extract(hdr.h2);
        transition accept;
    }
}
control ingress(inout Headers hdr, inout standard_metadata_t sm) {
    apply {
        if (!hdr.h2.isValid()) {
            hdr.h2.setValid();
            hdr.h2.g1 = hdr.h1.f1;
        }
    }
}
control egress(inout Headers hdr, inout standard_metadata_t sm) {
    apply {
    }
}
control dep(packet pkt, in Headers hdr) {
    apply {
        pkt.emit(hdr.h1);
        pkt.emit(hdr.h2);
    }
}
V1Switch(p, ingress, egress, dep) main;
`

func init() {
	witnessPrograms["set-valid-cond"] = witnessTwoHeaders
}

// witnessFor returns the witness source for a trigger family.
func witnessFor(family string) string {
	w, ok := witnessPrograms[family]
	if !ok {
		panic("bugs: no witness for family " + family)
	}
	return w
}
