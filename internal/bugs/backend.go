package bugs

import (
	"fmt"

	"gauntlet/internal/p4/ast"
)

// backendBugs defines the back-end population of Tables 2 and 3: BMv2
// (4 filed = 2 crash + 2 semantic, all confirmed and fixed) and the
// black-box Tofino compiler (25 crash + 10 semantic filed; 20 + 8
// confirmed; 4 + 0 fixed — §7.1 notes the slower fix cadence of the
// proprietary compiler). All 32 confirmed back-end bugs are the Table 3
// "Back End" row.
func backendBugs() []*Bug {
	var out []*Bug

	// --- BMv2: the reference switch gets light testing (§7.1 "we did not
	// extensively test BMv2").
	out = append(out,
		&Bug{
			ID: "BMV2-C-01", Platform: BMv2, Kind: Crash,
			Pass: "BMv2Lowering", RootCause: "backend", Status: Fixed,
			Description: "simple-switch lowering aborts on switch statements",
			Trigger:     hasSwitch,
			PanicMsg:    "assertion failed: bmv2 lowering cannot encode switch",
			Witness:     witnessFor("switch"),
		},
		&Bug{
			ID: "BMV2-C-02", Platform: BMv2, Kind: Crash,
			Pass: "BMv2Lowering", RootCause: "backend", Status: Fixed,
			Description: "JSON generation aborts on tables with 3+ actions",
			Trigger:     hasTableWithActions(3),
			PanicMsg:    "assertion failed: bmv2 action id out of range",
			Witness:     witnessFor("table-multi-action"),
		},
		&Bug{
			ID: "BMV2-S-01", Platform: BMv2, Kind: Semantic,
			Pass: "BMv2Lowering", RootCause: "backend", Status: Fixed,
			Description: "setValid lost during JSON lowering",
			Trigger:     hasValidityCall("setValid"),
			Mutate:      mutDropValidityCall,
			Witness:     witnessFor("set-valid-cond"),
		},
		&Bug{
			ID: "BMV2-S-02", Platform: BMv2, Kind: Semantic,
			Pass: "BMv2Lowering", RootCause: "backend", Status: Fixed,
			Description: "conditional sense inverted in generated JSON",
			Trigger:     always,
			Mutate:      mutNegateFirstIf,
			Witness:     witnessFor("if-else"),
		},
	)

	// --- Tofino crashes: 20 confirmed across the proprietary back-end
	// passes ("the Tofino back end is more complex than BMv2 as it
	// compiles for a high-speed hardware target", §7.1).
	tofinoCrashes := []struct {
		pass, family string
		trig         func(*ast.Program) bool
		fixed        bool
	}{
		{"TofinoPredication", "predication-shape", hasTableWithActions(2), true},
		{"TofinoPredication", "if-else", always, true},
		{"TofinoPredication", "exit-action", hasExitInAction, false},
		{"TofinoPredication", "mux", hasMux, false},
		{"TofinoPredication", "switch", hasSwitch, false},
		{"TofinoPredication", "logical-ops", hasBinOp(ast.OpLOr), false},
		{"TofinoCopyPropagation", "copy-prop-chain", always, true},
		{"TofinoCopyPropagation", "slice-read", hasSliceExpr, false},
		{"TofinoCopyPropagation", "sat-add", hasBinOp(ast.OpSatAdd), false},
		{"TofinoCopyPropagation", "wide-arith", hasWidthOver(8), false},
		{"TofinoSimplifyDefUse", "dead-store-chain", always, true},
		{"TofinoSimplifyDefUse", "slice-assign", hasSliceAssign, false},
		{"TofinoSimplifyDefUse", "uninit-local", hasUninitLocal, false},
		{"TofinoSimplifyDefUse", "func-inout-return", hasFunctionWithInOutReturn, false},
		{"TofinoDeadCode", "set-invalid", hasValidityCall("setInvalid"), false},
		{"TofinoDeadCode", "exit-action", hasExitInAction, false},
		{"TofinoDeadCode", "is-valid", hasValidityCall("isValid"), false},
		{"TofinoTypeChecking", "concat", hasBinOp(ast.OpConcat), false},
		{"TofinoTypeChecking", "cast-bool", hasCastBool, false},
		{"TofinoTypeChecking", "table-multi-key", hasTableWithKeys(2), false},
	}
	for i, f := range tofinoCrashes {
		st := Confirmed
		if f.fixed {
			st = Fixed
		}
		out = append(out, &Bug{
			ID: fmt.Sprintf("TOF-C-%02d", i+1), Platform: Tofino, Kind: Crash,
			Pass: f.pass, RootCause: "backend", Status: st,
			Description: f.pass + " crash on " + f.family,
			Trigger:     f.trig,
			PanicMsg:    "assertion failed: " + f.pass + " table placement on " + f.family,
			Witness:     witnessFor(f.family),
		})
	}
	// 5 filed-but-unconfirmed Tofino crash reports (no bug-tracker
	// access; repeated triggers until new releases, §7.3).
	for i := 0; i < 5; i++ {
		out = append(out, &Bug{
			ID: fmt.Sprintf("TOF-C-%02d", 21+i), Platform: Tofino, Kind: Crash,
			Pass: "TofinoPredication", RootCause: "backend", Status: Filed,
			DupOf:       "TOF-C-01",
			Description: "re-filed crash awaiting the next compiler release",
			Trigger:     hasTableWithActions(2),
			PanicMsg:    "assertion failed: TofinoPredication table placement on predication-shape",
			Witness:     witnessFor("predication-shape"),
		})
	}

	// --- Tofino semantic bugs: 8 confirmed, none fixed within the
	// campaign window (targeted for the next release, §7.1).
	tofinoSemantic := []struct {
		pass, family, desc string
		trig               func(*ast.Program) bool
		mut                func(*ast.Program)
	}{
		{"TofinoPredication", "predication-shape",
			"predicated assignment loses its guard in the hardware encoding",
			hasPredicatedAssign, mutUnguardPredication},
		{"TofinoPredication", "if-else",
			"branch sense inverted while straight-lining",
			always, mutNegateFirstIf},
		{"TofinoPredication", "sat-add",
			"saturating add lowered to wrapping ALU op",
			hasBinOp(ast.OpSatAdd), mutBinOp(ast.OpSatAdd, ast.OpAdd)},
		{"TofinoCopyPropagation", "copy-prop-chain",
			"stale operand bus value propagated",
			always, mutSwapAdjacentAssigns},
		{"TofinoCopyPropagation", "fold-chain",
			"immediate operand corrupted during allocation",
			always, mutLiteralOffByOne},
		{"TofinoSimplifyDefUse", "action-dir-params",
			"slice copy-out eliminated as dead",
			hasSliceAssign, mutDropSliceAssign},
		{"TofinoSimplifyDefUse", "func-inout-return",
			"inout write-back eliminated as dead",
			hasCopyOutAssign, mutDropCopyOut},
		{"TofinoDeadCode", "set-valid-cond",
			"validity update eliminated by dead-code removal",
			hasValidityCall("setValid"), mutDropValidityCall},
	}
	for i, f := range tofinoSemantic {
		out = append(out, &Bug{
			ID: fmt.Sprintf("TOF-S-%02d", i+1), Platform: Tofino, Kind: Semantic,
			Pass: f.pass, RootCause: "backend", Status: Confirmed,
			Description: f.desc, Trigger: f.trig, Mutate: f.mut,
			Witness: witnessFor(f.family),
		})
	}
	// --- Invalid transformations: 4 tracked-but-uncounted bugs whose
	// symptom is emitted P4 that no longer parses or re-checks (§7.2:
	// "we identified 4 such bugs of invalid intermediate P4; these 4
	// bugs are not included in our count of 78. All were fixed.").
	invalidXforms := []struct {
		id, pass, family, desc string
		mut                    func(*ast.Program)
	}{
		{"P4C-X-01", "UniqueNames", "dead-store-chain",
			"local renamed to a reserved word during uniquification",
			mutRenameToKeyword("apply")},
		{"P4C-X-02", "SimplifyDefUse", "dead-store-chain",
			"declaration duplicated while rebuilding a block",
			mutDuplicateDecl},
		{"P4C-X-03", "ConstantFolding", "const-assign",
			"folded literal emitted at the wrong width",
			mutWidenLiteral},
		{"P4C-X-04", "Predication", "predication-shape",
			"predicate temporary emitted with a keyword name",
			mutRenameToKeyword("exit")},
	}
	for _, f := range invalidXforms {
		out = append(out, &Bug{
			ID: f.id, Platform: P4C, Kind: InvalidXform,
			Pass: f.pass, RootCause: "emit/reparse", Status: Fixed,
			Description: f.desc, Trigger: hasUninitLocalOrAny, Mutate: f.mut,
			Witness: witnessFor(f.family),
		})
	}

	// 2 filed-but-unconfirmed Tofino semantic reports.
	for i := 0; i < 2; i++ {
		out = append(out, &Bug{
			ID: fmt.Sprintf("TOF-S-%02d", 9+i), Platform: Tofino, Kind: Semantic,
			Pass: "TofinoPredication", RootCause: "backend", Status: Filed,
			DupOf:       "TOF-S-01",
			Description: "re-filed miscompilation awaiting the next compiler release",
			Trigger:     hasPredicatedAssign,
			Mutate:      mutUnguardPredication,
			Witness:     witnessFor("predication-shape"),
		})
	}
	return out
}
