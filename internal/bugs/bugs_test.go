package bugs_test

import (
	"testing"

	"gauntlet/internal/bugs"
	"gauntlet/internal/compiler"
	"gauntlet/internal/p4/parser"
	"gauntlet/internal/p4/types"
)

// TestRegistryWellFormed checks structural invariants of every entry.
func TestRegistryWellFormed(t *testing.T) {
	reg := bugs.Load()
	if len(reg.Bugs) != 95 {
		t.Fatalf("total registry entries = %d, want 95 (91 filed + 4 invalid transforms)", len(reg.Bugs))
	}
	if got := len(reg.InvalidTransforms()); got != 4 {
		t.Fatalf("invalid-transform bugs = %d, want 4 (§7.2)", got)
	}
	knownPasses := map[string]bool{"BMv2Lowering": true}
	for _, p := range compiler.DefaultPasses() {
		knownPasses[p.Name()] = true
		knownPasses["Tofino"+p.Name()] = true
	}
	for _, b := range reg.Bugs {
		if b.ID == "" || b.Description == "" || b.Witness == "" {
			t.Errorf("%s: incomplete metadata", b.ID)
		}
		if !knownPasses[b.Pass] {
			t.Errorf("%s: unknown pass %q", b.ID, b.Pass)
		}
		switch b.Kind {
		case bugs.Crash:
			if b.PanicMsg == "" {
				t.Errorf("%s: crash bug without panic fingerprint", b.ID)
			}
		case bugs.Semantic, bugs.InvalidXform:
			if b.Mutate == nil {
				t.Errorf("%s: %s bug without mutator", b.ID, b.Kind)
			}
		}
		if b.DupOf != "" {
			if b.Status != bugs.Filed {
				t.Errorf("%s: duplicate with status %v", b.ID, b.Status)
			}
			if reg.ByID(b.DupOf) == nil {
				t.Errorf("%s: DupOf %q does not exist", b.ID, b.DupOf)
			}
		}
	}
}

// TestWitnessesParseAndTrigger checks every witness is well-formed and
// tickles its own trigger predicate on the raw program (crash bugs) —
// semantic triggers fire on pass output and are covered by the campaign.
func TestWitnessesParseAndTrigger(t *testing.T) {
	reg := bugs.Load()
	for _, b := range reg.Bugs {
		prog, err := parser.Parse(b.Witness)
		if err != nil {
			t.Errorf("%s: witness does not parse: %v", b.ID, err)
			continue
		}
		if err := types.Check(prog); err != nil {
			t.Errorf("%s: witness does not type-check: %v", b.ID, err)
			continue
		}
		if b.Kind == bugs.Crash && b.Trigger != nil && !b.Trigger(prog) {
			t.Errorf("%s: witness does not satisfy its own trigger", b.ID)
		}
	}
}

// TestInstrumentTargetsPass checks instrumentation only wraps the named
// pass and leaves the rest of the pipeline untouched.
func TestInstrumentTargetsPass(t *testing.T) {
	reg := bugs.Load()
	b := reg.ByID("P4C-C-01")
	pl := bugs.Instrument(compiler.DefaultPasses(), []*bugs.Bug{b})
	if len(pl) != len(compiler.DefaultPasses()) {
		t.Fatal("instrumentation changed pipeline length")
	}
	for i, p := range pl {
		ref := compiler.DefaultPasses()[i]
		if p.Name() != ref.Name() {
			t.Errorf("pass %d renamed to %s", i, p.Name())
		}
	}
}

// TestTable3Locations checks the confirmed bugs land in the paper's
// front/mid/back split.
func TestTable3Locations(t *testing.T) {
	reg := bugs.Load()
	loc := map[compiler.Location]int{}
	for _, b := range reg.Confirmed() {
		loc[compiler.LocationOf(b.Pass)]++
	}
	if loc[compiler.FrontEnd] != 33 || loc[compiler.MidEnd] != 13 || loc[compiler.BackEnd] != 32 {
		t.Errorf("locations front/mid/back = %d/%d/%d, want 33/13/32",
			loc[compiler.FrontEnd], loc[compiler.MidEnd], loc[compiler.BackEnd])
	}
}
