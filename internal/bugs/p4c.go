package bugs

import (
	"fmt"

	"gauntlet/internal/p4/ast"
)

// p4cBugs defines the P4C population of Table 2: 26 crash + 26 semantic
// filed; 25 + 21 confirmed; 21 + 15 fixed. Locations split front 33 /
// mid 13 for the confirmed 46 (Table 3). 18 of the 25 confirmed crashes
// live in the type checker and at least 8 of the 21 confirmed semantic
// bugs are copy-in/copy-out defects (§7.2); 16 of the confirmed 46 carry
// a merge week (§7.1); 6 led to specification changes; 5 are derivative
// handcrafted reports.
func p4cBugs() []*Bug {
	var out []*Bug
	nc, ns := 0, 0
	id := func(kind Kind) string {
		if kind == Crash {
			nc++
			return fmt.Sprintf("P4C-C-%02d", nc)
		}
		ns++
		return fmt.Sprintf("P4C-S-%02d", ns)
	}

	// --- Crash bugs: 18 type-checker assertion violations (§7.2 "crashes
	// in the type checker"), each fired by a distinct language construct.
	tcFamilies := []struct {
		family string
		trig   func(*ast.Program) bool
		week   int
		spec   bool
		deriv  bool
		fixed  bool
	}{
		{"shl-nonconst", hasNonConstShift, 0, true, false, true}, // Fig. 5b; 2 spec updates
		{"shr-nonconst", hasNonConstShift, 0, false, false, true},
		{"concat", hasBinOp(ast.OpConcat), 2, false, false, true},
		{"mux", hasMux, 0, false, false, true},
		{"slice-read", hasSliceExpr, 0, false, false, true},
		{"slice-assign", hasSliceAssign, 3, false, false, true},
		{"sat-add", hasBinOp(ast.OpSatAdd), 0, false, false, true},
		{"sat-sub", hasBinOp(ast.OpSatSub), 0, false, false, true},
		{"cast-bool", hasCastBool, 5, false, false, true},
		{"is-valid", hasValidityCall("isValid"), 0, false, false, true},
		{"set-valid", hasValidityCall("setValid"), 0, true, true, true}, // validity spec clarifications
		{"set-invalid", hasValidityCall("setInvalid"), 0, false, true, true},
		{"switch", hasSwitch, 6, false, false, true},
		{"exit-action", hasExitInAction, 0, false, false, true},
		{"action-dir-params", hasActionWithDirParams, 0, false, false, true},
		{"func-inout-return", hasFunctionWithInOutReturn, 0, false, false, true},
		{"table-multi-key", hasTableWithKeys(2), 8, false, false, false},
		{"wide-arith", hasWidthOver(8), 0, false, true, false},
	}
	for _, f := range tcFamilies {
		st := Confirmed
		if f.fixed {
			st = Fixed
		}
		out = append(out, &Bug{
			ID: id(Crash), Platform: P4C, Kind: Crash,
			Pass: "TypeChecking", RootCause: "type checker", Status: st,
			MergeWeek: f.week, SpecChange: f.spec, Derivative: f.deriv,
			Description: "type checker assertion violation on " + f.family,
			Trigger:     f.trig,
			PanicMsg:    "assertion failed: typeMap invariant violated on " + f.family,
			Witness:     witnessFor(f.family),
		})
	}

	// --- Crash bugs: 5 more front-end passes, 2 mid-end (snowball
	// effects of missed transformations, §7.2).
	otherCrashes := []struct {
		pass, family, cause string
		trig                func(*ast.Program) bool
		week                int
		fixed               bool
	}{
		{"SideEffectOrdering", "mux", "side-effect ordering", hasMux, 0, true},
		{"SideEffectOrdering", "logical-ops", "side-effect ordering", hasBinOp(ast.OpLAnd), 9, true},
		{"InlineFunctions", "func-inout-return", "visitor", hasFunctionWithInOutReturn, 0, true},
		{"RemoveActionParameters", "exit-action", "copy-in/copy-out", hasExitInAction, 0, false},
		{"SimplifyDefUse", "dead-store-chain", "def-use", hasSliceAssign, 11, false},
		{"StrengthReduction", "fold-chain", "folding", hasBinOp(ast.OpMul), 0, true},
		{"Predication", "predication-shape", "predication", hasTableWithActions(2), 13, true}, // merge regression
	}
	for _, f := range otherCrashes {
		st := Confirmed
		if f.fixed {
			st = Fixed
		}
		out = append(out, &Bug{
			ID: id(Crash), Platform: P4C, Kind: Crash,
			Pass: f.pass, RootCause: f.cause, Status: st, MergeWeek: f.week,
			Description: f.pass + " crash on " + f.family,
			Trigger:     f.trig,
			PanicMsg:    "assertion failed: " + f.pass + " precondition violated on " + f.family,
			Witness:     witnessFor(f.family),
		})
	}

	// One filed-but-unconfirmed crash report (a duplicate of the first
	// type-checker bug): filed 26, confirmed 25.
	out = append(out, &Bug{
		ID: id(Crash), Platform: P4C, Kind: Crash,
		Pass: "TypeChecking", RootCause: "type checker", Status: Filed,
		DupOf:       "P4C-C-01",
		Description: "duplicate report of the shift-width crash",
		Trigger:     hasNonConstShift,
		PanicMsg:    "assertion failed: typeMap invariant violated on shl-nonconst",
		Witness:     witnessFor("shl-nonconst"),
	})

	// --- Semantic bugs: front end (10 confirmed). The copy-in/copy-out
	// cluster (≥8 of 21, §7.2) spans SideEffectOrdering, InlineFunctions
	// and RemoveActionParameters.
	frontSemantic := []struct {
		pass, family, cause, desc string
		trig                      func(*ast.Program) bool
		mut                       func(*ast.Program)
		week                      int
		spec                      bool
		deriv                     bool
		fixed                     bool
	}{
		{"SideEffectOrdering", "dead-store-chain", "copy-in/copy-out",
			"argument evaluation reordered across overlapping writes",
			always, mutSwapAdjacentAssigns, 0, false, false, true},
		{"SideEffectOrdering", "fold-chain", "copy-in/copy-out",
			"hoisted temporary initialized with the wrong literal",
			always, mutLiteralOffByOne, 10, false, false, true},
		{"SideEffectOrdering", "if-else", "copy-in/copy-out",
			"short-circuit guard inverted while hoisting",
			always, mutNegateFirstIf, 0, false, true, true},
		{"InlineFunctions", "func-inout-return", "copy-in/copy-out",
			"inout copy-out dropped when the callee returns early",
			hasFunctionWithInOutReturn, mutDropCopyOut, 0, false, false, true},
		{"InlineFunctions", "func-inout-return", "copy-in/copy-out",
			"return-value temporary never written back",
			hasFunctionWithInOutReturn, mutDropFirstAssignTo("tmp_ret"), 0, false, false, true},
		{"RemoveActionParameters", "exit-action", "copy-in/copy-out",
			"statement moved after exit: copy-out skipped (Fig. 5f)",
			hasExitInAction, mutExitBeforeCopyOut, 0, true, false, true},
		{"RemoveActionParameters", "action-dir-params", "copy-in/copy-out",
			"disjoint slice assignment deleted (Fig. 5d)",
			hasSliceAssign, mutDropSliceAssign, 0, false, false, true},
		{"RemoveActionParameters", "action-dir-params", "copy-in/copy-out",
			"slice copy-out dropped for inout action parameter",
			hasActionWithDirParams, mutDropCopyOut, 7, false, false, true},
		{"SimplifyDefUse", "func-inout-return", "def-use",
			"caller-scope variables removed after return (Fig. 5a)",
			hasFunctionWithInOutReturn, mutDropFirstAssignTo("hdr"), 0, true, false, true},
		{"SimplifyDefUse", "slice-assign", "def-use",
			"partial write treated as a full definition",
			hasSliceAssign, mutDropSliceAssign, 12, false, false, true},
	}
	for _, f := range frontSemantic {
		st := Confirmed
		if f.fixed {
			st = Fixed
		}
		out = append(out, &Bug{
			ID: id(Semantic), Platform: P4C, Kind: Semantic,
			Pass: f.pass, RootCause: f.cause, Status: st, MergeWeek: f.week,
			SpecChange: f.spec, Derivative: f.deriv,
			Description: f.desc, Trigger: f.trig, Mutate: f.mut,
			Witness: witnessFor(f.family),
		})
	}

	// --- Semantic bugs: mid end (11 confirmed), including the
	// Predication merge regressions (§7.2 "consequences of compiler
	// changes": 3 semantic + the crash above).
	midSemantic := []struct {
		pass, family, cause, desc string
		trig                      func(*ast.Program) bool
		mut                       func(*ast.Program)
		week                      int
		spec                      bool
		deriv                     bool
		fixed                     bool
	}{
		{"ConstantFolding", "sat-add", "folding",
			"saturating add folded with wrapping semantics",
			hasBinOp(ast.OpSatAdd), mutBinOp(ast.OpSatAdd, ast.OpAdd), 0, false, false, true},
		{"ConstantFolding", "sat-sub", "folding",
			"saturating subtract folded with wrapping semantics",
			hasBinOp(ast.OpSatSub), mutBinOp(ast.OpSatSub, ast.OpSub), 0, false, false, true},
		{"ConstantFolding", "shr-nonconst", "folding",
			"right shift folded as left shift",
			hasBinOp(ast.OpShr), mutBinOp(ast.OpShr, ast.OpShl), 14, false, false, true},
		{"StrengthReduction", "wide-arith", "folding",
			"multiplication reduced to addition",
			hasBinOp(ast.OpMul), mutBinOp(ast.OpMul, ast.OpAdd), 0, false, false, true},
		{"StrengthReduction", "slice-assign", "folding",
			"slice strength reduction computes the wrong bits (Fig. 5c class)",
			hasSliceAssign, mutZeroSliceAssign, 0, true, false, true},
		{"Predication", "predication-shape", "predication",
			"predicated assignment loses its guard",
			hasPredicatedAssign, mutUnguardPredication, 13, false, false, true},
		{"Predication", "predication-shape", "predication",
			"else-branch predicate computed after then-branch writes",
			hasPredicatedAssign, mutUnguardPredicationNth(2), 13, false, false, true},
		{"Predication", "predication-shape", "predication",
			"nested predicate constant corrupted",
			hasPredicatedAssign, mutLiteralOffByOne, 13, false, false, true},
		{"CopyPropagation", "copy-prop-chain", "def-use",
			"stale copy propagated across a redefinition",
			always, mutSwapAdjacentAssigns, 0, false, false, true},
		{"CopyPropagation", "copy-prop-chain", "def-use",
			"copy fact survives a partial write",
			hasSliceAssign, mutDropSliceAssign, 15, false, false, true},
		{"DeadCode", "set-invalid", "header validity",
			"validity update removed as dead (Fig. 5e class)",
			hasValidityCall("setInvalid"), mutDropValidityCall, 0, true, true, false},
	}
	for i, f := range midSemantic {
		st := Confirmed
		if f.fixed {
			st = Fixed
		}
		// Fixed semantic bugs: 15 of 21. Front contributes 10; cap the
		// mid-end fixes at 5.
		if i >= 5 {
			st = Confirmed
		}
		out = append(out, &Bug{
			ID: id(Semantic), Platform: P4C, Kind: Semantic,
			Pass: f.pass, RootCause: f.cause, Status: st, MergeWeek: f.week,
			SpecChange: f.spec, Derivative: f.deriv,
			Description: f.desc, Trigger: f.trig, Mutate: f.mut,
			Witness: witnessFor(f.family),
		})
	}

	// Five filed-but-unconfirmed semantic reports (duplicates): filed 26,
	// confirmed 21.
	dups := []string{"P4C-S-16", "P4C-S-17", "P4C-S-18", "P4C-S-16", "P4C-S-17"}
	for i := 0; i < 5; i++ {
		out = append(out, &Bug{
			ID: id(Semantic), Platform: P4C, Kind: Semantic,
			Pass: "Predication", RootCause: "predication", Status: Filed,
			DupOf:       dups[i],
			Description: "duplicate report from a P4 programmer (§7.2: later reports were considered duplicates of ours)",
			Trigger:     hasPredicatedAssign,
			Mutate:      mutUnguardPredication,
			Witness:     witnessFor("predication-shape"),
		})
	}
	return out
}
