package validate_test

import (
	"testing"

	"gauntlet/internal/smt/solver"
	"gauntlet/internal/validate"
)

// Two semantically equal controls whose miter only a real solver search
// discharges: distributivity of 16-bit multiplication over addition is
// beyond the word-level simplifier, and the bit-blasted proof needs more
// than one conflict.
const distribA = `
control ig(inout bit<16> x, inout bit<16> y) {
    apply { x = (x + y) * 16w3; }
}`
const distribB = `
control ig(inout bit<16> x, inout bit<16> y) {
    apply { x = x * 16w3 + y * 16w3; }
}`

// TestUnknownVerdictsNeverCached: a budget-starved (Unknown) equivalence
// verdict must not enter the verdict cache — a later query on the same
// miter with a real budget has to reach the solver and come back
// definitive, not replay the earlier give-up.
func TestUnknownVerdictsNeverCached(t *testing.T) {
	a := mustProg(t, distribA)
	b := mustProg(t, distribB)
	cache := validate.NewCache()

	starved, err := validate.Pair(a, b, validate.Options{Cache: cache, MaxConflicts: 1})
	if err != nil {
		t.Fatal(err)
	}
	unknowns := 0
	for _, v := range starved {
		if v.Status == solver.Unknown {
			unknowns++
		}
	}
	if unknowns == 0 {
		t.Fatal("a 1-conflict budget starved no query; the regression check is vacuous")
	}
	_, _, hitsBefore, missBefore := cache.Stats()

	full, err := validate.Pair(a, b, validate.Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range full {
		if v.Status == solver.Unknown {
			t.Fatalf("verdict %d still Unknown at full budget: the starved verdict was cached", i)
		}
		if !v.Equivalent {
			t.Fatalf("verdict %d: (x+y)*3 and x*3+y*3 must prove equivalent: %+v", i, v)
		}
	}
	_, _, hitsAfter, missAfter := cache.Stats()
	if missAfter == missBefore {
		t.Fatal("full-budget run never reached the solver: Unknown verdicts were served from cache")
	}
	if hitsAfter != hitsBefore {
		t.Fatalf("full-budget run hit the verdict cache %d times: Unknown was cached", hitsAfter-hitsBefore)
	}

	// Definitive verdicts, by contrast, are cached: a third run is pure
	// hits.
	if _, err := validate.Pair(a, b, validate.Options{Cache: cache}); err != nil {
		t.Fatal(err)
	}
	if _, _, hits, miss := cache.Stats(); miss != missAfter || hits == hitsAfter {
		t.Fatalf("definitive verdict was not cached: hits %d→%d, misses %d→%d",
			hitsAfter, hits, missAfter, miss)
	}
}
