package validate_test

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"gauntlet/internal/compiler"
	"gauntlet/internal/validate"
)

// flipCtx cancels itself deterministically after a fixed number of Err()
// polls — a clock-free stand-in for "the deadline fired mid-stream". Done
// returns nil so solver watchdogs stay out of the way; only the
// between-comparison checks observe the flip.
type flipCtx struct {
	context.Context
	polls, after int
}

func (c *flipCtx) Done() <-chan struct{} { return nil }
func (c *flipCtx) Err() error {
	c.polls++
	if c.polls > c.after {
		return context.Canceled
	}
	return nil
}

// A program whose pipeline run produces several changed snapshots, so
// validation makes multiple comparisons and can be cancelled between
// them.
const multiPassProg = `
header Eth { bit<16> kind; bit<16> val; }
struct Headers { Eth eth; }
control ig(inout Headers hdr) {
    action bump() { hdr.eth.val = hdr.eth.val * 16w4 + 16w0; }
    table t {
        key = { hdr.eth.kind : exact; }
        actions = { bump; NoAction; }
        default_action = NoAction();
    }
    apply {
        t.apply();
        if (hdr.eth.kind == 16w1 + 16w1) {
            hdr.eth.val = (hdr.eth.val + 16w0) * 16w2;
        }
    }
}
V1Switch(ig) main;
`

// TestSnapshotsContextPartial: cancellation mid-validation must hand back
// the verdicts gathered so far — a prefix of the full run — together with
// ctx.Err(), not drop them. The poll budget is scanned upward until the
// flip lands strictly mid-stream, so the test doesn't depend on the exact
// number of context checks per comparison.
func TestSnapshotsContextPartial(t *testing.T) {
	prog := mustProg(t, multiPassProg)
	res, err := compiler.New(compiler.DefaultPasses()...).Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	full, err := validate.Snapshots(res, validate.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(full) < 2 {
		t.Fatalf("need ≥2 verdicts for a meaningful partial run, got %d", len(full))
	}

	for after := 1; ; after++ {
		partial, err := validate.SnapshotsContext(
			&flipCtx{Context: context.Background(), after: after}, res, validate.Options{})
		if err == nil {
			t.Fatalf("no poll budget ≤%d produced a mid-stream cancellation (full run has %d verdicts)",
				after, len(full))
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled run returned err = %v, want context.Canceled", err)
		}
		if len(partial) == 0 {
			continue // flipped before the first comparison; poll later
		}
		if len(partial) >= len(full) {
			t.Fatalf("cancellation after %d polls lost no work (%d of %d verdicts) without ever landing mid-stream",
				after, len(partial), len(full))
		}
		if !reflect.DeepEqual(partial, full[:len(partial)]) {
			t.Fatalf("partial verdicts are not a prefix of the full run:\n  %v\n  %v",
				partial, full[:len(partial)])
		}
		return
	}
}
