package validate

import (
	"context"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"gauntlet/internal/p4/ast"
	"gauntlet/internal/p4/printer"
	"gauntlet/internal/p4/types"
	"gauntlet/internal/smt"
	"gauntlet/internal/smt/solver"
	"gauntlet/internal/sym"
)

// Cache memoizes the two expensive halves of translation validation:
//
//   - Block formulas, keyed by the printed source of the block plus the
//     program's top-level constants (everything a block's symbolic form
//     depends on). A pass that rewrites one control leaves every other
//     block's formula a cache hit, so unchanged blocks are never
//     re-symbolically-executed.
//   - Equivalence verdicts, keyed by the interned ID of the *simplified*
//     equivalence term. Terms are hash-consed process-wide and the miter
//     is canonicalized by smt.Simplify before keying, so the ID is a
//     perfect structural key and syntactically different comparisons that
//     normalize to one canonical formula share one solver call — across
//     snapshots, programs and parallel hunts. Only definitive verdicts
//     (Sat/Unsat) are cached; Unknown depends on the conflict budget.
//
// A Cache is safe for concurrent use and is shared across a campaign's
// worker pool (core.Campaign threads one through every hunt).
//
// Every Cache is bound to one smt.Context: block formulas are symbolic
// forms over that context's terms and verdicts key on that context's
// term IDs, so cache and context form one unit of lifetime. A rotating
// service (the engine's epochs) retires both together — allocate a
// fresh context, wrap it in a fresh cache, swap, and the old pair is
// reclaimed wholesale once in-flight queries drain. There is no partial
// invalidation: formulas referencing retired terms must never outlive
// their context.
type Cache struct {
	ctx      *smt.Context
	mu       sync.RWMutex
	blocks   map[uint64]*sym.Block
	verdicts map[uint64]verdictEntry
	tapes    map[uint64]*smt.Tape
	counters *CacheCounters
}

// CacheCounters is the cache's hit/miss accounting, detachable from the
// cache itself: the counters are a few atomics, while the cache proper
// holds the block/verdict maps. A rotating engine keeps each retired
// epoch's *CacheCounters (so cumulative stats keep counting, including
// increments from oracle calls still in flight on the retired pair)
// while dropping the cache — the maps, the heavy part, still get
// reclaimed.
type CacheCounters struct {
	blockHits, blockMisses     atomic.Uint64
	verdictHits, verdictMisses atomic.Uint64
	simpResolved               atomic.Uint64

	tapesCompiled     atomic.Uint64
	concolicFalsified atomic.Uint64
	concolicPackets   atomic.Uint64
	replayHits        atomic.Uint64
	solverFallbacks   atomic.Uint64
}

// Snapshot reads the counters.
func (cc *CacheCounters) Snapshot() CacheStats {
	return CacheStats{
		BlockHits: cc.blockHits.Load(), BlockMisses: cc.blockMisses.Load(),
		VerdictHits: cc.verdictHits.Load(), VerdictMisses: cc.verdictMisses.Load(),
		SimpResolved:      cc.simpResolved.Load(),
		TapesCompiled:     cc.tapesCompiled.Load(),
		ConcolicFalsified: cc.concolicFalsified.Load(),
		ConcolicPackets:   cc.concolicPackets.Load(),
		ReplayHits:        cc.replayHits.Load(),
		SolverFallbacks:   cc.solverFallbacks.Load(),
	}
}

type verdictEntry struct {
	equivalent     bool
	status         solver.Status
	counterexample smt.Assignment
}

// NewCache creates an empty validation cache bound to the default smt
// context.
func NewCache() *Cache { return NewCacheIn(smt.DefaultContext()) }

// NewCacheIn creates an empty validation cache bound to the given smt
// context: every block formula it computes is built there, and verdicts
// key on that context's canonical term IDs.
func NewCacheIn(sctx *smt.Context) *Cache {
	return &Cache{
		ctx:      sctx,
		blocks:   map[uint64]*sym.Block{},
		verdicts: map[uint64]verdictEntry{},
		tapes:    map[uint64]*smt.Tape{},
		counters: &CacheCounters{},
	}
}

// Context returns the smt context the cache is bound to.
func (c *Cache) Context() *smt.Context { return c.ctx }

// Counters returns the cache's detachable counter block (see
// CacheCounters).
func (c *Cache) Counters() *CacheCounters { return c.counters }

// Stats reports hit/miss counters: block-formula cache first, then
// verdict cache. Snapshot carries these plus the simplification counter.
func (c *Cache) Stats() (blockHits, blockMisses, verdictHits, verdictMisses uint64) {
	s := c.Snapshot()
	return s.BlockHits, s.BlockMisses, s.VerdictHits, s.VerdictMisses
}

// CacheStats is a point-in-time snapshot of every cache counter.
type CacheStats struct {
	BlockHits, BlockMisses     uint64
	VerdictHits, VerdictMisses uint64
	// SimpResolved counts equivalence queries answered by word-level
	// simplification / structural collapse alone: the canonicalized miter
	// was the constant *true* (the sides proved equal), so neither the
	// verdict cache nor the solver was consulted. A constant-false miter —
	// a proven inequivalence — still takes the solver path, because the
	// report needs a counterexample assignment.
	SimpResolved uint64
	// TapesCompiled counts miters compiled to bit-parallel tapes (each
	// simplified miter compiles once per cache lifetime; reruns hit the
	// tape map).
	TapesCompiled uint64
	// ConcolicFalsified counts equivalence queries answered by a concrete
	// counterexample from the tape — mismatch verdicts that cost zero
	// solver work.
	ConcolicFalsified uint64
	// ConcolicPackets counts concrete input assignments executed by the
	// tape (64 per batch), across falsified and survived queries alike.
	ConcolicPackets uint64
	// ReplayHits counts queries decided by replaying a caller-provided
	// counterexample hint (one packet) through the tape — the
	// mismatch-reduction fast path. Hint verdicts are never cached: which
	// hint a caller holds depends on its history, not on the miter.
	ReplayHits uint64
	// SolverFallbacks counts queries where the concolic stage ran and
	// failed to falsify, so a full solver session was built after all.
	SolverFallbacks uint64
}

// Snapshot returns all cache counters at once (the engine's Stats path).
func (c *Cache) Snapshot() CacheStats { return c.counters.Snapshot() }

// Add accumulates another snapshot into s, field by field — the single
// place cumulative-across-epochs totals are folded, so a future counter
// cannot be summed in one consumer and dropped in another.
func (s *CacheStats) Add(o CacheStats) {
	s.BlockHits += o.BlockHits
	s.BlockMisses += o.BlockMisses
	s.VerdictHits += o.VerdictHits
	s.VerdictMisses += o.VerdictMisses
	s.SimpResolved += o.SimpResolved
	s.TapesCompiled += o.TapesCompiled
	s.ConcolicFalsified += o.ConcolicFalsified
	s.ConcolicPackets += o.ConcolicPackets
	s.ReplayHits += o.ReplayHits
	s.SolverFallbacks += o.SolverFallbacks
}

// Warm pre-computes and memoizes the block formulas of prog's parser and
// control declarations, re-interning their terms into the cache's
// context. The engine calls it right after an epoch rotation with the
// corpus' top-energy seeds — the programs most likely to be scheduled
// next — so post-rotation validation latency doesn't dip while the
// fresh, empty cache re-derives formulas it is about to need anyway.
// Warming is cost-only: a formula computed here is byte-for-byte the one
// a later validation would compute on miss (terms are hash-consed in the
// same context), so verdicts never change. Returns how many block
// formulas were computed; ill-typed or symbolically unsupported blocks
// are skipped, not errors.
func (c *Cache) Warm(prog *ast.Program) int {
	if prog == nil {
		return 0
	}
	// sym execution needs resolved types, and corpus programs are stored
	// unchecked (admission clones before checking); check a private clone
	// so the shared seed AST is never mutated.
	p := ast.CloneProgram(prog)
	if types.Check(p) != nil {
		return 0
	}
	consts := contextKey(p)
	n := 0
	for _, d := range p.Decls {
		switch d.(type) {
		case *ast.ControlDecl, *ast.ParserDecl:
			if _, err := c.blockForm(p, consts, d); err == nil {
				n++
			}
		}
	}
	return n
}

// contextKey hashes every top-level declaration a block's formula can
// depend on besides its own body: type definitions (header and struct
// field widths shape every symbolic value), constants, and top-level
// actions/functions (resolved by name during symbolic execution). Only
// other parser/control declarations are excluded — a block never reads
// them. Two programs may print a block identically yet mean different
// formulas under different contexts, so the context is part of the key.
func contextKey(prog *ast.Program) uint64 {
	h := fnv.New64a()
	for _, d := range prog.Decls {
		switch d.(type) {
		case *ast.ControlDecl, *ast.ParserDecl:
			continue
		}
		h.Write([]byte(printer.PrintDecl(d)))
	}
	return h.Sum64()
}

// blockKey hashes one block's printed declaration under the program's
// declaration context.
func blockKey(consts uint64, d ast.Decl) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(consts >> (8 * i))
	}
	h.Write(buf[:])
	h.Write([]byte(printer.PrintDecl(d)))
	return h.Sum64()
}

// blockForm returns the symbolic form of one block, computing and
// memoizing it on miss. Cached *sym.Block values are immutable after
// construction and safe to share across goroutines; because terms are
// hash-consed, two workers that race on the same key produce
// structurally identical (pointer-equal) formulas either way.
func (c *Cache) blockForm(prog *ast.Program, consts uint64, d ast.Decl) (*sym.Block, error) {
	key := blockKey(consts, d)
	c.mu.RLock()
	b, ok := c.blocks[key]
	c.mu.RUnlock()
	if ok {
		c.counters.blockHits.Add(1)
		return b, nil
	}
	var err error
	switch d := d.(type) {
	case *ast.ControlDecl:
		b, err = sym.ExecControlIn(c.ctx, prog, d)
	case *ast.ParserDecl:
		b, err = sym.ExecParserIn(c.ctx, prog, d)
	}
	if err != nil {
		return nil, err
	}
	c.counters.blockMisses.Add(1)
	c.mu.Lock()
	if prev, ok := c.blocks[key]; ok {
		b = prev // keep the first winner so pointer fast paths fire
	} else {
		c.blocks[key] = b
	}
	c.mu.Unlock()
	return b, nil
}

// equivalent decides whether two block forms are observationally equal,
// using the verdict cache and the interning pointer fast path before
// falling back to the solver. Each miss gets a fresh solver instance:
// chain-shared incremental sessions were measured ~15% slower here (the
// per-pair circuits overlap too little for learnt-clause reuse to beat
// the cost of propagating over an accumulated instance), so unlike
// testgen's path enumeration this query stays one-shot.
// A context deadline degrades the verdict to Unknown mid-search, and —
// like conflict-budget exhaustion — an Unknown is never cached: a timeout
// under one budget must not poison the verdict for a later, larger-budget
// query keyed on the same simplified miter.
//
// Between the verdict cache and the solver sits the concolic fast path
// (unless con.Disable): the simplified miter is compiled once into a
// bit-parallel tape, caller-provided counterexample hints are replayed
// first (one packet each; a hit is an immediate Sat that is NOT cached,
// because which hint a caller holds depends on its history, not on the
// miter), then batches of deterministic pseudo-random packets try to
// falsify it before any solver.Session is built. Tape-found verdicts ARE
// cached: the witness is a pure function of (seed, miter structure,
// rounds), so every worker that would compute it computes the same one.
func (c *Cache) equivalent(ctx context.Context, a, b *sym.Block, opts Options) (bool, smt.Assignment, solver.Status) {
	maxConflicts, con := opts.MaxConflicts, opts.Concolic
	// Tier attribution is observation-only: the clock is read exactly
	// once on entry and once per resolved query, and only when a
	// QueryObs hook is installed — the unobserved path pays a nil check.
	var start time.Time
	if opts.QueryObs != nil {
		start = time.Now()
	}
	tier := func(t string) {
		if opts.QueryObs != nil {
			opts.QueryObs(t, time.Since(start))
		}
	}
	if a == b {
		// Same interned formula object: equal by construction.
		tier(TierSimplified)
		return true, nil, solver.Unsat
	}
	eq := sym.Equivalent(a, b)
	if eq.IsTrue() {
		// The canonicalized miter is the constant true: hash-consing made
		// the sides pointer-equal, or word-level simplification collapsed
		// their differences. Either way the query never reaches a solver.
		c.counters.simpResolved.Add(1)
		tier(TierSimplified)
		return true, nil, solver.Unsat
	}
	// sym.Equivalent returns the simplified miter, so this ID is the
	// canonical structural key: distinct raw miters that normalize to one
	// form share a verdict here.
	key := eq.ID()
	c.mu.RLock()
	e, ok := c.verdicts[key]
	c.mu.RUnlock()
	if ok {
		c.counters.verdictHits.Add(1)
		tier(TierCacheHit)
		return e.equivalent, e.counterexample, e.status
	}
	var tp *smt.Tape
	rounds := 0
	if !con.Disable {
		tp = c.tape(key, eq)
		for _, h := range con.Hints {
			if h != nil && tp.EvalOnce(h) == 0 {
				c.counters.replayHits.Add(1)
				tier(TierHintReplay)
				return false, tp.Restrict(h), solver.Sat
			}
		}
		rounds = con.rounds()
	}
	equal, cex, st, cr := solver.EquivalentConcolic(ctx, maxConflicts, eq, tp, con.Seed, rounds)
	c.counters.concolicPackets.Add(cr.Packets)
	if cr.Falsified {
		c.counters.concolicFalsified.Add(1)
		tier(TierConcolic)
	} else {
		if tp != nil {
			c.counters.solverFallbacks.Add(1)
		}
		tier(TierCDCL)
	}
	c.counters.verdictMisses.Add(1)
	c.mu.Lock()
	if st != solver.Unknown {
		c.verdicts[key] = verdictEntry{equivalent: equal, status: st, counterexample: cex}
	}
	c.mu.Unlock()
	return equal, cex, st
}

// tape returns the compiled bit-parallel tape for a simplified miter,
// compiling and memoizing on miss. Tapes key on the same canonical ID as
// verdicts and share the cache's lifetime: epoch rotation retires the
// tape map together with its context, so a tape never outlives the terms
// it was compiled from.
func (c *Cache) tape(key uint64, eq *smt.Term) *smt.Tape {
	c.mu.RLock()
	tp, ok := c.tapes[key]
	c.mu.RUnlock()
	if ok {
		return tp
	}
	tp = smt.CompileTape(eq)
	c.counters.tapesCompiled.Add(1)
	c.mu.Lock()
	if prev, ok := c.tapes[key]; ok {
		tp = prev // keep the first winner; its executor pool is warm
	} else {
		c.tapes[key] = tp
	}
	c.mu.Unlock()
	return tp
}
