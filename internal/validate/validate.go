// Package validate implements Gauntlet's translation validation (§5): it
// converts the program emitted after every compiler pass into symbolic
// block formulas and checks consecutive snapshots for equivalence with the
// SMT solver. A satisfiable inequality pinpoints the erroneous pass and
// yields the input assignment (packet content, table entries) that
// triggers the miscompilation — exactly the report Figure 2 describes.
package validate

import (
	"context"
	"fmt"
	"time"

	"gauntlet/internal/compiler"
	"gauntlet/internal/p4/ast"
	"gauntlet/internal/smt"
	"gauntlet/internal/smt/solver"
	"gauntlet/internal/sym"
)

// Verdict reports the comparison of one block across one pass.
type Verdict struct {
	// PassA and PassB name the snapshots compared (PassB is the suspect).
	PassA, PassB string
	// Block is the programmable block name.
	Block string
	// Equivalent is true when the solver proved equivalence.
	Equivalent bool
	// Counterexample is the distinguishing assignment when inequivalent.
	Counterexample smt.Assignment
	// Status is the raw solver verdict (Unknown on conflict-budget
	// exhaustion).
	Status solver.Status
	// Err reports interpreter failures (treated as tool limitations, not
	// compiler bugs — the paper's false-alarm discipline, §5.2).
	Err error
}

// String renders the verdict for reports.
func (v Verdict) String() string {
	switch {
	case v.Err != nil:
		return fmt.Sprintf("%s→%s %s: interpreter error: %v", v.PassA, v.PassB, v.Block, v.Err)
	case v.Equivalent:
		return fmt.Sprintf("%s→%s %s: equivalent", v.PassA, v.PassB, v.Block)
	default:
		return fmt.Sprintf("%s→%s %s: NOT equivalent (counterexample %v)",
			v.PassA, v.PassB, v.Block, v.Counterexample)
	}
}

// Options configures validation.
type Options struct {
	// MaxConflicts bounds each solver call (0 = unbounded).
	MaxConflicts int
	// Cache memoizes block formulas, equivalence verdicts and compiled
	// miter tapes. Optional: nil gives each call a private cache
	// (intra-compilation reuse only). A campaign shares one cache across
	// hunts and worker goroutines.
	Cache *Cache
	// Concolic configures the bit-parallel concrete fast path that runs
	// under every equivalence query. The zero value enables it with the
	// default budget.
	Concolic Concolic
	// QueryObs, when non-nil, is invoked once per equivalence query with
	// the resolution tier that answered it (Tier* constants) and the
	// query's wall-clock latency. Observation-only: the hook must not
	// block, and installing it changes cost, never verdicts. It may be
	// called from many goroutines concurrently.
	QueryObs func(tier string, d time.Duration)
}

// Resolution tiers, cheapest first: the layer of the solver stack that
// answered an equivalence query. Reported via Options.QueryObs.
const (
	// TierSimplified: pointer-equal interned formulas, or a miter that
	// word-level simplification collapsed to constant true.
	TierSimplified = "simplified"
	// TierCacheHit: answered by the shared verdict cache.
	TierCacheHit = "cache-hit"
	// TierHintReplay: a caller-provided counterexample hint replayed
	// through the tape falsified the query (reduction fast path).
	TierHintReplay = "hint-replay"
	// TierConcolic: a deterministic concrete batch through the
	// bit-parallel tape falsified the query before any solver session.
	TierConcolic = "concolic-falsified"
	// TierCDCL: the full CDCL solver ran (including Unknown verdicts on
	// budget exhaustion).
	TierCDCL = "cdcl"
)

// DefaultConcolicRounds is the concrete budget per fresh equivalence
// query: rounds × 64 packets through the compiled tape before the solver
// is consulted. Four batches (256 packets) falsify the overwhelming
// majority of falsifiable miters — defect-injected pass pairs diverge on
// dense input regions — while costing microseconds on survived queries.
const DefaultConcolicRounds = 4

// Concolic configures the concrete falsification stage of equivalence
// checking. The zero value means "enabled, default budget, seed 0" —
// deterministic across runs and worker counts by construction, because
// batch inputs derive only from (Seed, miter structure), never from wall
// clock or a global RNG.
type Concolic struct {
	// Disable skips the tape entirely: every fresh query goes straight to
	// the solver (the PR 3 behavior). Used by the differential tests that
	// prove finding-set invariance, and available for bisection.
	Disable bool
	// Rounds is the number of 64-packet batches per query (0 =
	// DefaultConcolicRounds).
	Rounds int
	// Seed perturbs the deterministic input derivation. Campaigns keep it
	// fixed so every worker derives identical batches for a given miter.
	Seed uint64
	// Hints are known counterexample assignments to replay first, one
	// packet each — a reduction predicate holds the original program's
	// witness and most reduction candidates still fail on it. A hint hit
	// answers the query without batches and without the solver.
	Hints []smt.Assignment
}

func (c Concolic) rounds() int {
	if c.Rounds <= 0 {
		return DefaultConcolicRounds
	}
	return c.Rounds
}

func (o Options) cache() *Cache {
	if o.Cache != nil {
		return o.Cache
	}
	return NewCache()
}

// blockForms computes the symbolic form of every programmable block
// (parsers and controls) of a program, in declaration order, through the
// cache: blocks whose printed source (and constant environment) are
// unchanged since an earlier snapshot reuse the memoized formula instead
// of re-running symbolic execution.
func blockForms(c *Cache, prog *ast.Program) (map[string]*sym.Block, []string, error) {
	forms := map[string]*sym.Block{}
	var order []string
	consts := contextKey(prog)
	for _, d := range prog.Decls {
		var name string
		switch d := d.(type) {
		case *ast.ControlDecl:
			name = d.Name
		case *ast.ParserDecl:
			name = d.Name
		default:
			continue
		}
		b, err := c.blockForm(prog, consts, d)
		if err != nil {
			return nil, nil, fmt.Errorf("block %s: %w", name, err)
		}
		forms[name] = b
		order = append(order, name)
	}
	return forms, order, nil
}

// Snapshots validates every consecutive snapshot pair of a compilation.
// It returns one verdict per (pass transition, block) comparison; callers
// filter for failures. The first interpreter error aborts (it would
// poison later comparisons).
//
// Fast paths, in order of cheapness: identically-fingerprinted snapshots
// are equivalent without any symbolic work; per-block formula caching
// skips symbolic execution of unchanged blocks; pointer-equal (interned)
// formulas skip the solver; and the shared verdict cache answers repeated
// equivalence queries across snapshots and hunts.
func Snapshots(res *compiler.Result, opts Options) ([]Verdict, error) {
	return SnapshotsContext(context.Background(), res, opts)
}

// SnapshotsContext is Snapshots with cancellation: the context is checked
// between snapshots and between block comparisons (each individual solver
// query stays bounded by MaxConflicts), and ctx.Err() is returned with the
// verdicts gathered so far when the deadline fires mid-stream.
func SnapshotsContext(ctx context.Context, res *compiler.Result, opts Options) ([]Verdict, error) {
	var out []Verdict
	if len(res.Snapshots) == 0 {
		return nil, nil
	}
	cache := opts.cache()
	prevForms, _, err := blockForms(cache, res.Snapshots[0].Prog)
	if err != nil {
		return nil, fmt.Errorf("snapshot %s: %w", res.Snapshots[0].Pass, err)
	}
	prevPass := res.Snapshots[0].Pass
	prevHash := res.Snapshots[0].Hash
	for _, snap := range res.Snapshots[1:] {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		if snap.Hash != 0 && snap.Hash == prevHash {
			// The pass emitted a byte-identical program: every block is
			// trivially equivalent (the compiler usually elides these
			// snapshots; tolerate drivers that do not).
			prevPass = snap.Pass
			continue
		}
		forms, order, err := blockForms(cache, snap.Prog)
		if err != nil {
			return out, fmt.Errorf("snapshot %s: %w", snap.Pass, err)
		}
		for _, name := range order {
			if err := ctx.Err(); err != nil {
				return out, err
			}
			a, okA := prevForms[name]
			b := forms[name]
			if !okA {
				continue // block introduced by the pass (not in subset)
			}
			v := Verdict{PassA: prevPass, PassB: snap.Pass, Block: name}
			v.Equivalent, v.Counterexample, v.Status = cache.equivalent(ctx, a, b, opts)
			out = append(out, v)
		}
		prevForms, prevPass, prevHash = forms, snap.Pass, snap.Hash
	}
	return out, nil
}

// Failures filters verdicts down to inequivalences.
func Failures(vs []Verdict) []Verdict {
	var out []Verdict
	for _, v := range vs {
		if !v.Equivalent && v.Err == nil && v.Status == solver.Sat {
			out = append(out, v)
		}
	}
	return out
}

// Pair validates two programs directly (used by tests and the
// equivalence-checking example).
func Pair(a, b *ast.Program, opts Options) ([]Verdict, error) {
	cache := opts.cache()
	formsA, orderA, err := blockForms(cache, a)
	if err != nil {
		return nil, err
	}
	formsB, _, err := blockForms(cache, b)
	if err != nil {
		return nil, err
	}
	var out []Verdict
	for _, name := range orderA {
		fb, ok := formsB[name]
		if !ok {
			continue
		}
		v := Verdict{PassA: "A", PassB: "B", Block: name}
		v.Equivalent, v.Counterexample, v.Status = cache.equivalent(context.Background(), formsA[name], fb, opts)
		out = append(out, v)
	}
	return out, nil
}
