// Package validate implements Gauntlet's translation validation (§5): it
// converts the program emitted after every compiler pass into symbolic
// block formulas and checks consecutive snapshots for equivalence with the
// SMT solver. A satisfiable inequality pinpoints the erroneous pass and
// yields the input assignment (packet content, table entries) that
// triggers the miscompilation — exactly the report Figure 2 describes.
package validate

import (
	"fmt"

	"gauntlet/internal/compiler"
	"gauntlet/internal/p4/ast"
	"gauntlet/internal/smt"
	"gauntlet/internal/smt/solver"
	"gauntlet/internal/sym"
)

// Verdict reports the comparison of one block across one pass.
type Verdict struct {
	// PassA and PassB name the snapshots compared (PassB is the suspect).
	PassA, PassB string
	// Block is the programmable block name.
	Block string
	// Equivalent is true when the solver proved equivalence.
	Equivalent bool
	// Counterexample is the distinguishing assignment when inequivalent.
	Counterexample smt.Assignment
	// Status is the raw solver verdict (Unknown on conflict-budget
	// exhaustion).
	Status solver.Status
	// Err reports interpreter failures (treated as tool limitations, not
	// compiler bugs — the paper's false-alarm discipline, §5.2).
	Err error
}

// String renders the verdict for reports.
func (v Verdict) String() string {
	switch {
	case v.Err != nil:
		return fmt.Sprintf("%s→%s %s: interpreter error: %v", v.PassA, v.PassB, v.Block, v.Err)
	case v.Equivalent:
		return fmt.Sprintf("%s→%s %s: equivalent", v.PassA, v.PassB, v.Block)
	default:
		return fmt.Sprintf("%s→%s %s: NOT equivalent (counterexample %v)",
			v.PassA, v.PassB, v.Block, v.Counterexample)
	}
}

// Options configures validation.
type Options struct {
	// MaxConflicts bounds each solver call (0 = unbounded).
	MaxConflicts int
}

// blockForms computes the symbolic form of every programmable block
// (parsers and controls) of a program, in declaration order.
func blockForms(prog *ast.Program) (map[string]*sym.Block, []string, error) {
	forms := map[string]*sym.Block{}
	var order []string
	for _, d := range prog.Decls {
		switch d := d.(type) {
		case *ast.ControlDecl:
			b, err := sym.ExecControl(prog, d)
			if err != nil {
				return nil, nil, fmt.Errorf("block %s: %w", d.Name, err)
			}
			forms[d.Name] = b
			order = append(order, d.Name)
		case *ast.ParserDecl:
			b, err := sym.ExecParser(prog, d)
			if err != nil {
				return nil, nil, fmt.Errorf("block %s: %w", d.Name, err)
			}
			forms[d.Name] = b
			order = append(order, d.Name)
		}
	}
	return forms, order, nil
}

// Snapshots validates every consecutive snapshot pair of a compilation.
// It returns one verdict per (pass transition, block) comparison; callers
// filter for failures. The first interpreter error aborts (it would
// poison later comparisons).
func Snapshots(res *compiler.Result, opts Options) ([]Verdict, error) {
	var out []Verdict
	if len(res.Snapshots) == 0 {
		return nil, nil
	}
	prevForms, prevOrder, err := blockForms(res.Snapshots[0].Prog)
	if err != nil {
		return nil, fmt.Errorf("snapshot %s: %w", res.Snapshots[0].Pass, err)
	}
	prevPass := res.Snapshots[0].Pass
	for _, snap := range res.Snapshots[1:] {
		forms, order, err := blockForms(snap.Prog)
		if err != nil {
			return out, fmt.Errorf("snapshot %s: %w", snap.Pass, err)
		}
		for _, name := range order {
			a, okA := prevForms[name]
			b := forms[name]
			if !okA {
				continue // block introduced by the pass (not in subset)
			}
			v := Verdict{PassA: prevPass, PassB: snap.Pass, Block: name}
			eq, cex, st := solver.Equivalent(opts.MaxConflicts, sym.Equivalent(a, b), smt.True)
			v.Equivalent = eq
			v.Counterexample = cex
			v.Status = st
			out = append(out, v)
		}
		prevForms, prevOrder, prevPass = forms, order, snap.Pass
	}
	_ = prevOrder
	return out, nil
}

// Failures filters verdicts down to inequivalences.
func Failures(vs []Verdict) []Verdict {
	var out []Verdict
	for _, v := range vs {
		if !v.Equivalent && v.Err == nil && v.Status == solver.Sat {
			out = append(out, v)
		}
	}
	return out
}

// Pair validates two programs directly (used by tests and the
// equivalence-checking example).
func Pair(a, b *ast.Program, opts Options) ([]Verdict, error) {
	formsA, orderA, err := blockForms(a)
	if err != nil {
		return nil, err
	}
	formsB, _, err := blockForms(b)
	if err != nil {
		return nil, err
	}
	var out []Verdict
	for _, name := range orderA {
		fb, ok := formsB[name]
		if !ok {
			continue
		}
		v := Verdict{PassA: "A", PassB: "B", Block: name}
		eq, cex, st := solver.Equivalent(opts.MaxConflicts, sym.Equivalent(formsA[name], fb), smt.True)
		v.Equivalent = eq
		v.Counterexample = cex
		v.Status = st
		out = append(out, v)
	}
	return out, nil
}
