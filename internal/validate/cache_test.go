package validate_test

import (
	"reflect"
	"strings"
	"sync"
	"testing"

	"gauntlet/internal/compiler"
	"gauntlet/internal/validate"
)

const cacheProg = `
header Eth { bit<8> kind; bit<8> val; }
struct Headers { Eth eth; }
control ig(inout Headers hdr) {
    action bump() { hdr.eth.val = hdr.eth.val + 8w3; }
    table t {
        key = { hdr.eth.kind : exact; }
        actions = { bump; NoAction; }
        default_action = NoAction();
    }
    apply {
        t.apply();
        if (hdr.eth.kind == 8w1) {
            hdr.eth.val = hdr.eth.val * 8w2;
        }
    }
}
V1Switch(ig) main;
`

// TestSnapshotsSharedCacheSkipsRework validates the incremental fast
// path: a second validation of the same compilation through a shared
// cache must produce identical verdicts without re-running symbolic
// execution or the solver.
func TestSnapshotsSharedCacheSkipsRework(t *testing.T) {
	prog := mustProg(t, cacheProg)
	res, err := compiler.New(compiler.DefaultPasses()...).Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	cache := validate.NewCache()
	first, err := validate.Snapshots(res, validate.Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if len(first) == 0 {
		t.Fatal("expected at least one verdict")
	}
	_, bMissBefore, _, vMissBefore := cache.Stats()
	if bMissBefore == 0 {
		t.Fatal("first run should have populated the block cache")
	}

	second, err := validate.Snapshots(res, validate.Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("cached verdicts differ:\n  first  %v\n  second %v", first, second)
	}
	bHits, bMissAfter, _, vMissAfter := cache.Stats()
	if bMissAfter != bMissBefore {
		t.Fatalf("second run re-executed blocks symbolically: misses %d → %d", bMissBefore, bMissAfter)
	}
	if vMissAfter != vMissBefore {
		t.Fatalf("second run re-solved equivalence queries: misses %d → %d", vMissBefore, vMissAfter)
	}
	if bHits == 0 {
		t.Fatal("expected block-cache hits on the second run")
	}
}

// TestSnapshotsCacheConcurrent shares one cache across goroutines
// validating the same compilation — the campaign worker-pool usage. Run
// with -race in CI.
func TestSnapshotsCacheConcurrent(t *testing.T) {
	prog := mustProg(t, cacheProg)
	res, err := compiler.New(compiler.DefaultPasses()...).Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	cache := validate.NewCache()
	want, err := validate.Snapshots(res, validate.Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	outs := make([][]validate.Verdict, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			outs[w], errs[w] = validate.Snapshots(res, validate.Options{Cache: cache})
		}(w)
	}
	wg.Wait()
	for w := range outs {
		if errs[w] != nil {
			t.Fatalf("worker %d: %v", w, errs[w])
		}
		if !reflect.DeepEqual(outs[w], want) {
			t.Fatalf("worker %d verdicts diverge", w)
		}
	}
}

// TestCacheKeysIncludeTypeContext guards the block-formula cache key:
// these two programs print their parser and deparser blocks identically,
// but the header field widths differ, so the blocks mean different
// formulas. Validating the second program through a cache warmed by the
// first must re-symbolize (miss), not reuse the 8-bit formulas.
func TestCacheKeysIncludeTypeContext(t *testing.T) {
	const shape = `
header Eth { bit<%s> kind; bit<%s> val; }
struct Headers { Eth eth; }
parser p(packet pkt, out Headers hdr) {
    state start {
        pkt.extract(hdr.eth);
        transition accept;
    }
}
control dep(packet pkt, in Headers hdr) {
    apply { pkt.emit(hdr.eth); }
}
V1Switch(p, dep) main;
`
	progA := mustProg(t, strings.ReplaceAll(shape, "%s", "8"))
	progB := mustProg(t, strings.ReplaceAll(shape, "%s", "16"))

	cache := validate.NewCache()
	resA, err := compiler.New(compiler.DefaultPasses()...).Compile(progA)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := validate.Snapshots(resA, validate.Options{Cache: cache}); err != nil {
		t.Fatal(err)
	}
	_, missA, _, _ := cache.Stats()

	resB, err := compiler.New(compiler.DefaultPasses()...).Compile(progB)
	if err != nil {
		t.Fatal(err)
	}
	verdicts, err := validate.Snapshots(resB, validate.Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if len(validate.Failures(verdicts)) != 0 {
		t.Fatalf("reference pipeline flagged: %v", verdicts)
	}
	_, missB, _, _ := cache.Stats()
	if missB == missA {
		t.Fatal("16-bit program reused the 8-bit program's block formulas (cache key ignores type context)")
	}
}

// TestPrivateCacheStillCorrect: with no shared cache, each call gets a
// private one and verdicts match the shared-cache run (the default path
// used by one-off validations).
func TestPrivateCacheStillCorrect(t *testing.T) {
	prog := mustProg(t, cacheProg)
	res, err := compiler.New(compiler.DefaultPasses()...).Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	private, err := validate.Snapshots(res, validate.Options{})
	if err != nil {
		t.Fatal(err)
	}
	shared, err := validate.Snapshots(res, validate.Options{Cache: validate.NewCache()})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(private, shared) {
		t.Fatalf("private and shared cache runs disagree:\n  %v\n  %v", private, shared)
	}
}
