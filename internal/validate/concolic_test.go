package validate_test

import (
	"testing"

	"gauntlet/internal/smt"
	"gauntlet/internal/smt/solver"
	"gauntlet/internal/validate"
)

const satSrc = `
control ig(inout bit<8> x) {
    apply { x = x |+| 8w200; }
}`

const wrapSrc = `
control ig(inout bit<8> x) {
    apply { x = x + 8w200; }
}`

// TestConcolicFalsifySameVerdictAsSolver is the regression bar from the
// fast-path design: a miter the tape falsifies concretely must yield the
// same Verdict as the solver path — same equivalence bit, same status —
// and a witness that genuinely distinguishes the programs.
func TestConcolicFalsifySameVerdictAsSolver(t *testing.T) {
	check := func(name string, con validate.Concolic) validate.Verdict {
		cache := validate.NewCache()
		a := mustProg(t, satSrc)
		b := mustProg(t, wrapSrc)
		verdicts, err := validate.Pair(a, b, validate.Options{Cache: cache, Concolic: con})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		fails := validate.Failures(verdicts)
		if len(fails) != 1 {
			t.Fatalf("%s: saturating vs wrapping add should differ: %v", name, verdicts)
		}
		v := fails[0]
		if v.Status != solver.Sat || v.Equivalent {
			t.Fatalf("%s: want Sat inequivalence, got %+v", name, v)
		}
		// Any true witness makes the addition overflow (that is the only
		// input region where saturating and wrapping add differ).
		if x := v.Counterexample["x"]; x+200 <= 255 {
			t.Errorf("%s: counterexample x=%d does not overflow", name, x)
		}
		return v
	}
	fast := check("concolic", validate.Concolic{})
	slow := check("solver", validate.Concolic{Disable: true})
	if fast.Equivalent != slow.Equivalent || fast.Status != slow.Status {
		t.Errorf("verdicts diverge: concolic %+v vs solver %+v", fast, slow)
	}
}

// TestConcolicCounters pins the accounting: a falsifiable miter bumps
// TapesCompiled and ConcolicFalsified (no solver fallback), and the
// verdict — witness included — is cached, so the rerun is a pure hit.
func TestConcolicCounters(t *testing.T) {
	cache := validate.NewCache()
	a := mustProg(t, satSrc)
	b := mustProg(t, wrapSrc)
	opts := validate.Options{Cache: cache}
	if _, err := validate.Pair(a, b, opts); err != nil {
		t.Fatal(err)
	}
	s := cache.Snapshot()
	if s.TapesCompiled == 0 {
		t.Errorf("no tapes compiled: %+v", s)
	}
	if s.ConcolicFalsified == 0 {
		t.Errorf("falsifiable miter not falsified concretely: %+v", s)
	}
	if s.ConcolicPackets == 0 {
		t.Errorf("no packets accounted: %+v", s)
	}
	first, err := validate.Pair(a, b, opts)
	if err != nil {
		t.Fatal(err)
	}
	s2 := cache.Snapshot()
	if s2.VerdictHits == 0 {
		t.Errorf("second query missed the verdict cache: %+v", s2)
	}
	if s2.TapesCompiled != s.TapesCompiled {
		t.Errorf("rerun recompiled tapes: %d -> %d", s.TapesCompiled, s2.TapesCompiled)
	}
	if x := validate.Failures(first)[0].Counterexample["x"]; x+200 <= 255 {
		t.Errorf("cached witness x=%d does not overflow", x)
	}
}

// TestConcolicEquivalentPairFallsBack: an equivalent pair can never be
// falsified, so unless simplification already resolved it the query falls
// back to the solver — and is never misreported as a mismatch.
func TestConcolicEquivalentPairFallsBack(t *testing.T) {
	cache := validate.NewCache()
	a := mustProg(t, `
control ig(inout bit<8> x) {
    apply { x = x * 8w2; }
}`)
	b := mustProg(t, `
control ig(inout bit<8> x) {
    apply { x = x << 8w1; }
}`)
	verdicts, err := validate.Pair(a, b, validate.Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if len(validate.Failures(verdicts)) != 0 {
		t.Fatalf("equivalent pair flagged: %v", verdicts)
	}
	s := cache.Snapshot()
	if s.ConcolicFalsified != 0 {
		t.Errorf("equivalent miter reported falsified: %+v", s)
	}
	if s.SimpResolved == 0 && s.SolverFallbacks == 0 {
		t.Errorf("equivalent pair resolved neither by simplifier nor solver: %+v", s)
	}
}

// TestConcolicHintReplay: a caller-provided counterexample decides the
// query in one packet (ReplayHits), and hint-derived verdicts are never
// written to the verdict cache — a later hint-free query computes the
// canonical verdict instead of inheriting history-dependent state.
func TestConcolicHintReplay(t *testing.T) {
	a := mustProg(t, satSrc)
	b := mustProg(t, wrapSrc)

	// Harvest a genuine witness from a canonical run.
	seedCache := validate.NewCache()
	verdicts, err := validate.Pair(a, b, validate.Options{Cache: seedCache})
	if err != nil {
		t.Fatal(err)
	}
	cex := validate.Failures(verdicts)[0].Counterexample
	if cex == nil {
		t.Fatal("no counterexample harvested")
	}

	cache := validate.NewCache()
	opts := validate.Options{Cache: cache, Concolic: validate.Concolic{Hints: []smt.Assignment{cex}}}
	hinted, err := validate.Pair(mustProg(t, satSrc), mustProg(t, wrapSrc), opts)
	if err != nil {
		t.Fatal(err)
	}
	fails := validate.Failures(hinted)
	if len(fails) != 1 {
		t.Fatalf("hinted query missed the inequivalence: %v", hinted)
	}
	if x := fails[0].Counterexample["x"]; x+200 <= 255 {
		t.Errorf("replayed witness x=%d does not overflow", x)
	}
	s := cache.Snapshot()
	if s.ReplayHits != 1 {
		t.Errorf("want 1 replay hit, got %+v", s)
	}
	if s.ConcolicFalsified != 0 || s.SolverFallbacks != 0 {
		t.Errorf("hint hit should preempt batches and solver: %+v", s)
	}
	// Not cached: the same query replays the hint again rather than
	// hitting the verdict cache.
	if _, err := validate.Pair(mustProg(t, satSrc), mustProg(t, wrapSrc), opts); err != nil {
		t.Fatal(err)
	}
	s2 := cache.Snapshot()
	if s2.ReplayHits != 2 {
		t.Errorf("hint verdict was cached (want second replay): %+v", s2)
	}
	if s2.VerdictHits != 0 {
		t.Errorf("hint verdict leaked into the verdict cache: %+v", s2)
	}
}

// TestConcolicDisabled: Disable must keep the tape machinery fully cold.
func TestConcolicDisabled(t *testing.T) {
	cache := validate.NewCache()
	opts := validate.Options{Cache: cache, Concolic: validate.Concolic{Disable: true,
		Hints: []smt.Assignment{{"x": 255}}}}
	verdicts, err := validate.Pair(mustProg(t, satSrc), mustProg(t, wrapSrc), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(validate.Failures(verdicts)) != 1 {
		t.Fatalf("solver path missed the inequivalence: %v", verdicts)
	}
	s := cache.Snapshot()
	if s.TapesCompiled != 0 || s.ConcolicFalsified != 0 || s.ReplayHits != 0 || s.ConcolicPackets != 0 {
		t.Errorf("disabled concolic stage still ran: %+v", s)
	}
}

// TestConcolicWitnessDeterministic: the falsifying witness is a pure
// function of (seed, miter structure) — two fresh caches over the same
// pair produce byte-identical counterexamples.
func TestConcolicWitnessDeterministic(t *testing.T) {
	get := func() smt.Assignment {
		cache := validate.NewCache()
		verdicts, err := validate.Pair(mustProg(t, satSrc), mustProg(t, wrapSrc),
			validate.Options{Cache: cache})
		if err != nil {
			t.Fatal(err)
		}
		return validate.Failures(verdicts)[0].Counterexample
	}
	a, b := get(), get()
	if len(a) != len(b) {
		t.Fatalf("witnesses differ in shape: %v vs %v", a, b)
	}
	for k, v := range a {
		if b[k] != v {
			t.Errorf("witnesses differ at %s: %d vs %d", k, v, b[k])
		}
	}
}
