package validate_test

import (
	"strings"
	"testing"

	"gauntlet/internal/compiler"
	"gauntlet/internal/p4/ast"
	"gauntlet/internal/p4/parser"
	"gauntlet/internal/p4/types"
	"gauntlet/internal/smt"
	"gauntlet/internal/validate"
)

func mustProg(t *testing.T, src string) *ast.Program {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := types.Check(p); err != nil {
		t.Fatalf("check: %v", err)
	}
	return p
}

func TestPairEquivalent(t *testing.T) {
	a := mustProg(t, `
control ig(inout bit<8> x) {
    apply { x = x * 8w2; }
}`)
	b := mustProg(t, `
control ig(inout bit<8> x) {
    apply { x = x << 8w1; }
}`)
	verdicts, err := validate.Pair(a, b, validate.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(verdicts) != 1 || !verdicts[0].Equivalent {
		t.Fatalf("x*2 and x<<1 should validate as equivalent: %v", verdicts)
	}
}

func TestPairInequivalentWithCounterexample(t *testing.T) {
	a := mustProg(t, `
control ig(inout bit<8> x) {
    apply { x = x |+| 8w200; }
}`)
	b := mustProg(t, `
control ig(inout bit<8> x) {
    apply { x = x + 8w200; }
}`)
	verdicts, err := validate.Pair(a, b, validate.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fails := validate.Failures(verdicts)
	if len(fails) != 1 {
		t.Fatalf("saturating vs wrapping add should differ: %v", verdicts)
	}
	// The counterexample must actually distinguish the programs: an
	// input that overflows.
	x := fails[0].Counterexample["x"]
	if x+200 <= 255 {
		t.Errorf("counterexample x=%d does not overflow", x)
	}
}

func TestPairValidityGatesFields(t *testing.T) {
	// Programs that differ only in the fields of an invalidated header
	// are observationally equal (§5.2 header-validity semantics).
	a := mustProg(t, `
header H { bit<8> a; }
struct S { H h; }
control ig(inout S s) {
    apply {
        s.h.a = 8w1;
        s.h.setInvalid();
    }
}`)
	b := mustProg(t, `
header H { bit<8> a; }
struct S { H h; }
control ig(inout S s) {
    apply {
        s.h.a = 8w99;
        s.h.setInvalid();
    }
}`)
	verdicts, err := validate.Pair(a, b, validate.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(validate.Failures(verdicts)) != 0 {
		t.Fatalf("invalid-header field contents must not be observable: %v", verdicts)
	}
}

func TestSnapshotsSkipIdenticalPasses(t *testing.T) {
	prog := mustProg(t, `
control ig(inout bit<8> x) {
    apply { x = x + 8w1; }
}
V1Switch(ig) main;
`)
	res, err := compiler.New(compiler.DefaultPasses()...).Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	// A trivial program: most passes are no-ops, so the snapshot list
	// stays short (the §5.2 hash-skipping behaviour).
	if len(res.Snapshots) > 3 {
		var names []string
		for _, s := range res.Snapshots {
			names = append(names, s.Pass)
		}
		t.Errorf("expected few snapshots for a trivial program, got %v", names)
	}
	verdicts, err := validate.Snapshots(res, validate.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(validate.Failures(verdicts)) != 0 {
		t.Errorf("reference pipeline flagged: %v", verdicts)
	}
}

func TestVerdictString(t *testing.T) {
	v := validate.Verdict{PassA: "initial", PassB: "Predication", Block: "ig",
		Equivalent: false, Counterexample: smt.Assignment{"x": 3}}
	if !strings.Contains(v.String(), "NOT equivalent") {
		t.Errorf("verdict rendering: %s", v)
	}
}

func TestPairParserBlocks(t *testing.T) {
	src := `
header Eth { bit<16> etype; }
struct S { Eth eth; }
parser p(packet pkt, out S hdr) {
    state start {
        pkt.extract(hdr.eth);
        transition select(hdr.eth.etype) {
            16w1 : accept;
            default : reject;
        }
    }
}
`
	changed := strings.Replace(src, "16w1", "16w2", 1)
	a := mustProg(t, src)
	b := mustProg(t, changed)
	verdicts, err := validate.Pair(a, b, validate.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(validate.Failures(verdicts)) != 1 {
		t.Fatalf("parsers with different accept sets should differ: %v", verdicts)
	}
	// Same program against itself: equivalent.
	verdicts, err = validate.Pair(a, mustProg(t, src), validate.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(validate.Failures(verdicts)) != 0 {
		t.Fatalf("identical parsers flagged: %v", verdicts)
	}
}
