// Package mutate implements AST-level program mutators for the
// coverage-guided corpus engine. These are the dual of bugs.Mutators:
// that package corrupts a pass's *output* to simulate compiler defects;
// this one perturbs *input* programs so the fuzzer can explore the
// neighbourhood of seeds that already reached interesting pass behaviour,
// instead of redrawing every program from the grammar.
//
// Every mutator is deterministic under a supplied *rand.Rand — the same
// stream over the same base (and donor) programs produces the same
// mutant, which is what keeps the engine's schedule reproducible and
// worker-count independent. Mutators are validity-preserving by
// construction wherever the site permits (swaps stay inside declaration-
// free segments, grafts only replace literals with closed expressions of
// the same width, parser-state insertion is a pass-through state); the
// few that can still break a def-use or const-expr constraint are
// rejected cheaply by the type checker in the caller before the program
// ever reaches the oracle.
package mutate

import (
	"fmt"
	"math/rand"

	"gauntlet/internal/p4/ast"
)

// Mutator is one named program perturbation. Apply mutates prog in place
// (callers pass a private clone) and reports whether a mutation site was
// found; donor is a second corpus seed for cross-program grafting and may
// be nil.
type Mutator struct {
	Name  string
	Apply func(r *rand.Rand, prog, donor *ast.Program) bool
}

// Catalog returns the mutator set in a fixed order (the order is part of
// the deterministic schedule: index draws must mean the same mutator on
// every run).
func Catalog() []Mutator {
	return []Mutator{
		{"stmt-duplicate", stmtDuplicate},
		{"stmt-swap", stmtSwap},
		{"stmt-splice", stmtSplice},
		{"expr-graft", exprGraft},
		{"const-tweak", constTweak},
		{"width-tweak", widthTweak},
		{"if-to-switch", ifToSwitch},
		{"table-add-action", tableAddAction},
		{"parser-state-insert", parserStateInsert},
	}
}

// Program clones base and applies 1..maxOps randomly drawn mutators,
// returning the mutant, the names of the mutators that found a site, and
// whether any did. The result is NOT type-checked here — callers reject
// invalid mutants cheaply before compiling.
func Program(r *rand.Rand, base, donor *ast.Program, maxOps int) (*ast.Program, []string, bool) {
	if maxOps < 1 {
		maxOps = 1
	}
	mutant := ast.CloneProgram(base)
	cat := Catalog()
	n := 1 + r.Intn(maxOps)
	var applied []string
	for i := 0; i < n; i++ {
		m := cat[r.Intn(len(cat))]
		if m.Apply(r, mutant, donor) {
			applied = append(applied, m.Name)
		}
	}
	return mutant, applied, len(applied) > 0
}

// ---------------------------------------------------------------------------
// Site enumeration helpers. All walks are in declaration order — never over
// maps — so site indices are deterministic.

// bodyLists enumerates every mutable statement list in executable bodies
// (control apply blocks, actions, functions; nested blocks included).
// Parser states are excluded: their statements are extract calls whose
// order and multiplicity the stmt mutators should not disturb.
func bodyLists(prog *ast.Program) []*[]ast.Stmt {
	var out []*[]ast.Stmt
	var fromBlock func(b *ast.BlockStmt)
	fromList := func(l *[]ast.Stmt) {
		out = append(out, l)
		for _, s := range *l {
			switch s := s.(type) {
			case *ast.IfStmt:
				fromBlock(s.Then)
				if els, ok := s.Else.(*ast.BlockStmt); ok {
					fromBlock(els)
				}
			case *ast.BlockStmt:
				fromBlock(s)
			case *ast.SwitchStmt:
				for i := range s.Cases {
					fromBlock(s.Cases[i].Body)
				}
			}
		}
	}
	fromBlock = func(b *ast.BlockStmt) {
		if b == nil {
			return
		}
		fromList(&b.Stmts)
	}
	for _, d := range prog.Decls {
		switch d := d.(type) {
		case *ast.ControlDecl:
			for _, l := range d.Locals {
				switch l := l.(type) {
				case *ast.ActionDecl:
					fromBlock(l.Body)
				case *ast.FunctionDecl:
					fromBlock(l.Body)
				}
			}
			fromBlock(d.Apply)
		case *ast.FunctionDecl:
			fromBlock(d.Body)
		case *ast.ActionDecl:
			fromBlock(d.Body)
		}
	}
	return out
}

// isDecl reports whether a statement introduces a name (moving it past a
// use would break def-before-use).
func isDecl(s ast.Stmt) bool {
	switch s.(type) {
	case *ast.VarDeclStmt, *ast.ConstDeclStmt:
		return true
	}
	return false
}

// segment returns the declaration-free segment [lo, hi) of list around
// index i: statements inside one segment can be freely reordered without
// moving any declaration relative to its uses.
func segment(list []ast.Stmt, i int) (lo, hi int) {
	lo = i
	for lo > 0 && !isDecl(list[lo-1]) {
		lo--
	}
	hi = i + 1
	for hi < len(list) && !isDecl(list[hi]) {
		hi++
	}
	return lo, hi
}

// intLitSite is one replaceable literal: a pointer-bearing container whose
// rewrite substitutes the literal.
type intLitSite struct {
	lit     *ast.IntLit
	replace func(ast.Expr)
}

// intLitSites enumerates sized integer literals in replace-safe positions:
// assignment RHSs, variable initializers, if conditions, call arguments,
// return values and switch tags. Const-decl values, switch labels, select
// values and table default arguments are excluded — those contexts demand
// literal or compile-time-constant forms that a general replacement could
// break.
func intLitSites(prog *ast.Program) []intLitSite {
	var sites []intLitSite
	var inExpr func(slot *ast.Expr)
	collect := func(e ast.Expr) {
		// Walk with parent pointers via closures over each child slot.
		switch x := e.(type) {
		case *ast.UnaryExpr:
			inExpr(&x.X)
		case *ast.BinaryExpr:
			inExpr(&x.X)
			inExpr(&x.Y)
		case *ast.MuxExpr:
			inExpr(&x.Cond)
			inExpr(&x.Then)
			inExpr(&x.Else)
		case *ast.CastExpr:
			inExpr(&x.X)
		case *ast.MemberExpr:
			inExpr(&x.X)
		case *ast.SliceExpr:
			inExpr(&x.X)
		case *ast.CallExpr:
			for i := range x.Args {
				inExpr(&x.Args[i])
			}
		}
	}
	inExpr = func(slot *ast.Expr) {
		if *slot == nil {
			return
		}
		if lit, ok := (*slot).(*ast.IntLit); ok && lit.Width > 0 {
			s := slot
			sites = append(sites, intLitSite{lit: lit, replace: func(e ast.Expr) { *s = e }})
			return
		}
		collect(*slot)
	}
	for _, b := range bodyLists(prog) {
		for _, s := range *b {
			switch s := s.(type) {
			case *ast.AssignStmt:
				inExpr(&s.RHS)
			case *ast.VarDeclStmt:
				inExpr(&s.Init)
			case *ast.IfStmt:
				inExpr(&s.Cond)
			case *ast.CallStmt:
				for i := range s.Call.Args {
					inExpr(&s.Call.Args[i])
				}
			case *ast.ReturnStmt:
				inExpr(&s.Value)
			case *ast.SwitchStmt:
				inExpr(&s.Tag)
			}
		}
	}
	return sites
}

// ---------------------------------------------------------------------------
// Statement mutators.

// stmtDuplicate clones a non-declaration statement and inserts the copy
// right after the original. Assignments, calls and branches are all
// re-executable, so the result stays well-typed by construction.
func stmtDuplicate(r *rand.Rand, prog, _ *ast.Program) bool {
	var cands []struct {
		list *[]ast.Stmt
		i    int
	}
	for _, b := range bodyLists(prog) {
		for i, s := range *b {
			if isDecl(s) {
				continue
			}
			switch s.(type) {
			case *ast.ExitStmt, *ast.ReturnStmt:
				continue // duplicating a terminator is dead code at best
			}
			cands = append(cands, struct {
				list *[]ast.Stmt
				i    int
			}{b, i})
		}
	}
	if len(cands) == 0 {
		return false
	}
	c := cands[r.Intn(len(cands))]
	list := *c.list
	dup := ast.CloneStmt(list[c.i])
	out := append(append([]ast.Stmt{}, list[:c.i+1]...), dup)
	out = append(out, list[c.i+1:]...)
	*c.list = out
	return true
}

// stmtSwap exchanges two adjacent statements inside a declaration-free
// segment — scope-safe by construction.
func stmtSwap(r *rand.Rand, prog, _ *ast.Program) bool {
	var cands []struct {
		list *[]ast.Stmt
		i    int
	}
	for _, b := range bodyLists(prog) {
		for i := 0; i+1 < len(*b); i++ {
			if isDecl((*b)[i]) || isDecl((*b)[i+1]) {
				continue
			}
			cands = append(cands, struct {
				list *[]ast.Stmt
				i    int
			}{b, i})
		}
	}
	if len(cands) == 0 {
		return false
	}
	c := cands[r.Intn(len(cands))]
	list := *c.list
	list[c.i], list[c.i+1] = list[c.i+1], list[c.i]
	return true
}

// stmtSplice moves one non-declaration statement to a different position
// within its declaration-free segment (a long-range reorder, where
// stmtSwap is the adjacent special case).
func stmtSplice(r *rand.Rand, prog, _ *ast.Program) bool {
	var cands []struct {
		list   *[]ast.Stmt
		i      int
		lo, hi int
	}
	for _, b := range bodyLists(prog) {
		for i, s := range *b {
			if isDecl(s) {
				continue
			}
			lo, hi := segment(*b, i)
			if hi-lo < 2 {
				continue
			}
			cands = append(cands, struct {
				list   *[]ast.Stmt
				i      int
				lo, hi int
			}{b, i, lo, hi})
		}
	}
	if len(cands) == 0 {
		return false
	}
	c := cands[r.Intn(len(cands))]
	list := *c.list
	s := list[c.i]
	rest := append(append([]ast.Stmt{}, list[:c.i]...), list[c.i+1:]...)
	// Pick the insert position in post-removal coordinates; k == i would
	// rebuild the original order, so it is excluded from the draw.
	k := c.lo + r.Intn(c.hi-c.lo-1)
	if k >= c.i {
		k++
	}
	out := append(append([]ast.Stmt{}, rest[:k]...), s)
	out = append(out, rest[k:]...)
	*c.list = out
	return true
}

// ---------------------------------------------------------------------------
// Expression mutators.

// closedExpr reports whether e contains no identifiers or calls (so it is
// meaningful outside its original scope) and returns its bit width, or
// ok=false for boolean/unsized/non-relocatable expressions.
func closedExpr(e ast.Expr) (width int, ok bool) {
	switch e := e.(type) {
	case *ast.IntLit:
		if e.Width > 0 {
			return e.Width, true
		}
	case *ast.UnaryExpr:
		if e.Op == ast.OpNeg || e.Op == ast.OpBitNot {
			return closedExpr(e.X)
		}
	case *ast.BinaryExpr:
		switch e.Op {
		case ast.OpAdd, ast.OpSub, ast.OpMul, ast.OpSatAdd, ast.OpSatSub,
			ast.OpBitAnd, ast.OpBitOr, ast.OpBitXor:
			wx, okx := closedExpr(e.X)
			_, oky := closedExpr(e.Y)
			if okx && oky {
				return wx, true
			}
		case ast.OpShl, ast.OpShr:
			wx, okx := closedExpr(e.X)
			_, oky := closedExpr(e.Y)
			if okx && oky {
				return wx, true
			}
		case ast.OpConcat:
			wx, okx := closedExpr(e.X)
			wy, oky := closedExpr(e.Y)
			if okx && oky {
				return wx + wy, true
			}
		}
	case *ast.CastExpr:
		bt, isBit := e.To.(*ast.BitType)
		if !isBit {
			return 0, false
		}
		if _, ok := closedExpr(e.X); ok {
			return bt.Width, true
		}
	case *ast.SliceExpr:
		if _, ok := closedExpr(e.X); ok {
			return e.Hi - e.Lo + 1, true
		}
	}
	return 0, false
}

// donorExprs harvests closed subexpressions from a program, grouped by
// width, in deterministic walk order. Trivial literals are skipped — the
// graft should transplant structure, not constants.
func donorExprs(prog *ast.Program) map[int][]ast.Expr {
	out := map[int][]ast.Expr{}
	var visit func(e ast.Expr)
	visit = func(e ast.Expr) {
		if e == nil {
			return
		}
		if _, isLit := e.(*ast.IntLit); !isLit {
			if w, ok := closedExpr(e); ok {
				out[w] = append(out[w], e)
				return // children are part of the harvested tree
			}
		}
		ast.Inspect(e, func(x ast.Expr) bool {
			if x == e {
				return true
			}
			visit(x)
			return false
		})
	}
	for _, b := range bodyLists(prog) {
		for _, s := range *b {
			switch s := s.(type) {
			case *ast.AssignStmt:
				visit(s.RHS)
			case *ast.VarDeclStmt:
				visit(s.Init)
			case *ast.IfStmt:
				visit(s.Cond)
			case *ast.ReturnStmt:
				visit(s.Value)
			}
		}
	}
	return out
}

// exprGraft transplants a closed (identifier-free) expression from the
// donor program over a same-width literal in the base — cross-seed
// recombination that stays well-typed by construction.
func exprGraft(r *rand.Rand, prog, donor *ast.Program) bool {
	if donor == nil {
		return false
	}
	sites := intLitSites(prog)
	if len(sites) == 0 {
		return false
	}
	pool := donorExprs(donor)
	// Deterministic site order; try a random rotation until a width match.
	start := r.Intn(len(sites))
	for k := 0; k < len(sites); k++ {
		site := sites[(start+k)%len(sites)]
		cands := pool[site.lit.Width]
		if len(cands) == 0 {
			continue
		}
		site.replace(ast.CloneExpr(cands[r.Intn(len(cands))]))
		return true
	}
	return false
}

// constTweak perturbs one integer literal: increment, decrement,
// complement, zero, all-ones or a fresh random value. Switch labels and
// select-case values stay literal (they are mutated in place), so every
// constant context in the program is fair game.
func constTweak(r *rand.Rand, prog, _ *ast.Program) bool {
	var lits []*ast.IntLit
	for _, site := range intLitSites(prog) {
		lits = append(lits, site.lit)
	}
	// Constant-only contexts: switch labels and parser select values.
	for _, b := range bodyLists(prog) {
		for _, s := range *b {
			if sw, ok := s.(*ast.SwitchStmt); ok {
				for i := range sw.Cases {
					for _, l := range sw.Cases[i].Labels {
						if lit, ok := l.(*ast.IntLit); ok && lit.Width > 0 {
							lits = append(lits, lit)
						}
					}
				}
			}
		}
	}
	for _, d := range prog.Decls {
		if pd, ok := d.(*ast.ParserDecl); ok {
			for i := range pd.States {
				if sel, ok := pd.States[i].Trans.(*ast.TransSelect); ok {
					for _, c := range sel.Cases {
						if c.Value != nil && c.Value.Width > 0 {
							lits = append(lits, c.Value)
						}
					}
				}
			}
		}
	}
	if len(lits) == 0 {
		return false
	}
	lit := lits[r.Intn(len(lits))]
	old := lit.Val
	switch r.Intn(6) {
	case 0:
		lit.Val = ast.MaskWidth(lit.Val+1, lit.Width)
	case 1:
		lit.Val = ast.MaskWidth(lit.Val-1, lit.Width)
	case 2:
		lit.Val = ast.MaskWidth(^lit.Val, lit.Width)
	case 3:
		lit.Val = 0
	case 4:
		lit.Val = ast.MaskWidth(^uint64(0), lit.Width)
	default:
		lit.Val = ast.MaskWidth(r.Uint64(), lit.Width)
	}
	if lit.Val == old {
		// The draw landed on the current value (zeroing an already-zero
		// literal, a random collision); +1 mod 2^w always moves.
		lit.Val = ast.MaskWidth(old+1, lit.Width)
	}
	return true
}

// widthTweakChoices are the intermediate widths the double-cast routes
// through (the generator's realistic field sizes).
var widthTweakChoices = []int{1, 2, 4, 7, 8, 12, 16, 24, 32, 48}

// widthTweak replaces a literal K of width w with (bit<w>)((bit<w2>)K'):
// a width-perturbing round trip that is well-typed by construction and
// exercises cast folding, truncation and extension plumbing.
func widthTweak(r *rand.Rand, prog, _ *ast.Program) bool {
	sites := intLitSites(prog)
	if len(sites) == 0 {
		return false
	}
	site := sites[r.Intn(len(sites))]
	w := site.lit.Width
	w2 := widthTweakChoices[r.Intn(len(widthTweakChoices))]
	inner := &ast.IntLit{Width: w2, Val: ast.MaskWidth(site.lit.Val, w2)}
	site.replace(&ast.CastExpr{
		To: &ast.BitType{Width: w},
		X:  &ast.CastExpr{To: &ast.BitType{Width: w2}, X: inner},
	})
	return true
}

// ---------------------------------------------------------------------------
// Control-flow and structure mutators.

// ifToSwitch rewrites "if (e == K) A else B" into "switch (e) { K: A;
// default: B; }" — semantically equivalent, but a different statement
// shape for predication, def-use and dead-code passes to chew on.
func ifToSwitch(r *rand.Rand, prog, _ *ast.Program) bool {
	var cands []struct {
		list *[]ast.Stmt
		i    int
	}
	for _, b := range bodyLists(prog) {
		for i, s := range *b {
			iff, ok := s.(*ast.IfStmt)
			if !ok {
				continue
			}
			bin, ok := iff.Cond.(*ast.BinaryExpr)
			if !ok || bin.Op != ast.OpEq {
				continue
			}
			_, xLit := bin.X.(*ast.IntLit)
			yLit, yIsLit := bin.Y.(*ast.IntLit)
			// Need exactly one literal side, and the tag side must be a
			// bit expression (it is: == with a sized literal forces it).
			if xLit == yIsLit {
				continue
			}
			if yIsLit && yLit.Width == 0 {
				continue
			}
			if xl, ok := bin.X.(*ast.IntLit); ok && xl.Width == 0 {
				continue
			}
			cands = append(cands, struct {
				list *[]ast.Stmt
				i    int
			}{b, i})
		}
	}
	if len(cands) == 0 {
		return false
	}
	c := cands[r.Intn(len(cands))]
	iff := (*c.list)[c.i].(*ast.IfStmt)
	bin := iff.Cond.(*ast.BinaryExpr)
	tag, lit := bin.X, bin.Y
	if l, ok := bin.X.(*ast.IntLit); ok {
		tag, lit = bin.Y, l
	}
	var def *ast.BlockStmt
	switch els := iff.Else.(type) {
	case nil:
		def = &ast.BlockStmt{}
	case *ast.BlockStmt:
		def = els
	default:
		def = ast.Block(els)
	}
	(*c.list)[c.i] = &ast.SwitchStmt{
		Tag: tag,
		Cases: []ast.SwitchCase{
			{Labels: []ast.Expr{lit}, Body: iff.Then},
			{Body: def},
		},
	}
	return true
}

// tableAddAction adds an in-scope control-plane action (directionless
// parameters only) to a table's action list, occasionally promoting it to
// the default action with fresh literal arguments — a table-shape
// perturbation the control plane could legally perform.
func tableAddAction(r *rand.Rand, prog, _ *ast.Program) bool {
	type cand struct {
		table  *ast.TableDecl
		action *ast.ActionDecl
	}
	var cands []cand
	for _, d := range prog.Decls {
		c, ok := d.(*ast.ControlDecl)
		if !ok {
			continue
		}
		for _, t := range c.Tables() {
			listed := map[string]bool{}
			for _, a := range t.Actions {
				listed[a.Name] = true
			}
			for _, a := range c.Actions() {
				if listed[a.Name] {
					continue
				}
				plain := true
				for _, p := range a.Params {
					if p.Dir != ast.DirNone {
						plain = false
						break
					}
				}
				if plain {
					cands = append(cands, cand{t, a})
				}
			}
		}
	}
	if len(cands) == 0 {
		return false
	}
	pick := cands[r.Intn(len(cands))]
	pick.table.Actions = append(pick.table.Actions, ast.ActionRef{Name: pick.action.Name})
	if r.Intn(2) == 0 {
		ref := ast.ActionRef{Name: pick.action.Name}
		for _, p := range pick.action.Params {
			if bt, ok := p.Type.(*ast.BitType); ok {
				ref.Args = append(ref.Args, ast.Num(bt.Width, r.Uint64()))
			}
		}
		pick.table.Default = &ref
	}
	return true
}

// parserStateInsert splices a fresh pass-through state into a direct
// transition: start -> S becomes start -> mut_k -> S. Semantically the
// identity, but it changes the parser's state graph — the shape the
// parser-coverage features key on.
func parserStateInsert(r *rand.Rand, prog, _ *ast.Program) bool {
	type cand struct {
		parser *ast.ParserDecl
		state  int
	}
	var cands []cand
	for _, d := range prog.Decls {
		pd, ok := d.(*ast.ParserDecl)
		if !ok {
			continue
		}
		for i := range pd.States {
			if _, ok := pd.States[i].Trans.(*ast.TransDirect); ok {
				cands = append(cands, cand{pd, i})
			}
		}
	}
	if len(cands) == 0 {
		return false
	}
	c := cands[r.Intn(len(cands))]
	taken := map[string]bool{}
	for i := range c.parser.States {
		taken[c.parser.States[i].Name] = true
	}
	name := ""
	for k := 0; ; k++ {
		name = fmt.Sprintf("mut_s%d", k)
		if !taken[name] {
			break
		}
	}
	tr := c.parser.States[c.state].Trans.(*ast.TransDirect)
	c.parser.States = append(c.parser.States, ast.ParserState{
		Name:  name,
		Trans: &ast.TransDirect{Next: tr.Next},
	})
	c.parser.States[c.state].Trans = &ast.TransDirect{Next: name}
	return true
}
