package mutate_test

import (
	"math/rand"
	"testing"

	"gauntlet/internal/generator"
	"gauntlet/internal/mutate"
	"gauntlet/internal/p4/ast"
	"gauntlet/internal/p4/printer"
	"gauntlet/internal/p4/types"
)

// TestMutatorsDifferential runs every mutator over a population of
// generated seeds and asserts the corpus-engine contract: no panics, the
// base program is never mutated, application is deterministic under a
// fixed rand stream, and the invalid (type-check-rejected) rate stays
// bounded — mutants are validity-preserving by construction or rejected
// cheaply, never a flood of garbage.
func TestMutatorsDifferential(t *testing.T) {
	const seeds = 30
	for _, m := range mutate.Catalog() {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			applied, invalid, unchanged := 0, 0, 0
			for s := int64(0); s < seeds; s++ {
				base := generator.Generate(generator.DefaultConfig(s))
				donor := generator.Generate(generator.DefaultConfig(s + 1000))
				before := printer.Print(base)

				clone := ast.CloneProgram(base)
				r := rand.New(rand.NewSource(s))
				ok := m.Apply(r, clone, donor)

				if printer.Print(base) != before {
					t.Fatalf("seed %d: mutator touched the base program", s)
				}
				if !ok {
					continue
				}
				applied++
				if printer.Print(clone) == before {
					// Legitimate only for reorders of identical statements;
					// anything systematic trips the rate check below.
					unchanged++
				}
				if types.Check(ast.CloneProgram(clone)) != nil {
					invalid++
				}

				// Determinism: replaying the same stream reproduces the
				// mutant byte for byte.
				replay := ast.CloneProgram(base)
				r2 := rand.New(rand.NewSource(s))
				if ok2 := m.Apply(r2, replay, donor); !ok2 {
					t.Fatalf("seed %d: replay found no site", s)
				}
				if printer.Print(replay) != printer.Print(clone) {
					t.Fatalf("seed %d: mutation not deterministic:\n--- first\n%s\n--- replay\n%s",
						s, printer.Print(clone), printer.Print(replay))
				}
			}
			if applied == 0 {
				t.Fatalf("mutator found no site in %d generated programs", seeds)
			}
			if invalid*3 > applied {
				t.Errorf("invalid rate too high: %d of %d mutants fail the type checker", invalid, applied)
			}
			if unchanged*5 > applied {
				t.Errorf("no-op rate too high: %d of %d mutants left the program unchanged", unchanged, applied)
			}
			t.Logf("%s: %d applied, %d invalid, %d no-op", m.Name, applied, invalid, unchanged)
		})
	}
}

// TestProgramComposite: the composite Program entry point must apply at
// least one mutator on realistic seeds, stay deterministic, and leave the
// base untouched.
func TestProgramComposite(t *testing.T) {
	hits := 0
	for s := int64(0); s < 20; s++ {
		base := generator.Generate(generator.DefaultConfig(s))
		donor := generator.Generate(generator.DefaultConfig(s + 500))
		before := printer.Print(base)
		m1, names, ok := mutate.Program(rand.New(rand.NewSource(s)), base, donor, 3)
		if printer.Print(base) != before {
			t.Fatalf("seed %d: Program mutated the base", s)
		}
		if !ok {
			continue
		}
		hits++
		if len(names) == 0 {
			t.Fatalf("seed %d: ok without applied mutators", s)
		}
		m2, _, _ := mutate.Program(rand.New(rand.NewSource(s)), base, donor, 3)
		if printer.Print(m1) != printer.Print(m2) {
			t.Fatalf("seed %d: composite mutation not deterministic", s)
		}
	}
	if hits < 15 {
		t.Errorf("composite mutation applied on only %d/20 seeds", hits)
	}
}

// TestIfToSwitchPreservesTypeValidity: the rewrite must always produce a
// well-typed program when it fires — it is an equivalence, not a gamble.
func TestIfToSwitchPreservesTypeValidity(t *testing.T) {
	var m mutate.Mutator
	for _, c := range mutate.Catalog() {
		if c.Name == "if-to-switch" {
			m = c
		}
	}
	fired := 0
	for s := int64(0); s < 200 && fired < 10; s++ {
		base := generator.Generate(generator.DefaultConfig(s))
		clone := ast.CloneProgram(base)
		if !m.Apply(rand.New(rand.NewSource(s)), clone, nil) {
			continue
		}
		fired++
		if err := types.Check(ast.CloneProgram(clone)); err != nil {
			t.Fatalf("seed %d: if-to-switch produced an ill-typed program: %v\n%s",
				s, err, printer.Print(clone))
		}
	}
	if fired == 0 {
		t.Skip("no seed produced an if (e == K) shape in 200 tries")
	}
}
