package reduce_test

import (
	"context"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"gauntlet/internal/generator"
	"gauntlet/internal/p4/ast"
	"gauntlet/internal/p4/printer"
	"gauntlet/internal/p4/types"
	"gauntlet/internal/reduce"
)

// TestReduceParallelByteIdentical is the tentpole invariant: the reduced
// witness and the serial-equivalent call count are byte-identical at any
// speculative window width, because the executor commits the first
// success in canonical candidate order and discards speculation past the
// commit point. Run under -race in CI.
func TestReduceParallelByteIdentical(t *testing.T) {
	keep := func(_ context.Context, p *ast.Program) bool {
		return strings.Contains(printer.Print(p), "|+|")
	}
	exercised := 0
	for _, seed := range []int64{3, 17, 29} {
		prog := generator.Generate(generator.DefaultConfig(seed))
		if err := types.Check(ast.CloneProgram(prog)); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(printer.Print(prog), "|+|") {
			continue // this seed has nothing to keep; the predicate would fail at entry
		}
		exercised++
		var refOut string
		var refStats reduce.Stats
		for _, par := range []int{1, 4, 8} {
			out, stats := reduce.ReduceStats(context.Background(), prog, keep,
				reduce.Options{Parallelism: par})
			if par == 1 {
				refOut, refStats = printer.Print(out), stats
				continue
			}
			if got := printer.Print(out); got != refOut {
				t.Fatalf("seed %d: reduced witness differs at Parallelism=%d:\n--- serial\n%s\n--- parallel\n%s",
					seed, par, refOut, got)
			}
			if stats.SerialCalls != refStats.SerialCalls {
				t.Errorf("seed %d: SerialCalls differ at Parallelism=%d: serial=%d parallel=%d",
					seed, par, refStats.SerialCalls, stats.SerialCalls)
			}
			if stats.Launched < stats.SerialCalls {
				t.Errorf("seed %d: launched %d probes but consumed %d serial calls (launches can't be fewer)",
					seed, stats.Launched, stats.SerialCalls)
			}
			if stats.Wasted > stats.Launched-stats.SerialCalls {
				t.Errorf("seed %d: wasted %d > launched-serial %d", seed, stats.Wasted, stats.Launched-stats.SerialCalls)
			}
		}
	}
	if exercised == 0 {
		t.Fatal("no generator seed produced a program with the kept construct; pick different seeds")
	}
}

// TestReduceBudgetIdentityUnderSpeculation: MaxPredicateCalls counts only
// serial-equivalent consumed candidates, so a budgeted reduction exhausts
// at the same candidate — and returns the same program — at any window
// width, with or without a shared gate.
func TestReduceBudgetIdentityUnderSpeculation(t *testing.T) {
	prog := generator.Generate(generator.DefaultConfig(3))
	if err := types.Check(ast.CloneProgram(prog)); err != nil {
		t.Fatal(err)
	}
	keep := func(_ context.Context, p *ast.Program) bool { return true }
	for _, budget := range []int{1, 7, 25} {
		var refOut string
		var refCalls int
		for _, par := range []int{1, 4, 8} {
			gate := make(chan struct{}, 4) // deliberately narrower than the window
			out, stats := reduce.ReduceStats(context.Background(), prog, keep,
				reduce.Options{MaxPredicateCalls: budget, Parallelism: par, Gate: gate})
			if stats.SerialCalls > budget {
				t.Errorf("budget %d, Parallelism=%d: consumed %d serial-equivalent calls",
					budget, par, stats.SerialCalls)
			}
			if par == 1 {
				refOut, refCalls = printer.Print(out), stats.SerialCalls
				continue
			}
			if got := printer.Print(out); got != refOut {
				t.Fatalf("budget %d: result differs at Parallelism=%d:\n--- serial\n%s\n--- parallel\n%s",
					budget, par, refOut, got)
			}
			if stats.SerialCalls != refCalls {
				t.Errorf("budget %d: SerialCalls differ at Parallelism=%d: %d vs %d",
					budget, par, refCalls, stats.SerialCalls)
			}
		}
	}
}

// TestReduceCancelMidSpeculationNoLeaks cancels the reduction while a
// window of speculative probes is blocked inside the predicate. The
// executor must cancel each probe's context, drain every goroutine it
// launched, and return the input program.
func TestReduceCancelMidSpeculationNoLeaks(t *testing.T) {
	prog := generator.Generate(generator.DefaultConfig(4))
	if err := types.Check(ast.CloneProgram(prog)); err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int64
	started := make(chan struct{}, 64)
	keep := func(pctx context.Context, p *ast.Program) bool {
		if calls.Add(1) == 1 {
			return true // the initial property check must pass
		}
		select {
		case started <- struct{}{}:
		default:
		}
		<-pctx.Done() // block until the probe is cancelled
		return false
	}
	done := make(chan struct{})
	var out *ast.Program
	var stats reduce.Stats
	go func() {
		defer close(done)
		out, stats = reduce.ReduceStats(ctx, prog, keep, reduce.Options{Parallelism: 8})
	}()
	select {
	case <-started:
	case <-time.After(30 * time.Second):
		t.Fatal("no speculative probe ever reached the predicate")
	}
	cancel()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("ReduceStats did not return after cancellation")
	}
	if printer.Fingerprint(out) != printer.Fingerprint(prog) {
		t.Error("cancelled reduction altered the program")
	}
	if stats.Launched == 0 {
		t.Error("no probes launched before cancellation")
	}
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > before+1 {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("probe goroutines leaked: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(25 * time.Millisecond)
	}
}
