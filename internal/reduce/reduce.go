// Package reduce implements automatic test-case reduction — the paper's
// §8 names manual reduction as a limitation ("we prune the random P4
// program that caused the bug until we get a sufficiently small program";
// "we hope to automate this process"). This is that automation, in the
// C-Reduce/ddmin tradition specialized to the P4 subset:
//
//  1. delta-debug statement lists (drop halves, then single statements),
//     in control/action/function bodies and parser states alike,
//  2. unwrap control flow (replace an if by one of its branches),
//  3. drop unreferenced control locals (actions, tables, functions),
//  4. drop unreferenced top-level declarations and header/struct fields,
//  5. simplify expressions (replace subtrees by trivial ones).
//
// Every candidate must stay well-typed and keep the caller's property
// (e.g. "the compiler still crashes" or "translation validation still
// fails") — the same invariant a human reducer preserves.
package reduce

import (
	"context"

	"gauntlet/internal/p4/ast"
	"gauntlet/internal/p4/parser"
	"gauntlet/internal/p4/printer"
	"gauntlet/internal/p4/types"
)

// Predicate reports whether a candidate program still exhibits the
// behaviour being isolated. It is never called with an ill-typed program.
//
// Predicates dominate reduction cost, so callers should layer them
// cheapest-first: a remembered concrete counterexample (replay one input
// through the candidate — core.Oracle.ReplayMismatch, or a concolic hint
// that settles the equivalence query in one tape packet) decides most
// candidates for the price of a compile, and only candidates the cheap
// tier cannot confirm fall through to the full oracle. The cheap tier
// must only ever short-circuit towards "keep": a counterexample that no
// longer fires is not evidence the behaviour is gone.
type Predicate func(*ast.Program) bool

// Options bounds the reduction loop.
type Options struct {
	// MaxRounds caps full fixpoint iterations.
	MaxRounds int
	// MaxPredicateCalls caps how many candidates are tried in one
	// reduction (0 = unbounded). Predicates that re-run a compiler or a
	// solver dominate reduction cost, so this is the budget that keeps a
	// pathological finding from stalling a pipeline worker forever.
	MaxPredicateCalls int
}

// Reduce shrinks prog while keep(prog) holds. The input program is not
// mutated; the returned program satisfies keep and is well-typed.
func Reduce(prog *ast.Program, keep Predicate, opts Options) *ast.Program {
	return ReduceContext(context.Background(), prog, keep, opts)
}

// ReduceContext is Reduce with cancellation: when ctx is done or the
// predicate budget is exhausted, the loop stops trying new candidates and
// returns the smallest program found so far (still well-typed, still
// satisfying keep). The input program is not mutated.
func ReduceContext(ctx context.Context, prog *ast.Program, keep Predicate, opts Options) *ast.Program {
	if opts.MaxRounds <= 0 {
		opts.MaxRounds = 8
	}
	cur := reparse(prog)
	calls := 0
	exhausted := func() bool {
		if ctx.Err() != nil {
			return true
		}
		return opts.MaxPredicateCalls > 0 && calls >= opts.MaxPredicateCalls
	}
	check := func(cand *ast.Program) bool {
		if exhausted() {
			return false
		}
		calls++
		if types.Check(ast.CloneProgram(cand)) != nil {
			return false
		}
		return keep(cand)
	}
	if !check(cur) {
		return cur // property does not hold to begin with; nothing to do
	}
	for round := 0; round < opts.MaxRounds; round++ {
		before := printer.Fingerprint(cur)
		cur = reduceStatements(cur, check)
		cur = unwrapBranches(cur, check)
		cur = dropLocals(cur, check)
		cur = dropDecls(cur, check)
		cur = dropFields(cur, check)
		cur = simplifyExprs(cur, check)
		if printer.Fingerprint(cur) == before || exhausted() {
			break
		}
	}
	return cur
}

// reparse round-trips the program through its printed source. Reduction
// mutates type declarations (field dropping), which is only sound on an
// AST whose type references are still by name: the checker resolves
// NamedType references by sharing the declaration's type objects, so a
// checked program aliases its declarations in ways in-place mutation would
// desynchronize. The subset prints and re-parses losslessly; if a caller
// hands us something that doesn't, fall back to a plain clone (and the
// declaration-mutating passes simply roll back their attempts).
func reparse(prog *ast.Program) *ast.Program {
	p, err := parser.Parse(printer.Print(prog))
	if err != nil {
		return ast.CloneProgram(prog)
	}
	return p
}

// stmtLists enumerates every mutable statement list of the program:
// control/action/function bodies (including nested blocks) and parser
// states.
func stmtLists(prog *ast.Program) []*[]ast.Stmt {
	var out []*[]ast.Stmt
	var fromBlock func(b *ast.BlockStmt)
	fromList := func(l *[]ast.Stmt) {
		out = append(out, l)
		for _, s := range *l {
			switch s := s.(type) {
			case *ast.IfStmt:
				fromBlock(s.Then)
				if els, ok := s.Else.(*ast.BlockStmt); ok {
					fromBlock(els)
				}
			case *ast.BlockStmt:
				fromBlock(s)
			case *ast.SwitchStmt:
				for i := range s.Cases {
					fromBlock(s.Cases[i].Body)
				}
			}
		}
	}
	fromBlock = func(b *ast.BlockStmt) {
		if b == nil {
			return
		}
		fromList(&b.Stmts)
	}
	for _, d := range prog.Decls {
		switch d := d.(type) {
		case *ast.ControlDecl:
			for _, l := range d.Locals {
				switch l := l.(type) {
				case *ast.ActionDecl:
					fromBlock(l.Body)
				case *ast.FunctionDecl:
					fromBlock(l.Body)
				}
			}
			fromBlock(d.Apply)
		case *ast.FunctionDecl:
			fromBlock(d.Body)
		case *ast.ActionDecl:
			fromBlock(d.Body)
		case *ast.ParserDecl:
			for i := range d.States {
				fromList(&d.States[i].Stmts)
			}
		}
	}
	return out
}

// reduceStatements ddmin-deletes statements: halves first, then singles.
func reduceStatements(prog *ast.Program, check Predicate) *ast.Program {
	for {
		changed := false
		for _, b := range stmtLists(prog) {
			n := len(*b)
			if n == 0 {
				continue
			}
			// Try dropping contiguous chunks, largest first.
			for chunk := n; chunk >= 1; chunk /= 2 {
				for start := 0; start+chunk <= len(*b); start++ {
					saved := *b
					cand := append(append([]ast.Stmt{}, saved[:start]...), saved[start+chunk:]...)
					*b = cand
					if check(prog) {
						changed = true
						break // retry at this chunk size on the shrunk list
					}
					*b = saved
				}
				if chunk == 0 {
					break
				}
			}
		}
		if !changed {
			return prog
		}
	}
}

// unwrapBranches replaces if statements with one of their branches.
func unwrapBranches(prog *ast.Program, check Predicate) *ast.Program {
	for {
		changed := false
		for _, b := range stmtLists(prog) {
			for i, s := range *b {
				iff, ok := s.(*ast.IfStmt)
				if !ok {
					continue
				}
				candidates := [][]ast.Stmt{iff.Then.Stmts}
				if els, ok := iff.Else.(*ast.BlockStmt); ok {
					candidates = append(candidates, els.Stmts)
				} else if iff.Else != nil {
					candidates = append(candidates, []ast.Stmt{iff.Else})
				}
				done := false
				for _, branch := range candidates {
					saved := *b
					cand := append(append([]ast.Stmt{}, saved[:i]...), branch...)
					cand = append(cand, saved[i+1:]...)
					*b = cand
					if check(prog) {
						changed = true
						done = true
						break
					}
					*b = saved
				}
				if done {
					break // statement indices shifted; rescan this body
				}
			}
		}
		if !changed {
			return prog
		}
	}
}

// dropLocals removes control locals (tables, actions, functions, vars)
// one at a time.
func dropLocals(prog *ast.Program, check Predicate) *ast.Program {
	for {
		changed := false
		for _, d := range prog.Decls {
			c, ok := d.(*ast.ControlDecl)
			if !ok {
				continue
			}
			for i := range c.Locals {
				saved := c.Locals
				cand := append(append([]ast.Decl{}, saved[:i]...), saved[i+1:]...)
				c.Locals = cand
				if check(prog) {
					changed = true
					break
				}
				c.Locals = saved
			}
			if changed {
				break
			}
		}
		if !changed {
			return prog
		}
	}
}

// dropDecls removes top-level declarations one at a time: header and
// struct types, typedefs, constants, helper actions and functions. The
// architecture blocks themselves (parsers, controls, main) are left to
// the type checker's referential integrity — a removal that breaks a
// reference simply fails the check and is rolled back.
func dropDecls(prog *ast.Program, check Predicate) *ast.Program {
	for {
		changed := false
		for i, d := range prog.Decls {
			switch d.(type) {
			case *ast.ControlDecl, *ast.ParserDecl:
				continue // main blocks: required by the package skeleton
			}
			saved := prog.Decls
			cand := append(append([]ast.Decl{}, saved[:i]...), saved[i+1:]...)
			prog.Decls = cand
			if check(prog) {
				changed = true
				break
			}
			prog.Decls = saved
		}
		if !changed {
			return prog
		}
	}
}

// dropFields removes header and struct fields one at a time — the per-seed
// random header layouts are most of what keeps two otherwise identical
// minimal witnesses distinct.
func dropFields(prog *ast.Program, check Predicate) *ast.Program {
	fieldsOf := func(d ast.Decl) *[]ast.Field {
		switch d := d.(type) {
		case *ast.HeaderDecl:
			return &d.Fields
		case *ast.StructDecl:
			return &d.Fields
		}
		return nil
	}
	for {
		changed := false
		for _, d := range prog.Decls {
			fs := fieldsOf(d)
			if fs == nil {
				continue
			}
			for i := range *fs {
				saved := *fs
				cand := append(append([]ast.Field{}, saved[:i]...), saved[i+1:]...)
				*fs = cand
				if check(prog) {
					changed = true
					break
				}
				*fs = saved
			}
			if changed {
				break
			}
		}
		if !changed {
			return prog
		}
	}
}

// simplifyExprs replaces expression subtrees with trivial ones where the
// program stays well-typed and the property holds. Only assignment
// right-hand sides and conditions are attacked (lvalues must survive).
func simplifyExprs(prog *ast.Program, check Predicate) *ast.Program {
	for {
		changed := false
		for _, b := range stmtLists(prog) {
			for _, s := range *b {
				a, ok := s.(*ast.AssignStmt)
				if !ok {
					continue
				}
				switch a.RHS.(type) {
				case *ast.IntLit, *ast.BoolLit, *ast.Ident:
					continue
				}
				// Try RHS := LHS (a self-assignment is always well-typed
				// and usually minimal enough).
				saved := a.RHS
				a.RHS = ast.CloneExpr(a.LHS)
				if check(prog) {
					changed = true
					continue
				}
				a.RHS = saved
			}
			// Conditions: try true/false.
			for _, s := range *b {
				iff, ok := s.(*ast.IfStmt)
				if !ok {
					continue
				}
				if _, isLit := iff.Cond.(*ast.BoolLit); isLit {
					continue
				}
				saved := iff.Cond
				for _, v := range []bool{true, false} {
					iff.Cond = ast.Bool(v)
					if check(prog) {
						changed = true
						saved = nil
						break
					}
				}
				if saved != nil {
					iff.Cond = saved
				}
			}
		}
		if !changed {
			return prog
		}
	}
}

// Size returns the statement count of a program (the reduction metric).
func Size(prog *ast.Program) int {
	n := 0
	for _, b := range stmtLists(prog) {
		n += len(*b)
	}
	return n
}
