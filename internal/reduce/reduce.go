// Package reduce implements automatic test-case reduction — the paper's
// §8 names manual reduction as a limitation ("we prune the random P4
// program that caused the bug until we get a sufficiently small program";
// "we hope to automate this process"). This is that automation, in the
// C-Reduce/ddmin tradition specialized to the P4 subset:
//
//  1. delta-debug statement lists (drop halves, then single statements),
//     in control/action/function bodies and parser states alike,
//  2. unwrap control flow (replace an if by one of its branches),
//  3. drop unreferenced control locals (actions, tables, functions),
//  4. drop unreferenced top-level declarations and header/struct fields,
//  5. simplify expressions (replace subtrees by trivial ones).
//
// Every candidate must stay well-typed and keep the caller's property
// (e.g. "the compiler still crashes" or "translation validation still
// fails") — the same invariant a human reducer preserves.
//
// # Speculative parallel reduction
//
// Each pass is split into candidate *enumeration* (a deterministic list
// of edits against the current program) and *commit* (adopt the first
// edit, in enumeration order, whose result is well-typed and keeps the
// property). That split is what makes speculation safe: the executor may
// probe a bounded window of consecutive candidates concurrently, but it
// still commits the first success in canonical order and discards every
// speculative result past the commit point. The greedy serial trajectory
// is therefore reproduced exactly — the reduced witness is byte-identical
// at any Options.Parallelism — and only the wall-clock changes.
//
// The predicate budget counts serial-equivalent work, not speculation:
// when a window of w candidates resolves with the first success at index
// j, exactly j+1 calls are charged (a serial reducer would have stopped
// there); when all w fail, w calls are charged. Speculative overshoot is
// free, so MaxPredicateCalls exhausts at the same candidate regardless of
// the window width, and budgeted reductions stay identical too.
package reduce

import (
	"context"

	"gauntlet/internal/p4/ast"
	"gauntlet/internal/p4/parser"
	"gauntlet/internal/p4/printer"
	"gauntlet/internal/p4/types"
)

// Predicate reports whether a candidate program still exhibits the
// behaviour being isolated. It is never called with an ill-typed program.
//
// Predicates dominate reduction cost, so callers should layer them
// cheapest-first: a remembered concrete counterexample (replay one input
// through the candidate — core.Oracle.ReplayMismatch, or a concolic hint
// that settles the equivalence query in one tape packet) decides most
// candidates for the price of a compile, and only candidates the cheap
// tier cannot confirm fall through to the full oracle. The cheap tier
// must only ever short-circuit towards "keep": a counterexample that no
// longer fires is not evidence the behaviour is gone.
type Predicate func(*ast.Program) bool

// PredicateCtx is a Predicate that also observes a context. The context
// is cancelled when the probe's result can no longer matter — the window
// committed an earlier candidate, or the whole reduction was cancelled —
// so expensive predicates (solver sessions) can abandon dead work early.
// Under Parallelism > 1 the predicate may be called from several
// goroutines at once and must be safe for concurrent use.
type PredicateCtx func(context.Context, *ast.Program) bool

// Options bounds the reduction loop.
type Options struct {
	// MaxRounds caps full fixpoint iterations.
	MaxRounds int
	// MaxPredicateCalls caps how many candidates are tried in one
	// reduction (0 = unbounded). Predicates that re-run a compiler or a
	// solver dominate reduction cost, so this is the budget that keeps a
	// pathological finding from stalling a pipeline worker forever. The
	// budget counts serial-equivalent candidates only (see the package
	// comment), so it bites at the same point at any Parallelism.
	MaxPredicateCalls int
	// Parallelism is the speculative window width: how many consecutive
	// candidates may be probed concurrently. <= 1 probes serially. The
	// reduced program, the serial-equivalent call count and every commit
	// decision are identical at any value; only wall-clock changes.
	Parallelism int
	// Gate, when non-nil, is a shared counting semaphore (acquire = send,
	// release = receive) bounding concurrent predicate executions across
	// many reductions — the engine sizes one gate to its worker pool so
	// that N findings reducing at once cannot oversubscribe the machine
	// by N×Parallelism. A nil Gate bounds each reduction by Parallelism
	// alone.
	Gate chan struct{}
}

// Stats reports what one reduction did, in both serial-equivalent and
// wall-clock terms.
type Stats struct {
	// SerialCalls is the predicate budget consumed: the number of
	// candidates a serial reducer would have evaluated to reach the same
	// result. Identical at any Parallelism.
	SerialCalls int
	// Launched counts probes actually started, including speculative ones
	// (each probe clones, applies an edit, type-checks, and — unless
	// cancelled first — runs the predicate).
	Launched int
	// Wasted counts launched probes whose results were discarded because
	// an earlier candidate in the same window committed first. The waste
	// ratio Wasted/Launched is the price paid for speculation.
	Wasted int
}

// Reduce shrinks prog while keep(prog) holds. The input program is not
// mutated; the returned program satisfies keep and is well-typed.
func Reduce(prog *ast.Program, keep Predicate, opts Options) *ast.Program {
	return ReduceContext(context.Background(), prog, keep, opts)
}

// ReduceContext is Reduce with cancellation: when ctx is done or the
// predicate budget is exhausted, the loop stops trying new candidates and
// returns the smallest program found so far (still well-typed, still
// satisfying keep). The input program is not mutated.
func ReduceContext(ctx context.Context, prog *ast.Program, keep Predicate, opts Options) *ast.Program {
	out, _ := ReduceStats(ctx, prog, func(_ context.Context, p *ast.Program) bool { return keep(p) }, opts)
	return out
}

// ReduceStats is the full-fidelity entry point: a context-aware predicate
// (required for probe cancellation under speculation) and per-reduction
// Stats. ctx is observed between probe windows; when it is cancelled, any
// in-flight probes are cancelled too and the best program found so far is
// returned.
func ReduceStats(ctx context.Context, prog *ast.Program, keep PredicateCtx, opts Options) (*ast.Program, Stats) {
	if opts.MaxRounds <= 0 {
		opts.MaxRounds = 8
	}
	ex := &executor{
		ctx:    ctx,
		keep:   keep,
		par:    opts.Parallelism,
		gate:   opts.Gate,
		budget: opts.MaxPredicateCalls,
	}
	if ex.par < 1 {
		ex.par = 1
	}
	cur := reparse(prog)
	// The initial property check is one serial candidate like any other:
	// an exhausted budget or a dead context means zero predicate calls.
	if ex.exhausted() || !ex.probeSerial(cur) {
		return cur, ex.stats
	}
	passes := []func(*ast.Program) []edit{
		enumStatements,
		enumBranches,
		enumLocals,
		enumDecls,
		enumFields,
		enumExprs,
	}
	for round := 0; round < opts.MaxRounds; round++ {
		before := printer.Fingerprint(cur)
		for _, enum := range passes {
			cur = ex.runPass(cur, enum)
		}
		if printer.Fingerprint(cur) == before || ex.exhausted() {
			break
		}
	}
	return cur, ex.stats
}

// reparse round-trips the program through its printed source. Reduction
// edits type declarations (field dropping), which is only sound on an
// AST whose type references are still by name: the checker resolves
// NamedType references by sharing the declaration's type objects, so a
// checked program aliases its declarations in ways structural editing
// would desynchronize. The subset prints and re-parses losslessly; if a
// caller hands us something that doesn't, fall back to a plain clone.
func reparse(prog *ast.Program) *ast.Program {
	p, err := parser.Parse(printer.Print(prog))
	if err != nil {
		return ast.CloneProgram(prog)
	}
	return p
}

// An edit is one candidate transformation, addressed positionally so it
// can be replayed onto any structurally identical clone of the program it
// was enumerated from. apply reports whether the edit was applicable
// (defensive: enumeration and application always agree on structure in
// practice).
type edit struct {
	apply func(*ast.Program) bool
}

// executor evaluates candidate edits — serially or speculatively — under
// the serial-equivalent budget. The serial path is the Parallelism=1
// window of the same code, so identity across widths holds by
// construction rather than by parallel-vs-serial code review.
type executor struct {
	ctx    context.Context
	keep   PredicateCtx
	par    int
	gate   chan struct{}
	budget int // 0 = unbounded
	stats  Stats
	dead   bool // caller ctx observed cancelled; stop starting new work
}

func (ex *executor) exhausted() bool {
	if ex.dead {
		return true
	}
	if ex.ctx.Err() != nil {
		ex.dead = true
		return true
	}
	return ex.budget > 0 && ex.stats.SerialCalls >= ex.budget
}

// probeSerial evaluates one candidate inline (the initial check).
func (ex *executor) probeSerial(cand *ast.Program) bool {
	ex.stats.SerialCalls++
	ex.stats.Launched++
	if types.Check(ast.CloneProgram(cand)) != nil {
		return false
	}
	return ex.keep(ex.ctx, cand)
}

// runPass drives one pass to its fixpoint: enumerate candidates against
// the current program, commit the first success in canonical order,
// re-enumerate, until no candidate succeeds (or budget/ctx stops us).
func (ex *executor) runPass(cur *ast.Program, enum func(*ast.Program) []edit) *ast.Program {
	for !ex.exhausted() {
		next := ex.firstSuccess(cur, enum(cur))
		if next == nil {
			break
		}
		cur = next
	}
	return cur
}

// probe is one speculative candidate evaluation. The goroutine owns its
// result fields until it closes done; it never blocks sending a result,
// so an abandoned orchestrator (the engine's stage watchdog giving up on
// a stuck reduction) strands no goroutine here.
type probe struct {
	cand *ast.Program
	ok   bool
	done chan struct{}
}

// firstSuccess finds the first edit, in enumeration order, that yields a
// well-typed program satisfying keep, and returns that program (nil if
// none). Windows of up to par consecutive candidates are probed
// concurrently; results are consumed strictly in order, so the commit
// decision is the serial one.
func (ex *executor) firstSuccess(base *ast.Program, edits []edit) *ast.Program {
	for lo := 0; lo < len(edits); {
		if ex.exhausted() {
			return nil
		}
		w := ex.par
		if rem := len(edits) - lo; w > rem {
			w = rem
		}
		if ex.budget > 0 {
			if rem := ex.budget - ex.stats.SerialCalls; w > rem {
				w = rem
			}
		}
		pctx, pcancel := context.WithCancel(context.Background())
		probes := make([]*probe, w)
		for i := 0; i < w; i++ {
			p := &probe{done: make(chan struct{})}
			probes[i] = p
			ed := edits[lo+i]
			go func() {
				defer close(p.done)
				if ex.gate != nil {
					select {
					case ex.gate <- struct{}{}:
						defer func() { <-ex.gate }()
					case <-pctx.Done():
						return
					}
				}
				if pctx.Err() != nil {
					return
				}
				cand := ast.CloneProgram(base)
				if !ed.apply(cand) {
					return
				}
				if types.Check(ast.CloneProgram(cand)) != nil {
					return
				}
				// Re-check after the clone/typecheck window: a commit may
				// have landed while this probe was warming up, and skipping
				// the (expensive) predicate then costs nothing — consumed
				// probes never observe cancellation, so verdicts that count
				// are unaffected.
				if pctx.Err() != nil {
					return
				}
				if ex.keep(pctx, cand) {
					p.cand = cand
					p.ok = true
				}
			}()
		}
		ex.stats.Launched += w
		// Consume in canonical order: the first success is the commit, and
		// everything past it is discarded speculation.
		commit := -1
		var winner *ast.Program
		for j := 0; j < w; j++ {
			select {
			case <-probes[j].done:
			case <-ex.ctx.Done():
				// Caller cancelled mid-window: kill outstanding probes and
				// drain them so no goroutine outlives the reduction.
				ex.dead = true
				pcancel()
				for _, p := range probes {
					<-p.done
				}
				return nil
			}
			if probes[j].ok {
				commit = j
				winner = probes[j].cand
				break
			}
		}
		// Cancel and drain the speculative tail (no-ops when the whole
		// window was consumed).
		pcancel()
		for _, p := range probes {
			<-p.done
		}
		if commit >= 0 {
			ex.stats.SerialCalls += commit + 1
			ex.stats.Wasted += w - (commit + 1)
			return winner
		}
		ex.stats.SerialCalls += w
		lo += w
	}
	return nil
}

// stmtLists enumerates every mutable statement list of the program:
// control/action/function bodies (including nested blocks) and parser
// states. The order is a pure function of program structure, so an index
// into this slice addresses the same list in any clone.
func stmtLists(prog *ast.Program) []*[]ast.Stmt {
	var out []*[]ast.Stmt
	var fromBlock func(b *ast.BlockStmt)
	fromList := func(l *[]ast.Stmt) {
		out = append(out, l)
		for _, s := range *l {
			switch s := s.(type) {
			case *ast.IfStmt:
				fromBlock(s.Then)
				if els, ok := s.Else.(*ast.BlockStmt); ok {
					fromBlock(els)
				}
			case *ast.BlockStmt:
				fromBlock(s)
			case *ast.SwitchStmt:
				for i := range s.Cases {
					fromBlock(s.Cases[i].Body)
				}
			}
		}
	}
	fromBlock = func(b *ast.BlockStmt) {
		if b == nil {
			return
		}
		fromList(&b.Stmts)
	}
	for _, d := range prog.Decls {
		switch d := d.(type) {
		case *ast.ControlDecl:
			for _, l := range d.Locals {
				switch l := l.(type) {
				case *ast.ActionDecl:
					fromBlock(l.Body)
				case *ast.FunctionDecl:
					fromBlock(l.Body)
				}
			}
			fromBlock(d.Apply)
		case *ast.FunctionDecl:
			fromBlock(d.Body)
		case *ast.ActionDecl:
			fromBlock(d.Body)
		case *ast.ParserDecl:
			for i := range d.States {
				fromList(&d.States[i].Stmts)
			}
		}
	}
	return out
}

// listEdit wraps a statement-list transformation into a positionally
// addressed edit: li indexes stmtLists of the (cloned) program.
func listEdit(li int, f func(*[]ast.Stmt) bool) edit {
	return edit{apply: func(p *ast.Program) bool {
		ls := stmtLists(p)
		if li >= len(ls) {
			return false
		}
		return f(ls[li])
	}}
}

// enumStatements enumerates ddmin statement deletions: for each list,
// contiguous chunks largest first (halving down to singles).
func enumStatements(prog *ast.Program) []edit {
	var out []edit
	for li, b := range stmtLists(prog) {
		n := len(*b)
		for chunk := n; chunk >= 1; chunk /= 2 {
			for start := 0; start+chunk <= n; start++ {
				start, chunk := start, chunk
				out = append(out, listEdit(li, func(l *[]ast.Stmt) bool {
					if start+chunk > len(*l) {
						return false
					}
					*l = append(append([]ast.Stmt{}, (*l)[:start]...), (*l)[start+chunk:]...)
					return true
				}))
			}
		}
	}
	return out
}

// enumBranches enumerates if-statement unwrappings: replace the if by its
// then-branch, then by its else-branch.
func enumBranches(prog *ast.Program) []edit {
	var out []edit
	unwrap := func(li, i, branch int) edit {
		return listEdit(li, func(l *[]ast.Stmt) bool {
			if i >= len(*l) {
				return false
			}
			iff, ok := (*l)[i].(*ast.IfStmt)
			if !ok {
				return false
			}
			var body []ast.Stmt
			switch branch {
			case 0:
				body = iff.Then.Stmts
			default:
				if els, ok := iff.Else.(*ast.BlockStmt); ok {
					body = els.Stmts
				} else if iff.Else != nil {
					body = []ast.Stmt{iff.Else}
				} else {
					return false
				}
			}
			repl := append([]ast.Stmt{}, (*l)[:i]...)
			repl = append(repl, body...)
			repl = append(repl, (*l)[i+1:]...)
			*l = repl
			return true
		})
	}
	for li, b := range stmtLists(prog) {
		for i, s := range *b {
			iff, ok := s.(*ast.IfStmt)
			if !ok {
				continue
			}
			out = append(out, unwrap(li, i, 0))
			if iff.Else != nil {
				out = append(out, unwrap(li, i, 1))
			}
		}
	}
	return out
}

// enumLocals enumerates single control-local deletions (tables, actions,
// functions, vars).
func enumLocals(prog *ast.Program) []edit {
	var out []edit
	for di, d := range prog.Decls {
		c, ok := d.(*ast.ControlDecl)
		if !ok {
			continue
		}
		for i := range c.Locals {
			di, i := di, i
			out = append(out, edit{apply: func(p *ast.Program) bool {
				c, ok := p.Decls[di].(*ast.ControlDecl)
				if !ok || i >= len(c.Locals) {
					return false
				}
				c.Locals = append(append([]ast.Decl{}, c.Locals[:i]...), c.Locals[i+1:]...)
				return true
			}})
		}
	}
	return out
}

// enumDecls enumerates single top-level declaration deletions: header and
// struct types, typedefs, constants, helper actions and functions. The
// architecture blocks themselves (parsers, controls, main) are left to
// the type checker's referential integrity — a removal that breaks a
// reference simply fails the check and is never committed.
func enumDecls(prog *ast.Program) []edit {
	var out []edit
	for i, d := range prog.Decls {
		switch d.(type) {
		case *ast.ControlDecl, *ast.ParserDecl:
			continue // main blocks: required by the package skeleton
		}
		i := i
		out = append(out, edit{apply: func(p *ast.Program) bool {
			if i >= len(p.Decls) {
				return false
			}
			p.Decls = append(append([]ast.Decl{}, p.Decls[:i]...), p.Decls[i+1:]...)
			return true
		}})
	}
	return out
}

func fieldsOf(d ast.Decl) *[]ast.Field {
	switch d := d.(type) {
	case *ast.HeaderDecl:
		return &d.Fields
	case *ast.StructDecl:
		return &d.Fields
	}
	return nil
}

// enumFields enumerates single header/struct field deletions — the
// per-seed random header layouts are most of what keeps two otherwise
// identical minimal witnesses distinct.
func enumFields(prog *ast.Program) []edit {
	var out []edit
	for di, d := range prog.Decls {
		fs := fieldsOf(d)
		if fs == nil {
			continue
		}
		for i := range *fs {
			di, i := di, i
			out = append(out, edit{apply: func(p *ast.Program) bool {
				fs := fieldsOf(p.Decls[di])
				if fs == nil || i >= len(*fs) {
					return false
				}
				*fs = append(append([]ast.Field{}, (*fs)[:i]...), (*fs)[i+1:]...)
				return true
			}})
		}
	}
	return out
}

// enumExprs enumerates expression simplifications: assignment right-hand
// sides become self-assignments (always well-typed, usually minimal
// enough), then if-conditions become true/false. Only RHSes and
// conditions are attacked (lvalues must survive).
func enumExprs(prog *ast.Program) []edit {
	var out []edit
	for li, b := range stmtLists(prog) {
		for i, s := range *b {
			a, ok := s.(*ast.AssignStmt)
			if !ok {
				continue
			}
			switch a.RHS.(type) {
			case *ast.IntLit, *ast.BoolLit, *ast.Ident:
				continue
			}
			if printer.PrintExpr(a.RHS) == printer.PrintExpr(a.LHS) {
				continue // self-assignment already: the edit would be a no-op
			}
			li, i := li, i
			out = append(out, listEdit(li, func(l *[]ast.Stmt) bool {
				if i >= len(*l) {
					return false
				}
				a, ok := (*l)[i].(*ast.AssignStmt)
				if !ok {
					return false
				}
				a.RHS = ast.CloneExpr(a.LHS)
				return true
			}))
		}
		for i, s := range *b {
			iff, ok := s.(*ast.IfStmt)
			if !ok {
				continue
			}
			if _, isLit := iff.Cond.(*ast.BoolLit); isLit {
				continue
			}
			for _, v := range []bool{true, false} {
				li, i, v := li, i, v
				out = append(out, listEdit(li, func(l *[]ast.Stmt) bool {
					if i >= len(*l) {
						return false
					}
					iff, ok := (*l)[i].(*ast.IfStmt)
					if !ok {
						return false
					}
					iff.Cond = ast.Bool(v)
					return true
				}))
			}
		}
	}
	return out
}

// Size returns the statement count of a program (the reduction metric).
func Size(prog *ast.Program) int {
	n := 0
	for _, b := range stmtLists(prog) {
		n += len(*b)
	}
	return n
}
