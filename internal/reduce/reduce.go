// Package reduce implements automatic test-case reduction — the paper's
// §8 names manual reduction as a limitation ("we prune the random P4
// program that caused the bug until we get a sufficiently small program";
// "we hope to automate this process"). This is that automation, in the
// C-Reduce/ddmin tradition specialized to the P4 subset:
//
//  1. delta-debug statement lists (drop halves, then single statements),
//  2. unwrap control flow (replace an if by one of its branches),
//  3. drop unreferenced control locals (actions, tables, functions),
//  4. simplify expressions (replace subtrees by zero literals).
//
// Every candidate must stay well-typed and keep the caller's property
// (e.g. "the compiler still crashes" or "translation validation still
// fails") — the same invariant a human reducer preserves.
package reduce

import (
	"gauntlet/internal/p4/ast"
	"gauntlet/internal/p4/printer"
	"gauntlet/internal/p4/types"
)

// Predicate reports whether a candidate program still exhibits the
// behaviour being isolated. It is never called with an ill-typed program.
type Predicate func(*ast.Program) bool

// Options bounds the reduction loop.
type Options struct {
	// MaxRounds caps full fixpoint iterations.
	MaxRounds int
}

// Reduce shrinks prog while keep(prog) holds. The input program is not
// mutated; the returned program satisfies keep and is well-typed.
func Reduce(prog *ast.Program, keep Predicate, opts Options) *ast.Program {
	if opts.MaxRounds <= 0 {
		opts.MaxRounds = 8
	}
	cur := ast.CloneProgram(prog)
	check := func(cand *ast.Program) bool {
		if types.Check(ast.CloneProgram(cand)) != nil {
			return false
		}
		return keep(cand)
	}
	if !check(cur) {
		return cur // property does not hold to begin with; nothing to do
	}
	for round := 0; round < opts.MaxRounds; round++ {
		before := printer.Fingerprint(cur)
		cur = reduceStatements(cur, check)
		cur = unwrapBranches(cur, check)
		cur = dropLocals(cur, check)
		cur = simplifyExprs(cur, check)
		if printer.Fingerprint(cur) == before {
			break
		}
	}
	return cur
}

// bodies enumerates every mutable statement list owner in the program.
func bodies(prog *ast.Program) []*ast.BlockStmt {
	var out []*ast.BlockStmt
	var fromBlock func(b *ast.BlockStmt)
	fromBlock = func(b *ast.BlockStmt) {
		if b == nil {
			return
		}
		out = append(out, b)
		for _, s := range b.Stmts {
			switch s := s.(type) {
			case *ast.IfStmt:
				fromBlock(s.Then)
				if els, ok := s.Else.(*ast.BlockStmt); ok {
					fromBlock(els)
				}
			case *ast.BlockStmt:
				fromBlock(s)
			case *ast.SwitchStmt:
				for i := range s.Cases {
					fromBlock(s.Cases[i].Body)
				}
			}
		}
	}
	for _, d := range prog.Decls {
		switch d := d.(type) {
		case *ast.ControlDecl:
			for _, l := range d.Locals {
				switch l := l.(type) {
				case *ast.ActionDecl:
					fromBlock(l.Body)
				case *ast.FunctionDecl:
					fromBlock(l.Body)
				}
			}
			fromBlock(d.Apply)
		case *ast.FunctionDecl:
			fromBlock(d.Body)
		case *ast.ActionDecl:
			fromBlock(d.Body)
		}
	}
	return out
}

// reduceStatements ddmin-deletes statements: halves first, then singles.
func reduceStatements(prog *ast.Program, check Predicate) *ast.Program {
	for {
		changed := false
		for _, b := range bodies(prog) {
			n := len(b.Stmts)
			if n == 0 {
				continue
			}
			// Try dropping contiguous chunks, largest first.
			for chunk := n; chunk >= 1; chunk /= 2 {
				for start := 0; start+chunk <= len(b.Stmts); start++ {
					saved := b.Stmts
					cand := append(append([]ast.Stmt{}, saved[:start]...), saved[start+chunk:]...)
					b.Stmts = cand
					if check(prog) {
						changed = true
						break // retry at this chunk size on the shrunk list
					}
					b.Stmts = saved
				}
				if chunk == 0 {
					break
				}
			}
		}
		if !changed {
			return prog
		}
	}
}

// unwrapBranches replaces if statements with one of their branches.
func unwrapBranches(prog *ast.Program, check Predicate) *ast.Program {
	for {
		changed := false
		for _, b := range bodies(prog) {
			for i, s := range b.Stmts {
				iff, ok := s.(*ast.IfStmt)
				if !ok {
					continue
				}
				candidates := [][]ast.Stmt{iff.Then.Stmts}
				if els, ok := iff.Else.(*ast.BlockStmt); ok {
					candidates = append(candidates, els.Stmts)
				} else if iff.Else != nil {
					candidates = append(candidates, []ast.Stmt{iff.Else})
				}
				done := false
				for _, branch := range candidates {
					saved := b.Stmts
					cand := append(append([]ast.Stmt{}, saved[:i]...), branch...)
					cand = append(cand, saved[i+1:]...)
					b.Stmts = cand
					if check(prog) {
						changed = true
						done = true
						break
					}
					b.Stmts = saved
				}
				if done {
					break // statement indices shifted; rescan this body
				}
			}
		}
		if !changed {
			return prog
		}
	}
}

// dropLocals removes control locals (tables, actions, functions, vars)
// one at a time.
func dropLocals(prog *ast.Program, check Predicate) *ast.Program {
	for {
		changed := false
		for _, d := range prog.Decls {
			c, ok := d.(*ast.ControlDecl)
			if !ok {
				continue
			}
			for i := range c.Locals {
				saved := c.Locals
				cand := append(append([]ast.Decl{}, saved[:i]...), saved[i+1:]...)
				c.Locals = cand
				if check(prog) {
					changed = true
					break
				}
				c.Locals = saved
			}
			if changed {
				break
			}
		}
		if !changed {
			return prog
		}
	}
}

// simplifyExprs replaces expression subtrees with zero literals where the
// program stays well-typed and the property holds. Only assignment
// right-hand sides and conditions are attacked (lvalues must survive).
func simplifyExprs(prog *ast.Program, check Predicate) *ast.Program {
	zeroFor := func(e ast.Expr) ast.Expr {
		// Without a type inferencer here, try a conservative guess: a
		// same-shape literal works only for contexts the checker accepts;
		// failures are rolled back by check().
		switch e.(type) {
		case *ast.IntLit, *ast.BoolLit, *ast.Ident:
			return nil // already minimal
		}
		return nil // handled via targeted rewrites below
	}
	_ = zeroFor
	for {
		changed := false
		for _, b := range bodies(prog) {
			for _, s := range b.Stmts {
				a, ok := s.(*ast.AssignStmt)
				if !ok {
					continue
				}
				switch a.RHS.(type) {
				case *ast.IntLit, *ast.BoolLit, *ast.Ident:
					continue
				}
				// Try RHS := LHS (a self-assignment is always well-typed
				// and usually minimal enough).
				saved := a.RHS
				a.RHS = ast.CloneExpr(a.LHS)
				if check(prog) {
					changed = true
					continue
				}
				a.RHS = saved
			}
			// Conditions: try true/false.
			for _, s := range b.Stmts {
				iff, ok := s.(*ast.IfStmt)
				if !ok {
					continue
				}
				if _, isLit := iff.Cond.(*ast.BoolLit); isLit {
					continue
				}
				saved := iff.Cond
				for _, v := range []bool{true, false} {
					iff.Cond = ast.Bool(v)
					if check(prog) {
						changed = true
						saved = nil
						break
					}
				}
				if saved != nil {
					iff.Cond = saved
				}
			}
		}
		if !changed {
			return prog
		}
	}
}

// Size returns the statement count of a program (the reduction metric).
func Size(prog *ast.Program) int {
	n := 0
	for _, b := range bodies(prog) {
		n += len(b.Stmts)
	}
	return n
}
