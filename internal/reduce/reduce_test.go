package reduce_test

import (
	"errors"
	"strings"
	"testing"

	"gauntlet/internal/bugs"
	"gauntlet/internal/compiler"
	"gauntlet/internal/generator"
	"gauntlet/internal/p4/ast"
	"gauntlet/internal/p4/parser"
	"gauntlet/internal/p4/printer"
	"gauntlet/internal/p4/types"
	"gauntlet/internal/reduce"
)

// TestReduceKeepsCrash shrinks a generated program that triggers a seeded
// type-checker crash down to (close to) the crashing construct.
func TestReduceKeepsCrash(t *testing.T) {
	reg := bugs.Load()
	bug := reg.ByID("P4C-C-03") // concat crash
	pl := bugs.Instrument(compiler.DefaultPasses(), []*bugs.Bug{bug})
	crashes := func(p *ast.Program) bool {
		_, err := compiler.New(pl...).Compile(ast.CloneProgram(p))
		var crash *compiler.CrashError
		return errors.As(err, &crash)
	}

	// Find a generated program that triggers the bug.
	var prog *ast.Program
	for seed := int64(0); seed < 40; seed++ {
		cand := generator.Generate(generator.DefaultConfig(seed))
		if err := types.Check(cand); err != nil {
			t.Fatal(err)
		}
		if crashes(cand) {
			prog = cand
			break
		}
	}
	if prog == nil {
		t.Skip("no generated program triggers the concat crash in 40 seeds")
	}

	before := reduce.Size(prog)
	small := reduce.Reduce(prog, crashes, reduce.Options{})
	after := reduce.Size(small)
	if !crashes(small) {
		t.Fatal("reduced program no longer crashes")
	}
	if after >= before {
		t.Fatalf("reduction did not shrink: %d -> %d statements", before, after)
	}
	// The reduced program must still contain the triggering construct.
	if !strings.Contains(printer.Print(small), "++") {
		t.Fatalf("reduced program lost the concat:\n%s", printer.Print(small))
	}
	t.Logf("reduced %d -> %d statements", before, after)
}

// TestReduceToMinimalWitness reduces a handwritten program with one
// relevant statement buried in noise.
func TestReduceToMinimalWitness(t *testing.T) {
	src := `
control ig(inout bit<8> x, inout bit<8> y) {
    apply {
        bit<8> n1 = x + 8w1;
        y = n1 ^ x;
        if (y > 8w3) {
            y = y - 8w1;
        } else {
            y = y + 8w1;
        }
        x = x |+| 8w255;
        y = y & 8w15;
    }
}
V1Switch(ig) main;
`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := types.Check(prog); err != nil {
		t.Fatal(err)
	}
	keep := func(p *ast.Program) bool {
		return strings.Contains(printer.Print(p), "|+|")
	}
	small := reduce.Reduce(prog, keep, reduce.Options{})
	if got := reduce.Size(small); got > 1 {
		t.Fatalf("expected a 1-statement reproducer, got %d:\n%s", got, printer.Print(small))
	}
	if !keep(small) {
		t.Fatal("property lost during reduction")
	}
}

// TestReducePreservesTypes: every intermediate acceptance is well-typed,
// so the final result must be too.
func TestReducePreservesTypes(t *testing.T) {
	prog := generator.Generate(generator.DefaultConfig(17))
	if err := types.Check(prog); err != nil {
		t.Fatal(err)
	}
	small := reduce.Reduce(prog, func(p *ast.Program) bool { return true }, reduce.Options{})
	if err := types.Check(ast.CloneProgram(small)); err != nil {
		t.Fatalf("reduced program ill-typed: %v", err)
	}
	if reduce.Size(small) != 0 {
		// With an always-true predicate everything removable must go.
		t.Fatalf("trivial predicate left %d statements", reduce.Size(small))
	}
}
