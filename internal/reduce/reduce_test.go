package reduce_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"gauntlet/internal/bugs"
	"gauntlet/internal/compiler"
	"gauntlet/internal/generator"
	"gauntlet/internal/p4/ast"
	"gauntlet/internal/p4/parser"
	"gauntlet/internal/p4/printer"
	"gauntlet/internal/p4/types"
	"gauntlet/internal/reduce"
)

// TestReduceKeepsCrash shrinks a generated program that triggers a seeded
// type-checker crash down to (close to) the crashing construct.
func TestReduceKeepsCrash(t *testing.T) {
	reg := bugs.Load()
	bug := reg.ByID("P4C-C-03") // concat crash
	pl := bugs.Instrument(compiler.DefaultPasses(), []*bugs.Bug{bug})
	crashes := func(p *ast.Program) bool {
		_, err := compiler.New(pl...).Compile(ast.CloneProgram(p))
		var crash *compiler.CrashError
		return errors.As(err, &crash)
	}

	// Find a generated program that triggers the bug.
	var prog *ast.Program
	for seed := int64(0); seed < 40; seed++ {
		cand := generator.Generate(generator.DefaultConfig(seed))
		if err := types.Check(cand); err != nil {
			t.Fatal(err)
		}
		if crashes(cand) {
			prog = cand
			break
		}
	}
	if prog == nil {
		t.Skip("no generated program triggers the concat crash in 40 seeds")
	}

	before := reduce.Size(prog)
	small := reduce.Reduce(prog, crashes, reduce.Options{})
	after := reduce.Size(small)
	if !crashes(small) {
		t.Fatal("reduced program no longer crashes")
	}
	if after >= before {
		t.Fatalf("reduction did not shrink: %d -> %d statements", before, after)
	}
	// The reduced program must still contain the triggering construct.
	if !strings.Contains(printer.Print(small), "++") {
		t.Fatalf("reduced program lost the concat:\n%s", printer.Print(small))
	}
	t.Logf("reduced %d -> %d statements", before, after)
}

// TestReduceToMinimalWitness reduces a handwritten program with one
// relevant statement buried in noise.
func TestReduceToMinimalWitness(t *testing.T) {
	src := `
control ig(inout bit<8> x, inout bit<8> y) {
    apply {
        bit<8> n1 = x + 8w1;
        y = n1 ^ x;
        if (y > 8w3) {
            y = y - 8w1;
        } else {
            y = y + 8w1;
        }
        x = x |+| 8w255;
        y = y & 8w15;
    }
}
V1Switch(ig) main;
`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := types.Check(prog); err != nil {
		t.Fatal(err)
	}
	keep := func(p *ast.Program) bool {
		return strings.Contains(printer.Print(p), "|+|")
	}
	small := reduce.Reduce(prog, keep, reduce.Options{})
	if got := reduce.Size(small); got > 1 {
		t.Fatalf("expected a 1-statement reproducer, got %d:\n%s", got, printer.Print(small))
	}
	if !keep(small) {
		t.Fatal("property lost during reduction")
	}
}

// TestReduceDropsDeclsAndFields: unreferenced top-level declarations and
// header fields must be pruned, not just statements — they are what keeps
// two otherwise identical minimal witnesses distinct.
func TestReduceDropsDeclsAndFields(t *testing.T) {
	src := `
header Unused {
    bit<8> dead;
}
header Used {
    bit<8> keep;
    bit<16> alsodead;
}
struct Hs {
    Used u;
}
control ig(inout Hs hdr, inout bit<8> y) {
    apply {
        y = hdr.u.keep |+| 8w255;
    }
}
V1Switch(ig) main;
`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := types.Check(prog); err != nil {
		t.Fatal(err)
	}
	keep := func(p *ast.Program) bool {
		return strings.Contains(printer.Print(p), "|+|")
	}
	small := reduce.Reduce(prog, keep, reduce.Options{})
	out := printer.Print(small)
	if strings.Contains(out, "Unused") {
		t.Errorf("unreferenced header declaration survived:\n%s", out)
	}
	if strings.Contains(out, "alsodead") {
		t.Errorf("unreferenced header field survived:\n%s", out)
	}
	if !keep(small) {
		t.Fatal("property lost during reduction")
	}
	if err := types.Check(ast.CloneProgram(small)); err != nil {
		t.Fatalf("reduced program ill-typed: %v", err)
	}
}

// TestReduceBudget: the predicate-call budget must bound the work and
// still return a valid (if less reduced) program.
func TestReduceBudget(t *testing.T) {
	prog := generator.Generate(generator.DefaultConfig(3))
	if err := types.Check(prog); err != nil {
		t.Fatal(err)
	}
	calls := 0
	keep := func(p *ast.Program) bool {
		calls++
		return true
	}
	small := reduce.Reduce(prog, keep, reduce.Options{MaxPredicateCalls: 10})
	if calls > 10 {
		t.Errorf("predicate called %d times, budget was 10", calls)
	}
	if err := types.Check(ast.CloneProgram(small)); err != nil {
		t.Fatalf("budget-limited result ill-typed: %v", err)
	}
	// An unbounded run of the same reduction must go strictly further.
	full := reduce.Reduce(prog, func(*ast.Program) bool { return true }, reduce.Options{})
	if reduce.Size(full) >= reduce.Size(small) && reduce.Size(small) > 0 {
		t.Errorf("budget made no difference: full=%d budgeted=%d", reduce.Size(full), reduce.Size(small))
	}
}

// TestReduceContextCancelled: an already-cancelled context must return
// without calling the predicate at all.
func TestReduceContextCancelled(t *testing.T) {
	prog := generator.Generate(generator.DefaultConfig(4))
	if err := types.Check(prog); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	out := reduce.ReduceContext(ctx, prog, func(*ast.Program) bool { calls++; return true }, reduce.Options{})
	if calls != 0 {
		t.Errorf("predicate ran %d times under a cancelled context", calls)
	}
	if out == nil {
		t.Fatal("no program returned")
	}
	if printer.Fingerprint(out) != printer.Fingerprint(prog) {
		t.Error("cancelled reduction altered the program")
	}
}

// TestReducePreservesTypes: every intermediate acceptance is well-typed,
// so the final result must be too.
func TestReducePreservesTypes(t *testing.T) {
	prog := generator.Generate(generator.DefaultConfig(17))
	if err := types.Check(prog); err != nil {
		t.Fatal(err)
	}
	small := reduce.Reduce(prog, func(p *ast.Program) bool { return true }, reduce.Options{})
	if err := types.Check(ast.CloneProgram(small)); err != nil {
		t.Fatalf("reduced program ill-typed: %v", err)
	}
	if reduce.Size(small) != 0 {
		// With an always-true predicate everything removable must go.
		t.Fatalf("trivial predicate left %d statements", reduce.Size(small))
	}
}

// TestReduceIdempotent: reduction must reach a fixpoint — reducing a
// reduced witness (declaration, field and parser-state pruning included)
// is a no-op, and the witness still compiles through the clean reference
// pipeline. A reducer that keeps finding work on its own output would
// destabilize semantic fingerprints, which key on the reduced program.
func TestReduceIdempotent(t *testing.T) {
	src := `
header Hdr1 {
    bit<8> a;
    bit<8> b;
}
header Hdr2 {
    bit<16> c;
}
header Unused {
    bit<4> u;
}
struct Hdr {
    Hdr1 h1;
    Hdr2 h2;
}
parser p(packet pkt, out Hdr hdr, inout bit<8> m) {
    state start {
        pkt.extract(hdr.h1);
        transition select(hdr.h1.a) {
            8w1 : parse_h2;
            default : accept;
        }
    }
    state parse_h2 {
        pkt.extract(hdr.h2);
        transition extra;
    }
    state extra {
        m = m + 8w1;
        transition accept;
    }
}
control ig(inout Hdr hdr, inout bit<8> m) {
    apply {
        bit<8> t1 = hdr.h1.a + 8w3;
        hdr.h1.b = t1 |+| 8w7;
        m = m ^ 8w1;
    }
}
V1Switch(p, ig) main;
`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := types.Check(ast.CloneProgram(prog)); err != nil {
		t.Fatal(err)
	}
	keep := func(p *ast.Program) bool {
		return strings.Contains(printer.Print(p), "|+|")
	}

	reduced := reduce.Reduce(prog, keep, reduce.Options{})
	out := printer.Print(reduced)
	if strings.Contains(out, "Unused") {
		t.Errorf("unreferenced header declaration survived:\n%s", out)
	}
	if strings.Contains(out, "m + 8w1") {
		t.Errorf("prunable parser-state statement survived:\n%s", out)
	}
	if !keep(reduced) {
		t.Fatal("property lost during reduction")
	}

	// Idempotence: a second reduction finds nothing left to do.
	calls := 0
	counting := func(p *ast.Program) bool { calls++; return keep(p) }
	again := reduce.Reduce(reduced, counting, reduce.Options{})
	if printer.Fingerprint(again) != printer.Fingerprint(reduced) {
		t.Fatalf("reduction is not idempotent:\n--- first\n%s\n--- second\n%s",
			out, printer.Print(again))
	}
	if calls == 0 {
		t.Fatal("second reduction never consulted the predicate")
	}

	// The reduced witness must still compile through the clean reference
	// pipeline (it is a real program, not just a type-checking artifact).
	if _, err := compiler.New(compiler.DefaultPasses()...).Compile(reduced); err != nil {
		t.Fatalf("reduced witness no longer compiles: %v\n%s", err, printer.Print(reduced))
	}
}

// TestReduceIdempotentOnCrashWitness: the same fixpoint property over a
// generated program reduced under a real crash predicate — the engine's
// production regime.
func TestReduceIdempotentOnCrashWitness(t *testing.T) {
	reg := bugs.Load()
	bug := reg.ByID("P4C-C-03") // concat crash
	pl := bugs.Instrument(compiler.DefaultPasses(), []*bugs.Bug{bug})
	crashes := func(p *ast.Program) bool {
		_, err := compiler.New(pl...).Compile(ast.CloneProgram(p))
		var crash *compiler.CrashError
		return errors.As(err, &crash)
	}
	var prog *ast.Program
	for seed := int64(0); seed < 40; seed++ {
		cand := generator.Generate(generator.DefaultConfig(seed))
		if crashes(cand) {
			prog = cand
			break
		}
	}
	if prog == nil {
		t.Skip("no generated program triggers the concat crash in 40 seeds")
	}

	reduced := reduce.Reduce(prog, crashes, reduce.Options{})
	again := reduce.Reduce(reduced, crashes, reduce.Options{})
	if printer.Fingerprint(again) != printer.Fingerprint(reduced) {
		t.Fatalf("crash-witness reduction not idempotent:\n--- first\n%s\n--- second\n%s",
			printer.Print(reduced), printer.Print(again))
	}
	// The witness crashes the instrumented pipeline (that is the bug), but
	// must compile cleanly through the defect-free reference pipeline.
	if _, err := compiler.New(compiler.DefaultPasses()...).Compile(reduced); err != nil {
		t.Fatalf("reduced crash witness does not compile the clean pipeline: %v", err)
	}
}
