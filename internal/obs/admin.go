package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// AdminConfig wires the admin server's endpoints to the process being
// observed. Every field is optional; an unset endpoint serves a
// minimal static response instead of 404ing, so probes configured
// before the engine exists stay green.
type AdminConfig struct {
	// Metrics backs /metrics (Prometheus text exposition format).
	Metrics *Registry
	// Status returns the /statusz payload, rendered as indented JSON.
	Status func() any
	// Health backs /healthz: nil ⇒ 200 "ok", non-nil ⇒ 503 with the
	// error text. Liveness semantics (what counts as wedged) belong to
	// the caller.
	Health func() error
}

// Admin is a running admin HTTP server. It binds eagerly (so a bad
// address fails fast at startup, not at first scrape) and shuts down
// gracefully, draining in-flight scrapes.
type Admin struct {
	srv *http.Server
	ln  net.Listener
}

// StartAdmin binds addr (host:port; ":0" picks a free port) and serves
// /metrics, /statusz, /healthz and /debug/pprof/* until Shutdown.
func StartAdmin(addr string, cfg AdminConfig) (*Admin, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if cfg.Metrics != nil {
			_ = cfg.Metrics.WritePrometheus(w)
		}
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		var payload any = map[string]string{"status": "no status hook registered"}
		if cfg.Status != nil {
			payload = cfg.Status()
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(payload); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		if cfg.Health != nil {
			if err := cfg.Health(); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	// Explicit pprof routes on our private mux; importing net/http/pprof
	// also touches http.DefaultServeMux, which we never serve.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "p4gauntlet admin: /metrics /statusz /healthz /debug/pprof/")
	})

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: admin listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	a := &Admin{srv: srv, ln: ln}
	go func() {
		// ErrServerClosed is the normal Shutdown path; any other serve
		// error leaves the admin plane dark but must not take down the
		// fuzzing process.
		_ = srv.Serve(ln)
	}()
	return a, nil
}

// Addr returns the bound listen address (useful with ":0").
func (a *Admin) Addr() string { return a.ln.Addr().String() }

// Shutdown gracefully stops the server, draining in-flight requests
// until ctx expires.
func (a *Admin) Shutdown(ctx context.Context) error { return a.srv.Shutdown(ctx) }
