package obs_test

import (
	"context"
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"gauntlet/internal/obs"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

// TestAdminEndpoints starts an admin server on a free port and probes
// every route: metrics exposition, statusz JSON, healthz flipping
// between 200 and 503 with the health hook, the pprof index, and the
// root catalog line.
func TestAdminEndpoints(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("admin_test_total", "probe", nil).Add(3)
	var healthErr error
	admin, err := obs.StartAdmin("127.0.0.1:0", obs.AdminConfig{
		Metrics: reg,
		Status:  func() any { return map[string]int{"answer": 42} },
		Health:  func() error { return healthErr },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		if err := admin.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()
	base := "http://" + admin.Addr()

	if code, body := get(t, base+"/metrics"); code != 200 || !strings.Contains(body, "admin_test_total 3") {
		t.Errorf("/metrics = %d %q", code, body)
	}
	if code, body := get(t, base+"/statusz"); code != 200 || !strings.Contains(body, `"answer": 42`) {
		t.Errorf("/statusz = %d %q", code, body)
	}
	if code, body := get(t, base+"/healthz"); code != 200 || strings.TrimSpace(body) != "ok" {
		t.Errorf("/healthz = %d %q, want 200 ok", code, body)
	}
	healthErr = errors.New("pipeline wedged")
	if code, body := get(t, base+"/healthz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "pipeline wedged") {
		t.Errorf("/healthz with error = %d %q, want 503 with reason", code, body)
	}
	healthErr = nil
	if code, body := get(t, base+"/debug/pprof/"); code != 200 || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ = %d (body %d bytes)", code, len(body))
	}
	if code, body := get(t, base+"/"); code != 200 || !strings.Contains(body, "/metrics") {
		t.Errorf("/ = %d %q", code, body)
	}
	if code, _ := get(t, base+"/nope"); code != 404 {
		t.Errorf("/nope = %d, want 404", code)
	}
}

// TestAdminNilHooks: an admin plane with no hooks serves placeholders,
// never 404s, so probes configured before the engine exists stay green.
func TestAdminNilHooks(t *testing.T) {
	admin, err := obs.StartAdmin("127.0.0.1:0", obs.AdminConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Shutdown(context.Background())
	base := "http://" + admin.Addr()
	if code, _ := get(t, base+"/metrics"); code != 200 {
		t.Errorf("/metrics = %d", code)
	}
	if code, body := get(t, base+"/statusz"); code != 200 || !strings.Contains(body, "no status hook") {
		t.Errorf("/statusz = %d %q", code, body)
	}
	if code, _ := get(t, base+"/healthz"); code != 200 {
		t.Errorf("/healthz = %d", code)
	}
}

// TestAdminBadAddr: a bad address fails at StartAdmin, not at first
// scrape.
func TestAdminBadAddr(t *testing.T) {
	if _, err := obs.StartAdmin("256.0.0.1:bad", obs.AdminConfig{}); err == nil {
		t.Fatal("StartAdmin on a bad address succeeded")
	}
}
