// Package obs is the engine's introspection plane: a small,
// dependency-free metrics registry (counters, gauges, and
// deterministic log-bucketed latency histograms) plus an HTTP admin
// server (admin.go) that exposes it.
//
// The package follows the same "isolate first, then share" discipline
// as the engine it observes: every hot-path metric is sharded so
// concurrent writers never contend on a cache line, and shards are
// merged only on snapshot-on-read (a scrape or an explicit Snapshot
// call). Because histogram buckets are a pure function of the observed
// duration (bucket index = bit length of the nanosecond count) and
// shard merging is element-wise addition — associative and commutative
// — the merged view of a given event stream is identical at any worker
// count and any interleaving.
//
// Instrumentation must never perturb the system under observation:
// nothing in this package blocks a writer, allocates on the Observe
// path, or reads the clock on the caller's behalf.
package obs

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	randv2 "math/rand/v2"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Labels names one metric series within a family. Keys and values are
// rendered in Prometheus text exposition format; a nil or empty map
// means the unlabelled series.
type Labels map[string]string

// histBuckets is the number of finite log2 buckets. Bucket i counts
// observations whose nanosecond value has bit length i, i.e. values in
// [2^(i-1), 2^i), so its cumulative upper bound is (2^i - 1) ns.
// Bucket 40 tops out at ~18 minutes; anything slower lands in the
// overflow (+Inf) bucket. One extra slot holds the overflow count.
const histBuckets = 40

// bucketOf maps a duration to its histogram bucket index.
// Deterministic: depends only on the observed value, never on the
// observer. Negative durations clamp to bucket 0.
func bucketOf(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	i := bits.Len64(uint64(d))
	if i > histBuckets {
		return histBuckets + 1 // overflow → +Inf
	}
	return i
}

// HistSnapshot is a merged, immutable view of a histogram: per-bucket
// counts (index histBuckets+1 is the +Inf overflow bucket) and the sum
// of observed nanoseconds.
type HistSnapshot struct {
	Counts [histBuckets + 2]uint64
	SumNs  uint64
}

// Count returns the total number of observations.
func (s HistSnapshot) Count() uint64 {
	var n uint64
	for _, c := range s.Counts {
		n += c
	}
	return n
}

// Merge returns the element-wise sum of two snapshots. Merge is
// associative and commutative, so folding any partition of an event
// stream in any order yields the same result.
func (s HistSnapshot) Merge(o HistSnapshot) HistSnapshot {
	for i, c := range o.Counts {
		s.Counts[i] += c
	}
	s.SumNs += o.SumNs
	return s
}

// histShard is one writer-private slice of a histogram. Padded
// implicitly by being allocated as distinct structs in a slice of
// pointers.
type histShard struct {
	counts [histBuckets + 2]atomic.Uint64
	sumNs  atomic.Uint64
}

// Histogram is a sharded log-bucketed latency histogram. Writers pick
// a shard (either explicitly, keyed by worker index, or cheaply at
// random) and bump two atomics; readers merge all shards into a
// HistSnapshot.
type Histogram struct {
	shards []*histShard
}

func newHistogram(shards int) *Histogram {
	if shards < 1 {
		shards = 1
	}
	h := &Histogram{shards: make([]*histShard, shards)}
	for i := range h.shards {
		h.shards[i] = new(histShard)
	}
	return h
}

// Observe records one duration on an arbitrary shard. The shard choice
// affects only write contention, never the merged snapshot.
func (h *Histogram) Observe(d time.Duration) {
	i := 0
	if n := len(h.shards); n > 1 {
		i = int(randv2.Uint64() % uint64(n))
	}
	h.ObserveShard(i, d)
}

// ObserveShard records one duration on the shard keyed by worker index
// w (mod shard count). Per-worker sharding keeps hot loops free of
// cross-core cache-line bouncing.
func (h *Histogram) ObserveShard(w int, d time.Duration) {
	s := h.shards[w%len(h.shards)]
	s.counts[bucketOf(d)].Add(1)
	if d > 0 {
		s.sumNs.Add(uint64(d))
	}
}

// Snapshot merges all shards into one immutable view.
func (h *Histogram) Snapshot() HistSnapshot {
	var out HistSnapshot
	for _, s := range h.shards {
		for i := range s.counts {
			out.Counts[i] += s.counts[i].Load()
		}
		out.SumNs += s.sumNs.Load()
	}
	return out
}

// Counter is a sharded monotonically increasing counter.
type Counter struct {
	shards []atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	i := 0
	if s := len(c.shards); s > 1 {
		i = int(randv2.Uint64() % uint64(s))
	}
	c.shards[i].Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value merges all shards.
func (c *Counter) Value() uint64 {
	var n uint64
	for i := range c.shards {
		n += c.shards[i].Load()
	}
	return n
}

// Gauge is a settable instantaneous value.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(floatBits(v)) }

// Add atomically adds v.
func (g *Gauge) Add(v float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, floatBits(bitsFloat(old)+v)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return bitsFloat(g.bits.Load()) }

func floatBits(v float64) uint64 { return math.Float64bits(v) }
func bitsFloat(b uint64) float64 { return math.Float64frombits(b) }

// Emit receives point-in-time series from a registered collector
// during a gather. Collectors are how pre-existing snapshot-style
// state (e.g. core.Stats) joins the registry without double-counting.
type Emit struct {
	fams map[string]*gatherFamily
}

// Counter emits a monotonically increasing collector series.
func (e *Emit) Counter(name, help string, labels Labels, v float64) {
	e.emit(name, help, "counter", labels, v)
}

// Gauge emits an instantaneous collector series.
func (e *Emit) Gauge(name, help string, labels Labels, v float64) {
	e.emit(name, help, "gauge", labels, v)
}

func (e *Emit) emit(name, help, typ string, labels Labels, v float64) {
	f := e.fams[name]
	if f == nil {
		f = &gatherFamily{name: name, help: help, typ: typ}
		e.fams[name] = f
	}
	f.series = append(f.series, gatherSeries{labels: canonLabels(labels), value: v})
}

// Registry holds metric families and collectors. All methods are safe
// for concurrent use; registration of an already-registered
// (name, labels) series returns the existing instrument, so packages
// can re-register idempotently.
type Registry struct {
	mu         sync.Mutex
	families   map[string]*family
	collectors []func(*Emit)
	shards     int
}

type family struct {
	name, help, typ string
	series          map[string]*instrument // key: canonical label rendering
}

type instrument struct {
	labels string
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// NewRegistry returns an empty registry whose sharded instruments use
// one shard per scheduler thread (clamped to [1, 64]).
func NewRegistry() *Registry {
	shards := runtime.GOMAXPROCS(0)
	if shards < 1 {
		shards = 1
	}
	if shards > 64 {
		shards = 64
	}
	return &Registry{families: make(map[string]*family), shards: shards}
}

func (r *Registry) lookup(name, help, typ string, labels Labels) *instrument {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, series: make(map[string]*instrument)}
		r.families[name] = f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.typ, typ))
	}
	key := canonLabels(labels)
	ins := f.series[key]
	if ins == nil {
		ins = &instrument{labels: key}
		switch typ {
		case "counter":
			ins.c = &Counter{shards: make([]atomic.Uint64, r.shards)}
		case "gauge":
			ins.g = &Gauge{}
		case "histogram":
			ins.h = newHistogram(r.shards)
		}
		f.series[key] = ins
	}
	return ins
}

// Counter registers (or finds) a counter series.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	return r.lookup(name, help, "counter", labels).c
}

// Gauge registers (or finds) a gauge series.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	return r.lookup(name, help, "gauge", labels).g
}

// Histogram registers (or finds) a log-bucketed latency histogram
// series with the registry's default shard count.
func (r *Registry) Histogram(name, help string, labels Labels) *Histogram {
	return r.lookup(name, help, "histogram", labels).h
}

// Collect registers fn to be invoked on every gather (scrape). The
// collector emits point-in-time series that are merged with the eager
// instruments; emitting into an eagerly registered family name panics
// at render time, so collectors should own distinct names.
func (r *Registry) Collect(fn func(*Emit)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, fn)
}

type gatherSeries struct {
	labels string
	value  float64
	hist   *HistSnapshot
}

type gatherFamily struct {
	name, help, typ string
	series          []gatherSeries
}

// gather snapshots every eager instrument and runs every collector,
// returning families sorted by name with series sorted by labels.
func (r *Registry) gather() []*gatherFamily {
	r.mu.Lock()
	fams := make(map[string]*gatherFamily, len(r.families))
	for name, f := range r.families {
		gf := &gatherFamily{name: name, help: f.help, typ: f.typ}
		for _, ins := range f.series {
			gs := gatherSeries{labels: ins.labels}
			switch {
			case ins.c != nil:
				gs.value = float64(ins.c.Value())
			case ins.g != nil:
				gs.value = ins.g.Value()
			case ins.h != nil:
				snap := ins.h.Snapshot()
				gs.hist = &snap
			}
			gf.series = append(gf.series, gs)
		}
		fams[name] = gf
	}
	collectors := make([]func(*Emit), len(r.collectors))
	copy(collectors, r.collectors)
	r.mu.Unlock()

	em := &Emit{fams: fams}
	for _, fn := range collectors {
		fn(em)
	}

	out := make([]*gatherFamily, 0, len(fams))
	for _, gf := range fams {
		sort.Slice(gf.series, func(i, j int) bool { return gf.series[i].labels < gf.series[j].labels })
		out = append(out, gf)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// WritePrometheus renders every family in Prometheus text exposition
// format (version 0.0.4). Output ordering is deterministic: families
// by name, series by canonical label rendering, histogram buckets by
// ascending upper bound with only occupied buckets plus the mandatory
// +Inf emitted.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	for _, f := range r.gather() {
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range f.series {
			if s.hist != nil {
				writeHistSeries(&b, f.name, s.labels, *s.hist)
				continue
			}
			fmt.Fprintf(&b, "%s%s %s\n", f.name, s.labels, formatValue(s.value))
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeHistSeries(b *strings.Builder, name, labels string, h HistSnapshot) {
	cum := uint64(0)
	for i := 0; i <= histBuckets; i++ {
		if h.Counts[i] == 0 {
			continue
		}
		cum += h.Counts[i]
		le := strconv.FormatFloat(float64(uint64(1)<<uint(i)-1)/1e9, 'g', -1, 64)
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, withLabel(labels, "le", le), cum)
	}
	cum += h.Counts[histBuckets+1]
	fmt.Fprintf(b, "%s_bucket%s %d\n", name, withLabel(labels, "le", "+Inf"), cum)
	fmt.Fprintf(b, "%s_sum%s %s\n", name, labels, formatValue(float64(h.SumNs)/1e9))
	fmt.Fprintf(b, "%s_count%s %d\n", name, labels, cum)
}

// withLabel splices an extra label pair into an already-rendered label
// set. The extra pair goes last; Prometheus imposes no label order.
func withLabel(labels, k, v string) string {
	pair := k + `="` + escapeLabel(v) + `"`
	if labels == "" {
		return "{" + pair + "}"
	}
	return labels[:len(labels)-1] + "," + pair + "}"
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// canonLabels renders labels in sorted-key order so that logically
// equal label sets map to the same series key and render identically.
func canonLabels(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[k]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}
