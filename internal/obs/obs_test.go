package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// testStream is a fixed, worker-count-independent event stream: one
// duration per event, spanning several buckets including the sub-zero
// clamp and the +Inf overflow.
func testStream(n int) []time.Duration {
	out := make([]time.Duration, n)
	// Deterministic LCG so the stream is the same in every test run
	// without touching a global RNG.
	x := uint64(0x9e3779b97f4a7c15)
	for i := range out {
		x = x*6364136223846793005 + 1442695040888963407
		switch i % 7 {
		case 0:
			out[i] = -time.Duration(x % 1000) // clamps to bucket 0
		case 1:
			out[i] = 30 * time.Minute // overflow → +Inf
		default:
			out[i] = time.Duration(x % uint64(10*time.Second))
		}
	}
	return out
}

// TestBucketOf pins the bucket function: pure in the observed value,
// with the documented clamp and overflow edges.
func TestBucketOf(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{-5, 0},
		{0, 0},
		{1, 1},
		{2, 2},
		{3, 2},
		{4, 3},
		{time.Duration(1)<<39 - 1, 39},
		{time.Duration(1) << 39, 40},
		{time.Duration(1) << 40, histBuckets + 1}, // ~18min+, overflow
		{30 * time.Minute, histBuckets + 1},
	}
	for _, c := range cases {
		if got := bucketOf(c.d); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.d, got, c.want)
		}
	}
}

// TestHistogramShardInvariance: the merged snapshot of a fixed event
// stream is identical at any shard count and under any partition of the
// stream across concurrent writers — the property that lets per-worker
// sharding change contention without changing what a scrape reports.
func TestHistogramShardInvariance(t *testing.T) {
	stream := testStream(5000)
	want := func() HistSnapshot {
		h := newHistogram(1)
		for _, d := range stream {
			h.Observe(d)
		}
		return h.Snapshot()
	}()
	if want.Count() != uint64(len(stream)) {
		t.Fatalf("reference Count = %d, want %d", want.Count(), len(stream))
	}
	for _, shards := range []int{1, 4, 8, 64} {
		for _, writers := range []int{1, 8} {
			h := newHistogram(shards)
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					// Partition the stream round-robin across writers;
					// each writer sticks to its own shard key.
					for i := w; i < len(stream); i += writers {
						h.ObserveShard(w, stream[i])
					}
				}(w)
			}
			wg.Wait()
			if got := h.Snapshot(); got != want {
				t.Errorf("shards=%d writers=%d: snapshot differs from single-shard reference", shards, writers)
			}
		}
	}
}

// TestMergeAssociative: Merge is associative and commutative, so the
// fold order over shards never matters.
func TestMergeAssociative(t *testing.T) {
	mk := func(seed int) HistSnapshot {
		h := newHistogram(1)
		for _, d := range testStream(100 * (seed + 1)) {
			h.Observe(d + time.Duration(seed))
		}
		return h.Snapshot()
	}
	a, b, c := mk(0), mk(1), mk(2)
	if a.Merge(b) != b.Merge(a) {
		t.Error("Merge is not commutative")
	}
	if a.Merge(b).Merge(c) != a.Merge(b.Merge(c)) {
		t.Error("Merge is not associative")
	}
	var zero HistSnapshot
	if a.Merge(zero) != a {
		t.Error("zero snapshot is not a Merge identity")
	}
}

// TestCounterGauge covers the scalar instruments, including concurrent
// sharded counter writes summing exactly.
func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "ops", nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	g := r.Gauge("test_level", "level", nil)
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Errorf("gauge = %v, want 1.5", got)
	}
	// Registration is idempotent: same (name, labels) → same instrument.
	if r.Counter("test_ops_total", "ops", nil) != c {
		t.Error("re-registration returned a different counter")
	}
	if r.Counter("test_ops_total", "ops", Labels{"k": "v"}) == c {
		t.Error("distinct label set returned the same counter")
	}
}

// TestTypeConflictPanics: one name cannot be both a counter and a gauge.
func TestTypeConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_thing", "", nil)
	defer func() {
		if recover() == nil {
			t.Error("registering test_thing as a gauge did not panic")
		}
	}()
	r.Gauge("test_thing", "", nil)
}

// TestWritePrometheus pins the text exposition: HELP/TYPE headers,
// cumulative occupied-only buckets plus mandatory +Inf, _sum in
// seconds, _count, label escaping, collector series, and byte-identical
// output across repeated renders (deterministic ordering).
func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_last_total", "sorts last", nil).Add(7)
	r.Gauge("aa_first", "sorts first", Labels{"q": `a"b\c`}).Set(1)
	h := r.Histogram("mid_seconds", "a histogram", Labels{"stage": "x"})
	h.Observe(1 * time.Nanosecond)  // bucket 1, le=(2^1-1)/1e9
	h.Observe(3 * time.Nanosecond)  // bucket 2
	h.Observe(3 * time.Nanosecond)  // bucket 2
	h.Observe(40 * time.Minute)     // +Inf
	r.Collect(func(e *Emit) {
		e.Counter("collected_total", "from a collector", Labels{"a": "1"}, 42)
	})

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	for _, want := range []string{
		"# HELP mid_seconds a histogram\n# TYPE mid_seconds histogram\n",
		`mid_seconds_bucket{stage="x",le="1e-09"} 1` + "\n",
		`mid_seconds_bucket{stage="x",le="3e-09"} 3` + "\n",
		`mid_seconds_bucket{stage="x",le="+Inf"} 4` + "\n",
		`mid_seconds_count{stage="x"} 4` + "\n",
		"zz_last_total 7\n",
		`aa_first{q="a\"b\\c"} 1` + "\n",
		`collected_total{a="1"} 42` + "\n",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	// Only occupied buckets are emitted: bucket 3..40 are empty.
	if strings.Contains(got, `le="7e-09"`) {
		t.Error("empty bucket rendered")
	}
	// _sum is in seconds: 1ns+3ns+3ns+40min.
	wantSum := (float64(1+3+3) + float64(40*time.Minute)) / 1e9
	if !strings.Contains(got, "mid_seconds_sum{stage=\"x\"} "+trimFloat(wantSum)) {
		t.Errorf("sum line wrong in:\n%s", got)
	}
	// Families sort by name.
	if strings.Index(got, "aa_first") > strings.Index(got, "mid_seconds") ||
		strings.Index(got, "mid_seconds") > strings.Index(got, "zz_last_total") {
		t.Error("families not sorted by name")
	}
	// Deterministic: a second render is byte-identical.
	var b2 strings.Builder
	if err := r.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if b2.String() != got {
		t.Error("repeated render differs")
	}
}

func trimFloat(v float64) string {
	return formatValue(v)
}

// TestConcurrentObserveGather hammers every instrument kind while
// scraping — meaningful under -race; also checks a mid-write scrape
// never reads a torn histogram (count and bucket sum agree).
func TestConcurrentObserveGather(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hot_total", "", nil)
	g := r.Gauge("hot_level", "", nil)
	h := r.Histogram("hot_seconds", "", nil)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				g.Set(float64(i))
				h.ObserveShard(w, time.Duration(i%1000)*time.Microsecond)
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		snap := h.Snapshot()
		var sum uint64
		for _, n := range snap.Counts {
			sum += n
		}
		if sum != snap.Count() {
			t.Fatalf("torn snapshot: bucket sum %d != Count %d", sum, snap.Count())
		}
	}
	close(stop)
	wg.Wait()
}
