package sym

import (
	"fmt"

	"gauntlet/internal/smt"
)

// env is a lexical scope chain of symbolic bindings. Cloning copies the
// whole chain so branch states can diverge and later merge.
type env struct {
	parent *env
	names  map[string]Value
	order  []string // deterministic iteration for merging
	// root marks the control-level scope; callable bodies are rooted here
	// so they see control parameters and locals but not call-site blocks.
	root bool
}

func newEnv(parent *env) *env { return &env{parent: parent, names: map[string]Value{}} }

func (e *env) get(name string) (Value, bool) {
	for sc := e; sc != nil; sc = sc.parent {
		if v, ok := sc.names[name]; ok {
			return v, true
		}
	}
	return nil, false
}

func (e *env) declare(name string, v Value) {
	if _, ok := e.names[name]; !ok {
		e.order = append(e.order, name)
	}
	e.names[name] = v
}

func (e *env) set(name string, v Value) error {
	for sc := e; sc != nil; sc = sc.parent {
		if _, ok := sc.names[name]; ok {
			sc.names[name] = v
			return nil
		}
	}
	return fmt.Errorf("sym: assignment to undeclared %q", name)
}

func (e *env) clone() *env {
	if e == nil {
		return nil
	}
	c := &env{parent: e.parent.clone(), names: make(map[string]Value, len(e.names)), root: e.root}
	c.order = append(c.order, e.order...)
	for k, v := range e.names {
		c.names[k] = v.Clone()
	}
	return c
}

// mergeEnv merges two structurally identical env chains under cond.
func mergeEnv(cond *smt.Term, a, b *env) *env {
	if a == nil {
		return nil
	}
	m := &env{parent: mergeEnv(cond, a.parent, b.parent), names: make(map[string]Value, len(a.names)), root: a.root}
	m.order = append(m.order, a.order...)
	for _, k := range a.order {
		bv, ok := b.names[k]
		if !ok {
			// Declared only in branch a (dead beyond the branch); keep a's.
			m.names[k] = a.names[k]
			continue
		}
		m.names[k] = Merge(cond, a.names[k], bv)
	}
	for _, k := range b.order {
		if _, ok := a.names[k]; !ok {
			m.names[k] = b.names[k]
		}
	}
	return m
}

// state is the symbolic machine state: an environment plus control terms.
type state struct {
	env *env
	// live is the condition under which execution reaches the current
	// program point. All assignments are guarded by it.
	live *smt.Term
	// exited is the condition under which an exit statement has fired
	// anywhere in the control so far.
	exited *smt.Term
}

func newState(sctx *smt.Context) *state {
	return &state{env: newEnv(nil), live: sctx.True(), exited: sctx.False()}
}

func (s *state) clone() *state {
	return &state{env: s.env.clone(), live: s.live, exited: s.exited}
}

// mergeState folds branch states back together: taken-branch values where
// cond holds, else-branch values otherwise.
func mergeState(cond *smt.Term, a, b *state) *state {
	return &state{
		env:    mergeEnv(cond, a.env, b.env),
		live:   smt.Ite(cond, a.live, b.live),
		exited: smt.Ite(cond, a.exited, b.exited),
	}
}

// assignGuarded stores v into name under the current liveness guard.
func (s *state) assignGuarded(name string, v Value) error {
	old, ok := s.env.get(name)
	if !ok {
		return fmt.Errorf("sym: assignment to undeclared %q", name)
	}
	s.env.set(name, Merge(s.live, v, old))
	return nil
}
