package sym

import (
	"fmt"

	"gauntlet/internal/p4/ast"
	"gauntlet/internal/smt"
)

// Pipeline is the composed symbolic form of a whole packet-processing
// pipeline (parser → controls → deparser): the end-to-end function from
// input packet bits, table state and metadata to the emitted packet.
// Black-box test generation (§6) works on this composition, since a
// proprietary back end only exposes whole-pipeline behaviour.
type Pipeline struct {
	// Ctx is the smt context the pipeline's terms live in (the blocks'
	// context); test generation builds its auxiliary constraints there.
	Ctx *smt.Context
	// Env maps flattened leaf names (hdr.h1.f1, sm.egress_spec,
	// hdr.h1.$valid) to their final terms after all blocks.
	Env map[string]*smt.Term
	// Emits is the deparser emit sequence, fully substituted.
	Emits []EmitRecord
	// Reject is the parser-reject (drop) condition.
	Reject *smt.Term
	// BranchConds aggregates every block's branch conditions, fully
	// substituted into pipeline context, in execution order.
	BranchConds []*smt.Term
	// TableVars and HavocNames aggregate the blocks' auxiliary inputs.
	TableVars  []string
	HavocNames []string
	// PacketBits is the number of packet bit variables the parser reads.
	PacketBits int
	// FieldTerms lists the post-parse header field terms (used for
	// non-zero model preference, §6.2).
	FieldTerms []*smt.Term
	// ExternalInputs lists the first block's in/inout parameter leaves:
	// state the target supplies at pipeline entry (standard metadata).
	// Test generation pins these to the target's initial values.
	ExternalInputs []NamedTerm
}

// ComposePipeline chains blocks in order. The first block should be the
// parser, the last the deparser; controls in between. Blocks communicate
// through identically-named parameters (the architecture contract: hdr,
// sm).
func ComposePipeline(blocks []*Block) (*Pipeline, error) {
	sctx := smt.DefaultContext()
	if len(blocks) > 0 && blocks[0].Ctx != nil {
		sctx = blocks[0].Ctx
	}
	p := &Pipeline{Ctx: sctx, Env: map[string]*smt.Term{}, Reject: sctx.False()}
	seenHavoc := map[string]bool{}
	for bi, b := range blocks {
		// Substitution: this block's fresh inputs stand for the previous
		// block's outputs.
		repl := map[string]*smt.Term{}
		for name, term := range p.Env {
			repl[name] = term
		}
		// Collect this block's outputs, substituted.
		var flat []NamedTerm
		for _, o := range b.Out {
			Flatten(o.Name, o.Val, &flat)
		}
		next := map[string]*smt.Term{}
		for _, nt := range flat {
			next[nt.Name] = smt.Subst(nt.Term, repl)
		}
		for name, term := range next {
			p.Env[name] = term
		}
		if b.Reject != nil {
			p.Reject = smt.Or(p.Reject, smt.Subst(b.Reject, repl))
		}
		for _, c := range b.BranchConds {
			p.BranchConds = append(p.BranchConds, smt.Subst(c, repl))
		}
		for _, e := range b.Emits {
			ne := EmitRecord{Cond: smt.Subst(e.Cond, repl)}
			for _, f := range e.Fields {
				ne.Fields = append(ne.Fields, NamedTerm{Name: f.Name, Term: smt.Subst(f.Term, repl)})
			}
			p.Emits = append(p.Emits, ne)
		}
		p.TableVars = append(p.TableVars, b.TableVars...)
		for _, h := range b.UndefNames {
			if !seenHavoc[h] {
				seenHavoc[h] = true
				p.HavocNames = append(p.HavocNames, h)
			}
		}
		if bi == 0 {
			p.PacketBits = b.PacketBits
			p.ExternalInputs = b.Inputs
			// Post-parse field terms: everything the parser extracted.
			for _, nt := range flat {
				if nt.Term.W > 0 {
					p.FieldTerms = append(p.FieldTerms, next[nt.Name])
				}
			}
		}
	}
	return p, nil
}

// PipelineOf builds the standard 4-block pipeline from a program's main
// instantiation: parser, ingress, egress, deparser (the v1model / TNA
// shape both generator back ends emit).
func PipelineOf(prog *ast.Program) (*Pipeline, error) {
	return PipelineOfIn(smt.DefaultContext(), prog)
}

// PipelineOfIn is PipelineOf with every term built in the given smt
// context.
func PipelineOfIn(sctx *smt.Context, prog *ast.Program) (*Pipeline, error) {
	main := prog.Main()
	if main == nil {
		return nil, fmt.Errorf("sym: program has no main instantiation")
	}
	var blocks []*Block
	for _, arg := range main.Args {
		switch d := prog.DeclByName(arg).(type) {
		case *ast.ParserDecl:
			b, err := ExecParserIn(sctx, prog, d)
			if err != nil {
				return nil, err
			}
			blocks = append(blocks, b)
		case *ast.ControlDecl:
			b, err := ExecControlIn(sctx, prog, d)
			if err != nil {
				return nil, err
			}
			blocks = append(blocks, b)
		default:
			return nil, fmt.Errorf("sym: main argument %q is not a block", arg)
		}
	}
	return ComposePipeline(blocks)
}
