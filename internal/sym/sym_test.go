package sym_test

import (
	"math/rand"
	"strings"
	"testing"

	"gauntlet/internal/generator"
	"gauntlet/internal/p4/ast"
	"gauntlet/internal/p4/eval"
	"gauntlet/internal/p4/parser"
	"gauntlet/internal/p4/types"
	"gauntlet/internal/smt"
	"gauntlet/internal/sym"
)

func mustBlock(t *testing.T, src, ctrl string) (*ast.Program, *sym.Block) {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := types.Check(prog); err != nil {
		t.Fatalf("check: %v", err)
	}
	c := prog.Control(ctrl)
	if c == nil {
		t.Fatalf("no control %q", ctrl)
	}
	b, err := sym.ExecControl(prog, c)
	if err != nil {
		t.Fatalf("sym: %v", err)
	}
	return prog, b
}

// fig3 is the paper's Figure 3a program.
const fig3 = `
header Hdr_t { bit<8> a; bit<8> b; }
struct Hdr { Hdr_t h; }
control ingress(inout Hdr hdr) {
    action assign() { hdr.h.a = 8w1; }
    table t {
        key = { hdr.h.a : exact; }
        actions = { assign; NoAction; }
        default_action = NoAction();
    }
    apply { t.apply(); }
}
`

// TestFigure3FunctionalForm checks the paper's Figure 3b semantics: the
// output is hdr.a=1 iff the symbolic key matches and the symbolic action
// selector picks `assign` (id 1); otherwise the header passes through.
func TestFigure3FunctionalForm(t *testing.T) {
	_, b := mustBlock(t, fig3, "ingress")
	if len(b.Out) != 1 || b.Out[0].Name != "hdr" {
		t.Fatalf("outputs: %+v", b.Out)
	}
	var flat []sym.NamedTerm
	sym.Flatten("hdr", b.Out[0].Val, &flat)
	terms := map[string]*smt.Term{}
	for _, nt := range flat {
		terms[nt.Name] = nt.Term
	}
	aOut := terms["hdr.h.a"]
	if aOut == nil {
		t.Fatalf("missing hdr.h.a output; have %v", flat)
	}

	evalCase := func(a, key, action uint64) uint64 {
		m := smt.Assignment{
			"hdr.h.a":          a,
			"ingress.t.key_0":  key,
			"ingress.t.action": action,
		}
		return smt.Eval(aOut, m)
	}
	// Hit + action 1 (assign): output 1.
	if got := evalCase(7, 7, 1); got != 1 {
		t.Errorf("hit+assign: a' = %d, want 1", got)
	}
	// Hit + action 2 (NoAction): passthrough.
	if got := evalCase(7, 7, 2); got != 7 {
		t.Errorf("hit+NoAction: a' = %d, want 7", got)
	}
	// Hit + unlisted action id: default (NoAction) → passthrough.
	if got := evalCase(7, 7, 9); got != 7 {
		t.Errorf("hit+unlisted: a' = %d, want 7", got)
	}
	// Miss: default → passthrough.
	if got := evalCase(7, 8, 1); got != 7 {
		t.Errorf("miss: a' = %d, want 7", got)
	}
	// The formula must mention the table's symbolic variables (Fig. 3's
	// t_table_key / t_action encoding).
	vars := map[string]int{}
	aOut.Vars(vars)
	if _, ok := vars["ingress.t.key_0"]; !ok {
		t.Error("formula does not reference the symbolic table key")
	}
	if _, ok := vars["ingress.t.action"]; !ok {
		t.Error("formula does not reference the symbolic action selector")
	}
	if len(b.TableVars) != 2 {
		t.Errorf("TableVars = %v, want key and action", b.TableVars)
	}
}

// buildEvalArgs constructs concrete evaluator arguments for the control's
// parameters from an SMT assignment using the sym input-naming convention.
func buildEvalArgs(params []ast.Param, m smt.Assignment) []eval.Value {
	var out []eval.Value
	for _, p := range params {
		out = append(out, buildEvalValue(p.Name, p.Type, m))
	}
	return out
}

func buildEvalValue(path string, t ast.Type, m smt.Assignment) eval.Value {
	switch t := t.(type) {
	case *ast.BitType:
		return &eval.BitVal{Width: t.Width, V: ast.MaskWidth(m[path], t.Width)}
	case *ast.BoolType:
		return &eval.BoolVal{V: m[path] == 1}
	case *ast.HeaderType:
		h := &eval.HeaderVal{T: t, Valid: m[path+".$valid"] == 1, F: map[string]eval.Value{}}
		for _, f := range t.Fields {
			h.F[f.Name] = buildEvalValue(path+"."+f.Name, f.Type, m)
		}
		return h
	case *ast.StructType:
		s := &eval.StructVal{T: t, F: map[string]eval.Value{}}
		for _, f := range t.Fields {
			s.F[f.Name] = buildEvalValue(path+"."+f.Name, f.Type, m)
		}
		return s
	default:
		panic("buildEvalValue: unsupported type")
	}
}

// buildTableConfig converts symbolic table-variable assignments into a
// concrete single-entry table configuration matching the Fig. 3 encoding.
func buildTableConfig(prog *ast.Program, ctrl *ast.ControlDecl, m smt.Assignment) eval.Config {
	cfg := eval.Config{}
	for _, tbl := range ctrl.Tables() {
		prefix := ctrl.Name + "." + tbl.Name
		key := make([]uint64, len(tbl.Keys))
		for i := range tbl.Keys {
			key[i] = m[prefixKey(prefix, i)]
		}
		idx := int(m[prefix+".action"])
		tc := &eval.TableConfig{}
		if idx >= 1 && idx <= len(tbl.Actions) && len(tbl.Keys) > 0 {
			name := tbl.Actions[idx-1].Name
			var args []uint64
			if ad, ok := ctrl.LocalByName(name).(*ast.ActionDecl); ok {
				for _, p := range ad.Params {
					args = append(args, m[prefix+"."+name+".arg_"+p.Name])
				}
			}
			tc.Entries = append(tc.Entries, eval.TableEntry{Key: key, Action: name, Args: args})
		}
		cfg[prefix] = tc
	}
	return cfg
}

func prefixKey(prefix string, i int) string {
	return prefix + ".key_" + string(rune('0'+i))
}

// diffPrograms is a corpus of control blocks exercising the constructs the
// paper's semantics cover; the differential test cross-checks sym against
// the concrete evaluator on random inputs.
var diffPrograms = []struct {
	name string
	src  string
}{
	{"arith", `
control ig(inout bit<8> x, inout bit<8> y) {
    apply {
        x = x + y * 8w3 - (x & y);
        y = (x | y) ^ (x << 8w2) |+| 8w7;
    }
}`},
	{"branch", `
control ig(inout bit<8> x, inout bit<8> y) {
    apply {
        if (x < y) {
            x = y |-| 8w3;
        } else if (x == y) {
            x = 8w0;
        } else {
            y = x ++ y[3:0] != 12w7 ? y : 8w1;
        }
    }
}`},
	{"slices", `
control ig(inout bit<8> x, inout bit<8> y) {
    apply {
        x[3:0] = y[7:4];
        y[7:6] = x[1:0];
        x = ~x;
    }
}`},
	{"calls", `
control ig(inout bit<8> x, inout bit<8> y) {
    bit<8> helper(inout bit<8> a, in bit<8> b) {
        a = a + b;
        if (a > 8w128) { return 8w255; }
        return a;
    }
    apply {
        y = helper(x, y);
    }
}`},
	{"exit", `
control ig(inout bit<8> x, inout bit<8> y) {
    action a(inout bit<8> v) {
        v = 8w3;
        if (y > 8w10) { exit; }
        v = v + 8w1;
    }
    apply {
        a(x);
        y = y + 8w1;
    }
}`},
	{"headers", `
header H { bit<8> a; bit<8> b; }
struct S { H h; }
control ig(inout S s, inout bit<8> y) {
    apply {
        if (s.h.isValid()) {
            y = s.h.a;
            s.h.setInvalid();
        } else {
            s.h.setValid();
            s.h.a = y;
            s.h.b = 8w9;
        }
    }
}`},
	{"table", `
header H { bit<8> a; bit<8> b; }
struct S { H h; }
control ig(inout S s) {
    action setb(bit<8> v) { s.h.b = v; }
    action inc() { s.h.a = s.h.a + 8w1; }
    table t {
        key = { s.h.a : exact; }
        actions = { setb; inc; NoAction; }
        default_action = inc();
    }
    apply { t.apply(); }
}`},
	{"switch", `
control ig(inout bit<8> x, inout bit<8> y) {
    apply {
        switch (x & 8w3) {
            8w0: { y = y + 8w1; }
            8w1: { y = y - 8w1; }
            default: { y = 8w0; }
        }
    }
}`},
	{"shortcircuit", `
control ig(inout bit<8> x, inout bit<8> y) {
    bool bump(inout bit<8> v) {
        v = v + 8w1;
        return v > 8w7;
    }
    apply {
        if (x > 8w100 && bump(y)) {
            x = 8w0;
        }
    }
}`},
	{"mux-nested", `
control ig(inout bit<8> x, inout bit<8> y) {
    apply {
        x = x > y ? (x == 8w255 ? y : x - y) : y - x;
    }
}`},
}

// TestDifferentialSymVsEval is the central soundness check: evaluating the
// symbolic functional form under a concrete assignment must equal running
// the concrete interpreter with the corresponding inputs and table state.
func TestDifferentialSymVsEval(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for _, tc := range diffPrograms {
		t.Run(tc.name, func(t *testing.T) {
			prog, err := parser.Parse(tc.src)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			if err := types.Check(prog); err != nil {
				t.Fatalf("check: %v", err)
			}
			ctrl := prog.Control("ig")
			block, err := sym.ExecControl(prog, ctrl)
			if err != nil {
				t.Fatalf("sym: %v", err)
			}
			inputs := block.InputVars()

			for trial := 0; trial < 50; trial++ {
				m := smt.Assignment{}
				for name, w := range inputs {
					if strings.HasPrefix(name, "havoc_") {
						m[name] = 0 // zero-undef policy on both sides
						continue
					}
					if w == 0 {
						m[name] = r.Uint64() & 1
					} else {
						m[name] = r.Uint64() & ((1 << uint(w)) - 1)
					}
				}

				// Concrete run.
				cfg := buildTableConfig(prog, ctrl, m)
				args := buildEvalArgs(ctrl.Params, m)
				in := eval.New(prog, eval.ZeroUndef, cfg)
				if err := in.ExecControl(ctrl, args); err != nil {
					t.Fatalf("trial %d: eval: %v", trial, err)
				}

				// Symbolic run evaluated under m.
				for i, o := range block.Out {
					// Find the matching eval output.
					var got eval.Value
					for j, p := range ctrl.Params {
						if p.Name == o.Name {
							got = args[j]
						}
					}
					if got == nil {
						t.Fatalf("output %s not found among params", o.Name)
					}
					want := buildSymConcrete(o.Val, m)
					if !eval.Equal(got, want) {
						t.Fatalf("trial %d output %d (%s):\n eval: %s\n sym:  %s\n assignment: %v",
							trial, i, o.Name, got, want, m)
					}
				}
			}
		})
	}
}

// buildSymConcrete evaluates a symbolic value under an assignment,
// producing a concrete eval.Value for comparison.
func buildSymConcrete(v sym.Value, m smt.Assignment) eval.Value {
	switch v := v.(type) {
	case *sym.BitVal:
		return &eval.BitVal{Width: v.T.W, V: smt.Eval(v.T, m)}
	case *sym.BoolVal:
		return &eval.BoolVal{V: smt.Eval(v.T, m) == 1}
	case *sym.HeaderVal:
		h := &eval.HeaderVal{T: v.Type, Valid: smt.Eval(v.Valid, m) == 1, F: map[string]eval.Value{}}
		for name, fv := range v.F {
			h.F[name] = buildSymConcrete(fv, m)
		}
		return h
	case *sym.StructVal:
		s := &eval.StructVal{T: v.Type, F: map[string]eval.Value{}}
		for name, fv := range v.F {
			s.F[name] = buildSymConcrete(fv, m)
		}
		return s
	default:
		panic("buildSymConcrete: unknown value")
	}
}

// TestEquivalentSelf checks that every corpus block is equivalent to
// itself (the no-bug baseline of translation validation).
func TestEquivalentSelf(t *testing.T) {
	for _, tc := range diffPrograms {
		prog, err := parser.Parse(tc.src)
		if err != nil {
			t.Fatalf("%s: parse: %v", tc.name, err)
		}
		if err := types.Check(prog); err != nil {
			t.Fatalf("%s: check: %v", tc.name, err)
		}
		ctrl := prog.Control("ig")
		a, err := sym.ExecControl(prog, ctrl)
		if err != nil {
			t.Fatalf("%s: sym: %v", tc.name, err)
		}
		b, err := sym.ExecControl(prog, ctrl)
		if err != nil {
			t.Fatalf("%s: sym: %v", tc.name, err)
		}
		eq := sym.Equivalent(a, b)
		// Evaluate under a handful of random assignments; self-equivalence
		// must hold everywhere.
		r := rand.New(rand.NewSource(1))
		inputs := a.InputVars()
		for trial := 0; trial < 20; trial++ {
			m := smt.Assignment{}
			for name, w := range inputs {
				if w == 0 {
					m[name] = r.Uint64() & 1
				} else {
					m[name] = r.Uint64() & ((1 << uint(w)) - 1)
				}
			}
			if smt.Eval(eq, m) != 1 {
				t.Fatalf("%s: self-equivalence fails under %v", tc.name, m)
			}
		}
	}
}

func TestParserSymbolic(t *testing.T) {
	src := `
header Eth { bit<16> etype; }
header Ip { bit<8> ttl; }
struct S { Eth eth; Ip ip; }
parser p(packet pkt, out S hdr) {
    state start {
        pkt.extract(hdr.eth);
        transition select(hdr.eth.etype) {
            16w0x800 : ip;
            default : accept;
        }
    }
    state ip {
        pkt.extract(hdr.ip);
        transition accept;
    }
}
`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := types.Check(prog); err != nil {
		t.Fatalf("check: %v", err)
	}
	b, err := sym.ExecParser(prog, prog.Parser("p"))
	if err != nil {
		t.Fatalf("sym parser: %v", err)
	}
	if b.PacketBits != 24 {
		t.Errorf("PacketBits = %d, want 24", b.PacketBits)
	}
	var flat []sym.NamedTerm
	sym.Flatten("hdr", b.Out[0].Val, &flat)
	terms := map[string]*smt.Term{}
	for _, nt := range flat {
		terms[nt.Name] = nt.Term
	}

	// IPv4 packet 0x0800 + ttl 64, long enough: ip valid, ttl extracted.
	m := smt.Assignment{"pkt_len": 24}
	// etype = 0x0800: bits 0..15 MSB first → bit 4 set (0x0800 = 0000100000000000).
	for i := 0; i < 16; i++ {
		if (0x0800>>(15-i))&1 == 1 {
			m["pkt_"+itoa(i)] = 1
		}
	}
	// ttl = 64: bits 16..23 MSB first.
	for i := 0; i < 8; i++ {
		if (64>>(7-i))&1 == 1 {
			m["pkt_"+itoa(16+i)] = 1
		}
	}
	if smt.Eval(b.Reject, m) != 0 {
		t.Fatal("full packet rejected")
	}
	if smt.Eval(terms["hdr.ip.$valid"], m) != 1 {
		t.Error("ip not valid for etype 0x0800")
	}
	if got := smt.Eval(terms["hdr.ip.ttl"], m); got != 64 {
		t.Errorf("ttl = %d, want 64", got)
	}

	// Same bytes but length 16: the ip extract must reject.
	m["pkt_len"] = 16
	if smt.Eval(b.Reject, m) != 1 {
		t.Error("short packet not rejected")
	}

	// Non-IP etype with length 16: accepted, ip invalid.
	m2 := smt.Assignment{"pkt_len": 16}
	for i := 0; i < 16; i++ {
		if (0x86DD>>(15-i))&1 == 1 {
			m2["pkt_"+itoa(i)] = 1
		}
	}
	if smt.Eval(b.Reject, m2) != 0 {
		t.Error("non-ip packet rejected")
	}
	if smt.Eval(terms["hdr.ip.$valid"], m2) != 0 {
		t.Error("ip marked valid for non-ip packet")
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

func TestParserLoopDetected(t *testing.T) {
	src := `
header Eth { bit<16> etype; }
struct S { Eth eth; }
parser p(packet pkt, out S hdr) {
    state start {
        transition loop;
    }
    state loop {
        transition start;
    }
}
`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := types.Check(prog); err != nil {
		t.Fatalf("check: %v", err)
	}
	if _, err := sym.ExecParser(prog, prog.Parser("p")); err == nil {
		t.Fatal("parser loop not detected")
	}
}

// TestDifferentialOnGeneratedPrograms extends the differential oracle to
// random generator output: for every generated ingress/egress control,
// evaluating the symbolic form under random assignments must match the
// concrete interpreter. This is the §5.2 co-evolution loop ("we
// co-evolved the interpreter with our generator") as a standing test.
func TestDifferentialOnGeneratedPrograms(t *testing.T) {
	if testing.Short() {
		t.Skip("breadth test")
	}
	r := rand.New(rand.NewSource(77))
	for seed := int64(0); seed < 25; seed++ {
		prog := generator.Generate(generator.DefaultConfig(seed))
		if err := types.Check(prog); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, ctrl := range prog.Controls() {
			// Deparser-style controls need packet state; skip them here
			// (covered by the pipeline tests).
			hasPacket := false
			for _, p := range ctrl.Params {
				if _, ok := p.Type.(*ast.PacketType); ok {
					hasPacket = true
				}
			}
			if hasPacket {
				continue
			}
			block, err := sym.ExecControl(prog, ctrl)
			if err != nil {
				t.Fatalf("seed %d %s: sym: %v", seed, ctrl.Name, err)
			}
			inputs := block.InputVars()
			for trial := 0; trial < 6; trial++ {
				m := smt.Assignment{}
				for name, w := range inputs {
					if strings.HasPrefix(name, "havoc_") {
						m[name] = 0
						continue
					}
					if w == 0 {
						m[name] = r.Uint64() & 1
					} else {
						m[name] = r.Uint64() & ((1 << uint(w)) - 1)
					}
				}
				cfg := buildTableConfig(prog, ctrl, m)
				args := buildEvalArgs(ctrl.Params, m)
				in := eval.New(prog, eval.ZeroUndef, cfg)
				if err := in.ExecControl(ctrl, args); err != nil {
					t.Fatalf("seed %d %s trial %d: eval: %v", seed, ctrl.Name, trial, err)
				}
				for _, o := range block.Out {
					var got eval.Value
					for j, p := range ctrl.Params {
						if p.Name == o.Name {
							got = args[j]
						}
					}
					want := buildSymConcrete(o.Val, m)
					if !eval.Equal(got, want) {
						t.Fatalf("seed %d %s trial %d output %s:\n eval: %s\n sym:  %s",
							seed, ctrl.Name, trial, o.Name, got, want)
					}
				}
			}
		}
	}
}
