package sym

import (
	"gauntlet/internal/p4/ast"
	"gauntlet/internal/smt"
)

func (in *Interp) evalExpr(s *state, x ast.Expr) (Value, error) {
	switch x := x.(type) {
	case *ast.Ident:
		v, ok := s.env.get(x.Name)
		if !ok {
			return nil, symErrorf("undefined name %q", x.Name)
		}
		return v, nil
	case *ast.IntLit:
		w := x.Width
		if w == 0 {
			w = 64
		}
		return &BitVal{T: in.ctx.Const(x.Val, w)}, nil
	case *ast.BoolLit:
		return &BoolVal{T: in.ctx.Bool(x.Val)}, nil
	case *ast.UnaryExpr:
		v, err := in.evalExpr(s, x.X)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case ast.OpLNot:
			return &BoolVal{T: smt.Not(v.(*BoolVal).T)}, nil
		case ast.OpNeg:
			return &BitVal{T: smt.BVNeg(v.(*BitVal).T)}, nil
		case ast.OpBitNot:
			return &BitVal{T: smt.BVNot(v.(*BitVal).T)}, nil
		}
		return nil, symErrorf("unknown unary op")
	case *ast.BinaryExpr:
		return in.evalBinary(s, x)
	case *ast.MuxExpr:
		cv, err := in.evalExpr(s, x.Cond)
		if err != nil {
			return nil, err
		}
		cond := cv.(*BoolVal).T
		in.branchDepth++
		defer func() { in.branchDepth-- }()
		// Side effects in the branches are guarded like an if statement.
		saved := s.live
		s.live = smt.And(saved, cond)
		tv, err := in.evalExpr(s, x.Then)
		if err != nil {
			return nil, err
		}
		tv = tv.Clone()
		s.live = smt.And(saved, smt.Not(cond))
		ev, err := in.evalExpr(s, x.Else)
		if err != nil {
			return nil, err
		}
		s.live = saved
		return Merge(cond, tv, ev), nil
	case *ast.CastExpr:
		v, err := in.evalExpr(s, x.X)
		if err != nil {
			return nil, err
		}
		switch to := x.To.(type) {
		case *ast.BitType:
			switch v := v.(type) {
			case *BitVal:
				if to.Width >= v.T.W {
					return &BitVal{T: smt.ZExt(v.T, to.Width)}, nil
				}
				return &BitVal{T: smt.Trunc(v.T, to.Width)}, nil
			case *BoolVal:
				return &BitVal{T: smt.BoolToBV(v.T, to.Width)}, nil
			}
		case *ast.BoolType:
			if b, ok := v.(*BitVal); ok && b.T.W == 1 {
				return &BoolVal{T: smt.BVToBool(b.T)}, nil
			}
		}
		return nil, symErrorf("unsupported cast to %s", x.To)
	case *ast.MemberExpr:
		cv, err := in.evalExpr(s, x.X)
		if err != nil {
			return nil, err
		}
		switch c := cv.(type) {
		case *StructVal:
			f, ok := c.F[x.Member]
			if !ok {
				return nil, symErrorf("struct has no field %q", x.Member)
			}
			return f, nil
		case *HeaderVal:
			f, ok := c.F[x.Member]
			if !ok {
				return nil, symErrorf("header has no field %q", x.Member)
			}
			return f, nil
		default:
			return nil, symErrorf("member access on non-composite value")
		}
	case *ast.SliceExpr:
		v, err := in.evalExpr(s, x.X)
		if err != nil {
			return nil, err
		}
		b, ok := v.(*BitVal)
		if !ok {
			return nil, symErrorf("slice of non-bit value")
		}
		return &BitVal{T: smt.Extract(b.T, x.Hi, x.Lo)}, nil
	case *ast.CallExpr:
		return in.evalCall(s, x)
	default:
		return nil, symErrorf("unsupported expression %T", x)
	}
}

func (in *Interp) evalBinary(s *state, x *ast.BinaryExpr) (Value, error) {
	// Short-circuiting logical operators guard right-operand effects.
	if x.Op.IsLogical() {
		lv, err := in.evalExpr(s, x.X)
		if err != nil {
			return nil, err
		}
		lt := lv.(*BoolVal).T
		saved := s.live
		if x.Op == ast.OpLAnd {
			s.live = smt.And(saved, lt)
		} else {
			s.live = smt.And(saved, smt.Not(lt))
		}
		rv, err := in.evalExpr(s, x.Y)
		s.live = saved
		if err != nil {
			return nil, err
		}
		rt := rv.(*BoolVal).T
		if x.Op == ast.OpLAnd {
			return &BoolVal{T: smt.And(lt, rt)}, nil
		}
		return &BoolVal{T: smt.Or(lt, rt)}, nil
	}

	lv, err := in.evalExpr(s, x.X)
	if err != nil {
		return nil, err
	}
	rv, err := in.evalExpr(s, x.Y)
	if err != nil {
		return nil, err
	}

	if x.Op == ast.OpEq || x.Op == ast.OpNe {
		t := EqualValues(lv, rv)
		if x.Op == ast.OpNe {
			t = smt.Not(t)
		}
		return &BoolVal{T: t}, nil
	}

	lb, lok := lv.(*BitVal)
	rb, rok := rv.(*BitVal)
	if !lok || !rok {
		return nil, symErrorf("%s on non-bit operands", x.Op)
	}
	a, b := lb.T, rb.T
	switch x.Op {
	case ast.OpLt:
		return &BoolVal{T: smt.Ult(a, b)}, nil
	case ast.OpLe:
		return &BoolVal{T: smt.Ule(a, b)}, nil
	case ast.OpGt:
		return &BoolVal{T: smt.Ugt(a, b)}, nil
	case ast.OpGe:
		return &BoolVal{T: smt.Uge(a, b)}, nil
	case ast.OpAdd:
		return &BitVal{T: smt.Add(a, b)}, nil
	case ast.OpSub:
		return &BitVal{T: smt.Sub(a, b)}, nil
	case ast.OpMul:
		return &BitVal{T: smt.Mul(a, b)}, nil
	case ast.OpSatAdd:
		return &BitVal{T: smt.SatAdd(a, b)}, nil
	case ast.OpSatSub:
		return &BitVal{T: smt.SatSub(a, b)}, nil
	case ast.OpBitAnd:
		return &BitVal{T: smt.BVAnd(a, b)}, nil
	case ast.OpBitOr:
		return &BitVal{T: smt.BVOr(a, b)}, nil
	case ast.OpBitXor:
		return &BitVal{T: smt.BVXor(a, b)}, nil
	case ast.OpShl:
		return &BitVal{T: smt.Shl(a, b)}, nil
	case ast.OpShr:
		return &BitVal{T: smt.Lshr(a, b)}, nil
	case ast.OpConcat:
		return &BitVal{T: smt.Concat(a, b)}, nil
	default:
		return nil, symErrorf("unknown binary op %s", x.Op)
	}
}
