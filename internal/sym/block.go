package sym

import (
	"gauntlet/internal/p4/ast"
	"gauntlet/internal/smt"
)

// NamedValue pairs an output parameter name with its symbolic value.
type NamedValue struct {
	Name string
	Val  Value
}

// Block is the symbolic functional form of one programmable block: the
// paper's per-block Z3 formula (§5.2). Inputs are the named variables
// occurring in the terms (parameter leaves, packet bits, table keys and
// action selectors, undef symbols); Out holds one symbolic value per
// out/inout parameter.
type Block struct {
	Name   string
	Params []ast.Param
	// Ctx is the smt context every term of this block lives in.
	Ctx *smt.Context
	// Out holds the final value of every out and inout parameter.
	Out []NamedValue
	// Reject is the condition under which a parser rejects the packet
	// (always false for controls).
	Reject *smt.Term
	// Emits lists deparser emissions in order (empty for other blocks).
	Emits []EmitRecord
	// BranchConds lists every data-dependent branch condition in
	// execution order; test generation toggles their polarities (§6).
	BranchConds []*smt.Term
	// UndefNames lists the undefined-value symbols introduced; test
	// generation cannot control these paths (§6.2).
	UndefNames []string
	// TableVars lists the symbolic table keys/action selectors/arguments,
	// which test generation concretizes into table entries.
	TableVars []string
	// PacketBits is the number of packet bit variables consumed (parsers).
	PacketBits int
	// Inputs lists the fresh input leaves created for in/inout
	// parameters (name and variable term). Pipeline composition uses the
	// first block's list as the externally-supplied state the target
	// initializes (e.g. standard metadata).
	Inputs []NamedTerm
}

// InputVars returns every input variable of the block's terms (name →
// width, 0 for booleans).
func (b *Block) InputVars() map[string]int {
	vars := map[string]int{}
	for _, o := range b.Out {
		var flat []NamedTerm
		Flatten(o.Name, o.Val, &flat)
		for _, nt := range flat {
			nt.Term.Vars(vars)
		}
	}
	if b.Reject != nil {
		b.Reject.Vars(vars)
	}
	for _, e := range b.Emits {
		e.Cond.Vars(vars)
		for _, f := range e.Fields {
			f.Term.Vars(vars)
		}
	}
	return vars
}

// ExecControl converts a control block into symbolic form. Controls with a
// packet parameter act as deparsers: their emit sequence is recorded in
// Emits.
func ExecControl(prog *ast.Program, ctrl *ast.ControlDecl) (*Block, error) {
	return ExecControlIn(smt.DefaultContext(), prog, ctrl)
}

// ExecControlIn is ExecControl with every term of the block form built
// in the given smt context.
func ExecControlIn(sctx *smt.Context, prog *ast.Program, ctrl *ast.ControlDecl) (*Block, error) {
	in := NewInterpIn(sctx, prog)
	in.ctrl = ctrl
	s := newState(sctx)

	global := s.env
	if err := in.declareTopConsts(s, global); err != nil {
		return nil, err
	}

	ctrlScope := newEnv(global)
	ctrlScope.root = true
	s.env = ctrlScope

	var inputs []NamedTerm
	hasPacket := false
	for _, p := range ctrl.Params {
		if _, isPkt := p.Type.(*ast.PacketType); isPkt {
			ctrlScope.declare(p.Name, &packetRef{})
			hasPacket = true
			continue
		}
		switch p.Dir {
		case ast.DirOut:
			ctrlScope.declare(p.Name, NewUndefValue(p.Type, in.undef))
		default:
			v := FreshInputIn(in.ctx, p.Name, p.Type)
			ctrlScope.declare(p.Name, v)
			Flatten(p.Name, v, &inputs)
		}
	}
	if hasPacket {
		in.pktLen = in.ctx.Var("pkt_len", 32)
	}

	for _, l := range ctrl.Locals {
		switch d := l.(type) {
		case *ast.VarDecl:
			if d.Init != nil {
				v, err := in.evalExpr(s, d.Init)
				if err != nil {
					return nil, err
				}
				ctrlScope.declare(d.Name, v.Clone())
			} else {
				ctrlScope.declare(d.Name, NewUndefValue(d.Type, in.undef))
			}
		case *ast.ConstDecl:
			v, err := in.evalExpr(s, d.Value)
			if err != nil {
				return nil, err
			}
			ctrlScope.declare(d.Name, v.Clone())
		}
	}

	if err := in.execBlock(s, ctrl.Apply); err != nil {
		return nil, err
	}
	b := in.finishBlock(ctrl.Name, ctrl.Params, s, in.ctx.False())
	b.Inputs = inputs
	return b, nil
}

func (in *Interp) declareTopConsts(s *state, global *env) error {
	for _, d := range in.prog.Decls {
		if c, ok := d.(*ast.ConstDecl); ok {
			v, err := in.evalExpr(s, c.Value)
			if err != nil {
				return err
			}
			global.declare(c.Name, v.Clone())
		}
	}
	return nil
}

func (in *Interp) finishBlock(name string, params []ast.Param, s *state, reject *smt.Term) *Block {
	b := &Block{
		Name:        name,
		Params:      params,
		Ctx:         in.ctx,
		Reject:      reject,
		Emits:       in.emits,
		BranchConds: in.branchConds,
		UndefNames:  in.undef.Names(),
		TableVars:   in.tableVars,
		PacketBits:  len(in.pktBits),
	}
	for _, p := range params {
		if !p.Dir.Writes() {
			continue
		}
		v, ok := s.env.get(p.Name)
		if !ok {
			continue
		}
		b.Out = append(b.Out, NamedValue{Name: p.Name, Val: v})
	}
	return b
}

// ExecParser converts a parser into symbolic form by exploring the state
// machine path by path (offsets stay concrete per path) and merging the
// accepting states. Parser loops are an error, mirroring the P4 restriction
// the paper leans on for decidability.
func ExecParser(prog *ast.Program, pd *ast.ParserDecl) (*Block, error) {
	return ExecParserIn(smt.DefaultContext(), prog, pd)
}

// ExecParserIn is ExecParser with every term of the block form built in
// the given smt context.
func ExecParserIn(sctx *smt.Context, prog *ast.Program, pd *ast.ParserDecl) (*Block, error) {
	in := NewInterpIn(sctx, prog)
	in.pktLen = in.ctx.Var("pkt_len", 32)
	in.reject = in.ctx.False()
	s := newState(sctx)

	global := s.env
	if err := in.declareTopConsts(s, global); err != nil {
		return nil, err
	}

	scope := newEnv(global)
	scope.root = true
	s.env = scope
	var inputs []NamedTerm
	for _, p := range pd.Params {
		if _, isPkt := p.Type.(*ast.PacketType); isPkt {
			scope.declare(p.Name, &packetRef{})
			continue
		}
		switch p.Dir {
		case ast.DirOut:
			scope.declare(p.Name, NewUndefValue(p.Type, in.undef))
		default:
			v := FreshInputIn(in.ctx, p.Name, p.Type)
			scope.declare(p.Name, v)
			Flatten(p.Name, v, &inputs)
		}
	}

	var accepted *state
	var walk func(s *state, stateName string, visited map[string]bool, depth int) error
	walk = func(s *state, stateName string, visited map[string]bool, depth int) error {
		switch stateName {
		case "accept":
			if accepted == nil {
				accepted = s
			} else {
				accepted = mergeState(s.live, s, accepted)
			}
			return nil
		case "reject":
			in.reject = smt.Or(in.reject, s.live)
			return nil
		}
		if depth > 64 {
			return symErrorf("parser %s: path depth exceeds 64", pd.Name)
		}
		if visited[stateName] {
			return symErrorf("parser %s: state loop through %q", pd.Name, stateName)
		}
		st := pd.StateByName(stateName)
		if st == nil {
			return symErrorf("parser %s: unknown state %q", pd.Name, stateName)
		}
		visited[stateName] = true
		defer delete(visited, stateName)

		s.env = newEnv(s.env)
		for _, stmt := range st.Stmts {
			if err := in.execStmt(s, stmt); err != nil {
				return err
			}
		}
		s.env = s.env.parent

		switch tr := st.Trans.(type) {
		case nil:
			return walk(s, "accept", visited, depth+1)
		case *ast.TransDirect:
			return walk(s, tr.Next, visited, depth+1)
		case *ast.TransSelect:
			kv, err := in.evalExpr(s, tr.Expr)
			if err != nil {
				return err
			}
			key := kv.(*BitVal).T
			noPrior := in.ctx.True()
			hasDefault := false
			for _, c := range tr.Cases {
				var cond *smt.Term
				if c.Value == nil {
					cond = noPrior
					hasDefault = true
				} else {
					// Case literals are arbitrary generated-program
					// constants: intern them in the epoch context, never
					// the immortal default one.
					caseEq := smt.Eq(key, in.ctx.Const(c.Value.Val, key.W))
					cond = smt.And(noPrior, caseEq)
					noPrior = smt.And(noPrior, smt.Not(caseEq))
				}
				in.noteBranch(cond)
				child := s.clone()
				child.live = smt.And(s.live, cond)
				savedOff := in.pktOff
				if err := walk(child, c.Next, visited, depth+1); err != nil {
					return err
				}
				in.pktOff = savedOff
			}
			if !hasDefault {
				// No match and no default: reject (P4₁₆ §12.6).
				in.reject = smt.Or(in.reject, smt.And(s.live, noPrior))
			}
			return nil
		default:
			return symErrorf("unknown transition %T", st.Trans)
		}
	}

	if err := walk(s, "start", map[string]bool{}, 0); err != nil {
		return nil, err
	}
	final := accepted
	if final == nil {
		final = s // every path rejects; outputs are the initial values
	}
	b := in.finishBlock(pd.Name, pd.Params, final, in.reject)
	b.Inputs = inputs
	return b, nil
}

// Equivalent builds the term "blocks A and B are observationally equal":
// same reject behaviour, same outputs on accepted packets, and the same
// emit sequence for deparsers. Translation validation asserts its negation
// and asks the solver for a distinguishing input (§5.2).
//
// The result is canonicalized through smt.Simplify, so two blocks whose
// outputs differ only syntactically (argument order, extract/concat
// plumbing, collapsed guards) yield the constant true here — no solver —
// and genuinely different miters reach the validator in one canonical
// form its verdict cache can key on.
func Equivalent(a, b *Block) *smt.Term {
	return smt.Simplify(equivalentRaw(a, b))
}

func equivalentRaw(a, b *Block) *smt.Term {
	sctx := a.Ctx
	if sctx == nil {
		sctx = smt.DefaultContext()
	}
	if len(a.Out) != len(b.Out) || len(a.Emits) != len(b.Emits) {
		return sctx.False()
	}
	eq := smt.Eq(a.Reject, b.Reject)
	outsEq := sctx.True()
	for i := range a.Out {
		if a.Out[i].Name != b.Out[i].Name {
			return sctx.False()
		}
		outsEq = smt.And(outsEq, EqualValues(a.Out[i].Val, b.Out[i].Val))
	}
	// Outputs only matter when the packet is not rejected.
	eq = smt.And(eq, smt.Or(a.Reject, outsEq))
	for i := range a.Emits {
		ea, eb := a.Emits[i], b.Emits[i]
		if len(ea.Fields) != len(eb.Fields) {
			return sctx.False()
		}
		fieldsEq := sctx.True()
		for j := range ea.Fields {
			fieldsEq = smt.And(fieldsEq, smt.Eq(ea.Fields[j].Term, eb.Fields[j].Term))
		}
		eq = smt.And(eq, smt.Eq(ea.Cond, eb.Cond), smt.Or(smt.Not(ea.Cond), fieldsEq))
	}
	return eq
}
