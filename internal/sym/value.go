// Package sym implements Gauntlet's symbolic interpreter (§5.2): it
// converts programmable blocks of a P4 program into logic formulas over the
// smt package. The functional form mirrors the paper's Figure 3 — one
// (possibly nested-ITE) term per output field, with symbolic table keys and
// action indices standing in for unknown control-plane state, and fresh
// "undef" symbols for undefined values.
//
// The interpreter uses guarded state merging rather than per-path
// enumeration inside control blocks: every assignment is guarded by the
// current liveness term, so exit/return and branch joins produce exactly
// the nested if-then-else structure of the paper's example.
package sym

import (
	"fmt"
	"sort"

	"gauntlet/internal/p4/ast"
	"gauntlet/internal/smt"
)

// Value is a symbolic value mirroring eval.Value.
type Value interface {
	symValue()
	// Clone deep-copies the value (terms are immutable and shared).
	Clone() Value
}

// BitVal is a symbolic bit<N>: a bitvector term of width N.
type BitVal struct {
	T *smt.Term
}

// BoolVal is a symbolic bool: a boolean term.
type BoolVal struct {
	T *smt.Term
}

// HeaderVal is a symbolic header: a boolean validity term plus fields.
type HeaderVal struct {
	Type  *ast.HeaderType
	Valid *smt.Term
	F     map[string]Value
}

// StructVal is a symbolic struct.
type StructVal struct {
	Type *ast.StructType
	F    map[string]Value
}

func (*BitVal) symValue()    {}
func (*BoolVal) symValue()   {}
func (*HeaderVal) symValue() {}
func (*StructVal) symValue() {}

// Clone deep-copies the value.
func (v *BitVal) Clone() Value { return &BitVal{T: v.T} }

// Clone deep-copies the value.
func (v *BoolVal) Clone() Value { return &BoolVal{T: v.T} }

// Clone deep-copies the value.
func (v *HeaderVal) Clone() Value {
	f := make(map[string]Value, len(v.F))
	for k, fv := range v.F {
		f[k] = fv.Clone()
	}
	return &HeaderVal{Type: v.Type, Valid: v.Valid, F: f}
}

// Clone deep-copies the value.
func (v *StructVal) Clone() Value {
	f := make(map[string]Value, len(v.F))
	for k, fv := range v.F {
		f[k] = fv.Clone()
	}
	return &StructVal{Type: v.Type, F: f}
}

// Merge builds Ite(cond, a, b) structurally over two values of the same
// shape.
func Merge(cond *smt.Term, a, b Value) Value {
	if cond.IsTrue() {
		return a
	}
	if cond.IsFalse() {
		return b
	}
	if _, isPkt := a.(*packetRef); isPkt {
		return a
	}
	switch av := a.(type) {
	case *BitVal:
		bv := b.(*BitVal)
		return &BitVal{T: smt.Ite(cond, av.T, bv.T)}
	case *BoolVal:
		bv := b.(*BoolVal)
		return &BoolVal{T: smt.Ite(cond, av.T, bv.T)}
	case *HeaderVal:
		bv := b.(*HeaderVal)
		f := make(map[string]Value, len(av.F))
		for k := range av.F {
			f[k] = Merge(cond, av.F[k], bv.F[k])
		}
		return &HeaderVal{Type: av.Type, Valid: smt.Ite(cond, av.Valid, bv.Valid), F: f}
	case *StructVal:
		bv := b.(*StructVal)
		f := make(map[string]Value, len(av.F))
		for k := range av.F {
			f[k] = Merge(cond, av.F[k], bv.F[k])
		}
		return &StructVal{Type: av.Type, F: f}
	default:
		panic(fmt.Sprintf("sym.Merge: unknown value %T", a))
	}
}

// FreshInput builds a symbolic value of type t whose leaves are input
// variables named by dotted path (e.g. "hdr.h.a", "hdr.h.$valid"), in
// the default smt context. Header validity bits are inputs too: the
// paper checks equivalence over all header validity combinations.
func FreshInput(name string, t ast.Type) Value {
	return FreshInputIn(smt.DefaultContext(), name, t)
}

// FreshInputIn is FreshInput with the input variables interned in the
// given smt context.
func FreshInputIn(c *smt.Context, name string, t ast.Type) Value {
	switch t := t.(type) {
	case *ast.BitType:
		return &BitVal{T: c.Var(name, t.Width)}
	case *ast.BoolType:
		return &BoolVal{T: c.BoolVar(name)}
	case *ast.HeaderType:
		h := &HeaderVal{Type: t, Valid: c.BoolVar(name + ".$valid"), F: map[string]Value{}}
		for _, f := range t.Fields {
			h.F[f.Name] = FreshInputIn(c, name+"."+f.Name, f.Type)
		}
		return h
	case *ast.StructType:
		s := &StructVal{Type: t, F: map[string]Value{}}
		for _, f := range t.Fields {
			s.F[f.Name] = FreshInputIn(c, name+"."+f.Name, f.Type)
		}
		return s
	default:
		panic(fmt.Sprintf("sym.FreshInput: cannot build input of type %T", t))
	}
}

// Undef produces the symbols standing for undefined values (uninitialized
// variables, out parameters, fields of freshly validated headers).
//
// This reproduction ascribes its own semantics to undefined behaviour, as
// §4.1 licenses ("we chose to provide our own semantics for undefined
// behavior in P4 as part of the logic formulas"): every undefined read of
// width w yields the same per-width havoc symbol havoc_w. Per-occurrence
// free variables would be strictly more precise, but their numbering
// shifts whenever a pass adds or removes temporaries, producing exactly
// the false alarms §8 describes under "missing simulation relations";
// a per-width constant is stable across translations.
type Undef struct {
	// Ctx is the smt context the havoc symbols are interned in (nil =
	// the default context).
	Ctx *smt.Context

	widths map[int]bool
}

func (u *Undef) ctx() *smt.Context {
	if u.Ctx != nil {
		return u.Ctx
	}
	return smt.DefaultContext()
}

// Fresh returns the undefined symbol of the given width (0 = bool).
func (u *Undef) Fresh(width int) *smt.Term {
	if u.widths == nil {
		u.widths = map[int]bool{}
	}
	u.widths[width] = true
	return u.ctx().Var(fmt.Sprintf("havoc_%d", width), width)
}

// Names returns all havoc symbol names issued so far.
func (u *Undef) Names() []string {
	var out []string
	for w := range u.widths {
		out = append(out, fmt.Sprintf("havoc_%d", w))
	}
	sort.Strings(out)
	return out
}

// NewUndefValue builds a value of type t whose leaves are fresh undef
// symbols; headers start invalid.
func NewUndefValue(t ast.Type, u *Undef) Value {
	switch t := t.(type) {
	case *ast.BitType:
		return &BitVal{T: u.Fresh(t.Width)}
	case *ast.BoolType:
		return &BoolVal{T: u.Fresh(0)}
	case *ast.HeaderType:
		h := &HeaderVal{Type: t, Valid: u.ctx().False(), F: map[string]Value{}}
		for _, f := range t.Fields {
			h.F[f.Name] = NewUndefValue(f.Type, u)
		}
		return h
	case *ast.StructType:
		s := &StructVal{Type: t, F: map[string]Value{}}
		for _, f := range t.Fields {
			s.F[f.Name] = NewUndefValue(f.Type, u)
		}
		return s
	default:
		panic(fmt.Sprintf("sym.NewUndefValue: cannot build value of type %T", t))
	}
}

// Flatten appends (name, term) pairs for every leaf of the value, using
// dotted paths and "$valid" for header validity bits. Iteration order is
// deterministic (declaration order for typed composites).
func Flatten(name string, v Value, out *[]NamedTerm) {
	switch v := v.(type) {
	case *BitVal:
		*out = append(*out, NamedTerm{Name: name, Term: v.T})
	case *BoolVal:
		*out = append(*out, NamedTerm{Name: name, Term: v.T})
	case *HeaderVal:
		*out = append(*out, NamedTerm{Name: name + ".$valid", Term: v.Valid})
		for _, f := range v.Type.Fields {
			Flatten(name+"."+f.Name, v.F[f.Name], out)
		}
	case *StructVal:
		if v.Type != nil {
			for _, f := range v.Type.Fields {
				Flatten(name+"."+f.Name, v.F[f.Name], out)
			}
			return
		}
		keys := make([]string, 0, len(v.F))
		for k := range v.F {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			Flatten(name+"."+k, v.F[k], out)
		}
	default:
		panic(fmt.Sprintf("sym.Flatten: unknown value %T", v))
	}
}

// NamedTerm pairs an output leaf name with its term.
type NamedTerm struct {
	Name string
	Term *smt.Term
}

// EqualValues builds the term "a and b are observably equal": bit and bool
// leaves equal; headers equal when validity bits agree and, if valid, all
// fields agree (invalid headers hide their fields — the deparser drops
// them, §5.2 header-validity semantics).
func EqualValues(a, b Value) *smt.Term {
	switch av := a.(type) {
	case *BitVal:
		return smt.Eq(av.T, b.(*BitVal).T)
	case *BoolVal:
		return smt.Eq(av.T, b.(*BoolVal).T)
	case *HeaderVal:
		bv := b.(*HeaderVal)
		fieldsEq := smt.True
		for _, f := range av.Type.Fields {
			fieldsEq = smt.And(fieldsEq, EqualValues(av.F[f.Name], bv.F[f.Name]))
		}
		return smt.And(
			smt.Eq(av.Valid, bv.Valid),
			smt.Or(smt.Not(av.Valid), fieldsEq),
		)
	case *StructVal:
		bv := b.(*StructVal)
		eq := smt.True
		for k, fv := range av.F {
			eq = smt.And(eq, EqualValues(fv, bv.F[k]))
		}
		return eq
	default:
		panic(fmt.Sprintf("sym.EqualValues: unknown value %T", a))
	}
}

// width returns the leaf width of a bit/bool symbolic value.
func width(v Value) int {
	switch v := v.(type) {
	case *BitVal:
		return v.T.W
	case *BoolVal:
		return 0
	default:
		panic(fmt.Sprintf("sym.width: not a leaf value: %T", v))
	}
}
