package sym

import (
	"fmt"

	"gauntlet/internal/p4/ast"
	"gauntlet/internal/smt"
)

func (in *Interp) evalCall(s *state, call *ast.CallExpr) (Value, error) {
	if m, ok := call.Func.(*ast.MemberExpr); ok {
		return in.evalMethod(s, call, m)
	}
	id, ok := call.Func.(*ast.Ident)
	if !ok {
		return nil, symErrorf("call target is not callable")
	}
	if id.Name == "NoAction" {
		return nil, nil
	}
	var params []ast.Param
	var body *ast.BlockStmt
	var ret ast.Type
	if in.ctrl != nil {
		switch d := in.ctrl.LocalByName(id.Name).(type) {
		case *ast.ActionDecl:
			params, body = d.Params, d.Body
		case *ast.FunctionDecl:
			params, body, ret = d.Params, d.Body, d.Return
		}
	}
	if body == nil {
		switch d := in.prog.DeclByName(id.Name).(type) {
		case *ast.ActionDecl:
			params, body = d.Params, d.Body
		case *ast.FunctionDecl:
			params, body, ret = d.Params, d.Body, d.Return
		default:
			return nil, symErrorf("call to unknown %q", id.Name)
		}
	}
	return in.invoke(s, params, body, ret, call.Args, nil)
}

// invoke performs a call with copy-in/copy-out semantics in symbolic form.
// cpArgs, when non-nil, binds directionless parameters to the given
// symbolic terms (table-entry action arguments).
func (in *Interp) invoke(s *state, params []ast.Param, body *ast.BlockStmt,
	ret ast.Type, args []ast.Expr, cpArgs []*smt.Term) (Value, error) {

	savedLive := s.live
	savedEnv := s.env

	callee := newEnv(calleeRoot(s))
	cpIdx := 0
	for i, p := range params {
		if p.Dir == ast.DirNone && cpArgs != nil {
			callee.declare(p.Name, &BitVal{T: cpArgs[cpIdx]})
			cpIdx++
			continue
		}
		switch p.Dir {
		case ast.DirOut:
			callee.declare(p.Name, NewUndefValue(p.Type, in.undef))
		default:
			v, err := in.evalExpr(s, args[i])
			if err != nil {
				return nil, err
			}
			callee.declare(p.Name, v.Clone())
		}
	}

	// Non-void functions may fall off the end on some paths; the result is
	// then undefined.
	fr := &frame{}
	if ret != nil {
		if _, isVoid := ret.(*ast.VoidType); !isVoid {
			fr.retVal = NewUndefValue(ret, in.undef)
		}
	}
	in.frames = append(in.frames, fr)
	s.env = callee
	err := in.execBlock(s, body)
	in.frames = in.frames[:len(in.frames)-1]
	if err != nil {
		return nil, err
	}

	// The callee body may have merged branch states, which rebuilds the
	// whole environment chain including the shared control scope. The
	// caller's saved chain still points at the pre-merge control scope,
	// so graft the merged one back in before restoring.
	outEnv := s.env
	newRoot := calleeRoot(s)
	if savedEnv.root {
		savedEnv = newRoot
	} else {
		for sc := savedEnv; sc != nil; sc = sc.parent {
			if sc.parent != nil && sc.parent.root {
				sc.parent = newRoot
				break
			}
		}
	}

	// Copy-out under the liveness the call had on entry: returns end only
	// the callee, and exit still copies out (the paper's clarified exit
	// semantics, Fig. 5f / §7.2).
	s.live = savedLive
	exitedAfter := s.exited
	s.env = savedEnv
	for i, p := range params {
		if p.Dir == ast.DirNone || !p.Dir.Writes() {
			continue
		}
		v, _ := outEnv.get(p.Name)
		if err := in.assignLV(s, args[i], v); err != nil {
			return nil, err
		}
	}
	// Paths that exited inside the call are dead from here on.
	s.live = smt.And(savedLive, smt.Not(exitedAfter))
	return fr.retVal, nil
}

func (in *Interp) evalMethod(s *state, call *ast.CallExpr, m *ast.MemberExpr) (Value, error) {
	switch m.Member {
	case "setValid", "setInvalid", "isValid":
		hv, err := in.evalExpr(s, m.X)
		if err != nil {
			return nil, err
		}
		h, ok := hv.(*HeaderVal)
		if !ok {
			return nil, symErrorf("%s on non-header value", m.Member)
		}
		switch m.Member {
		case "setValid":
			// Fields of a freshly validated header take arbitrary unknown
			// values (§5.2).
			becameValid := smt.And(s.live, smt.Not(h.Valid))
			for _, f := range h.Type.Fields {
				old := h.F[f.Name]
				h.F[f.Name] = Merge(becameValid, NewUndefValue(f.Type, in.undef), old)
			}
			h.Valid = smt.Ite(s.live, in.ctx.True(), h.Valid)
			return nil, nil
		case "setInvalid":
			h.Valid = smt.Ite(s.live, in.ctx.False(), h.Valid)
			return nil, nil
		default:
			return &BoolVal{T: h.Valid}, nil
		}
	case "apply":
		id, ok := m.X.(*ast.Ident)
		if !ok {
			return nil, symErrorf("apply on non-table expression")
		}
		return nil, in.applyTable(s, id.Name)
	case "extract":
		return nil, in.extract(s, call)
	case "emit":
		return nil, in.emit(s, call)
	default:
		return nil, symErrorf("unknown method %q", m.Member)
	}
}

// applyTable encodes the Figure 3 semantics: one symbolic key per table
// key expression, one symbolic action selector, and symbolic control-plane
// arguments per action. On a key match the selected action runs; otherwise
// the default action runs.
func (in *Interp) applyTable(s *state, name string) error {
	tbl, ok := in.ctrl.LocalByName(name).(*ast.TableDecl)
	if !ok {
		return symErrorf("apply of unknown table %q", name)
	}
	prefix := in.ctrl.Name + "." + tbl.Name

	// hit := AND_i (key_i == <symbolic key var i>)
	hit := in.ctx.True()
	if len(tbl.Keys) == 0 {
		hit = in.ctx.False() // keyless tables never match entries
	}
	for i, k := range tbl.Keys {
		kv, err := in.evalExpr(s, k.Expr)
		if err != nil {
			return err
		}
		varName := fmt.Sprintf("%s.key_%d", prefix, i)
		in.tableVars = append(in.tableVars, varName)
		switch kv := kv.(type) {
		case *BitVal:
			hit = smt.And(hit, smt.Eq(kv.T, in.ctx.Var(varName, kv.T.W)))
		case *BoolVal:
			hit = smt.And(hit, smt.Eq(kv.T, in.ctx.BoolVar(varName)))
		default:
			return symErrorf("table %s key %d is not a leaf value", name, i)
		}
	}

	actionVar := in.ctx.Var(prefix+".action", 16)
	in.tableVars = append(in.tableVars, prefix+".action")
	in.branchDepth++
	defer func() { in.branchDepth-- }()
	in.noteBranch(hit)

	anyChosen := in.ctx.False()
	for idx, aref := range tbl.Actions {
		chosen := smt.Eq(actionVar, in.ctx.Const(uint64(idx+1), 16))
		anyChosen = smt.Or(anyChosen, chosen)
		eff := smt.And(hit, chosen)
		in.noteBranch(eff)
		branch := s.clone()
		branch.live = smt.And(s.live, eff)
		if err := in.runTableAction(branch, tbl, aref.Name, prefix, true, nil); err != nil {
			return err
		}
		*s = *mergeState(eff, branch, s)
	}

	// Miss (or an unlisted action id): the default action runs.
	deflt := smt.Or(smt.Not(hit), smt.Not(anyChosen))
	if tbl.Default != nil && tbl.Default.Name != "NoAction" {
		branch := s.clone()
		branch.live = smt.And(s.live, deflt)
		if err := in.runTableAction(branch, tbl, tbl.Default.Name, prefix, false, tbl.Default.Args); err != nil {
			return err
		}
		*s = *mergeState(deflt, branch, s)
	}
	return nil
}

// runTableAction invokes a table-bound action. Entry-bound invocations
// (fromEntry) receive fresh symbolic control-plane arguments; the default
// action receives the program-specified argument expressions.
func (in *Interp) runTableAction(s *state, tbl *ast.TableDecl, action, prefix string,
	fromEntry bool, defaultArgs []ast.Expr) error {
	if action == "NoAction" {
		return nil
	}
	ad, ok := in.ctrl.LocalByName(action).(*ast.ActionDecl)
	if !ok {
		if d, ok2 := in.prog.DeclByName(action).(*ast.ActionDecl); ok2 {
			ad = d
		} else {
			return symErrorf("table %s action %q not found", tbl.Name, action)
		}
	}
	var cpArgs []*smt.Term
	if fromEntry {
		for _, p := range ad.Params {
			varName := fmt.Sprintf("%s.%s.arg_%s", prefix, action, p.Name)
			in.tableVars = append(in.tableVars, varName)
			cpArgs = append(cpArgs, in.ctx.Var(varName, ast.BitWidth(p.Type)))
		}
	} else {
		for _, a := range defaultArgs {
			v, err := in.evalExpr(s, a)
			if err != nil {
				return err
			}
			cpArgs = append(cpArgs, v.(*BitVal).T)
		}
	}
	_, err := in.invoke(s, ad.Params, ad.Body, nil, nil, cpArgs)
	return err
}

// extract reads the next header from the symbolic packet; the cursor must
// be concrete, so extracts are rejected inside data-dependent branches.
func (in *Interp) extract(s *state, call *ast.CallExpr) error {
	if in.branchDepth > 0 {
		return symErrorf("extract under a data-dependent branch is not supported")
	}
	if in.pktLen == nil {
		return symErrorf("extract outside a parser")
	}
	hv, err := in.evalExpr(s, call.Args[0])
	if err != nil {
		return err
	}
	h, ok := hv.(*HeaderVal)
	if !ok {
		return symErrorf("extract into non-header value")
	}
	total := 0
	for _, f := range h.Type.Fields {
		total += ast.BitWidth(f.Type)
	}
	// Short-packet check: the remaining length must cover the header.
	need := in.ctx.Const(uint64(in.pktOff+total), 32)
	okCond := smt.Ule(need, in.pktLen)
	in.noteBranch(okCond)
	in.reject = smt.Or(in.reject, smt.And(s.live, smt.Not(okCond)))
	s.live = smt.And(s.live, okCond)

	off := in.pktOff
	for _, f := range h.Type.Fields {
		w := ast.BitWidth(f.Type)
		// MSB-first: packet bit off is the field's MSB.
		t := in.packetBit(off)
		for i := 1; i < w; i++ {
			t = smt.Concat(t, in.packetBit(off+i))
		}
		old := h.F[f.Name]
		h.F[f.Name] = Merge(s.live, &BitVal{T: t}, old)
		off += w
	}
	h.Valid = smt.Ite(s.live, in.ctx.True(), h.Valid)
	in.pktOff = off
	return nil
}

// packetBit returns (allocating if needed) the 1-bit input variable for
// packet bit i.
func (in *Interp) packetBit(i int) *smt.Term {
	for len(in.pktBits) <= i {
		in.pktBits = append(in.pktBits, in.ctx.Var(fmt.Sprintf("pkt_%d", len(in.pktBits)), 1))
	}
	return in.pktBits[i]
}

// emit records a deparser emit: the header's fields leave the device when
// it is valid at emit time.
func (in *Interp) emit(s *state, call *ast.CallExpr) error {
	hv, err := in.evalExpr(s, call.Args[0])
	if err != nil {
		return err
	}
	h, ok := hv.(*HeaderVal)
	if !ok {
		return symErrorf("emit of non-header value")
	}
	rec := EmitRecord{Cond: smt.And(s.live, h.Valid)}
	for _, f := range h.Type.Fields {
		rec.Fields = append(rec.Fields, NamedTerm{
			Name: f.Name,
			Term: h.F[f.Name].(*BitVal).T,
		})
	}
	in.emits = append(in.emits, rec)
	return nil
}
