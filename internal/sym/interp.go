package sym

import (
	"fmt"

	"gauntlet/internal/p4/ast"
	"gauntlet/internal/smt"
)

// Error reports a symbolic interpretation failure. For type-checked
// programs in the supported subset these indicate interpreter limitations
// (e.g. parser loops) rather than program errors — the paper's §5.2
// describes co-evolving the interpreter with the generator precisely to
// drive these out.
type Error struct {
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return "sym: " + e.Msg }

func symErrorf(format string, args ...any) error {
	return &Error{Msg: fmt.Sprintf(format, args...)}
}

// packetRef marks a packet parameter binding in the environment.
type packetRef struct{}

func (*packetRef) symValue()    {}
func (*packetRef) Clone() Value { return &packetRef{} }

// frame tracks one callable invocation (return handling).
type frame struct {
	retVal Value // merged return value (nil for void)
}

// Interp converts programs into symbolic form. Create with NewInterp (or
// NewInterpIn to route all term construction through a specific
// smt.Context — the engine's epoch contexts enter here).
type Interp struct {
	ctx   *smt.Context
	prog  *ast.Program
	undef *Undef

	ctrl *ast.ControlDecl

	frames []*frame

	// branchDepth tracks nesting of guarded execution; packet extracts
	// require branch-free context so the cursor stays concrete.
	branchDepth int

	// Parser/deparser packet model.
	pktBits []*smt.Term // one bit<1> input var per packet bit
	pktLen  *smt.Term   // symbolic packet length in bits
	pktOff  int         // concrete extract cursor (per DFS path)
	reject  *smt.Term   // accumulated parser reject condition
	emits   []EmitRecord

	// branchConds records every data-dependent branching term in
	// execution order; symbolic-execution test generation enumerates
	// paths by toggling their polarities (§6.2).
	branchConds []*smt.Term

	// tableVars names the symbolic table keys, action selectors and
	// action arguments introduced (Fig. 3 encoding).
	tableVars []string
}

// EmitRecord describes one deparser emit: the condition under which the
// header is emitted and its field terms in order.
type EmitRecord struct {
	Cond   *smt.Term
	Fields []NamedTerm
}

// NewInterp creates a symbolic interpreter for a resolved, type-checked
// program, building terms in the default smt context.
func NewInterp(prog *ast.Program) *Interp {
	return NewInterpIn(smt.DefaultContext(), prog)
}

// NewInterpIn creates a symbolic interpreter whose terms — every
// variable, constant and formula of the block forms it produces — live
// in the given smt context, so a rotating service can retire them as one
// generation.
func NewInterpIn(sctx *smt.Context, prog *ast.Program) *Interp {
	return &Interp{ctx: sctx, prog: prog, undef: &Undef{Ctx: sctx}}
}

func (in *Interp) noteBranch(cond *smt.Term) {
	if !cond.IsConst() {
		in.branchConds = append(in.branchConds, cond)
	}
}

// calleeRoot finds the control-scope environment in the state's chain.
func calleeRoot(s *state) *env {
	for sc := s.env; sc != nil; sc = sc.parent {
		if sc.root {
			return sc
		}
	}
	return s.env
}

func (in *Interp) execBlock(s *state, b *ast.BlockStmt) error {
	if b == nil {
		return nil
	}
	s.env = newEnv(s.env)
	defer func() { s.env = s.env.parent }()
	for _, st := range b.Stmts {
		if err := in.execStmt(s, st); err != nil {
			return err
		}
	}
	return nil
}

func (in *Interp) execStmt(s *state, st ast.Stmt) error {
	switch st := st.(type) {
	case *ast.AssignStmt:
		v, err := in.evalExpr(s, st.RHS)
		if err != nil {
			return err
		}
		return in.assignLV(s, st.LHS, v)
	case *ast.VarDeclStmt:
		var v Value
		if st.Init != nil {
			iv, err := in.evalExpr(s, st.Init)
			if err != nil {
				return err
			}
			v = iv.Clone()
		} else {
			v = NewUndefValue(st.Type, in.undef)
		}
		s.env.declare(st.Name, v)
		return nil
	case *ast.ConstDeclStmt:
		v, err := in.evalExpr(s, st.Value)
		if err != nil {
			return err
		}
		s.env.declare(st.Name, v.Clone())
		return nil
	case *ast.IfStmt:
		cv, err := in.evalExpr(s, st.Cond)
		if err != nil {
			return err
		}
		cond := cv.(*BoolVal).T
		in.noteBranch(cond)
		in.branchDepth++
		defer func() { in.branchDepth-- }()

		sThen := s.clone()
		sThen.live = smt.And(s.live, cond)
		if err := in.execBlock(sThen, st.Then); err != nil {
			return err
		}
		sElse := s.clone()
		sElse.live = smt.And(s.live, smt.Not(cond))
		if st.Else != nil {
			if err := in.execStmt(sElse, st.Else); err != nil {
				return err
			}
		}
		*s = *mergeState(cond, sThen, sElse)
		return nil
	case *ast.BlockStmt:
		return in.execBlock(s, st)
	case *ast.CallStmt:
		_, err := in.evalCall(s, st.Call)
		return err
	case *ast.ReturnStmt:
		if len(in.frames) == 0 {
			// Return in a control apply terminates the block.
			s.live = in.ctx.False()
			return nil
		}
		fr := in.frames[len(in.frames)-1]
		if st.Value != nil {
			v, err := in.evalExpr(s, st.Value)
			if err != nil {
				return err
			}
			if fr.retVal == nil {
				fr.retVal = v.Clone()
			} else {
				fr.retVal = Merge(s.live, v, fr.retVal)
			}
		}
		s.live = in.ctx.False()
		return nil
	case *ast.ExitStmt:
		s.exited = smt.Or(s.exited, s.live)
		s.live = in.ctx.False()
		return nil
	case *ast.EmptyStmt:
		return nil
	case *ast.SwitchStmt:
		return in.execSwitch(s, st)
	default:
		return symErrorf("unsupported statement %T", st)
	}
}

func (in *Interp) execSwitch(s *state, st *ast.SwitchStmt) error {
	tv, err := in.evalExpr(s, st.Tag)
	if err != nil {
		return err
	}
	tag := tv.(*BitVal).T
	in.branchDepth++
	defer func() { in.branchDepth-- }()

	noPrior := in.ctx.True()
	var defaultBody *ast.BlockStmt
	for i := range st.Cases {
		c := &st.Cases[i]
		if c.Labels == nil {
			defaultBody = c.Body
			continue
		}
		match := in.ctx.False()
		for _, l := range c.Labels {
			lv, err := in.evalExpr(s, l)
			if err != nil {
				return err
			}
			match = smt.Or(match, smt.Eq(tag, lv.(*BitVal).T))
		}
		eff := smt.And(noPrior, match)
		in.noteBranch(eff)
		branch := s.clone()
		branch.live = smt.And(s.live, eff)
		if err := in.execBlock(branch, c.Body); err != nil {
			return err
		}
		*s = *mergeState(eff, branch, s)
		noPrior = smt.And(noPrior, smt.Not(match))
	}
	if defaultBody != nil {
		in.noteBranch(noPrior)
		branch := s.clone()
		branch.live = smt.And(s.live, noPrior)
		if err := in.execBlock(branch, defaultBody); err != nil {
			return err
		}
		*s = *mergeState(noPrior, branch, s)
	}
	return nil
}

// assignLV stores v at the lvalue, guarded by the state's liveness. The
// value is cloned so later writes through other aliases cannot leak in.
func (in *Interp) assignLV(s *state, lhs ast.Expr, v Value) error {
	v = v.Clone()
	switch l := lhs.(type) {
	case *ast.Ident:
		return s.assignGuarded(l.Name, v)
	case *ast.MemberExpr:
		cont, err := in.evalExpr(s, l.X)
		if err != nil {
			return err
		}
		switch c := cont.(type) {
		case *StructVal:
			old, ok := c.F[l.Member]
			if !ok {
				return symErrorf("struct has no field %q", l.Member)
			}
			c.F[l.Member] = Merge(s.live, v, old)
			return nil
		case *HeaderVal:
			old, ok := c.F[l.Member]
			if !ok {
				return symErrorf("header has no field %q", l.Member)
			}
			c.F[l.Member] = Merge(s.live, v, old)
			return nil
		default:
			return symErrorf("member assignment on non-composite value")
		}
	case *ast.SliceExpr:
		cur, err := in.evalExpr(s, l.X)
		if err != nil {
			return err
		}
		cb, ok := cur.(*BitVal)
		if !ok {
			return symErrorf("slice assignment on non-bit value")
		}
		nv, ok := v.(*BitVal)
		if !ok {
			return symErrorf("slice assignment of non-bit value")
		}
		w := cb.T.W
		var parts *smt.Term
		// Rebuild the base value: high bits ++ new slice ++ low bits.
		parts = smt.Trunc(nv.T, l.Hi-l.Lo+1)
		if l.Hi+1 < w {
			parts = smt.Concat(smt.Extract(cb.T, w-1, l.Hi+1), parts)
		}
		if l.Lo > 0 {
			parts = smt.Concat(parts, smt.Extract(cb.T, l.Lo-1, 0))
		}
		return in.assignLV(s, l.X, &BitVal{T: parts})
	default:
		return symErrorf("assignment to non-lvalue %T", lhs)
	}
}
