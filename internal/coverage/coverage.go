// Package coverage computes the cheap, deterministic coverage signal the
// corpus engine feeds on. Plain grammar fuzzing draws every program fresh
// and learns nothing from one program to the next; a feedback loop needs a
// way to say "this program exercised compiler behaviour the campaign has
// not seen yet" without paying for real instrumentation. Two sources fold
// into one Profile:
//
//   - an AST feature profile of the input program — node kinds, operator
//     and width usage, declaration shapes (tables, actions, parser
//     states), expression-depth buckets — all counts log-bucketed so
//     "about the same amount" collapses to one edge while order-of-
//     magnitude differences stay distinct;
//   - the compiler's pass trace (compiler.Result.Trace): which passes
//     rewrote the program and by how much, plus crash/invalid edges for
//     abnormal terminations.
//
// A Profile is a set of uint64 "edges" (feature hashes). Profiles are
// value-deterministic — the same program and trace always produce the same
// edge set and the same Fingerprint, on any worker, in any order — which
// is what lets corpus admission stay reproducible across worker counts.
package coverage

import (
	"hash/fnv"
	"math/bits"
	"sort"

	"gauntlet/internal/compiler"
	"gauntlet/internal/p4/ast"
)

// Profile is one program's coverage signal: a set of feature edges plus
// the size metrics seed scheduling wants. The zero value is not useful;
// build with OfProgram. A Profile is not safe for concurrent mutation but
// is safe for concurrent reads once fully built.
type Profile struct {
	edges map[uint64]struct{}
	// stmts is the program's statement count (the corpus size metric).
	stmts int
}

// edge hashes a feature path (a kind tag plus qualifiers) to an edge key.
func edge(parts ...string) uint64 {
	h := fnv.New64a()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return h.Sum64()
}

// bucket collapses a count to a coarse log scale: exact for 0–4, then one
// bucket per power of two. Keeps "about as many" identical while keeping
// order-of-magnitude differences apart.
func bucket(n int) int {
	if n <= 4 {
		return n
	}
	return 3 + bits.Len(uint(n))
}

var bucketNames = []string{"0", "1", "2", "3", "4", "5", "6", "7", "8", "9",
	"10", "11", "12", "13", "14", "15", "16", "17", "18", "19", "20"}

func bucketName(n int) string {
	b := bucket(n)
	if b < len(bucketNames) {
		return bucketNames[b]
	}
	return "big"
}

func (p *Profile) add(parts ...string) {
	p.edges[edge(parts...)] = struct{}{}
}

// Len returns the number of distinct edges in the profile.
func (p *Profile) Len() int { return len(p.edges) }

// Stmts returns the program's statement count (the seed-size metric).
func (p *Profile) Stmts() int { return p.stmts }

// Edges returns the profile's edge set, sorted.
func (p *Profile) Edges() []uint64 {
	out := make([]uint64, 0, len(p.edges))
	for e := range p.edges {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Fingerprint folds the sorted edge set into one stable hash: equal edge
// sets (and only those) share a fingerprint, across runs and workers.
func (p *Profile) Fingerprint() uint64 {
	const prime = 1099511628211 // FNV-64 prime
	h := uint64(14695981039346656037)
	for _, e := range p.Edges() {
		h = (h ^ e) * prime
	}
	return h
}

// FromEdges reconstructs a profile from a saved edge set and statement
// count — the checkpoint-restore path. Unlike re-profiling the parsed
// program (which loses pass-trace and crash edges), the restored profile
// is edge-for-edge identical to the one snapshotted, so its Fingerprint
// and its admission behaviour survive a daemon restart exactly.
func FromEdges(edges []uint64, stmts int) *Profile {
	p := &Profile{edges: make(map[uint64]struct{}, len(edges)), stmts: stmts}
	for _, e := range edges {
		p.edges[e] = struct{}{}
	}
	return p
}

// AddTrace folds a compilation's pass trace into the profile: one edge per
// pass that rewrote the program, plus a bucketed size-delta edge so "the
// pass fired and halved the program" is new coverage relative to "the pass
// fired and nudged one statement".
func (p *Profile) AddTrace(trace []compiler.PassEffect) {
	fired := 0
	for _, t := range trace {
		if !t.Rewrote {
			continue
		}
		fired++
		p.add("pass", t.Pass)
		d := t.TextDelta
		sign := "grow"
		if d < 0 {
			d, sign = -d, "shrink"
		}
		p.add("pass-delta", t.Pass, sign, bucketName(d))
	}
	p.add("passes-fired", bucketName(fired))
}

// AddPassCrash records an abnormal pass termination as coverage: a program
// that crashes a pass the corpus has not crashed before is interesting
// even though it never produced a pass trace.
func (p *Profile) AddPassCrash(pass string) { p.add("pass-crash", pass) }

// AddPassInvalid records an invalid transformation (the pass emitted an
// unparsable or ill-typed program) as coverage.
func (p *Profile) AddPassInvalid(pass string) { p.add("pass-invalid", pass) }

// OfProgram computes the AST feature profile of a program: declaration
// shape, statement and expression kind counts, operator and width usage,
// expression-depth buckets, table and parser structure.
func OfProgram(prog *ast.Program) *Profile {
	p := &Profile{edges: make(map[uint64]struct{}, 64)}
	if prog == nil {
		return p
	}

	declCounts := map[string]int{}
	stmtCounts := map[string]int{}
	exprCounts := map[string]int{}
	maxDepth := 0

	countExpr := func(e ast.Expr) {
		if e == nil {
			return
		}
		if d := exprDepth(e); d > maxDepth {
			maxDepth = d
		}
		ast.Inspect(e, func(x ast.Expr) bool {
			switch x := x.(type) {
			case *ast.Ident:
				exprCounts["ident"]++
			case *ast.IntLit:
				exprCounts["int"]++
				p.add("width", bucketName(x.Width))
			case *ast.BoolLit:
				exprCounts["bool"]++
			case *ast.UnaryExpr:
				exprCounts["unary:"+x.Op.String()]++
			case *ast.BinaryExpr:
				exprCounts["binary:"+x.Op.String()]++
			case *ast.MuxExpr:
				exprCounts["mux"]++
			case *ast.CastExpr:
				exprCounts["cast"]++
				if bt, ok := x.To.(*ast.BitType); ok {
					p.add("cast-width", bucketName(bt.Width))
				}
			case *ast.MemberExpr:
				exprCounts["member"]++
			case *ast.SliceExpr:
				exprCounts["slice"]++
				p.add("slice-width", bucketName(x.Hi-x.Lo+1))
			case *ast.CallExpr:
				exprCounts["call"]++
			}
			return true
		})
	}
	countStmts := func(body ast.Stmt) {
		ast.InspectStmt(body, func(s ast.Stmt) bool {
			p.stmts++
			switch s := s.(type) {
			case *ast.AssignStmt:
				stmtCounts["assign"]++
				if _, ok := s.LHS.(*ast.SliceExpr); ok {
					stmtCounts["assign-slice"]++
				}
				countExpr(s.RHS)
			case *ast.VarDeclStmt:
				stmtCounts["vardecl"]++
				if s.Init == nil {
					stmtCounts["vardecl-undef"]++
				}
				countExpr(s.Init)
			case *ast.ConstDeclStmt:
				stmtCounts["constdecl"]++
				countExpr(s.Value)
			case *ast.IfStmt:
				stmtCounts["if"]++
				if s.Else != nil {
					stmtCounts["if-else"]++
				}
				countExpr(s.Cond)
			case *ast.BlockStmt:
				p.stmts-- // containers, not statements
			case *ast.CallStmt:
				stmtCounts["call"]++
				if m, ok := s.Call.Func.(*ast.MemberExpr); ok {
					switch m.Member {
					case "apply":
						stmtCounts["table-apply"]++
					case "setValid", "setInvalid":
						stmtCounts["validity"]++
					}
				}
				countExpr(s.Call)
			case *ast.ReturnStmt:
				stmtCounts["return"]++
				countExpr(s.Value)
			case *ast.ExitStmt:
				stmtCounts["exit"]++
			case *ast.SwitchStmt:
				stmtCounts["switch"]++
				p.add("switch-cases", bucketName(len(s.Cases)))
				countExpr(s.Tag)
			case *ast.EmptyStmt:
				p.stmts--
			}
			return true
		}, nil)
	}

	for _, d := range prog.Decls {
		switch d := d.(type) {
		case *ast.HeaderDecl:
			declCounts["header"]++
			p.add("header-fields", bucketName(len(d.Fields)))
			for _, f := range d.Fields {
				if bt, ok := f.Type.(*ast.BitType); ok {
					p.add("field-width", bucketName(bt.Width))
				}
			}
		case *ast.StructDecl:
			declCounts["struct"]++
		case *ast.ControlDecl:
			declCounts["control"]++
			for _, l := range d.Locals {
				switch l := l.(type) {
				case *ast.ActionDecl:
					declCounts["action"]++
					p.add("action-params", bucketName(len(l.Params)))
					countStmts(l.Body)
				case *ast.FunctionDecl:
					declCounts["function"]++
					countStmts(l.Body)
				case *ast.TableDecl:
					declCounts["table"]++
					p.add("table-keys", bucketName(len(l.Keys)))
					p.add("table-actions", bucketName(len(l.Actions)))
				case *ast.VarDecl:
					declCounts["control-var"]++
					countExpr(l.Init)
				}
			}
			countStmts(d.Apply)
		case *ast.ParserDecl:
			declCounts["parser"]++
			p.add("parser-states", bucketName(len(d.States)))
			for i := range d.States {
				st := &d.States[i]
				for _, s := range st.Stmts {
					p.stmts++
					if cs, ok := s.(*ast.CallStmt); ok {
						countExpr(cs.Call)
					}
				}
				switch tr := st.Trans.(type) {
				case *ast.TransSelect:
					p.add("parser-select", bucketName(len(tr.Cases)))
					countExpr(tr.Expr)
				}
			}
		case *ast.FunctionDecl:
			declCounts["function"]++
			countStmts(d.Body)
		case *ast.ActionDecl:
			declCounts["action"]++
			countStmts(d.Body)
		}
	}

	for k, n := range declCounts {
		p.add("decl", k, bucketName(n))
	}
	for k, n := range stmtCounts {
		p.add("stmt", k, bucketName(n))
	}
	for k, n := range exprCounts {
		p.add("expr", k, bucketName(n))
	}
	p.add("expr-depth", bucketName(maxDepth))
	p.add("size", bucketName(p.stmts))
	return p
}

// exprDepth returns the height of an expression tree.
func exprDepth(e ast.Expr) int {
	max := func(a, b int) int {
		if a > b {
			return a
		}
		return b
	}
	switch e := e.(type) {
	case nil:
		return 0
	case *ast.Ident, *ast.IntLit, *ast.BoolLit:
		return 1
	case *ast.UnaryExpr:
		return 1 + exprDepth(e.X)
	case *ast.BinaryExpr:
		return 1 + max(exprDepth(e.X), exprDepth(e.Y))
	case *ast.MuxExpr:
		return 1 + max(exprDepth(e.Cond), max(exprDepth(e.Then), exprDepth(e.Else)))
	case *ast.CastExpr:
		return 1 + exprDepth(e.X)
	case *ast.MemberExpr:
		return 1 + exprDepth(e.X)
	case *ast.SliceExpr:
		return 1 + exprDepth(e.X)
	case *ast.CallExpr:
		d := exprDepth(e.Func)
		for _, a := range e.Args {
			d = max(d, exprDepth(a))
		}
		return 1 + d
	default:
		return 1
	}
}
