package coverage_test

import (
	"testing"

	"gauntlet/internal/compiler"
	"gauntlet/internal/coverage"
	"gauntlet/internal/generator"
	"gauntlet/internal/p4/ast"
)

// TestProfileDeterminism: the same program must always produce the same
// edge set and fingerprint — including across structurally equal clones,
// which is what admission determinism across workers rests on.
func TestProfileDeterminism(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		prog := generator.Generate(generator.DefaultConfig(seed))
		a := coverage.OfProgram(prog)
		b := coverage.OfProgram(ast.CloneProgram(prog))
		if a.Fingerprint() != b.Fingerprint() {
			t.Fatalf("seed %d: clone fingerprint differs: %016x vs %016x",
				seed, a.Fingerprint(), b.Fingerprint())
		}
		if a.Len() == 0 {
			t.Fatalf("seed %d: empty profile", seed)
		}
		if a.Len() != b.Len() {
			t.Fatalf("seed %d: clone edge count differs: %d vs %d", seed, a.Len(), b.Len())
		}
		if a.Stmts() == 0 {
			t.Fatalf("seed %d: zero statement count", seed)
		}
	}
}

// TestProfileSensitivity: different generated programs should mostly have
// different fingerprints — the signal must be able to tell programs apart,
// not collapse everything into one bucket.
func TestProfileSensitivity(t *testing.T) {
	const n = 50
	fps := map[uint64]bool{}
	for seed := int64(0); seed < n; seed++ {
		prog := generator.Generate(generator.DefaultConfig(seed))
		fps[coverage.OfProgram(prog).Fingerprint()] = true
	}
	if len(fps) < n*3/4 {
		t.Errorf("only %d distinct fingerprints over %d generated programs", len(fps), n)
	}
}

// TestAddTrace: a compilation's pass trace must contribute edges — a
// program that makes a pass fire is new coverage relative to the same AST
// shape sailing through untouched.
func TestAddTrace(t *testing.T) {
	prog := generator.Generate(generator.DefaultConfig(3))
	res, err := compiler.New(compiler.DefaultPasses()...).Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) != len(compiler.DefaultPasses()) {
		t.Fatalf("trace has %d entries, want one per pass (%d)",
			len(res.Trace), len(compiler.DefaultPasses()))
	}
	rewrote := 0
	for _, te := range res.Trace {
		if te.Rewrote {
			rewrote++
		}
	}
	if rewrote == 0 {
		t.Fatal("no pass rewrote a generated program — trace signal is dead")
	}

	base := coverage.OfProgram(prog)
	traced := coverage.OfProgram(prog)
	traced.AddTrace(res.Trace)
	if traced.Len() <= base.Len() {
		t.Errorf("trace added no edges: %d -> %d", base.Len(), traced.Len())
	}
	if traced.Fingerprint() == base.Fingerprint() {
		t.Error("trace did not change the fingerprint")
	}

	// Trace folding is itself deterministic.
	again := coverage.OfProgram(prog)
	again.AddTrace(res.Trace)
	if again.Fingerprint() != traced.Fingerprint() {
		t.Error("trace folding is not deterministic")
	}
}

// TestCrashAndInvalidEdges: abnormal terminations are their own coverage.
func TestCrashAndInvalidEdges(t *testing.T) {
	prog := generator.Generate(generator.DefaultConfig(1))
	a := coverage.OfProgram(prog)
	b := coverage.OfProgram(prog)
	b.AddPassCrash("TypeChecking")
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("crash edge did not change the fingerprint")
	}
	c := coverage.OfProgram(prog)
	c.AddPassInvalid("TypeChecking")
	if c.Fingerprint() == b.Fingerprint() {
		t.Error("crash and invalid edges collide")
	}
}

// TestEdgesSorted: Edges must come back sorted and duplicate-free (the
// fingerprint fold depends on it).
func TestEdgesSorted(t *testing.T) {
	prog := generator.Generate(generator.DefaultConfig(5))
	edges := coverage.OfProgram(prog).Edges()
	for i := 1; i < len(edges); i++ {
		if edges[i-1] >= edges[i] {
			t.Fatalf("edges not strictly sorted at %d: %016x >= %016x", i, edges[i-1], edges[i])
		}
	}
}
