// Package bitstream provides bit-granular readers and writers over byte
// buffers. The target simulators use it to extract header fields from
// incoming packets (parser) and serialize headers back to bytes (deparser),
// with arbitrary bit alignment, most-significant bit first — the network
// order P4 targets use.
package bitstream

import "fmt"

// Reader reads bit fields from a byte buffer, MSB first.
type Reader struct {
	data []byte
	pos  int // bit cursor
}

// NewReader creates a reader over data.
func NewReader(data []byte) *Reader { return &Reader{data: data} }

// Remaining returns the number of unread bits.
func (r *Reader) Remaining() int { return len(r.data)*8 - r.pos }

// Pos returns the current bit cursor.
func (r *Reader) Pos() int { return r.pos }

// ReadBits reads n bits (0 < n <= 64) and returns them right-aligned.
// It reports an error if fewer than n bits remain (the "packet too short"
// condition, which parsers treat as a transition to reject).
func (r *Reader) ReadBits(n int) (uint64, error) {
	if n <= 0 || n > 64 {
		return 0, fmt.Errorf("bitstream: read width %d out of range [1,64]", n)
	}
	if r.Remaining() < n {
		return 0, fmt.Errorf("bitstream: short read: need %d bits, have %d", n, r.Remaining())
	}
	var v uint64
	for i := 0; i < n; i++ {
		byteIdx := r.pos >> 3
		bitIdx := 7 - (r.pos & 7)
		bit := (r.data[byteIdx] >> uint(bitIdx)) & 1
		v = v<<1 | uint64(bit)
		r.pos++
	}
	return v, nil
}

// Writer appends bit fields to a growing byte buffer, MSB first.
type Writer struct {
	data []byte
	pos  int // bit cursor
}

// NewWriter creates an empty writer.
func NewWriter() *Writer { return &Writer{} }

// Len returns the number of bits written.
func (w *Writer) Len() int { return w.pos }

// WriteBits appends the low n bits of v (0 < n <= 64), MSB first.
func (w *Writer) WriteBits(v uint64, n int) error {
	if n <= 0 || n > 64 {
		return fmt.Errorf("bitstream: write width %d out of range [1,64]", n)
	}
	for i := n - 1; i >= 0; i-- {
		if w.pos&7 == 0 {
			w.data = append(w.data, 0)
		}
		bit := byte(v>>uint(i)) & 1
		byteIdx := w.pos >> 3
		bitIdx := 7 - (w.pos & 7)
		w.data[byteIdx] |= bit << uint(bitIdx)
		w.pos++
	}
	return nil
}

// Bytes returns the written bytes. The final partial byte, if any, is
// zero-padded on the right (standard deparser behaviour).
func (w *Writer) Bytes() []byte {
	out := make([]byte, len(w.data))
	copy(out, w.data)
	return out
}
