package bitstream_test

import (
	"testing"
	"testing/quick"

	"gauntlet/internal/bitstream"
)

func TestReadWriteBasics(t *testing.T) {
	w := bitstream.NewWriter()
	if err := w.WriteBits(0b101, 3); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteBits(0xAB, 8); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteBits(0x3FF, 13); err != nil {
		t.Fatal(err)
	}
	if w.Len() != 24 {
		t.Fatalf("Len = %d, want 24", w.Len())
	}
	r := bitstream.NewReader(w.Bytes())
	for _, tc := range []struct {
		n    int
		want uint64
	}{{3, 0b101}, {8, 0xAB}, {13, 0x3FF}} {
		got, err := r.ReadBits(tc.n)
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Errorf("ReadBits(%d) = %#x, want %#x", tc.n, got, tc.want)
		}
	}
	if r.Remaining() != 0 {
		t.Errorf("Remaining = %d, want 0", r.Remaining())
	}
}

func TestMSBFirstLayout(t *testing.T) {
	// A single 16-bit field 0x0800 must serialize as bytes 08 00 —
	// network order.
	w := bitstream.NewWriter()
	_ = w.WriteBits(0x0800, 16)
	got := w.Bytes()
	if len(got) != 2 || got[0] != 0x08 || got[1] != 0x00 {
		t.Fatalf("bytes = %x, want 0800", got)
	}
}

func TestShortRead(t *testing.T) {
	r := bitstream.NewReader([]byte{0xFF})
	if _, err := r.ReadBits(9); err == nil {
		t.Fatal("reading 9 bits from 1 byte must fail")
	}
	if _, err := r.ReadBits(8); err != nil {
		t.Fatalf("8-bit read should still work: %v", err)
	}
	if _, err := r.ReadBits(1); err == nil {
		t.Fatal("reading past the end must fail")
	}
}

func TestWidthValidation(t *testing.T) {
	w := bitstream.NewWriter()
	if err := w.WriteBits(0, 0); err == nil {
		t.Error("width 0 write accepted")
	}
	if err := w.WriteBits(0, 65); err == nil {
		t.Error("width 65 write accepted")
	}
	r := bitstream.NewReader([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9})
	if _, err := r.ReadBits(0); err == nil {
		t.Error("width 0 read accepted")
	}
	if _, err := r.ReadBits(65); err == nil {
		t.Error("width 65 read accepted")
	}
}

// TestRoundTripProperty: writing any sequence of (value, width) fields and
// reading them back yields the masked originals.
func TestRoundTripProperty(t *testing.T) {
	f := func(vals []uint64, widths []uint8) bool {
		w := bitstream.NewWriter()
		n := len(vals)
		if len(widths) < n {
			n = len(widths)
		}
		var want []uint64
		var ws []int
		for i := 0; i < n; i++ {
			width := int(widths[i])%64 + 1
			if err := w.WriteBits(vals[i], width); err != nil {
				return false
			}
			mask := ^uint64(0)
			if width < 64 {
				mask = (1 << uint(width)) - 1
			}
			want = append(want, vals[i]&mask)
			ws = append(ws, width)
		}
		r := bitstream.NewReader(w.Bytes())
		for i := 0; i < n; i++ {
			got, err := r.ReadBits(ws[i])
			if err != nil || got != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBytesPadding(t *testing.T) {
	w := bitstream.NewWriter()
	_ = w.WriteBits(0b1, 1)
	got := w.Bytes()
	if len(got) != 1 || got[0] != 0x80 {
		t.Fatalf("1-bit write = %x, want 80 (MSB-aligned, zero-padded)", got)
	}
}
