package persist

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"gauntlet/internal/core"
)

func TestJournalAppendReplay(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{11, 22, 33}
	for _, fp := range want {
		if err := st.AppendFinding(core.Finding{Fingerprint: fp, Detail: "d"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	got, n, err := st2.KnownFindings()
	if err != nil {
		t.Fatal(err)
	}
	if n != len(want) {
		t.Fatalf("replayed %d records, want %d", n, len(want))
	}
	for i, fp := range want {
		if got[i] != fp {
			t.Fatalf("fingerprint %d = %d, want %d", i, got[i], fp)
		}
	}
}

// A crash mid-Append can only tear the final line; replay must deliver
// every intact record and silently drop the torn tail.
func TestJournalTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(map[string]int{"a": 1}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(map[string]int{"a": 2}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Torn write: half a record, no newline.
	if _, err := f.WriteString(`{"a": 3, "tr`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	n, err := Replay(path, func([]byte) error { return nil })
	if err != nil {
		t.Fatalf("torn tail must be tolerated, got %v", err)
	}
	if n != 2 {
		t.Fatalf("replayed %d records, want 2", n)
	}
}

// Interior corruption — a malformed line with intact records after it —
// is not a crash signature and must fail loudly.
func TestJournalInteriorCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.jsonl")
	content := "{\"a\":1}\nnot json at all\n{\"a\":2}\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(path, func([]byte) error { return nil }); err == nil {
		t.Fatal("interior corruption must be an error")
	}
}

func TestReplayMissingFile(t *testing.T) {
	n, err := Replay(filepath.Join(t.TempDir(), "nope.jsonl"), func([]byte) error { return nil })
	if err != nil || n != 0 {
		t.Fatalf("missing journal = (%d, %v), want (0, nil)", n, err)
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if cp, err := st.LoadCheckpoint(); err != nil || cp != nil {
		t.Fatalf("fresh dir checkpoint = (%v, %v), want (nil, nil)", cp, err)
	}
	in := &Checkpoint{
		NextSlot: 96, Seed: 42, MutateRatio: 0.5,
		Totals: Totals{Programs: 96, Findings: 3, Quarantined: 2},
		Epoch:  1,
	}
	if err := st.SaveCheckpoint(in); err != nil {
		t.Fatal(err)
	}
	// Overwrite (the atomic-replace path), then read back the newer one.
	in.NextSlot = 128
	in.Totals.Programs = 128
	if err := st.SaveCheckpoint(in); err != nil {
		t.Fatal(err)
	}
	out, err := st.LoadCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(in)
	b, _ := json.Marshal(out)
	if string(a) != string(b) {
		t.Fatalf("checkpoint round-trip mismatch:\n%s\n%s", a, b)
	}
	// No temp litter from the atomic ritual.
	matches, _ := filepath.Glob(filepath.Join(dir, "checkpoint.json.tmp*"))
	if len(matches) != 0 {
		t.Fatalf("temp files left behind: %v", matches)
	}
}

func TestWriteQuarantine(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	rec := core.QuarantineRecord{
		Stage: "oracle", Seed: 7, Kind: "panic",
		Symptom: "boom", Source: "// prog\n",
	}
	if err := st.WriteQuarantine(rec); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "quarantine", "oracle_7_panic.json"))
	if err != nil {
		t.Fatal(err)
	}
	var back core.QuarantineRecord
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != rec {
		t.Fatalf("quarantine round-trip mismatch: %+v != %+v", back, rec)
	}
	if _, err := os.Stat(filepath.Join(dir, "quarantine", "oracle_7_panic.p4")); err != nil {
		t.Fatalf("witness source not written: %v", err)
	}
}

// TestJournalProvenanceCompat: the provenance field is additive. New
// records round-trip the full trace; journal lines written before the
// provenance schema existed (no "provenance" key) replay with a nil
// Provenance instead of erroring — a resumed daemon must re-read its
// own history regardless of which version wrote it.
func TestJournalProvenanceCompat(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rich := core.Finding{
		Seed: 42, Detail: "d", Fingerprint: 777,
		Provenance: &core.Provenance{
			Slot: 42, Round: 1, Origin: "mutate",
			Mutations:  []string{"swap-tables"},
			GenerateNs: 100, CompileNs: 200, OracleNs: 300,
			QueryTiers: map[string]uint64{"cdcl": 2, "simplified": 5},
		},
	}
	if err := st.AppendFinding(rich); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// A legacy record, appended raw: exactly what a pre-provenance build
	// wrote.
	legacy := `{"kind":"crash","seed":9,"backend":"v1model","pass":"LegacyPass","detail":"legacy","fingerprint":424242}`
	f, err := os.OpenFile(filepath.Join(dir, "journal.jsonl"), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(legacy + "\n"); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	fps, n, err := st2.KnownFindings()
	if err != nil {
		t.Fatalf("replay over mixed-version journal: %v", err)
	}
	if n != 2 || len(fps) != 2 || fps[0] != 777 || fps[1] != 424242 {
		t.Fatalf("replayed %d records %v, want [777 424242]", n, fps)
	}
	var got []core.Finding
	if _, err := Replay(filepath.Join(dir, "journal.jsonl"), func(line []byte) error {
		var f core.Finding
		if err := json.Unmarshal(line, &f); err != nil {
			return err
		}
		got = append(got, f)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got[1].Provenance != nil {
		t.Errorf("legacy record grew a provenance: %+v", got[1].Provenance)
	}
	p := got[0].Provenance
	if p == nil {
		t.Fatal("new record lost its provenance")
	}
	if p.Slot != 42 || p.Origin != "mutate" || len(p.Mutations) != 1 ||
		p.GenerateNs != 100 || p.CompileNs != 200 || p.OracleNs != 300 ||
		p.QueryTiers["cdcl"] != 2 || p.QueryTiers["simplified"] != 5 {
		t.Errorf("provenance round-trip mismatch: %+v", p)
	}
}
