// Package persist is the serve daemon's durability layer: an append-only
// JSONL findings journal plus atomic checkpoints of the corpus, the dedup
// fingerprint sets and the cumulative stats. The split follows the
// write-ahead discipline: findings are journaled (and fsynced) the moment
// they are reported, so the journal is the source of truth for what has
// been reported; checkpoints are periodic consistent snapshots taken at
// the engine's fold boundaries, so a resumed daemon restarts from the
// watermark and reprocesses at most one checkpoint interval — with the
// journal's fingerprints pre-seeding dedup so nothing is reported twice.
package persist

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// Journal is an append-only JSONL file, one fsynced record per line. A
// record is written with a single Write call ending in '\n', so a crash
// can truncate only the final line; replay tolerates exactly that.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	path string
}

// OpenJournal opens (creating if needed) the journal at path for
// appending.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	return &Journal{f: f, path: path}, nil
}

// Append marshals v, writes it as one line and fsyncs before returning:
// once Append returns, the record survives kill -9. Safe for concurrent
// use.
func (j *Journal) Append(v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(b); err != nil {
		return err
	}
	return j.f.Sync()
}

// Close closes the underlying file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// Replay streams every intact record of the journal at path into fn and
// returns how many were delivered. It is truncation-tolerant in exactly
// the way Append can fail: a final line without a terminating newline, or
// one that no longer parses as JSON, is a record that died mid-write and
// is skipped silently. A malformed line in the *interior* of the file is
// real corruption and is an error — resuming past silently dropped
// findings would re-report them. A missing file replays zero records.
func Replay(path string, fn func(line []byte) error) (int, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	n := 0
	var pendingErr error
	for sc.Scan() {
		line := sc.Bytes()
		if pendingErr != nil {
			// The malformed line had intact records after it: interior
			// corruption, not a mid-write crash.
			return n, pendingErr
		}
		if len(line) == 0 {
			continue
		}
		if !json.Valid(line) {
			pendingErr = fmt.Errorf("persist: malformed journal record after %d records in %s", n, path)
			continue
		}
		cp := append([]byte(nil), line...)
		if err := fn(cp); err != nil {
			return n, err
		}
		n++
	}
	if err := sc.Err(); err != nil {
		return n, err
	}
	// A trailing malformed line is the torn final write: tolerated.
	return n, nil
}
