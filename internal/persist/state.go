package persist

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"gauntlet/internal/core"
)

// State manages one serve campaign's durable directory:
//
//	DIR/journal.jsonl    append-only findings journal (source of truth)
//	DIR/checkpoint.json  latest atomic checkpoint (corpus + watermark)
//	DIR/quarantine/      one JSON record + one .p4 witness per contained fault
//
// Open both creates a fresh directory and reopens an existing one; the
// caller decides whether to resume from what it finds.
type State struct {
	Dir     string
	Journal *Journal
}

// Open creates (or reopens) the campaign directory and its journal.
func Open(dir string) (*State, error) {
	if err := os.MkdirAll(filepath.Join(dir, "quarantine"), 0o755); err != nil {
		return nil, err
	}
	j, err := OpenJournal(filepath.Join(dir, "journal.jsonl"))
	if err != nil {
		return nil, err
	}
	return &State{Dir: dir, Journal: j}, nil
}

// Close releases the journal.
func (s *State) Close() error { return s.Journal.Close() }

// checkpointPath is the single checkpoint file (atomically replaced).
func (s *State) checkpointPath() string { return filepath.Join(s.Dir, "checkpoint.json") }

// AppendFinding journals one finding durably before returning. The
// engine's OnFinding callback runs on the reporting goroutine, so by the
// time a finding is visible anywhere else it is already on disk — the
// invariant resume's no-duplicates guarantee needs.
func (s *State) AppendFinding(f core.Finding) error {
	return s.Journal.Append(f)
}

// KnownFindings replays the journal and returns every reported finding
// fingerprint (the engine's dedup pre-seed) plus the record count.
func (s *State) KnownFindings() ([]uint64, int, error) {
	var fps []uint64
	n, err := Replay(filepath.Join(s.Dir, "journal.jsonl"), func(line []byte) error {
		var f core.Finding
		if err := json.Unmarshal(line, &f); err != nil {
			return err
		}
		fps = append(fps, f.Fingerprint)
		return nil
	})
	if err != nil {
		return nil, n, err
	}
	return fps, n, nil
}

// SaveCheckpoint atomically replaces the checkpoint.
func (s *State) SaveCheckpoint(cp *Checkpoint) error {
	return WriteCheckpoint(s.checkpointPath(), cp)
}

// LoadCheckpoint reads the current checkpoint; (nil, nil) when the
// campaign has not checkpointed yet (resume then starts from scratch,
// guided only by the journal's fingerprints).
func (s *State) LoadCheckpoint() (*Checkpoint, error) {
	return LoadCheckpoint(s.checkpointPath())
}

// WriteQuarantine preserves one contained fault: the record as JSON and,
// when the program printed, the witness source as a sibling .p4 file.
// Quarantined inputs are findings-adjacent artifacts for offline triage —
// names are stage_seed_kind so a chaos soak can account for every
// injected fault by listing the directory. Quarantine writes are not
// fsynced: losing one to a crash costs an artifact, not correctness.
func (s *State) WriteQuarantine(rec core.QuarantineRecord) error {
	base := filepath.Join(s.Dir, "quarantine",
		fmt.Sprintf("%s_%d_%s", rec.Stage, rec.Seed, rec.Kind))
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(base+".json", data, 0o644); err != nil {
		return err
	}
	if rec.Source != "" {
		return os.WriteFile(base+".p4", []byte(rec.Source), 0o644)
	}
	return nil
}
