package persist

import (
	"encoding/json"
	"os"
	"path/filepath"

	"gauntlet/internal/corpus"
)

// Checkpoint is the serve daemon's periodic consistent snapshot, taken at
// an engine fold boundary: every slot below NextSlot is fully folded into
// the corpus, no slot at or above it is. Resume restarts scheduling at
// NextSlot — programs the dead daemon had in flight past the watermark
// are reprocessed (at-least-once), with the journal's fingerprints
// suppressing re-reports.
type Checkpoint struct {
	// NextSlot is the resume watermark (the next engine StartSeed).
	NextSlot int64 `json:"next_slot"`
	// Seed is the master schedule seed the campaign runs under; resume
	// refuses a mismatch (the corpus and watermark are functions of it).
	Seed int64 `json:"seed"`
	// MutateRatio sanity-checks the schedule the same way Seed does.
	MutateRatio float64 `json:"mutate_ratio"`
	// Corpus is the complete feedback state (seeds, edge set, observed
	// fingerprints, energies).
	Corpus *corpus.Snapshot `json:"corpus"`
	// Totals are the cross-incarnation cumulative counters.
	Totals Totals `json:"totals"`
	// Epoch is the engine epoch index at snapshot time (informational).
	Epoch int `json:"epoch"`
}

// Totals are the campaign counters that accumulate across daemon
// incarnations: a resumed run keeps reporting lifetime numbers, not
// since-restart ones.
type Totals struct {
	Programs        uint64 `json:"programs"`
	Findings        uint64 `json:"findings"`
	Duplicates      uint64 `json:"duplicates"`
	ToolErrors      uint64 `json:"tool_errors"`
	Quarantined     uint64 `json:"quarantined"`
	Timeouts        uint64 `json:"timeouts"`
	UnknownVerdicts uint64 `json:"unknown_verdicts"`
	Epochs          int    `json:"epochs"`
}

// Add accumulates o into t, field by field.
func (t *Totals) Add(o Totals) {
	t.Programs += o.Programs
	t.Findings += o.Findings
	t.Duplicates += o.Duplicates
	t.ToolErrors += o.ToolErrors
	t.Quarantined += o.Quarantined
	t.Timeouts += o.Timeouts
	t.UnknownVerdicts += o.UnknownVerdicts
	t.Epochs += o.Epochs
}

// WriteFileAtomic writes data to path with the crash-safe ritual: write
// to a temp file in the same directory, fsync it, rename over path, fsync
// the directory. A reader (including a resuming daemon) sees either the
// old complete file or the new complete file, never a torn one — rename
// is atomic within a filesystem, which is why the temp file must share
// the target's directory.
func WriteFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	cleanup := func() {
		tmp.Close()
		os.Remove(tmpName)
	}
	if _, err := tmp.Write(data); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	// fsync the directory so the rename itself survives a power cut.
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// WriteCheckpoint atomically serializes cp to path.
func WriteCheckpoint(path string, cp *Checkpoint) error {
	data, err := json.Marshal(cp)
	if err != nil {
		return err
	}
	return WriteFileAtomic(path, data)
}

// LoadCheckpoint reads a checkpoint; (nil, nil) when none exists yet.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var cp Checkpoint
	if err := json.Unmarshal(data, &cp); err != nil {
		return nil, err
	}
	return &cp, nil
}
