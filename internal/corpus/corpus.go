// Package corpus implements the coverage-keyed seed corpus behind the
// engine's feedback loop: programs are admitted only when their coverage
// profile contributes at least one edge the corpus has not seen, admitted
// seeds carry an energy that biases mutation scheduling toward small,
// coverage-rich programs, and eviction is size-biased so the corpus
// converges on compact seeds instead of accreting the largest witnesses.
//
// The corpus follows the repository's isolate-first-then-share
// discipline: it is one of the few cross-worker shared objects, so every
// method is safe for concurrent use, and all tie-breaking is by stable
// keys (seed ID, size, energy) — never by map order or arrival time — so
// a fold applied in a canonical order produces an identical corpus on any
// worker count.
package corpus

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"gauntlet/internal/coverage"
	"gauntlet/internal/p4/ast"
	"gauntlet/internal/p4/parser"
	"gauntlet/internal/p4/printer"
	"gauntlet/internal/p4/types"
)

// Seed is one admitted corpus entry. The Program is immutable once
// admitted — mutators clone before perturbing — so concurrent readers
// (scheduler, mutation workers) need no further synchronization.
type Seed struct {
	// ID is the admission sequence number (stable tie-break key).
	ID int
	// Program is the admitted program.
	Program *ast.Program
	// Profile is the coverage profile the seed was admitted with.
	Profile *coverage.Profile
	// NewEdges is how many edges were new at admission time.
	NewEdges int
	// Size is the statement count (the eviction bias).
	Size int
	// Energy is the scheduling weight: more new coverage and smaller size
	// mean the seed is drawn more often as a mutation base. It starts at
	// BaseEnergy and grows through BumpEnergy when the seed's mutants
	// keep earning admissions or findings (AFL-style dynamic energy),
	// bounded by maxEnergyMultiple so one hot seed cannot monopolize
	// scheduling.
	Energy float64
	// BaseEnergy is the admission-time energy (the bump unit and cap
	// base).
	BaseEnergy float64
}

// maxEnergyMultiple caps dynamic energy at this multiple of the
// admission energy.
const maxEnergyMultiple = 4.0

// Stats is a point-in-time snapshot of the corpus counters.
type Stats struct {
	// Seeds is the current corpus size (after eviction).
	Seeds int
	// Admitted/Rejected/Evicted count Add outcomes over the whole run:
	// programs that contributed new coverage, programs that did not, and
	// admitted seeds later displaced by the size cap.
	Admitted, Rejected, Evicted uint64
	// Edges is the number of distinct coverage edges ever seen.
	Edges int
	// Fingerprints is the number of distinct coverage fingerprints ever
	// observed across all Add calls (admitted or not) — the campaign's
	// behavioural-diversity metric.
	Fingerprints int
	// Bumps counts BumpEnergy calls that actually raised a live seed's
	// energy (the dynamic-energy feedback observable).
	Bumps uint64
}

// Corpus is a concurrency-safe coverage-keyed seed pool.
type Corpus struct {
	mu       sync.Mutex
	maxSeeds int
	seeds    []*Seed
	byID     map[int]*Seed // live seeds by admission ID (evicted removed)
	total    float64       // sum of seed energies
	edges    map[uint64]struct{}
	fps      map[uint64]struct{}
	astSeen  map[uint64]struct{}
	nextID   int

	// Delta export (fleet shards): when logDelta is set, every admission
	// appends its durable form to deltaLog in admission order, so
	// ExportDelta can ship the lease's contribution even after eviction
	// has displaced some of the admitted seeds.
	logDelta bool
	deltaLog []DeltaSeed

	admitted, rejected, evicted, bumps uint64
}

// DefaultMaxSeeds caps the corpus when the caller passes 0.
const DefaultMaxSeeds = 256

// New creates an empty corpus holding at most maxSeeds entries
// (0 = DefaultMaxSeeds).
func New(maxSeeds int) *Corpus {
	if maxSeeds <= 0 {
		maxSeeds = DefaultMaxSeeds
	}
	return &Corpus{
		maxSeeds: maxSeeds,
		byID:     make(map[int]*Seed),
		edges:    make(map[uint64]struct{}),
		fps:      make(map[uint64]struct{}),
		astSeen:  make(map[uint64]struct{}),
	}
}

// RecordProgram registers a program's AST-profile fingerprint as
// observed. The engine's collector calls it during the canonical round
// fold, so the observed set advances in deterministic steps.
func (c *Corpus) RecordProgram(astFP uint64) {
	c.mu.Lock()
	c.astSeen[astFP] = struct{}{}
	c.mu.Unlock()
}

// SeenProgram reports whether a program with this AST-profile fingerprint
// has already been observed — the mutation path's novelty pre-filter: a
// mutant that collapses onto an already-tested behavioural shape is
// discarded before it wastes an oracle slot.
func (c *Corpus) SeenProgram(astFP uint64) bool {
	c.mu.Lock()
	_, ok := c.astSeen[astFP]
	c.mu.Unlock()
	return ok
}

// Add offers a program with its coverage profile. It is admitted — and the
// corpus takes ownership of prog, which must not be mutated afterwards —
// only if the profile contributes at least one edge not seen before.
func (c *Corpus) Add(prog *ast.Program, prof *coverage.Profile) bool {
	if prog == nil || prof == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.fps[prof.Fingerprint()] = struct{}{}
	fresh := 0
	for _, e := range prof.Edges() {
		if _, seen := c.edges[e]; !seen {
			fresh++
		}
	}
	if fresh == 0 {
		c.rejected++
		return false
	}
	for _, e := range prof.Edges() {
		c.edges[e] = struct{}{}
	}
	size := prof.Stmts()
	if size < 1 {
		size = 1
	}
	energy := float64(fresh) / math.Sqrt(float64(size))
	s := &Seed{
		ID:       c.nextID,
		Program:  prog,
		Profile:  prof,
		NewEdges: fresh,
		Size:     size,
		// Energy rewards coverage yield and penalizes bulk sub-linearly: a
		// seed twice the size needs well under twice the new edges to stay
		// competitive, but a huge witness cannot dominate scheduling.
		Energy:     energy,
		BaseEnergy: energy,
	}
	c.nextID++
	c.admitted++
	if c.logDelta {
		c.deltaLog = append(c.deltaLog, DeltaSeed{
			Source: printer.Print(prog),
			Edges:  prof.Edges(),
			Stmts:  prof.Stmts(),
		})
	}
	c.seeds = append(c.seeds, s)
	c.byID[s.ID] = s
	c.total += s.Energy
	c.evict()
	return true
}

// evict enforces the size cap with a size-biased policy: drop the largest
// seed, breaking ties toward lower energy, then older admission. Evicted
// seeds keep their edges in the global set — coverage once seen stays
// seen, so eviction never re-opens admission for equivalent programs.
// Caller holds the lock.
func (c *Corpus) evict() {
	for len(c.seeds) > c.maxSeeds {
		victim := 0
		for i := 1; i < len(c.seeds); i++ {
			a, b := c.seeds[i], c.seeds[victim]
			switch {
			case a.Size != b.Size:
				if a.Size > b.Size {
					victim = i
				}
			case a.Energy != b.Energy:
				if a.Energy < b.Energy {
					victim = i
				}
			case a.ID < b.ID:
				victim = i
			}
		}
		c.total -= c.seeds[victim].Energy
		delete(c.byID, c.seeds[victim].ID)
		c.seeds = append(c.seeds[:victim], c.seeds[victim+1:]...)
		c.evicted++
	}
}

// BumpEnergy raises seed seedID's scheduling energy by frac of its
// admission energy, capped at maxEnergyMultiple× that admission energy.
// It is a no-op for evicted (or never-admitted) IDs. The engine calls it
// only during the canonical round fold — bumps land in deterministic
// order at deterministic points, so a schedule replayed under the same
// master seed draws the same seeds even though energies move.
func (c *Corpus) BumpEnergy(seedID int, frac float64) {
	if frac <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.byID[seedID]
	if !ok {
		return
	}
	next := s.Energy + frac*s.BaseEnergy
	if cap := maxEnergyMultiple * s.BaseEnergy; next > cap {
		next = cap
	}
	if next > s.Energy {
		c.total += next - s.Energy
		s.Energy = next
		c.bumps++
	}
}

// Select draws a seed with probability proportional to its energy, using
// exactly one draw from r (so a schedule replayed with the same rand
// stream and corpus state picks the same seeds). Returns nil when the
// corpus is empty.
func (c *Corpus) Select(r *rand.Rand) *Seed {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.seeds) == 0 {
		r.Float64() // keep the caller's draw stream aligned
		return nil
	}
	x := r.Float64() * c.total
	for _, s := range c.seeds {
		x -= s.Energy
		if x < 0 {
			return s
		}
	}
	return c.seeds[len(c.seeds)-1] // float drift: fall back to the last
}

// TopEnergy returns the programs of the n highest-energy live seeds,
// ordered by energy descending with admission ID as the tie-break — a
// pure function of corpus state, so every worker count sees the same
// list at the same fold point. The engine's epoch rotation uses it to
// pre-warm a fresh validation cache with the seeds most likely to be
// scheduled next.
func (c *Corpus) TopEnergy(n int) []*ast.Program {
	c.mu.Lock()
	seeds := append([]*Seed(nil), c.seeds...)
	c.mu.Unlock()
	sort.Slice(seeds, func(i, j int) bool {
		if seeds[i].Energy != seeds[j].Energy {
			return seeds[i].Energy > seeds[j].Energy
		}
		return seeds[i].ID < seeds[j].ID
	})
	if n > len(seeds) {
		n = len(seeds)
	}
	out := make([]*ast.Program, 0, n)
	for _, s := range seeds[:n] {
		out = append(out, s.Program)
	}
	return out
}

// Len returns the current number of seeds.
func (c *Corpus) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.seeds)
}

// Stats snapshots the corpus counters.
func (c *Corpus) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Seeds:        len(c.seeds),
		Admitted:     c.admitted,
		Rejected:     c.rejected,
		Evicted:      c.evicted,
		Edges:        len(c.edges),
		Fingerprints: len(c.fps),
		Bumps:        c.bumps,
	}
}

// Fingerprints returns the sorted coverage fingerprints of the current
// seeds — the determinism invariant's observable: for a fixed schedule
// seed it must be identical across worker counts.
func (c *Corpus) Fingerprints() []uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]uint64, 0, len(c.seeds))
	for _, s := range c.seeds {
		out = append(out, s.Profile.Fingerprint())
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Save writes every current seed as printed P4 into dir (created if
// needed), one file per seed named by the hash of its printed source,
// and returns how many files were written. Content-addressed names make
// a corpus directory idempotent across load/save cycles: the same
// program always lands in the same file, regardless of whether its
// profile carried pass-trace edges (run-time admission) or AST edges
// only (reload).
func (c *Corpus) Save(dir string) (int, error) {
	c.mu.Lock()
	seeds := append([]*Seed(nil), c.seeds...)
	c.mu.Unlock()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, err
	}
	n := 0
	for _, s := range seeds {
		name := filepath.Join(dir, fmt.Sprintf("seed_%016x.p4", printer.Fingerprint(s.Program)))
		if err := os.WriteFile(name, []byte(printer.Print(s.Program)), 0o644); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// Load reads every *.p4 file in dir (sorted by name, so admission order —
// and therefore the corpus — is reproducible), parses, type-checks and
// profiles it, and admits it through the normal coverage-keyed gate.
// Unparsable or ill-typed files are skipped, not fatal: a corpus directory
// survives format drift. Returns how many files were admitted.
func (c *Corpus) Load(dir string) (int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".p4") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	n := 0
	for _, name := range names {
		src, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return n, err
		}
		prog, err := parser.Parse(string(src))
		if err != nil {
			continue
		}
		if types.Check(ast.CloneProgram(prog)) != nil {
			continue
		}
		if c.Add(prog, coverage.OfProgram(prog)) {
			n++
		}
	}
	return n, nil
}
