package corpus

import (
	"fmt"
	"sort"

	"gauntlet/internal/coverage"
	"gauntlet/internal/p4/parser"
	"gauntlet/internal/p4/printer"
)

// SeedSnapshot is one seed's durable form: the printed program plus every
// admission-time metric scheduling depends on. The profile is saved as
// its raw edge set, not re-derived from the source on load — a run-time
// profile carries pass-trace (or crash) edges an AST re-profile cannot
// reproduce, and energy reflects dynamic bumps, so lossy restoration
// would silently change the resumed schedule.
type SeedSnapshot struct {
	ID         int      `json:"id"`
	Source     string   `json:"source"`
	Edges      []uint64 `json:"edges"`
	Stmts      int      `json:"stmts"`
	NewEdges   int      `json:"new_edges"`
	Size       int      `json:"size"`
	Energy     float64  `json:"energy"`
	BaseEnergy float64  `json:"base_energy"`
}

// Snapshot is the corpus's complete durable state. Unlike Save/Load —
// which round-trips only the printed seed programs and replays them
// through the admission gate — a Snapshot preserves the exact feedback
// state: the global edge set (including edges owned by since-evicted
// seeds), the observed coverage- and AST-fingerprint sets (the dedup and
// novelty filters), per-seed energies, admission IDs, and the lifetime
// counters. FromSnapshot therefore yields a corpus whose future behaviour
// is indistinguishable from the one snapshotted — the property resume
// correctness rests on.
type Snapshot struct {
	MaxSeeds int            `json:"max_seeds"`
	NextID   int            `json:"next_id"`
	Seeds    []SeedSnapshot `json:"seeds"`
	// Edges is the global coverage-edge set (admission novelty filter).
	Edges []uint64 `json:"edges"`
	// Fingerprints is every coverage fingerprint ever observed.
	Fingerprints []uint64 `json:"fingerprints"`
	// ASTSeen is the observed AST-profile fingerprint set (the mutation
	// staleness pre-filter).
	ASTSeen []uint64 `json:"ast_seen"`
	// Lifetime counters.
	Admitted uint64 `json:"admitted"`
	Rejected uint64 `json:"rejected"`
	Evicted  uint64 `json:"evicted"`
	Bumps    uint64 `json:"bumps"`
}

// sortedKeys flattens a set to a sorted slice (deterministic
// serialization: the same corpus always snapshots to the same bytes).
func sortedKeys(m map[uint64]struct{}) []uint64 {
	out := make([]uint64, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Snapshot captures the corpus's full state for a checkpoint. Safe for
// concurrent use, though the engine calls it only from the collector at a
// fold boundary, where the state is round-aligned.
func (c *Corpus) Snapshot() *Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := &Snapshot{
		MaxSeeds:     c.maxSeeds,
		NextID:       c.nextID,
		Edges:        sortedKeys(c.edges),
		Fingerprints: sortedKeys(c.fps),
		ASTSeen:      sortedKeys(c.astSeen),
		Admitted:     c.admitted,
		Rejected:     c.rejected,
		Evicted:      c.evicted,
		Bumps:        c.bumps,
	}
	for _, sd := range c.seeds {
		s.Seeds = append(s.Seeds, SeedSnapshot{
			ID:         sd.ID,
			Source:     printer.Print(sd.Program),
			Edges:      sd.Profile.Edges(),
			Stmts:      sd.Profile.Stmts(),
			NewEdges:   sd.NewEdges,
			Size:       sd.Size,
			Energy:     sd.Energy,
			BaseEnergy: sd.BaseEnergy,
		})
	}
	return s
}

// FromSnapshot reconstructs a corpus from a checkpoint snapshot. A seed
// whose source no longer parses is an error, not a skip: a checkpoint is
// written atomically by this code, so damage means corruption, and
// resuming from a silently thinned corpus would diverge without a trace.
func FromSnapshot(s *Snapshot) (*Corpus, error) {
	c := New(s.MaxSeeds)
	c.nextID = s.NextID
	c.admitted = s.Admitted
	c.rejected = s.Rejected
	c.evicted = s.Evicted
	c.bumps = s.Bumps
	for _, e := range s.Edges {
		c.edges[e] = struct{}{}
	}
	for _, fp := range s.Fingerprints {
		c.fps[fp] = struct{}{}
	}
	for _, fp := range s.ASTSeen {
		c.astSeen[fp] = struct{}{}
	}
	for _, sd := range s.Seeds {
		prog, err := parser.Parse(sd.Source)
		if err != nil {
			return nil, fmt.Errorf("corpus snapshot seed %d: %w", sd.ID, err)
		}
		seed := &Seed{
			ID:         sd.ID,
			Program:    prog,
			Profile:    coverage.FromEdges(sd.Edges, sd.Stmts),
			NewEdges:   sd.NewEdges,
			Size:       sd.Size,
			Energy:     sd.Energy,
			BaseEnergy: sd.BaseEnergy,
		}
		c.seeds = append(c.seeds, seed)
		c.byID[seed.ID] = seed
		c.total += seed.Energy
	}
	return c, nil
}
