package corpus

import (
	"fmt"
	"sync"

	"gauntlet/internal/coverage"
	"gauntlet/internal/p4/parser"
)

// DeltaSeed is one shard-locally admitted program in admission order: the
// printed source plus the profile facts (edge set, statement count) the
// master admission gate needs to re-judge it. Admission-time metrics
// (fresh-edge count, energy) are deliberately absent — they are functions
// of the fold position, and the master recomputes them against its own
// edge set, which is what makes a locally over-admitted candidate fold
// into a correct global rejection.
type DeltaSeed struct {
	Source string   `json:"source"`
	Edges  []uint64 `json:"edges"`
	Stmts  int      `json:"stmts"`
}

// Delta is one shard's corpus contribution over a lease: everything the
// shard observed (coverage fingerprints, AST-profile fingerprints, its
// local rejection count) plus the programs its local gate admitted, in
// canonical slot order. A shard's local edge set at slot s is a subset of
// the global edge set at s in the canonical fold, so local admission is a
// superset of global admission — replaying Seeds through the master gate
// in (lease, slot) order reproduces the single-process corpus exactly,
// and the set fields union in any order.
type Delta struct {
	Fps     []uint64 `json:"fps"`
	ASTSeen []uint64 `json:"ast_seen"`
	// Rejected is the shard's local rejection count. Master-side re-folds
	// add their own rejections (locally admitted, globally stale), and
	// every globally rejected program is counted by exactly one of the
	// two, so the merged counter equals the single-process one.
	Rejected uint64      `json:"rejected"`
	Seeds    []DeltaSeed `json:"seeds"`
}

// EnableDeltaLog makes the corpus record every admission as a DeltaSeed,
// in admission order, for ExportDelta. Fleet workers enable it on the
// fresh per-lease corpus; the log captures admission-time state, so seeds
// later displaced by eviction still ship in the delta (the master applies
// its own eviction policy during the re-fold).
func (c *Corpus) EnableDeltaLog() {
	c.mu.Lock()
	c.logDelta = true
	c.mu.Unlock()
}

// ExportDelta snapshots the shard's contribution: the observed
// fingerprint sets, the local rejection count and the admission log.
// Call it after the lease's last fold; the corpus is not reset.
func (c *Corpus) ExportDelta() *Delta {
	c.mu.Lock()
	defer c.mu.Unlock()
	return &Delta{
		Fps:      sortedKeys(c.fps),
		ASTSeen:  sortedKeys(c.astSeen),
		Rejected: c.rejected,
		Seeds:    append([]DeltaSeed(nil), c.deltaLog...),
	}
}

// ApplyDelta folds one shard delta into the master corpus: candidate
// seeds replay through the normal admission gate in their recorded order,
// then the observed-fingerprint sets union in. A seed whose source no
// longer parses is an error, not a skip — deltas are machine-written, so
// damage means corruption, and a silently thinned fold would diverge
// without a trace.
func (c *Corpus) ApplyDelta(d *Delta) error {
	for i, ds := range d.Seeds {
		prog, err := parser.Parse(ds.Source)
		if err != nil {
			return fmt.Errorf("corpus delta seed %d: %w", i, err)
		}
		c.Add(prog, coverage.FromEdges(ds.Edges, ds.Stmts))
	}
	c.mu.Lock()
	for _, fp := range d.Fps {
		c.fps[fp] = struct{}{}
	}
	for _, fp := range d.ASTSeen {
		c.astSeen[fp] = struct{}{}
	}
	c.rejected += d.Rejected
	c.mu.Unlock()
	return nil
}

// DeltaSet folds shard deltas into a target corpus in canonical lease
// order regardless of arrival order: out-of-order deltas buffer until the
// contiguous prefix reaches them, and a delta for an already-folded lease
// is ignored. Because application order is a function of the lease index
// alone, the merge is commutative and associative over arrival order, and
// re-offering a lease's delta is idempotent — the properties that make
// at-least-once shard replay safe.
type DeltaSet struct {
	mu      sync.Mutex
	target  *Corpus
	next    int64
	pending map[int64]*Delta
}

// NewDeltaSet returns an accumulator folding into target from lease
// index next — 0 for a fresh campaign, the resume watermark lease for a
// resumed one (whose prior leases are already folded into target via the
// checkpoint snapshot).
func NewDeltaSet(target *Corpus, next int64) *DeltaSet {
	return &DeltaSet{target: target, next: next, pending: make(map[int64]*Delta)}
}

// Offer presents lease's delta. It folds the delta — and any buffered
// successors it unblocks — when lease is the next index in canonical
// order, buffers it when it is early, and drops it when that lease has
// already folded (shard replay produces byte-identical deltas, so
// dropping loses nothing). Safe for concurrent use.
func (s *DeltaSet) Offer(lease int64, d *Delta) error {
	if d == nil {
		return fmt.Errorf("corpus delta set: nil delta for lease %d", lease)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if lease < s.next {
		return nil // already folded: at-least-once replay
	}
	s.pending[lease] = d
	for {
		nd, ok := s.pending[s.next]
		if !ok {
			return nil
		}
		if err := s.target.ApplyDelta(nd); err != nil {
			return err
		}
		delete(s.pending, s.next)
		s.next++
	}
}

// Applied reports how many leases have folded (the contiguous prefix).
func (s *DeltaSet) Applied() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.next
}
