package corpus_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"gauntlet/internal/corpus"
	"gauntlet/internal/coverage"
	"gauntlet/internal/generator"
	"gauntlet/internal/p4/ast"
)

// shardInput is one slot's generated program and profile, precomputed so
// every fold in the test replays identical inputs.
type shardInput struct {
	prog *ast.Program
	prof *coverage.Profile
}

func makeInputs(n int) []shardInput {
	out := make([]shardInput, n)
	for i := range out {
		prog := generator.Generate(generator.DefaultConfig(int64(i)))
		out[i] = shardInput{prog: prog, prof: coverage.OfProgram(prog)}
	}
	return out
}

// fold replays inputs through a corpus the way a fleet worker's engine
// does: record the program's AST fingerprint, then offer it for
// admission.
func fold(c *corpus.Corpus, inputs []shardInput) {
	for _, in := range inputs {
		c.RecordProgram(in.prof.Fingerprint())
		c.Add(in.prog, in.prof)
	}
}

// shardDeltas partitions inputs into contiguous leases of leaseLen and
// folds each on a fresh delta-logging shard corpus, the fleet worker
// shape: every lease starts cold, over-admits relative to the global edge
// set, and ships its admission log.
func shardDeltas(inputs []shardInput, leaseLen, maxSeeds int) []*corpus.Delta {
	var out []*corpus.Delta
	for start := 0; start < len(inputs); start += leaseLen {
		end := start + leaseLen
		if end > len(inputs) {
			end = len(inputs)
		}
		shard := corpus.New(maxSeeds)
		shard.EnableDeltaLog()
		fold(shard, inputs[start:end])
		out = append(out, shard.ExportDelta())
	}
	return out
}

func corpusKey(c *corpus.Corpus) string {
	return fmt.Sprintf("fps=%v stats=%+v", c.Fingerprints(), c.Stats())
}

// TestDeltaMergeMatchesSingleFold: folding shard deltas through a
// DeltaSet must reproduce the single-process corpus exactly — seed set,
// fingerprints, and every lifetime counter including rejections — for any
// shard count, any arrival order, and with duplicated deliveries
// (at-least-once replay). This is the fleet merge's correctness property:
// arrival order cannot change the merged corpus.
func TestDeltaMergeMatchesSingleFold(t *testing.T) {
	const n, leaseLen, maxSeeds = 96, 12, 6
	inputs := makeInputs(n)

	ref := corpus.New(maxSeeds)
	fold(ref, inputs)
	want := corpusKey(ref)
	if ref.Stats().Rejected == 0 || ref.Stats().Evicted == 0 {
		t.Fatalf("weak reference fold (stats %+v): the test needs rejections and evictions to be meaningful", ref.Stats())
	}

	deltas := shardDeltas(inputs, leaseLen, maxSeeds)
	if len(deltas) < 4 {
		t.Fatalf("only %d leases; need several to permute", len(deltas))
	}

	// A worker's local gate must over-admit, never under-admit: its edge
	// set at any slot is a subset of the global fold's.
	var shipped int
	for _, d := range deltas {
		shipped += len(d.Seeds)
	}
	if uint64(shipped) < ref.Stats().Admitted {
		t.Fatalf("shards shipped %d candidates, fewer than the %d globally admitted", shipped, ref.Stats().Admitted)
	}

	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 8; trial++ {
		order := rng.Perm(len(deltas))
		merged := corpus.New(maxSeeds)
		set := corpus.NewDeltaSet(merged, 0)
		for _, lease := range order {
			if err := set.Offer(int64(lease), deltas[lease]); err != nil {
				t.Fatal(err)
			}
			// Idempotence: every delivery repeats (at-least-once).
			if err := set.Offer(int64(lease), deltas[lease]); err != nil {
				t.Fatal(err)
			}
		}
		if got := set.Applied(); got != int64(len(deltas)) {
			t.Fatalf("trial %d (order %v): %d of %d leases folded", trial, order, got, len(deltas))
		}
		if got := corpusKey(merged); got != want {
			t.Errorf("trial %d (order %v): merged corpus diverges from single fold:\nwant %s\ngot  %s", trial, order, want, got)
		}
	}
}

// TestDeltaMergeShardCountInvariant: 1 shard per lease vs 1 shard for the
// whole stream must merge to the same corpus — worker count is not
// observable in the merged state.
func TestDeltaMergeShardCountInvariant(t *testing.T) {
	const n, maxSeeds = 96, 6
	inputs := makeInputs(n)
	for _, leaseLen := range []int{n, n / 4, n / 8} {
		deltas := shardDeltas(inputs, leaseLen, maxSeeds)
		merged := corpus.New(maxSeeds)
		set := corpus.NewDeltaSet(merged, 0)
		for i, d := range deltas {
			if err := set.Offer(int64(i), d); err != nil {
				t.Fatal(err)
			}
		}
		ref := corpus.New(maxSeeds)
		fold(ref, inputs)
		if got, want := corpusKey(merged), corpusKey(ref); got != want {
			t.Errorf("leaseLen %d: merged corpus diverges:\nwant %s\ngot  %s", leaseLen, want, got)
		}
	}
}

// TestDeltaSetConcurrent: concurrent Offer calls — the coordinator's
// connection handlers racing — must still fold in canonical order (run
// under -race in CI).
func TestDeltaSetConcurrent(t *testing.T) {
	const n, leaseLen, maxSeeds = 96, 8, 6
	inputs := makeInputs(n)
	deltas := shardDeltas(inputs, leaseLen, maxSeeds)
	ref := corpus.New(maxSeeds)
	fold(ref, inputs)
	want := corpusKey(ref)

	merged := corpus.New(maxSeeds)
	set := corpus.NewDeltaSet(merged, 0)
	var wg sync.WaitGroup
	for i, d := range deltas {
		wg.Add(1)
		go func(lease int64, d *corpus.Delta) {
			defer wg.Done()
			if err := set.Offer(lease, d); err != nil {
				t.Error(err)
			}
		}(int64(i), d)
	}
	wg.Wait()
	if got := set.Applied(); got != int64(len(deltas)) {
		t.Fatalf("%d of %d leases folded", got, len(deltas))
	}
	if got := corpusKey(merged); got != want {
		t.Errorf("concurrent merge diverges:\nwant %s\ngot  %s", want, got)
	}
}

// TestDeltaSetResumeStart: a DeltaSet started at a resume watermark must
// ignore replays of already-folded leases and fold from the watermark on.
func TestDeltaSetResumeStart(t *testing.T) {
	const n, leaseLen, maxSeeds = 48, 12, 6
	inputs := makeInputs(n)
	deltas := shardDeltas(inputs, leaseLen, maxSeeds)

	// The "checkpoint": leases 0 and 1 already folded.
	resumed := corpus.New(maxSeeds)
	set0 := corpus.NewDeltaSet(resumed, 0)
	for i := 0; i < 2; i++ {
		if err := set0.Offer(int64(i), deltas[i]); err != nil {
			t.Fatal(err)
		}
	}
	set := corpus.NewDeltaSet(resumed, 2)
	for i := len(deltas) - 1; i >= 0; i-- { // replay everything, reversed
		if err := set.Offer(int64(i), deltas[i]); err != nil {
			t.Fatal(err)
		}
	}
	if got := set.Applied(); got != int64(len(deltas)) {
		t.Fatalf("%d of %d leases folded after resume", got, len(deltas))
	}
	ref := corpus.New(maxSeeds)
	fold(ref, inputs)
	if got, want := corpusKey(resumed), corpusKey(ref); got != want {
		t.Errorf("resumed merge diverges:\nwant %s\ngot  %s", want, got)
	}
}
