package corpus_test

import (
	"encoding/json"
	"math/rand"
	"testing"

	"gauntlet/internal/corpus"
)

// TestSnapshotRoundTrip: FromSnapshot(Snapshot()) must reproduce the
// corpus exactly — seeds, energies, the global edge set (including edges
// owned by evicted seeds), the observed fingerprint sets and the lifetime
// counters — so a resumed campaign's feedback loop is indistinguishable
// from an uninterrupted one.
func TestSnapshotRoundTrip(t *testing.T) {
	c := corpus.New(8)
	admit(t, c, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12)
	// Dynamic energy so the round trip covers bumped, not just
	// admission-time, energies.
	c.BumpEnergy(0, 0.5)
	c.BumpEnergy(2, 1.0)
	c.RecordProgram(0xdeadbeef)

	snap := c.Snapshot()
	restored, err := corpus.FromSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}

	// The restored corpus must snapshot to the identical state.
	a, _ := json.Marshal(snap)
	b, _ := json.Marshal(restored.Snapshot())
	if string(a) != string(b) {
		t.Fatalf("snapshot not a fixed point:\n%s\n%s", a, b)
	}

	if got, want := restored.Stats(), c.Stats(); got != want {
		t.Fatalf("stats mismatch: %+v != %+v", got, want)
	}
	af, bf := c.Fingerprints(), restored.Fingerprints()
	if len(af) != len(bf) {
		t.Fatalf("fingerprint counts differ: %d != %d", len(af), len(bf))
	}
	for i := range af {
		if af[i] != bf[i] {
			t.Fatalf("fingerprint %d differs", i)
		}
	}
	if !restored.SeenProgram(0xdeadbeef) {
		t.Fatal("observed AST fingerprint lost in round trip")
	}

	// Scheduling must continue identically: the same rand stream selects
	// the same seed IDs from both corpora.
	ra, rb := rand.New(rand.NewSource(99)), rand.New(rand.NewSource(99))
	for i := 0; i < 32; i++ {
		sa, sb := c.Select(ra), restored.Select(rb)
		if (sa == nil) != (sb == nil) || (sa != nil && sa.ID != sb.ID) {
			t.Fatalf("selection diverged at draw %d", i)
		}
	}
}
