package corpus_test

import (
	"math/rand"
	"os"
	"sync"
	"testing"

	"gauntlet/internal/corpus"
	"gauntlet/internal/coverage"
	"gauntlet/internal/generator"
)

// admit generates programs for the given seeds and offers each to the
// corpus, returning how many were admitted.
func admit(t *testing.T, c *corpus.Corpus, seeds ...int64) int {
	t.Helper()
	n := 0
	for _, s := range seeds {
		prog := generator.Generate(generator.DefaultConfig(s))
		if c.Add(prog, coverage.OfProgram(prog)) {
			n++
		}
	}
	return n
}

// TestAdmissionRequiresNewCoverage: a program re-offered with an identical
// profile must be rejected, and the counters must account for both.
func TestAdmissionRequiresNewCoverage(t *testing.T) {
	c := corpus.New(0)
	prog := generator.Generate(generator.DefaultConfig(1))
	if !c.Add(prog, coverage.OfProgram(prog)) {
		t.Fatal("first program must be admitted (everything is new coverage)")
	}
	if c.Add(generator.Generate(generator.DefaultConfig(1)), coverage.OfProgram(prog)) {
		t.Fatal("identical profile re-admitted")
	}
	s := c.Stats()
	if s.Admitted != 1 || s.Rejected != 1 || s.Seeds != 1 {
		t.Errorf("stats = %+v, want 1 admitted / 1 rejected / 1 seed", s)
	}
	if s.Edges == 0 || s.Fingerprints != 1 {
		t.Errorf("edges=%d fingerprints=%d, want >0 and 1", s.Edges, s.Fingerprints)
	}
}

// TestAdmissionRateDecays: over a stream of generated programs the
// admission rate must fall — later programs mostly re-exercise seen
// features, which is exactly the novelty signal the engine schedules on.
func TestAdmissionRateDecays(t *testing.T) {
	c := corpus.New(0)
	var early, late int
	for s := int64(0); s < 30; s++ {
		prog := generator.Generate(generator.DefaultConfig(s))
		ok := c.Add(prog, coverage.OfProgram(prog))
		if ok && s < 15 {
			early++
		} else if ok {
			late++
		}
	}
	if early == 0 {
		t.Fatal("no early admissions at all")
	}
	if late >= early {
		t.Errorf("admission did not decay: %d early vs %d late", early, late)
	}
}

// TestEvictionSizeBiased: with a cap of 2, admitting three seeds must
// evict the largest, and the evicted seed's coverage stays claimed (no
// re-admission of an equivalent profile).
func TestEvictionSizeBiased(t *testing.T) {
	c := corpus.New(2)
	admitted := admit(t, c, 0, 1, 2, 3, 4, 5, 6, 7)
	if admitted < 3 {
		t.Skipf("only %d of 8 generated programs admitted; need ≥3 to exercise eviction", admitted)
	}
	s := c.Stats()
	if s.Seeds != 2 {
		t.Fatalf("corpus holds %d seeds, want cap 2", s.Seeds)
	}
	if s.Evicted != s.Admitted-2 {
		t.Errorf("evicted = %d, want admitted-2 = %d", s.Evicted, s.Admitted-2)
	}
	// Every survivor must be no larger than the cap'th-smallest admitted
	// size is hard to reconstruct here; instead check the policy's
	// observable: re-offering a survivor's profile is still rejected.
	r := rand.New(rand.NewSource(1))
	sel := c.Select(r)
	if sel == nil {
		t.Fatal("select returned nil on a non-empty corpus")
	}
	if c.Add(sel.Program, sel.Profile) {
		t.Error("survivor profile re-admitted: eviction leaked coverage")
	}
}

// TestSelectEnergyWeighted: selection must be deterministic under a fixed
// rand stream and must favour higher-energy seeds.
func TestSelectEnergyWeighted(t *testing.T) {
	c := corpus.New(0)
	if admit(t, c, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9) < 3 {
		t.Skip("too few admissions to test scheduling")
	}
	// Determinism: same stream, same picks.
	picks := func(seed int64) []int {
		r := rand.New(rand.NewSource(seed))
		var out []int
		for i := 0; i < 50; i++ {
			out = append(out, c.Select(r).ID)
		}
		return out
	}
	a, b := picks(7), picks(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("selection not deterministic at draw %d: %d vs %d", i, a[i], b[i])
		}
	}
	// Bias: the highest-energy seed should be drawn more often than the
	// lowest over many draws.
	counts := map[int]int{}
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		counts[c.Select(r).ID]++
	}
	var bestID, worstID int
	var bestE, worstE = -1.0, -1.0
	r2 := rand.New(rand.NewSource(0))
	seen := map[int]*corpus.Seed{}
	for i := 0; i < 500; i++ {
		s := c.Select(r2)
		seen[s.ID] = s
	}
	for id, s := range seen {
		if bestE < 0 || s.Energy > bestE {
			bestE, bestID = s.Energy, id
		}
		if worstE < 0 || s.Energy < worstE {
			worstE, worstID = s.Energy, id
		}
	}
	if bestID != worstID && bestE > 2*worstE && counts[bestID] <= counts[worstID] {
		t.Errorf("energy bias missing: energy %.2f drawn %d times, energy %.2f drawn %d times",
			bestE, counts[bestID], worstE, counts[worstID])
	}
}

// TestSaveLoadRoundTrip: a saved corpus reloaded into a fresh corpus must
// reproduce the same coverage-fingerprint set.
func TestSaveLoadRoundTrip(t *testing.T) {
	c := corpus.New(0)
	if admit(t, c, 0, 1, 2, 3, 4, 5) == 0 {
		t.Fatal("nothing admitted")
	}
	dir := t.TempDir()
	n, err := c.Save(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n != c.Len() {
		t.Fatalf("saved %d files for %d seeds", n, c.Len())
	}

	fresh := corpus.New(0)
	loaded, err := fresh.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded == 0 {
		t.Fatal("nothing loaded back")
	}
	// Loaded profiles lack pass-trace edges only if the original ones had
	// them; here both sides are AST-only, so the fingerprint sets must
	// match exactly.
	a, b := c.Fingerprints(), fresh.Fingerprints()
	if len(a) != len(b) {
		t.Fatalf("fingerprint sets differ in size: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fingerprint %d differs: %016x vs %016x", i, a[i], b[i])
		}
	}

	// Names are content-addressed, so re-saving the reloaded corpus must
	// rewrite the same files, not accumulate duplicates.
	before, _ := os.ReadDir(dir)
	if _, err := fresh.Save(dir); err != nil {
		t.Fatal(err)
	}
	after, _ := os.ReadDir(dir)
	if len(after) != len(before) {
		t.Errorf("re-save grew the corpus directory: %d -> %d files", len(before), len(after))
	}
}

// TestConcurrentAdd: parallel admission must be safe (run under -race in
// CI) and account for every offer.
func TestConcurrentAdd(t *testing.T) {
	c := corpus.New(16)
	const workers, per = 8, 10
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < per; i++ {
				prog := generator.Generate(generator.DefaultConfig(int64(w*per + i)))
				c.Add(prog, coverage.OfProgram(prog))
				c.Select(r)
				c.Stats()
				c.Fingerprints()
			}
		}(w)
	}
	wg.Wait()
	s := c.Stats()
	if s.Admitted+s.Rejected != workers*per {
		t.Errorf("accounting: %d admitted + %d rejected != %d offers",
			s.Admitted, s.Rejected, workers*per)
	}
	if s.Seeds > 16 {
		t.Errorf("cap violated: %d seeds", s.Seeds)
	}
}

// TestBumpEnergy pins the dynamic-energy contract: bumps add fractions
// of the admission energy, saturate at the cap, skip unknown (evicted)
// IDs, and every effective bump is counted.
func TestBumpEnergy(t *testing.T) {
	c := corpus.New(8)
	if admit(t, c, 1, 2, 3) < 2 {
		t.Fatal("seed programs did not admit")
	}
	seeds := map[int]*corpus.Seed{}
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 256; i++ {
		s := c.Select(r)
		seeds[s.ID] = s
	}
	var target *corpus.Seed
	for _, s := range seeds {
		target = s
		break
	}
	base := target.BaseEnergy
	if base <= 0 || target.Energy != base {
		t.Fatalf("admission energy not recorded: energy=%v base=%v", target.Energy, base)
	}
	c.BumpEnergy(target.ID, 0.5)
	if got, want := target.Energy, 1.5*base; got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("bump 0.5: energy %v, want %v", got, want)
	}
	// Saturate: many more bumps stop at the cap (4x admission energy).
	for i := 0; i < 50; i++ {
		c.BumpEnergy(target.ID, 1.0)
	}
	if got, cap := target.Energy, 4*base; got > cap+1e-9 {
		t.Fatalf("energy %v exceeded cap %v", got, cap)
	}
	st := c.Stats()
	if st.Bumps == 0 || st.Bumps > 8 {
		t.Fatalf("bump count %d: want only the effective bumps counted", st.Bumps)
	}
	// Unknown / evicted IDs are a no-op.
	beforeBumps := st.Bumps
	c.BumpEnergy(99999, 1.0)
	if c.Stats().Bumps != beforeBumps {
		t.Fatal("bump of unknown seed ID was counted")
	}
	// A zero or negative fraction is a no-op too.
	e := target.Energy
	c.BumpEnergy(target.ID, 0)
	c.BumpEnergy(target.ID, -1)
	if target.Energy != e {
		t.Fatal("non-positive bump changed energy")
	}
}
