// Package device executes a compiled program as a packet-in/packet-out
// switch: the shared execution core of both target simulators. It threads
// a packet through the program's main pipeline (parser → controls →
// deparser) with the concrete interpreter, mirroring the architecture
// contract the symbolic composition assumes: blocks communicate through
// identically-named parameters (hdr, sm).
package device

import (
	"bytes"
	"errors"
	"fmt"

	"gauntlet/internal/bitstream"
	"gauntlet/internal/p4/ast"
	"gauntlet/internal/p4/eval"
)

// Device is an executable pipeline over a compiled program.
type Device struct {
	prog  *ast.Program
	undef eval.UndefPolicy
}

// New wraps a compiled program as a device with the given undefined-value
// policy (both simulators zero-initialize, matching §6.2).
func New(prog *ast.Program, undef eval.UndefPolicy) *Device {
	return &Device{prog: prog, undef: undef}
}

// Result is the observable outcome of injecting one packet.
type Result struct {
	// Drop is true when the parser rejected the packet (nothing egresses).
	Drop bool
	// Packet is the deparsed output packet when not dropped.
	Packet []byte
}

// Equal compares two results (drop matches drop; otherwise byte-equal
// packets).
func Equal(a, b Result) bool {
	if a.Drop != b.Drop {
		return false
	}
	if a.Drop {
		return true
	}
	return bytes.Equal(a.Packet, b.Packet)
}

// Mismatch describes one disagreement between an expected and an observed
// result — the packet-test failure report of the PTF/STF harnesses.
type Mismatch struct {
	CaseSummary        string
	Expected, Observed Result
}

// String renders the mismatch for bug reports.
func (m Mismatch) String() string {
	render := func(r Result) string {
		if r.Drop {
			return "drop"
		}
		return fmt.Sprintf("%x", r.Packet)
	}
	return fmt.Sprintf("%s: expected %s, observed %s",
		m.CaseSummary, render(m.Expected), render(m.Observed))
}

// Inject installs the table configuration, runs the packet through the
// pipeline and returns the observable result. cfg may be nil (all tables
// empty).
func (d *Device) Inject(cfg eval.Config, pkt []byte) (Result, error) {
	main := d.prog.Main()
	if main == nil {
		return Result{}, fmt.Errorf("device: program has no main instantiation")
	}
	in := eval.New(d.prog, d.undef, cfg)
	pv := &eval.PacketVal{R: bitstream.NewReader(pkt), W: bitstream.NewWriter()}

	// Shared pipeline state: parameter name → value, carried across
	// blocks (the v1model/TNA contract both generator back ends emit).
	state := map[string]eval.Value{}
	for _, argName := range main.Args {
		decl := d.prog.DeclByName(argName)
		var params []ast.Param
		switch b := decl.(type) {
		case *ast.ParserDecl:
			params = b.Params
		case *ast.ControlDecl:
			params = b.Params
		default:
			return Result{}, fmt.Errorf("device: main argument %q is not a block", argName)
		}
		args := make([]eval.Value, len(params))
		for i, p := range params {
			if _, isPkt := p.Type.(*ast.PacketType); isPkt {
				args[i] = pv
				continue
			}
			if v, ok := state[p.Name]; ok {
				args[i] = v
			} else {
				args[i] = eval.NewValue(p.Type, d.undef)
			}
		}
		var err error
		switch b := decl.(type) {
		case *ast.ParserDecl:
			err = in.ExecParser(b, args)
		case *ast.ControlDecl:
			err = in.ExecControl(b, args)
		}
		if err != nil {
			if errors.Is(err, eval.ErrReject) {
				return Result{Drop: true}, nil
			}
			return Result{}, err
		}
		for i, p := range params {
			if _, isPkt := p.Type.(*ast.PacketType); isPkt {
				continue
			}
			if p.Dir.Writes() {
				state[p.Name] = args[i]
			}
		}
	}
	return Result{Packet: pv.W.Bytes()}, nil
}
