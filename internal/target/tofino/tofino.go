// Package tofino is the black-box hardware target stand-in: the analogue
// of Barefoot's proprietary compiler (§6). Its back end re-runs the
// hardware-motivated mid-end transformations under Tofino-prefixed names —
// the passes the seeded defect registry patches (predication for the
// match-action grid, copy propagation for operand buses, def-use and
// dead-code cleanup for table placement, plus its own type checker).
// Gauntlet never inspects these passes' output directly; bugs in them are
// only observable through whole-pipeline packet tests.
package tofino

import (
	"gauntlet/internal/compiler"
	"gauntlet/internal/compiler/passes"
	"gauntlet/internal/p4/ast"
)

// renamed wraps a reference pass under a back-end-specific name.
type renamed struct {
	name  string
	inner compiler.Pass
}

// Name identifies the pass in snapshots and bug reports.
func (p renamed) Name() string { return p.name }

// Run executes the wrapped transformation.
func (p renamed) Run(prog *ast.Program) (*ast.Program, error) { return p.inner.Run(prog) }

// BackendPasses returns the Tofino back-end pipeline.
func BackendPasses() []compiler.Pass {
	return []compiler.Pass{
		renamed{"TofinoTypeChecking", passes.TypeChecking{}},
		renamed{"TofinoPredication", passes.Predication{}},
		renamed{"TofinoCopyPropagation", passes.CopyPropagation{}},
		renamed{"TofinoSimplifyDefUse", passes.SimplifyDefUse{}},
		renamed{"TofinoDeadCode", passes.DeadCode{}},
	}
}
