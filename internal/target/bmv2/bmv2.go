// Package bmv2 is the reference software-switch target: the stand-in for
// p4c-bm2-ss + simple_switch. Compilation appends a lowering pass to the
// reference pipeline; execution delegates to the shared device core with
// BMv2's all-zeros undefined-value behaviour (§6.2). The STF harness runs
// symbolic test cases against it, mirroring p4c's simple testing framework.
package bmv2

import (
	"gauntlet/internal/compiler"
	"gauntlet/internal/p4/ast"
	"gauntlet/internal/p4/eval"
	"gauntlet/internal/target/device"
	"gauntlet/internal/testgen"
)

// lowering is the BMv2 JSON-generation stand-in. The reference lowering
// is behaviour-preserving (seeded defects are wired in by instrumentation).
type lowering struct{}

// Name identifies the pass in snapshots and bug reports.
func (lowering) Name() string { return "BMv2Lowering" }

// Run lowers the program for simple_switch (identity in the reference
// compiler).
func (lowering) Run(prog *ast.Program) (*ast.Program, error) { return prog, nil }

// BackendPasses returns the BMv2 back-end pipeline.
func BackendPasses() []compiler.Pass { return []compiler.Pass{lowering{}} }

// Target is a compiled BMv2 instance.
type Target struct {
	// Result is the full compilation (snapshots included).
	Result *compiler.Result
	dev    *device.Device
}

// Compile runs the program through the default front/mid pipeline plus
// the BMv2 back end (plus any extra passes) and boots a simulator over
// the final program.
func Compile(prog *ast.Program, extra []compiler.Pass) (*Target, error) {
	pl := append(compiler.DefaultPasses(), BackendPasses()...)
	pl = append(pl, extra...)
	res, err := compiler.New(pl...).Compile(prog)
	if err != nil {
		return nil, err
	}
	return &Target{Result: res, dev: device.New(res.Final, eval.ZeroUndef)}, nil
}

// Inject runs one packet through the simulator.
func (t *Target) Inject(cfg eval.Config, pkt []byte) (device.Result, error) {
	return t.dev.Inject(cfg, pkt)
}

// STF is the simple-testing-framework harness: it feeds generated test
// cases to a compiled target and reports expectation mismatches.
type STF struct {
	Target *Target
}

// Run injects every case and returns one description per mismatch.
func (s *STF) Run(cases []testgen.Case) ([]string, error) {
	var out []string
	for _, c := range cases {
		obs, err := s.Target.Inject(c.Config, c.Packet)
		if err != nil {
			return out, err
		}
		want := device.Result{Drop: c.ExpectDrop, Packet: c.ExpectPacket}
		if !device.Equal(want, obs) {
			out = append(out, device.Mismatch{
				CaseSummary: c.Summary(),
				Expected:    want,
				Observed:    obs,
			}.String())
		}
	}
	return out, nil
}
