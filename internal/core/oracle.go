package core

import (
	"context"
	"errors"
	"time"

	"gauntlet/internal/compiler"
	"gauntlet/internal/p4/ast"
	"gauntlet/internal/smt"
	"gauntlet/internal/smt/solver"
	"gauntlet/internal/sym"
	"gauntlet/internal/testgen"
	"gauntlet/internal/validate"
)

// Oracle is the shared bug-detection stage: compile a program through a
// pass pipeline, then interrogate the result with translation validation
// (§5) and symbolic-execution packet tests (§6). It is the single
// implementation behind Campaign.Hunt, Campaign.HuntClean and the
// streaming Engine — one code path, three consumers.
//
// An Oracle is immutable after construction and safe for concurrent use:
// each Examine call builds its own compiler instance and solver sessions,
// sharing only the (concurrency-safe) validation cache and the
// process-wide term interner — the "isolate first, then share" split that
// makes worker pools sound.
type Oracle struct {
	// Passes is the pipeline under test (possibly instrumented with
	// seeded defects).
	Passes []compiler.Pass
	// MaxConflicts bounds every solver call.
	MaxConflicts int
	// TestOpts configures symbolic-execution test generation (its
	// MaxConflicts is overridden by the oracle's).
	TestOpts testgen.Options
	// Validate enables pass-pairwise translation validation.
	Validate bool
	// PacketTests enables symbolic-execution packet testing of the final
	// program against the input program's formula.
	PacketTests bool
	// Cache memoizes block formulas and equivalence verdicts (optional;
	// shared across goroutines when set).
	Cache *validate.Cache
	// CacheFn, when set, overrides Cache with a per-call lookup: the
	// engine points it at its current epoch's (context, cache) pair so a
	// rotation takes effect for new Examine/Inspect calls while in-flight
	// ones keep the pair they captured — no partially-swapped state.
	CacheFn func() *validate.Cache
	// Concolic configures the bit-parallel concrete fast path under every
	// equivalence query (zero value = enabled with defaults; see
	// validate.Concolic). Reduction predicates use WithHints to thread a
	// finding's counterexample through it.
	Concolic validate.Concolic
	// QueryObs, when non-nil, receives one callback per equivalence
	// query with the resolution tier that answered it and its latency
	// (see validate.Options.QueryObs). Observation-only.
	QueryObs func(tier string, d time.Duration)
	// Timeout is the wall-clock watchdog for one Examine's inspection
	// (0 = none). MaxConflicts bounds conflicts, not time — one
	// pathological miter can stall a worker for minutes inside a single
	// budget — so the deadline is threaded down into the SAT inner loop,
	// where expiry degrades the running query to Unknown. Examine applies
	// the escalation ladder: full verdict → one retry at doubled budgets
	// (wall-clock and conflicts) → explicit TimedOut outcome. Quarantine
	// of repeat offenders is the engine's call, not the oracle's.
	Timeout time.Duration
}

// cache resolves the validation cache for one oracle call. Each
// Inspect/Examine resolves it exactly once, so a single call never mixes
// terms from two epochs.
func (o *Oracle) cache() *validate.Cache {
	if o.CacheFn != nil {
		return o.CacheFn()
	}
	return o.Cache
}

// Outcome is the oracle's verdict on one program. At most one finding
// family is populated; all empty means the program compiled and behaved
// cleanly. Err reports tool limitations (interpreter gaps, unsatisfiable
// test paths) — per the paper's false-alarm discipline these are tracked,
// never reported as compiler bugs.
type Outcome struct {
	// Crash is set when a pass terminated abnormally.
	Crash *compiler.CrashError
	// Invalid is set when a pass emitted an unparsable program (§7.2).
	Invalid *compiler.InvalidTransformError
	// Failures are the translation-validation inequivalences.
	Failures []validate.Verdict
	// Mismatches describe packet tests whose observed output differed
	// from the symbolic expectation.
	Mismatches []string
	// MismatchCases are the concrete test cases behind Mismatches (same
	// order). A reducer replays one of these — input packet, table config
	// and solver model — against each candidate instead of re-running
	// full test generation.
	MismatchCases []testgen.Case
	// Result is the compilation result (nil when compilation failed
	// before producing one).
	Result *compiler.Result
	// Err is an infrastructure/tool-limitation error.
	Err error
	// Unknowns counts equivalence verdicts degraded to Unknown by budget
	// exhaustion or the wall-clock watchdog. Not bug evidence — an
	// accounting of weakened coverage, so chaos runs can prove every
	// fault surfaced as a quarantine record or an Unknown, never a hang.
	Unknowns int
	// TimedOut marks an inspection that hit the oracle's wall-clock
	// watchdog even after the doubled-budget retry. Partial evidence
	// gathered before the deadline (failures, mismatches) is still
	// populated and still counts.
	TimedOut bool
	// Retried marks an inspection that went through the ladder's
	// doubled-budget retry (whether or not the retry then completed).
	Retried bool
}

// Finding reports whether the outcome contains any bug evidence.
func (o Outcome) Finding() bool {
	return o.Crash != nil || o.Invalid != nil || len(o.Failures) > 0 || len(o.Mismatches) > 0
}

// Compile runs only the compile step of the oracle, classifying crash and
// invalid-transform errors into the outcome.
func (o *Oracle) Compile(prog *ast.Program) Outcome {
	comp := compiler.New(o.Passes...)
	res, err := comp.Compile(prog)
	out := Outcome{Result: res}
	if err != nil {
		var crash *compiler.CrashError
		var invalid *compiler.InvalidTransformError
		switch {
		case errors.As(err, &crash):
			out.Crash = crash
		case errors.As(err, &invalid):
			out.Invalid = invalid
		default:
			out.Err = err
		}
	}
	return out
}

// Inspect runs the post-compile oracle checks on a successful compilation:
// translation validation first (it pinpoints the failing pass), then — only
// when validation found nothing — packet tests against the final program.
// Test expectations come from the initial snapshot (the type-checked clone
// of the input program: name references resolved, untouched by any pass).
func (o *Oracle) Inspect(ctx context.Context, out *Outcome) {
	cache := o.cache()
	if o.Validate {
		verdicts, err := validate.SnapshotsContext(ctx, out.Result,
			validate.Options{MaxConflicts: o.MaxConflicts, Cache: cache, Concolic: o.Concolic, QueryObs: o.QueryObs})
		// Verdicts gathered before a deadline still count: Sat ones are
		// findings, Unknown ones are weakened-coverage accounting.
		for _, v := range verdicts {
			if v.Err == nil && v.Status == solver.Unknown {
				out.Unknowns++
			}
		}
		out.Failures = validate.Failures(verdicts)
		if err != nil {
			out.Err = err
			return
		}
		if len(out.Failures) > 0 {
			return
		}
	}
	if o.PacketTests {
		opts := o.TestOpts
		opts.MaxConflicts = o.MaxConflicts
		if cache != nil {
			// Test generation builds its symbolic pipeline in the same
			// epoch context as validation, so the whole call's terms
			// retire together.
			opts.SMT = cache.Context()
		}
		input := out.Result.Snapshots[0].Prog
		cases, cerr := testgen.GenerateContext(ctx, input, opts)
		if len(cases) == 0 && cerr != nil {
			out.Err = cerr
			return
		}
		dev, err := deviceFromResult(out.Result)
		if err != nil {
			out.Err = err
			return
		}
		mismatches, mcases, err := runCases(dev, cases)
		if err != nil {
			out.Err = err
			return
		}
		out.Mismatches = mismatches
		out.MismatchCases = mcases
		// A deadline mid-enumeration still ran the partial suite above;
		// surface the cancellation alongside whatever it caught.
		out.Err = cerr
	}
}

// Examine compiles prog and inspects the result — the full shared oracle
// stage. With Timeout set it applies the degradation ladder: a first
// inspection under the wall-clock watchdog, one retry at doubled budgets
// when the watchdog (not the caller) expired without producing bug
// evidence, and finally an explicit TimedOut outcome. The verdict only
// ever weakens — a deadline can never hang a worker or fabricate a
// finding.
func (o *Oracle) Examine(ctx context.Context, prog *ast.Program) Outcome {
	out := o.Compile(prog)
	if out.Err != nil || out.Crash != nil || out.Invalid != nil {
		return out
	}
	o.InspectLadder(ctx, &out)
	return out
}

// WithHints returns a copy of the oracle whose equivalence queries
// replay the given counterexample assignments (one tape packet each)
// before any batch falsification or solver work. A reduction predicate
// passes the original finding's counterexample: most candidates still
// fail on it, so the inequivalence re-proves itself in one packet.
func (o *Oracle) WithHints(hints ...smt.Assignment) *Oracle {
	try := *o
	try.Concolic.Hints = nil
	for _, h := range hints {
		if h != nil {
			try.Concolic.Hints = append(try.Concolic.Hints, h)
		}
	}
	return &try
}

// ReplayMismatch re-checks one cached mismatch case against a reduction
// candidate with zero solver work: compile the candidate, re-derive the
// expected output by evaluating the candidate's own symbolic pipeline
// under the cached model (concrete evaluation, no path enumeration), and
// inject the same packet and table state into the compiled device. A true
// return means the candidate still disagrees with its spec on that input
// — the mismatch symptom, reproduced from one packet. A false return is
// not a verdict: the candidate may mismatch on other inputs, so callers
// fall back to the full oracle.
func (o *Oracle) ReplayMismatch(cand *ast.Program, c testgen.Case) (bool, error) {
	out := o.Compile(cand)
	if out.Err != nil || out.Crash != nil || out.Invalid != nil || out.Result == nil {
		return false, out.Err
	}
	sctx := smt.DefaultContext()
	if cache := o.cache(); cache != nil {
		sctx = cache.Context()
	}
	input := out.Result.Snapshots[0].Prog
	pipe, err := sym.PipelineOfIn(sctx, input)
	if err != nil {
		return false, err
	}
	replay := testgen.CaseFromModel(input, pipe, c.Model, c.PathID)
	dev, err := deviceFromResult(out.Result)
	if err != nil {
		return false, err
	}
	mismatches, _, err := runCases(dev, []testgen.Case{replay})
	if err != nil {
		return false, err
	}
	return len(mismatches) > 0, nil
}

// InspectLadder is Inspect wrapped in the degradation ladder (see
// Oracle.Timeout). With no Timeout configured it is plain Inspect.
func (o *Oracle) InspectLadder(ctx context.Context, out *Outcome) {
	if o.Timeout <= 0 {
		o.Inspect(ctx, out)
		return
	}
	attempt := func(budget time.Duration, conflicts int) (Outcome, bool) {
		ictx, cancel := context.WithTimeout(ctx, budget)
		defer cancel()
		try := *o
		try.MaxConflicts = conflicts
		a := Outcome{Result: out.Result}
		try.Inspect(ictx, &a)
		// Watchdog expiry only: a cancelled parent context means the run
		// is draining, not that this program is slow.
		hit := ctx.Err() == nil && errors.Is(a.Err, context.DeadlineExceeded)
		return a, hit
	}
	a, hit := attempt(o.Timeout, o.MaxConflicts)
	if hit && !a.Finding() {
		// Rung two: double both budgets and try once more. Unknowns from
		// the abandoned attempt are superseded, not summed — the retry
		// re-poses the same queries.
		a, hit = attempt(2*o.Timeout, 2*o.MaxConflicts)
		a.Retried = true
	}
	if hit {
		// The ladder is exhausted (or the deadline fired after evidence
		// was already in hand). Convert the deadline error into the
		// explicit TimedOut/Unknown degradation so the engine accounts it
		// as a weakened verdict — or a quarantine — never a tool error.
		a.Err = nil
		a.TimedOut = !a.Finding()
	}
	*out = a
}
