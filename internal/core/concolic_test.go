package core_test

import (
	"context"
	"strings"
	"testing"

	"gauntlet/internal/bugs"
	"gauntlet/internal/compiler"
	"gauntlet/internal/core"
	"gauntlet/internal/target/bmv2"
)

// TestConcolicFindingInvariance is the PR's determinism bar: the
// unique-finding set over a fixed seed range must be byte-identical with
// the concolic fast path on and off, at one worker and at eight. The fast
// path may only change HOW verdicts are reached (concrete counterexample
// vs solver model), never WHICH symptoms are found or how witnesses
// reduce.
func TestConcolicFindingInvariance(t *testing.T) {
	ids := []string{"P4C-C-04", "P4C-S-02", "P4C-S-06"}
	run := func(workers int, off bool) []string {
		cfg := buggyEngineConfig(t, 15, workers, ids...)
		cfg.ConcolicOff = off
		e := core.NewEngine(cfg)
		return fingerprintSet(e.Run(context.Background()))
	}
	base := run(1, false)
	if len(base) == 0 {
		t.Fatal("no findings: the seeded defects should fire within 15 seeds")
	}
	for _, tc := range []struct {
		name    string
		workers int
		off     bool
	}{
		{"workers=8 concolic=on", 8, false},
		{"workers=1 concolic=off", 1, true},
		{"workers=8 concolic=off", 8, true},
	} {
		got := run(tc.workers, tc.off)
		if strings.Join(base, "\n") != strings.Join(got, "\n") {
			t.Errorf("finding set differs (%s):\nbase (workers=1 concolic=on):\n  %s\ngot:\n  %s",
				tc.name, strings.Join(base, "\n  "), strings.Join(got, "\n  "))
		}
	}
}

// TestConcolicResolvesQueriesWithoutSolver is the acceptance measurement:
// over a defect-seeded run, a nonzero fraction of mismatch verdicts must
// resolve concretely — zero SAT calls — and the avoided-call counter must
// reflect it.
func TestConcolicResolvesQueriesWithoutSolver(t *testing.T) {
	cfg := buggyEngineConfig(t, 15, 4, "P4C-S-02", "P4C-S-06")
	e := core.NewEngine(cfg)
	fs := e.Run(context.Background())
	if len(fs) == 0 {
		t.Fatal("no findings from seeded miscompilations")
	}
	s := e.Stats()
	if s.Miscompilations == 0 {
		t.Fatalf("no miscompilation verdicts: %+v", s)
	}
	if s.TapesCompiled == 0 {
		t.Errorf("no tapes compiled: %+v", s)
	}
	if s.ConcolicFalsified == 0 {
		t.Errorf("no equivalence query falsified concretely (want a nonzero fraction): falsified=%d fallbacks=%d",
			s.ConcolicFalsified, s.VerdictMisses)
	}
	if s.SolverCallsAvoided < s.ConcolicFalsified {
		t.Errorf("SolverCallsAvoided=%d < ConcolicFalsified=%d", s.SolverCallsAvoided, s.ConcolicFalsified)
	}
	if s.ConcolicPackets == 0 {
		t.Errorf("no concrete packets accounted: %+v", s)
	}
	// The counters must render in the summary (the serve-mode observable).
	if sum := s.Summary(); !strings.Contains(sum, "falsified concretely") {
		t.Errorf("summary missing concolic line:\n%s", sum)
	}
	// And with the fast path off, the same counters stay zero.
	cfg2 := buggyEngineConfig(t, 15, 4, "P4C-S-02", "P4C-S-06")
	cfg2.ConcolicOff = true
	e2 := core.NewEngine(cfg2)
	fs2 := e2.Run(context.Background())
	s2 := e2.Stats()
	if s2.TapesCompiled != 0 || s2.ConcolicFalsified != 0 || s2.ConcolicPackets != 0 {
		t.Errorf("ConcolicOff still ran the tape: %+v", s2)
	}
	// ... while the verdicts themselves are invariant.
	if on, off := fingerprintSet(fs), fingerprintSet(fs2); strings.Join(on, "\n") != strings.Join(off, "\n") {
		t.Errorf("finding set depends on the fast path:\non:\n  %s\noff:\n  %s",
			strings.Join(on, "\n  "), strings.Join(off, "\n  "))
	}
}

// TestMismatchReductionReplaysCounterexample: reducing a packet-mismatch
// finding must hit the counterexample-replay fast path — one compile plus
// one injection per candidate — instead of re-running full symbolic test
// generation every time.
func TestMismatchReductionReplaysCounterexample(t *testing.T) {
	cfg := buggyEngineConfig(t, 20, 4, "BMV2-S-01")
	// BMV2-S-01 hides in the BMv2Lowering backend pass, so the defect only
	// arms on the full device pipeline (buggyEngineConfig instruments the
	// mid-end-only default) — and it surfaces as a packet mismatch only in
	// the paper's black-box back-end mode, where translation validation
	// cannot see inside the lowering.
	reg := bugs.Load()
	cfg.Passes = bugs.Instrument(append(compiler.DefaultPasses(), bmv2.BackendPasses()...),
		[]*bugs.Bug{reg.ByID("BMV2-S-01")})
	cfg.PacketTests = true
	cfg.BlackBox = true
	e := core.NewEngine(cfg)
	fs := e.Run(context.Background())
	var mismatches int
	for _, f := range fs {
		if f.Kind == core.FindingMismatch {
			mismatches++
		}
	}
	if mismatches == 0 {
		t.Fatalf("no mismatch findings from seeded device defect (findings: %v)", fingerprintSet(fs))
	}
	s := e.Stats()
	if s.CexReplayHits == 0 {
		t.Errorf("mismatch reduction never replayed the cached counterexample (predicate calls: %d)",
			s.ReducePredicateCalls)
	}
	if s.SolverCallsAvoided < s.CexReplayHits {
		t.Errorf("SolverCallsAvoided=%d < CexReplayHits=%d", s.SolverCallsAvoided, s.CexReplayHits)
	}
}

// TestMiscompilationReductionUsesHints: reducing a miscompilation must
// replay the finding's counterexample as a concolic hint — candidates
// that still fail on the original distinguishing input are decided by one
// tape packet.
func TestMiscompilationReductionUsesHints(t *testing.T) {
	cfg := buggyEngineConfig(t, 15, 4, "P4C-S-02")
	e := core.NewEngine(cfg)
	fs := e.Run(context.Background())
	var miscompiles int
	for _, f := range fs {
		if f.Kind == core.FindingMiscompilation {
			miscompiles++
		}
	}
	if miscompiles == 0 {
		t.Fatalf("no miscompilation findings (findings: %v)", fingerprintSet(fs))
	}
	s := e.Stats()
	if s.ReducePredicateCalls == 0 {
		t.Fatal("reducer never ran")
	}
	if s.CexReplayHits == 0 {
		t.Errorf("reduction predicates never hit the hint-replay fast path: %+v calls=%d",
			s.CexReplayHits, s.ReducePredicateCalls)
	}
}
