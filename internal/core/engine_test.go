package core_test

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"gauntlet/internal/bugs"
	"gauntlet/internal/compiler"
	"gauntlet/internal/core"
	"gauntlet/internal/p4/parser"
	"gauntlet/internal/p4/types"
	"gauntlet/internal/reduce"
)

// buggyEngineConfig builds an engine over the default pass pipeline
// instrumented with the named seeded defects.
func buggyEngineConfig(t *testing.T, seeds int64, workers int, ids ...string) core.EngineConfig {
	t.Helper()
	reg := bugs.Load()
	var active []*bugs.Bug
	for _, id := range ids {
		b := reg.ByID(id)
		if b == nil {
			t.Fatalf("registry has no bug %s", id)
		}
		active = append(active, b)
	}
	cfg := core.DefaultEngineConfig()
	cfg.Seeds = seeds
	cfg.Workers = workers
	cfg.Passes = bugs.Instrument(compiler.DefaultPasses(), active)
	cfg.ReduceOpts = reduce.Options{MaxRounds: 3, MaxPredicateCalls: 300}
	return cfg
}

func fingerprintSet(fs []core.Finding) []string {
	var out []string
	for _, f := range fs {
		out = append(out, fmt.Sprintf("%s/%s/%016x", f.Kind, f.Pass, f.Fingerprint))
	}
	sort.Strings(out)
	return out
}

// TestEngineDeterminism: the unique-finding set over a fixed seed range
// must not depend on the worker count — workers isolate all mutable state
// and share only deterministic caches, so any interleaving converges to
// the same fingerprints.
func TestEngineDeterminism(t *testing.T) {
	ids := []string{"P4C-C-04", "P4C-C-13", "P4C-S-02"}
	run := func(workers int) []string {
		e := core.NewEngine(buggyEngineConfig(t, 15, workers, ids...))
		return fingerprintSet(e.Run(context.Background()))
	}
	sequential := run(1)
	parallel := run(8)
	if len(sequential) == 0 {
		t.Fatal("no findings: the seeded defects should fire within 15 seeds")
	}
	if strings.Join(sequential, "\n") != strings.Join(parallel, "\n") {
		t.Errorf("finding set differs between workers=1 and workers=8:\nworkers=1:\n  %s\nworkers=8:\n  %s",
			strings.Join(sequential, "\n  "), strings.Join(parallel, "\n  "))
	}
}

// TestEngineDedupAndReduce: many seeds tripping the same assertion must
// collapse to one finding (crash fingerprints are (pass, message)), and
// its witness must come out of the auto-reducer smaller.
func TestEngineDedupAndReduce(t *testing.T) {
	e := core.NewEngine(buggyEngineConfig(t, 20, 4, "P4C-C-04"))
	fs := e.Run(context.Background())
	s := e.Stats()
	if s.Crashes < 2 {
		t.Fatalf("expected several crashing seeds, got %d", s.Crashes)
	}
	if len(fs) != 1 {
		t.Fatalf("expected 1 unique finding after dedup, got %d", len(fs))
	}
	if s.Duplicates != s.Crashes-1 {
		t.Errorf("duplicates = %d, want %d (crashes-1)", s.Duplicates, s.Crashes-1)
	}
	f := fs[0]
	if f.Kind != core.FindingCrash || f.Pass != "TypeChecking" {
		t.Errorf("finding = %s in %s, want crash in TypeChecking", f.Kind, f.Pass)
	}
	if f.SizeAfter >= f.SizeBefore {
		t.Errorf("witness not reduced: %d -> %d statements", f.SizeBefore, f.SizeAfter)
	}
	if f.Source == "" || f.Program == nil {
		t.Error("finding carries no witness")
	}
	// The reduced witness must still trigger the same crash through the
	// shared oracle.
	out := e.Oracle().Examine(context.Background(), f.Program)
	if out.Crash == nil || out.Crash.Pass != f.Pass {
		t.Errorf("reduced witness no longer crashes the pass (outcome %+v)", out)
	}
	// Findings must be JSONL-serializable with a stable kind string.
	line, err := json.Marshal(f)
	if err != nil {
		t.Fatalf("marshal finding: %v", err)
	}
	if !strings.Contains(string(line), `"kind":"crash"`) {
		t.Errorf("JSONL line missing kind: %s", line)
	}
}

// TestEngineCancellation: cancelling an unbounded run mid-stream must
// terminate Run promptly and leak no goroutines (run under -race in CI).
func TestEngineCancellation(t *testing.T) {
	before := runtime.NumGoroutine()
	cfg := buggyEngineConfig(t, 0 /* unbounded */, 4, "P4C-C-04", "P4C-S-02")
	ctx, cancel := context.WithCancel(context.Background())
	e := core.NewEngine(cfg)
	done := make(chan []core.Finding, 1)
	go func() { done <- e.Run(ctx) }()
	time.Sleep(150 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Run did not return within 30s of cancellation")
	}
	// Goroutines wind down asynchronously after Run returns; poll.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+1 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d before, %d after cancel\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(50 * time.Millisecond)
	}
	if g := e.Stats().Generated; g == 0 {
		t.Error("engine generated nothing before cancellation")
	}
}

// TestHuntMatchesSharedOracle pins Campaign.Hunt to the shared oracle
// stage: examining a bug's witness through Campaign.OracleFor must agree
// with Hunt's detection verdict and technique, for every platform ×
// technique combination.
func TestHuntMatchesSharedOracle(t *testing.T) {
	reg := bugs.Load()
	c := core.NewCampaign()
	samples := []struct {
		id   string
		tech core.Technique
	}{
		{"P4C-C-01", core.CrashHunt},
		{"P4C-S-06", core.TranslationValidation},
		{"BMV2-S-01", core.SymbolicExecution},
		{"TOF-C-01", core.CrashHunt},
		{"TOF-S-01", core.SymbolicExecution},
	}
	for _, s := range samples {
		b := reg.ByID(s.id)
		if b == nil {
			t.Fatalf("registry has no bug %s", s.id)
		}
		prog, err := parser.Parse(b.Witness)
		if err != nil {
			t.Fatalf("%s: %v", s.id, err)
		}
		if err := types.Check(prog); err != nil {
			t.Fatalf("%s: %v", s.id, err)
		}
		out := c.OracleFor(b).Examine(context.Background(), prog)
		det, err := c.Hunt(b)
		if err != nil {
			t.Fatalf("%s: hunt: %v", s.id, err)
		}
		if !det.Detected || !out.Finding() {
			t.Errorf("%s: hunt detected=%v, oracle finding=%v — want both true", s.id, det.Detected, out.Finding())
			continue
		}
		var oracleTech core.Technique
		switch {
		case out.Crash != nil:
			oracleTech = core.CrashHunt
		case len(out.Failures) > 0:
			oracleTech = core.TranslationValidation
		case len(out.Mismatches) > 0:
			oracleTech = core.SymbolicExecution
		}
		if oracleTech != det.Technique || det.Technique != s.tech {
			t.Errorf("%s: oracle says %s, hunt says %s, want %s", s.id, oracleTech, det.Technique, s.tech)
		}
	}
}

// mutatingEngineConfig builds a corpus-mode engine config: seeded
// defects, a small sync interval so mutation kicks in after the first
// round, and a fixed master seed.
func mutatingEngineConfig(t *testing.T, seeds int64, workers int, masterSeed int64) core.EngineConfig {
	cfg := buggyEngineConfig(t, seeds, workers, "P4C-C-04", "P4C-C-13", "P4C-S-02")
	cfg.Seed = masterSeed
	cfg.MutateRatio = 0.5
	cfg.SyncInterval = 8
	return cfg
}

// TestEngineMutationDeterminism: with a fixed master seed, the
// unique-finding set AND the final corpus coverage-fingerprint set must
// be identical across worker counts — the round-fold barrier makes the
// feedback loop a pure function of the configuration. Run under -race in
// CI.
func TestEngineMutationDeterminism(t *testing.T) {
	type result struct {
		findings []string
		corpus   []uint64
		mutated  uint64
	}
	run := func(workers int) result {
		e := core.NewEngine(mutatingEngineConfig(t, 40, workers, 7))
		fs := e.Run(context.Background())
		return result{
			findings: fingerprintSet(fs),
			corpus:   e.Corpus().Fingerprints(),
			mutated:  e.Stats().Mutated,
		}
	}
	sequential := run(1)
	parallel := run(8)
	if sequential.mutated == 0 {
		t.Fatal("no mutated programs: the corpus feedback loop never engaged")
	}
	if len(sequential.findings) == 0 {
		t.Fatal("no findings: the seeded defects should fire within 40 slots")
	}
	if strings.Join(sequential.findings, "\n") != strings.Join(parallel.findings, "\n") {
		t.Errorf("finding set differs between workers=1 and workers=8:\nworkers=1:\n  %s\nworkers=8:\n  %s",
			strings.Join(sequential.findings, "\n  "), strings.Join(parallel.findings, "\n  "))
	}
	if fmt.Sprint(sequential.corpus) != fmt.Sprint(parallel.corpus) {
		t.Errorf("corpus fingerprint set differs between workers=1 and workers=8:\nworkers=1: %x\nworkers=8: %x",
			sequential.corpus, parallel.corpus)
	}
	if sequential.mutated != parallel.mutated {
		t.Errorf("mutation schedule differs: %d vs %d mutated programs", sequential.mutated, parallel.mutated)
	}
}

// TestEngineSeedReproducibility: the same master -seed replays the whole
// run — schedule, findings, corpus — and a different seed yields a
// different mutation schedule stream (the flag actually steers).
func TestEngineSeedReproducibility(t *testing.T) {
	run := func(masterSeed int64) ([]string, []uint64) {
		e := core.NewEngine(mutatingEngineConfig(t, 30, 4, masterSeed))
		fs := e.Run(context.Background())
		return fingerprintSet(fs), e.Corpus().Fingerprints()
	}
	f1, c1 := run(11)
	f2, c2 := run(11)
	if strings.Join(f1, "\n") != strings.Join(f2, "\n") {
		t.Errorf("same -seed, different findings:\nrun1:\n  %s\nrun2:\n  %s",
			strings.Join(f1, "\n  "), strings.Join(f2, "\n  "))
	}
	if fmt.Sprint(c1) != fmt.Sprint(c2) {
		t.Errorf("same -seed, different corpus:\nrun1: %x\nrun2: %x", c1, c2)
	}
}

// TestEngineCorpusStats: corpus-mode accounting — every slot still yields
// exactly one program, mutation engages, admission tracks coverage, and
// the summary renders the corpus line.
func TestEngineCorpusStats(t *testing.T) {
	e := core.NewEngine(mutatingEngineConfig(t, 40, 4, 3))
	e.Run(context.Background())
	s := e.Stats()
	if s.Generated != 40 {
		t.Errorf("generated = %d, want 40 (every slot yields one program)", s.Generated)
	}
	if s.Mutated == 0 {
		t.Error("no mutated programs despite mutate-ratio 0.5")
	}
	if s.Mutated >= s.Generated {
		t.Errorf("mutated = %d of %d: fresh generation starved", s.Mutated, s.Generated)
	}
	if s.Crashes+s.InvalidTransforms+s.CompileErrors+s.Compiled != s.Generated {
		t.Errorf("compile stage accounting broken: %+v", s)
	}
	if s.Corpus.Admitted == 0 {
		t.Error("no corpus admissions over 40 programs")
	}
	if s.Corpus.Admitted+s.Corpus.Rejected != s.Generated {
		t.Errorf("admission accounting: %d admitted + %d rejected != %d generated",
			s.Corpus.Admitted, s.Corpus.Rejected, s.Generated)
	}
	if s.Corpus.Edges == 0 || s.Corpus.Fingerprints == 0 {
		t.Errorf("coverage counters empty: %+v", s.Corpus)
	}
	if s.Corpus.Seeds == 0 || s.Corpus.Seeds != e.Corpus().Len() {
		t.Errorf("corpus size mismatch: stats %d vs corpus %d", s.Corpus.Seeds, e.Corpus().Len())
	}
	if !strings.Contains(s.Summary(), "corpus:") {
		t.Errorf("summary missing corpus line:\n%s", s.Summary())
	}
}

// TestEngineCorpusPersistence: a corpus saved from one run primes the
// next — loaded seeds pass the admission gate again and mutation can
// engage from slot 0 of the second run.
func TestEngineCorpusPersistence(t *testing.T) {
	dir := t.TempDir()
	first := core.NewEngine(mutatingEngineConfig(t, 24, 4, 5))
	first.Run(context.Background())
	if first.Corpus().Len() == 0 {
		t.Fatal("first run admitted nothing")
	}
	if _, err := first.Corpus().Save(dir); err != nil {
		t.Fatal(err)
	}

	cfg := mutatingEngineConfig(t, 8, 4, 5)
	cfg.Corpus = nil
	cfg.MaxCorpus = 64
	pre := core.NewEngine(cfg)
	n, err := pre.Corpus().Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("nothing loaded from the saved corpus")
	}
	pre.Run(context.Background())
	if got := pre.Stats().Mutated; got == 0 {
		t.Error("pre-loaded corpus did not enable mutation in the first round")
	}
}

// TestEngineStats: the snapshot must account for every generated program
// and surface the shared-cache and interner observability counters.
func TestEngineStats(t *testing.T) {
	cfg := buggyEngineConfig(t, 10, 4, "P4C-C-04")
	var streamed int
	cfg.OnFinding = func(core.Finding) { streamed++ }
	e := core.NewEngine(cfg)
	fs := e.Run(context.Background())
	s := e.Stats()
	if s.Generated != 10 {
		t.Errorf("generated = %d, want 10", s.Generated)
	}
	if s.Crashes+s.InvalidTransforms+s.CompileErrors+s.Compiled != s.Generated {
		t.Errorf("compile stage accounting: %d crashes + %d invalid + %d errs + %d compiled != %d generated",
			s.Crashes, s.InvalidTransforms, s.CompileErrors, s.Compiled, s.Generated)
	}
	if s.Clean+s.Miscompilations+s.Mismatches+s.OracleErrors != s.Compiled {
		t.Errorf("oracle stage accounting: %d clean + %d misc + %d mismatch + %d errs != %d compiled",
			s.Clean, s.Miscompilations, s.Mismatches, s.OracleErrors, s.Compiled)
	}
	if s.UniqueFindings != uint64(len(fs)) || streamed != len(fs) {
		t.Errorf("unique=%d, streamed=%d, returned=%d — want equal", s.UniqueFindings, streamed, len(fs))
	}
	if s.Interner.Entries == 0 || s.Interner.BytesEstimate == 0 || s.Interner.Shards == 0 {
		t.Errorf("interner stats empty: %+v", s.Interner)
	}
	// Crash-family reduction predicates are compile-only (the fast path),
	// so validation counters move only when some program reaches the
	// oracle stage.
	if s.Compiled > 0 && s.BlockHits+s.BlockMisses == 0 {
		t.Error("validation cache counters empty despite miscompilation-free compiles")
	}
	if s.Compiled == 0 && s.BlockHits+s.BlockMisses != 0 {
		t.Error("crash-only run touched the validation cache: reduction fast path not taken")
	}
	if s.Elapsed <= 0 || s.ProgramsPerSec <= 0 {
		t.Errorf("throughput not measured: elapsed=%v rate=%f", s.Elapsed, s.ProgramsPerSec)
	}
	if !strings.Contains(s.Summary(), "programs:") {
		t.Errorf("summary malformed:\n%s", s.Summary())
	}
}
