package core_test

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"gauntlet/internal/bugs"
	"gauntlet/internal/compiler"
	"gauntlet/internal/core"
	"gauntlet/internal/p4/parser"
	"gauntlet/internal/p4/types"
	"gauntlet/internal/reduce"
)

// buggyEngineConfig builds an engine over the default pass pipeline
// instrumented with the named seeded defects.
func buggyEngineConfig(t *testing.T, seeds int64, workers int, ids ...string) core.EngineConfig {
	t.Helper()
	reg := bugs.Load()
	var active []*bugs.Bug
	for _, id := range ids {
		b := reg.ByID(id)
		if b == nil {
			t.Fatalf("registry has no bug %s", id)
		}
		active = append(active, b)
	}
	cfg := core.DefaultEngineConfig()
	cfg.Seeds = seeds
	cfg.Workers = workers
	cfg.Passes = bugs.Instrument(compiler.DefaultPasses(), active)
	cfg.ReduceOpts = reduce.Options{MaxRounds: 3, MaxPredicateCalls: 300}
	return cfg
}

func fingerprintSet(fs []core.Finding) []string {
	var out []string
	for _, f := range fs {
		out = append(out, fmt.Sprintf("%s/%s/%016x", f.Kind, f.Pass, f.Fingerprint))
	}
	sort.Strings(out)
	return out
}

// TestEngineDeterminism: the unique-finding set over a fixed seed range
// must not depend on the worker count — workers isolate all mutable state
// and share only deterministic caches, so any interleaving converges to
// the same fingerprints.
func TestEngineDeterminism(t *testing.T) {
	ids := []string{"P4C-C-04", "P4C-C-13", "P4C-S-02"}
	run := func(workers int) []string {
		e := core.NewEngine(buggyEngineConfig(t, 15, workers, ids...))
		return fingerprintSet(e.Run(context.Background()))
	}
	sequential := run(1)
	parallel := run(8)
	if len(sequential) == 0 {
		t.Fatal("no findings: the seeded defects should fire within 15 seeds")
	}
	if strings.Join(sequential, "\n") != strings.Join(parallel, "\n") {
		t.Errorf("finding set differs between workers=1 and workers=8:\nworkers=1:\n  %s\nworkers=8:\n  %s",
			strings.Join(sequential, "\n  "), strings.Join(parallel, "\n  "))
	}
}

// TestEngineDedupAndReduce: many seeds tripping the same assertion must
// collapse to one finding (crash fingerprints are (pass, message)), and
// its witness must come out of the auto-reducer smaller.
func TestEngineDedupAndReduce(t *testing.T) {
	e := core.NewEngine(buggyEngineConfig(t, 20, 4, "P4C-C-04"))
	fs := e.Run(context.Background())
	s := e.Stats()
	if s.Crashes < 2 {
		t.Fatalf("expected several crashing seeds, got %d", s.Crashes)
	}
	if len(fs) != 1 {
		t.Fatalf("expected 1 unique finding after dedup, got %d", len(fs))
	}
	if s.Duplicates != s.Crashes-1 {
		t.Errorf("duplicates = %d, want %d (crashes-1)", s.Duplicates, s.Crashes-1)
	}
	f := fs[0]
	if f.Kind != core.FindingCrash || f.Pass != "TypeChecking" {
		t.Errorf("finding = %s in %s, want crash in TypeChecking", f.Kind, f.Pass)
	}
	if f.SizeAfter >= f.SizeBefore {
		t.Errorf("witness not reduced: %d -> %d statements", f.SizeBefore, f.SizeAfter)
	}
	if f.Source == "" || f.Program == nil {
		t.Error("finding carries no witness")
	}
	// The reduced witness must still trigger the same crash through the
	// shared oracle.
	out := e.Oracle().Examine(context.Background(), f.Program)
	if out.Crash == nil || out.Crash.Pass != f.Pass {
		t.Errorf("reduced witness no longer crashes the pass (outcome %+v)", out)
	}
	// Findings must be JSONL-serializable with a stable kind string.
	line, err := json.Marshal(f)
	if err != nil {
		t.Fatalf("marshal finding: %v", err)
	}
	if !strings.Contains(string(line), `"kind":"crash"`) {
		t.Errorf("JSONL line missing kind: %s", line)
	}
}

// TestEngineCancellation: cancelling an unbounded run mid-stream must
// terminate Run promptly and leak no goroutines (run under -race in CI).
func TestEngineCancellation(t *testing.T) {
	before := runtime.NumGoroutine()
	cfg := buggyEngineConfig(t, 0 /* unbounded */, 4, "P4C-C-04", "P4C-S-02")
	ctx, cancel := context.WithCancel(context.Background())
	e := core.NewEngine(cfg)
	done := make(chan []core.Finding, 1)
	go func() { done <- e.Run(ctx) }()
	time.Sleep(150 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Run did not return within 30s of cancellation")
	}
	// Goroutines wind down asynchronously after Run returns; poll.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+1 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d before, %d after cancel\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(50 * time.Millisecond)
	}
	if g := e.Stats().Generated; g == 0 {
		t.Error("engine generated nothing before cancellation")
	}
}

// TestHuntMatchesSharedOracle pins Campaign.Hunt to the shared oracle
// stage: examining a bug's witness through Campaign.OracleFor must agree
// with Hunt's detection verdict and technique, for every platform ×
// technique combination.
func TestHuntMatchesSharedOracle(t *testing.T) {
	reg := bugs.Load()
	c := core.NewCampaign()
	samples := []struct {
		id   string
		tech core.Technique
	}{
		{"P4C-C-01", core.CrashHunt},
		{"P4C-S-06", core.TranslationValidation},
		{"BMV2-S-01", core.SymbolicExecution},
		{"TOF-C-01", core.CrashHunt},
		{"TOF-S-01", core.SymbolicExecution},
	}
	for _, s := range samples {
		b := reg.ByID(s.id)
		if b == nil {
			t.Fatalf("registry has no bug %s", s.id)
		}
		prog, err := parser.Parse(b.Witness)
		if err != nil {
			t.Fatalf("%s: %v", s.id, err)
		}
		if err := types.Check(prog); err != nil {
			t.Fatalf("%s: %v", s.id, err)
		}
		out := c.OracleFor(b).Examine(context.Background(), prog)
		det, err := c.Hunt(b)
		if err != nil {
			t.Fatalf("%s: hunt: %v", s.id, err)
		}
		if !det.Detected || !out.Finding() {
			t.Errorf("%s: hunt detected=%v, oracle finding=%v — want both true", s.id, det.Detected, out.Finding())
			continue
		}
		var oracleTech core.Technique
		switch {
		case out.Crash != nil:
			oracleTech = core.CrashHunt
		case len(out.Failures) > 0:
			oracleTech = core.TranslationValidation
		case len(out.Mismatches) > 0:
			oracleTech = core.SymbolicExecution
		}
		if oracleTech != det.Technique || det.Technique != s.tech {
			t.Errorf("%s: oracle says %s, hunt says %s, want %s", s.id, oracleTech, det.Technique, s.tech)
		}
	}
}

// TestEngineStats: the snapshot must account for every generated program
// and surface the shared-cache and interner observability counters.
func TestEngineStats(t *testing.T) {
	cfg := buggyEngineConfig(t, 10, 4, "P4C-C-04")
	var streamed int
	cfg.OnFinding = func(core.Finding) { streamed++ }
	e := core.NewEngine(cfg)
	fs := e.Run(context.Background())
	s := e.Stats()
	if s.Generated != 10 {
		t.Errorf("generated = %d, want 10", s.Generated)
	}
	if s.Crashes+s.InvalidTransforms+s.CompileErrors+s.Compiled != s.Generated {
		t.Errorf("compile stage accounting: %d crashes + %d invalid + %d errs + %d compiled != %d generated",
			s.Crashes, s.InvalidTransforms, s.CompileErrors, s.Compiled, s.Generated)
	}
	if s.Clean+s.Miscompilations+s.Mismatches+s.OracleErrors != s.Compiled {
		t.Errorf("oracle stage accounting: %d clean + %d misc + %d mismatch + %d errs != %d compiled",
			s.Clean, s.Miscompilations, s.Mismatches, s.OracleErrors, s.Compiled)
	}
	if s.UniqueFindings != uint64(len(fs)) || streamed != len(fs) {
		t.Errorf("unique=%d, streamed=%d, returned=%d — want equal", s.UniqueFindings, streamed, len(fs))
	}
	if s.Interner.Entries == 0 || s.Interner.BytesEstimate == 0 || s.Interner.Shards == 0 {
		t.Errorf("interner stats empty: %+v", s.Interner)
	}
	if s.BlockHits+s.BlockMisses == 0 {
		t.Error("validation cache counters empty despite miscompilation-free compiles")
	}
	if s.Elapsed <= 0 || s.ProgramsPerSec <= 0 {
		t.Errorf("throughput not measured: elapsed=%v rate=%f", s.Elapsed, s.ProgramsPerSec)
	}
	if !strings.Contains(s.Summary(), "programs:") {
		t.Errorf("summary malformed:\n%s", s.Summary())
	}
}
