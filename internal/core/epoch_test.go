package core_test

import (
	"context"
	"runtime"
	"strings"
	"testing"
	"time"

	"gauntlet/internal/core"
	"gauntlet/internal/smt"
	"gauntlet/internal/validate"
)

// TestEngineEpochDeterminism is the tentpole invariant: the unique
// finding set over a fixed seed budget is identical whether the run is
// one epoch or many, at any worker count. Epoch rotation replaces the
// interner/simplify/verdict caches wholesale, and caches must only ever
// change cost, never verdicts — a fresh cache recomputes the same
// deterministic answers. Run under -race in CI.
func TestEngineEpochDeterminism(t *testing.T) {
	ids := []string{"P4C-C-04", "P4C-C-13", "P4C-S-02"}
	run := func(workers, epochPrograms int) []string {
		cfg := buggyEngineConfig(t, 24, workers, ids...)
		cfg.Seed = 11
		cfg.MutateRatio = 0.5
		cfg.SyncInterval = 8
		cfg.EpochPrograms = epochPrograms
		return fingerprintSet(core.NewEngine(cfg).Run(context.Background()))
	}
	ref := run(1, 0) // single epoch, sequential
	if len(ref) == 0 {
		t.Fatal("no findings: the seeded defects should fire within 24 seeds")
	}
	for _, workers := range []int{1, 8} {
		for _, epochs := range []int{0, 8, 24} {
			if workers == 1 && epochs == 0 {
				continue
			}
			got := run(workers, epochs)
			if strings.Join(got, "\n") != strings.Join(ref, "\n") {
				t.Errorf("finding set differs at workers=%d epoch-programs=%d:\nref:\n  %s\ngot:\n  %s",
					workers, epochs, strings.Join(ref, "\n  "), strings.Join(got, "\n  "))
			}
		}
	}
}

// TestEngineEpochRotationBoundsMemory runs three epochs and checks the
// serve-mode memory story: every epoch retires with its own bounded
// context (entries comparable to its predecessor's, not accumulating),
// the engine's live interner snapshot is the current epoch's only, and
// the per-epoch stats surface through Stats and OnEpoch.
func TestEngineEpochRotationBoundsMemory(t *testing.T) {
	var epochs []core.EpochStats
	cfg := buggyEngineConfig(t, 48, 4, "P4C-S-02")
	cfg.Seed = 5
	cfg.SyncInterval = 8
	cfg.EpochPrograms = 16
	cfg.OnEpoch = func(es core.EpochStats) { epochs = append(epochs, es) }
	e := core.NewEngine(cfg)
	e.Run(context.Background())

	// Reference: the same run without rotation accumulates every term in
	// one context.
	refCfg := buggyEngineConfig(t, 48, 4, "P4C-S-02")
	refCfg.Seed = 5
	refCfg.SyncInterval = 8
	ref := core.NewEngine(refCfg)
	ref.Run(context.Background())

	if len(epochs) < 2 {
		t.Fatalf("expected at least 2 retired epochs over 48 programs at 16/epoch, got %d", len(epochs))
	}
	for i, es := range epochs {
		if es.Index != i {
			t.Errorf("epoch %d reported index %d", i, es.Index)
		}
		if es.Programs == 0 || es.Programs%uint64(cfg.SyncInterval) != 0 {
			t.Errorf("epoch %d folded %d programs: rotation not aligned to the SyncInterval fold", i, es.Programs)
		}
		if es.Context.Interner.Entries == 0 || es.Context.Interner.BytesEstimate == 0 {
			t.Errorf("epoch %d retired with an empty context: %+v", i, es.Context.Interner)
		}
	}
	// Steady state: a later epoch must not accumulate the earlier ones.
	// (Workload noise is real, so the bound here is loose — the CI bench
	// gate enforces the 15% plateau on the fixed benchmark workload.)
	first, last := epochs[0].Context.Interner.Entries, epochs[len(epochs)-1].Context.Interner.Entries
	if last > 3*first {
		t.Errorf("per-epoch interner grew %d → %d entries: rotation is not bounding memory", first, last)
	}
	s := e.Stats()
	if s.Epoch != len(epochs) {
		t.Errorf("Stats.Epoch = %d, want %d (current epoch after %d rotations)", s.Epoch, len(epochs), len(epochs))
	}
	// The rotating run's live interner holds only the current epoch's
	// terms; the non-rotating reference holds the whole run's. (The last
	// epoch also absorbs the tail reduction workload, so compare against
	// the true cumulative run, not against earlier epochs.)
	if live, total := s.Interner.Entries, ref.Stats().Interner.Entries; live >= total {
		t.Errorf("rotating run's live interner (%d entries) is no smaller than the non-rotating run's (%d)", live, total)
	}
	// Cumulative cache counters must survive rotation (no stats reset).
	var retiredVerdicts uint64
	for _, es := range epochs {
		retiredVerdicts += es.Cache.VerdictHits + es.Cache.VerdictMisses
	}
	if s.VerdictHits+s.VerdictMisses < retiredVerdicts {
		t.Errorf("cumulative verdict counters (%d) lost retired epochs' share (%d)",
			s.VerdictHits+s.VerdictMisses, retiredVerdicts)
	}
}

// TestEngineEpochDrainNoLeaks cancels an unbounded rotating run
// mid-stream (the serve mode's SIGTERM path) and checks that Run drains
// without leaking goroutines — rotation must not strand a stage on a
// retired epoch. Run under -race in CI.
func TestEngineEpochDrainNoLeaks(t *testing.T) {
	before := runtime.NumGoroutine()
	cfg := buggyEngineConfig(t, 0 /* unbounded */, 4, "P4C-C-04", "P4C-S-02")
	cfg.Seed = 3
	cfg.MutateRatio = 0.5
	cfg.SyncInterval = 8
	cfg.EpochPrograms = 16
	ctx, cancel := context.WithCancel(context.Background())
	e := core.NewEngine(cfg)
	done := make(chan []core.Finding, 1)
	go func() { done <- e.Run(ctx) }()
	// Let it run long enough to rotate at least once, then drain.
	deadline := time.Now().Add(20 * time.Second)
	for e.Stats().Epoch == 0 && time.Now().Before(deadline) {
		time.Sleep(25 * time.Millisecond)
	}
	rotated := e.Stats().Epoch > 0
	cancel()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Run did not return within 30s of cancellation")
	}
	if !rotated {
		t.Error("engine never rotated an epoch before the drain")
	}
	waitDeadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+1 {
			break
		}
		if time.Now().After(waitDeadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d before, %d after drain\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestEngineEnergyBumpDeterminism: dynamic corpus energy (bumps folded at
// round boundaries) must keep the whole run — findings and corpus alike —
// a pure function of the master seed, independent of worker count.
func TestEngineEnergyBumpDeterminism(t *testing.T) {
	run := func(workers int) ([]string, []uint64, uint64) {
		cfg := buggyEngineConfig(t, 32, workers, "P4C-C-04")
		cfg.Seed = 9
		cfg.MutateRatio = 0.7
		cfg.SyncInterval = 8
		e := core.NewEngine(cfg)
		fs := e.Run(context.Background())
		return fingerprintSet(fs), e.Corpus().Fingerprints(), e.Stats().Corpus.Bumps
	}
	f1, c1, b1 := run(1)
	f8, c8, b8 := run(8)
	if strings.Join(f1, "\n") != strings.Join(f8, "\n") {
		t.Errorf("finding set differs across worker counts with dynamic energy enabled")
	}
	if len(c1) != len(c8) {
		t.Fatalf("corpus size differs: %d vs %d seeds", len(c1), len(c8))
	}
	for i := range c1 {
		if c1[i] != c8[i] {
			t.Fatalf("corpus fingerprint %d differs: %016x vs %016x", i, c1[i], c8[i])
		}
	}
	if b1 != b8 {
		t.Errorf("energy bumps differ across worker counts: %d vs %d", b1, b8)
	}
	if b1 == 0 {
		t.Log("note: no energy bumps fired on this budget (mutants neither admitted nor crashing)")
	}
}

// TestEngineRotationKeepsDefaultContextClean pins the contract the
// memory bound rests on: a rotating engine (EpochPrograms > 0) interns
// every term — variables, generated-program literals, testgen
// preference constants — in its epoch contexts, never in the immortal
// package-default context. Any default-interner growth here is a slow
// serve-mode leak no rotation can reclaim and the per-epoch CI gate
// cannot see.
func TestEngineRotationKeepsDefaultContextClean(t *testing.T) {
	cfg := buggyEngineConfig(t, 24, 4, "P4C-C-04")
	cfg.Seed = 13
	cfg.MutateRatio = 0.5
	cfg.SyncInterval = 8
	cfg.EpochPrograms = 8
	cfg.PacketTests = true
	before := smt.InternerStats().Entries
	core.NewEngine(cfg).Run(context.Background())
	if after := smt.InternerStats().Entries; after != before {
		t.Errorf("rotating engine interned %d terms into the immortal default context", after-before)
	}
}

// TestEngineRejectsSharedCacheWithEpochs pins the config guard: a
// caller-supplied cache cannot survive rotation, so combining it with
// EpochPrograms must fail loudly instead of silently abandoning the
// cache at the first boundary.
func TestEngineRejectsSharedCacheWithEpochs(t *testing.T) {
	cfg := buggyEngineConfig(t, 8, 1, "P4C-C-04")
	cfg.EpochPrograms = 8
	cfg.Cache = validate.NewCache()
	defer func() {
		if recover() == nil {
			t.Fatal("NewEngine accepted EngineConfig.Cache together with EpochPrograms > 0")
		}
	}()
	core.NewEngine(cfg)
}
