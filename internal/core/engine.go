package core

import (
	"context"
	"fmt"
	"hash/fnv"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gauntlet/internal/bugs"
	"gauntlet/internal/compiler"
	"gauntlet/internal/corpus"
	"gauntlet/internal/coverage"
	"gauntlet/internal/generator"
	"gauntlet/internal/mutate"
	"gauntlet/internal/obs"
	"gauntlet/internal/p4/ast"
	"gauntlet/internal/p4/lexer"
	"gauntlet/internal/p4/printer"
	"gauntlet/internal/p4/token"
	"gauntlet/internal/p4/types"
	"gauntlet/internal/reduce"
	"gauntlet/internal/smt"
	"gauntlet/internal/smt/solver"
	"gauntlet/internal/testgen"
	"gauntlet/internal/validate"
)

// FindingKind classifies a fuzzing finding.
type FindingKind int

// Finding kinds, in the order the oracle stages can produce them.
const (
	// FindingCrash is abnormal pass termination (§4).
	FindingCrash FindingKind = iota
	// FindingInvalidTransform is a pass emitting an unparsable program
	// (§7.2, tracked but uncounted).
	FindingInvalidTransform
	// FindingMiscompilation is a translation-validation inequivalence
	// (§5).
	FindingMiscompilation
	// FindingMismatch is a packet test disagreeing with the symbolic
	// expectation (§6).
	FindingMismatch
)

// String renders the kind.
func (k FindingKind) String() string {
	switch k {
	case FindingCrash:
		return "crash"
	case FindingInvalidTransform:
		return "invalid-transform"
	case FindingMiscompilation:
		return "miscompilation"
	default:
		return "packet-mismatch"
	}
}

// MarshalText renders the kind for JSONL finding streams.
func (k FindingKind) MarshalText() ([]byte, error) { return []byte(k.String()), nil }

// UnmarshalText parses the rendered kind back (the journal replay path).
func (k *FindingKind) UnmarshalText(text []byte) error {
	switch string(text) {
	case "crash":
		*k = FindingCrash
	case "invalid-transform":
		*k = FindingInvalidTransform
	case "miscompilation":
		*k = FindingMiscompilation
	case "packet-mismatch":
		*k = FindingMismatch
	default:
		return fmt.Errorf("unknown finding kind %q", text)
	}
	return nil
}

// Finding is one unique bug surfaced by the engine: deduplicated by
// Fingerprint and shrunk by the auto-reducer.
type Finding struct {
	Kind FindingKind `json:"kind"`
	// Seed is the schedule slot that produced the triggering program. For
	// Origin "generate" it doubles as the generator seed; for Origin
	// "mutate" the program came from mutating corpus seeds under the
	// engine's master seed, so reproducing it means replaying the run
	// with the same -seed (or starting from Source directly).
	Seed    int64  `json:"seed"`
	Backend string `json:"backend"`
	// Pass is the crashing pass (crash/invalid kinds) or the failing
	// pass pinpointed by translation validation.
	Pass string `json:"pass,omitempty"`
	// Detail is the human-readable symptom (crash message,
	// counterexample, packet mismatch).
	Detail string `json:"detail"`
	// Fingerprint is the stable dedup key: crash and invalid-transform
	// findings hash (pass, message); miscompilations and mismatches hash
	// (kind, failing pass, printer.Fingerprint of the reduced witness).
	Fingerprint uint64 `json:"fingerprint"`
	// Origin records how the triggering program was produced: "generate"
	// (fresh from the grammar) or "mutate" (corpus mutation).
	Origin string `json:"origin,omitempty"`
	// SizeBefore/SizeAfter are the witness statement counts around
	// reduction (equal when reduction is disabled).
	SizeBefore int `json:"size_before,omitempty"`
	SizeAfter  int `json:"size_after,omitempty"`
	// Source is the printed (reduced) witness program.
	Source string `json:"source,omitempty"`
	// Provenance is the finding's lineage trace: where the triggering
	// program came from and what each pipeline stage spent on it. Always
	// populated by the engine; nil on findings replayed from journals
	// written before the provenance schema existed (the field is
	// additive, so old records parse unchanged).
	Provenance *Provenance `json:"provenance,omitempty"`
	// Program is the (reduced) witness AST.
	Program *ast.Program `json:"-"`

	// crashMsg is the raw panic/reparse message, kept separately from
	// Detail so fingerprints and reduction predicates don't depend on
	// presentation.
	crashMsg string
	// cex is a miscompilation's distinguishing assignment (the validation
	// counterexample). The reduction predicate replays it as a hint — one
	// packet through the candidate's compiled miter tape — so most
	// candidates re-prove the inequivalence without a solver call.
	cex smt.Assignment
	// replay is a mismatch finding's concrete failing test case. The
	// reduction predicate re-injects it (packet + table config, expected
	// output re-derived from the candidate's own formula under the cached
	// model) before falling back to full test generation.
	replay *testgen.Case
	// order is the candidate's position in the canonical release
	// sequence (crash-family findings in (round, slot) order at their
	// round's fold; oracle findings one round late). The report stage
	// re-sequences reduced findings by it, so final dedup — and with it
	// which witness bytes survive — is independent of how long each
	// reduction took.
	order int64
}

// Provenance traces one finding's lineage through the pipeline: the
// schedule position that produced the triggering program, how it was
// materialized, what each heavy stage spent on it, and how its
// equivalence queries were resolved. Wall-clock fields are observation
// only — they vary run to run and carry no determinism contract; the
// schedule fields (Slot, Round, Origin, Mutations) are pure functions
// of the configuration.
type Provenance struct {
	// Slot is the schedule slot (== Finding.Seed); Round is the
	// SyncInterval-aligned admission round it folded in.
	Slot  int64 `json:"slot"`
	Round int64 `json:"round"`
	// Origin is "generate" or "mutate"; Mutations lists the applied
	// mutator names, innermost first, when Origin is "mutate".
	Origin    string   `json:"origin"`
	Mutations []string `json:"mutations,omitempty"`
	// Per-stage wall clock, in nanoseconds, as measured around the
	// supervised stage body (watchdog and fault-injection overhead
	// included — this is the latency an operator would observe).
	GenerateNs int64 `json:"generate_ns"`
	CompileNs  int64 `json:"compile_ns,omitempty"`
	OracleNs   int64 `json:"oracle_ns,omitempty"`
	ReduceNs   int64 `json:"reduce_ns,omitempty"`
	// Reduction accounting for this finding (see Stats for the global
	// definitions): serial-equivalent candidates consumed, speculative
	// probes launched, and probes whose results were discarded.
	ReduceSerialCalls    int `json:"reduce_serial_calls,omitempty"`
	ReduceProbesLaunched int `json:"reduce_probes_launched,omitempty"`
	ReduceProbesWasted   int `json:"reduce_probes_wasted,omitempty"`
	// QueryTiers counts the triggering program's oracle-stage
	// equivalence queries by the solver-stack tier that resolved them
	// (validate.Tier* names).
	QueryTiers map[string]uint64 `json:"query_tiers,omitempty"`
}

// EngineConfig parameterizes one streaming fuzzing run.
type EngineConfig struct {
	// StartSeed is the first generator seed; Seeds is how many to try
	// (0 = unbounded, run until the context is cancelled).
	StartSeed int64
	Seeds     int64
	// Seed is the master schedule seed: it drives the generate-vs-mutate
	// split, corpus seed selection and every mutation's rand stream, so a
	// whole engine run — findings and final corpus alike — replays
	// identically for the same Seed, worker count notwithstanding.
	// (Fresh program generation stays keyed by the per-slot seed, as
	// before.)
	Seed int64
	// MutateRatio is the fraction of programs drawn by mutating corpus
	// seeds instead of fresh grammar generation (0 = pure generation;
	// mutation also requires a non-empty corpus, so early rounds always
	// generate).
	MutateRatio float64
	// MaxMutations bounds how many mutators stack on one program
	// (0 = default 3).
	MaxMutations int
	// SyncInterval is the corpus admission round size: coverage results
	// are folded into the corpus in canonical slot order every
	// SyncInterval programs, and mutation schedules for a round draw only
	// on the corpus as of the previous fold. That barrier is what keeps
	// the feedback loop deterministic across worker counts; it must not
	// depend on Workers (0 = default 32).
	SyncInterval int
	// Corpus is the seed pool (nil = a fresh one sized MaxCorpus). Pass a
	// pre-loaded corpus to resume from a saved -corpus directory.
	Corpus *corpus.Corpus
	// MaxCorpus caps a fresh corpus (0 = corpus.DefaultMaxSeeds); ignored
	// when Corpus is set.
	MaxCorpus int
	// Workers sizes each heavy stage's worker pool (0 = GOMAXPROCS).
	Workers int
	// Backend selects the generator skeleton and the reference pass
	// pipeline (V1Model → BMv2 backend passes, TNA → Tofino).
	Backend generator.Backend
	// Generate overrides program generation (default:
	// generator.Generate(generator.DefaultConfig(seed)) with Backend).
	Generate func(seed int64) *ast.Program
	// Passes overrides the pass pipeline under test (tests instrument
	// seeded defects here). Default: the reference pipeline for Backend.
	Passes []compiler.Pass
	// MaxConflicts bounds every solver call.
	MaxConflicts int
	// TestOpts configures packet-test generation.
	TestOpts testgen.Options
	// PacketTests enables the symbolic-execution packet-test oracle in
	// addition to translation validation (which is on unless BlackBox).
	PacketTests bool
	// BlackBox disables translation validation, treating the whole
	// pipeline as opaque — the paper's back-end campaign mode, where the
	// only observable is packet behavior (§6). Defects then surface as
	// packet mismatches instead of pass-pinpointed miscompilations;
	// combine with PacketTests or no semantic oracle runs at all.
	BlackBox bool
	// ConcolicOff disables the bit-parallel concrete fast path end to
	// end: no tape falsification or hint replay under equivalence queries
	// and no concrete-trace steering in test generation — every verdict
	// goes straight to the solver, every suite enumerates in static
	// order (the PR 3–6 behavior). The finding set must be byte-identical
	// either way; this switch exists for that proof and for bisection.
	ConcolicOff bool
	// Reduce enables automatic witness shrinking of unique findings;
	// ReduceOpts bounds each reduction (its predicate re-runs the
	// oracle, so MaxPredicateCalls is the real budget).
	// ReduceOpts.Parallelism is the speculative probe window per finding
	// (0 = Workers); the engine installs a shared gate sized Workers so
	// concurrent reductions cannot oversubscribe the pool, and the
	// reduced witness set is byte-identical at any width (serial commit
	// order, serial-equivalent budgets).
	Reduce     bool
	ReduceOpts reduce.Options
	// MaxReducePerPass bounds how many semantic candidates per
	// (kind, failing pass) enter the reducer (0 = default 64). Semantic
	// findings can only be deduplicated after reduction, so a single hot
	// defect firing on most seeds would otherwise turn the pipeline into
	// a reducer farm; candidates beyond the cap are dropped as
	// duplicates. Runs that stay under the cap (the tested regime) keep
	// the worker-count-independent unique-finding set; above it, which
	// candidates are kept depends on arrival order.
	MaxReducePerPass int
	// Cache is the shared validation cache (nil = new private cache).
	// Incompatible with EpochPrograms > 0: a rotating engine owns its
	// cache lifecycle and replaces the pair wholesale at every epoch
	// boundary.
	Cache *validate.Cache
	// EpochPrograms bounds per-epoch memory: after this many programs
	// have been folded at round boundaries, the engine rotates its
	// smt.Context + validation cache — a fresh interner, simplify memo
	// and verdict/block cache; the retired generation is reclaimed once
	// in-flight oracle calls drain. Rotation happens only at the
	// deterministic SyncInterval-aligned fold points, so the finding set
	// for a fixed Seed budget is identical across worker counts and
	// epoch sizes (verdicts are recomputed, never changed, by a fresh
	// cache). 0 disables rotation (campaign-scale runs).
	EpochPrograms int
	// OnEpoch, when set, receives the retiring epoch's snapshot at each
	// rotation (called from the collector goroutine).
	OnEpoch func(EpochStats)
	// PrewarmSeeds is how many of the corpus' top-energy seeds have their
	// block formulas re-interned into the fresh cache at each epoch
	// rotation (0 = default 8, negative = disabled). Warming happens at
	// the fold point, from the collector, so the warmed set is a pure
	// function of the schedule; it is cost-only (verdicts are recomputed
	// identically either way) and exists so post-rotation validation
	// latency doesn't dip while an empty cache re-derives the formulas of
	// the seeds most likely to be scheduled next.
	PrewarmSeeds int
	// QueueDepth bounds each inter-stage channel (0 = 2×Workers).
	QueueDepth int
	// OnFinding, when set, streams each unique finding as the report
	// stage emits it (called from the engine's reporting goroutine).
	OnFinding func(Finding)
	// OnOracleError, when set, observes tool-limitation errors
	// (interpreter gaps, unsatisfiable test paths). They are always
	// counted in Stats.
	OnOracleError func(seed int64, err error)
	// OracleTimeout is the wall-clock watchdog for each oracle
	// inspection (0 = none). MaxConflicts bounds conflicts, not time; the
	// deadline is threaded into the SAT inner loop and the verdict
	// degrades along the ladder: full verdict → one retry at doubled
	// budgets → Unknown/TimedOut → quarantine.
	OracleTimeout time.Duration
	// StageTimeout is the per-unit stall watchdog for the supervised
	// stages (0 = none): a stage body exceeding it is abandoned and the
	// unit quarantined, so a wedged interpreter or a pathological
	// generator input costs one unit, never a worker. Stage bodies are
	// compute-only closures, which is what makes abandonment safe. Set it
	// well above OracleTimeout — the oracle ladder alone may legitimately
	// use 3× OracleTimeout (first attempt plus doubled retry).
	StageTimeout time.Duration
	// OnQuarantine, when set, receives one record per contained fault
	// (panic, stall, exhausted oracle ladder). Called from the faulting
	// stage's worker goroutine; must be concurrency-safe. Faults are
	// always counted in Stats regardless.
	OnQuarantine func(QuarantineRecord)
	// FaultHook, when set, runs at entry of every supervised stage body
	// with that unit's (stage, slot) — the deterministic fault-injection
	// point (internal/faultinject). An injected panic or stall is
	// contained exactly like an organic one; a returned error takes the
	// stage's tool-limitation path.
	FaultHook func(ctx context.Context, stage string, slot int64) error
	// KnownFindings pre-seeds the dedup fingerprint sets (the resume
	// path): a finding whose fingerprint was already reported by an
	// earlier incarnation is counted as a duplicate and never re-emitted.
	KnownFindings []uint64
	// OnCheckpoint, when set, is called from the collector goroutine at
	// fold boundaries — every CheckpointPrograms folded programs, and
	// whenever RequestCheckpoint was pending — with the next-slot
	// watermark (every slot below it is folded; none above it is). The
	// collector is the sole corpus mutator, so the callback reads a
	// consistent corpus; it should return quickly (the fold barrier
	// waits).
	OnCheckpoint func(nextSlot int64)
	// CheckpointPrograms is the periodic checkpoint cadence in folded
	// programs (0 = only on RequestCheckpoint).
	CheckpointPrograms int
	// Obs, when set, receives the engine's metrics: per-stage latency
	// histograms, equivalence-query latency by resolution tier, and a
	// snapshot-on-read collector over Stats. Observation only — the
	// invariance contract (race-tested) is that enabling it changes
	// cost, never the finding set, witness bytes, report order or
	// corpus.
	Obs *obs.Registry
}

// DefaultSyncInterval is the corpus admission round size when
// EngineConfig.SyncInterval is zero. Exported because the fleet layer's
// lease lengths must be multiples of the effective round size for
// lease-local fold boundaries to coincide with global ones.
const DefaultSyncInterval = 32

// DefaultEngineConfig mirrors the sequential fuzz loop's settings on the
// streaming engine: v1model programs, validation oracle, auto-reduction.
func DefaultEngineConfig() EngineConfig {
	return EngineConfig{
		Seeds:        1000,
		Backend:      generator.V1Model,
		MaxConflicts: 20000,
		TestOpts:     testgen.DefaultOptions(),
		Reduce:       true,
		ReduceOpts:   reduce.Options{MaxRounds: 4, MaxPredicateCalls: 400},
	}
}

// Stats is a point-in-time snapshot of a running (or finished) engine:
// stage counters, throughput, shared-cache effectiveness and interner
// growth. Snapshots are cheap (atomic loads plus two lock-guarded counter
// reads) and safe to poll from any goroutine while the engine runs.
type Stats struct {
	// Stage counters.
	Generated         uint64
	Compiled          uint64
	Clean             uint64
	Crashes           uint64
	InvalidTransforms uint64
	Miscompilations   uint64
	Mismatches        uint64
	// CompileErrors are compile-stage tool limitations (e.g. a Generate
	// override emitting an ill-typed program); OracleErrors are
	// oracle-stage ones (interpreter gaps, unsatisfiable test paths).
	// The stage accounting invariants are:
	//   Generated = Crashes + InvalidTransforms + CompileErrors + Compiled
	//               + generate/compile-stage Quarantined
	//   Compiled  = Clean + Miscompilations + Mismatches + OracleErrors
	//               + oracle-stage Quarantined (Timeouts included)
	// (modulo programs still in flight when a run is cancelled).
	CompileErrors uint64
	OracleErrors  uint64
	// Dedup/reduce counters. ReducePredicateCalls counts predicate
	// invocations that actually ran (wall-clock work, speculative
	// overshoot included); ReduceSerialCalls counts the serial-equivalent
	// candidates consumed against MaxPredicateCalls budgets — identical
	// at any reduction parallelism. ReduceProbesLaunched/Wasted are the
	// speculation accounting: probes started, and probes whose results
	// were discarded because an earlier candidate committed first.
	Duplicates           uint64
	UniqueFindings       uint64
	ReducePredicateCalls uint64
	ReduceSerialCalls    uint64
	ReduceProbesLaunched uint64
	ReduceProbesWasted   uint64
	// Mutated counts programs produced by corpus mutation (a subset of
	// Generated); MutateInvalid counts mutants the type checker rejected
	// before they could reach the oracle, and MutateStale mutants
	// discarded because their AST profile was already observed (each
	// counts the rejected attempt, not the slot — a slot retries a few
	// times, then falls back to generation).
	Mutated       uint64
	MutateInvalid uint64
	MutateStale   uint64
	// Robustness counters. Quarantined counts units the supervisor
	// contained (panics, stalls and exhausted oracle ladders — Stalls and
	// Timeouts are its by-kind subsets); UnknownVerdicts counts
	// equivalence queries degraded to Unknown by budget or deadline; and
	// OracleRetries counts inspections that went through the ladder's
	// doubled-budget rung. Every fault is accounted here — a chaos run
	// must end with injected faults = Quarantined + tool errors, and zero
	// process deaths.
	Quarantined     uint64
	Stalls          uint64
	Timeouts        uint64
	UnknownVerdicts uint64
	OracleRetries   uint64
	// RecordsDropped counts JSONL/journal records the embedding process
	// failed to persist (NoteDroppedRecord) — surfaced here and on
	// /statusz so a sick sink is visible beyond a stderr line.
	RecordsDropped uint64
	// Corpus snapshots the coverage-keyed seed pool: size, admission /
	// rejection / eviction counts, distinct coverage edges and distinct
	// coverage fingerprints observed.
	Corpus corpus.Stats
	// Throughput.
	Elapsed        time.Duration
	ProgramsPerSec float64
	// Shared validation cache (hits/misses for block formulas and
	// equivalence verdicts).
	BlockHits, BlockMisses     uint64
	VerdictHits, VerdictMisses uint64
	// SimpResolved counts equivalence queries the word-level simplifier
	// (plus hash-consing) answered outright: the canonicalized miter was
	// the constant true, so no verdict lookup or solver call happened at
	// all. (Constant-false miters still take the solver path to produce a
	// counterexample and are not counted.) Cumulative across epochs.
	SimpResolved uint64
	// Concolic fast-path counters (cumulative across epochs, folded with
	// the other cache counters). TapesCompiled counts miters compiled to
	// bit-parallel tapes; ConcolicFalsified counts equivalence queries
	// answered by a concrete counterexample before any solver session was
	// built; ConcolicPackets counts concrete assignments executed (64 per
	// batch); CexReplayHits counts reduction-predicate queries decided by
	// replaying a finding's cached counterexample (miscompilation hints
	// through the tape plus mismatch test-case re-injections); and
	// SolverCallsAvoided is the sum of queries that skipped the solver
	// outright (falsified concretely or decided by replay).
	TapesCompiled      uint64
	ConcolicFalsified  uint64
	ConcolicPackets    uint64
	CexReplayHits      uint64
	SolverCallsAvoided uint64
	// Simp is the *current epoch's* simplification-cache snapshot. Epoch
	// scoping is deliberate: a process-lifetime snapshot asymptotes to a
	// stale rate on long runs, while a per-epoch one tracks the current
	// regime (and is exactly the memory the next rotation reclaims).
	Simp smt.SimplifyInfo
	// GatesBuilt and GatesReused are the process-wide structural gate
	// cache counters from the bit-blaster: gates encoded fresh versus gate
	// constructions answered by an existing literal. A high reuse rate
	// means near-identical circuits collapsed before CDCL search.
	// EpochGatesBuilt/EpochGatesReused are the same counters as deltas
	// since the current epoch began — the rate long runs should watch.
	GatesBuilt, GatesReused           uint64
	EpochGatesBuilt, EpochGatesReused uint64
	// Interner is the *current epoch's* term-interner snapshot — the
	// memory-bound observable: with rotation enabled it plateaus instead
	// of growing for the process lifetime.
	Interner smt.InternerInfo
	// Epoch is the current epoch index (0 until the first rotation) and
	// EpochProgramCount the programs folded into the corpus during it.
	Epoch             int
	EpochProgramCount uint64
}

// EpochStats is the retiring epoch's snapshot, emitted at each context
// rotation: how much term/cache memory the epoch accumulated (and the
// rotation reclaimed), plus its share of the global counters.
type EpochStats struct {
	// Index is the retiring epoch's number (0-based).
	Index int `json:"index"`
	// Programs is how many programs were folded during the epoch.
	Programs uint64 `json:"programs"`
	// Context is the epoch's interner + simplify-memo snapshot at
	// retirement: the bytes/entries reclaimed by the rotation.
	Context smt.ContextStats `json:"context"`
	// Cache is the epoch's validation-cache counters at retirement.
	Cache validate.CacheStats `json:"cache"`
	// GatesBuilt and GatesReused are the epoch's share of the structural
	// gate-cache counters (deltas over the epoch).
	GatesBuilt  uint64 `json:"gates_built"`
	GatesReused uint64 `json:"gates_reused"`
}

// Summary renders the snapshot as a short multi-line report.
func (s Stats) Summary() string {
	rate := func(h, m uint64) float64 {
		if h+m == 0 {
			return 0
		}
		return 100 * float64(h) / float64(h+m)
	}
	return fmt.Sprintf(
		"programs: %d generated (%d by mutation), %d compiled, %d clean (%.1f/sec over %v)\n"+
			"findings: %d unique (%d crash, %d invalid-transform, %d miscompilation, %d packet-mismatch raw; %d duplicates), %d tool limitations\n"+
			"corpus: %d seeds (%d admitted, %d rejected, %d evicted; %.1f%% admission); %d coverage edges, %d fingerprints; mutants rejected: %d invalid, %d stale\n"+
			"caches: block %.1f%% hit, verdict %.1f%% hit; reduction: %d predicate calls (%d serial-equivalent, %d probes launched, %d wasted)\n"+
			"solver: %d equivalence queries resolved by simplification alone; simp cache %.1f%% hit (%d entries); gates %d built, %d reused (%.1f%%)\n"+
			"concolic: %d tapes compiled, %d queries falsified concretely (%d packets), %d counterexample replays; %d solver calls avoided\n"+
			"epoch %d: %d programs, interner %d terms (~%.1f MiB, %d/%d shards occupied), gates %d built %d reused this epoch\n"+
			"robustness: %d quarantined (%d stalls, %d oracle timeouts), %d unknown verdicts, %d ladder retries, %d records dropped",
		s.Generated, s.Mutated, s.Compiled, s.Clean, s.ProgramsPerSec, s.Elapsed.Round(time.Millisecond),
		s.UniqueFindings, s.Crashes, s.InvalidTransforms, s.Miscompilations, s.Mismatches,
		s.Duplicates, s.CompileErrors+s.OracleErrors,
		s.Corpus.Seeds, s.Corpus.Admitted, s.Corpus.Rejected, s.Corpus.Evicted,
		rate(s.Corpus.Admitted, s.Corpus.Rejected), s.Corpus.Edges, s.Corpus.Fingerprints,
		s.MutateInvalid, s.MutateStale,
		rate(s.BlockHits, s.BlockMisses), rate(s.VerdictHits, s.VerdictMisses),
		s.ReducePredicateCalls, s.ReduceSerialCalls, s.ReduceProbesLaunched, s.ReduceProbesWasted,
		s.SimpResolved, rate(s.Simp.Hits, s.Simp.Misses), s.Simp.Entries,
		s.GatesBuilt, s.GatesReused, rate(s.GatesReused, s.GatesBuilt),
		s.TapesCompiled, s.ConcolicFalsified, s.ConcolicPackets,
		s.CexReplayHits, s.SolverCallsAvoided,
		s.Epoch, s.EpochProgramCount,
		s.Interner.Entries, float64(s.Interner.BytesEstimate)/(1<<20),
		s.Interner.OccupiedShards, s.Interner.Shards,
		s.EpochGatesBuilt, s.EpochGatesReused,
		s.Quarantined, s.Stalls, s.Timeouts, s.UnknownVerdicts, s.OracleRetries,
		s.RecordsDropped)
}

// OneLine renders the snapshot as a single human-readable line — the
// SIGHUP stderr summary, for operators without a JSONL tail.
func (s Stats) OneLine() string {
	return fmt.Sprintf(
		"programs=%d (%.1f/sec) findings=%d dups=%d corpus=%d epoch=%d quarantined=%d timeouts=%d dropped=%d elapsed=%s",
		s.Generated, s.ProgramsPerSec, s.UniqueFindings, s.Duplicates,
		s.Corpus.Seeds, s.Epoch, s.Quarantined, s.Timeouts, s.RecordsDropped,
		s.Elapsed.Round(time.Second))
}

// Engine is the streaming, stage-parallel fuzzing pipeline:
//
//	generate → compile → oracle → fingerprint/dedup → auto-reduce → report
//
// Stages are connected by bounded channels and run on per-stage worker
// pools; cancellation flows through a context checked at every stage (and
// inside validation, test generation and reduction). Workers isolate all
// mutable state — each program gets its own compiler and solver sessions —
// and share only the hash-consed term interner and the validation cache,
// both concurrency-safe. That sharing is what makes N workers nearly N×
// faster without perturbing results: the unique-finding set is identical
// for any worker count over the same seed range.
type Engine struct {
	cfg    EngineConfig
	oracle *Oracle
	corpus *corpus.Corpus

	// epoch is the current (smt context, validation cache) pair. Oracle
	// calls resolve it once per call through Oracle.CacheFn; the
	// collector swaps it at EpochPrograms-aligned fold boundaries.
	epoch atomic.Pointer[epochState]
	// programsFolded counts programs folded into the corpus at round
	// boundaries — the deterministic epoch clock.
	programsFolded atomic.Uint64
	// retiredMu orders epoch rotation against Stats reads: rotateEpoch
	// folds and swaps under it, Stats loads the epoch pointer and reads
	// the retired totals under it — so a rotation is atomic from Stats'
	// view and no epoch is ever counted twice or missed. Only the most
	// recently retired epoch's counter handle is kept live (a few
	// atomics; the cache maps are never retained) so increments from
	// oracle calls still in flight at its rotation keep counting; at the
	// next rotation its final snapshot folds into retiredTotal. An
	// in-flight call would have to span two whole epochs for its tail to
	// be missed, and the state stays O(1) over a multi-day run.
	retiredMu    sync.Mutex
	retiredTotal validate.CacheStats
	lastRetired  *validate.CacheCounters

	startNano atomic.Int64
	endNano   atomic.Int64

	generated, compiled, clean                 atomic.Uint64
	crashes, invalids, miscompiles, mismatches atomic.Uint64
	compileErrors, oracleErrors                atomic.Uint64
	duplicates, unique                         atomic.Uint64
	reduceCalls                                atomic.Uint64
	reduceSerial, probesLaunched, probesWasted atomic.Uint64
	mutated, mutateInvalid, mutateStale        atomic.Uint64
	quarantined, stalls, timeouts              atomic.Uint64
	unknownVerdicts, oracleRetries             atomic.Uint64
	mismatchReplays                            atomic.Uint64
	recordsDropped                             atomic.Uint64

	// lastFoldNano is the wall-clock time of the most recent round fold
	// (or Run start) — the liveness signal behind Health: a wedged
	// pipeline stops folding, a healthy one folds every round.
	lastFoldNano atomic.Int64

	// metrics is the optional introspection plane (EngineConfig.Obs):
	// per-stage and per-tier latency histograms. Nil when no registry is
	// attached; every hot-path touch is behind one nil check.
	metrics *engineMetrics

	// checkpointReq is the on-demand checkpoint flag (SIGHUP's path): the
	// collector consumes it at the next fold boundary.
	checkpointReq atomic.Bool

	// reduceGate bounds concurrent reduction-predicate executions across
	// all findings reducing at once: per-finding speculation widens the
	// probe window, the gate keeps the total at the worker-pool size.
	reduceGate chan struct{}
}

// epochState is one epoch's scoped solver-stack state: the smt context
// all terms are built in and the validation cache bound to it, plus the
// baselines needed to report per-epoch deltas of process-global
// counters.
type epochState struct {
	index                           int
	ctx                             *smt.Context
	cache                           *validate.Cache
	startPrograms                   uint64
	baseGatesBuilt, baseGatesReused uint64
}

// NewEngine builds an engine, filling config defaults (worker count,
// pipeline for the backend, cache, queue depth).
func NewEngine(cfg EngineConfig) *Engine {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 2 * cfg.Workers
	}
	if cfg.MaxConflicts == 0 {
		cfg.MaxConflicts = 20000
	}
	if cfg.MaxReducePerPass <= 0 {
		cfg.MaxReducePerPass = 64
	}
	if cfg.ReduceOpts.Parallelism <= 0 {
		cfg.ReduceOpts.Parallelism = cfg.Workers
	}
	if cfg.PrewarmSeeds == 0 {
		cfg.PrewarmSeeds = 8
	}
	if cfg.Cache == nil {
		if cfg.EpochPrograms > 0 {
			// A rotating engine owns its context lifecycle from the
			// start: epoch 0 already lives in a private context, so the
			// immortal default context sees no engine terms at all.
			cfg.Cache = validate.NewCacheIn(smt.NewContext())
		} else {
			cfg.Cache = validate.NewCache()
		}
	} else if cfg.EpochPrograms > 0 {
		// A caller-supplied cache cannot survive rotation (the engine
		// would silently abandon it at the first epoch boundary while
		// the caller keeps reading it, and a default-context cache would
		// pin every term in the immortal default interner). Fail loudly:
		// this is a configuration bug, not a tunable.
		panic("core.NewEngine: EngineConfig.Cache and EpochPrograms > 0 are incompatible (a rotating engine owns its cache lifecycle)")
	}
	if cfg.MaxMutations <= 0 {
		cfg.MaxMutations = 3
	}
	if cfg.SyncInterval <= 0 {
		cfg.SyncInterval = DefaultSyncInterval
	}
	if cfg.MutateRatio < 0 {
		cfg.MutateRatio = 0
	}
	if cfg.MutateRatio > 1 {
		cfg.MutateRatio = 1
	}
	if cfg.Corpus == nil {
		cfg.Corpus = corpus.New(cfg.MaxCorpus)
	}
	if cfg.Passes == nil {
		platform := bugs.BMv2
		if cfg.Backend == generator.TNA {
			platform = bugs.Tofino
		}
		cfg.Passes = pipelineFor(platform)
	}
	if cfg.Generate == nil {
		backend := cfg.Backend
		cfg.Generate = func(seed int64) *ast.Program {
			gc := generator.DefaultConfig(seed)
			gc.Backend = backend
			return generator.Generate(gc)
		}
	}
	if cfg.ConcolicOff {
		cfg.TestOpts.DisableSteering = true
	}
	e := &Engine{
		cfg:    cfg,
		corpus: cfg.Corpus,
		oracle: &Oracle{
			Passes:       cfg.Passes,
			MaxConflicts: cfg.MaxConflicts,
			TestOpts:     cfg.TestOpts,
			Validate:     !cfg.BlackBox,
			PacketTests:  cfg.PacketTests,
			Cache:        cfg.Cache,
			Timeout:      cfg.OracleTimeout,
			// Concolic batch inputs derive from (Seed, miter structure)
			// only — the same batches on every worker, every run.
			Concolic: validate.Concolic{Disable: cfg.ConcolicOff, Seed: uint64(cfg.Seed)},
		},
	}
	gb, gr := solver.GateStats()
	e.epoch.Store(&epochState{
		ctx:            cfg.Cache.Context(),
		cache:          cfg.Cache,
		baseGatesBuilt: gb, baseGatesReused: gr,
	})
	// Oracle calls resolve the epoch pair per call, so a rotation never
	// splits one Inspect across two contexts.
	e.oracle.CacheFn = func() *validate.Cache { return e.epoch.Load().cache }
	// The gate is sized to the worker pool, not to Parallelism×findings:
	// however many findings reduce at once, at most Workers predicates
	// run concurrently.
	e.reduceGate = make(chan struct{}, cfg.Workers)
	if cfg.Obs != nil {
		e.metrics = newEngineMetrics(cfg.Obs)
		cfg.Obs.Collect(e.emitStats)
	}
	return e
}

// Stage indices for the per-stage latency histograms.
const (
	stageGenerate = iota
	stageCompile
	stageOracle
	stageDedup
	stageReduce
	numStages
)

var stageNames = [numStages]string{"generate", "compile", "oracle", "dedup", "reduce"}

// engineMetrics holds the engine's eagerly registered histograms,
// resolved once at construction so the hot path never takes the
// registry lock. The maps/arrays are read-only after newEngineMetrics;
// the histograms themselves are sharded and concurrency-safe.
type engineMetrics struct {
	stageDur [numStages]*obs.Histogram
	tierDur  map[string]*obs.Histogram
}

func newEngineMetrics(r *obs.Registry) *engineMetrics {
	m := &engineMetrics{tierDur: make(map[string]*obs.Histogram, 5)}
	for i, name := range stageNames {
		m.stageDur[i] = r.Histogram("gauntlet_stage_duration_seconds",
			"Wall-clock latency of one unit through each engine stage (supervised body, watchdog included).",
			obs.Labels{"stage": name})
	}
	for _, tier := range []string{
		validate.TierSimplified, validate.TierCacheHit, validate.TierHintReplay,
		validate.TierConcolic, validate.TierCDCL,
	} {
		m.tierDur[tier] = r.Histogram("gauntlet_equivalence_query_duration_seconds",
			"Equivalence-query latency split by the solver-stack tier that resolved the query.",
			obs.Labels{"tier": tier})
	}
	return m
}

// observeQuery feeds the per-tier histogram; shaped as a method so it
// plugs straight into Oracle.QueryObs.
func (m *engineMetrics) observeQuery(tier string, d time.Duration) {
	if h := m.tierDur[tier]; h != nil {
		h.Observe(d)
	}
}

// emitStats is the registry collector: one Stats snapshot per scrape,
// re-emitted as gauntlet_* series. Counter vs gauge follows whether the
// underlying field is monotonic.
func (e *Engine) emitStats(em *obs.Emit) {
	s := e.Stats()
	c := func(name, help string, v uint64) {
		em.Counter("gauntlet_"+name, help, nil, float64(v))
	}
	g := func(name, help string, v float64) {
		em.Gauge("gauntlet_"+name, help, nil, v)
	}
	c("programs_generated_total", "Programs materialized (generation + mutation).", s.Generated)
	c("programs_mutated_total", "Programs produced by corpus mutation (subset of generated).", s.Mutated)
	c("programs_compiled_total", "Programs that survived every pass.", s.Compiled)
	c("programs_clean_total", "Programs the oracle found bug-free.", s.Clean)
	c("findings_crash_total", "Crash findings (raw, pre-dedup).", s.Crashes)
	c("findings_invalid_transform_total", "Invalid-transform findings (raw, pre-dedup).", s.InvalidTransforms)
	c("findings_miscompilation_total", "Miscompilation findings (raw, pre-dedup).", s.Miscompilations)
	c("findings_mismatch_total", "Packet-mismatch findings (raw, pre-dedup).", s.Mismatches)
	c("findings_unique_total", "Unique findings after dedup.", s.UniqueFindings)
	c("findings_duplicate_total", "Findings dropped as duplicates.", s.Duplicates)
	c("tool_errors_compile_total", "Compile-stage tool limitations.", s.CompileErrors)
	c("tool_errors_oracle_total", "Oracle-stage tool limitations.", s.OracleErrors)
	c("mutants_invalid_total", "Mutants rejected by the type checker.", s.MutateInvalid)
	c("mutants_stale_total", "Mutants rejected as behaviourally stale.", s.MutateStale)
	c("reduce_predicate_calls_total", "Reduction predicate invocations that ran.", s.ReducePredicateCalls)
	c("reduce_serial_calls_total", "Serial-equivalent reduction candidates consumed.", s.ReduceSerialCalls)
	c("reduce_probes_launched_total", "Speculative reduction probes launched.", s.ReduceProbesLaunched)
	c("reduce_probes_wasted_total", "Speculative reduction probes discarded.", s.ReduceProbesWasted)
	c("quarantined_total", "Units contained by the supervisor (panics, stalls, exhausted ladders).", s.Quarantined)
	c("stalls_total", "Stage stalls abandoned by the watchdog.", s.Stalls)
	c("oracle_timeouts_total", "Inspections that exhausted the oracle escalation ladder.", s.Timeouts)
	c("unknown_verdicts_total", "Equivalence queries degraded to Unknown.", s.UnknownVerdicts)
	c("oracle_retries_total", "Inspections retried at doubled budgets.", s.OracleRetries)
	c("records_dropped_total", "JSONL/journal records the embedding process failed to persist.", s.RecordsDropped)
	c("cache_block_hits_total", "Block-formula cache hits.", s.BlockHits)
	c("cache_block_misses_total", "Block-formula cache misses.", s.BlockMisses)
	c("cache_verdict_hits_total", "Verdict cache hits.", s.VerdictHits)
	c("cache_verdict_misses_total", "Verdict cache misses.", s.VerdictMisses)
	c("queries_simplified_total", "Equivalence queries answered by simplification alone.", s.SimpResolved)
	c("tapes_compiled_total", "Miters compiled to bit-parallel tapes.", s.TapesCompiled)
	c("concolic_falsified_total", "Equivalence queries falsified concretely before any solver session.", s.ConcolicFalsified)
	c("concolic_packets_total", "Concrete assignments executed by tapes.", s.ConcolicPackets)
	c("cex_replay_hits_total", "Reduction queries decided by counterexample replay.", s.CexReplayHits)
	c("solver_calls_avoided_total", "Queries that skipped the solver outright.", s.SolverCallsAvoided)
	c("gates_built_total", "Structural gates encoded fresh (process-wide).", s.GatesBuilt)
	c("gates_reused_total", "Gate constructions answered by an existing literal (process-wide).", s.GatesReused)
	c("corpus_admitted_total", "Programs admitted to the corpus.", s.Corpus.Admitted)
	c("corpus_rejected_total", "Programs rejected by corpus admission.", s.Corpus.Rejected)
	c("corpus_evicted_total", "Seeds evicted from the corpus.", s.Corpus.Evicted)
	g("corpus_seeds", "Seeds currently in the corpus.", float64(s.Corpus.Seeds))
	g("corpus_edges", "Distinct coverage edges observed.", float64(s.Corpus.Edges))
	g("corpus_fingerprints", "Distinct coverage fingerprints observed.", float64(s.Corpus.Fingerprints))
	g("epoch", "Current epoch index.", float64(s.Epoch))
	g("epoch_programs", "Programs folded during the current epoch.", float64(s.EpochProgramCount))
	g("interner_entries", "Current epoch's interned-term count.", float64(s.Interner.Entries))
	g("interner_bytes_estimate", "Current epoch's interner memory estimate.", float64(s.Interner.BytesEstimate))
	g("simp_cache_entries", "Current epoch's simplification-memo entries.", float64(s.Simp.Entries))
	g("programs_per_sec", "Generation throughput over the run so far.", s.ProgramsPerSec)
}

// Health is the engine's liveness view, keyed off round-fold progress:
// the collector folds a round every SyncInterval programs, so a
// pipeline that stops folding while Running is wedged. LastProgress is
// the wall-clock time of the most recent fold (Run start before the
// first fold); zero before Run.
type Health struct {
	Running        bool      `json:"running"`
	ProgramsFolded uint64    `json:"programs_folded"`
	LastProgress   time.Time `json:"last_progress"`
}

// Health snapshots liveness. Safe from any goroutine at any time.
func (e *Engine) Health() Health {
	h := Health{ProgramsFolded: e.programsFolded.Load()}
	h.Running = e.startNano.Load() != 0 && e.endNano.Load() == 0
	if lf := e.lastFoldNano.Load(); lf != 0 {
		h.LastProgress = time.Unix(0, lf)
	}
	return h
}

// NoteDroppedRecord counts one persistence failure in the embedding
// process (a JSONL or journal record that could not be written), so
// sink sickness shows up in Stats and on /statusz instead of only on
// stderr.
func (e *Engine) NoteDroppedRecord() { e.recordsDropped.Add(1) }

// rotateEpoch retires the current epoch and installs a fresh smt context
// + validation cache. Called only from the collector at a fold boundary;
// in-flight oracle calls finish on the pair they captured, and the old
// generation becomes garbage when the last of them drains. The fresh
// context is re-seeded lazily: the corpus' live seed programs re-intern
// their block formulas on first validation touch, and nothing else from
// the retired epoch survives.
func (e *Engine) rotateEpoch() {
	old := e.epoch.Load()
	// The epoch snapshot is point-in-time: oracle calls still in flight
	// on the retiring pair may bump its counters after it, so the
	// EpochStats record can slightly undercount the epoch's tail. The
	// cumulative Stats do not: the retained counter handle keeps
	// counting.
	es := e.epochSnapshot(old)
	ctx := smt.NewContext()
	gb, gr := solver.GateStats()
	e.retiredMu.Lock()
	if e.lastRetired != nil {
		e.retiredTotal.Add(e.lastRetired.Snapshot())
	}
	e.lastRetired = old.cache.Counters()
	e.epoch.Store(&epochState{
		index:          old.index + 1,
		ctx:            ctx,
		cache:          validate.NewCacheIn(ctx),
		startPrograms:  e.programsFolded.Load(),
		baseGatesBuilt: gb, baseGatesReused: gr,
	})
	e.retiredMu.Unlock()
	// Pre-warm the fresh cache with the corpus' top-energy seeds — the
	// programs the next rounds are most likely to schedule as mutation
	// bases. Runs synchronously at the fold point (the collector is the
	// sole corpus mutator, so TopEnergy reads a consistent ranking that is
	// a pure function of the schedule) and only ever changes cost: a
	// warmed formula is the one a later miss would compute anyway.
	if n := e.cfg.PrewarmSeeds; n > 0 {
		fresh := e.epoch.Load().cache
		for _, p := range e.corpus.TopEnergy(n) {
			fresh.Warm(p)
		}
	}
	if e.cfg.OnEpoch != nil {
		e.cfg.OnEpoch(es)
	}
}

// epochSnapshot captures one epoch's memory and counter state.
func (e *Engine) epochSnapshot(ep *epochState) EpochStats {
	gb, gr := solver.GateStats()
	return EpochStats{
		Index:       ep.index,
		Programs:    e.programsFolded.Load() - ep.startPrograms,
		Context:     ep.ctx.Stats(),
		Cache:       ep.cache.Snapshot(),
		GatesBuilt:  gb - ep.baseGatesBuilt,
		GatesReused: gr - ep.baseGatesReused,
	}
}

// Oracle exposes the engine's shared oracle stage (the same one
// Campaign.Hunt builds per bug).
func (e *Engine) Oracle() *Oracle { return e.oracle }

// RequestCheckpoint asks the collector to fire OnCheckpoint at the next
// fold boundary (the SIGHUP "snapshot now" path). Safe from any
// goroutine; a no-op when OnCheckpoint is unset. The request coalesces:
// several calls before the next fold produce one checkpoint.
func (e *Engine) RequestCheckpoint() { e.checkpointReq.Store(true) }

// Corpus exposes the engine's seed pool (for saving after a run, or for
// inspecting the admitted coverage fingerprints).
func (e *Engine) Corpus() *corpus.Corpus { return e.corpus }

// Stats snapshots the engine's counters. Valid at any time; throughput is
// measured from Run's start to now (or to Run's return).
func (e *Engine) Stats() Stats {
	s := Stats{
		Generated:            e.generated.Load(),
		Compiled:             e.compiled.Load(),
		Clean:                e.clean.Load(),
		Crashes:              e.crashes.Load(),
		InvalidTransforms:    e.invalids.Load(),
		Miscompilations:      e.miscompiles.Load(),
		Mismatches:           e.mismatches.Load(),
		CompileErrors:        e.compileErrors.Load(),
		OracleErrors:         e.oracleErrors.Load(),
		Duplicates:           e.duplicates.Load(),
		UniqueFindings:       e.unique.Load(),
		ReducePredicateCalls: e.reduceCalls.Load(),
		ReduceSerialCalls:    e.reduceSerial.Load(),
		ReduceProbesLaunched: e.probesLaunched.Load(),
		ReduceProbesWasted:   e.probesWasted.Load(),
		Mutated:              e.mutated.Load(),
		MutateInvalid:        e.mutateInvalid.Load(),
		MutateStale:          e.mutateStale.Load(),
		Quarantined:          e.quarantined.Load(),
		Stalls:               e.stalls.Load(),
		Timeouts:             e.timeouts.Load(),
		UnknownVerdicts:      e.unknownVerdicts.Load(),
		OracleRetries:        e.oracleRetries.Load(),
		RecordsDropped:       e.recordsDropped.Load(),
		Corpus:               e.corpus.Stats(),
	}
	// Load the epoch pointer and sum the retired counter handles under
	// retiredMu, the same lock rotateEpoch appends+swaps under: a
	// concurrent rotation is atomic from this read's view, so the
	// retiring cache is counted exactly once (as live before the swap,
	// as retired after).
	e.retiredMu.Lock()
	ep := e.epoch.Load()
	ret := e.retiredTotal
	if e.lastRetired != nil {
		ret.Add(e.lastRetired.Snapshot())
	}
	cs := ep.cache.Snapshot()
	// The epoch-scoped readings (fold count, gate counters) must come
	// from inside the same critical section that loaded ep: rotation
	// swaps baselines under this lock, so reading them outside would
	// attribute the next epoch's activity to this epoch's baselines.
	folded := e.programsFolded.Load()
	gb, gr := solver.GateStats()
	e.retiredMu.Unlock()
	s.Epoch = ep.index
	s.EpochProgramCount = folded - ep.startPrograms
	s.Simp = ep.ctx.SimplifyStats()
	s.Interner = ep.ctx.InternerStats()
	s.GatesBuilt, s.GatesReused = gb, gr
	s.EpochGatesBuilt = gb - ep.baseGatesBuilt
	s.EpochGatesReused = gr - ep.baseGatesReused
	s.BlockHits = ret.BlockHits + cs.BlockHits
	s.BlockMisses = ret.BlockMisses + cs.BlockMisses
	s.VerdictHits = ret.VerdictHits + cs.VerdictHits
	s.VerdictMisses = ret.VerdictMisses + cs.VerdictMisses
	s.SimpResolved = ret.SimpResolved + cs.SimpResolved
	s.TapesCompiled = ret.TapesCompiled + cs.TapesCompiled
	s.ConcolicFalsified = ret.ConcolicFalsified + cs.ConcolicFalsified
	s.ConcolicPackets = ret.ConcolicPackets + cs.ConcolicPackets
	s.CexReplayHits = ret.ReplayHits + cs.ReplayHits + e.mismatchReplays.Load()
	s.SolverCallsAvoided = s.ConcolicFalsified + s.CexReplayHits
	if start := e.startNano.Load(); start != 0 {
		end := e.endNano.Load()
		if end == 0 {
			end = time.Now().UnixNano()
		}
		s.Elapsed = time.Duration(end - start)
		if secs := s.Elapsed.Seconds(); secs > 0 {
			s.ProgramsPerSec = float64(s.Generated) / secs
		}
	}
	return s
}

// unit is a program moving between the generate, compile and oracle
// stages. prof is the AST coverage profile when the generate stage
// already computed one (mutants profile themselves for the novelty
// check); the compile stage fills it in otherwise.
type unit struct {
	seed    int64
	prog    *ast.Program
	res     *compiler.Result
	prof    *coverage.Profile
	mutated bool
	// baseID is the corpus seed the program was mutated from (-1 for
	// fresh generation): the dynamic-energy feedback target.
	baseID int
	// skip marks a unit whose generate stage was quarantined: it still
	// flows to the compile stage so its slot's covRec reaches the
	// collector (the round-fold barrier counts slots, and a missing
	// record would deadlock the fold), but no program is compiled.
	skip bool
	// prov is the provenance trace under construction: each stage fills
	// its fields in, and whichever stage produces a finding attaches the
	// pointer. Nil for skipped units. A unit produces at most one
	// finding (crash-family XOR oracle), so the pointer is never shared
	// between two findings.
	prov *Provenance
}

// task is one scheduled program slot: fresh grammar generation from the
// slot seed, or mutation of corpus seeds under a slot-derived rand stream.
// Tasks are pure values — a task replayed on any worker produces the same
// program.
type task struct {
	slot        int64
	mutate      bool
	base, donor *corpus.Seed
	rngSeed     int64
}

// covRec is a compile-stage coverage report flowing to the admission
// collector: exactly one per scheduled slot that reaches the compile
// stage (cancellation aside) — including quarantined slots, which report
// a nil prof that counts the fold but is never admitted. astFP is the
// profile's fingerprint before pass-trace edges were folded in — the
// novelty key the mutation pre-filter tests against.
type covRec struct {
	slot  int64
	prog  *ast.Program
	prof  *coverage.Profile
	astFP uint64
	// baseID is the mutation base's corpus seed ID (-1 = fresh
	// generation) and crashed whether the program produced a
	// crash/invalid-transform finding at the compile stage — the two
	// deterministic inputs to the energy fold.
	baseID  int
	crashed bool
	// toOracle marks a unit forwarded to the oracle stage: the collector
	// counts these per round so the one-round-late oracle-energy fold
	// knows when a round's oracle verdicts are complete.
	toOracle bool
	// finding carries the slot's crash/invalid-transform candidate, if
	// any. Candidates ride the coverage record instead of a free-running
	// channel so the collector can release them in canonical (round,
	// slot) order — which concrete program represents a deduplicated
	// fingerprint, and hence the reduced witness bytes, must not depend
	// on worker interleaving.
	finding *Finding
}

// orRec is an oracle-stage verdict report flowing to the admission
// collector: exactly one per unit the compile stage forwarded to the
// oracle (cancellation aside), including quarantined and errored units,
// which report a nil finding so the fold barrier still counts them.
// Oracle findings (miscompilations, mismatches) surface after their own
// round has already folded, so both their energy and their candidate
// programs fold one round late — at the next boundary, in canonical
// slot order — preserving -seed replay and worker-count determinism.
type orRec struct {
	slot    int64
	baseID  int
	finding *Finding
}

// Dynamic-energy bump fractions (of a seed's admission energy), folded
// at round boundaries: a mutant earning corpus admission is mild
// evidence its base is productive; a mutant producing a finding —
// compile-stage or oracle-stage — is strong evidence. Compile-stage
// findings fold with their own round's admissions; oracle-stage findings
// (miscompilations, mismatches) surface after that fold has passed, so
// they fold one round late, at the next boundary, behind their own
// completeness barrier (see orRec).
const (
	admissionBump = 0.5
	findingBump   = 1.0
)

// mix derives a per-slot rand seed from the master schedule seed
// (splitmix64-style finalizer, so adjacent slots decorrelate).
func mix(seed, slot int64) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(slot+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// originOf renders a unit's provenance for Finding.Origin.
func originOf(mutated bool) string {
	if mutated {
		return "mutate"
	}
	return "generate"
}

// materialize turns a task into a program. Mutation tasks retry a few
// draws, cheaply rejecting ill-typed mutants with the type checker — the
// oracle only ever sees programs that type-check — and behaviourally
// stale ones with the corpus's observed-fingerprint set (a mutant whose
// AST profile was already tested would spend an oracle slot re-proving a
// known verdict). Exhausted tasks fall back to fresh generation, so every
// slot yields exactly one program. The returned names are the applied
// mutators (provenance), empty for fresh generation.
func (e *Engine) materialize(t task) (*ast.Program, *coverage.Profile, []string, bool) {
	if t.mutate {
		r := rand.New(rand.NewSource(t.rngSeed))
		var donor *ast.Program
		if t.donor != nil {
			donor = t.donor.Program
		}
		for try := 0; try < 4; try++ {
			m, names, ok := mutate.Program(r, t.base.Program, donor, e.cfg.MaxMutations)
			if !ok {
				break
			}
			if types.Check(ast.CloneProgram(m)) != nil {
				e.mutateInvalid.Add(1)
				continue
			}
			prof := coverage.OfProgram(m)
			if e.corpus.SeenProgram(prof.Fingerprint()) {
				e.mutateStale.Add(1)
				continue
			}
			// Hand the profile downstream: the compile stage folds the
			// pass trace into it rather than re-walking the AST.
			return m, prof, names, true
		}
	}
	return e.cfg.Generate(t.slot), nil, nil, false
}

// Run executes the pipeline until the seed range is exhausted or ctx is
// cancelled, and returns the unique findings (deduplicated by fingerprint,
// reduced when enabled). It is safe to poll Stats concurrently; Run itself
// must not be called twice on one Engine.
func (e *Engine) Run(ctx context.Context) []Finding {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	e.startNano.Store(time.Now().UnixNano())
	// Liveness baseline: a run that has not folded its first round yet is
	// "in progress since start", not wedged.
	e.lastFoldNano.Store(time.Now().UnixNano())
	defer func() { e.endNano.Store(time.Now().UnixNano()) }()

	workers := e.cfg.Workers
	qd := e.cfg.QueueDepth
	genCh := make(chan unit, qd)  // generate → compile
	compCh := make(chan unit, qd) // compile → oracle
	candCh := make(chan Finding, qd)
	redCh := make(chan Finding, qd)
	outCh := make(chan Finding, qd)

	// Stage 1a: schedule. A single goroutine decides, slot by slot,
	// whether the program comes from fresh grammar generation or from
	// mutating corpus seeds, all under the master Seed's rand stream.
	// Mutation decisions for a round draw only on the corpus as of the
	// previous round's fold (stage 1c), so the schedule — and with it the
	// finding set and the final corpus — is a pure function of the
	// configuration, independent of worker count and channel interleaving.
	roundSize := int64(e.cfg.SyncInterval)
	taskCh := make(chan task, qd)
	covCh := make(chan covRec, qd)
	orCh := make(chan orRec, qd)
	// foldCh carries "round folded" signals from the collector to the
	// scheduler. At most one signal is ever outstanding (the scheduler
	// consumes fold r before emitting round r+1, and fold r+1 cannot
	// complete before round r+1 is fully emitted), so capacity 1 with a
	// non-blocking send never drops.
	foldCh := make(chan struct{}, 1)
	go func() {
		defer close(taskCh)
		sched := rand.New(rand.NewSource(e.cfg.Seed))
		for slot, inRound := e.cfg.StartSeed, int64(0); ; slot++ {
			if e.cfg.Seeds > 0 && slot >= e.cfg.StartSeed+e.cfg.Seeds {
				return
			}
			if inRound == roundSize {
				inRound = 0
				if e.cfg.MutateRatio > 0 {
					select {
					case <-foldCh:
					case <-ctx.Done():
						return
					}
				}
			}
			inRound++
			t := task{slot: slot, rngSeed: mix(e.cfg.Seed, slot)}
			if e.cfg.MutateRatio > 0 && sched.Float64() < e.cfg.MutateRatio {
				t.base = e.corpus.Select(sched)
				t.donor = e.corpus.Select(sched)
				t.mutate = t.base != nil
			}
			if !send(ctx, taskCh, t) {
				return
			}
		}
	}()

	// Stage 1b: generate/mutate. Workers materialize tasks — grammar
	// generation or corpus mutation plus the cheap type-check gate — in
	// parallel; each task is a pure value, so parallelism cannot perturb
	// the schedule.
	var genWG sync.WaitGroup
	for w := 0; w < workers; w++ {
		genWG.Add(1)
		go func() {
			defer genWG.Done()
			for t := range taskCh {
				u := unit{seed: t.slot, baseID: -1}
				var names []string
				genStart := time.Now()
				err, fault, cancelled := supervise(ctx, e.cfg.StageTimeout, func() error {
					if err := e.injectFault(ctx, "generate", t.slot); err != nil {
						return err
					}
					u.prog, u.prof, names, u.mutated = e.materialize(t)
					return nil
				})
				if cancelled {
					return
				}
				// Latency is measured around supervise, in this goroutine:
				// an abandoned stalled closure may still be writing, so
				// nothing it touches is read on the fault path.
				genElapsed := time.Since(genStart)
				if m := e.metrics; m != nil {
					m.stageDur[stageGenerate].ObserveShard(w, genElapsed)
				}
				e.generated.Add(1)
				switch {
				case fault != nil:
					// The slot still ships downstream (skip) so its covRec
					// reaches the fold barrier; only the program is lost.
					e.quarantine("generate", t.slot, originOf(t.mutate), nil, fault)
					u = unit{seed: t.slot, baseID: -1, skip: true}
				case err != nil:
					// Injected/stage error: a tool limitation, not a bug.
					e.compileErrors.Add(1)
					if e.cfg.OnOracleError != nil {
						e.cfg.OnOracleError(t.slot, err)
					}
					u = unit{seed: t.slot, baseID: -1, skip: true}
				default:
					if u.mutated {
						e.mutated.Add(1)
						u.baseID = t.base.ID
					}
					u.prov = &Provenance{
						Slot:       t.slot,
						Round:      (t.slot - e.cfg.StartSeed) / roundSize,
						Origin:     originOf(u.mutated),
						Mutations:  names,
						GenerateNs: genElapsed.Nanoseconds(),
					}
				}
				if !send(ctx, genCh, u) {
					return
				}
			}
		}()
	}
	go func() { genWG.Wait(); close(genCh) }()

	// Stage 1c: collect coverage and fold corpus admissions. Records
	// buffer per round and fold in canonical slot order once the round is
	// complete, so admission — which is order-sensitive (a program is
	// admitted only if it still adds coverage) — is identical on any
	// worker count.
	collectorDone := make(chan struct{})
	go func() {
		defer close(collectorDone)
		// The collector is the sole producer of finding candidates: it
		// releases them to dedup in canonical (round, slot) order at fold
		// boundaries, so the candidate sequence — and with it which
		// concrete program represents each deduplicated fingerprint — is
		// a pure function of the schedule.
		defer close(candCh)
		live := true
		release := func(f *Finding) {
			if f == nil || !live {
				return
			}
			if !send(ctx, candCh, *f) {
				live = false // cancelled: stop releasing, keep folding
			}
		}
		expected := func(round int64) int64 {
			if e.cfg.Seeds <= 0 {
				return roundSize
			}
			rem := e.cfg.Seeds - round*roundSize
			if rem > roundSize {
				return roundSize
			}
			return rem
		}
		pending := map[int64][]covRec{}
		// One-round-late oracle energy: round r's admission fold also
		// requires round r-1's oracle verdicts (counted at r-1's own fold
		// via toOracle) to be complete, and applies their finding bumps —
		// slot-sorted — before r's admissions. Oracle verdicts of the very
		// last round have no following fold and are dropped; that too is a
		// pure function of the schedule.
		pendingOr := map[int64][]orRec{}
		oracleExpected := map[int64]int{}
		next := int64(0)
		lastCheckpoint := uint64(0)
		covIn, orIn := covCh, orCh
		for covIn != nil || orIn != nil {
			select {
			case rec, ok := <-covIn:
				if !ok {
					covIn = nil
					continue
				}
				round := (rec.slot - e.cfg.StartSeed) / roundSize
				pending[round] = append(pending[round], rec)
			case rec, ok := <-orIn:
				if !ok {
					orIn = nil
					continue
				}
				round := (rec.slot - e.cfg.StartSeed) / roundSize
				pendingOr[round] = append(pendingOr[round], rec)
			}
			for {
				exp := expected(next)
				if exp <= 0 || int64(len(pending[next])) < exp {
					break
				}
				if next > 0 {
					oexp, folded := oracleExpected[next-1]
					if !folded || len(pendingOr[next-1]) < oexp {
						break // previous round's oracle verdicts still in flight
					}
					ors := pendingOr[next-1]
					delete(pendingOr, next-1)
					delete(oracleExpected, next-1)
					sort.Slice(ors, func(i, j int) bool { return ors[i].slot < ors[j].slot })
					for _, o := range ors {
						if o.finding != nil && o.baseID >= 0 {
							e.corpus.BumpEnergy(o.baseID, findingBump)
						}
						release(o.finding)
					}
				}
				recs := pending[next]
				delete(pending, next)
				sort.Slice(recs, func(i, j int) bool { return recs[i].slot < recs[j].slot })
				nOracle := 0
				for _, rc := range recs {
					if rc.toOracle {
						nOracle++
					}
					release(rc.finding)
					if rc.prof == nil {
						// Quarantined or errored before profiling: the
						// record exists only to count the fold.
						continue
					}
					e.corpus.RecordProgram(rc.astFP)
					admitted := e.corpus.Add(rc.prog, rc.prof)
					// Dynamic energy: reward the mutation base whose
					// mutant earned admission or found a compile-stage
					// bug — folded here, in canonical slot order, so
					// scheduling stays replayable under cfg.Seed.
					if rc.baseID >= 0 {
						bump := 0.0
						if admitted {
							bump += admissionBump
						}
						if rc.crashed {
							bump += findingBump
						}
						e.corpus.BumpEnergy(rc.baseID, bump)
					}
				}
				e.programsFolded.Add(uint64(len(recs)))
				// Liveness heartbeat: wall-clock only, feeds Health, never
				// a scheduling decision.
				e.lastFoldNano.Store(time.Now().UnixNano())
				oracleExpected[next] = nOracle
				next++
				// Epoch rotation shares the admission fold's
				// determinism: it fires at the first fold boundary at or
				// past EpochPrograms, a pure function of the schedule.
				if e.cfg.EpochPrograms > 0 {
					ep := e.epoch.Load()
					if e.programsFolded.Load()-ep.startPrograms >= uint64(e.cfg.EpochPrograms) {
						e.rotateEpoch()
					}
				}
				// Checkpoints fire only here, from the sole corpus-mutating
				// goroutine, at a fold boundary: the snapshot is a
				// consistent (corpus, watermark) pair — every slot below
				// the watermark folded, none above it.
				if e.cfg.OnCheckpoint != nil {
					folded := e.programsFolded.Load()
					fire := e.checkpointReq.Swap(false)
					if e.cfg.CheckpointPrograms > 0 &&
						folded-lastCheckpoint >= uint64(e.cfg.CheckpointPrograms) {
						fire = true
					}
					if fire {
						lastCheckpoint = folded
						e.cfg.OnCheckpoint(e.cfg.StartSeed + int64(folded))
					}
				}
				if e.cfg.MutateRatio > 0 {
					select {
					case foldCh <- struct{}{}:
					default:
					}
				}
			}
		}
		// Tail release: the final folded round's oracle verdicts arrive
		// after its fold has passed and no later fold exists, so their
		// energy is dropped (a pure function of the schedule) — but their
		// candidates must still surface. Release them in (round, slot)
		// order, folded rounds only: an unfolded round sits above the
		// checkpoint watermark and is reprocessed on resume, so dropping
		// its partial candidates keeps bounded runs deterministic.
		var tail []int64
		for round := range pendingOr {
			if round < next {
				tail = append(tail, round)
			}
		}
		sort.Slice(tail, func(i, j int) bool { return tail[i] < tail[j] })
		for _, round := range tail {
			ors := pendingOr[round]
			sort.Slice(ors, func(i, j int) bool { return ors[i].slot < ors[j].slot })
			for _, o := range ors {
				release(o.finding)
			}
		}
		// Shutdown checkpoint: covCh is closed, so every fold that will
		// happen has happened and the watermark is final. A graceful
		// drain thus resumes exactly where it stopped; only a hard kill
		// falls back to the last periodic checkpoint and reprocesses the
		// gap (at-least-once, deduplicated by the journal).
		if e.cfg.OnCheckpoint != nil {
			if folded := e.programsFolded.Load(); folded > lastCheckpoint {
				e.cfg.OnCheckpoint(e.cfg.StartSeed + int64(folded))
			}
		}
	}()

	// Stage 2: compile. Crash and invalid-transform candidates ride the
	// coverage record to the collector, which releases them to dedup at
	// the round's fold in slot order; clean compilations flow to the
	// oracle stage. Every unit also reports its coverage profile — AST
	// features plus the pass trace (or a crash/invalid edge) — to the
	// admission collector.
	var compWG sync.WaitGroup
	for w := 0; w < workers; w++ {
		compWG.Add(1)
		go func() {
			defer compWG.Done()
			for u := range genCh {
				if u.skip {
					// Quarantined upstream: the slot's covRec still counts
					// the fold, with nothing to admit.
					if !send(ctx, covCh, covRec{slot: u.seed, baseID: -1}) {
						return
					}
					continue
				}
				var out Outcome
				var prof *coverage.Profile
				var astFP uint64
				compStart := time.Now()
				err, fault, cancelled := supervise(ctx, e.cfg.StageTimeout, func() error {
					if err := e.injectFault(ctx, "compile", u.seed); err != nil {
						return err
					}
					out = e.oracle.Compile(u.prog)
					prof = u.prof
					if prof == nil {
						prof = coverage.OfProgram(u.prog)
					}
					astFP = prof.Fingerprint()
					switch {
					case out.Crash != nil:
						prof.AddPassCrash(out.Crash.Pass)
					case out.Invalid != nil:
						prof.AddPassInvalid(out.Invalid.Pass)
					case out.Err == nil:
						prof.AddTrace(out.Result.Trace)
					}
					return out.Err
				})
				if cancelled {
					return
				}
				compElapsed := time.Since(compStart)
				if m := e.metrics; m != nil {
					m.stageDur[stageCompile].ObserveShard(w, compElapsed)
				}
				if fault != nil {
					e.quarantine("compile", u.seed, originOf(u.mutated), u.prog, fault)
					if !send(ctx, covCh, covRec{slot: u.seed, baseID: -1}) {
						return
					}
					continue
				}
				if u.prov != nil {
					u.prov.CompileNs = compElapsed.Nanoseconds()
				}
				if err != nil {
					// fn returns out.Err, so this only rewrites it when the
					// error was injected before compilation produced one.
					out.Err = err
				}
				rec := covRec{
					slot: u.seed, prog: u.prog, prof: prof, astFP: astFP,
					baseID:   u.baseID,
					crashed:  out.Crash != nil || out.Invalid != nil,
					toOracle: out.Err == nil && out.Crash == nil && out.Invalid == nil,
				}
				// Crash-family candidates ride the coverage record: the
				// collector releases them at the round's fold, in slot
				// order, so dedup sees a worker-count-independent sequence.
				switch {
				case out.Crash != nil:
					e.crashes.Add(1)
					rec.finding = &Finding{
						Kind: FindingCrash, Seed: u.seed, Backend: e.cfg.Backend.String(),
						Pass:       out.Crash.Pass,
						Detail:     fmt.Sprintf("crash in %s: %s", out.Crash.Pass, out.Crash.Msg),
						Origin:     originOf(u.mutated),
						Program:    u.prog,
						Provenance: u.prov,
						crashMsg:   out.Crash.Msg,
					}
				case out.Invalid != nil:
					e.invalids.Add(1)
					rec.finding = &Finding{
						Kind: FindingInvalidTransform, Seed: u.seed, Backend: e.cfg.Backend.String(),
						Pass:       out.Invalid.Pass,
						Detail:     out.Invalid.Error(),
						Origin:     originOf(u.mutated),
						Program:    u.prog,
						Provenance: u.prov,
						crashMsg:   out.Invalid.Error(),
					}
				}
				if !send(ctx, covCh, rec) {
					return
				}
				switch {
				case out.Err != nil:
					e.compileErrors.Add(1)
					if e.cfg.OnOracleError != nil {
						e.cfg.OnOracleError(u.seed, out.Err)
					}
				case out.Crash != nil, out.Invalid != nil:
					// The candidate travelled with the covRec above.
				default:
					e.compiled.Add(1)
					u.res = out.Result
					if !send(ctx, compCh, u) {
						return
					}
				}
			}
		}()
	}
	go func() { compWG.Wait(); close(compCh); close(covCh) }()

	// Stage 3: oracle (translation validation + packet tests).
	var oracleWG sync.WaitGroup
	for w := 0; w < workers; w++ {
		oracleWG.Add(1)
		go func() {
			defer oracleWG.Done()
			for u := range compCh {
				out := Outcome{Result: u.res}
				// Per-unit oracle copy (InspectLadder copies again for its
				// ladder rungs anyway): the QueryObs hook accumulates this
				// unit's resolution-tier counts for provenance. The tiers
				// map is goroutine-private — queries run sequentially inside
				// one inspection — and is read only on the success path,
				// never after a fault abandons the closure.
				oc := *e.oracle
				var tiers map[string]uint64
				oc.QueryObs = func(tier string, d time.Duration) {
					if tiers == nil {
						tiers = make(map[string]uint64, 4)
					}
					tiers[tier]++
					if m := e.metrics; m != nil {
						m.observeQuery(tier, d)
					}
				}
				oracleStart := time.Now()
				err, fault, cancelled := supervise(ctx, e.cfg.StageTimeout, func() error {
					if err := e.injectFault(ctx, "oracle", u.seed); err != nil {
						return err
					}
					oc.InspectLadder(ctx, &out)
					return nil
				})
				if cancelled {
					return
				}
				oracleElapsed := time.Since(oracleStart)
				if m := e.metrics; m != nil {
					m.stageDur[stageOracle].ObserveShard(w, oracleElapsed)
				}
				// Every unit reports exactly one orRec — finding or not,
				// quarantined or not — so the collector's one-round-late
				// energy barrier can count a round's oracle verdicts
				// complete. Candidates ride the record and are released by
				// the collector one round late, in slot order.
				var cand *Finding
				if fault != nil {
					// Do not touch out: an abandoned (stalled) invocation
					// may still be writing it. Quarantine on the unit's
					// identity alone.
					e.quarantine("oracle", u.seed, originOf(u.mutated), u.prog, fault)
					if !send(ctx, orCh, orRec{slot: u.seed, baseID: u.baseID}) {
						return
					}
					continue
				}
				if err != nil {
					out = Outcome{Result: u.res, Err: err}
				}
				if u.prov != nil {
					u.prov.OracleNs = oracleElapsed.Nanoseconds()
					u.prov.QueryTiers = tiers
				}
				if out.Unknowns > 0 {
					e.unknownVerdicts.Add(uint64(out.Unknowns))
				}
				if out.Retried {
					e.oracleRetries.Add(1)
				}
				switch {
				case out.TimedOut:
					// The escalation ladder bottomed out: an explicit
					// weakened verdict, quarantined for offline triage.
					e.timeouts.Add(1)
					e.quarantineTimeout(u.seed, originOf(u.mutated), u.prog)
				case out.Err != nil:
					if ctx.Err() != nil {
						return
					}
					e.oracleError(u.seed, out.Err)
				case len(out.Failures) > 0:
					e.miscompiles.Add(1)
					cand = &Finding{
						Kind: FindingMiscompilation, Seed: u.seed, Backend: e.cfg.Backend.String(),
						Pass:       out.Failures[0].PassB,
						Detail:     out.Failures[0].String(),
						Origin:     originOf(u.mutated),
						Program:    u.prog,
						Provenance: u.prov,
						cex:        out.Failures[0].Counterexample,
					}
				case len(out.Mismatches) > 0:
					e.mismatches.Add(1)
					cand = &Finding{
						Kind: FindingMismatch, Seed: u.seed, Backend: e.cfg.Backend.String(),
						Detail:     out.Mismatches[0],
						Origin:     originOf(u.mutated),
						Program:    u.prog,
						Provenance: u.prov,
					}
					if len(out.MismatchCases) > 0 {
						mc := out.MismatchCases[0]
						cand.replay = &mc
					}
				default:
					e.clean.Add(1)
				}
				if !send(ctx, orCh, orRec{slot: u.seed, baseID: u.baseID, finding: cand}) {
					return
				}
			}
		}()
	}
	go func() { compWG.Wait(); oracleWG.Wait(); close(orCh) }()

	// Stage 4: fingerprint/dedup. Crash-family findings have stable
	// fingerprints before reduction, so duplicates are dropped here and
	// never reach the (expensive) reducer. Semantic findings are
	// fingerprinted by their *reduced* witness, so they dedup in the
	// report stage instead — capped per (kind, pass) so one hot defect
	// firing on most seeds cannot turn the pipeline into a reducer farm.
	// Candidates arrive from the collector in canonical (round, slot)
	// order, so the program that wins each fingerprint — the one that
	// gets reduced and printed — is deterministic; each survivor is
	// stamped with its position so the report stage can re-sequence
	// findings after parallel reduction scrambles completion order.
	go func() {
		defer close(redCh)
		seen := map[uint64]bool{}
		for _, fp := range e.cfg.KnownFindings {
			// Resume path: crash-family findings an earlier incarnation
			// already reported dedup here, before the reducer.
			seen[fp] = true
		}
		perPass := map[string]int{}
		order := int64(0)
		for f := range candCh {
			var dedupStart time.Time
			if e.metrics != nil {
				dedupStart = time.Now()
			}
			dup := false
			if f.Kind == FindingCrash || f.Kind == FindingInvalidTransform {
				f.Fingerprint = crashFingerprint(f.Kind, f.Pass, f.crashMsg)
				if seen[f.Fingerprint] {
					dup = true
				} else {
					seen[f.Fingerprint] = true
				}
			} else {
				key := fmt.Sprintf("%d\x00%s", f.Kind, f.Pass)
				if perPass[key] >= e.cfg.MaxReducePerPass {
					dup = true
				} else {
					perPass[key]++
				}
			}
			if m := e.metrics; m != nil {
				// Classification only; the (blocking) handoff to the
				// reducer is backpressure, not dedup latency.
				m.stageDur[stageDedup].Observe(time.Since(dedupStart))
			}
			if dup {
				e.duplicates.Add(1)
				continue
			}
			f.order = order
			order++
			if !send(ctx, redCh, f) {
				return
			}
		}
	}()

	// Stage 5: auto-reduce. Each unique finding is shrunk with a
	// predicate that re-runs the oracle on every candidate.
	var redWG sync.WaitGroup
	for w := 0; w < workers; w++ {
		redWG.Add(1)
		go func() {
			defer redWG.Done()
			for f := range redCh {
				var got Finding
				reduceStart := time.Now()
				err, fault, cancelled := supervise(ctx, e.cfg.StageTimeout, func() error {
					if err := e.injectFault(ctx, "reduce", f.Seed); err != nil {
						return err
					}
					got = e.reduceFinding(ctx, f)
					return nil
				})
				if cancelled {
					return
				}
				if m := e.metrics; m != nil {
					m.stageDur[stageReduce].ObserveShard(w, time.Since(reduceStart))
				}
				out := f
				if err == nil && fault == nil {
					out = got
				} else {
					// The finding is real — only its shrink failed. Emit
					// the unreduced witness (ReduceContext never mutates
					// its input, so f.Program is intact even after an
					// abandoned stall) and quarantine the fault.
					if fault != nil {
						e.quarantine("reduce", f.Seed, f.Origin, f.Program, fault)
					} else {
						e.oracleError(f.Seed, err)
					}
					if f.Program != nil {
						out.SizeBefore = reduce.Size(f.Program)
						out.SizeAfter = out.SizeBefore
					}
				}
				if !send(ctx, outCh, out) {
					return
				}
			}
		}()
	}
	go func() { redWG.Wait(); close(outCh) }()

	// Stage 6: report. Final fingerprints (semantic findings key on the
	// reduced witness), final dedup, streaming callback. Reduced findings
	// complete in whatever order their reductions finish; re-sequencing
	// by the dedup stamp makes the final dedup — and the report/journal
	// order — deterministic again. The buffer is bounded by the number of
	// findings in flight through the reducer pool.
	var findings []Finding
	seen := map[uint64]bool{}
	for _, fp := range e.cfg.KnownFindings {
		// Resume path: a finding journaled before the crash is a
		// duplicate here, so a resumed daemon never re-reports it.
		seen[fp] = true
	}
	report := func(f Finding) {
		if f.Kind == FindingMiscompilation || f.Kind == FindingMismatch {
			f.Fingerprint = semanticFingerprint(f.Kind, f.Pass, f.Program)
		}
		if seen[f.Fingerprint] {
			e.duplicates.Add(1)
			return
		}
		seen[f.Fingerprint] = true
		e.unique.Add(1)
		if f.Program != nil {
			f.Source = printer.Print(f.Program)
		}
		if e.cfg.OnFinding != nil {
			e.cfg.OnFinding(f)
		}
		findings = append(findings, f)
	}
	reorder := map[int64]Finding{}
	nextOrder := int64(0)
	for f := range outCh {
		reorder[f.order] = f
		for {
			g, ok := reorder[nextOrder]
			if !ok {
				break
			}
			delete(reorder, nextOrder)
			nextOrder++
			report(g)
		}
	}
	// A cancelled reducer leaves a gap in the sequence; findings past it
	// stay buffered and are dropped here — the run is aborting anyway.
	// Let the collector fold the final round before Run returns, so the
	// corpus callers see (save, fingerprint sets) is the finished one.
	<-collectorDone
	return findings
}

// send delivers v unless the context is cancelled first.
func send[T any](ctx context.Context, ch chan<- T, v T) bool {
	select {
	case ch <- v:
		return true
	case <-ctx.Done():
		return false
	}
}

func (e *Engine) oracleError(seed int64, err error) {
	e.oracleErrors.Add(1)
	if e.cfg.OnOracleError != nil {
		e.cfg.OnOracleError(seed, err)
	}
}

// reduceFinding shrinks a finding's witness while the oracle keeps
// reproducing the same symptom. Candidates are probed speculatively on
// the shared reduction gate (ReduceOpts.Parallelism wide per finding,
// Workers wide in total); the committed trajectory and the reduced
// witness are byte-identical to a serial reduction.
func (e *Engine) reduceFinding(ctx context.Context, f Finding) Finding {
	if f.Program == nil {
		return f
	}
	f.SizeBefore = reduce.Size(f.Program)
	f.SizeAfter = f.SizeBefore
	if !e.cfg.Reduce {
		return f
	}
	opts := e.cfg.ReduceOpts
	opts.Gate = e.reduceGate
	reduceStart := time.Now()
	prog, rs := reduce.ReduceStats(ctx, f.Program, e.keepPredicate(f), opts)
	e.reduceSerial.Add(uint64(rs.SerialCalls))
	e.probesLaunched.Add(uint64(rs.Launched))
	e.probesWasted.Add(uint64(rs.Wasted))
	f.Program = prog
	f.SizeAfter = reduce.Size(f.Program)
	if f.Provenance != nil {
		// Clone before writing: the fault path emits the pre-reduce
		// finding, which shares the incoming pointer — and an abandoned
		// (stalled) invocation of this function may still be executing
		// here, so it must never write through shared state.
		p := *f.Provenance
		p.ReduceNs = time.Since(reduceStart).Nanoseconds()
		p.ReduceSerialCalls = rs.SerialCalls
		p.ReduceProbesLaunched = rs.Launched
		p.ReduceProbesWasted = rs.Wasted
		f.Provenance = &p
	}
	return f
}

// keepPredicate builds the reduction invariant for a finding: the oracle,
// re-run on the candidate, must reproduce the same symptom (same crashing
// pass and message, same failing pass, or any packet mismatch).
//
// Crash-family findings take a fast path: reproducing a crash or an
// invalid transform needs only the compile step (the symptom fires in a
// pass, before validation or packet testing could even run), so their
// predicates skip translation validation and packet testgen entirely —
// far more candidates fit under the same MaxPredicateCalls budget.
//
// Predicates receive the probe's context: it is cancelled when the
// candidate's verdict can no longer matter (an earlier candidate in the
// window committed, or the reduction was cancelled), so solver-backed
// probes abandon dead speculative work early. They may run concurrently
// — the oracle, its caches and the counters are all concurrency-safe.
func (e *Engine) keepPredicate(f Finding) reduce.PredicateCtx {
	o := e.oracle
	if m := e.metrics; m != nil {
		// Reduction-phase equivalence queries feed the per-tier latency
		// histograms too (metrics only — the finding's provenance tier
		// counts cover its oracle-stage inspection).
		oc := *e.oracle
		oc.QueryObs = m.observeQuery
		o = &oc
	}
	switch f.Kind {
	case FindingCrash:
		return func(_ context.Context, cand *ast.Program) bool {
			e.reduceCalls.Add(1)
			out := o.Compile(cand)
			return out.Crash != nil && out.Crash.Pass == f.Pass && out.Crash.Msg == f.crashMsg
		}
	case FindingInvalidTransform:
		// Pin the full message like crashes do: the fingerprint and
		// Detail carry it, so a candidate that makes the same pass fail
		// differently is a different symptom, not a smaller witness of
		// this one.
		return func(_ context.Context, cand *ast.Program) bool {
			e.reduceCalls.Add(1)
			out := o.Compile(cand)
			return out.Invalid != nil && out.Invalid.Pass == f.Pass && out.Invalid.Error() == f.crashMsg
		}
	}
	if f.Kind == FindingMiscompilation {
		// Replay the finding's counterexample as a concolic hint: the
		// candidate's miter tape evaluates it in one packet, so candidates
		// that still fail on the original distinguishing input (most of
		// them) re-prove the inequivalence with zero solver work. A miss
		// falls through to the normal batch-falsify → solver ladder inside
		// the same Examine call. The probe context only ever cancels
		// discarded speculation, so the committed trajectory never sees a
		// cancelled predicate and stays budget-bounded as before.
		ho := o.WithHints(f.cex)
		return func(pctx context.Context, cand *ast.Program) bool {
			e.reduceCalls.Add(1)
			out := ho.Examine(pctx, cand)
			for _, v := range out.Failures {
				if v.PassB == f.Pass {
					return true
				}
			}
			return false
		}
	}
	return func(pctx context.Context, cand *ast.Program) bool {
		e.reduceCalls.Add(1)
		// Replay the cached failing case first: one compile plus one
		// concrete injection decides most candidates, versus a full
		// symbolic test-generation session. Replay runs regardless of
		// ConcolicOff — it involves no tape or solver shortcut, just a
		// remembered input — so the reduction trajectory is identical with
		// the fast path on or off.
		if f.replay != nil {
			if hit, err := o.ReplayMismatch(cand, *f.replay); err == nil && hit {
				e.mismatchReplays.Add(1)
				return true
			}
		}
		out := o.Examine(pctx, cand)
		return len(out.Mismatches) > 0
	}
}

// crashFingerprint hashes (kind, pass, message) — stable across witnesses,
// so every seed that trips the same assertion collapses to one finding.
func crashFingerprint(kind FindingKind, pass, msg string) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d\x00%s\x00%s", kind, pass, msg)
	return h.Sum64()
}

// semanticFingerprint hashes (kind, failing pass, reduced witness): after
// reduction, seeds that trigger the same defect through equivalent minimal
// programs collapse to one finding. The witness fingerprint is computed
// over the printed program with identifiers alpha-renamed by first
// occurrence — generator-fresh names (h_17 vs h_23) must not keep two
// structurally identical minimal witnesses apart.
func semanticFingerprint(kind FindingKind, pass string, prog *ast.Program) uint64 {
	h := fnv.New64a()
	var pf uint64
	if prog != nil {
		pf = canonicalFingerprint(prog)
	}
	fmt.Fprintf(h, "%d\x00%s\x00%016x", kind, pass, pf)
	return h.Sum64()
}

// canonicalFingerprint hashes a program's token stream with every
// identifier replaced by its first-occurrence index.
func canonicalFingerprint(prog *ast.Program) uint64 {
	src := printer.Print(prog)
	toks, errs := lexer.ScanAll(src)
	h := fnv.New64a()
	if len(errs) > 0 {
		h.Write([]byte(src))
		return h.Sum64()
	}
	names := map[string]int{}
	for _, t := range toks {
		if t.Kind == token.IDENT {
			id, ok := names[t.Lit]
			if !ok {
				id = len(names)
				names[t.Lit] = id
			}
			fmt.Fprintf(h, "@%d\x00", id)
			continue
		}
		fmt.Fprintf(h, "%d:%s\x00", t.Kind, t.Lit)
	}
	return h.Sum64()
}
