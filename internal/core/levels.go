package core

import (
	"fmt"
	"strings"

	"gauntlet/internal/compiler"
	"gauntlet/internal/generator"
	"gauntlet/internal/p4/lexer"
	"gauntlet/internal/p4/parser"
	"gauntlet/internal/p4/printer"
	"gauntlet/internal/p4/types"
)

// Level is how deep an input penetrates the compiler before rejection —
// McKeeman's hierarchy (Table 1 of the paper).
type Level int

// Penetration depths. Levels 6 and 7 (dynamically conforming,
// model-conforming) are only distinguishable by executing the program;
// the study reports them together as "past the static pipeline".
const (
	RejectedByLexer   Level = 1
	RejectedByParser  Level = 3
	RejectedByChecker Level = 4
	CrashedCompiler   Level = 5
	Accepted          Level = 6
)

// String renders the level.
func (l Level) String() string {
	switch l {
	case RejectedByLexer:
		return "rejected by lexer (levels 1-2)"
	case RejectedByParser:
		return "rejected by parser (level 3)"
	case RejectedByChecker:
		return "rejected by type checker (level 4)"
	case CrashedCompiler:
		return "crashed a pass (level 5)"
	default:
		return "fully compiled (levels 6-7)"
	}
}

// Classify measures how deep one textual input penetrates.
func Classify(src string) Level {
	if _, errs := lexer.ScanAll(src); len(errs) > 0 {
		return RejectedByLexer
	}
	prog, err := parser.Parse(src)
	if err != nil {
		return RejectedByParser
	}
	if err := types.Check(prog); err != nil {
		return RejectedByChecker
	}
	comp := compiler.New(compiler.DefaultPasses()...)
	if _, err := comp.Compile(prog); err != nil {
		return CrashedCompiler
	}
	return Accepted
}

// LevelStudy reproduces the Table 1 comparison: per input class, where do
// n samples end up? Gauntlet-generated programs must all reach the top;
// the baselines pile up at the bottom — the reason generic fuzzing "had
// very limited success" on P4C (§2.1).
type LevelStudy struct {
	// Counts[class][level] = samples.
	Counts map[string]map[Level]int
	Order  []string
}

// RunLevelStudy classifies n samples of every input class.
func RunLevelStudy(n int) *LevelStudy {
	study := &LevelStudy{Counts: map[string]map[Level]int{}}
	classes := []struct {
		name string
		gen  func(seed int64) string
	}{
		{"random bytes (AFL seed)", func(s int64) string { return generator.RandomBytes(s, 200) }},
		{"byte mutants (AFL)", func(s int64) string {
			seedProg := printer.Print(generator.Generate(generator.DefaultConfig(1)))
			return generator.MutateBytes(seedProg, s, 8)
		}},
		{"token salad", func(s int64) string { return generator.TokenSalad(s, 120) }},
		{"P4Fuzz-like shallow", generator.ShallowProgram},
		{"type-broken", generator.TypeBrokenProgram},
		{"Gauntlet generator", func(s int64) string {
			return printer.Print(generator.Generate(generator.DefaultConfig(s)))
		}},
	}
	for _, cl := range classes {
		study.Order = append(study.Order, cl.name)
		study.Counts[cl.name] = map[Level]int{}
		for seed := int64(0); seed < int64(n); seed++ {
			lvl := Classify(cl.gen(seed))
			study.Counts[cl.name][lvl]++
		}
	}
	return study
}

// Render prints the study as the Table 1 analogue.
func (s *LevelStudy) Render() string {
	var sb strings.Builder
	sb.WriteString("Table 1 study: compiler penetration depth by input class\n")
	fmt.Fprintf(&sb, "%-26s %8s %8s %8s %8s %8s\n",
		"input class", "lexer", "parser", "checker", "crash", "compiled")
	for _, name := range s.Order {
		c := s.Counts[name]
		fmt.Fprintf(&sb, "%-26s %8d %8d %8d %8d %8d\n", name,
			c[RejectedByLexer], c[RejectedByParser], c[RejectedByChecker],
			c[CrashedCompiler], c[Accepted])
	}
	return sb.String()
}
