package core_test

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"gauntlet/internal/core"
	"gauntlet/internal/obs"
)

// reportSeq renders findings in report order (no sorting): the
// invariance contract covers ordering too, not just the set.
func reportSeq(fs []core.Finding) []string {
	var out []string
	for _, f := range fs {
		out = append(out, fmt.Sprintf("%s|%s|%016x|%d", f.Kind, f.Pass, f.Fingerprint, len(f.Source)))
	}
	return out
}

// TestObsInvariance: installing the metrics registry changes cost only.
// The finding sequence — kind, pass, fingerprint, witness size, in
// report order — must be identical with obs off and on, at one worker
// and eight. (Run under -race in CI: the instrumented runs double as a
// race check on the sharded instruments.)
func TestObsInvariance(t *testing.T) {
	ids := []string{"P4C-C-04", "P4C-C-13", "P4C-S-02"}
	run := func(workers int, instrument bool) []string {
		cfg := buggyEngineConfig(t, 15, workers, ids...)
		if instrument {
			cfg.Obs = obs.NewRegistry()
		}
		return reportSeq(core.NewEngine(cfg).Run(context.Background()))
	}
	baseline := run(8, false)
	if len(baseline) == 0 {
		t.Fatal("no findings: the seeded defects should fire within 15 seeds")
	}
	for _, workers := range []int{1, 8} {
		got := run(workers, true)
		if strings.Join(got, "\n") != strings.Join(baseline, "\n") {
			t.Errorf("obs on (workers=%d) changed the finding sequence:\nbaseline:\n  %s\ninstrumented:\n  %s",
				workers, strings.Join(baseline, "\n  "), strings.Join(got, "\n  "))
		}
	}
}

// TestFindingProvenance: every reported finding carries a lineage trace
// whose schedule fields match the finding and whose stage timings are
// populated for the stages the finding actually crossed. Two runs —
// a crash defect and a semantic one — exercise both the compile-stage
// and oracle-stage provenance shapes.
func TestFindingProvenance(t *testing.T) {
	var reg *obs.Registry
	var fs []core.Finding
	var cfg core.EngineConfig
	for _, id := range []string{"P4C-C-04", "P4C-S-02"} {
		// Crashes preempt oracle inspection, so each defect gets its own
		// run (20 seeds fires both reliably) and its own registry — one
		// engine per registry, or the stats collectors would emit
		// duplicate series.
		cfg = buggyEngineConfig(t, 20, 4, id)
		reg = obs.NewRegistry()
		cfg.Obs = reg
		got := core.NewEngine(cfg).Run(context.Background())
		if len(got) == 0 {
			t.Fatalf("no findings from %s within 20 seeds", id)
		}
		fs = append(fs, got...)
	}
	var sawSemantic, sawCompileStage bool
	for _, f := range fs {
		p := f.Provenance
		if p == nil {
			t.Fatalf("finding %s/%s has no provenance", f.Kind, f.Pass)
		}
		if p.Slot != f.Seed {
			t.Errorf("provenance slot %d != finding seed %d", p.Slot, f.Seed)
		}
		roundSize := int64(cfg.SyncInterval)
		if roundSize <= 0 {
			roundSize = 32 // the engine's SyncInterval default
		}
		wantRound := (f.Seed - cfg.StartSeed) / roundSize
		if p.Round != wantRound {
			t.Errorf("provenance round %d, want %d", p.Round, wantRound)
		}
		if p.Origin != f.Origin {
			t.Errorf("provenance origin %q != finding origin %q", p.Origin, f.Origin)
		}
		if p.Origin == "generate" && len(p.Mutations) != 0 {
			t.Errorf("generated finding carries mutation stack %v", p.Mutations)
		}
		if p.GenerateNs <= 0 {
			t.Errorf("GenerateNs = %d, want > 0", p.GenerateNs)
		}
		if p.CompileNs <= 0 {
			t.Errorf("CompileNs = %d, want > 0", p.CompileNs)
		}
		switch f.Kind {
		case core.FindingCrash, core.FindingInvalidTransform:
			sawCompileStage = true
			// Compile-stage findings never reach the oracle.
			if p.OracleNs != 0 || len(p.QueryTiers) != 0 {
				t.Errorf("compile-stage finding has oracle provenance: %+v", p)
			}
		default:
			sawSemantic = true
			if p.OracleNs <= 0 {
				t.Errorf("semantic finding OracleNs = %d, want > 0", p.OracleNs)
			}
			if len(p.QueryTiers) == 0 {
				t.Error("semantic finding has empty QueryTiers")
			}
			for tier := range p.QueryTiers {
				switch tier {
				case "simplified", "cache-hit", "hint-replay", "concolic-falsified", "cdcl":
				default:
					t.Errorf("unknown query tier %q", tier)
				}
			}
		}
		if f.SizeAfter < f.SizeBefore {
			// A witness that actually shrank must account for the
			// reduction work that shrank it.
			if p.ReduceNs <= 0 || p.ReduceSerialCalls <= 0 {
				t.Errorf("reduced finding (%d -> %d) has ReduceNs=%d ReduceSerialCalls=%d",
					f.SizeBefore, f.SizeAfter, p.ReduceNs, p.ReduceSerialCalls)
			}
		}
	}
	if !sawSemantic {
		t.Error("expected at least one semantic finding from P4C-S-02")
	}
	if !sawCompileStage {
		t.Error("expected at least one compile-stage finding from P4C-C-04")
	}

	// The last run's registry observed it: stage histograms and the
	// stats collector render non-zero series.
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`gauntlet_stage_duration_seconds_count{stage="generate"}`,
		`gauntlet_stage_duration_seconds_count{stage="compile"}`,
		`gauntlet_equivalence_query_duration_seconds`,
		"gauntlet_programs_generated_total 20",
		"gauntlet_findings_unique_total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
	if strings.Contains(out, `stage="generate"} 0`+"\n") {
		t.Error("generate histogram empty after a 15-seed run")
	}
}

// TestHealthAndDroppedRecords covers the liveness snapshot and the
// dropped-record accounting surfaced via Stats and its one-line form.
func TestHealthAndDroppedRecords(t *testing.T) {
	cfg := buggyEngineConfig(t, 5, 2, "P4C-C-04")
	e := core.NewEngine(cfg)
	if h := e.Health(); h.Running {
		t.Error("engine reports Running before Run")
	}
	e.Run(context.Background())
	h := e.Health()
	if h.Running {
		t.Error("engine reports Running after Run returned")
	}
	if h.ProgramsFolded == 0 {
		t.Error("ProgramsFolded = 0 after a 5-seed run")
	}
	if h.LastProgress.IsZero() {
		t.Error("LastProgress is zero after a run")
	}
	e.NoteDroppedRecord()
	e.NoteDroppedRecord()
	s := e.Stats()
	if s.RecordsDropped != 2 {
		t.Errorf("RecordsDropped = %d, want 2", s.RecordsDropped)
	}
	if line := s.OneLine(); !strings.Contains(line, "dropped=2") {
		t.Errorf("OneLine missing drop count: %s", line)
	}
	if sum := s.Summary(); !strings.Contains(sum, "2 records dropped") {
		t.Errorf("Summary missing drop count: %s", sum)
	}
}
