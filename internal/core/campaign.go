// Package core is Gauntlet itself: the orchestration that combines random
// program generation, translation validation and symbolic-execution test
// generation to hunt compiler bugs (Figures 2 and 4 of the paper), plus
// the campaign driver that reproduces the evaluation tables over the
// seeded-defect registry.
package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"gauntlet/internal/bugs"
	"gauntlet/internal/compiler"
	"gauntlet/internal/generator"
	"gauntlet/internal/p4/ast"
	"gauntlet/internal/p4/parser"
	"gauntlet/internal/p4/types"
	"gauntlet/internal/target/bmv2"
	"gauntlet/internal/target/tofino"
	"gauntlet/internal/testgen"
	"gauntlet/internal/validate"
)

// Technique names the bug-finding technique that produced a detection.
type Technique int

// Techniques.
const (
	// CrashHunt is random program generation + crash capture (§4).
	CrashHunt Technique = iota
	// TranslationValidation is pass-pairwise equivalence checking (§5).
	TranslationValidation
	// SymbolicExecution is input/output packet testing (§6).
	SymbolicExecution
)

// String renders the technique.
func (t Technique) String() string {
	switch t {
	case CrashHunt:
		return "crash hunt"
	case TranslationValidation:
		return "translation validation"
	default:
		return "symbolic execution"
	}
}

// Detection is the outcome of hunting one bug.
type Detection struct {
	Bug       *bugs.Bug
	Detected  bool
	Technique Technique
	// Via names the triggering program: "witness" or "seed N".
	Via string
	// Detail carries the crash fingerprint, failing pass +
	// counterexample, or packet mismatch.
	Detail string
	// InvalidTransform marks detections that surfaced as unparsable
	// emitted programs (tracked but not counted, §7.2).
	InvalidTransform bool
}

// Campaign hunts seeded bugs with Gauntlet's three techniques.
type Campaign struct {
	Registry *bugs.Registry
	// RandomSeeds is how many generated programs to try per bug after
	// the witness (0 = witness only).
	RandomSeeds int
	// SkipWitness hunts with random programs only — the paper's actual
	// discovery mode, where nobody hands the fuzzer a reproducer.
	SkipWitness bool
	// MaxConflicts bounds every solver call.
	MaxConflicts int
	// TestOpts configures symbolic-execution test generation.
	TestOpts testgen.Options
	// Workers bounds RunAll's parallelism (0 = GOMAXPROCS).
	Workers int
	// Cache memoizes block formulas and equivalence verdicts across all
	// hunts (and across RunAll's worker pool — it is safe for concurrent
	// use). Many bugs share witnesses and pipelines, so the reuse rate
	// is high; terms are hash-consed process-wide, which is what makes
	// the sharing sound.
	Cache *validate.Cache
}

// NewCampaign builds a campaign over the full registry with paper-scale
// settings.
func NewCampaign() *Campaign {
	return &Campaign{
		Registry:     bugs.Load(),
		RandomSeeds:  0,
		MaxConflicts: 50000,
		TestOpts:     testgen.DefaultOptions(),
		Cache:        validate.NewCache(),
	}
}

// pipelineFor returns the reference pass pipeline of a platform.
func pipelineFor(p bugs.Platform) []compiler.Pass {
	switch p {
	case bugs.BMv2:
		return append(compiler.DefaultPasses(), bmv2.BackendPasses()...)
	case bugs.Tofino:
		return append(compiler.DefaultPasses(), tofino.BackendPasses()...)
	default:
		return compiler.DefaultPasses()
	}
}

// programsFor yields the candidate trigger programs for a bug: its
// witness first, then random programs.
func (c *Campaign) programsFor(b *bugs.Bug) ([]namedProgram, error) {
	prog, err := parser.Parse(b.Witness)
	if err != nil {
		return nil, fmt.Errorf("bug %s: witness does not parse: %w", b.ID, err)
	}
	if err := types.Check(prog); err != nil {
		return nil, fmt.Errorf("bug %s: witness does not check: %w", b.ID, err)
	}
	var out []namedProgram
	if !c.SkipWitness {
		out = append(out, namedProgram{name: "witness", prog: prog})
	}
	backend := generator.V1Model
	if b.Platform == bugs.Tofino {
		backend = generator.TNA
	}
	for seed := int64(0); seed < int64(c.RandomSeeds); seed++ {
		cfg := generator.DefaultConfig(seed)
		cfg.Backend = backend
		out = append(out, namedProgram{
			name: fmt.Sprintf("seed %d", seed),
			prog: generator.Generate(cfg),
		})
	}
	return out, nil
}

type namedProgram struct {
	name string
	prog *ast.Program
}

// OracleFor builds the shared oracle stage for one bug: the bug's
// platform pipeline instrumented with its defect, interrogated with the
// platform-appropriate technique — translation validation for the open
// P4C side, symbolic-execution packet tests for the black-box back ends.
// Hunt, the streaming Engine and tests all detect through this one stage.
func (c *Campaign) OracleFor(b *bugs.Bug) *Oracle {
	o := &Oracle{
		Passes:       bugs.Instrument(pipelineFor(b.Platform), []*bugs.Bug{b}),
		MaxConflicts: c.MaxConflicts,
		TestOpts:     c.TestOpts,
		Cache:        c.Cache,
	}
	if b.Kind == bugs.Semantic {
		switch b.Platform {
		case bugs.P4C:
			o.Validate = true
		case bugs.BMv2, bugs.Tofino:
			o.PacketTests = true
		}
	}
	return o
}

// Hunt activates a single bug and applies the platform-appropriate
// technique to every candidate program until one detects it.
func (c *Campaign) Hunt(b *bugs.Bug) (Detection, error) {
	return c.HuntContext(context.Background(), b)
}

// HuntContext is Hunt with cancellation plumbed through the oracle.
func (c *Campaign) HuntContext(ctx context.Context, b *bugs.Bug) (Detection, error) {
	det := Detection{Bug: b}
	programs, err := c.programsFor(b)
	if err != nil {
		return det, err
	}
	o := c.OracleFor(b)
	for _, np := range programs {
		out := o.Examine(ctx, np.prog)
		switch {
		case out.Err != nil:
			return det, fmt.Errorf("bug %s on %s: %w", b.ID, np.name, out.Err)
		case out.Crash != nil:
			det.Detected = true
			det.Technique = CrashHunt
			det.Via = np.name
			det.Detail = fmt.Sprintf("crash in %s: %s", out.Crash.Pass, out.Crash.Msg)
			return det, nil
		case out.Invalid != nil:
			det.Detected = true
			det.InvalidTransform = true
			det.Via = np.name
			det.Detail = out.Invalid.Error()
			return det, nil
		case len(out.Failures) > 0:
			det.Detected = true
			det.Technique = TranslationValidation
			det.Via = np.name
			det.Detail = out.Failures[0].String()
			return det, nil
		case len(out.Mismatches) > 0:
			det.Detected = true
			det.Technique = SymbolicExecution
			det.Via = np.name
			det.Detail = out.Mismatches[0]
			return det, nil
		}
	}
	return det, nil
}

// HuntClean runs all three techniques over a bug's witness with the
// reference (uninstrumented) pipeline. It returns "" when nothing is
// flagged — the no-false-alarm baseline (§5.2) — or a description of the
// spurious finding.
func (c *Campaign) HuntClean(b *bugs.Bug) (string, error) {
	prog, err := parser.Parse(b.Witness)
	if err != nil {
		return "", fmt.Errorf("witness does not parse: %w", err)
	}
	if err := types.Check(prog); err != nil {
		return "", fmt.Errorf("witness does not check: %w", err)
	}
	o := &Oracle{
		Passes:       pipelineFor(b.Platform),
		MaxConflicts: c.MaxConflicts,
		TestOpts:     c.TestOpts,
		Cache:        c.Cache,
		Validate:     true,
		PacketTests:  true,
	}
	out := o.Compile(prog)
	if out.Crash != nil || out.Invalid != nil || out.Err != nil {
		cerr := out.Err
		if out.Crash != nil {
			cerr = out.Crash
		} else if out.Invalid != nil {
			cerr = out.Invalid
		}
		return fmt.Sprintf("clean compile failed: %v", cerr), nil
	}
	o.Inspect(context.Background(), &out)
	if out.Err != nil {
		return "", fmt.Errorf("oracle: %w", out.Err)
	}
	if len(out.Failures) > 0 {
		return "translation validation false alarm: " + out.Failures[0].String(), nil
	}
	if len(out.Mismatches) > 0 {
		return "symbolic execution false alarm: " + out.Mismatches[0], nil
	}
	return "", nil
}

// RunAll hunts every bug in the registry (duplicates too: they re-detect
// their original's behaviour) and returns detections keyed by bug ID.
// Hunts are independent (each instruments its own pipeline over its own
// program clones), so they run on a bounded worker pool.
func (c *Campaign) RunAll() (map[string]Detection, error) {
	workers := c.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	type item struct {
		id  string
		det Detection
		err error
	}
	jobs := make(chan *bugs.Bug)
	results := make(chan item)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := range jobs {
				det, err := c.Hunt(b)
				results <- item{id: b.ID, det: det, err: err}
			}
		}()
	}
	go func() {
		for _, b := range c.Registry.Bugs {
			jobs <- b
		}
		close(jobs)
		wg.Wait()
		close(results)
	}()

	out := map[string]Detection{}
	var firstErr error
	for it := range results {
		if it.err != nil && firstErr == nil {
			firstErr = fmt.Errorf("bug %s: %w", it.id, it.err)
		}
		out[it.id] = it.det
	}
	return out, firstErr
}
