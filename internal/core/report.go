package core

import (
	"fmt"
	"sort"
	"strings"

	"gauntlet/internal/bugs"
	"gauntlet/internal/compiler"
)

// Report aggregates a campaign into the paper's evaluation artifacts.
type Report struct {
	Detections map[string]Detection
	Registry   *bugs.Registry
}

// NewReport wraps campaign results.
func NewReport(reg *bugs.Registry, dets map[string]Detection) *Report {
	return &Report{Registry: reg, Detections: dets}
}

// detected reports whether a bug was found (invalid transforms count as
// found but are tabulated separately, like the paper's 4 uncounted bugs).
func (r *Report) detected(b *bugs.Bug) bool {
	d, ok := r.Detections[b.ID]
	return ok && d.Detected
}

// Table2 renders the bug summary (Table 2): filed/confirmed/fixed ×
// crash/semantic × platform, restricted to bugs the campaign detected.
func (r *Report) Table2() string {
	count := func(k bugs.Kind, minStatus bugs.Status, p bugs.Platform) int {
		n := 0
		for _, b := range r.Registry.Bugs {
			if b.Kind == k && b.Platform == p && b.Status >= minStatus && r.detected(b) {
				n++
			}
		}
		return n
	}
	var sb strings.Builder
	sb.WriteString("Table 2: Bug summary. Unfixed bugs have been assigned.\n")
	sb.WriteString("Bug Type   Status       P4C   BMv2   Tofino\n")
	rows := []struct {
		kind   bugs.Kind
		label  string
		status bugs.Status
	}{
		{bugs.Crash, "Crash", bugs.Filed},
		{bugs.Crash, "", bugs.Confirmed},
		{bugs.Crash, "", bugs.Fixed},
		{bugs.Semantic, "Semantic", bugs.Filed},
		{bugs.Semantic, "", bugs.Confirmed},
		{bugs.Semantic, "", bugs.Fixed},
	}
	for _, row := range rows {
		statusName := map[bugs.Status]string{
			bugs.Filed: "Filed", bugs.Confirmed: "Confirmed", bugs.Fixed: "Fixed",
		}[row.status]
		fmt.Fprintf(&sb, "%-10s %-10s %5d %6d %8d\n", row.label, statusName,
			count(row.kind, row.status, bugs.P4C),
			count(row.kind, row.status, bugs.BMv2),
			count(row.kind, row.status, bugs.Tofino))
	}
	totalConfirmed := 0
	perPlatform := map[bugs.Platform]int{}
	for _, b := range r.Registry.Confirmed() {
		if r.detected(b) {
			totalConfirmed++
			perPlatform[b.Platform]++
		}
	}
	fmt.Fprintf(&sb, "%-10s %-10s %5d %6d %8d   (total %d)\n", "Total", "",
		perPlatform[bugs.P4C], perPlatform[bugs.BMv2], perPlatform[bugs.Tofino], totalConfirmed)
	return sb.String()
}

// Table3 renders the location distribution (Table 3) over detected,
// confirmed bugs.
func (r *Report) Table3() string {
	count := map[compiler.Location]map[bugs.Platform]int{}
	for _, b := range r.Registry.Confirmed() {
		if !r.detected(b) {
			continue
		}
		loc := compiler.LocationOf(b.Pass)
		if count[loc] == nil {
			count[loc] = map[bugs.Platform]int{}
		}
		count[loc][b.Platform]++
	}
	var sb strings.Builder
	sb.WriteString("Table 3: Distribution of bugs in the P4 compilers.\n")
	sb.WriteString("Location    P4C   BMv2   Tofino   Total\n")
	total := 0
	for _, loc := range []compiler.Location{compiler.FrontEnd, compiler.MidEnd, compiler.BackEnd} {
		row := count[loc]
		sum := row[bugs.P4C] + row[bugs.BMv2] + row[bugs.Tofino]
		total += sum
		fmt.Fprintf(&sb, "%-10s %4d %6d %8d %7d\n", loc, row[bugs.P4C], row[bugs.BMv2], row[bugs.Tofino], sum)
	}
	fmt.Fprintf(&sb, "%-10s %4s %6s %8s %7d\n", "Total", "", "", "", total)
	return sb.String()
}

// DeepDive renders the §7.2 analyses: type-checker crash share,
// copy-in/copy-out share of semantic bugs, merge regressions, spec
// changes, derivative bugs, and technique attribution.
func (r *Report) DeepDive() string {
	var sb strings.Builder
	confirmedDetected := func(f func(*bugs.Bug) bool) int {
		n := 0
		for _, b := range r.Registry.Confirmed() {
			if r.detected(b) && f(b) {
				n++
			}
		}
		return n
	}
	p4cCrash := confirmedDetected(func(b *bugs.Bug) bool {
		return b.Platform == bugs.P4C && b.Kind == bugs.Crash
	})
	tcCrash := confirmedDetected(func(b *bugs.Bug) bool {
		return b.Platform == bugs.P4C && b.Kind == bugs.Crash && b.RootCause == "type checker"
	})
	p4cSem := confirmedDetected(func(b *bugs.Bug) bool {
		return b.Platform == bugs.P4C && b.Kind == bugs.Semantic
	})
	cicoSem := confirmedDetected(func(b *bugs.Bug) bool {
		return b.Platform == bugs.P4C && b.Kind == bugs.Semantic && b.RootCause == "copy-in/copy-out"
	})
	p4cAll := confirmedDetected(func(b *bugs.Bug) bool { return b.Platform == bugs.P4C })
	merged := confirmedDetected(func(b *bugs.Bug) bool {
		return b.Platform == bugs.P4C && b.MergeWeek > 0
	})
	spec := confirmedDetected(func(b *bugs.Bug) bool { return b.SpecChange })
	deriv := confirmedDetected(func(b *bugs.Bug) bool { return b.Derivative })

	fmt.Fprintf(&sb, "§7.2 deep dive (detected, confirmed bugs):\n")
	fmt.Fprintf(&sb, "  crashes in the type checker:       %d of %d P4C crash bugs\n", tcCrash, p4cCrash)
	fmt.Fprintf(&sb, "  copy-in/copy-out semantic bugs:    %d of %d P4C semantic bugs\n", cicoSem, p4cSem)
	fmt.Fprintf(&sb, "  caused by recent master merges:    %d of %d P4C bugs (§7.1)\n", merged, p4cAll)
	fmt.Fprintf(&sb, "  led to P4 specification changes:   %d\n", spec)
	fmt.Fprintf(&sb, "  derivative (handcrafted) reports:  %d\n", deriv)

	byTech := map[Technique]int{}
	for _, b := range r.Registry.Confirmed() {
		if d, ok := r.Detections[b.ID]; ok && d.Detected && !d.InvalidTransform {
			byTech[d.Technique]++
		}
	}
	fmt.Fprintf(&sb, "  found by crash hunting:            %d\n", byTech[CrashHunt])
	fmt.Fprintf(&sb, "  found by translation validation:   %d\n", byTech[TranslationValidation])
	fmt.Fprintf(&sb, "  found by symbolic execution:       %d\n", byTech[SymbolicExecution])

	invalid := 0
	for _, b := range r.Registry.InvalidTransforms() {
		if d, ok := r.Detections[b.ID]; ok && d.Detected && d.InvalidTransform {
			invalid++
		}
	}
	fmt.Fprintf(&sb, "  invalid transformations (emit/reparse, tracked but uncounted): %d\n", invalid)
	return sb.String()
}

// MergeWeekSeries returns detected P4C regressions per campaign week
// (§7.1's "16 of 46 from recent merges" over the testing months).
func (r *Report) MergeWeekSeries() string {
	weeks := map[int]int{}
	for _, b := range r.Registry.Confirmed() {
		if b.Platform == bugs.P4C && b.MergeWeek > 0 && r.detected(b) {
			weeks[b.MergeWeek]++
		}
	}
	var ks []int
	for k := range weeks {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	var sb strings.Builder
	sb.WriteString("§7.1 regressions caught per merge week:\n")
	for _, k := range ks {
		fmt.Fprintf(&sb, "  week %2d: %s (%d)\n", k, strings.Repeat("*", weeks[k]), weeks[k])
	}
	return sb.String()
}

// Missed lists confirmed bugs the campaign failed to detect (should be
// empty; printed by the CLI for diagnosis).
func (r *Report) Missed() []string {
	var out []string
	for _, b := range r.Registry.Confirmed() {
		if !r.detected(b) {
			out = append(out, b.ID+" ("+b.Description+")")
		}
	}
	sort.Strings(out)
	return out
}
