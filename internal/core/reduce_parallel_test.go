package core_test

import (
	"context"
	"sort"
	"strings"
	"testing"

	"gauntlet/internal/core"
)

// sortedSources returns each finding's printed reduced witness, sorted —
// the byte-identity observable across reduction parallelism levels
// (fingerprints alone could mask a source-level divergence).
func sortedSources(fs []core.Finding) []string {
	out := make([]string, 0, len(fs))
	for _, f := range fs {
		out = append(out, f.Source)
	}
	sort.Strings(out)
	return out
}

// TestEngineReduceParallelismDeterminism is the tentpole acceptance test
// at the engine level: for a fixed seed budget, the reduced-witness set —
// the printed sources, byte for byte, not just the fingerprints — is
// identical across reduction parallelism 1/4/8 and engine worker counts
// 1/8. The speculative executor commits in canonical candidate order and
// budgets count serial-equivalent calls only, so speculation must be
// invisible in everything but wall-clock. Run under -race in CI.
func TestEngineReduceParallelismDeterminism(t *testing.T) {
	ids := []string{"P4C-C-04", "P4C-C-13", "P4C-S-02"}
	run := func(workers, par int) ([]string, []string) {
		cfg := buggyEngineConfig(t, 18, workers, ids...)
		cfg.ReduceOpts.Parallelism = par
		fs := core.NewEngine(cfg).Run(context.Background())
		return fingerprintSet(fs), sortedSources(fs)
	}
	refFP, refSrc := run(1, 1)
	if len(refFP) == 0 {
		t.Fatal("no findings: the seeded defects should fire within 18 seeds")
	}
	for _, workers := range []int{1, 8} {
		for _, par := range []int{1, 4, 8} {
			if workers == 1 && par == 1 {
				continue
			}
			fp, src := run(workers, par)
			if strings.Join(fp, "\n") != strings.Join(refFP, "\n") {
				t.Errorf("finding set differs at workers=%d parallelism=%d:\nref:\n  %s\ngot:\n  %s",
					workers, par, strings.Join(refFP, "\n  "), strings.Join(fp, "\n  "))
				continue
			}
			if strings.Join(src, "\n===\n") != strings.Join(refSrc, "\n===\n") {
				t.Errorf("reduced witnesses differ at workers=%d parallelism=%d despite equal fingerprints:\n--- ref\n%s\n--- got\n%s",
					workers, par, strings.Join(refSrc, "\n===\n"), strings.Join(src, "\n===\n"))
			}
		}
	}
}

// TestEngineReduceSpeculationStats: under parallel reduction the engine
// must account speculation — serial-equivalent calls bounded by the
// per-finding budget, launches at least as many as serial calls, and the
// wasted count consistent with both.
func TestEngineReduceSpeculationStats(t *testing.T) {
	cfg := buggyEngineConfig(t, 12, 4, "P4C-C-04", "P4C-S-02")
	cfg.ReduceOpts.Parallelism = 8
	e := core.NewEngine(cfg)
	fs := e.Run(context.Background())
	if len(fs) == 0 {
		t.Fatal("no findings to reduce")
	}
	s := e.Stats()
	if s.ReduceSerialCalls == 0 {
		t.Error("reduction ran but ReduceSerialCalls is 0")
	}
	if s.ReduceProbesLaunched < s.ReduceSerialCalls {
		t.Errorf("launched %d probes < %d serial-equivalent calls", s.ReduceProbesLaunched, s.ReduceSerialCalls)
	}
	if s.ReduceProbesWasted > s.ReduceProbesLaunched-s.ReduceSerialCalls {
		t.Errorf("wasted %d > launched-serial %d", s.ReduceProbesWasted, s.ReduceProbesLaunched-s.ReduceSerialCalls)
	}
}

// TestEngineOracleEnergyDeterminism: oracle-stage findings now feed
// corpus energy one round late, behind their own completeness barrier —
// the whole run (finding set, corpus, bump count) must stay a pure
// function of the master seed at any worker count, and runs whose seed
// budget is not a multiple of SyncInterval must still drain (the tail
// round's oracle verdicts are deliberately dropped, never waited on
// past the final fold).
func TestEngineOracleEnergyDeterminism(t *testing.T) {
	run := func(workers int) ([]string, []uint64, uint64, uint64) {
		cfg := buggyEngineConfig(t, 30, workers, "P4C-S-02") // semantic: findings surface at the oracle stage
		cfg.Seed = 7
		cfg.MutateRatio = 0.7
		cfg.SyncInterval = 8 // 30 seeds: a partial tail round
		e := core.NewEngine(cfg)
		fs := e.Run(context.Background())
		st := e.Stats()
		return fingerprintSet(fs), e.Corpus().Fingerprints(), st.Corpus.Bumps, st.Miscompilations
	}
	f1, c1, b1, m1 := run(1)
	f8, c8, b8, m8 := run(8)
	if m1 == 0 {
		t.Fatal("no oracle-stage findings: the seeded semantic defect should fire within 30 seeds")
	}
	if strings.Join(f1, "\n") != strings.Join(f8, "\n") {
		t.Errorf("finding set differs across worker counts with oracle energy enabled:\nw1:\n  %s\nw8:\n  %s",
			strings.Join(f1, "\n  "), strings.Join(f8, "\n  "))
	}
	if len(c1) != len(c8) {
		t.Fatalf("corpus size differs: %d vs %d seeds", len(c1), len(c8))
	}
	for i := range c1 {
		if c1[i] != c8[i] {
			t.Fatalf("corpus fingerprint %d differs: %016x vs %016x", i, c1[i], c8[i])
		}
	}
	if b1 != b8 {
		t.Errorf("energy bumps differ across worker counts: %d vs %d", b1, b8)
	}
	if m1 != m8 {
		t.Errorf("miscompilation count differs across worker counts: %d vs %d", m1, m8)
	}
}

// TestEnginePrewarmInvariance: epoch-cache pre-warming is cost-only. The
// finding set for a rotating run must be identical with warming disabled,
// at the default width, and warming the whole corpus.
func TestEnginePrewarmInvariance(t *testing.T) {
	run := func(prewarm int) []string {
		cfg := buggyEngineConfig(t, 24, 4, "P4C-C-04", "P4C-S-02")
		cfg.Seed = 11
		cfg.MutateRatio = 0.5
		cfg.SyncInterval = 8
		cfg.EpochPrograms = 8
		cfg.PrewarmSeeds = prewarm
		return fingerprintSet(core.NewEngine(cfg).Run(context.Background()))
	}
	ref := run(-1) // disabled
	if len(ref) == 0 {
		t.Fatal("no findings: the seeded defects should fire within 24 seeds")
	}
	for _, prewarm := range []int{8, 64} {
		if got := run(prewarm); strings.Join(got, "\n") != strings.Join(ref, "\n") {
			t.Errorf("finding set differs with PrewarmSeeds=%d:\nref:\n  %s\ngot:\n  %s",
				prewarm, strings.Join(ref, "\n  "), strings.Join(got, "\n  "))
		}
	}
}
