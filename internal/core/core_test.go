package core_test

import (
	"strings"
	"testing"

	"gauntlet/internal/bugs"
	"gauntlet/internal/core"
)

// TestRegistryShape checks the registry reproduces the paper's exact bug
// population (Table 2 cells are properties of the metadata; detection is
// exercised separately).
func TestRegistryShape(t *testing.T) {
	reg := bugs.Load()
	c := reg.CountTable2()
	want := map[string]int{
		"crash/filed/P4C": 26, "crash/confirmed/P4C": 25, "crash/fixed/P4C": 21,
		"semantic/filed/P4C": 26, "semantic/confirmed/P4C": 21, "semantic/fixed/P4C": 15,
		"crash/filed/BMv2": 2, "crash/confirmed/BMv2": 2, "crash/fixed/BMv2": 2,
		"semantic/filed/BMv2": 2, "semantic/confirmed/BMv2": 2, "semantic/fixed/BMv2": 2,
		"crash/filed/Tofino": 25, "crash/confirmed/Tofino": 20, "crash/fixed/Tofino": 4,
		"semantic/filed/Tofino": 10, "semantic/confirmed/Tofino": 8, "semantic/fixed/Tofino": 0,
	}
	for k, w := range want {
		if c[k] != w {
			t.Errorf("registry %s = %d, want %d", k, c[k], w)
		}
	}
	if got := len(reg.Confirmed()); got != 78 {
		t.Errorf("confirmed bugs = %d, want 78", got)
	}

	// §7.2 metadata invariants.
	tc, p4cCrash, cico, p4cSem, merged, p4cAll, spec, deriv := 0, 0, 0, 0, 0, 0, 0, 0
	for _, b := range reg.Confirmed() {
		if b.Platform == bugs.P4C {
			p4cAll++
			if b.MergeWeek > 0 {
				merged++
			}
			if b.Kind == bugs.Crash {
				p4cCrash++
				if b.RootCause == "type checker" {
					tc++
				}
			} else {
				p4cSem++
				if b.RootCause == "copy-in/copy-out" {
					cico++
				}
			}
		}
		if b.SpecChange {
			spec++
		}
		if b.Derivative {
			deriv++
		}
	}
	if tc != 18 || p4cCrash != 25 {
		t.Errorf("type checker crashes %d/%d, want 18/25", tc, p4cCrash)
	}
	if cico < 8 {
		t.Errorf("copy-in/copy-out semantic bugs %d, want >= 8", cico)
	}
	if merged != 16 || p4cAll != 46 {
		t.Errorf("merge regressions %d/%d, want 16/46", merged, p4cAll)
	}
	if spec != 6 {
		t.Errorf("spec changes %d, want 6", spec)
	}
	if deriv != 5 {
		t.Errorf("derivative bugs %d, want 5", deriv)
	}
}

// TestWitnessesTrigger checks every bug's witness actually satisfies its
// own trigger predicate — otherwise the defect can never fire.
func TestWitnessesTrigger(t *testing.T) {
	reg := bugs.Load()
	c := core.NewCampaign()
	for _, b := range reg.Bugs {
		dets, err := c.Hunt(b)
		if err != nil {
			t.Fatalf("%s: hunt: %v", b.ID, err)
		}
		_ = dets
		break // full hunt covered below; this loop is shape-checked there
	}
}

// TestHuntSampleBugs detects one representative bug per
// platform × kind combination end to end.
func TestHuntSampleBugs(t *testing.T) {
	reg := bugs.Load()
	c := core.NewCampaign()
	samples := []struct {
		id   string
		tech core.Technique
	}{
		{"P4C-C-01", core.CrashHunt},             // Fig. 5b type checker crash
		{"P4C-S-06", core.TranslationValidation}, // Fig. 5f exit/copy-out
		{"P4C-S-07", core.TranslationValidation}, // Fig. 5d slice copy-out
		{"P4C-S-16", core.TranslationValidation}, // predication regression
		{"BMV2-C-01", core.CrashHunt},
		{"BMV2-S-01", core.SymbolicExecution},
		{"TOF-C-01", core.CrashHunt},
		{"TOF-S-01", core.SymbolicExecution},
	}
	for _, s := range samples {
		b := reg.ByID(s.id)
		if b == nil {
			t.Fatalf("registry has no bug %s", s.id)
		}
		det, err := c.Hunt(b)
		if err != nil {
			t.Fatalf("%s: hunt: %v", s.id, err)
		}
		if !det.Detected {
			t.Errorf("%s (%s) not detected", s.id, b.Description)
			continue
		}
		if det.Technique != s.tech {
			t.Errorf("%s detected by %s, want %s (detail: %s)", s.id, det.Technique, s.tech, det.Detail)
		}
	}
}

// TestNoFalseAlarms runs the three techniques with no bug active: a clean
// compiler must produce no findings (the paper's false-alarm discipline,
// §5.2: unconfirmed reports are interpreter bugs).
func TestNoFalseAlarms(t *testing.T) {
	reg := bugs.Load()
	c := core.NewCampaign()
	// Every witness must compile cleanly and pass all three techniques on
	// the reference (defect-free) pipeline.
	seen := map[string]bool{}
	for _, b := range reg.Confirmed() {
		if seen[b.Witness] {
			continue
		}
		seen[b.Witness] = true
		det, err := c.HuntClean(b)
		if err != nil {
			t.Fatalf("%s: clean run: %v", b.ID, err)
		}
		if det != "" {
			t.Errorf("%s: clean pipeline flagged: %s", b.ID, det)
		}
	}
	if len(seen) < 10 {
		t.Fatalf("only %d distinct witnesses exercised", len(seen))
	}
}

// TestFullCampaignDetectsAll is the Table 2 reproduction: every confirmed
// bug must be detected via its witness.
func TestFullCampaignDetectsAll(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign is solver-heavy")
	}
	c := core.NewCampaign()
	dets, err := c.RunAll()
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	rep := core.NewReport(c.Registry, dets)
	if missed := rep.Missed(); len(missed) > 0 {
		t.Errorf("missed %d confirmed bugs:\n  %s", len(missed), strings.Join(missed, "\n  "))
	}
	t2 := rep.Table2()
	if !strings.Contains(t2, "(total 78)") {
		t.Errorf("Table 2 total != 78:\n%s", t2)
	}
	for _, row := range []string{
		"Crash      Filed         26      2       25",
		"           Confirmed     25      2       20",
		"           Fixed         21      2        4",
		"Semantic   Filed         26      2       10",
		"           Confirmed     21      2        8",
		"           Fixed         15      2        0",
	} {
		if !strings.Contains(t2, row) {
			t.Errorf("Table 2 missing row %q:\n%s", row, t2)
		}
	}
	t3 := rep.Table3()
	if !strings.Contains(t3, "front end") || !strings.Contains(t3, "back end") {
		t.Errorf("Table 3 malformed:\n%s", t3)
	}
	// The 4 invalid-transformation bugs are detected through the
	// emit/reparse instrumentation but never counted in the 78 (§7.2).
	for _, b := range c.Registry.InvalidTransforms() {
		d := dets[b.ID]
		if !d.Detected || !d.InvalidTransform {
			t.Errorf("%s: invalid transformation not detected via reparse (det=%+v)", b.ID, d)
		}
	}
	if !strings.Contains(rep.DeepDive(), "uncounted): 4") {
		t.Errorf("deep dive missing invalid-transform line:\n%s", rep.DeepDive())
	}
}

// TestRandomGenerationFindsBugs is the paper's actual discovery mode: no
// witness, only randomly generated programs. A sample of construct-
// triggered bugs must fall to pure generation (§4: the generator exists
// precisely so common constructs appear often enough to trip defects).
func TestRandomGenerationFindsBugs(t *testing.T) {
	if testing.Short() {
		t.Skip("generation-heavy")
	}
	reg := bugs.Load()
	c := core.NewCampaign()
	c.SkipWitness = true
	c.RandomSeeds = 40
	for _, id := range []string{
		"P4C-C-04", // type checker crash on mux — muxes are everywhere
		"P4C-C-05", // slice reads
		"P4C-C-13", // switch statements
	} {
		b := reg.ByID(id)
		det, err := c.Hunt(b)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !det.Detected {
			t.Errorf("%s (%s) not found by 40 random programs", id, b.Description)
			continue
		}
		if det.Via == "witness" {
			t.Errorf("%s: witness used despite SkipWitness", id)
		}
	}
}

// TestLevelStudyShape reproduces the Table 1 claim: generic fuzzing never
// reaches the deep compiler stages, while every Gauntlet-generated
// program compiles fully (the level 5-7 territory where the interesting
// bugs live).
func TestLevelStudyShape(t *testing.T) {
	s := core.RunLevelStudy(25)
	get := func(class string, lvl core.Level) int { return s.Counts[class][lvl] }
	if n := get("random bytes (AFL seed)", core.RejectedByLexer); n != 25 {
		t.Errorf("random bytes surviving the lexer: %d of 25 rejected", n)
	}
	if n := get("token salad", core.RejectedByParser) + get("token salad", core.RejectedByLexer); n != 25 {
		t.Errorf("token salad past the parser: %d of 25 rejected early", n)
	}
	if n := get("type-broken", core.RejectedByChecker); n != 25 {
		t.Errorf("type-broken inputs not stopped by the checker: %d of 25", n)
	}
	if n := get("Gauntlet generator", core.Accepted); n != 25 {
		t.Errorf("generated programs fully compiling: %d of 25", n)
	}
	// Byte mutants occasionally parse, but never deeper than the checker.
	deep := get("byte mutants (AFL)", core.CrashedCompiler) + get("byte mutants (AFL)", core.Accepted)
	if deep != 0 {
		t.Errorf("AFL-style mutants reached deep stages %d times", deep)
	}
}
