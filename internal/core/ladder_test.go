package core_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"gauntlet/internal/compiler"
	"gauntlet/internal/core"
	"gauntlet/internal/p4/parser"
	"gauntlet/internal/p4/types"
	"gauntlet/internal/testgen"
)

const ladderProg = `
header Eth { bit<16> kind; bit<16> val; }
struct Headers { Eth eth; }
control ig(inout Headers hdr) {
    action bump() { hdr.eth.val = hdr.eth.val * 16w4 + 16w0; }
    table t {
        key = { hdr.eth.kind : exact; }
        actions = { bump; NoAction; }
        default_action = NoAction();
    }
    apply {
        t.apply();
        if (hdr.eth.kind == 16w1 + 16w1) {
            hdr.eth.val = (hdr.eth.val + 16w0) * 16w2;
        }
    }
}
V1Switch(ig) main;
`

func ladderOracle(t *testing.T) (*core.Oracle, *core.Outcome) {
	t.Helper()
	prog, err := parser.Parse(ladderProg)
	if err != nil {
		t.Fatal(err)
	}
	if err := types.Check(prog); err != nil {
		t.Fatal(err)
	}
	o := &core.Oracle{
		Passes:       compiler.DefaultPasses(),
		MaxConflicts: 20000,
		TestOpts:     testgen.DefaultOptions(),
		Validate:     true,
		PacketTests:  true,
	}
	out := o.Compile(prog)
	if out.Err != nil || out.Crash != nil {
		t.Fatalf("clean program failed to compile: %+v", out)
	}
	return o, &out
}

// TestExamineParentCancellation: when the *caller's* context is cancelled
// (an engine drain, not a per-program deadline), the ladder must not
// retry and must surface the cancellation as Outcome.Err with partial
// results — never as a TimedOut verdict, which would misfile a drain as a
// pathological program.
func TestExamineParentCancellation(t *testing.T) {
	o, out := ladderOracle(t)
	o.Timeout = time.Minute // ladder armed, but the parent dies first
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	o.InspectLadder(ctx, out)
	if !errors.Is(out.Err, context.Canceled) {
		t.Fatalf("Err = %v, want context.Canceled", out.Err)
	}
	if out.TimedOut {
		t.Fatal("parent cancellation misreported as a per-program timeout")
	}
	if out.Retried {
		t.Fatal("ladder retried on parent cancellation; retry is for per-program deadlines only")
	}
}

// TestExamineLadderDegradesToTimedOut: a per-program wall-clock budget far
// too small for any inspection must walk the full ladder — attempt, one
// doubled-budget retry — and come out as an explicit TimedOut outcome
// with Err cleared: an accounted degradation, not a tool error and not a
// wedged worker.
func TestExamineLadderDegradesToTimedOut(t *testing.T) {
	o, out := ladderOracle(t)
	o.Timeout = time.Nanosecond
	o.InspectLadder(context.Background(), out)
	if out.Err != nil {
		t.Fatalf("TimedOut outcome must clear Err, got %v", out.Err)
	}
	if !out.TimedOut {
		t.Fatal("nanosecond budget did not degrade to TimedOut")
	}
	if !out.Retried {
		t.Fatal("ladder skipped the doubled-budget retry")
	}
	if out.Finding() {
		t.Fatalf("clean program produced a finding under starvation: %+v", out)
	}
}

// TestExamineLadderUnaffectedWithHeadroom: with a generous budget the
// ladder is invisible — same verdicts as no ladder at all, no retry, no
// timeout.
func TestExamineLadderUnaffectedWithHeadroom(t *testing.T) {
	o, out := ladderOracle(t)
	base := *out
	o.Inspect(context.Background(), &base)
	o.Timeout = time.Minute
	o.InspectLadder(context.Background(), out)
	if out.TimedOut || out.Retried || out.Err != nil {
		t.Fatalf("ladder fired with a minute of headroom: %+v", out)
	}
	if out.Finding() != base.Finding() || len(out.Failures) != len(base.Failures) {
		t.Fatalf("ladder changed the verdict: %+v vs %+v", out, base)
	}
}
