package core

import (
	"fmt"

	"gauntlet/internal/compiler"
	"gauntlet/internal/p4/eval"
	"gauntlet/internal/target/device"
	"gauntlet/internal/testgen"
)

// deviceFromResult wraps a compilation result as an executable device
// (both simulators zero-initialize undefined reads, matching the test
// generator's §6.2 assumption).
func deviceFromResult(res *compiler.Result) (*device.Device, error) {
	if res.Final == nil {
		return nil, fmt.Errorf("core: compilation has no final program")
	}
	return device.New(res.Final, eval.ZeroUndef), nil
}

// runCases injects every test case and collects mismatch descriptions
// together with the cases that produced them (same order), so a reducer
// can replay one concrete counterexample instead of regenerating a suite.
func runCases(dev *device.Device, cases []testgen.Case) ([]string, []testgen.Case, error) {
	var out []string
	var bad []testgen.Case
	for _, c := range cases {
		obs, err := dev.Inject(c.Config, c.Packet)
		if err != nil {
			return out, bad, err
		}
		want := device.Result{Drop: c.ExpectDrop, Packet: c.ExpectPacket}
		if !device.Equal(want, obs) {
			out = append(out, device.Mismatch{
				CaseSummary: c.Summary(),
				Expected:    want,
				Observed:    obs,
			}.String())
			bad = append(bad, c)
		}
	}
	return out, bad, nil
}
