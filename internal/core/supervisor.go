package core

import (
	"context"
	"fmt"
	"runtime/debug"
	"time"

	"gauntlet/internal/p4/ast"
	"gauntlet/internal/p4/printer"
)

// QuarantineRecord describes one fault the stage supervisor contained: a
// panic, a stall, or an oracle that exhausted its escalation ladder. The
// faulting program is a findings-adjacent artifact — it is preserved
// (printed source, stage, symptom, seed) rather than allowed to kill the
// process, and the run continues without it.
type QuarantineRecord struct {
	// Stage names the pipeline stage that faulted: "generate",
	// "compile", "oracle" or "reduce".
	Stage string `json:"stage"`
	// Seed is the schedule slot of the faulting program.
	Seed int64 `json:"seed"`
	// Kind classifies the fault: "panic" (contained stage panic),
	// "stall" (the stage exceeded its wall-clock stall budget and its
	// goroutine was abandoned) or "timeout" (the oracle's escalation
	// ladder — retry at doubled budgets included — still hit the
	// deadline).
	Kind string `json:"kind"`
	// Symptom is the panic message, or a human-readable budget report.
	Symptom string `json:"symptom"`
	// Origin records the program's provenance ("generate"/"mutate").
	Origin string `json:"origin,omitempty"`
	// Source is the printed faulting program, when printable.
	Source string `json:"source,omitempty"`
	// Stack is the panicking goroutine's stack trace (panics only).
	Stack string `json:"stack,omitempty"`
}

// stageFault is the supervisor's internal fault report.
type stageFault struct {
	kind    string // "panic" | "stall"
	symptom string
	stack   string
}

// supervise runs one unit's stage body under the engine's fault
// supervisor. fn must be compute-only — it writes results into captured
// variables and performs no channel sends — so an abandoned invocation
// can keep running harmlessly (it touches only concurrency-safe shared
// state: atomics, the validation cache, the interner) while the worker
// moves on; its results are simply never read.
//
// Three outcomes:
//   - (err, nil, false): fn completed; err is fn's own error.
//   - (nil, fault, false): fn panicked, or exceeded stallAfter and its
//     goroutine was abandoned — the caller quarantines the unit and the
//     worker continues, which is the "restart" in supervisor terms: the
//     loop survives, only the unit is lost.
//   - (nil, nil, true): the run's context was cancelled while fn ran —
//     draining, not a fault; nothing to quarantine.
//
// With stallAfter <= 0 fn runs inline (no goroutine): panics are still
// contained, but a stall blocks the worker — the zero-cost configuration
// for trusted stages.
func supervise(ctx context.Context, stallAfter time.Duration, fn func() error) (error, *stageFault, bool) {
	if stallAfter <= 0 {
		err, fault := runContained(fn)
		return err, fault, false
	}
	done := make(chan struct{})
	var err error
	var fault *stageFault
	go func() {
		defer close(done)
		err, fault = runContained(fn)
	}()
	t := time.NewTimer(stallAfter)
	defer t.Stop()
	select {
	case <-done:
		return err, fault, false
	case <-t.C:
		return nil, &stageFault{
			kind:    "stall",
			symptom: fmt.Sprintf("stage exceeded %v stall budget; goroutine abandoned", stallAfter),
		}, false
	case <-ctx.Done():
		return nil, nil, true
	}
}

// runContained invokes fn with panic containment.
func runContained(fn func() error) (err error, fault *stageFault) {
	defer func() {
		if r := recover(); r != nil {
			err = nil
			fault = &stageFault{
				kind:    "panic",
				symptom: fmt.Sprint(r),
				stack:   string(debug.Stack()),
			}
		}
	}()
	return fn(), nil
}

// safePrint prints a program for a quarantine record, tolerating ASTs a
// fault left unprintable (a panic's poisoned tree must not panic the
// supervisor too).
func safePrint(prog *ast.Program) (src string) {
	if prog == nil {
		return ""
	}
	defer func() {
		if r := recover(); r != nil {
			src = fmt.Sprintf("// unprintable program: %v", r)
		}
	}()
	return printer.Print(prog)
}

// quarantine accounts one contained fault and hands the record to the
// configured sink (called from the faulting stage's worker goroutine; the
// sink must be concurrency-safe).
func (e *Engine) quarantine(stage string, seed int64, origin string, prog *ast.Program, f *stageFault) {
	e.quarantined.Add(1)
	if f.kind == "stall" {
		e.stalls.Add(1)
	}
	if e.cfg.OnQuarantine == nil {
		return
	}
	e.cfg.OnQuarantine(QuarantineRecord{
		Stage:   stage,
		Seed:    seed,
		Kind:    f.kind,
		Symptom: f.symptom,
		Origin:  origin,
		Source:  safePrint(prog),
		Stack:   f.stack,
	})
}

// quarantineTimeout accounts an oracle that exhausted its escalation
// ladder (full verdict → doubled-budget retry → Unknown) as a quarantine
// of kind "timeout".
func (e *Engine) quarantineTimeout(seed int64, origin string, prog *ast.Program) {
	e.quarantine("oracle", seed, origin, prog, &stageFault{
		kind:    "timeout",
		symptom: fmt.Sprintf("oracle exceeded %v wall-clock budget twice (retry at 2x included)", e.oracle.Timeout),
	})
}

// injectFault runs the configured fault hook for one (stage, slot). It is
// called from inside the supervised closure, so an injected panic or
// stall is contained exactly like an organic one; an injected error takes
// the stage's tool-limitation path.
func (e *Engine) injectFault(ctx context.Context, stage string, slot int64) error {
	if e.cfg.FaultHook == nil {
		return nil
	}
	return e.cfg.FaultHook(ctx, stage, slot)
}
