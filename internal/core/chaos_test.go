package core_test

import (
	"context"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"gauntlet/internal/core"
	"gauntlet/internal/corpus"
	"gauntlet/internal/faultinject"
	"gauntlet/internal/persist"
)

// chaosPlan builds an injection plan over every supervised stage with all
// three fault kinds in the mix. Stalls sleep far past the stage budget so
// the supervisor must abandon them; they unwind via context at drain.
func chaosPlan(seed int64, every int64) *faultinject.Plan {
	spec := faultinject.Spec{Every: every, StallFor: 10 * time.Minute}
	return &faultinject.Plan{
		Seed: seed,
		Stages: map[string]faultinject.Spec{
			"generate": spec,
			"compile":  spec,
			"oracle":   spec,
			"reduce":   spec,
		},
	}
}

// TestChaosContainment: with panics, stalls and errors injected at every
// stage — and epoch rotation running underneath — the run must complete
// with zero process deaths, every fired panic and stall accounted for as
// exactly one quarantine record, every fired error as a tool-limitation
// count, and no goroutine leaks once the drain unwinds abandoned stalls.
// Run under -race in CI.
func TestChaosContainment(t *testing.T) {
	before := runtime.NumGoroutine()
	plan := chaosPlan(7, 5)
	cfg := buggyEngineConfig(t, 48, 4, "P4C-C-04", "P4C-S-02")
	cfg.EpochPrograms = 16
	cfg.SyncInterval = 8
	cfg.Cache = nil
	// Far above any natural stage duration (even under -race slowdown, so
	// the exact fired==quarantined accounting below can't pick up stray
	// genuine stalls), far below the injected 10-minute ones.
	cfg.StageTimeout = 3 * time.Second
	cfg.OracleTimeout = 5 * time.Second
	cfg.FaultHook = plan.Hook()
	var mu sync.Mutex
	var records []core.QuarantineRecord
	cfg.OnQuarantine = func(rec core.QuarantineRecord) {
		mu.Lock()
		records = append(records, rec)
		mu.Unlock()
	}
	e := core.NewEngine(cfg)
	e.Run(context.Background())
	s := e.Stats()
	panics, stalls, errors := plan.Fired()

	if panics == 0 || stalls == 0 || errors == 0 {
		t.Fatalf("plan too sparse: fired %d panics, %d stalls, %d errors — want all kinds", panics, stalls, errors)
	}
	if s.Generated != 48 {
		t.Errorf("generated %d, want 48 (a fault must cost one unit, never a slot)", s.Generated)
	}
	// Every fired panic and stall is exactly one quarantine record; the
	// errors took the tool-limitation path instead.
	if s.Quarantined != panics+stalls {
		t.Errorf("quarantined = %d, want fired panics+stalls = %d", s.Quarantined, panics+stalls)
	}
	if s.Stalls != stalls {
		t.Errorf("stall count = %d, want %d", s.Stalls, stalls)
	}
	mu.Lock()
	nrec := len(records)
	byKind := map[string]uint64{}
	for _, r := range records {
		byKind[r.Kind]++
	}
	mu.Unlock()
	if uint64(nrec) != s.Quarantined {
		t.Errorf("quarantine records = %d, stats say %d", nrec, s.Quarantined)
	}
	if byKind["panic"] != panics || byKind["stall"] != stalls {
		t.Errorf("records by kind = %v, want %d panics / %d stalls", byKind, panics, stalls)
	}
	if s.CompileErrors+s.OracleErrors < errors {
		t.Errorf("tool errors = %d+%d, want at least fired errors %d",
			s.CompileErrors, s.OracleErrors, errors)
	}

	// Abandoned stall goroutines unwind when Run's context is cancelled
	// at return; poll like TestEngineCancellation.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+1 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked after chaos run: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestChaosFindingInvariance: the finding set over non-faulted programs
// must be unchanged by injection. With MutateRatio=0 every slot's program
// is a pure function of its seed, so the expected set is the union of
// per-slot baselines over the slots the plan leaves alone — and the
// injected run must produce exactly that, on any worker count. Run under
// -race in CI.
func TestChaosFindingInvariance(t *testing.T) {
	const seeds = 24
	ids := []string{"P4C-C-04", "P4C-C-13"} // crash-family: slot-independent fingerprints
	plan := &faultinject.Plan{
		Seed: 11,
		Stages: map[string]faultinject.Spec{
			// generate/compile faults kill the whole unit, which is the
			// clean "this slot contributes nothing" semantics the union
			// below assumes.
			"generate": {Every: 7, StallFor: 10 * time.Minute},
			"compile":  {Every: 5, StallFor: 10 * time.Minute},
		},
	}

	// Per-slot baselines: one single-slot engine each.
	expected := map[string]bool{}
	baselineTotal := 0
	for slot := int64(0); slot < seeds; slot++ {
		cfg := buggyEngineConfig(t, 1, 1, ids...)
		cfg.StartSeed = slot
		cfg.Reduce = false
		fs := fingerprintSet(core.NewEngine(cfg).Run(context.Background()))
		baselineTotal += len(fs)
		if plan.FaultedAnywhere(slot) {
			continue
		}
		for _, fp := range fs {
			expected[fp] = true
		}
	}
	if baselineTotal == 0 {
		t.Fatal("baseline produced no findings; the defects should fire within 24 seeds")
	}
	if len(plan.Slots("generate", 0, seeds))+len(plan.Slots("compile", 0, seeds)) == 0 {
		t.Fatal("plan faults no slots; the invariance check would be vacuous")
	}

	run := func(workers int) []string {
		cfg := buggyEngineConfig(t, seeds, workers, ids...)
		cfg.Reduce = false
		cfg.StageTimeout = 3 * time.Second // catches 10-minute injected stalls, never natural work
		cfg.FaultHook = plan.Hook()
		return fingerprintSet(core.NewEngine(cfg).Run(context.Background()))
	}
	got := run(4)
	want := make([]string, 0, len(expected))
	for fp := range expected {
		want = append(want, fp)
	}
	if a, b := strings.Join(sortedStrings(want), "\n"), strings.Join(got, "\n"); a != b {
		t.Errorf("injected finding set differs from non-faulted baseline union:\nwant:\n  %s\ngot:\n  %s",
			strings.ReplaceAll(a, "\n", "\n  "), strings.ReplaceAll(b, "\n", "\n  "))
	}
	if again := run(1); strings.Join(again, "\n") != strings.Join(got, "\n") {
		t.Errorf("injected finding set depends on worker count:\nworkers=4:\n  %s\nworkers=1:\n  %s",
			strings.Join(got, "\n  "), strings.Join(again, "\n  "))
	}
}

func sortedStrings(in []string) []string {
	out := append([]string(nil), in...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// TestResumeNoDuplicateFindings: kill a campaign partway, resume from its
// durable state, and the union of the two incarnations' findings must
// equal an uninterrupted run's — with zero re-reports, even though the
// slots between the last checkpoint's watermark and the death are
// reprocessed (at-least-once semantics, deduplicated by the journal's
// fingerprints). Run under -race in CI.
func TestResumeNoDuplicateFindings(t *testing.T) {
	const total, killAt = 40, 20
	ids := []string{"P4C-C-04", "P4C-C-13"}
	base := func(start, n int64) core.EngineConfig {
		cfg := buggyEngineConfig(t, n, 4, ids...)
		cfg.StartSeed = start
		cfg.Reduce = false
		cfg.SyncInterval = 8
		return cfg
	}

	full := fingerprintSet(core.NewEngine(base(0, total)).Run(context.Background()))
	if len(full) == 0 {
		t.Fatal("uninterrupted run found nothing")
	}

	dir := t.TempDir()
	st, err := persist.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	// Incarnation one: journal every finding, checkpoint every 8 folded
	// programs, die (run out of slots) at killAt.
	cfg1 := base(0, killAt)
	cfg1.CheckpointPrograms = 8
	var e1 *core.Engine
	cfg1.OnFinding = func(f core.Finding) {
		if err := st.AppendFinding(f); err != nil {
			t.Errorf("journal: %v", err)
		}
	}
	cfg1.OnCheckpoint = func(next int64) {
		if next >= killAt {
			// Simulate SIGKILL: the process died before the engine's
			// shutdown checkpoint could be written, so resume must fall
			// back to the last periodic one and reprocess the gap.
			return
		}
		err := st.SaveCheckpoint(&persist.Checkpoint{
			NextSlot: next, Seed: cfg1.Seed, Corpus: e1.Corpus().Snapshot(),
		})
		if err != nil {
			t.Errorf("checkpoint: %v", err)
		}
	}
	e1 = core.NewEngine(cfg1)
	run1 := fingerprintSet(e1.Run(context.Background()))

	// Recover: the checkpoint's watermark trails the death (the last
	// fold at 20 was under the cadence), so resume reprocesses slots
	// [watermark, killAt) the journal already covers.
	cp, err := st.LoadCheckpoint()
	if err != nil || cp == nil {
		t.Fatalf("no checkpoint after incarnation one: %v", err)
	}
	if cp.NextSlot <= 0 || cp.NextSlot >= killAt {
		t.Fatalf("watermark %d not strictly inside (0, %d) — the reprocessing path would be untested", cp.NextSlot, killAt)
	}
	known, nrec, err := st.KnownFindings()
	if err != nil {
		t.Fatal(err)
	}
	if nrec != len(run1) {
		t.Fatalf("journal has %d records, incarnation one reported %d", nrec, len(run1))
	}
	restored, err := corpus.FromSnapshot(cp.Corpus)
	if err != nil {
		t.Fatal(err)
	}

	// Incarnation two: resume from the watermark with the journal's
	// fingerprints pre-seeding dedup.
	cfg2 := base(cp.NextSlot, total-cp.NextSlot)
	cfg2.Corpus = restored
	cfg2.KnownFindings = known
	var run2 []core.Finding
	cfg2.OnFinding = func(f core.Finding) { run2 = append(run2, f) }
	e2 := core.NewEngine(cfg2)
	e2.Run(context.Background())

	seen := map[string]bool{}
	for _, fp := range run1 {
		seen[fp] = true
	}
	for _, fp := range fingerprintSet(run2) {
		if seen[fp] {
			t.Errorf("finding re-reported after resume: %s", fp)
		}
		seen[fp] = true
	}
	union := make([]string, 0, len(seen))
	for fp := range seen {
		union = append(union, fp)
	}
	if a, b := strings.Join(sortedStrings(union), "\n"), strings.Join(full, "\n"); a != b {
		t.Errorf("resumed union differs from uninterrupted run:\nunion:\n  %s\nfull:\n  %s",
			strings.ReplaceAll(a, "\n", "\n  "), strings.ReplaceAll(b, "\n", "\n  "))
	}
}
