package generator

import (
	"gauntlet/internal/p4/ast"
)

// bitExpr generates a well-typed expression of type bit<w>.
func (g *gen) bitExpr(sc *scope, w int, depth int) ast.Expr {
	if depth <= 0 {
		return g.bitLeaf(sc, w)
	}
	switch g.pick(12) {
	case 0, 1:
		return g.bitLeaf(sc, w)
	case 2: // arithmetic
		op := []ast.BinaryOp{ast.OpAdd, ast.OpSub, ast.OpMul}[g.pick(3)]
		return ast.Bin(op, g.bitExpr(sc, w, depth-1), g.bitExpr(sc, w, depth-1))
	case 3: // saturating
		op := []ast.BinaryOp{ast.OpSatAdd, ast.OpSatSub}[g.pick(2)]
		return ast.Bin(op, g.bitExpr(sc, w, depth-1), g.bitExpr(sc, w, depth-1))
	case 4: // bitwise
		op := []ast.BinaryOp{ast.OpBitAnd, ast.OpBitOr, ast.OpBitXor}[g.pick(3)]
		return ast.Bin(op, g.bitExpr(sc, w, depth-1), g.bitExpr(sc, w, depth-1))
	case 5: // shift by a small constant or by a variable
		op := []ast.BinaryOp{ast.OpShl, ast.OpShr}[g.pick(2)]
		var amt ast.Expr
		if g.chance(2, 3) {
			amt = ast.Num(8, uint64(g.pick(w+2)))
		} else {
			amt = g.bitLeaf(sc, 8)
		}
		return ast.Bin(op, g.bitExpr(sc, w, depth-1), amt)
	case 6: // unary
		op := []ast.UnaryOp{ast.OpNeg, ast.OpBitNot}[g.pick(2)]
		return &ast.UnaryExpr{Op: op, X: g.bitExpr(sc, w, depth-1)}
	case 7: // mux
		return &ast.MuxExpr{
			Cond: g.boolExpr(sc, depth-1),
			Then: g.bitExpr(sc, w, depth-1),
			Else: g.bitExpr(sc, w, depth-1),
		}
	case 8: // concat splitting the width
		if w >= 2 {
			w1 := 1 + g.pick(w-1)
			return ast.Bin(ast.OpConcat, g.bitExpr(sc, w1, depth-1), g.bitExpr(sc, w-w1, depth-1))
		}
		return g.bitLeaf(sc, w)
	case 9: // cast from a different width
		src := widthChoices[g.pick(len(widthChoices))]
		return &ast.CastExpr{To: &ast.BitType{Width: w}, X: g.bitExpr(sc, src, depth-1)}
	case 10: // slice of a wider expression
		wider := w + 1 + g.pick(8)
		if wider > 64 {
			wider = 64
		}
		if wider <= w {
			return g.bitLeaf(sc, w)
		}
		lo := g.pick(wider - w + 1)
		return &ast.SliceExpr{X: g.bitExpr(sc, wider, depth-1), Hi: lo + w - 1, Lo: lo}
	default: // cast from bool
		return &ast.CastExpr{To: &ast.BitType{Width: w}, X: g.boolExpr(sc, depth-1)}
	}
}

// bitLeaf generates a literal, a variable of the exact width, or a
// slice/cast of another variable.
func (g *gen) bitLeaf(sc *scope, w int) ast.Expr {
	// Exact-width variables.
	var exact []variable
	var wider []variable
	for _, v := range sc.bitVars(false) {
		vw := v.typ.(*ast.BitType).Width
		if vw == w {
			exact = append(exact, v)
		} else if vw > w {
			wider = append(wider, v)
		}
	}
	roll := g.pick(10)
	switch {
	case roll < 4 && len(exact) > 0:
		return ast.CloneExpr(exact[g.pick(len(exact))].expr)
	case roll < 6 && len(wider) > 0:
		v := wider[g.pick(len(wider))]
		vw := v.typ.(*ast.BitType).Width
		lo := g.pick(vw - w + 1)
		return &ast.SliceExpr{X: ast.CloneExpr(v.expr), Hi: lo + w - 1, Lo: lo}
	case roll < 7 && len(sc.bitVars(false)) > 0:
		vars := sc.bitVars(false)
		v := vars[g.pick(len(vars))]
		return &ast.CastExpr{To: &ast.BitType{Width: w}, X: ast.CloneExpr(v.expr)}
	default:
		return ast.Num(w, g.r.Uint64())
	}
}

// boolExpr generates a well-typed boolean expression.
func (g *gen) boolExpr(sc *scope, depth int) ast.Expr {
	if depth <= 0 {
		return g.boolLeaf(sc)
	}
	switch g.pick(8) {
	case 0, 1:
		return g.boolLeaf(sc)
	case 2: // comparison over a random width
		w := widthChoices[g.pick(len(widthChoices))]
		op := []ast.BinaryOp{ast.OpEq, ast.OpNe, ast.OpLt, ast.OpLe, ast.OpGt, ast.OpGe}[g.pick(6)]
		return ast.Bin(op, g.bitExpr(sc, w, depth-1), g.bitExpr(sc, w, depth-1))
	case 3:
		op := []ast.BinaryOp{ast.OpLAnd, ast.OpLOr}[g.pick(2)]
		return ast.Bin(op, g.boolExpr(sc, depth-1), g.boolExpr(sc, depth-1))
	case 4:
		return &ast.UnaryExpr{Op: ast.OpLNot, X: g.boolExpr(sc, depth-1)}
	case 5:
		op := []ast.BinaryOp{ast.OpEq, ast.OpNe}[g.pick(2)]
		return ast.Bin(op, g.boolExpr(sc, depth-1), g.boolExpr(sc, depth-1))
	case 6: // header validity probe
		if len(sc.headerPaths) > 0 {
			h := sc.headerPaths[g.pick(len(sc.headerPaths))]
			return ast.Call(ast.Member(ast.CloneExpr(h.expr), "isValid"))
		}
		return g.boolLeaf(sc)
	default: // mux of bools
		return &ast.MuxExpr{
			Cond: g.boolExpr(sc, depth-1),
			Then: g.boolExpr(sc, depth-1),
			Else: g.boolExpr(sc, depth-1),
		}
	}
}

func (g *gen) boolLeaf(sc *scope) ast.Expr {
	if bools := sc.boolVars(false); len(bools) > 0 && g.chance(1, 2) {
		return ast.CloneExpr(bools[g.pick(len(bools))].expr)
	}
	return ast.Bool(g.chance(1, 2))
}
