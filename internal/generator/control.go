package generator

import (
	"fmt"

	"gauntlet/internal/p4/ast"
	"gauntlet/internal/p4/printer"
)

// controlDecl generates a control block. rich controls get tables,
// actions and functions; lean ones (egress) get a smaller construct mix.
func (g *gen) controlDecl(name, metaName string, rich bool) *ast.ControlDecl {
	c := &ast.ControlDecl{
		Name: name,
		Params: []ast.Param{
			{Dir: ast.DirInOut, Name: "hdr", Type: &ast.NamedType{Name: "Headers"}},
			{Dir: ast.DirInOut, Name: "sm", Type: &ast.NamedType{Name: metaName}},
		},
		Apply: &ast.BlockStmt{},
	}

	sc := &scope{}
	// Header field paths.
	for i, h := range g.headers {
		hPath := ast.Member(ast.N("hdr"), fmt.Sprintf("h%d", i+1))
		sc.headerPaths = append(sc.headerPaths, variable{
			expr:     hPath,
			typ:      &ast.HeaderType{Name: h.Name, Fields: h.Fields},
			writable: true,
		})
		for _, f := range h.Fields {
			sc.vars = append(sc.vars, variable{
				expr:     ast.Member(ast.CloneExpr(hPath), f.Name),
				typ:      f.Type,
				writable: true,
			})
		}
	}
	// Metadata fields.
	for _, f := range []struct {
		name string
		w    int
	}{{"ingress_port", 9}, {"egress_spec", 9}, {"drop_flag", 1}, {"user_meta", 16}} {
		sc.vars = append(sc.vars, variable{
			expr:     ast.Member(ast.N("sm"), f.name),
			typ:      &ast.BitType{Width: f.w},
			writable: true,
		})
	}

	nFuncs, nActions, nTables := 0, 0, 0
	if rich {
		nFuncs = g.pick(g.cfg.MaxFuncs + 1)
		nActions = 1 + g.pick(g.cfg.MaxActions)
		nTables = g.pick(g.cfg.MaxTables + 1)
	} else {
		nActions = g.pick(2)
	}

	// Control-local variables.
	for i := 0; i < g.pick(3); i++ {
		w := widthChoices[g.pick(len(widthChoices))]
		v := &ast.VarDecl{
			Name: g.fresh("gv"),
			Type: &ast.BitType{Width: w},
		}
		if g.chance(3, 4) {
			v.Init = ast.Num(w, g.r.Uint64())
		}
		c.Locals = append(c.Locals, v)
		sc.vars = append(sc.vars, variable{expr: ast.N(v.Name), typ: v.Type, writable: true})
		_ = i
	}

	for i := 0; i < nFuncs; i++ {
		f := g.functionDecl(sc)
		c.Locals = append(c.Locals, f)
		sc.funcs = append(sc.funcs, f)
	}

	// Table-bound actions carry only directionless (control-plane)
	// parameters; direct-call actions may use directions.
	var tableActions []*ast.ActionDecl
	for i := 0; i < nActions; i++ {
		forTable := nTables > 0 && g.chance(2, 3)
		a := g.actionDecl(sc, forTable)
		c.Locals = append(c.Locals, a)
		sc.actions = append(sc.actions, a)
		if forTable {
			tableActions = append(tableActions, a)
		}
	}

	for i := 0; i < nTables; i++ {
		t := g.tableDecl(sc, tableActions)
		c.Locals = append(c.Locals, t)
		sc.tables = append(sc.tables, t)
	}

	ctx := stmtCtx{allowExit: true, allowApply: true, allowCalls: true}
	c.Apply.Stmts = g.stmts(sc.clone(), g.cfg.MaxStmts, ctx)
	return c
}

// functionDecl generates a helper function: a bit-typed return, a mix of
// parameter directions, and a body that always ends in a return (with a
// chance of an early return — the Fig. 5a shape).
func (g *gen) functionDecl(outer *scope) *ast.FunctionDecl {
	w := widthChoices[g.pick(len(widthChoices))]
	f := &ast.FunctionDecl{
		Name:   g.fresh("fun"),
		Return: &ast.BitType{Width: w},
	}
	sc := outer.clone()
	sc.funcs = nil // no recursion, no calls to later functions
	nParams := 1 + g.pick(2)
	for i := 0; i < nParams; i++ {
		pw := widthChoices[g.pick(len(widthChoices))]
		dir := []ast.Direction{ast.DirIn, ast.DirInOut, ast.DirOut}[g.pick(3)]
		p := ast.Param{Dir: dir, Name: g.fresh("pv"), Type: &ast.BitType{Width: pw}}
		f.Params = append(f.Params, p)
		sc.vars = append(sc.vars, variable{expr: ast.N(p.Name), typ: p.Type, writable: dir != ast.DirIn})
	}
	ctx := stmtCtx{inFunction: true, returnWidth: w, allowCalls: false}
	body := g.stmts(sc, 1+g.pick(4), ctx)
	// Out parameters must be definitely assigned before use; give each an
	// unconditional initial store so reads are defined.
	var pre []ast.Stmt
	for _, p := range f.Params {
		if p.Dir == ast.DirOut {
			pw := p.Type.(*ast.BitType).Width
			pre = append(pre, ast.Assign(ast.N(p.Name), ast.Num(pw, g.r.Uint64())))
		}
	}
	body = append(pre, body...)
	body = append(body, &ast.ReturnStmt{Value: g.bitExpr(sc, w, g.cfg.ExprDepth)})
	f.Body = ast.Block(body...)
	return f
}

// actionDecl generates an action. Table-bound actions take only
// directionless parameters; direct-call actions may take inout/out
// parameters (the Fig. 5d/5f shapes).
func (g *gen) actionDecl(outer *scope, forTable bool) *ast.ActionDecl {
	a := &ast.ActionDecl{Name: g.fresh("act")}
	sc := outer.clone()
	sc.actions = nil // actions cannot call actions
	nParams := g.pick(3)
	for i := 0; i < nParams; i++ {
		pw := widthChoices[g.pick(len(widthChoices))]
		dir := ast.DirNone
		if !forTable && g.chance(1, 2) {
			dir = []ast.Direction{ast.DirIn, ast.DirInOut}[g.pick(2)]
		}
		p := ast.Param{Dir: dir, Name: g.fresh("av"), Type: &ast.BitType{Width: pw}}
		a.Params = append(a.Params, p)
		sc.vars = append(sc.vars, variable{
			expr:     ast.N(p.Name),
			typ:      p.Type,
			writable: p.Dir == ast.DirInOut || p.Dir == ast.DirOut,
		})
	}
	ctx := stmtCtx{inAction: true, allowExit: g.chance(1, 2), allowCalls: true}
	a.Body = ast.Block(g.stmts(sc, 1+g.pick(g.cfg.MaxStmts/2+1), ctx)...)
	return a
}

// tableDecl generates a match-action table over the given action pool.
func (g *gen) tableDecl(sc *scope, pool []*ast.ActionDecl) *ast.TableDecl {
	t := &ast.TableDecl{Name: g.fresh("t")}
	nKeys := 1 + g.pick(2)
	bits := sc.bitVars(false)
	for i := 0; i < nKeys && len(bits) > 0; i++ {
		v := bits[g.pick(len(bits))]
		t.Keys = append(t.Keys, ast.TableKey{Expr: ast.CloneExpr(v.expr), Match: ast.MatchExact})
	}
	for _, a := range pool {
		if g.chance(3, 4) {
			t.Actions = append(t.Actions, ast.ActionRef{Name: a.Name})
		}
	}
	t.Actions = append(t.Actions, ast.ActionRef{Name: "NoAction"})
	// Default action: one of the listed ones, with literal control-plane
	// arguments.
	idx := g.pick(len(t.Actions))
	ref := ast.ActionRef{Name: t.Actions[idx].Name}
	if ref.Name != "NoAction" {
		for _, a := range pool {
			if a.Name == ref.Name {
				for _, p := range a.Params {
					w := p.Type.(*ast.BitType).Width
					ref.Args = append(ref.Args, ast.Num(w, g.r.Uint64()))
				}
			}
		}
	}
	t.Default = &ref
	return t
}

// stmtCtx carries context-sensitive generation constraints.
type stmtCtx struct {
	inAction    bool
	inFunction  bool
	returnWidth int
	allowExit   bool
	allowApply  bool
	allowCalls  bool
}

// stmts generates up to budget statements.
func (g *gen) stmts(sc *scope, budget int, ctx stmtCtx) []ast.Stmt {
	var out []ast.Stmt
	n := 1 + g.pick(budget)
	for i := 0; i < n; i++ {
		s := g.stmt(sc, ctx, budget/2)
		if s == nil {
			continue
		}
		out = append(out, s)
		// exit/return end the straight-line flow.
		switch s.(type) {
		case *ast.ExitStmt, *ast.ReturnStmt:
			return out
		}
	}
	return out
}

func (g *gen) stmt(sc *scope, ctx stmtCtx, subBudget int) ast.Stmt {
	w := g.cfg.Weights
	total := w.Assign + w.If + w.Switch + w.ActionCall + w.FuncCall +
		w.TableApply + w.VarDecl + w.Validity + w.Exit + w.Block
	roll := g.pick(total)
	pickKind := func(weight int) bool {
		if roll < weight {
			return true
		}
		roll -= weight
		return false
	}
	switch {
	case pickKind(w.Assign):
		return g.assignStmt(sc)
	case pickKind(w.If):
		return g.ifStmt(sc, ctx, subBudget)
	case pickKind(w.Switch):
		return g.switchStmt(sc, ctx, subBudget)
	case pickKind(w.ActionCall):
		if !ctx.allowCalls || ctx.inAction || ctx.inFunction {
			return g.assignStmt(sc)
		}
		return g.actionCallStmt(sc)
	case pickKind(w.FuncCall):
		if !ctx.allowCalls || ctx.inFunction {
			return g.assignStmt(sc)
		}
		return g.funcCallStmt(sc)
	case pickKind(w.TableApply):
		if !ctx.allowApply || len(sc.tables) == 0 {
			return g.assignStmt(sc)
		}
		t := sc.tables[g.pick(len(sc.tables))]
		return &ast.CallStmt{Call: ast.Call(ast.Member(ast.N(t.Name), "apply"))}
	case pickKind(w.VarDecl):
		return g.varDeclStmt(sc)
	case pickKind(w.Validity):
		if len(sc.headerPaths) == 0 {
			return g.assignStmt(sc)
		}
		h := sc.headerPaths[g.pick(len(sc.headerPaths))]
		method := "setValid"
		if g.chance(1, 2) {
			method = "setInvalid"
		}
		return &ast.CallStmt{Call: ast.Call(ast.Member(ast.CloneExpr(h.expr), method))}
	case pickKind(w.Exit):
		if ctx.allowExit && !ctx.inFunction {
			return &ast.ExitStmt{}
		}
		if ctx.inFunction && ctx.returnWidth > 0 && g.chance(1, 2) {
			return &ast.ReturnStmt{Value: g.bitExpr(sc, ctx.returnWidth, 2)}
		}
		return g.assignStmt(sc)
	default:
		return &ast.BlockStmt{Stmts: g.stmts(sc.clone(), maxInt(subBudget, 1), ctx)}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func (g *gen) assignStmt(sc *scope) ast.Stmt {
	// Occasionally assign a bool variable.
	if bools := sc.boolVars(true); len(bools) > 0 && g.chance(1, 6) {
		v := bools[g.pick(len(bools))]
		return ast.Assign(ast.CloneExpr(v.expr), g.boolExpr(sc, g.cfg.ExprDepth))
	}
	bits := sc.bitVars(true)
	if len(bits) == 0 {
		return &ast.EmptyStmt{}
	}
	v := bits[g.pick(len(bits))]
	vw := v.typ.(*ast.BitType).Width
	lhs := ast.CloneExpr(v.expr)
	w := vw
	// Slice assignment with some probability (the Fig. 5d shape).
	if vw >= 2 && g.chance(1, 5) {
		lo := g.pick(vw - 1)
		hi := lo + g.pick(vw-lo)
		lhs = &ast.SliceExpr{X: lhs, Hi: hi, Lo: lo}
		w = hi - lo + 1
	}
	return ast.Assign(lhs, g.bitExpr(sc, w, g.cfg.ExprDepth))
}

func (g *gen) varDeclStmt(sc *scope) ast.Stmt {
	w := widthChoices[g.pick(len(widthChoices))]
	d := &ast.VarDeclStmt{Name: g.fresh("lv"), Type: &ast.BitType{Width: w}}
	// Mostly initialized; occasionally left undefined (the generator
	// accommodates undefined behaviour on purpose, §4.1).
	if g.chance(5, 6) {
		d.Init = g.bitExpr(sc, w, g.cfg.ExprDepth)
	}
	sc.vars = append(sc.vars, variable{expr: ast.N(d.Name), typ: d.Type, writable: true})
	return d
}

func (g *gen) ifStmt(sc *scope, ctx stmtCtx, budget int) ast.Stmt {
	cond := g.boolExpr(sc, g.cfg.ExprDepth)
	then := ast.Block(g.stmts(sc.clone(), maxInt(budget, 1), ctx)...)
	var els ast.Stmt
	if g.chance(1, 2) {
		els = ast.Block(g.stmts(sc.clone(), maxInt(budget, 1), ctx)...)
	}
	return ast.If(cond, then, els)
}

func (g *gen) switchStmt(sc *scope, ctx stmtCtx, budget int) ast.Stmt {
	bits := sc.bitVars(false)
	if len(bits) == 0 {
		return g.assignStmt(sc)
	}
	v := bits[g.pick(len(bits))]
	w := v.typ.(*ast.BitType).Width
	s := &ast.SwitchStmt{Tag: ast.CloneExpr(v.expr)}
	nCases := 1 + g.pick(2)
	for i := 0; i < nCases; i++ {
		s.Cases = append(s.Cases, ast.SwitchCase{
			Labels: []ast.Expr{ast.Num(w, g.r.Uint64())},
			Body:   ast.Block(g.stmts(sc.clone(), maxInt(budget, 1), ctx)...),
		})
	}
	s.Cases = append(s.Cases, ast.SwitchCase{
		Body: ast.Block(g.stmts(sc.clone(), maxInt(budget, 1), ctx)...),
	})
	return s
}

// actionCallStmt builds a direct action invocation with well-typed
// arguments: expressions for in/directionless, distinct writable lvalues
// for inout/out.
func (g *gen) actionCallStmt(sc *scope) ast.Stmt {
	if len(sc.actions) == 0 {
		return g.assignStmt(sc)
	}
	a := sc.actions[g.pick(len(sc.actions))]
	call := ast.Call(ast.N(a.Name))
	used := map[string]bool{}
	for _, p := range a.Params {
		pw := p.Type.(*ast.BitType).Width
		if p.Dir == ast.DirInOut || p.Dir == ast.DirOut {
			lv := g.writableLValue(sc, pw, used)
			if lv == nil {
				return g.assignStmt(sc) // no distinct lvalue available
			}
			call.Args = append(call.Args, lv)
			continue
		}
		call.Args = append(call.Args, g.bitExpr(sc, pw, 2))
	}
	return &ast.CallStmt{Call: call}
}

func (g *gen) funcCallStmt(sc *scope) ast.Stmt {
	if len(sc.funcs) == 0 {
		return g.assignStmt(sc)
	}
	f := sc.funcs[g.pick(len(sc.funcs))]
	call := ast.Call(ast.N(f.Name))
	used := map[string]bool{}
	for _, p := range f.Params {
		pw := p.Type.(*ast.BitType).Width
		if p.Dir.Writes() {
			lv := g.writableLValue(sc, pw, used)
			if lv == nil {
				return g.assignStmt(sc)
			}
			call.Args = append(call.Args, lv)
			continue
		}
		call.Args = append(call.Args, g.bitExpr(sc, pw, 2))
	}
	rw := f.Return.(*ast.BitType).Width
	// Half the time use the result, half discard it.
	if g.chance(1, 2) {
		if lv := g.writableLValue(sc, rw, used); lv != nil {
			return ast.Assign(lv, call)
		}
	}
	return &ast.CallStmt{Call: call}
}

// writableLValue finds a writable lvalue of exactly the given width whose
// root is not in used (avoiding overlapping out arguments), possibly
// slicing a wider variable.
func (g *gen) writableLValue(sc *scope, w int, used map[string]bool) ast.Expr {
	var candidates []ast.Expr
	for _, v := range sc.bitVars(true) {
		vw := v.typ.(*ast.BitType).Width
		key := printer.PrintExpr(v.expr)
		if used[key] {
			continue
		}
		if vw == w {
			candidates = append(candidates, ast.CloneExpr(v.expr))
		} else if vw > w {
			lo := g.pick(vw - w + 1)
			candidates = append(candidates, &ast.SliceExpr{
				X: ast.CloneExpr(v.expr), Hi: lo + w - 1, Lo: lo,
			})
		}
	}
	if len(candidates) == 0 {
		return nil
	}
	ch := candidates[g.pick(len(candidates))]
	if root := ast.RootIdent(ch); root != nil {
		// Mark the whole chain root expression as used, conservatively.
		used[printer.PrintExpr(stripSlice(ch))] = true
	}
	return ch
}

func stripSlice(e ast.Expr) ast.Expr {
	if s, ok := e.(*ast.SliceExpr); ok {
		return s.X
	}
	return e
}
