// Package generator implements Gauntlet's random P4 program generator
// (§4): it grows a random abstract syntax tree by probabilistically
// choosing which node to add, steered by per-construct weights, and
// guarantees the result is syntactically sound and well-typed — "if P4C's
// parser and type checker correctly rejected a generated program, we
// consider this to be a bug in our random program generator" (§4.2), a
// property this package's tests enforce over thousands of seeds.
//
// The generator is specialized to a back-end package skeleton (v1model for
// BMv2, a TNA-like skeleton for the Tofino stand-in) by emitting the
// architecture's parser/control/deparser blocks and metadata structures.
package generator

import (
	"fmt"
	"math/rand"

	"gauntlet/internal/p4/ast"
)

// Backend selects the package skeleton to generate against (§4.2: "our
// random program generator can be specialized towards different compiler
// back ends").
type Backend int

// Supported back-end skeletons.
const (
	// V1Model mirrors the BMv2 simple-switch architecture: parser,
	// ingress, egress, deparser.
	V1Model Backend = iota
	// TNA mirrors a Tofino-like architecture with its own metadata.
	TNA
)

// String names the backend.
func (b Backend) String() string {
	if b == TNA {
		return "tna"
	}
	return "v1model"
}

// Weights steers the probability of generating each statement kind.
// Values are relative; zero disables a construct.
type Weights struct {
	Assign     int
	If         int
	Switch     int
	ActionCall int
	FuncCall   int
	TableApply int
	VarDecl    int
	Validity   int // setValid / setInvalid
	Exit       int
	Block      int
}

// DefaultWeights mirrors the distribution used for the paper's campaigns:
// assignment-heavy with a steady diet of branching and side effects.
func DefaultWeights() Weights {
	return Weights{
		Assign:     10,
		If:         4,
		Switch:     1,
		ActionCall: 3,
		FuncCall:   3,
		TableApply: 3,
		VarDecl:    4,
		Validity:   2,
		Exit:       1,
		Block:      1,
	}
}

// Config parameterizes one generated program. The zero value is not
// useful; start from DefaultConfig.
type Config struct {
	Seed    int64
	Backend Backend
	// MaxStmts bounds the statement count per block body ("the amount of
	// randomly generated code in our tool is user-configurable", §4.1).
	MaxStmts int
	// ExprDepth bounds expression tree depth.
	ExprDepth int
	// MaxHeaders bounds the number of header types.
	MaxHeaders int
	// MaxActions and MaxTables bound control contents.
	MaxActions int
	MaxTables  int
	// MaxFuncs bounds helper functions (inout params + returns — the
	// Fig. 5a bug shape).
	MaxFuncs int
	Weights  Weights
}

// DefaultConfig returns the paper-scale configuration: small, targeted
// programs that keep solver formulas cheap (§2.3).
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:       seed,
		Backend:    V1Model,
		MaxStmts:   8,
		ExprDepth:  3,
		MaxHeaders: 3,
		MaxActions: 3,
		MaxTables:  2,
		MaxFuncs:   2,
		Weights:    DefaultWeights(),
	}
}

// widthChoices are the header field widths the generator draws from
// (realistic protocol field sizes).
var widthChoices = []int{1, 2, 4, 7, 8, 12, 16, 24, 32, 48}

// Generate produces a random, well-typed program for the configured
// backend. The same Config always yields the same program.
func Generate(cfg Config) *ast.Program {
	g := &gen{cfg: cfg, r: rand.New(rand.NewSource(cfg.Seed))}
	return g.program()
}

type gen struct {
	cfg  Config
	r    *rand.Rand
	n    int
	prog *ast.Program

	headers []*ast.HeaderDecl
	hdrType *ast.StructType
	metaTy  *ast.StructType
}

func (g *gen) fresh(prefix string) string {
	g.n++
	return fmt.Sprintf("%s_%d", prefix, g.n)
}

func (g *gen) pick(n int) int { return g.r.Intn(n) }

func (g *gen) chance(num, den int) bool { return g.r.Intn(den) < num }

// variable is a readable (and possibly writable) access path in scope.
type variable struct {
	expr     ast.Expr // access path template (cloned on use)
	typ      ast.Type
	writable bool
}

// scope is the generator's symbol table.
type scope struct {
	vars    []variable
	actions []*ast.ActionDecl
	funcs   []*ast.FunctionDecl
	tables  []*ast.TableDecl
	// headerPaths lists header-typed lvalues for validity calls.
	headerPaths []variable
}

func (s *scope) clone() *scope {
	c := &scope{}
	c.vars = append(c.vars, s.vars...)
	c.actions = append(c.actions, s.actions...)
	c.funcs = append(c.funcs, s.funcs...)
	c.tables = append(c.tables, s.tables...)
	c.headerPaths = append(c.headerPaths, s.headerPaths...)
	return c
}

// bitVars returns the in-scope bit-typed variables, optionally writable
// only.
func (s *scope) bitVars(writableOnly bool) []variable {
	var out []variable
	for _, v := range s.vars {
		if _, ok := v.typ.(*ast.BitType); ok && (!writableOnly || v.writable) {
			out = append(out, v)
		}
	}
	return out
}

func (s *scope) boolVars(writableOnly bool) []variable {
	var out []variable
	for _, v := range s.vars {
		if _, ok := v.typ.(*ast.BoolType); ok && (!writableOnly || v.writable) {
			out = append(out, v)
		}
	}
	return out
}

// program generates the whole compilation unit.
func (g *gen) program() *ast.Program {
	g.prog = &ast.Program{}

	// Header types and the Headers struct.
	nHeaders := 1 + g.pick(g.cfg.MaxHeaders)
	var hdrFields []ast.Field
	for i := 0; i < nHeaders; i++ {
		h := &ast.HeaderDecl{Name: fmt.Sprintf("Hdr%d", i+1)}
		nFields := 1 + g.pick(3)
		for j := 0; j < nFields; j++ {
			w := widthChoices[g.pick(len(widthChoices))]
			h.Fields = append(h.Fields, ast.Field{
				Name: fmt.Sprintf("f%d", j+1),
				Type: &ast.BitType{Width: w},
			})
		}
		g.prog.Decls = append(g.prog.Decls, h)
		g.headers = append(g.headers, h)
		hdrFields = append(hdrFields, ast.Field{
			Name: fmt.Sprintf("h%d", i+1),
			Type: &ast.NamedType{Name: h.Name},
		})
	}
	g.prog.Decls = append(g.prog.Decls, &ast.StructDecl{Name: "Headers", Fields: hdrFields})

	// Architecture metadata.
	metaName := "standard_metadata_t"
	if g.cfg.Backend == TNA {
		metaName = "ig_intr_md_t"
	}
	metaFields := []ast.Field{
		{Name: "ingress_port", Type: &ast.BitType{Width: 9}},
		{Name: "egress_spec", Type: &ast.BitType{Width: 9}},
		{Name: "drop_flag", Type: &ast.BitType{Width: 1}},
		{Name: "user_meta", Type: &ast.BitType{Width: 16}},
	}
	g.prog.Decls = append(g.prog.Decls, &ast.StructDecl{Name: metaName, Fields: metaFields})

	// Blocks.
	g.prog.Decls = append(g.prog.Decls, g.parserDecl(metaName))
	g.prog.Decls = append(g.prog.Decls, g.controlDecl("ingress", metaName, true))
	g.prog.Decls = append(g.prog.Decls, g.controlDecl("egress", metaName, false))
	g.prog.Decls = append(g.prog.Decls, g.deparserDecl())

	pkg := "V1Switch"
	if g.cfg.Backend == TNA {
		pkg = "TofinoSwitch"
	}
	g.prog.Decls = append(g.prog.Decls, &ast.Instantiation{
		Package: pkg,
		Args:    []string{"p", "ingress", "egress", "dep"},
		Name:    "main",
	})
	return g.prog
}

// parserDecl builds the parser: extract the first header, then optionally
// select on one of its fields to extract subsequent headers.
func (g *gen) parserDecl(metaName string) *ast.ParserDecl {
	p := &ast.ParserDecl{
		Name: "p",
		Params: []ast.Param{
			{Name: "pkt", Type: &ast.PacketType{}},
			{Dir: ast.DirOut, Name: "hdr", Type: &ast.NamedType{Name: "Headers"}},
			{Dir: ast.DirInOut, Name: "sm", Type: &ast.NamedType{Name: metaName}},
		},
	}
	extract := func(i int) ast.Stmt {
		return &ast.CallStmt{Call: ast.Call(
			ast.Member(ast.N("pkt"), "extract"),
			ast.Member(ast.N("hdr"), fmt.Sprintf("h%d", i+1)),
		)}
	}
	start := ast.ParserState{Name: "start", Stmts: []ast.Stmt{extract(0)}}
	if len(g.headers) == 1 || g.chance(1, 4) {
		start.Trans = &ast.TransDirect{Next: "accept"}
		p.States = append(p.States, start)
		return p
	}
	// Select on a field of the first header.
	h0 := g.headers[0]
	fieldIdx := g.pick(len(h0.Fields))
	field := h0.Fields[fieldIdx]
	w := field.Type.(*ast.BitType).Width
	sel := &ast.TransSelect{
		Expr: ast.Member(ast.Member(ast.N("hdr"), "h1"), field.Name),
	}
	for i := 1; i < len(g.headers); i++ {
		stateName := fmt.Sprintf("parse_h%d", i+1)
		sel.Cases = append(sel.Cases, ast.SelectCase{
			Value: ast.Num(w, uint64(g.r.Uint64())),
			Next:  stateName,
		})
		next := "accept"
		if i+1 < len(g.headers) && g.chance(1, 2) {
			next = fmt.Sprintf("parse_h%d", i+2)
		}
		p.States = append(p.States, ast.ParserState{
			Name:  stateName,
			Stmts: []ast.Stmt{extract(i)},
			Trans: &ast.TransDirect{Next: next},
		})
	}
	sel.Cases = append(sel.Cases, ast.SelectCase{Next: "accept"}) // default
	start.Trans = sel
	p.States = append(p.States, ast.ParserState{})
	copy(p.States[1:], p.States[:len(p.States)-1])
	p.States[0] = start
	// De-duplicate chained states that may now be unreachable is
	// unnecessary: unreachable states are legal P4.
	return p
}

// deparserDecl emits every header in order.
func (g *gen) deparserDecl() *ast.ControlDecl {
	d := &ast.ControlDecl{
		Name: "dep",
		Params: []ast.Param{
			{Name: "pkt", Type: &ast.PacketType{}},
			{Dir: ast.DirIn, Name: "hdr", Type: &ast.NamedType{Name: "Headers"}},
		},
		Apply: &ast.BlockStmt{},
	}
	for i := range g.headers {
		d.Apply.Stmts = append(d.Apply.Stmts, &ast.CallStmt{Call: ast.Call(
			ast.Member(ast.N("pkt"), "emit"),
			ast.Member(ast.N("hdr"), fmt.Sprintf("h%d", i+1)),
		)})
	}
	return d
}
