package generator_test

import (
	"testing"

	"gauntlet/internal/compiler"
	"gauntlet/internal/generator"
	"gauntlet/internal/p4/ast"
	"gauntlet/internal/p4/parser"
	"gauntlet/internal/p4/printer"
	"gauntlet/internal/p4/types"
	"gauntlet/internal/validate"
)

// TestGeneratedProgramsWellTyped enforces the paper's generator contract
// (§4.2): every generated program must pass the parser and type checker.
// Rejection is a generator bug.
func TestGeneratedProgramsWellTyped(t *testing.T) {
	for seed := int64(0); seed < 300; seed++ {
		cfg := generator.DefaultConfig(seed)
		if seed%2 == 1 {
			cfg.Backend = generator.TNA
		}
		prog := generator.Generate(cfg)
		text := printer.Print(prog)
		reparsed, err := parser.Parse(text)
		if err != nil {
			t.Fatalf("seed %d: generated program does not parse: %v\n%s", seed, err, text)
		}
		if err := types.Check(reparsed); err != nil {
			t.Fatalf("seed %d: generated program does not type-check: %v\n%s", seed, err, text)
		}
	}
}

// TestGeneratedProgramsDeterministic checks reproducibility: the same
// seed yields the same program (campaigns must be replayable).
func TestGeneratedProgramsDeterministic(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		a := printer.Print(generator.Generate(generator.DefaultConfig(seed)))
		b := printer.Print(generator.Generate(generator.DefaultConfig(seed)))
		if a != b {
			t.Fatalf("seed %d: generation is not deterministic", seed)
		}
	}
}

// TestGeneratedProgramsRoundTrip checks print∘parse∘print stability on
// generated programs.
func TestGeneratedProgramsRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		prog := generator.Generate(generator.DefaultConfig(seed))
		t1 := printer.Print(prog)
		p2, err := parser.Parse(t1)
		if err != nil {
			t.Fatalf("seed %d: reparse: %v", seed, err)
		}
		t2 := printer.Print(p2)
		if t1 != t2 {
			t.Fatalf("seed %d: print/parse round trip not stable", seed)
		}
	}
}

// TestGeneratedProgramsDiverse spot-checks that generation actually
// exercises the constructs the weights enable.
func TestGeneratedProgramsDiverse(t *testing.T) {
	seen := map[string]bool{}
	for seed := int64(0); seed < 80; seed++ {
		prog := generator.Generate(generator.DefaultConfig(seed))
		for _, c := range prog.Controls() {
			if len(c.Tables()) > 0 {
				seen["table"] = true
			}
			if len(c.Actions()) > 0 {
				seen["action"] = true
			}
			ast.InspectStmt(c.Apply, func(s ast.Stmt) bool {
				switch s.(type) {
				case *ast.IfStmt:
					seen["if"] = true
				case *ast.SwitchStmt:
					seen["switch"] = true
				case *ast.ExitStmt:
					seen["exit"] = true
				}
				return true
			}, func(e ast.Expr) bool {
				switch x := e.(type) {
				case *ast.SliceExpr:
					seen["slice"] = true
				case *ast.MuxExpr:
					seen["mux"] = true
				case *ast.CallExpr:
					if m, ok := x.Func.(*ast.MemberExpr); ok && m.Member == "isValid" {
						seen["isValid"] = true
					}
				}
				return true
			})
		}
		if p := prog.Parser("p"); p != nil && len(p.States) > 1 {
			seen["multi-state-parser"] = true
		}
	}
	for _, want := range []string{"table", "action", "if", "slice", "mux", "isValid", "multi-state-parser", "exit"} {
		if !seen[want] {
			t.Errorf("construct %q never generated across 80 seeds", want)
		}
	}
}

// TestGeneratedProgramsCompileAndValidate runs generated programs through
// the full reference pipeline with translation validation: with no seeded
// defects, every pass must preserve semantics on random programs too.
func TestGeneratedProgramsCompileAndValidate(t *testing.T) {
	if testing.Short() {
		t.Skip("solver-heavy")
	}
	c := compiler.New(compiler.DefaultPasses()...)
	for seed := int64(0); seed < 8; seed++ {
		prog := generator.Generate(generator.DefaultConfig(seed))
		res, err := c.Compile(prog)
		if err != nil {
			t.Fatalf("seed %d: compile: %v\n%s", seed, err, printer.Print(prog))
		}
		// The conflict budget turns pathological solver instances into
		// Unknown verdicts instead of hangs (Failures only counts Sat).
		verdicts, err := validate.Snapshots(res, validate.Options{MaxConflicts: 20000})
		if err != nil {
			t.Fatalf("seed %d: validate: %v\n%s", seed, err, printer.Print(prog))
		}
		for _, f := range validate.Failures(verdicts) {
			t.Errorf("seed %d: MISCOMPILATION %s\n--- program ---\n%s", seed, f, printer.Print(prog))
		}
	}
}
