package testgen_test

import (
	"context"
	"errors"
	"testing"

	"gauntlet/internal/testgen"
)

// flipCtx cancels itself deterministically after a fixed number of Err()
// polls (Done stays nil so the solver watchdog is inert) — the clock-free
// way to stop path enumeration mid-walk.
type flipCtx struct {
	context.Context
	polls, after int
}

func (c *flipCtx) Done() <-chan struct{} { return nil }
func (c *flipCtx) Err() error {
	c.polls++
	if c.polls > c.after {
		return context.Canceled
	}
	return nil
}

// TestGenerateContextPartial: cancellation mid-enumeration must hand back
// the cases gathered so far alongside ctx.Err() — a truncated suite still
// catches bugs, and the caller decides what the truncation means.
func TestGenerateContextPartial(t *testing.T) {
	prog := mustProg(t, twoPath)
	full, err := testgen.Generate(prog, testgen.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(full) < 2 {
		t.Fatalf("need ≥2 cases for a meaningful partial run, got %d", len(full))
	}

	// Scan the poll budget upward until the flip lands strictly
	// mid-enumeration, so the test doesn't depend on the exact number of
	// context checks per path.
	for after := 1; ; after++ {
		cases, err := testgen.GenerateContext(
			&flipCtx{Context: context.Background(), after: after}, prog, testgen.DefaultOptions())
		if err == nil {
			t.Fatalf("no poll budget ≤%d produced a mid-enumeration cancellation (full suite has %d cases)",
				after, len(full))
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled run returned err = %v, want context.Canceled", err)
		}
		if len(cases) == 0 || len(cases) >= len(full) {
			continue // flipped before the first case or after the last; poll later
		}
		return
	}
}
