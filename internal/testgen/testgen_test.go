package testgen_test

import (
	"testing"

	"gauntlet/internal/generator"
	"gauntlet/internal/p4/ast"
	"gauntlet/internal/p4/parser"
	"gauntlet/internal/p4/types"
	"gauntlet/internal/target/bmv2"
	"gauntlet/internal/testgen"
)

const twoPath = `
header Eth { bit<8> kind; bit<8> val; }
struct Headers { Eth eth; }
struct standard_metadata_t { bit<9> ingress_port; bit<9> egress_spec; }
parser p(packet pkt, out Headers hdr, inout standard_metadata_t sm) {
    state start {
        pkt.extract(hdr.eth);
        transition accept;
    }
}
control ingress(inout Headers hdr, inout standard_metadata_t sm) {
    apply {
        if (hdr.eth.kind == 8w1) {
            hdr.eth.val = hdr.eth.val + 8w10;
        } else {
            hdr.eth.val = ~hdr.eth.val;
        }
    }
}
control egress(inout Headers hdr, inout standard_metadata_t sm) {
    apply { }
}
control dep(packet pkt, in Headers hdr) {
    apply { pkt.emit(hdr.eth); }
}
V1Switch(p, ingress, egress, dep) main;
`

func mustProg(t *testing.T, src string) *ast.Program {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := types.Check(prog); err != nil {
		t.Fatalf("check: %v", err)
	}
	return prog
}

// TestCasesCoverPaths checks path coverage: both branch polarities and
// the short-packet drop path must appear.
func TestCasesCoverPaths(t *testing.T) {
	prog := mustProg(t, twoPath)
	cases, err := testgen.Generate(prog, testgen.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var sawKind1, sawOther, sawDrop bool
	for _, c := range cases {
		if c.ExpectDrop {
			sawDrop = true
			continue
		}
		if len(c.Packet) >= 1 && c.Packet[0] == 1 {
			sawKind1 = true
		} else {
			sawOther = true
		}
	}
	if !sawKind1 || !sawOther || !sawDrop {
		t.Fatalf("path coverage incomplete: kind1=%v other=%v drop=%v (%d cases)",
			sawKind1, sawOther, sawDrop, len(cases))
	}
}

// TestExpectationsMatchReferenceTarget is the §6 soundness baseline: on a
// correctly compiled target, every generated expectation must hold.
func TestExpectationsMatchReferenceTarget(t *testing.T) {
	prog := mustProg(t, twoPath)
	cases, err := testgen.Generate(prog, testgen.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	target, err := bmv2.Compile(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	stf := &bmv2.STF{Target: target}
	mismatches, err := stf.Run(cases)
	if err != nil {
		t.Fatal(err)
	}
	if len(mismatches) > 0 {
		t.Fatalf("reference target disagrees with symbolic expectations:\n%v", mismatches)
	}
}

// TestExpectationsOnGeneratedPrograms extends the baseline to random
// programs with tables: reference compilation must satisfy every case.
func TestExpectationsOnGeneratedPrograms(t *testing.T) {
	if testing.Short() {
		t.Skip("solver-heavy")
	}
	for seed := int64(0); seed < 6; seed++ {
		prog := generator.Generate(generator.DefaultConfig(seed))
		if err := types.Check(prog); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		opts := testgen.DefaultOptions()
		opts.MaxCases = 12
		opts.MaxConflicts = 20000
		cases, err := testgen.Generate(prog, opts)
		if err != nil {
			t.Fatalf("seed %d: testgen: %v", seed, err)
		}
		target, err := bmv2.Compile(prog, nil)
		if err != nil {
			t.Fatalf("seed %d: compile: %v", seed, err)
		}
		stf := &bmv2.STF{Target: target}
		mismatches, err := stf.Run(cases)
		if err != nil {
			t.Fatalf("seed %d: stf: %v", seed, err)
		}
		if len(mismatches) > 0 {
			t.Fatalf("seed %d: %d mismatches on the reference target:\n%v",
				seed, len(mismatches), mismatches)
		}
	}
}

// TestNonZeroPreference checks the §6.2 behaviour: generated inputs avoid
// all-zero fields when the path allows it.
func TestNonZeroPreference(t *testing.T) {
	prog := mustProg(t, twoPath)
	cases, err := testgen.Generate(prog, testgen.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cases {
		if c.ExpectDrop || len(c.Packet) < 2 {
			continue
		}
		if c.Packet[1] == 0 {
			t.Errorf("case %s: val field is zero despite non-zero preference", c.Summary())
		}
	}
}

// TestTableConfigExtraction checks that symbolic table state turns into
// concrete entries driving the right action.
func TestTableConfigExtraction(t *testing.T) {
	src := `
header Eth { bit<8> kind; bit<8> val; }
struct Headers { Eth eth; }
struct standard_metadata_t { bit<9> ingress_port; }
parser p(packet pkt, out Headers hdr, inout standard_metadata_t sm) {
    state start {
        pkt.extract(hdr.eth);
        transition accept;
    }
}
control ingress(inout Headers hdr, inout standard_metadata_t sm) {
    action setv(bit<8> v) { hdr.eth.val = v; }
    table t {
        key = { hdr.eth.kind : exact; }
        actions = { setv; NoAction; }
        default_action = NoAction();
    }
    apply { t.apply(); }
}
control egress(inout Headers hdr, inout standard_metadata_t sm) {
    apply { }
}
control dep(packet pkt, in Headers hdr) {
    apply { pkt.emit(hdr.eth); }
}
V1Switch(p, ingress, egress, dep) main;
`
	prog := mustProg(t, src)
	cases, err := testgen.Generate(prog, testgen.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// At least one case must install a table entry binding setv.
	found := false
	for _, c := range cases {
		if tc := c.Config["ingress.t"]; tc != nil && len(tc.Entries) > 0 && tc.Entries[0].Action == "setv" {
			found = true
		}
	}
	if !found {
		t.Fatal("no generated case exercises the setv entry")
	}
	// And all of them must hold on the reference target.
	target, err := bmv2.Compile(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	stf := &bmv2.STF{Target: target}
	mismatches, err := stf.Run(cases)
	if err != nil {
		t.Fatal(err)
	}
	if len(mismatches) > 0 {
		t.Fatalf("mismatches on reference target: %v", mismatches)
	}
}
