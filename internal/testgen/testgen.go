// Package testgen implements Gauntlet's symbolic-execution test-case
// generation (§6): from the composed pipeline formula it enumerates
// program paths by toggling branch-condition polarities, solves each path
// condition for a concrete input (preferring non-zero values, §6.2), and
// computes the expected output packet from the same model. The resulting
// input/output packet pairs drive black-box back ends (the Tofino
// stand-in) through their packet test framework.
package testgen

import (
	"context"
	"fmt"
	"math/bits"
	"strings"

	"gauntlet/internal/bitstream"
	"gauntlet/internal/p4/ast"
	"gauntlet/internal/p4/eval"
	"gauntlet/internal/smt"
	"gauntlet/internal/smt/solver"
	"gauntlet/internal/sym"
)

// Case is one end-to-end test: an input packet and table configuration,
// plus the expected result predicted by the symbolic semantics.
type Case struct {
	// Packet is the input packet.
	Packet []byte
	// Config is the table state to install before injecting the packet.
	Config eval.Config
	// ExpectDrop is true when the pipeline should emit nothing (parser
	// reject).
	ExpectDrop bool
	// ExpectPacket is the expected output packet when not dropped.
	ExpectPacket []byte
	// Model is the full solver assignment (diagnostics).
	Model smt.Assignment
	// PathID identifies the branch-polarity combination.
	PathID string
}

// Options bounds test generation.
type Options struct {
	// MaxCases caps the number of generated tests.
	MaxCases int
	// MaxConflicts bounds each solver call.
	MaxConflicts int
	// MaxBranches bounds how many branch conditions are toggled (deeper
	// conditions keep their solver-chosen polarity). Guards against the
	// exponential path explosion the paper notes (§6.2).
	MaxBranches int
	// UndefValue is the value ascribed to undefined reads, which must
	// match the target's behaviour (BMv2 zero-initializes, §6.2).
	UndefValue uint64
	// DisablePreferences turns off the non-zero / non-literal /
	// large-value model steering and the complement second model — the
	// ablation showing why §6.2 asks Z3 for non-zero pairs.
	DisablePreferences bool
	// DisableSteering turns off concrete-trace branch ordering: by
	// default, two 64-packet batches of deterministic pseudo-random
	// inputs run through a bit-parallel tape over the toggled branch
	// conditions, and each condition's rarely-taken polarity is probed
	// first — so under a binding MaxCases budget the suite covers the
	// paths random execution would miss, instead of re-deriving the
	// common ones. Ordering is a pure function of the condition terms'
	// structure, so it is identical across runs and worker counts.
	DisableSteering bool
	// SMT is the context the symbolic pipeline and every auxiliary
	// constraint are built in (nil = the default context). The engine
	// passes its current epoch context so test generation's terms are
	// reclaimed with the epoch.
	SMT *smt.Context
}

// smtCtx returns the configured smt context, defaulting to the
// process-wide one.
func (o Options) smtCtx() *smt.Context {
	if o.SMT != nil {
		return o.SMT
	}
	return smt.DefaultContext()
}

// DefaultOptions mirrors the paper's small-program regime.
func DefaultOptions() Options {
	return Options{MaxCases: 32, MaxConflicts: 200000, MaxBranches: 10, UndefValue: 0}
}

// Generate builds test cases for a program's full pipeline.
func Generate(prog *ast.Program, opts Options) ([]Case, error) {
	return GenerateContext(context.Background(), prog, opts)
}

// GenerateContext is Generate with cancellation: the context is checked at
// every node of the path enumeration and polled inside each solver probe
// (a deadline degrades the probe to Unknown mid-search), and when it fires
// mid-stream the cases gathered so far are returned together with
// ctx.Err().
//
// Programs outside the symbolic subset (e.g. named-type locals the
// pipeline composer cannot model) surface as errors, not panics: like an
// interpreter gap, an unsupported construct is a tool limitation to count,
// never a finding — fuzzing streams must keep flowing past it.
func GenerateContext(ctx context.Context, prog *ast.Program, opts Options) (cases []Case, err error) {
	defer func() {
		if r := recover(); r != nil {
			cases, err = nil, fmt.Errorf("testgen: symbolic pipeline: %v", r)
		}
	}()
	pipe, perr := sym.PipelineOfIn(opts.smtCtx(), prog)
	if perr != nil {
		return nil, perr
	}
	return FromPipelineContext(ctx, prog, pipe, opts)
}

// FromPipeline builds test cases from an already-composed pipeline.
func FromPipeline(prog *ast.Program, pipe *sym.Pipeline, opts Options) ([]Case, error) {
	return FromPipelineContext(context.Background(), prog, pipe, opts)
}

// FromPipelineContext is FromPipeline with cancellation (see
// GenerateContext).
func FromPipelineContext(ctx context.Context, prog *ast.Program, pipe *sym.Pipeline, opts Options) ([]Case, error) {
	if opts.MaxCases <= 0 {
		opts.MaxCases = 32
	}

	// Base constraints: byte-aligned packet length within the parser's
	// reach, and the target's undefined-value semantics pinned (§6.2
	// choice 2: ascribe specific values and check conformance).
	// Build every auxiliary term in the pipeline's context: the formula
	// and its constraints retire together when the owning epoch does.
	sctx := pipe.Ctx
	if sctx == nil {
		sctx = opts.smtCtx()
	}
	maxBits := ((pipe.PacketBits + 7) / 8) * 8
	pktLen := sctx.Var("pkt_len", 32)
	base := []*smt.Term{
		smt.Ule(pktLen, sctx.Const(uint64(maxBits), 32)),
		smt.Eq(smt.Extract(pktLen, 2, 0), sctx.Const(0, 3)),
	}
	// Pipeline-entry state the target initializes (standard metadata):
	// the device zero-fills it, so the formula's free inputs must be
	// pinned the same way or expectations would assume uncontrollable
	// values (§6.2's environment-problem discipline).
	for _, ext := range pipe.ExternalInputs {
		v := ext.Term
		if v.Op != smt.OpVar {
			continue
		}
		if v.IsBool() {
			base = append(base, smt.Not(v))
			continue
		}
		base = append(base, smt.Eq(v, sctx.Const(opts.UndefValue, v.W)))
	}
	for _, h := range pipe.HavocNames {
		w := havocWidth(h)
		if w == 0 {
			v := sctx.BoolVar(h)
			if opts.UndefValue&1 == 1 {
				base = append(base, v)
			} else {
				base = append(base, smt.Not(v))
			}
			continue
		}
		base = append(base, smt.Eq(sctx.Var(h, w), sctx.Const(opts.UndefValue, w)))
	}

	conds := pipe.BranchConds
	if len(conds) > opts.MaxBranches {
		conds = conds[:opts.MaxBranches]
	}

	// Model preferences, applied greedily per path: every parsed field
	// non-zero (§6.2: "zero values by default may mask erroneous
	// behavior"), and away from the program's own literals — boundary
	// collisions with program constants mask miscompilations the same way
	// zero does.
	var prefs []*smt.Term
	for _, f := range pipe.FieldTerms {
		if f.IsBool() || f.IsConst() {
			continue
		}
		prefs = append(prefs, smt.Ne(f, sctx.Const(0, f.W)))
	}
	for _, lit := range programLiterals(prog) {
		for _, f := range pipe.FieldTerms {
			if f.IsBool() || f.IsConst() {
				continue
			}
			prefs = append(prefs, smt.Ne(f, sctx.Const(lit, f.W)))
		}
	}
	// Prefer large values: saturating/overflowing arithmetic only
	// misbehaves near the top of the range, so small solver-default
	// values would mask those miscompilations just like zeros (§6.2).
	for _, f := range pipe.FieldTerms {
		if f.IsBool() || f.IsConst() || f.W < 2 {
			continue
		}
		half := uint64(1) << uint(f.W-1)
		prefs = append(prefs, smt.Uge(f, sctx.Const(half, f.W)))
	}
	if len(prefs) > 48 {
		prefs = prefs[:48]
	}
	if opts.DisablePreferences {
		prefs = nil
	}

	// One incremental solving session drives the whole enumeration: the
	// base constraints are bit-blasted once, every branch condition and
	// preference is encoded once (as an assumption literal), and each
	// probe or path solve is a solve-under-assumptions on the shared SAT
	// instance. Learnt clauses from one path prune the others, which is
	// what makes deep path enumeration affordable.
	sess := solver.NewSessionContext(ctx, opts.MaxConflicts)
	sess.Assert(base...)
	condLits := make([]solver.Lit, len(conds))
	for i, c := range conds {
		condLits[i] = sess.Lit(c)
	}
	prefGroups := make([][]solver.Lit, len(prefs))
	for i, p := range prefs {
		prefGroups[i] = []solver.Lit{sess.Lit(p)}
	}
	// pinField builds an assumption group forcing field f to the concrete
	// value v, from f's already-blasted bit literals — no new clauses or
	// terms per path, unlike encoding Eq(f, Const(v)) would.
	pinField := func(f *smt.Term, v uint64) []solver.Lit {
		bits := sess.BVLits(f)
		g := make([]solver.Lit, len(bits))
		for i, l := range bits {
			if v>>uint(i)&1 == 1 {
				g[i] = l
			} else {
				g[i] = l.Neg()
			}
		}
		return g
	}

	// Concrete trace steering: which polarity to probe first, per
	// condition (true = the true side is common under random inputs, so
	// probe the false side first).
	var bias []bool
	if !opts.DisableSteering {
		bias = steerBias(conds)
	}

	ev := smt.NewEvaluator()
	var cases []Case
	seen := map[string]bool{}
	// DFS over branch polarities, pruning unsatisfiable prefixes: real
	// path enumeration with a budget.
	var walk func(idx int, fixed []solver.Lit, id string)
	walk = func(idx int, fixed []solver.Lit, id string) {
		if len(cases) >= opts.MaxCases || ctx.Err() != nil {
			return
		}
		if idx == len(conds) {
			res := sess.SolveAssumingSoft(fixed, prefGroups)
			if res.Status != solver.Sat {
				return
			}
			add := func(m smt.Assignment) {
				c := buildCase(prog, pipe, m, id, ev)
				key := fmt.Sprintf("%x|%v|%v", c.Packet, c.ExpectDrop, c.ExpectPacket)
				if !seen[key] {
					seen[key] = true
					cases = append(cases, c)
				}
			}
			add(res.Model)
			if opts.DisablePreferences {
				return
			}
			// Second model per path with every parsed field complemented
			// (soft): a defect sensitive to any single input bit differs
			// between the two models, so boundary collisions with one
			// lucky value cannot mask it.
			if len(cases) < opts.MaxCases {
				var compl [][]solver.Lit
				for _, f := range pipe.FieldTerms {
					if f.IsBool() || f.IsConst() {
						continue
					}
					v := ev.Eval(f, res.Model)
					compl = append(compl, pinField(f, ^v))
				}
				res2 := sess.SolveAssumingSoft(fixed, compl)
				if res2.Status == solver.Sat {
					add(res2.Model)
				}
			}
			return
		}
		// Quick feasibility probe per polarity (an incremental query, not
		// a fresh solver). The PathID mark records the polarity actually
		// taken, so steering reorders exploration without renaming paths.
		pair := [2]solver.Lit{condLits[idx], condLits[idx].Neg()}
		marks := [2]string{"1", "0"}
		if bias != nil && bias[idx] {
			pair[0], pair[1] = pair[1], pair[0]
			marks[0], marks[1] = marks[1], marks[0]
		}
		for pi, lit := range pair {
			if len(cases) >= opts.MaxCases {
				return
			}
			if sess.SolveAssuming(append(fixed, lit)...).Status == solver.Sat {
				walk(idx+1, append(fixed, lit), id+marks[pi])
			}
		}
	}
	walk(0, nil, "")
	if err := ctx.Err(); err != nil {
		// Deadline fired mid-enumeration: hand back every case gathered so
		// far together with the cancellation cause, so a caller under a
		// watchdog can still use the partial suite (mirrors
		// validate.SnapshotsContext).
		return cases, err
	}
	if len(cases) == 0 {
		return nil, fmt.Errorf("testgen: no satisfiable path found")
	}
	return cases, nil
}

// programLiterals collects the distinct sized integer literal values
// appearing in the program's executable bodies (deduplicated, capped).
func programLiterals(prog *ast.Program) []uint64 {
	seen := map[uint64]bool{}
	var out []uint64
	visit := func(e ast.Expr) bool {
		if l, ok := e.(*ast.IntLit); ok && l.Width > 0 && !seen[l.Val] {
			seen[l.Val] = true
			out = append(out, l.Val)
		}
		return len(out) < 8
	}
	for _, d := range prog.Decls {
		c, ok := d.(*ast.ControlDecl)
		if !ok {
			continue
		}
		for _, l := range c.Locals {
			if a, isA := l.(*ast.ActionDecl); isA {
				ast.InspectStmt(a.Body, nil, visit)
			}
		}
		ast.InspectStmt(c.Apply, nil, visit)
	}
	return out
}

func havocWidth(name string) int {
	var w int
	fmt.Sscanf(name, "havoc_%d", &w)
	return w
}

// steerSeed keys the deterministic input batches used for branch-bias
// measurement. A fixed constant: the batches themselves still vary per
// program because the tape fingerprint (structural, run-stable) is mixed
// into every derivation.
const steerSeed = 0x5ee7a11c0113c0de

// steerRounds is the concrete budget for bias measurement: two 64-packet
// batches per program. More rounds sharpen the estimate but the sign of
// the bias — all enumeration needs — stabilizes almost immediately on
// the skewed conditions that matter.
const steerRounds = 2

// steerBias executes the toggled branch conditions bit-parallel over
// deterministic pseudo-random packets and reports, per condition, whether
// random concrete execution mostly takes the true side. Enumeration then
// probes the minority side first: those are the branches random traces
// leave unexplored.
func steerBias(conds []*smt.Term) []bool {
	if len(conds) == 0 {
		return nil
	}
	tp := smt.CompileTape(conds...)
	e := tp.Exec()
	defer tp.Release(e)
	taken := make([]int, len(conds))
	for r := 0; r < steerRounds; r++ {
		e.FillRound(steerSeed, r)
		e.Run()
		for i := range conds {
			taken[i] += bits.OnesCount64(e.RootBits(i))
		}
	}
	bias := make([]bool, len(conds))
	for i, n := range taken {
		bias[i] = 2*n > steerRounds*64
	}
	return bias
}

// CaseFromModel materializes one already-solved (or cached) model into a
// concrete test case. It is the replay entry point: a mismatch-reduction
// predicate holds the original finding's Case.Model and re-derives the
// expected output against a reduction candidate's pipeline without any
// solver work.
func CaseFromModel(prog *ast.Program, pipe *sym.Pipeline, m smt.Assignment, id string) Case {
	return buildCase(prog, pipe, m, id, smt.NewEvaluator())
}

// buildCase materializes one model into packet bytes, table entries and
// the expected output. The evaluator is reused across cases so the per-
// case term walks stop allocating memo tables.
func buildCase(prog *ast.Program, pipe *sym.Pipeline, m smt.Assignment, id string, ev *smt.Evaluator) Case {
	c := Case{Model: m, PathID: id}

	// Input packet.
	lenBits := int(m["pkt_len"])
	w := bitstream.NewWriter()
	for i := 0; i < lenBits; i++ {
		bit := m[fmt.Sprintf("pkt_%d", i)] & 1
		_ = w.WriteBits(bit, 1)
	}
	c.Packet = w.Bytes()

	// Table configuration from the symbolic table variables (the inverse
	// of the Fig. 3 encoding).
	c.Config = ConfigFromModel(prog, m)

	// Expected output.
	if ev.Eval(pipe.Reject, m) == 1 {
		c.ExpectDrop = true
		return c
	}
	ow := bitstream.NewWriter()
	for _, e := range pipe.Emits {
		if ev.Eval(e.Cond, m) != 1 {
			continue
		}
		for _, f := range e.Fields {
			_ = ow.WriteBits(ev.Eval(f.Term, m), f.Term.W)
		}
	}
	c.ExpectPacket = ow.Bytes()
	return c
}

// ConfigFromModel converts symbolic table-variable assignments into a
// concrete table configuration: for each table, one entry with the model's
// key, bound to the model's action choice (when it names a listed action).
func ConfigFromModel(prog *ast.Program, m smt.Assignment) eval.Config {
	cfg := eval.Config{}
	for _, ctrl := range prog.Controls() {
		for _, tbl := range ctrl.Tables() {
			prefix := ctrl.Name + "." + tbl.Name
			tc := &eval.TableConfig{}
			idx := int(m[prefix+".action"])
			if idx >= 1 && idx <= len(tbl.Actions) && len(tbl.Keys) > 0 {
				key := make([]uint64, len(tbl.Keys))
				for i := range tbl.Keys {
					key[i] = m[fmt.Sprintf("%s.key_%d", prefix, i)]
				}
				name := tbl.Actions[idx-1].Name
				var args []uint64
				if ad, ok := ctrl.LocalByName(name).(*ast.ActionDecl); ok {
					for _, p := range ad.Params {
						args = append(args, m[prefix+"."+name+".arg_"+p.Name])
					}
				}
				tc.Entries = append(tc.Entries, eval.TableEntry{Key: key, Action: name, Args: args})
			}
			cfg[prefix] = tc
		}
	}
	return cfg
}

// Summary renders a one-line description of a case for STF/PTF logs.
func (c Case) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "path=%s pkt=%x", c.PathID, c.Packet)
	if c.ExpectDrop {
		b.WriteString(" expect=drop")
	} else {
		fmt.Fprintf(&b, " expect=%x", c.ExpectPacket)
	}
	return b.String()
}
