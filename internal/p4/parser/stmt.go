package parser

import (
	"gauntlet/internal/p4/ast"
	"gauntlet/internal/p4/lexer"
	"gauntlet/internal/p4/token"
)

func (p *parser) block() (*ast.BlockStmt, error) {
	lb, err := p.expect(token.LBrace)
	if err != nil {
		return nil, err
	}
	b := &ast.BlockStmt{LBrace: lb.Pos}
	for !p.at(token.RBrace) {
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.next() // }
	return b, nil
}

func (p *parser) stmt() (ast.Stmt, error) {
	switch p.peek().Kind {
	case token.LBrace:
		return p.block()
	case token.KwIf:
		return p.ifStmt()
	case token.KwSwitch:
		return p.switchStmt()
	case token.KwReturn:
		kw := p.next()
		var v ast.Expr
		var err error
		if !p.at(token.Semicolon) {
			v, err = p.expr()
			if err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(token.Semicolon); err != nil {
			return nil, err
		}
		return &ast.ReturnStmt{RetPos: kw.Pos, Value: v}, nil
	case token.KwExit:
		kw := p.next()
		if _, err := p.expect(token.Semicolon); err != nil {
			return nil, err
		}
		return &ast.ExitStmt{ExitPos: kw.Pos}, nil
	case token.Semicolon:
		t := p.next()
		return &ast.EmptyStmt{SemiPos: t.Pos}, nil
	case token.KwConst:
		pos := p.peek().Pos
		p.next()
		t, err := p.typeRef()
		if err != nil {
			return nil, err
		}
		name, err := p.expect(token.IDENT)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.Assign); err != nil {
			return nil, err
		}
		v, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.Semicolon); err != nil {
			return nil, err
		}
		return &ast.ConstDeclStmt{DeclPos: pos, Name: name.Lit, Type: t, Value: v}, nil
	case token.KwBit, token.KwBool:
		return p.varDeclStmt()
	case token.IDENT:
		// "T name ..." is a declaration; anything else is an
		// assignment or call statement.
		if p.peekN(1).Kind == token.IDENT {
			return p.varDeclStmt()
		}
		return p.exprStmt()
	default:
		return nil, p.errorf("unexpected %s at statement start", p.peek())
	}
}

func (p *parser) varDeclStmt() (ast.Stmt, error) {
	pos := p.peek().Pos
	t, err := p.typeRef()
	if err != nil {
		return nil, err
	}
	name, err := p.expect(token.IDENT)
	if err != nil {
		return nil, err
	}
	var init ast.Expr
	if p.accept(token.Assign) {
		init, err = p.expr()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(token.Semicolon); err != nil {
		return nil, err
	}
	return &ast.VarDeclStmt{DeclPos: pos, Name: name.Lit, Type: t, Init: init}, nil
}

func (p *parser) ifStmt() (ast.Stmt, error) {
	kw := p.next()
	if _, err := p.expect(token.LParen); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.RParen); err != nil {
		return nil, err
	}
	then, err := p.block()
	if err != nil {
		return nil, err
	}
	s := &ast.IfStmt{IfPos: kw.Pos, Cond: cond, Then: then}
	if p.accept(token.KwElse) {
		if p.at(token.KwIf) {
			els, err := p.ifStmt()
			if err != nil {
				return nil, err
			}
			s.Else = els
		} else {
			els, err := p.block()
			if err != nil {
				return nil, err
			}
			s.Else = els
		}
	}
	return s, nil
}

func (p *parser) switchStmt() (ast.Stmt, error) {
	kw := p.next()
	if _, err := p.expect(token.LParen); err != nil {
		return nil, err
	}
	tag, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.RParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(token.LBrace); err != nil {
		return nil, err
	}
	s := &ast.SwitchStmt{SwitchPos: kw.Pos, Tag: tag}
	for !p.at(token.RBrace) {
		var c ast.SwitchCase
		for {
			if p.acceptIdent("default") {
				if _, err := p.expect(token.Colon); err != nil {
					return nil, err
				}
				break
			}
			lbl, err := p.expr()
			if err != nil {
				return nil, err
			}
			c.Labels = append(c.Labels, lbl)
			if _, err := p.expect(token.Colon); err != nil {
				return nil, err
			}
			if p.at(token.LBrace) {
				break
			}
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		c.Body = body
		s.Cases = append(s.Cases, c)
	}
	p.next() // }
	return s, nil
}

// exprStmt parses "lhs = rhs;" or "call(...);".
func (p *parser) exprStmt() (ast.Stmt, error) {
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	if p.accept(token.Assign) {
		rhs, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.Semicolon); err != nil {
			return nil, err
		}
		if !ast.IsLValue(e) {
			return nil, p.errorf("left side of assignment is not an lvalue")
		}
		return &ast.AssignStmt{LHS: e, RHS: rhs}, nil
	}
	if _, err := p.expect(token.Semicolon); err != nil {
		return nil, err
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return nil, p.errorf("expression statement must be a call")
	}
	return &ast.CallStmt{Call: call}, nil
}

// Binary operator precedence, mirroring the printer's table.
func binPrec(k token.Kind) (ast.BinaryOp, int, bool) {
	switch k {
	case token.OrOr:
		return ast.OpLOr, 2, true
	case token.AndAnd:
		return ast.OpLAnd, 3, true
	case token.Pipe:
		return ast.OpBitOr, 4, true
	case token.Caret:
		return ast.OpBitXor, 5, true
	case token.Amp:
		return ast.OpBitAnd, 6, true
	case token.Eq:
		return ast.OpEq, 7, true
	case token.NotEq:
		return ast.OpNe, 7, true
	case token.Lt:
		return ast.OpLt, 8, true
	case token.Le:
		return ast.OpLe, 8, true
	case token.Gt:
		return ast.OpGt, 8, true
	case token.Ge:
		return ast.OpGe, 8, true
	case token.PlusPlus:
		return ast.OpConcat, 9, true
	case token.Shl:
		return ast.OpShl, 10, true
	case token.Shr:
		return ast.OpShr, 10, true
	case token.Plus:
		return ast.OpAdd, 11, true
	case token.Minus:
		return ast.OpSub, 11, true
	case token.PlusSat:
		return ast.OpSatAdd, 11, true
	case token.MinusSat:
		return ast.OpSatSub, 11, true
	case token.Star:
		return ast.OpMul, 12, true
	}
	return 0, 0, false
}

// expr parses a conditional expression (the lowest-precedence form).
func (p *parser) expr() (ast.Expr, error) {
	cond, err := p.binExpr(1)
	if err != nil {
		return nil, err
	}
	if p.at(token.Question) {
		q := p.next()
		then, err := p.binExpr(1)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.Colon); err != nil {
			return nil, err
		}
		els, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &ast.MuxExpr{QPos: q.Pos, Cond: cond, Then: then, Else: els}, nil
	}
	return cond, nil
}

// binExpr implements precedence climbing for left-associative binary
// operators at or above minPrec.
func (p *parser) binExpr(minPrec int) (ast.Expr, error) {
	lhs, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		op, prec, ok := binPrec(p.peek().Kind)
		if !ok || prec < minPrec {
			return lhs, nil
		}
		opTok := p.next()
		rhs, err := p.binExpr(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &ast.BinaryExpr{OpPos: opTok.Pos, Op: op, X: lhs, Y: rhs}
	}
}

func (p *parser) unary() (ast.Expr, error) {
	switch p.peek().Kind {
	case token.Bang:
		t := p.next()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &ast.UnaryExpr{OpPos: t.Pos, Op: ast.OpLNot, X: x}, nil
	case token.Tilde:
		t := p.next()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &ast.UnaryExpr{OpPos: t.Pos, Op: ast.OpBitNot, X: x}, nil
	case token.Minus:
		t := p.next()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &ast.UnaryExpr{OpPos: t.Pos, Op: ast.OpNeg, X: x}, nil
	case token.LParen:
		// Cast "(bit<N>) x" / "(bool) x" vs parenthesized expression.
		if k := p.peekN(1).Kind; k == token.KwBit || k == token.KwBool {
			t := p.next() // (
			ty, err := p.typeRef()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(token.RParen); err != nil {
				return nil, err
			}
			x, err := p.unary()
			if err != nil {
				return nil, err
			}
			return &ast.CastExpr{CastPos: t.Pos, To: ty, X: x}, nil
		}
		return p.postfix()
	default:
		return p.postfix()
	}
}

func (p *parser) postfix() (ast.Expr, error) {
	e, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		switch p.peek().Kind {
		case token.Dot:
			p.next()
			// Member names may coincide with keywords (t.apply()).
			t := p.peek()
			if t.Kind != token.IDENT && !(t.Kind.IsKeyword() && t.Lit != "") {
				return nil, p.errorf("expected member name, found %s", t)
			}
			p.next()
			e = &ast.MemberExpr{X: e, Member: t.Lit}
		case token.LBracket:
			p.next()
			hi, err := p.constInt()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(token.Colon); err != nil {
				return nil, err
			}
			lo, err := p.constInt()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(token.RBracket); err != nil {
				return nil, err
			}
			e = &ast.SliceExpr{X: e, Hi: hi, Lo: lo}
		case token.LParen:
			p.next()
			call := &ast.CallExpr{Func: e}
			for !p.at(token.RParen) {
				if len(call.Args) > 0 {
					if _, err := p.expect(token.Comma); err != nil {
						return nil, err
					}
				}
				a, err := p.expr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
			}
			p.next() // )
			e = call
		default:
			return e, nil
		}
	}
}

func (p *parser) constInt() (int, error) {
	t, err := p.expect(token.INTLIT)
	if err != nil {
		return 0, err
	}
	w, v, perr := lexer.ParseIntLit(t.Lit)
	if perr != nil || w != 0 {
		return 0, p.errorf("expected plain integer, found %q", t.Lit)
	}
	return int(v), nil
}

func (p *parser) primary() (ast.Expr, error) {
	switch p.peek().Kind {
	case token.IDENT:
		t := p.next()
		return &ast.Ident{NamePos: t.Pos, Name: t.Lit}, nil
	case token.INTLIT:
		t := p.next()
		w, v, err := lexer.ParseIntLit(t.Lit)
		if err != nil {
			return nil, p.errorf("%v", err)
		}
		return &ast.IntLit{LitPos: t.Pos, Width: w, Val: v}, nil
	case token.KwTrue:
		t := p.next()
		return &ast.BoolLit{LitPos: t.Pos, Val: true}, nil
	case token.KwFalse:
		t := p.next()
		return &ast.BoolLit{LitPos: t.Pos, Val: false}, nil
	case token.LParen:
		p.next()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.RParen); err != nil {
			return nil, err
		}
		return e, nil
	default:
		return nil, p.errorf("unexpected %s in expression", p.peek())
	}
}
