// Package parser implements a recursive-descent parser for the P4₁₆ subset.
//
// The compiler driver re-parses the program emitted after every pass
// (§5.2 of the paper): a parse failure on emitted text is an "invalid
// transformation" bug in either the printer or the preceding pass (§7.2).
// The grammar accepted here is exactly the language produced by the printer
// package; print∘parse round-tripping is property-tested.
package parser

import (
	"fmt"

	"gauntlet/internal/p4/ast"
	"gauntlet/internal/p4/lexer"
	"gauntlet/internal/p4/token"
)

// Error is a syntax error with position information.
type Error struct {
	Pos token.Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%s: syntax error: %s", e.Pos, e.Msg) }

// Parse parses a complete program from source text.
func Parse(src string) (*ast.Program, error) {
	toks, lerrs := lexer.ScanAll(src)
	if len(lerrs) > 0 {
		return nil, &Error{Pos: lerrs[0].Pos, Msg: lerrs[0].Msg}
	}
	p := &parser{toks: toks}
	prog, err := p.program()
	if err != nil {
		return nil, err
	}
	return prog, nil
}

// ParseExpr parses a single expression (used by tests and tools).
func ParseExpr(src string) (ast.Expr, error) {
	toks, lerrs := lexer.ScanAll(src)
	if len(lerrs) > 0 {
		return nil, &Error{Pos: lerrs[0].Pos, Msg: lerrs[0].Msg}
	}
	p := &parser{toks: toks}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	if p.peek().Kind != token.EOF {
		return nil, p.errorf("unexpected %s after expression", p.peek())
	}
	return e, nil
}

type parser struct {
	toks []token.Token
	pos  int
}

func (p *parser) peek() token.Token { return p.toks[p.pos] }
func (p *parser) peekN(n int) token.Token {
	if p.pos+n >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.pos+n]
}

func (p *parser) next() token.Token {
	t := p.toks[p.pos]
	if t.Kind != token.EOF {
		p.pos++
	}
	return t
}

func (p *parser) at(k token.Kind) bool { return p.peek().Kind == k }

func (p *parser) accept(k token.Kind) bool {
	if p.at(k) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(k token.Kind) (token.Token, error) {
	if p.at(k) {
		return p.next(), nil
	}
	return token.Token{}, p.errorf("expected %s, found %s", k, p.peek())
}

func (p *parser) errorf(format string, args ...any) error {
	return &Error{Pos: p.peek().Pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) program() (*ast.Program, error) {
	prog := &ast.Program{}
	for !p.at(token.EOF) {
		d, err := p.topDecl()
		if err != nil {
			return nil, err
		}
		prog.Decls = append(prog.Decls, d)
	}
	return prog, nil
}

func (p *parser) topDecl() (ast.Decl, error) {
	switch p.peek().Kind {
	case token.KwHeader:
		return p.headerDecl()
	case token.KwStruct:
		return p.structDecl()
	case token.KwTypedef:
		return p.typedefDecl()
	case token.KwConst:
		return p.constDecl()
	case token.KwControl:
		return p.controlDecl()
	case token.KwParser:
		return p.parserDecl()
	case token.KwAction:
		return p.actionDecl()
	case token.KwBit, token.KwBool, token.KwVoid:
		return p.functionDecl()
	case token.IDENT:
		// Either "Pkg(args) main;" or "RetType name(params) {...}".
		if p.peekN(1).Kind == token.LParen {
			return p.instantiation()
		}
		if p.peekN(1).Kind == token.IDENT && p.peekN(2).Kind == token.LParen {
			return p.functionDecl()
		}
		return nil, p.errorf("unexpected %s at top level", p.peek())
	default:
		return nil, p.errorf("unexpected %s at top level", p.peek())
	}
}

func (p *parser) headerDecl() (ast.Decl, error) {
	kw := p.next()
	name, err := p.expect(token.IDENT)
	if err != nil {
		return nil, err
	}
	fields, err := p.fieldList()
	if err != nil {
		return nil, err
	}
	return &ast.HeaderDecl{DeclPos: kw.Pos, Name: name.Lit, Fields: fields}, nil
}

func (p *parser) structDecl() (ast.Decl, error) {
	kw := p.next()
	name, err := p.expect(token.IDENT)
	if err != nil {
		return nil, err
	}
	fields, err := p.fieldList()
	if err != nil {
		return nil, err
	}
	return &ast.StructDecl{DeclPos: kw.Pos, Name: name.Lit, Fields: fields}, nil
}

func (p *parser) fieldList() ([]ast.Field, error) {
	if _, err := p.expect(token.LBrace); err != nil {
		return nil, err
	}
	var fields []ast.Field
	for !p.at(token.RBrace) {
		t, err := p.typeRef()
		if err != nil {
			return nil, err
		}
		name, err := p.expect(token.IDENT)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.Semicolon); err != nil {
			return nil, err
		}
		fields = append(fields, ast.Field{Name: name.Lit, Type: t})
	}
	p.next() // }
	return fields, nil
}

func (p *parser) typedefDecl() (ast.Decl, error) {
	kw := p.next()
	t, err := p.typeRef()
	if err != nil {
		return nil, err
	}
	name, err := p.expect(token.IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.Semicolon); err != nil {
		return nil, err
	}
	return &ast.TypedefDecl{DeclPos: kw.Pos, Name: name.Lit, Type: t}, nil
}

func (p *parser) constDecl() (ast.Decl, error) {
	kw := p.next()
	t, err := p.typeRef()
	if err != nil {
		return nil, err
	}
	name, err := p.expect(token.IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.Assign); err != nil {
		return nil, err
	}
	v, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.Semicolon); err != nil {
		return nil, err
	}
	return &ast.ConstDecl{DeclPos: kw.Pos, Name: name.Lit, Type: t, Value: v}, nil
}

// typeRef parses bit<N>, bool, void, or a named type.
func (p *parser) typeRef() (ast.Type, error) {
	switch p.peek().Kind {
	case token.KwBit:
		p.next()
		if _, err := p.expect(token.Lt); err != nil {
			return nil, err
		}
		w, err := p.expect(token.INTLIT)
		if err != nil {
			return nil, err
		}
		width, val, perr := lexer.ParseIntLit(w.Lit)
		if perr != nil || width != 0 {
			return nil, p.errorf("bad bit width %q", w.Lit)
		}
		if _, err := p.expect(token.Gt); err != nil {
			return nil, err
		}
		return &ast.BitType{Width: int(val)}, nil
	case token.KwBool:
		p.next()
		return &ast.BoolType{}, nil
	case token.KwVoid:
		p.next()
		return &ast.VoidType{}, nil
	case token.KwPacket:
		p.next()
		return &ast.PacketType{}, nil
	case token.IDENT:
		t := p.next()
		return &ast.NamedType{Name: t.Lit}, nil
	default:
		return nil, p.errorf("expected type, found %s", p.peek())
	}
}

func (p *parser) paramList() ([]ast.Param, error) {
	if _, err := p.expect(token.LParen); err != nil {
		return nil, err
	}
	var params []ast.Param
	for !p.at(token.RParen) {
		if len(params) > 0 {
			if _, err := p.expect(token.Comma); err != nil {
				return nil, err
			}
		}
		dir := ast.DirNone
		switch p.peek().Kind {
		case token.KwIn:
			p.next()
			dir = ast.DirIn
		case token.KwOut:
			p.next()
			dir = ast.DirOut
		case token.KwInout:
			p.next()
			dir = ast.DirInOut
		}
		t, err := p.typeRef()
		if err != nil {
			return nil, err
		}
		name, err := p.expect(token.IDENT)
		if err != nil {
			return nil, err
		}
		params = append(params, ast.Param{Dir: dir, Name: name.Lit, Type: t})
	}
	p.next() // )
	return params, nil
}

func (p *parser) actionDecl() (*ast.ActionDecl, error) {
	kw := p.next()
	name, err := p.expect(token.IDENT)
	if err != nil {
		return nil, err
	}
	params, err := p.paramList()
	if err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return &ast.ActionDecl{DeclPos: kw.Pos, Name: name.Lit, Params: params, Body: body}, nil
}

func (p *parser) functionDecl() (*ast.FunctionDecl, error) {
	pos := p.peek().Pos
	ret, err := p.typeRef()
	if err != nil {
		return nil, err
	}
	name, err := p.expect(token.IDENT)
	if err != nil {
		return nil, err
	}
	params, err := p.paramList()
	if err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return &ast.FunctionDecl{DeclPos: pos, Name: name.Lit, Return: ret, Params: params, Body: body}, nil
}

func (p *parser) instantiation() (ast.Decl, error) {
	pkg := p.next()
	if _, err := p.expect(token.LParen); err != nil {
		return nil, err
	}
	var args []string
	for !p.at(token.RParen) {
		if len(args) > 0 {
			if _, err := p.expect(token.Comma); err != nil {
				return nil, err
			}
		}
		a, err := p.expect(token.IDENT)
		if err != nil {
			return nil, err
		}
		args = append(args, a.Lit)
	}
	p.next() // )
	name, err := p.expect(token.IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.Semicolon); err != nil {
		return nil, err
	}
	return &ast.Instantiation{DeclPos: pkg.Pos, Package: pkg.Lit, Args: args, Name: name.Lit}, nil
}

func (p *parser) controlDecl() (ast.Decl, error) {
	kw := p.next()
	name, err := p.expect(token.IDENT)
	if err != nil {
		return nil, err
	}
	params, err := p.paramList()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.LBrace); err != nil {
		return nil, err
	}
	c := &ast.ControlDecl{DeclPos: kw.Pos, Name: name.Lit, Params: params}
	for !p.at(token.KwApply) {
		d, err := p.controlLocal()
		if err != nil {
			return nil, err
		}
		c.Locals = append(c.Locals, d)
	}
	p.next() // apply
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	c.Apply = body
	if _, err := p.expect(token.RBrace); err != nil {
		return nil, err
	}
	return c, nil
}

func (p *parser) controlLocal() (ast.Decl, error) {
	switch p.peek().Kind {
	case token.KwAction:
		return p.actionDecl()
	case token.KwTable:
		return p.tableDecl()
	case token.KwConst:
		d, err := p.constDecl()
		if err != nil {
			return nil, err
		}
		return d, nil
	case token.KwBit, token.KwBool:
		return p.varOrFuncDecl()
	case token.KwVoid:
		return p.functionDecl()
	case token.IDENT:
		return p.varOrFuncDecl()
	default:
		return nil, p.errorf("unexpected %s in control body", p.peek())
	}
}

// varOrFuncDecl disambiguates "T name;" / "T name = e;" from
// "T name(params) {...}".
func (p *parser) varOrFuncDecl() (ast.Decl, error) {
	pos := p.peek().Pos
	t, err := p.typeRef()
	if err != nil {
		return nil, err
	}
	name, err := p.expect(token.IDENT)
	if err != nil {
		return nil, err
	}
	if p.at(token.LParen) {
		params, err := p.paramList()
		if err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &ast.FunctionDecl{DeclPos: pos, Name: name.Lit, Return: t, Params: params, Body: body}, nil
	}
	var init ast.Expr
	if p.accept(token.Assign) {
		init, err = p.expr()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(token.Semicolon); err != nil {
		return nil, err
	}
	return &ast.VarDecl{DeclPos: pos, Name: name.Lit, Type: t, Init: init}, nil
}

func (p *parser) tableDecl() (ast.Decl, error) {
	kw := p.next()
	name, err := p.expect(token.IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.LBrace); err != nil {
		return nil, err
	}
	t := &ast.TableDecl{DeclPos: kw.Pos, Name: name.Lit}
	for !p.at(token.RBrace) {
		switch p.peek().Kind {
		case token.KwKey:
			p.next()
			if _, err := p.expect(token.Assign); err != nil {
				return nil, err
			}
			if _, err := p.expect(token.LBrace); err != nil {
				return nil, err
			}
			for !p.at(token.RBrace) {
				e, err := p.expr()
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(token.Colon); err != nil {
					return nil, err
				}
				if _, err := p.expect(token.KwExact); err != nil {
					return nil, err
				}
				if _, err := p.expect(token.Semicolon); err != nil {
					return nil, err
				}
				t.Keys = append(t.Keys, ast.TableKey{Expr: e, Match: ast.MatchExact})
			}
			p.next() // }
		case token.KwActions:
			p.next()
			if _, err := p.expect(token.Assign); err != nil {
				return nil, err
			}
			if _, err := p.expect(token.LBrace); err != nil {
				return nil, err
			}
			for !p.at(token.RBrace) {
				a, err := p.expect(token.IDENT)
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(token.Semicolon); err != nil {
					return nil, err
				}
				t.Actions = append(t.Actions, ast.ActionRef{Name: a.Lit})
			}
			p.next() // }
		case token.KwDefaultAction:
			p.next()
			if _, err := p.expect(token.Assign); err != nil {
				return nil, err
			}
			a, err := p.expect(token.IDENT)
			if err != nil {
				return nil, err
			}
			ref := ast.ActionRef{Name: a.Lit}
			if p.accept(token.LParen) {
				for !p.at(token.RParen) {
					if len(ref.Args) > 0 {
						if _, err := p.expect(token.Comma); err != nil {
							return nil, err
						}
					}
					arg, err := p.expr()
					if err != nil {
						return nil, err
					}
					ref.Args = append(ref.Args, arg)
				}
				p.next() // )
			}
			if _, err := p.expect(token.Semicolon); err != nil {
				return nil, err
			}
			t.Default = &ref
		default:
			return nil, p.errorf("unexpected %s in table body", p.peek())
		}
	}
	p.next() // }
	return t, nil
}

func (p *parser) parserDecl() (ast.Decl, error) {
	kw := p.next()
	name, err := p.expect(token.IDENT)
	if err != nil {
		return nil, err
	}
	params, err := p.paramList()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.LBrace); err != nil {
		return nil, err
	}
	d := &ast.ParserDecl{DeclPos: kw.Pos, Name: name.Lit, Params: params}
	for !p.at(token.RBrace) {
		st, err := p.parserState()
		if err != nil {
			return nil, err
		}
		d.States = append(d.States, *st)
	}
	p.next() // }
	return d, nil
}

func (p *parser) parserState() (*ast.ParserState, error) {
	kw, err := p.expect(token.KwState)
	if err != nil {
		return nil, err
	}
	name, err := p.expect(token.IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.LBrace); err != nil {
		return nil, err
	}
	st := &ast.ParserState{DeclPos: kw.Pos, Name: name.Lit}
	for !p.at(token.RBrace) && !p.at(token.KwTransition) {
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		st.Stmts = append(st.Stmts, s)
	}
	if p.accept(token.KwTransition) {
		if p.accept(token.KwSelect) {
			if _, err := p.expect(token.LParen); err != nil {
				return nil, err
			}
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(token.RParen); err != nil {
				return nil, err
			}
			if _, err := p.expect(token.LBrace); err != nil {
				return nil, err
			}
			sel := &ast.TransSelect{Expr: e}
			for !p.at(token.RBrace) {
				var c ast.SelectCase
				if p.at(token.INTLIT) {
					lit := p.next()
					w, v, perr := lexer.ParseIntLit(lit.Lit)
					if perr != nil {
						return nil, p.errorf("%v", perr)
					}
					c.Value = &ast.IntLit{LitPos: lit.Pos, Width: w, Val: v}
				} else if !p.acceptIdent("default") {
					return nil, p.errorf("expected select case value or default, found %s", p.peek())
				}
				if _, err := p.expect(token.Colon); err != nil {
					return nil, err
				}
				next, err := p.expect(token.IDENT)
				if err != nil {
					return nil, err
				}
				c.Next = next.Lit
				if _, err := p.expect(token.Semicolon); err != nil {
					return nil, err
				}
				sel.Cases = append(sel.Cases, c)
			}
			p.next() // }
			st.Trans = sel
		} else {
			next, err := p.expect(token.IDENT)
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(token.Semicolon); err != nil {
				return nil, err
			}
			st.Trans = &ast.TransDirect{Next: next.Lit}
		}
	}
	if _, err := p.expect(token.RBrace); err != nil {
		return nil, err
	}
	return st, nil
}

// acceptIdent consumes an IDENT token with the exact literal.
func (p *parser) acceptIdent(lit string) bool {
	if p.at(token.IDENT) && p.peek().Lit == lit {
		p.next()
		return true
	}
	return false
}
