package parser_test

import (
	"strings"
	"testing"

	"gauntlet/internal/p4/ast"
	"gauntlet/internal/p4/parser"
	"gauntlet/internal/p4/printer"
	"gauntlet/internal/p4/types"
)

// fig3 is the program from Figure 3a of the paper (simplified P4 applying a
// table), adapted to the subset grammar.
const fig3 = `
header Hdr_t {
    bit<8> a;
    bit<8> b;
}
struct Hdr {
    Hdr_t h;
}
control ingress(inout Hdr hdr) {
    action assign() {
        hdr.h.a = 8w1;
    }
    table t {
        key = {
            hdr.h.a : exact;
        }
        actions = {
            assign;
            NoAction;
        }
        default_action = NoAction();
    }
    apply {
        t.apply();
    }
}
V1Switch(ingress) main;
`

func mustParse(t *testing.T, src string) *ast.Program {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return prog
}

func TestParseFigure3(t *testing.T) {
	prog := mustParse(t, fig3)
	if got := len(prog.Decls); got != 4 {
		t.Fatalf("got %d decls, want 4", got)
	}
	ctrl := prog.Control("ingress")
	if ctrl == nil {
		t.Fatal("missing control ingress")
	}
	if len(ctrl.Locals) != 2 {
		t.Fatalf("got %d locals, want 2", len(ctrl.Locals))
	}
	tbl, ok := ctrl.Locals[1].(*ast.TableDecl)
	if !ok {
		t.Fatalf("local[1] is %T, want table", ctrl.Locals[1])
	}
	if len(tbl.Keys) != 1 || len(tbl.Actions) != 2 || tbl.Default == nil {
		t.Fatalf("table shape wrong: %+v", tbl)
	}
	if prog.Main() == nil || prog.Main().Package != "V1Switch" {
		t.Fatal("missing main instantiation")
	}
}

func TestTypeCheckFigure3(t *testing.T) {
	prog := mustParse(t, fig3)
	if err := types.Check(prog); err != nil {
		t.Fatalf("check: %v", err)
	}
}

func TestRoundTripFigure3(t *testing.T) {
	prog := mustParse(t, fig3)
	text1 := printer.Print(prog)
	prog2, err := parser.Parse(text1)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, text1)
	}
	text2 := printer.Print(prog2)
	if text1 != text2 {
		t.Fatalf("round trip not stable:\n--- first ---\n%s\n--- second ---\n%s", text1, text2)
	}
}

func TestParseExpressions(t *testing.T) {
	cases := []struct {
		src  string
		want string // printed form; "" means same as src
	}{
		{"a + b * c", ""},
		{"(a + b) * c", ""},
		{"a + b + c", ""},
		{"a + (b + c)", ""},
		{"a << 2 | b", "a << 2 | b"},
		{"~a & b ^ c", ""},
		{"a == b && c != d", ""},
		{"x[7:1]", ""},
		{"h.eth.src_addr", ""},
		{"(bit<8>) x", ""},
		{"(bool) y[0:0]", ""},
		{"a ? b : c", ""},
		{"a ? b : c ? d : e", ""},
		{"8w255", ""},
		{"4w0xF", "4w15"},
		{"1 << h.h.c", ""},
		{"a |+| b |-| c", ""},
		{"x ++ y", ""},
		{"!(a == b)", "!(a == b)"},
		{"h.isValid()", ""},
		{"f(a, 8w2, b + c)", ""},
	}
	for _, tc := range cases {
		e, err := parser.ParseExpr(tc.src)
		if err != nil {
			t.Errorf("ParseExpr(%q): %v", tc.src, err)
			continue
		}
		want := tc.want
		if want == "" {
			want = tc.src
		}
		if got := printer.PrintExpr(e); got != want {
			t.Errorf("ParseExpr(%q) printed as %q, want %q", tc.src, got, want)
		}
		// Round trip again.
		e2, err := parser.ParseExpr(printer.PrintExpr(e))
		if err != nil {
			t.Errorf("reparse of %q: %v", printer.PrintExpr(e), err)
			continue
		}
		if got := printer.PrintExpr(e2); got != want {
			t.Errorf("second round of %q printed as %q, want %q", tc.src, got, want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"header H { bit<8> a }",                                  // missing semicolon
		"control c(inout bit<8> x) { }",                          // missing apply
		"control c() { apply { x = ; } }",                        // bad expression
		"header H { bit<8> a; } junk",                            // trailing garbage
		"control c() { apply { 1 = x; } }",                       // non-lvalue assignment
		"control c() { apply { f(x) } }",                         // missing semicolon after call
		"parser p() { state s { transition select(x) { 1: } } }", // missing target
	}
	for _, src := range cases {
		if _, err := parser.Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestTypeErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"width mismatch", `
control c(inout bit<8> x) {
    apply { x = 16w3; }
}`},
		{"assign to in param", `
control c(in bit<8> x) {
    apply { x = 8w1; }
}`},
		{"readonly arg for inout param", `
control c(in bit<8> x) {
    action a(inout bit<8> v) { v = 8w1; }
    apply { a(x); }
}`},
		{"literal arg for out param", `
control c(inout bit<8> x) {
    action a(out bit<8> v) { v = 8w1; }
    apply { a(8w3); }
}`},
		{"unknown table action", `
control c(inout bit<8> x) {
    table t {
        actions = { missing; }
        default_action = NoAction();
    }
    apply { t.apply(); }
}`},
		{"slice out of range", `
control c(inout bit<8> x) {
    apply { x = x[9:1]; }
}`},
		{"bool arithmetic", `
control c(inout bit<8> x) {
    apply { x = (bit<8>) (true + false); }
}`},
		{"shift of unsized literal", `
header H { bit<8> a; bit<8> c; }
struct S { H h; }
control c(inout S hdr) {
    apply {
        if ((1 << hdr.h.c) == 16) { hdr.h.a = 8w1; }
    }
}`},
		{"undefined variable", `
control c(inout bit<8> x) {
    apply { x = y; }
}`},
		{"duplicate local", `
control c(inout bit<8> x) {
    apply {
        bit<8> y = 8w0;
        bit<8> y = 8w1;
        x = y;
    }
}`},
	}
	for _, tc := range cases {
		prog, err := parser.Parse(tc.src)
		if err != nil {
			t.Errorf("%s: parse failed: %v", tc.name, err)
			continue
		}
		if err := types.Check(prog); err == nil {
			t.Errorf("%s: Check succeeded, want error", tc.name)
		}
	}
}

func TestCheckedLiteralSizing(t *testing.T) {
	prog := mustParse(t, `
control c(inout bit<8> x) {
    apply {
        x = 1;
        x = x + 2;
    }
}`)
	if err := types.Check(prog); err != nil {
		t.Fatalf("check: %v", err)
	}
	out := printer.Print(prog)
	if !strings.Contains(out, "x = 8w1;") {
		t.Errorf("literal 1 not sized to 8w1:\n%s", out)
	}
	if !strings.Contains(out, "x + 8w2") {
		t.Errorf("literal 2 not sized to 8w2:\n%s", out)
	}
}

func TestParserStateMachine(t *testing.T) {
	prog := mustParse(t, `
header Eth { bit<48> dst; bit<48> src; bit<16> etype; }
struct Hdr { Eth eth; }
parser p(inout Hdr h, in bit<16> probe) {
    state start {
        transition select(probe) {
            16w0x800 : ipv4;
            default : accept;
        }
    }
    state ipv4 {
        h.eth.etype = 16w1;
        transition accept;
    }
}
`)
	if err := types.Check(prog); err != nil {
		t.Fatalf("check: %v", err)
	}
	pd := prog.Parser("p")
	if pd == nil || len(pd.States) != 2 {
		t.Fatal("parser states not parsed")
	}
	sel, ok := pd.States[0].Trans.(*ast.TransSelect)
	if !ok || len(sel.Cases) != 2 {
		t.Fatalf("select not parsed: %+v", pd.States[0].Trans)
	}
}
