// Package eval implements a concrete interpreter for the P4₁₆ subset. It is
// the execution core of both target simulators (BMv2 and the black-box
// Tofino stand-in) and serves as the differential oracle for the symbolic
// interpreter: for any program and concrete input, evaluating the symbolic
// functional form must equal this interpreter's output.
//
// Undefined values (uninitialized variables, out parameters, fields of
// freshly validated headers) are produced by a configurable policy; the
// BMv2 target uses all-zeros, matching the behaviour the paper relies on in
// §6.2 ("BMv2 initializes any undefined variable with zero").
package eval

import (
	"fmt"
	"sort"
	"strings"

	"gauntlet/internal/bitstream"
	"gauntlet/internal/p4/ast"
)

// Value is a runtime value. Composite values are mutated in place through
// pointers; use Clone for copy-in/copy-out.
type Value interface {
	// Clone returns a deep copy.
	Clone() Value
	// String renders the value for diagnostics and STF/PTF reports.
	String() string
}

// BitVal is a bit<Width> value. V is always masked to Width bits.
type BitVal struct {
	Width int
	V     uint64
}

// BoolVal is a bool value.
type BoolVal struct {
	V bool
}

// HeaderVal is a header instance: a validity bit plus named bit fields.
type HeaderVal struct {
	T     *ast.HeaderType
	Valid bool
	F     map[string]Value
}

// StructVal is a struct instance with named fields.
type StructVal struct {
	T *ast.StructType
	F map[string]Value
}

// PacketVal wraps the packet handed to parsers (R set: extract reads) and
// deparser controls (W set: emit appends).
type PacketVal struct {
	R *bitstream.Reader
	W *bitstream.Writer
}

// Clone returns a deep copy.
func (v *BitVal) Clone() Value { return &BitVal{Width: v.Width, V: v.V} }

// Clone returns a deep copy.
func (v *BoolVal) Clone() Value { return &BoolVal{V: v.V} }

// Clone returns a deep copy.
func (v *HeaderVal) Clone() Value {
	f := make(map[string]Value, len(v.F))
	for k, fv := range v.F {
		f[k] = fv.Clone()
	}
	return &HeaderVal{T: v.T, Valid: v.Valid, F: f}
}

// Clone returns a deep copy.
func (v *StructVal) Clone() Value {
	f := make(map[string]Value, len(v.F))
	for k, fv := range v.F {
		f[k] = fv.Clone()
	}
	return &StructVal{T: v.T, F: f}
}

// Clone returns the same packet (packets are identity objects: the parser
// cursor must advance across copy boundaries).
func (v *PacketVal) Clone() Value { return v }

// String renders the value.
func (v *BitVal) String() string { return fmt.Sprintf("%dw%d", v.Width, v.V) }

// String renders the value.
func (v *BoolVal) String() string {
	if v.V {
		return "true"
	}
	return "false"
}

// String renders the header with fields in declaration order.
func (v *HeaderVal) String() string {
	if !v.Valid {
		return "(invalid)"
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, f := range v.T.Fields {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(f.Name + "=" + v.F[f.Name].String())
	}
	b.WriteByte('}')
	return b.String()
}

// String renders the struct with fields in declaration order.
func (v *StructVal) String() string {
	var b strings.Builder
	b.WriteByte('{')
	if v.T != nil {
		for i, f := range v.T.Fields {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(f.Name + "=" + v.F[f.Name].String())
		}
	} else {
		var keys []string
		for k := range v.F {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for i, k := range keys {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(k + "=" + v.F[k].String())
		}
	}
	b.WriteByte('}')
	return b.String()
}

// String renders the packet for diagnostics.
func (v *PacketVal) String() string { return "packet" }

// UndefPolicy produces the value observed when reading undefined data of
// the given bit width. Targets differ here; BMv2 yields zero.
type UndefPolicy func(width int) uint64

// ZeroUndef is the all-zeros policy (BMv2 behaviour).
func ZeroUndef(width int) uint64 { return 0 }

// ConstUndef returns a policy that yields the same constant (masked) for
// every undefined read — used to model targets with non-zero poison values
// and to stress-test undefined-value assumptions.
func ConstUndef(c uint64) UndefPolicy {
	return func(width int) uint64 { return ast.MaskWidth(c, width) }
}

// NewValue constructs the default (undefined-per-policy) value of a type.
// Headers start invalid.
func NewValue(t ast.Type, undef UndefPolicy) Value {
	switch t := t.(type) {
	case *ast.BitType:
		return &BitVal{Width: t.Width, V: ast.MaskWidth(undef(t.Width), t.Width)}
	case *ast.BoolType:
		return &BoolVal{V: undef(1)&1 == 1}
	case *ast.HeaderType:
		h := &HeaderVal{T: t, Valid: false, F: map[string]Value{}}
		for _, f := range t.Fields {
			h.F[f.Name] = NewValue(f.Type, undef)
		}
		return h
	case *ast.StructType:
		s := &StructVal{T: t, F: map[string]Value{}}
		for _, f := range t.Fields {
			s.F[f.Name] = NewValue(f.Type, undef)
		}
		return s
	default:
		panic(fmt.Sprintf("eval.NewValue: cannot build value of type %T", t))
	}
}

// Equal reports deep equality of two values. Invalid headers compare equal
// regardless of field contents (the deparser drops them), matching the
// paper's output semantics: "if an invalid header is returned in the final
// output, all fields in the header are set to invalid as well".
func Equal(a, b Value) bool {
	switch a := a.(type) {
	case *BitVal:
		bb, ok := b.(*BitVal)
		return ok && a.Width == bb.Width && a.V == bb.V
	case *BoolVal:
		bb, ok := b.(*BoolVal)
		return ok && a.V == bb.V
	case *HeaderVal:
		bb, ok := b.(*HeaderVal)
		if !ok || a.Valid != bb.Valid {
			return false
		}
		if !a.Valid {
			return true
		}
		for name, fv := range a.F {
			if !Equal(fv, bb.F[name]) {
				return false
			}
		}
		return true
	case *StructVal:
		bb, ok := b.(*StructVal)
		if !ok || len(a.F) != len(bb.F) {
			return false
		}
		for name, fv := range a.F {
			ov, present := bb.F[name]
			if !present || !Equal(fv, ov) {
				return false
			}
		}
		return true
	default:
		return false
	}
}
