package eval

import (
	"gauntlet/internal/p4/ast"
)

func (in *Interp) evalExpr(e *env, x ast.Expr) (Value, error) {
	switch x := x.(type) {
	case *ast.Ident:
		v, ok := e.get(x.Name)
		if !ok {
			return nil, rtErrorf("undefined name %q", x.Name)
		}
		return v, nil
	case *ast.IntLit:
		if x.Width == 0 {
			// Unsized literals surviving to evaluation take a 64-bit
			// default; the type checker normally eliminates these.
			return &BitVal{Width: 64, V: x.Val}, nil
		}
		return &BitVal{Width: x.Width, V: ast.MaskWidth(x.Val, x.Width)}, nil
	case *ast.BoolLit:
		return &BoolVal{V: x.Val}, nil
	case *ast.UnaryExpr:
		return in.evalUnary(e, x)
	case *ast.BinaryExpr:
		return in.evalBinary(e, x)
	case *ast.MuxExpr:
		cv, err := in.evalExpr(e, x.Cond)
		if err != nil {
			return nil, err
		}
		cb, ok := cv.(*BoolVal)
		if !ok {
			return nil, rtErrorf("mux condition is not bool")
		}
		if cb.V {
			return in.evalExpr(e, x.Then)
		}
		return in.evalExpr(e, x.Else)
	case *ast.CastExpr:
		v, err := in.evalExpr(e, x.X)
		if err != nil {
			return nil, err
		}
		return castValue(v, x.To)
	case *ast.MemberExpr:
		cv, err := in.evalExpr(e, x.X)
		if err != nil {
			return nil, err
		}
		switch c := cv.(type) {
		case *StructVal:
			f, ok := c.F[x.Member]
			if !ok {
				return nil, rtErrorf("struct has no field %q", x.Member)
			}
			return f, nil
		case *HeaderVal:
			f, ok := c.F[x.Member]
			if !ok {
				return nil, rtErrorf("header has no field %q", x.Member)
			}
			return f, nil
		default:
			return nil, rtErrorf("member access on %s", cv)
		}
	case *ast.SliceExpr:
		v, err := in.evalExpr(e, x.X)
		if err != nil {
			return nil, err
		}
		b, ok := v.(*BitVal)
		if !ok {
			return nil, rtErrorf("slice of non-bit value %s", v)
		}
		width := x.Hi - x.Lo + 1
		return &BitVal{Width: width, V: ast.MaskWidth(b.V>>uint(x.Lo), width)}, nil
	case *ast.CallExpr:
		return in.evalCall(e, x, false)
	default:
		return nil, rtErrorf("unsupported expression %T", x)
	}
}

func castValue(v Value, to ast.Type) (Value, error) {
	switch to := to.(type) {
	case *ast.BitType:
		switch v := v.(type) {
		case *BitVal:
			return &BitVal{Width: to.Width, V: ast.MaskWidth(v.V, to.Width)}, nil
		case *BoolVal:
			var b uint64
			if v.V {
				b = 1
			}
			return &BitVal{Width: to.Width, V: b}, nil
		}
	case *ast.BoolType:
		if b, ok := v.(*BitVal); ok && b.Width == 1 {
			return &BoolVal{V: b.V == 1}, nil
		}
	}
	return nil, rtErrorf("cannot cast %s to %s", v, to)
}

func (in *Interp) evalUnary(e *env, x *ast.UnaryExpr) (Value, error) {
	v, err := in.evalExpr(e, x.X)
	if err != nil {
		return nil, err
	}
	switch x.Op {
	case ast.OpLNot:
		b, ok := v.(*BoolVal)
		if !ok {
			return nil, rtErrorf("! on non-bool %s", v)
		}
		return &BoolVal{V: !b.V}, nil
	case ast.OpNeg:
		b, ok := v.(*BitVal)
		if !ok {
			return nil, rtErrorf("- on non-bit %s", v)
		}
		return &BitVal{Width: b.Width, V: ast.MaskWidth(^b.V+1, b.Width)}, nil
	case ast.OpBitNot:
		b, ok := v.(*BitVal)
		if !ok {
			return nil, rtErrorf("~ on non-bit %s", v)
		}
		return &BitVal{Width: b.Width, V: ast.MaskWidth(^b.V, b.Width)}, nil
	}
	return nil, rtErrorf("unknown unary op %v", x.Op)
}

func (in *Interp) evalBinary(e *env, x *ast.BinaryExpr) (Value, error) {
	// Short-circuit logical operators first (P4 && and || do not evaluate
	// the right operand when the left decides — method calls in the right
	// operand must not run).
	if x.Op.IsLogical() {
		lv, err := in.evalExpr(e, x.X)
		if err != nil {
			return nil, err
		}
		lb, ok := lv.(*BoolVal)
		if !ok {
			return nil, rtErrorf("logical op on non-bool %s", lv)
		}
		if x.Op == ast.OpLAnd && !lb.V {
			return &BoolVal{V: false}, nil
		}
		if x.Op == ast.OpLOr && lb.V {
			return &BoolVal{V: true}, nil
		}
		rv, err := in.evalExpr(e, x.Y)
		if err != nil {
			return nil, err
		}
		rb, ok := rv.(*BoolVal)
		if !ok {
			return nil, rtErrorf("logical op on non-bool %s", rv)
		}
		return &BoolVal{V: rb.V}, nil
	}

	lv, err := in.evalExpr(e, x.X)
	if err != nil {
		return nil, err
	}
	rv, err := in.evalExpr(e, x.Y)
	if err != nil {
		return nil, err
	}

	if x.Op == ast.OpEq || x.Op == ast.OpNe {
		eq := Equal(lv, rv)
		if x.Op == ast.OpNe {
			eq = !eq
		}
		return &BoolVal{V: eq}, nil
	}

	lb, lok := lv.(*BitVal)
	rb, rok := rv.(*BitVal)
	if !lok || !rok {
		return nil, rtErrorf("%s on non-bit operands %s, %s", x.Op, lv, rv)
	}

	switch x.Op {
	case ast.OpLt:
		return &BoolVal{V: lb.V < rb.V}, nil
	case ast.OpLe:
		return &BoolVal{V: lb.V <= rb.V}, nil
	case ast.OpGt:
		return &BoolVal{V: lb.V > rb.V}, nil
	case ast.OpGe:
		return &BoolVal{V: lb.V >= rb.V}, nil
	case ast.OpConcat:
		w := lb.Width + rb.Width
		return &BitVal{Width: w, V: ast.MaskWidth(lb.V<<uint(rb.Width)|rb.V, w)}, nil
	case ast.OpShl:
		if rb.V >= uint64(lb.Width) {
			return &BitVal{Width: lb.Width, V: 0}, nil
		}
		return &BitVal{Width: lb.Width, V: ast.MaskWidth(lb.V<<rb.V, lb.Width)}, nil
	case ast.OpShr:
		if rb.V >= uint64(lb.Width) {
			return &BitVal{Width: lb.Width, V: 0}, nil
		}
		return &BitVal{Width: lb.Width, V: lb.V >> rb.V}, nil
	}

	if lb.Width != rb.Width {
		return nil, rtErrorf("width mismatch in %s: %d vs %d", x.Op, lb.Width, rb.Width)
	}
	w := lb.Width
	var out uint64
	switch x.Op {
	case ast.OpAdd:
		out = lb.V + rb.V
	case ast.OpSub:
		out = lb.V - rb.V
	case ast.OpMul:
		out = lb.V * rb.V
	case ast.OpSatAdd:
		sum := ast.MaskWidth(lb.V+rb.V, w)
		if sum < lb.V || (w < 64 && lb.V+rb.V >= 1<<uint(w)) {
			out = ast.MaskWidth(^uint64(0), w)
		} else {
			out = sum
		}
	case ast.OpSatSub:
		if lb.V < rb.V {
			out = 0
		} else {
			out = lb.V - rb.V
		}
	case ast.OpBitAnd:
		out = lb.V & rb.V
	case ast.OpBitOr:
		out = lb.V | rb.V
	case ast.OpBitXor:
		out = lb.V ^ rb.V
	default:
		return nil, rtErrorf("unknown binary op %s", x.Op)
	}
	return &BitVal{Width: w, V: ast.MaskWidth(out, w)}, nil
}
