package eval

import (
	"gauntlet/internal/p4/ast"
)

// evalCall evaluates a call expression. stmtCtx is true when the call is a
// statement (void context). Returns the call's value (nil for void).
func (in *Interp) evalCall(e *env, call *ast.CallExpr, stmtCtx bool) (Value, error) {
	// Method calls.
	if m, ok := call.Func.(*ast.MemberExpr); ok {
		return in.evalMethod(e, call, m)
	}
	id, ok := call.Func.(*ast.Ident)
	if !ok {
		return nil, rtErrorf("call target is not callable")
	}
	if id.Name == "NoAction" {
		return nil, nil
	}
	// Resolve the callee: control locals shadow top-level declarations.
	var params []ast.Param
	var body *ast.BlockStmt
	isFunc := false
	if in.ctrlDecl != nil {
		switch d := in.ctrlDecl.LocalByName(id.Name).(type) {
		case *ast.ActionDecl:
			params, body = d.Params, d.Body
		case *ast.FunctionDecl:
			params, body, isFunc = d.Params, d.Body, true
		}
	}
	if body == nil {
		switch d := in.prog.DeclByName(id.Name).(type) {
		case *ast.ActionDecl:
			params, body = d.Params, d.Body
		case *ast.FunctionDecl:
			params, body, isFunc = d.Params, d.Body, true
		default:
			return nil, rtErrorf("call to unknown %q", id.Name)
		}
	}
	_ = isFunc
	return in.invoke(e, params, body, call.Args, nil)
}

// invoke performs a call with P4 copy-in/copy-out semantics. cpArgs, if
// non-nil, provides concrete values for directionless (control-plane)
// parameters, as supplied by a table entry; direct calls bind them from
// call arguments instead.
//
// Per the specification clarification triggered by the paper (§7.2,
// Fig. 5f), an exit inside the callee still performs copy-out before
// propagating.
func (in *Interp) invoke(caller *env, params []ast.Param, body *ast.BlockStmt,
	args []ast.Expr, cpArgs []uint64) (Value, error) {

	// The callee scope is rooted at the control scope, not the call site:
	// actions and functions see control parameters and locals.
	callee := newEnv(in.ctrlEnv)

	// Copy-in, left to right.
	cpIdx := 0
	for i, p := range params {
		if p.Dir == ast.DirNone && cpArgs != nil {
			callee.declare(p.Name, &BitVal{
				Width: ast.BitWidth(p.Type),
				V:     ast.MaskWidth(cpArgs[cpIdx], ast.BitWidth(p.Type)),
			})
			cpIdx++
			continue
		}
		switch p.Dir {
		case ast.DirOut:
			callee.declare(p.Name, NewValue(p.Type, in.undef))
		default:
			v, err := in.evalExpr(caller, args[i])
			if err != nil {
				return nil, err
			}
			callee.declare(p.Name, v.Clone())
		}
	}

	// Execute the body.
	var retVal Value
	err := in.execBlock(callee, body)
	var exited bool
	switch sig := err.(type) {
	case nil:
	case *returnSignal:
		retVal = sig.val
	case *exitSignal:
		exited = true
	default:
		return nil, err
	}

	// Copy-out, left to right, into the caller's argument lvalues.
	for i, p := range params {
		if p.Dir == ast.DirNone || !p.Dir.Writes() {
			continue
		}
		v, _ := callee.get(p.Name)
		if err := in.assign(caller, args[i], v.Clone()); err != nil {
			return nil, err
		}
	}

	if exited {
		return nil, &exitSignal{}
	}
	return retVal, nil
}

func (in *Interp) evalMethod(e *env, call *ast.CallExpr, m *ast.MemberExpr) (Value, error) {
	switch m.Member {
	case "setValid", "setInvalid", "isValid":
		hv, err := in.evalExpr(e, m.X)
		if err != nil {
			return nil, err
		}
		h, ok := hv.(*HeaderVal)
		if !ok {
			return nil, rtErrorf("%s on non-header %s", m.Member, hv)
		}
		switch m.Member {
		case "setValid":
			if !h.Valid {
				// Freshly validated headers have undefined field values
				// (§5.2 header-validity semantics).
				for _, f := range h.T.Fields {
					w := ast.BitWidth(f.Type)
					h.F[f.Name] = &BitVal{Width: w, V: ast.MaskWidth(in.undef(w), w)}
				}
			}
			h.Valid = true
			return nil, nil
		case "setInvalid":
			h.Valid = false
			return nil, nil
		default:
			return &BoolVal{V: h.Valid}, nil
		}
	case "apply":
		id, ok := m.X.(*ast.Ident)
		if !ok {
			return nil, rtErrorf("apply on non-table expression")
		}
		return nil, in.applyTable(e, id.Name)
	case "extract":
		return nil, in.extract(e, call)
	case "emit":
		return nil, in.emit(e, call)
	default:
		return nil, rtErrorf("unknown method %q", m.Member)
	}
}

func (in *Interp) extract(e *env, call *ast.CallExpr) error {
	pv, err := in.packetArg(e, call)
	if err != nil {
		return err
	}
	hv, err := in.evalExpr(e, call.Args[0])
	if err != nil {
		return err
	}
	h, ok := hv.(*HeaderVal)
	if !ok {
		return rtErrorf("extract into non-header %s", hv)
	}
	if pv.R == nil {
		return rtErrorf("extract on a write-only packet")
	}
	for _, f := range h.T.Fields {
		w := ast.BitWidth(f.Type)
		bits, err := pv.R.ReadBits(w)
		if err != nil {
			// Short packet: the parser rejects.
			return ErrReject
		}
		h.F[f.Name] = &BitVal{Width: w, V: bits}
	}
	h.Valid = true
	return nil
}

func (in *Interp) emit(e *env, call *ast.CallExpr) error {
	pv, err := in.packetArg(e, call)
	if err != nil {
		return err
	}
	hv, err := in.evalExpr(e, call.Args[0])
	if err != nil {
		return err
	}
	h, ok := hv.(*HeaderVal)
	if !ok {
		return rtErrorf("emit of non-header %s", hv)
	}
	if pv.W == nil {
		return rtErrorf("emit on a read-only packet")
	}
	if !h.Valid {
		return nil // emitting an invalid header is a no-op
	}
	for _, f := range h.T.Fields {
		w := ast.BitWidth(f.Type)
		b, ok := h.F[f.Name].(*BitVal)
		if !ok {
			return rtErrorf("emit of non-bit field %q", f.Name)
		}
		if err := pv.W.WriteBits(b.V, w); err != nil {
			return rtErrorf("emit: %v", err)
		}
	}
	return nil
}

// packetArg resolves the receiver packet of an extract/emit call.
func (in *Interp) packetArg(e *env, call *ast.CallExpr) (*PacketVal, error) {
	m := call.Func.(*ast.MemberExpr)
	rv, err := in.evalExpr(e, m.X)
	if err != nil {
		return nil, err
	}
	pv, ok := rv.(*PacketVal)
	if !ok {
		return nil, rtErrorf("packet method on non-packet %s", rv)
	}
	if len(call.Args) != 1 {
		return nil, rtErrorf("packet method takes one argument")
	}
	return pv, nil
}

// applyTable executes a match-action table under the current control-plane
// configuration. Missing configuration means an empty table: the default
// action runs.
func (in *Interp) applyTable(e *env, name string) error {
	tbl, ok := in.ctrlDecl.LocalByName(name).(*ast.TableDecl)
	if !ok {
		return rtErrorf("apply of unknown table %q", name)
	}
	cfg := in.tables[in.ctrlName+"."+name]

	// Evaluate key expressions in order.
	keys := make([]uint64, len(tbl.Keys))
	for i, k := range tbl.Keys {
		v, err := in.evalExpr(e, k.Expr)
		if err != nil {
			return err
		}
		switch v := v.(type) {
		case *BitVal:
			keys[i] = v.V
		case *BoolVal:
			if v.V {
				keys[i] = 1
			}
		default:
			return rtErrorf("table %s key %d is not a bit value", name, i)
		}
	}

	// Find the matching entry (exact match on every key).
	var hit *TableEntry
	if cfg != nil && len(tbl.Keys) > 0 {
		for i := range cfg.Entries {
			ent := &cfg.Entries[i]
			if len(ent.Key) != len(keys) {
				continue
			}
			match := true
			for j := range keys {
				if ent.Key[j] != keys[j] {
					match = false
					break
				}
			}
			if match {
				hit = ent
				break
			}
		}
	}

	if hit != nil {
		return in.runTableAction(e, tbl, hit.Action, hit.Args)
	}
	// Miss: run the configured default override, else the program default,
	// else NoAction.
	if cfg != nil && cfg.DefaultAction != nil {
		return in.runTableAction(e, tbl, cfg.DefaultAction.Action, cfg.DefaultAction.Args)
	}
	if tbl.Default != nil {
		args := make([]uint64, len(tbl.Default.Args))
		for i, a := range tbl.Default.Args {
			v, err := in.evalExpr(e, a)
			if err != nil {
				return err
			}
			b, ok := v.(*BitVal)
			if !ok {
				return rtErrorf("default_action argument %d is not a bit value", i)
			}
			args[i] = b.V
		}
		return in.runTableAction(e, tbl, tbl.Default.Name, args)
	}
	return nil
}

func (in *Interp) runTableAction(e *env, tbl *ast.TableDecl, action string, cpArgs []uint64) error {
	if action == "NoAction" {
		return nil
	}
	ad, ok := in.ctrlDecl.LocalByName(action).(*ast.ActionDecl)
	if !ok {
		if d, ok2 := in.prog.DeclByName(action).(*ast.ActionDecl); ok2 {
			ad = d
		} else {
			return rtErrorf("table %s action %q not found", tbl.Name, action)
		}
	}
	if len(cpArgs) != len(ad.Params) {
		return rtErrorf("table %s action %s expects %d control-plane args, got %d",
			tbl.Name, action, len(ad.Params), len(cpArgs))
	}
	_, err := in.invoke(e, ad.Params, ad.Body, nil, cpArgs)
	return err
}
